// Benchmarks regenerating the paper's evaluation, one per table
// (see EXPERIMENTS.md for the recorded paper-vs-measured runs, and
// cmd/stance-bench for the full table output with paper columns).
package stance_test

import (
	"fmt"
	"testing"

	"stance/internal/bench"
	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/hetero"
	"stance/internal/mesh"
	"stance/internal/order"
	"stance/internal/partition"
	"stance/internal/redist"
	"stance/internal/sched"
	"stance/internal/solver"
	"stance/internal/translate"
)

// benchNetScale keeps benchmark iterations fast; ratios between
// strategies are unaffected by a uniformly scaled network.
const benchNetScale = 0.05

// BenchmarkTable1MCR times the MinimizeCostRedistribution greedy
// search (paper Table 1: 0.33 ms at p=3 up to 17 ms at p=20 on SUN4).
func BenchmarkTable1MCR(b *testing.B) {
	for _, p := range []int{3, 5, 10, 15, 20} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.MeasureMCR(p, 1, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Remap times one full data redistribution between
// random layouts over the modeled Ethernet, with and without the MCR
// arrangement search (paper Table 2).
func BenchmarkTable2Remap(b *testing.B) {
	for _, size := range []int64{512, 16384, 131072} {
		for _, mcr := range []bool{true, false} {
			name := fmt.Sprintf("size=%d/mcr=%v", size, mcr)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bench.MeasureRemap(size, 5, 1, mcr, benchNetScale, int64(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3Schedules times communication-schedule construction
// for the three inspector strategies on a paper-shaped mesh (paper
// Table 3: sorting-based builders beat the distributed-table baseline
// past three workstations).
func BenchmarkTable3Schedules(b *testing.B) {
	g, err := mesh.Honeycomb(100, 180)
	if err != nil {
		b.Fatal(err)
	}
	perm, err := order.RCB(g)
	if err != nil {
		b.Fatal(err)
	}
	tg, err := g.Permute(perm)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{2, 5} {
		for _, strategy := range []string{"sort1", "sort2", "simple"} {
			b.Run(fmt.Sprintf("p=%d/%s", p, strategy), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bench.MeasureScheduleBuild(tg, p, strategy, benchNetScale); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable4Static times a fixed-length run of the parallel loop
// in a static uniform environment for growing cluster sizes (paper
// Table 4).
func BenchmarkTable4Static(b *testing.B) {
	g, err := mesh.Honeycomb(100, 180)
	if err != nil {
		b.Fatal(err)
	}
	perm, err := order.RCB(g)
	if err != nil {
		b.Fatal(err)
	}
	tg, err := g.Permute(perm)
	if err != nil {
		b.Fatal(err)
	}
	const iters, workRep = 5, 100
	for _, p := range []int{1, 2, 5} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.MeasureStaticRun(tg, p, iters, workRep, benchNetScale, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5Adaptive times the adaptive-environment protocol: a
// factor-3 competing load on workstation 0, with and without the
// 10-iteration load-balance check (paper Table 5).
func BenchmarkTable5Adaptive(b *testing.B) {
	opts := bench.Options{Quick: true, NetScale: benchNetScale, Seed: 1}
	b.Run("p=3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := bench.MeasureAdaptiveRun(opts, 3, 15, 100)
			if err != nil {
				b.Fatal(err)
			}
			if res.WithLB >= res.WithoutLB {
				b.Logf("iteration %d: LB run %v not faster than %v (timing noise)", i, res.WithLB, res.WithoutLB)
			}
		}
	})
}

// BenchmarkExchange isolates the executor's per-iteration ghost
// exchange (gather) on a free network: the schedule-replay overhead
// without modeled wire time. (The steady-state allocs/op measurement
// with setup hoisted out of the timed region lives in
// internal/bench's BenchmarkExchange.)
func BenchmarkExchange(b *testing.B) {
	g, err := mesh.Honeycomb(100, 180)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			ws, err := comm.NewWorld(p, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.CloseWorld(ws)
			b.ReportAllocs()
			b.ResetTimer()
			err = comm.SPMD(ws, func(c *comm.Comm) error {
				rt, err := core.New(c, g, core.Config{Order: order.RCB})
				if err != nil {
					return err
				}
				v := rt.NewVector()
				v.SetByGlobal(func(gid int64) float64 { return float64(gid) })
				for i := 0; i < b.N; i++ {
					if err := rt.Exchange(v); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSolverIteration times one phase of the Figure 8 loop
// (exchange + kernel) end to end.
func BenchmarkSolverIteration(b *testing.B) {
	g, err := mesh.Honeycomb(100, 180)
	if err != nil {
		b.Fatal(err)
	}
	ws, err := comm.NewWorld(4, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	b.ResetTimer()
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{Order: order.RCB})
		if err != nil {
			return err
		}
		s, err := solver.New(rt, hetero.Uniform(4), 1)
		if err != nil {
			return err
		}
		return s.Run(b.N, nil)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOrderings times the locality transformations on the
// paper-scale mesh (Phase A cost).
func BenchmarkOrderings(b *testing.B) {
	g, err := mesh.Honeycomb(100, 180)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"rcb", "rib", "morton", "hilbert", "rcm", "spectral"} {
		f, err := order.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMCRCost compares MCR under the plain overlap cost
// and the message-aware cost, and against brute force (the design
// choice called out in DESIGN.md).
func BenchmarkAblationMCRCost(b *testing.B) {
	old, err := partition.NewBlock(100000, []float64{0.27, 0.18, 0.34, 0.07, 0.14})
	if err != nil {
		b.Fatal(err)
	}
	newW := []float64{0.10, 0.13, 0.29, 0.24, 0.24}
	cases := map[string]func() error{
		"overlap": func() error {
			_, err := redist.MinimizeCostRedistribution(old, newW, redist.OverlapCost)
			return err
		},
		"overlap+messages": func() error {
			_, err := redist.MinimizeCostRedistribution(old, newW, redist.OverlapMessagesCost(2))
			return err
		},
		"iterated": func() error {
			_, err := redist.Iterated(old, newW, redist.OverlapCost, 0)
			return err
		},
		"bruteforce": func() error {
			_, err := redist.BruteForce(old, newW, redist.OverlapCost)
			return err
		},
	}
	for name, f := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := f(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDedup compares the purpose-built open-addressing
// hash set with Go's built-in map for the inspector's duplicate
// removal.
func BenchmarkAblationDedup(b *testing.B) {
	g, err := mesh.Honeycomb(100, 180)
	if err != nil {
		b.Fatal(err)
	}
	refs := make([]int64, 0, len(g.Adj))
	for _, w := range g.Adj {
		refs = append(refs, int64(w))
	}
	b.Run("hashset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sched.DedupHash(refs)
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sched.DedupMap(refs)
		}
	})
}

// BenchmarkAblationMulticast compares broadcasting through hardware
// multicast with per-destination unicast on the modeled Ethernet
// (paper Section 3.6).
func BenchmarkAblationMulticast(b *testing.B) {
	payload := make([]byte, 1024)
	for _, multicast := range []bool{true, false} {
		name := "unicast"
		if multicast {
			name = "multicast"
		}
		b.Run(name, func(b *testing.B) {
			model := &comm.Model{Latency: 50_000, Bandwidth: 25e6, Multicast: multicast} // 50us, 25 MB/s
			ws, err := comm.NewWorld(5, model)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.CloseWorld(ws)
			dsts := []int{1, 2, 3, 4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ws[0].Multicast(dsts, 1, payload); err != nil {
					b.Fatal(err)
				}
				for _, d := range dsts {
					if _, err := ws[d].Recv(0, 1); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkCoalescing measures the message-coalescing optimization of
// paper Section 2: exchanging three vectors in one coalesced round
// versus three separate rounds, on a latency-dominated network.
func BenchmarkCoalescing(b *testing.B) {
	g, err := mesh.Honeycomb(40, 60)
	if err != nil {
		b.Fatal(err)
	}
	for _, coalesced := range []bool{true, false} {
		name := "separate"
		if coalesced {
			name = "coalesced"
		}
		b.Run(name, func(b *testing.B) {
			model := &comm.Model{Latency: 200_000, Bandwidth: 25e6} // 0.2ms per message
			ws, err := comm.NewWorld(2, model)
			if err != nil {
				b.Fatal(err)
			}
			defer comm.CloseWorld(ws)
			b.ResetTimer()
			err = comm.SPMD(ws, func(c *comm.Comm) error {
				rt, err := core.New(c, g, core.Config{Order: order.RCB})
				if err != nil {
					return err
				}
				x, y, z := rt.NewVector(), rt.NewVector(), rt.NewVector()
				for i := 0; i < b.N; i++ {
					if coalesced {
						if err := rt.ExchangeAll(x, y, z); err != nil {
							return err
						}
						continue
					}
					for _, v := range []*core.Vector{x, y, z} {
						if err := rt.Exchange(v); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkTranslation compares the interval translation table (O(p)
// memory, binary search) with the fully replicated table (O(n) memory,
// direct index) — the trade-off of paper Section 3.2, Figure 3.
func BenchmarkTranslation(b *testing.B) {
	layout, err := partition.NewBlock(1<<20, []float64{1, 2, 3, 4, 5})
	if err != nil {
		b.Fatal(err)
	}
	interval := translate.NewIntervalTable(layout)
	replicated := translate.NewReplicatedTable(layout)
	tables := map[string]translate.Table{"interval": interval, "replicated": replicated}
	for name, tab := range tables {
		b.Run(name, func(b *testing.B) {
			n := layout.N()
			for i := 0; i < b.N; i++ {
				if _, err := tab.Lookup(int64(i) % n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
