package stance_test

import (
	"fmt"
	"testing"

	"stance"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: mesh, world, runtime, solver, balancer — without
// touching internal packages.
func TestFacadeEndToEnd(t *testing.T) {
	g, err := stance.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	world, err := stance.NewWorld(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stance.CloseWorld(world)

	env := stance.LoadedEnv(3, 2.5)
	err = stance.SPMD(world, func(c *stance.Comm) error {
		rt, err := stance.New(c, g, stance.Config{Order: stance.RCB})
		if err != nil {
			return err
		}
		s, err := stance.NewSolver(rt, env, 2)
		if err != nil {
			return err
		}
		est, err := stance.NewEstimator(stance.EstimateEWMA, 0.5)
		if err != nil {
			return err
		}
		bal, err := stance.NewBalancer(rt, stance.BalancerConfig{
			Horizon:   50,
			Estimator: est,
		})
		if err != nil {
			return err
		}
		if err := s.Run(8, nil); err != nil {
			return err
		}
		tm := s.TakeTimings()
		d, err := bal.Check(stance.Report{RatePerItem: tm.RatePerItem(), Items: tm.Items})
		if err != nil {
			return err
		}
		if !d.Remapped {
			return fmt.Errorf("rank %d: 2.5x imbalance not rebalanced", c.Rank())
		}
		if err := s.Run(4, nil); err != nil {
			return err
		}
		y, err := s.GatherResult(0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && len(y) != g.N {
			return fmt.Errorf("gathered %d values for %d vertices", len(y), g.N)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeOrderings(t *testing.T) {
	if len(stance.Orderings()) < 6 {
		t.Errorf("Orderings() = %v", stance.Orderings())
	}
	for _, name := range stance.Orderings() {
		if _, err := stance.OrderByName(name); err != nil {
			t.Errorf("OrderByName(%q): %v", name, err)
		}
	}
	if _, err := stance.OrderByName("bogus"); err == nil {
		t.Error("bogus ordering accepted")
	}
}

func TestFacadeMeshGenerators(t *testing.T) {
	pm := stance.PaperMesh()
	if pm.N != 30269 {
		t.Errorf("PaperMesh has %d vertices", pm.N)
	}
	if _, err := stance.GridMesh(5, 5, 0.1, 1); err != nil {
		t.Error(err)
	}
	if _, err := stance.AnnulusMesh(3, 10); err != nil {
		t.Error(err)
	}
	if _, err := stance.RandomGeometric(50, 0.2, 1); err != nil {
		t.Error(err)
	}
	if _, err := stance.GraphFromEdges(2, []stance.Edge{{U: 0, V: 1}}, nil); err != nil {
		t.Error(err)
	}
}

func TestFacadeEthernetModel(t *testing.T) {
	m := stance.Ethernet(1)
	if m.Latency <= 0 || m.Bandwidth <= 0 || !m.Multicast {
		t.Errorf("Ethernet model %+v", m)
	}
}

func TestFacadeTCP(t *testing.T) {
	g, err := stance.Honeycomb(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	world, closer, err := stance.NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	err = stance.SPMD(world, func(c *stance.Comm) error {
		rt, err := stance.New(c, g, stance.Config{})
		if err != nil {
			return err
		}
		s, err := stance.NewSolver(rt, nil, 1)
		if err != nil {
			return err
		}
		return s.Run(3, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}
