// Ordering visualizes paper Figure 2: recursive coordinate bisection
// maps a two-dimensional point cloud into one-dimensional space. Each
// stage splits every cell at the median of its longest axis; after k
// stages the 2^k cells, read left to right, are the one-dimensional
// order. The demo renders the stages as ASCII grids (each point drawn
// as its cell id) and then shows what the final 1-D index buys:
// contiguous intervals of the list are compact patches of the mesh.
//
//	go run ./examples/ordering
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stance"
	"stance/internal/geom"
	"stance/internal/graph"
	"stance/internal/order"
)

const (
	nPoints = 600
	width   = 72
	height  = 24
)

func render(coords []geom.Point, label func(i int) byte) {
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = make([]byte, width)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	b := geom.Bounds(coords)
	for i, p := range coords {
		x := int((p.X - b.Min.X) / (b.Max.X - b.Min.X) * float64(width-1))
		y := int((p.Y - b.Min.Y) / (b.Max.Y - b.Min.Y) * float64(height-1))
		grid[height-1-y][x] = label(i)
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(42))

	// A random point cloud, denser in one corner so the median splits
	// are visibly unequal in area (like the paper's point set).
	coords := make([]geom.Point, nPoints)
	for i := range coords {
		x, y := rng.Float64(), rng.Float64()
		if i%3 == 0 {
			x, y = x*x, y*y
		}
		coords[i] = geom.Point{X: x, Y: y}
	}
	// Connect each point to its predecessor so the graph is valid; the
	// stages only use coordinates.
	edges := make([]graph.Edge, 0, nPoints-1)
	for i := 1; i < nPoints; i++ {
		edges = append(edges, graph.Edge{U: int32(i - 1), V: int32(i)})
	}
	g, err := stance.GraphFromEdges(nPoints, edges, coords)
	if err != nil {
		log.Fatal(err)
	}

	stages, err := order.RCBStages(g, 3)
	if err != nil {
		log.Fatal(err)
	}
	for k, st := range stages {
		fmt.Printf("--- RCB stage %d: %d cells (paper Figure 2%c) ---\n", k+1, 2<<k, 'a'+k+1)
		render(coords, func(i int) byte {
			return "0123456789abcdef"[st[i]]
		})
		fmt.Println()
	}

	// The final one-dimensional index: cut it into 4 equal intervals
	// and draw which interval each point landed in — contiguous list
	// ranges are compact patches.
	perm, err := order.RCB(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- 1-D list cut into 4 contiguous intervals (A-D) ---")
	render(coords, func(i int) byte {
		return byte('A' + int(perm[i])*4/nPoints)
	})

	q, err := order.Evaluate(g, perm, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchain edge cut with 4 blocks: %d (mean edge span %.1f)\n", q.EdgeCut, q.MeanEdgeSpan)
}
