// Redistribute walks through the paper's Figure 5 example and the
// MinimizeCostRedistribution heuristic (Section 3.4): 100 elements on
// five workstations whose capabilities adapt, and the arrangements
// that keep the most data in place.
//
//	go run ./examples/redistribute
package main

import (
	"fmt"
	"log"

	"stance/internal/partition"
	"stance/internal/redist"
)

func describe(label string, old, new *partition.Layout) {
	ov, err := partition.Overlap(old, new)
	if err != nil {
		log.Fatal(err)
	}
	msgs, err := partition.Messages(old, new)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s arrangement %v\n", label, new.Arrangement())
	for proc := 0; proc < new.P(); proc++ {
		iv := new.Interval(proc)
		fmt.Printf("    P%d: [%3d,%3d)\n", proc, iv.Lo, iv.Hi)
	}
	fmt.Printf("    overlap %d/100 elements stay put, %d moved, %d messages\n\n",
		ov, 100-ov, msgs)
}

func main() {
	log.SetFlags(0)

	// The paper's Figure 5: capabilities 0.27/0.18/0.34/0.07/0.14
	// adapt to 0.10/0.13/0.29/0.24/0.24.
	oldW := []float64{0.27, 0.18, 0.34, 0.07, 0.14}
	newW := []float64{0.10, 0.13, 0.29, 0.24, 0.24}
	old, err := partition.NewBlock(100, oldW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("old layout (capabilities 0.27/0.18/0.34/0.07/0.14):")
	for proc := 0; proc < old.P(); proc++ {
		iv := old.Interval(proc)
		fmt.Printf("    P%d: [%3d,%3d)\n", proc, iv.Lo, iv.Hi)
	}
	fmt.Println("\ncapabilities adapt to 0.10/0.13/0.29/0.24/0.24; options:")
	fmt.Println()

	identity, err := partition.NewBlock(100, newW)
	if err != nil {
		log.Fatal(err)
	}
	describe("keep the arrangement:", old, identity)

	paperPick, err := partition.New(100, newW, []int{0, 3, 1, 2, 4})
	if err != nil {
		log.Fatal(err)
	}
	describe("the paper's (P0,P3,P1,P2,P4):", old, paperPick)

	single, err := redist.MinimizeCostRedistribution(old, newW, redist.OverlapCost)
	if err != nil {
		log.Fatal(err)
	}
	describe("MCR, one greedy sweep:", old, single)

	iterated, err := redist.Iterated(old, newW, redist.OverlapCost, 0)
	if err != nil {
		log.Fatal(err)
	}
	describe("MCR iterated to convergence:", old, iterated)

	best, err := redist.BruteForce(old, newW, redist.OverlapCost)
	if err != nil {
		log.Fatal(err)
	}
	describe("brute force over all 5!:", old, best)

	msgAware, err := redist.Iterated(old, newW, redist.OverlapMessagesCost(2), 0)
	if err != nil {
		log.Fatal(err)
	}
	describe("message-aware cost (2 el/msg):", old, msgAware)
}
