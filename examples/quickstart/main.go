// Quickstart: run the paper's irregular loop (Figure 8) on three
// simulated workstations in under a screenful of code.
//
// The session API is the shortest path into the library: one
// NewSession call replaces the world/runtime/solver wiring every rank
// used to repeat, and one Run call drives the iterations and hands
// back a consolidated report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"stance"
)

func main() {
	log.SetFlags(0)

	// An unstructured mesh: the computational graph. Vertices carry
	// 2-D coordinates; edges are the data dependencies.
	g, err := stance.Honeycomb(30, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d vertices, %d edges\n", g.N, g.NumEdges())

	// One call builds the whole stack on three SPMD ranks: the mesh is
	// transformed into the locality-preserving 1-D order (recursive
	// coordinate bisection, Phase A), cut into per-rank intervals, and
	// the communication schedule is built (Phase B). The ranks talk
	// over a modeled 10 Mbit Ethernet sped up 10x; swap the transport
	// with stance.WithTransport("tcp") to run over real sockets. The
	// context tears the whole session down if cancelled.
	s, err := stance.NewSession(context.Background(), g, 3,
		stance.WithOrdering("rcb"),
		stance.WithNetworkModel(stance.Ethernet(0.1)))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Run 20 iterations of the loop — each phase exchanges ghost
	// values (Phase C) and averages neighbors — and collect the
	// consolidated report: wall time, per-rank compute/comm split,
	// message counts.
	rep, err := s.Run(20)
	if err != nil {
		log.Fatal(err)
	}

	// Gather the solution and summarize the run.
	y, err := s.Result()
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, v := range y {
		sum += v
	}
	rt := s.Runtime(0)
	fmt.Printf("rank 0 owned %d elements, ghosts %d\n",
		rt.LocalN(), rt.Schedule().NGhosts())
	fmt.Printf("after %d iterations: mean y = %.6f\n", rep.Iters, sum/float64(len(y)))
	fmt.Printf("wall %v; rank 0 compute %v, comm %v; %d messages (%d bytes)\n",
		rep.Wall, rep.Ranks[0].Compute, rep.Ranks[0].Comm, rep.Msgs, rep.Bytes)
}
