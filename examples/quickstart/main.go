// Quickstart: run the paper's irregular loop (Figure 8) on three
// simulated workstations in under a screenful of code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stance"
)

func main() {
	log.SetFlags(0)

	// An unstructured mesh: the computational graph. Vertices carry
	// 2-D coordinates; edges are the data dependencies.
	g, err := stance.Honeycomb(30, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d vertices, %d edges\n", g.N, g.NumEdges())

	// Three workstations connected by a (modeled) 10 Mbit Ethernet,
	// sped up 10x. Each Comm is one SPMD rank.
	world, err := stance.NewWorld(3, stance.Ethernet(0.1))
	if err != nil {
		log.Fatal(err)
	}
	defer stance.CloseWorld(world)

	// Every rank: transform the mesh into the locality-preserving 1-D
	// order (recursive coordinate bisection), take its interval, build
	// the communication schedule, and iterate: exchange ghosts,
	// average neighbors.
	err = stance.SPMD(world, func(c *stance.Comm) error {
		rt, err := stance.New(c, g, stance.Config{Order: stance.RCB})
		if err != nil {
			return err
		}
		s, err := stance.NewSolver(rt, nil, 1)
		if err != nil {
			return err
		}
		if err := s.Run(20, nil); err != nil {
			return err
		}

		// Gather the solution on rank 0 and summarize it.
		y, err := s.GatherResult(0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			sum := 0.0
			for _, v := range y {
				sum += v
			}
			tm := s.TakeTimings()
			fmt.Printf("rank 0 owned %d elements, ghosts %d\n",
				rt.LocalN(), rt.Schedule().NGhosts())
			fmt.Printf("after 20 iterations: mean y = %.6f\n", sum/float64(len(y)))
			fmt.Printf("rank 0 compute %v, comm %v\n", tm.Compute, tm.Comm)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
