// Adaptive reproduces the paper's adaptive-environment experiment
// (Table 5): the mesh is decomposed for equal machines, then a
// constant competing load lands on workstation 0. Without load
// balancing the loaded machine drags every phase; with the paper's
// protocol (check after 10 iterations, remap if profitable) the run
// time roughly halves.
//
//	go run ./examples/adaptive
//	go run ./examples/adaptive -p 5 -factor 3 -iters 40
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"stance"
)

func run(g *stance.Graph, p, iters, workRep int, factor, netScale float64, balance bool) (time.Duration, *stance.Decision) {
	world, err := stance.NewWorld(p, stance.Ethernet(netScale))
	if err != nil {
		log.Fatal(err)
	}
	defer stance.CloseWorld(world)
	env := stance.LoadedEnv(p, factor)
	var wall time.Duration
	var decision *stance.Decision
	err = stance.SPMD(world, func(c *stance.Comm) error {
		rt, err := stance.New(c, g, stance.Config{Order: stance.RCB})
		if err != nil {
			return err
		}
		s, err := stance.NewSolver(rt, env, workRep)
		if err != nil {
			return err
		}
		bal, err := stance.NewBalancer(rt, stance.BalancerConfig{
			Horizon:   iters - 10,
			CostModel: stance.CostModel{PerMessage: 1e-3 * netScale, PerByte: netScale / 1.25e6},
		})
		if err != nil {
			return err
		}
		if err := c.Barrier(1); err != nil {
			return err
		}
		start := time.Now()
		err = s.Run(iters, func(iter int) error {
			if !balance || iter != 10 {
				return nil
			}
			tm := s.TakeTimings()
			d, err := bal.Check(stance.Report{RatePerItem: tm.RatePerItem(), Items: tm.Items})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				decision = &d
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := c.Barrier(2); err != nil {
			return err
		}
		if c.Rank() == 0 {
			wall = time.Since(start)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return wall, decision
}

func main() {
	log.SetFlags(0)
	p := flag.Int("p", 4, "number of workstations")
	iters := flag.Int("iters", 50, "iterations (paper: 500)")
	workRep := flag.Int("work", 150, "work amplification per element")
	factor := flag.Float64("factor", 3, "competing-load factor on workstation 0")
	netScale := flag.Float64("netscale", 1, "Ethernet model scale")
	small := flag.Bool("small", true, "use a small mesh (disable for paper scale)")
	flag.Parse()

	var g *stance.Graph
	var err error
	if *small {
		g, err = stance.Honeycomb(60, 80)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		g = stance.PaperMesh()
	}
	fmt.Printf("mesh: %d vertices; %d workstations; factor-%g load on workstation 0\n",
		g.N, *p, *factor)
	fmt.Printf("decomposition assumes equal machines; %d iterations\n\n", *iters)

	static, _ := run(g, *p, *iters, *workRep, *factor, *netScale, false)
	fmt.Printf("without load balancing: %v\n", static.Round(time.Millisecond))

	adaptive, d := run(g, *p, *iters, *workRep, *factor, *netScale, true)
	fmt.Printf("with load balancing:    %v\n", adaptive.Round(time.Millisecond))
	if d != nil {
		fmt.Printf("\ncheck after 10 iterations:\n")
		fmt.Printf("  estimated capabilities: %v\n", normalized(d.NewWeights))
		fmt.Printf("  predicted phase time: %.4fs -> %.4fs\n", d.PredictedCurrent, d.PredictedNew)
		fmt.Printf("  remapped: %v (check cost %v, remap cost %v)\n",
			d.Remapped, d.CheckTime.Round(time.Microsecond), d.RemapTime.Round(time.Microsecond))
	}
	if adaptive < static {
		fmt.Printf("\nload balancing saved %.0f%% (paper Table 5: ~50%%)\n",
			100*(1-adaptive.Seconds()/static.Seconds()))
	}
}

// normalized scales weights to sum 1 and rounds for display.
func normalized(xs []float64) []float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		if sum > 0 {
			x /= sum
		}
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
