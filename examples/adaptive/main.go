// Adaptive reproduces the paper's adaptive-environment experiment
// (Table 5): the mesh is decomposed for equal machines, then a
// constant competing load lands on workstation 0. Without load
// balancing the loaded machine drags every phase; with the paper's
// protocol (check after 10 iterations, remap if profitable) the run
// time roughly halves. Each variant is one session: the balanced run
// just adds WithBalancer.
//
//	go run ./examples/adaptive
//	go run ./examples/adaptive -p 5 -factor 3 -iters 40
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"stance"
)

func run(g *stance.Graph, p, iters, workRep int, factor, netScale float64, balance bool) (time.Duration, *stance.CheckEvent, int) {
	opts := []stance.Option{
		stance.WithOrdering("rcb"),
		stance.WithNetworkModel(stance.Ethernet(netScale)),
		stance.WithEnv(stance.LoadedEnv(p, factor)),
		stance.WithWorkRep(workRep),
	}
	if balance {
		// Horizon defaults to the check interval: each periodic check
		// amortizes a remap over the iterations until the next check.
		opts = append(opts, stance.WithBalancer(stance.BalancerConfig{
			CostModel: stance.CostModel{PerMessage: 1e-3 * netScale, PerByte: netScale / 1.25e6},
		}))
	}
	s, err := stance.NewSession(context.Background(), g, p, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(iters)
	if err != nil {
		log.Fatal(err)
	}
	// Report the check that remapped (a borderline first check may
	// decline), falling back to the first check.
	var ev *stance.CheckEvent
	if remaps := rep.Remaps(); len(remaps) > 0 {
		ev = &remaps[0]
	} else if checks := rep.Checks; len(checks) > 0 {
		ev = &checks[0]
	}
	return rep.Wall, ev, len(rep.Remaps())
}

func main() {
	log.SetFlags(0)
	p := flag.Int("p", 4, "number of workstations")
	iters := flag.Int("iters", 50, "iterations (paper: 500)")
	workRep := flag.Int("work", 150, "work amplification per element")
	factor := flag.Float64("factor", 3, "competing-load factor on workstation 0")
	netScale := flag.Float64("netscale", 1, "Ethernet model scale")
	small := flag.Bool("small", true, "use a small mesh (disable for paper scale)")
	flag.Parse()

	var g *stance.Graph
	var err error
	if *small {
		g, err = stance.Honeycomb(60, 80)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		g = stance.PaperMesh()
	}
	fmt.Printf("mesh: %d vertices; %d workstations; factor-%g load on workstation 0\n",
		g.N, *p, *factor)
	fmt.Printf("decomposition assumes equal machines; %d iterations\n\n", *iters)

	static, _, _ := run(g, *p, *iters, *workRep, *factor, *netScale, false)
	fmt.Printf("without load balancing: %v\n", static.Round(time.Millisecond))

	adaptive, ev, remaps := run(g, *p, *iters, *workRep, *factor, *netScale, true)
	fmt.Printf("with load balancing:    %v\n", adaptive.Round(time.Millisecond))
	if ev != nil {
		d := ev.Decision
		fmt.Printf("\ncheck after %d iterations:\n", ev.Iter)
		fmt.Printf("  estimated capabilities: %v\n", normalized(d.NewWeights))
		fmt.Printf("  predicted phase time: %.4fs -> %.4fs\n", d.PredictedCurrent, d.PredictedNew)
		fmt.Printf("  remapped: %v (check cost %v, remap cost %v)\n",
			d.Remapped, d.CheckTime.Round(time.Microsecond), d.RemapTime.Round(time.Microsecond))
		if remaps > 1 {
			fmt.Printf("  later checks remapped %d more time(s)\n", remaps-1)
		}
	}
	if adaptive < static {
		fmt.Printf("\nload balancing saved %.0f%% (paper Table 5: ~50%%)\n",
			100*(1-adaptive.Seconds()/static.Seconds()))
	}
}

// normalized scales weights to sum 1 and rounds for display.
func normalized(xs []float64) []float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		if sum > 0 {
			x /= sum
		}
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
