// Meshsolver reproduces the paper's static-environment experiment
// (Table 4): the 500-iteration irregular loop over the paper-scale
// unstructured mesh on clusters of one to five workstations, with
// efficiency computed by the Section 4 definition. Each cluster size
// is one session. Scaled-down defaults keep the demo under a minute;
// flags restore paper scale.
//
// By default the solver runs the split-phase overlapped executor
// (Phase C′): each iteration posts its ghost exchange, computes the
// interior elements while the messages are in flight, then finishes
// the boundary strip. Results are bit-for-bit identical to the
// synchronous executor (-overlap=false); the printed idle column shows
// how much exchange latency the interior compute failed to hide.
//
//	go run ./examples/meshsolver
//	go run ./examples/meshsolver -iters 500 -work 300
//	go run ./examples/meshsolver -overlap=false   # the paper's synchronous Phase C
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"stance"
	"stance/internal/metrics"
)

func main() {
	log.SetFlags(0)
	iters := flag.Int("iters", 20, "iterations of the parallel loop (paper: 500)")
	workRep := flag.Int("work", 150, "work amplification per element")
	netScale := flag.Float64("netscale", 1, "Ethernet model scale")
	small := flag.Bool("small", false, "use a small mesh instead of the paper-scale one")
	overlap := flag.Bool("overlap", true, "split-phase overlapped executor (interior/boundary pipelining)")
	flag.Parse()

	var g *stance.Graph
	var err error
	if *small {
		g, err = stance.Honeycomb(40, 60)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		g = stance.PaperMesh()
	}
	fmt.Printf("mesh: %d vertices, %d edges (paper: 30269/44929)\n", g.N, g.NumEdges())
	mode := "overlapped (Phase C′)"
	if !*overlap {
		mode = "synchronous (Phase C)"
	}
	fmt.Printf("%d iterations, work %d, Ethernet x%g, executor %s\n\n", *iters, *workRep, *netScale, mode)
	fmt.Println("Workstations  Time       Efficiency  Exchange idle   (paper: 97.61s..31.50s, eff 1.00..0.62 at 500 iters)")

	var t1 float64
	for p := 1; p <= 5; p++ {
		opts := []stance.Option{
			stance.WithOrdering("rcb"),
			stance.WithNetworkModel(stance.Ethernet(*netScale)),
			stance.WithEnv(stance.UniformEnv(p)),
			stance.WithWorkRep(*workRep),
		}
		if *overlap {
			opts = append(opts, stance.WithOverlap())
		}
		s, err := stance.NewSession(context.Background(), g, p, opts...)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := s.Run(*iters)
		s.Close()
		if err != nil {
			log.Fatal(err)
		}
		tp := rep.Wall.Seconds()
		if p == 1 {
			t1 = tp
		}
		seq := make([]float64, p)
		for i := range seq {
			seq[i] = t1
		}
		eff, err := metrics.EfficiencyStatic(tp, seq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("1..%d          %-9.3fs  %.2f        %v\n", p, tp, eff, rep.Exec.Idle.Round(time.Millisecond))
	}
}
