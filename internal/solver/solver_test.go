package solver

import (
	"fmt"
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/graph"
	"stance/internal/hetero"
	"stance/internal/mesh"
	"stance/internal/order"
)

func testMesh(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := mesh.GridTriangulated(12, 10, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// seqResult runs the solver single-rank as the reference.
func seqResult(t *testing.T, g *graph.Graph, iters, workRep int) []float64 {
	t.Helper()
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	rt, err := core.New(ws[0], g, core.Config{Order: order.RCB})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rt, nil, workRep)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(iters, nil); err != nil {
		t.Fatal(err)
	}
	out, err := s.GatherResult(0)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSolverMatchesSequentialUnderAnyEnvironment(t *testing.T) {
	g := testMesh(t)
	const iters = 5
	want := seqResult(t, g, iters, 1)
	envs := map[string]*hetero.Env{
		"uniform":  hetero.Uniform(3),
		"loaded":   hetero.PaperAdaptive(3, 3),
		"speeds":   {Speeds: []float64{1, 0.5, 2}},
		"windowed": {Speeds: []float64{1, 1, 1}, Loads: []hetero.Load{{Rank: 1, Factor: 2.5, FromIter: 2, UntilIter: 4}}},
	}
	for name, env := range envs {
		for _, workRep := range []int{1, 3} {
			ws, err := comm.NewWorld(3, nil)
			if err != nil {
				t.Fatal(err)
			}
			var got []float64
			err = comm.SPMD(ws, func(c *comm.Comm) error {
				rt, err := core.New(c, g, core.Config{Order: order.RCB})
				if err != nil {
					return err
				}
				s, err := New(rt, env, workRep)
				if err != nil {
					return err
				}
				if err := s.Run(iters, nil); err != nil {
					return err
				}
				full, err := s.GatherResult(0)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					got = full
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s rep=%d: %v", name, workRep, err)
			}
			comm.CloseWorld(ws)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s rep=%d: element %d = %v, want %v (work amplification must not change results)",
						name, workRep, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTimingsAccumulateAndReset(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{})
		if err != nil {
			return err
		}
		s, err := New(rt, nil, 2)
		if err != nil {
			return err
		}
		const iters = 4
		if err := s.Run(iters, nil); err != nil {
			return err
		}
		tm := s.TakeTimings()
		if tm.Items != int64(iters*rt.LocalN()) {
			return fmt.Errorf("items = %d, want %d", tm.Items, iters*rt.LocalN())
		}
		if tm.Compute <= 0 {
			return fmt.Errorf("compute time not measured")
		}
		if tm.RatePerItem() <= 0 {
			return fmt.Errorf("rate = %v", tm.RatePerItem())
		}
		tm2 := s.TakeTimings()
		if tm2.Items != 0 || tm2.Compute != 0 || tm2.Comm != 0 {
			return fmt.Errorf("timings not reset: %+v", tm2)
		}
		if tm2.RatePerItem() != 0 {
			return fmt.Errorf("zero-item rate = %v", tm2.RatePerItem())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkFactorSlowsComputation(t *testing.T) {
	g, err := mesh.Honeycomb(40, 50) // big enough to time reliably
	if err != nil {
		t.Fatal(err)
	}
	measure := func(env *hetero.Env) float64 {
		ws, err := comm.NewWorld(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer comm.CloseWorld(ws)
		rt, err := core.New(ws[0], g, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(rt, env, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(3, nil); err != nil {
			t.Fatal(err)
		}
		return s.TakeTimings().Compute.Seconds()
	}
	base := measure(hetero.Uniform(1))
	loaded := measure(hetero.PaperAdaptive(1, 4))
	if loaded < base*2 {
		t.Errorf("factor-4 load: compute %.4fs vs base %.4fs, want >= 2x slower", loaded, base)
	}
}

func TestRunHook(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	rt, err := core.New(ws[0], g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rt, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	err = s.Run(5, func(iter int) error {
		seen = append(seen, iter)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range seen {
		if it != i+1 {
			t.Fatalf("hook iterations = %v", seen)
		}
	}
	if s.Iter() != 5 {
		t.Errorf("Iter = %d", s.Iter())
	}
	// Hook errors abort the run.
	boom := fmt.Errorf("boom")
	err = s.Run(3, func(int) error { return boom })
	if err != boom {
		t.Errorf("hook error not propagated: %v", err)
	}
}

func TestNewErrors(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	if _, err := New(nil, nil, 1); err == nil {
		t.Error("nil runtime accepted")
	}
	rt, err := core.New(ws[0], g, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(rt, hetero.Uniform(5), 1); err == nil {
		t.Error("environment size mismatch accepted")
	}
	bad := &hetero.Env{Speeds: []float64{1, -1}}
	if _, err := New(rt, bad, 1); err == nil {
		t.Error("invalid environment accepted")
	}
}
