// Package solver implements the paper's motivating application: the
// irregular loop of Figure 8 (neighbor averaging through an
// indirection array over an unstructured mesh), iterated hundreds of
// times with an implicit synchronization per phase. It runs on the
// core runtime and doubles as the measurement instrument: per-phase
// compute and communication times drive the adaptive load balancer,
// and a work-amplification hook lets the hetero package emulate slower
// or loaded workstations.
package solver

import (
	"fmt"
	"time"

	"stance/internal/core"
	"stance/internal/hetero"
)

// Solver holds one rank's state for the iterative loop.
type Solver struct {
	rt  *core.Runtime
	env *hetero.Env
	y   *core.Vector
	t   []float64

	// workRep is the number of times each element's kernel body is
	// repeated per iteration at work factor 1. Amplifying per-element
	// work keeps the compute/communication ratio of the paper's SUN4 +
	// Ethernet setting reproducible on modern hardware.
	workRep int

	iter int

	// Accumulated timings since the last TakeTimings call.
	computeTime time.Duration
	commTime    time.Duration
	items       int64
}

// New creates a solver for the runtime. env may be nil (uniform,
// unloaded). workRep < 1 is treated as 1.
func New(rt *core.Runtime, env *hetero.Env, workRep int) (*Solver, error) {
	if rt == nil {
		return nil, fmt.Errorf("solver: nil runtime")
	}
	if env != nil {
		if err := env.Validate(); err != nil {
			return nil, err
		}
		// The environment describes physical workstations, so it is
		// sized to the root world even when the runtime is bound to an
		// active sub-world.
		if env.P() != rt.Comm().WorldSize() {
			return nil, fmt.Errorf("solver: environment has %d workstations, world has %d",
				env.P(), rt.Comm().WorldSize())
		}
	}
	if workRep < 1 {
		workRep = 1
	}
	s := &Solver{
		rt:      rt,
		env:     env,
		y:       rt.NewVector(),
		workRep: workRep,
	}
	s.InitDefault()
	return s, nil
}

// Y returns the solution vector.
func (s *Solver) Y() *core.Vector { return s.y }

// Runtime returns the underlying runtime.
func (s *Solver) Runtime() *core.Runtime { return s.rt }

// Iter returns the number of completed iterations.
func (s *Solver) Iter() int { return s.iter }

// SetIter fast-forwards the iteration counter — used when a parked
// rank is admitted into the active set mid-run: its solver did not
// step while the others did, and the counter must agree globally for
// the environment's iteration-indexed schedules and the balancer's
// check boundaries to line up.
func (s *Solver) SetIter(iter int) { s.iter = iter }

// InitDefault sets the canonical initial condition y(g) = (g mod 97) + 1.
func (s *Solver) InitDefault() {
	s.y.SetByGlobal(func(g int64) float64 { return float64(g%97) + 1 })
}

// Step executes one phase of the Figure 8 loop:
//
//	gather ghosts; t[i] = sum_k y[ia[k]]; y[i] = t[i]/deg(i)
//
// The kernel body is repeated workRep * WorkFactor(rank, iter) times;
// repeats recompute identical values, so the numerical result is
// independent of the environment — only the time changes, exactly like
// a slower workstation.
func (s *Solver) Step() error {
	c := s.rt.Comm()
	t0 := time.Now()
	if err := s.rt.Exchange(s.y); err != nil {
		return err
	}
	s.commTime += time.Since(t0)

	factor := 1.0
	if s.env != nil {
		// Index the environment by world rank: the workstation identity
		// survives membership changes that renumber the active
		// sub-world.
		factor = s.env.WorkFactor(c.WorldRank(), s.iter)
	}
	reps := float64(s.workRep) * factor
	full := int(reps)
	frac := reps - float64(full)

	nLocal := s.rt.LocalN()
	if cap(s.t) < nLocal {
		s.t = make([]float64, nLocal)
	}
	tv := s.t[:nLocal]
	xadj, adj := s.rt.LocalAdj()
	data := s.y.Data

	t1 := time.Now()
	for rep := 0; rep <= full; rep++ {
		limit := nLocal
		if rep == full {
			limit = int(frac * float64(nLocal))
		}
		for u := 0; u < limit; u++ {
			sum := 0.0
			for k := xadj[u]; k < xadj[u+1]; k++ {
				sum += data[adj[k]]
			}
			tv[u] = sum
		}
	}
	// One guaranteed full pass so results never depend on the factor.
	for u := 0; u < nLocal; u++ {
		sum := 0.0
		for k := xadj[u]; k < xadj[u+1]; k++ {
			sum += data[adj[k]]
		}
		tv[u] = sum
	}
	for u := 0; u < nLocal; u++ {
		if d := xadj[u+1] - xadj[u]; d > 0 {
			data[u] = tv[u] / float64(d)
		}
	}
	s.computeTime += time.Since(t1)
	s.items += int64(nLocal)
	s.iter++
	return nil
}

// Timings are the accumulated per-rank measurements since the last
// TakeTimings.
type Timings struct {
	Compute time.Duration
	Comm    time.Duration
	// Items is the total number of element-iterations computed; the
	// load monitor's "average computation time per data item" is
	// Compute/Items (paper Section 5).
	Items int64
}

// RatePerItem returns the measured compute seconds per element, the
// paper's capability estimate. Zero items yields zero.
func (t Timings) RatePerItem() float64 {
	if t.Items == 0 {
		return 0
	}
	return t.Compute.Seconds() / float64(t.Items)
}

// Add accumulates another measurement window into t.
func (t *Timings) Add(o Timings) {
	t.Compute += o.Compute
	t.Comm += o.Comm
	t.Items += o.Items
}

// TakeTimings returns the accumulated measurements and resets them.
func (s *Solver) TakeTimings() Timings {
	t := Timings{Compute: s.computeTime, Comm: s.commTime, Items: s.items}
	s.computeTime, s.commTime, s.items = 0, 0, 0
	return t
}

// Run executes n iterations, invoking afterIter (if non-nil) once per
// completed iteration — the hook the load balancer's periodic check
// uses.
func (s *Solver) Run(n int, afterIter func(iter int) error) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
		if afterIter != nil {
			if err := afterIter(s.iter); err != nil {
				return err
			}
		}
	}
	return nil
}

// SequentialReference runs the same kernel single-rank and returns the
// gathered result; see core's tests for the bit-exactness argument.
func (s *Solver) GatherResult(root int) ([]float64, error) {
	return s.rt.GatherGlobal(root, s.y)
}
