// Package solver implements the paper's motivating application: the
// irregular loop of Figure 8 (neighbor averaging through an
// indirection array over an unstructured mesh), iterated hundreds of
// times with an implicit synchronization per phase. It runs on the
// core runtime and doubles as the measurement instrument: per-phase
// compute and communication times drive the adaptive load balancer,
// and a work-amplification hook lets the hetero package emulate slower
// or loaded workstations.
package solver

import (
	"fmt"
	"time"

	"stance/internal/core"
	"stance/internal/hetero"
	"stance/internal/vtime"
)

// Solver holds one rank's state for the iterative loop.
type Solver struct {
	rt    *core.Runtime
	env   *hetero.Env
	clock vtime.Clock
	y     *core.Vector
	t     []float64

	// fields are the independent solution vectors the loop advances
	// each iteration; fields[0] is y. A multi-field solver models the
	// paper's multi-vector kernels: every field runs the same sweep on
	// its own data, so their exchanges are independent ops the
	// pipelined executor can keep in flight together.
	fields []*core.Vector
	// handles are the per-field in-flight exchanges of the pipelined
	// mode, reused across iterations.
	handles []*core.OpHandle

	// kern is the per-iteration compute body (Figure8 by default).
	kern Kernel
	// overlap selects the split-phase executor mode: ExchangeStart,
	// interior sweep while messages fly, Wait, boundary sweep — one op
	// in flight at a time. Requires a SubsetKernel.
	overlap bool
	// pipeline, when positive, selects the asynchronous dataflow mode:
	// every field's exchange is a live handle and, at depth >= 2, a
	// field's next-iteration exchange departs while the remaining
	// fields still drain the current one. Mutually exclusive with
	// overlap; requires a SubsetKernel.
	pipeline int

	// workRep is the number of times each element's kernel body is
	// repeated per iteration at work factor 1. Amplifying per-element
	// work keeps the compute/communication ratio of the paper's SUN4 +
	// Ethernet setting reproducible on modern hardware.
	workRep int

	// costPerItem, when positive, switches compute emulation from real
	// spinning to virtual charging: the kernel sweeps each element once
	// (repeats recompute identical values, so numerics are unchanged)
	// and the solver charges costPerItem × workRep × WorkFactor per
	// element to the clock instead. On a simulated clock this is what
	// makes heterogeneity an exact, instant, deterministic quantity; on
	// the real clock it emulates compute by sleeping.
	costPerItem time.Duration

	iter int

	// Accumulated timings since the last TakeTimings call.
	computeTime time.Duration
	commTime    time.Duration
	items       int64
}

// New creates a solver for the runtime. env may be nil (uniform,
// unloaded). workRep < 1 is treated as 1.
func New(rt *core.Runtime, env *hetero.Env, workRep int) (*Solver, error) {
	if rt == nil {
		return nil, fmt.Errorf("solver: nil runtime")
	}
	if env != nil {
		if err := env.Validate(); err != nil {
			return nil, err
		}
		// The environment describes physical workstations, so it is
		// sized to the root world even when the runtime is bound to an
		// active sub-world.
		if env.P() != rt.Comm().WorldSize() {
			return nil, fmt.Errorf("solver: environment has %d workstations, world has %d",
				env.P(), rt.Comm().WorldSize())
		}
	}
	if workRep < 1 {
		workRep = 1
	}
	s := &Solver{
		rt:      rt,
		env:     env,
		clock:   rt.Clock(),
		y:       rt.NewVector(),
		kern:    Figure8{},
		workRep: workRep,
	}
	s.fields = []*core.Vector{s.y}
	s.InitDefault()
	return s, nil
}

// Kernel returns the solver's compute body.
func (s *Solver) Kernel() Kernel { return s.kern }

// SetKernel replaces the compute body. With the overlapped or
// pipelined mode enabled the kernel must support the boundary split
// (SubsetKernel).
func (s *Solver) SetKernel(k Kernel) error {
	if k == nil {
		return fmt.Errorf("solver: nil kernel")
	}
	if s.overlap || s.pipeline > 0 {
		if _, ok := k.(SubsetKernel); !ok {
			return fmt.Errorf("solver: kernel %T has no boundary split (SubsetKernel); disable the overlapped/pipelined mode or use a split-capable kernel", k)
		}
	}
	s.kern = k
	return nil
}

// CanOverlap reports whether the current kernel supports the
// interior/boundary split the overlapped executor mode needs.
func (s *Solver) CanOverlap() bool {
	_, ok := s.kern.(SubsetKernel)
	return ok
}

// Overlap reports whether the solver runs the split-phase executor.
func (s *Solver) Overlap() bool { return s.overlap }

// SetOverlap switches the solver between the synchronous executor
// (Exchange, then the full sweep) and the split-phase overlapped one
// (ExchangeStart, interior sweep while messages are in flight, the
// handle's Wait, boundary sweep). The numerical result is identical
// bit for bit; only the schedule of communication against computation
// changes. Enabling it fails — loudly, never falling back — when the
// kernel has no boundary split.
func (s *Solver) SetOverlap(on bool) error {
	if on && !s.CanOverlap() {
		return fmt.Errorf("solver: kernel %T has no boundary split (SubsetKernel); cannot run overlapped", s.kern)
	}
	if on && s.pipeline > 0 {
		return fmt.Errorf("solver: overlapped and pipelined modes are mutually exclusive (pipelining subsumes the overlap)")
	}
	s.overlap = on
	return nil
}

// Pipeline returns the configured pipeline depth (zero when the
// pipelined mode is off).
func (s *Solver) Pipeline() int { return s.pipeline }

// SetPipeline switches the solver to the asynchronous dataflow
// executor: every field's exchange becomes a live op handle serviced
// fairly while the kernel computes. Depth 1 keeps all handles within
// one iteration (start every field, then sweep and drain each); depth
// 2 — the default when the session enables pipelining — additionally
// lets a field's next-iteration exchange depart while the remaining
// fields still drain the current one (software pipelining across
// iterations). The kernel's dependency chain (a field's exchange needs
// its previous divide) bounds the useful depth at 2; larger values
// behave like 2. The numerical result is bit-for-bit identical to the
// synchronous executor. Depth 0 restores the synchronous/overlapped
// dispatch. Requires a SubsetKernel; mutually exclusive with
// SetOverlap.
func (s *Solver) SetPipeline(depth int) error {
	if depth < 0 {
		return fmt.Errorf("solver: negative pipeline depth %d", depth)
	}
	if depth == 0 {
		s.pipeline = 0
		return nil
	}
	if s.overlap {
		return fmt.Errorf("solver: overlapped and pipelined modes are mutually exclusive (pipelining subsumes the overlap)")
	}
	if !s.CanOverlap() {
		return fmt.Errorf("solver: kernel %T has no boundary split (SubsetKernel); cannot run pipelined", s.kern)
	}
	s.pipeline = depth
	return nil
}

// Fields returns the number of independent solution fields.
func (s *Solver) Fields() int { return len(s.fields) }

// Field returns the f-th solution vector (field 0 is Y).
func (s *Solver) Field(f int) *core.Vector { return s.fields[f] }

// SetFields grows the solver to n independent solution fields. Field 0
// keeps the canonical initial condition, so its trajectory is
// bit-identical to a single-field run; field f starts from the offset
// condition y_f(g) = (g mod 97) + 1 + f. Collective — every rank must
// call it with the same n (vector creation pairs across ranks), before
// the first Step. Fields cannot be dropped.
func (s *Solver) SetFields(n int) error {
	if n < 1 {
		return fmt.Errorf("solver: field count must be at least 1, got %d", n)
	}
	if n < len(s.fields) {
		return fmt.Errorf("solver: cannot drop fields (have %d, want %d)", len(s.fields), n)
	}
	for f := len(s.fields); f < n; f++ {
		v := s.rt.NewVector()
		off := float64(f)
		v.SetByGlobal(func(g int64) float64 { return float64(g%97) + 1 + off })
		s.fields = append(s.fields, v)
	}
	return nil
}

// SetVirtualCompute switches the solver to virtual compute charging:
// each element costs perItem × workRep × WorkFactor on the clock per
// iteration, charged with a single Sleep, while the kernel sweeps the
// data exactly once for the numerics. The result is bit-for-bit the
// same as the spinning mode; only where the time comes from changes.
// perItem <= 0 restores real spinning.
func (s *Solver) SetVirtualCompute(perItem time.Duration) {
	if perItem < 0 {
		perItem = 0
	}
	s.costPerItem = perItem
}

// VirtualCompute returns the virtual per-element compute cost (zero in
// spinning mode).
func (s *Solver) VirtualCompute() time.Duration { return s.costPerItem }

// virtualCost returns this iteration's virtual compute charge for n
// elements at the current work amplification. Pure float arithmetic on
// deterministic inputs, so identical on every run.
func (s *Solver) virtualCost(n int) time.Duration {
	factor := 1.0
	if s.env != nil {
		factor = s.env.WorkFactor(s.rt.Comm().WorldRank(), s.iter)
	}
	return time.Duration(float64(s.costPerItem) * float64(s.workRep) * factor * float64(n))
}

// Y returns the solution vector.
func (s *Solver) Y() *core.Vector { return s.y }

// Runtime returns the underlying runtime.
func (s *Solver) Runtime() *core.Runtime { return s.rt }

// Iter returns the number of completed iterations.
func (s *Solver) Iter() int { return s.iter }

// SetIter fast-forwards the iteration counter — used when a parked
// rank is admitted into the active set mid-run: its solver did not
// step while the others did, and the counter must agree globally for
// the environment's iteration-indexed schedules and the balancer's
// check boundaries to line up.
func (s *Solver) SetIter(iter int) { s.iter = iter }

// InitDefault sets the canonical initial condition y(g) = (g mod 97) + 1
// on field 0 and the offset condition y_f(g) = (g mod 97) + 1 + f on
// every additional field.
func (s *Solver) InitDefault() {
	for f, v := range s.fields {
		off := float64(f)
		v.SetByGlobal(func(g int64) float64 { return float64(g%97) + 1 + off })
	}
}

// reps returns this iteration's work amplification as whole passes
// plus a fractional pass.
func (s *Solver) reps() (full int, frac float64) {
	factor := 1.0
	if s.env != nil {
		// Index the environment by world rank: the workstation identity
		// survives membership changes that renumber the active
		// sub-world.
		factor = s.env.WorkFactor(s.rt.Comm().WorldRank(), s.iter)
	}
	r := float64(s.workRep) * factor
	full = int(r)
	frac = r - float64(full)
	return full, frac
}

// scratch returns the tv buffer sized for the current local section.
func (s *Solver) scratch(nLocal int) []float64 {
	if cap(s.t) < nLocal {
		s.t = make([]float64, nLocal)
	}
	return s.t[:nLocal]
}

// Step executes one phase of the Figure 8 loop on every field:
//
//	gather ghosts; t[i] = sum_k y[ia[k]]; y[i] = t[i]/deg(i)
//
// The kernel body is repeated workRep * WorkFactor(rank, iter) times;
// repeats recompute identical values, so the numerical result is
// independent of the environment — only the time changes, exactly like
// a slower workstation. With the overlapped mode enabled the exchange
// is split-phase and the interior sweep hides the message flight time;
// the result is bit-for-bit the same either way. In pipelined mode the
// in-flight handles span iterations, so stepping one iteration at a
// time is not meaningful — use Run.
func (s *Solver) Step() error {
	if s.pipeline > 0 {
		return fmt.Errorf("solver: Step is unavailable in pipelined mode (op handles span iterations); use Run")
	}
	for _, v := range s.fields {
		var err error
		if s.overlap {
			err = s.fieldOverlap(v)
		} else {
			err = s.fieldSync(v)
		}
		if err != nil {
			return err
		}
	}
	s.items += int64(s.rt.LocalN() * len(s.fields))
	s.iter++
	return nil
}

// fieldSync is the paper's synchronous phase for one field: gather
// every ghost, then sweep all local elements.
func (s *Solver) fieldSync(v *core.Vector) error {
	t0 := s.clock.Now()
	if err := s.rt.Exchange(v); err != nil {
		return err
	}
	s.commTime += s.clock.Now().Sub(t0)

	nLocal := s.rt.LocalN()
	tv := s.scratch(nLocal)
	xadj, adj := s.rt.LocalAdj()
	data := v.Data

	if s.costPerItem > 0 {
		// Virtual compute: one real sweep for the numerics, one exact
		// charge for the time.
		s.kern.Sweep(data, xadj, adj, tv, 0, nLocal)
		s.divide(data, xadj, tv, nLocal)
		d := s.virtualCost(nLocal)
		s.clock.Sleep(d)
		s.computeTime += d
	} else {
		full, frac := s.reps()
		t1 := s.clock.Now()
		for rep := 0; rep <= full; rep++ {
			limit := nLocal
			if rep == full {
				limit = int(frac * float64(nLocal))
			}
			s.kern.Sweep(data, xadj, adj, tv, 0, limit)
		}
		// One guaranteed full pass so results never depend on the factor.
		s.kern.Sweep(data, xadj, adj, tv, 0, nLocal)
		s.divide(data, xadj, tv, nLocal)
		s.computeTime += s.clock.Now().Sub(t1)
	}
	return nil
}

// fieldOverlap is the split-phase variant (Phase C′) for one field:
// post the exchange, sweep the interior strip while the messages are
// in flight, drain the arrivals, then sweep the boundary strip. One op
// in flight at a time — fields serialize, which is what the pipelined
// mode improves on. The per-element sums read exactly the same values
// as the synchronous step — interior elements touch no ghost, boundary
// sums run after every ghost has landed — so the result is bit-for-bit
// identical.
func (s *Solver) fieldOverlap(v *core.Vector) error {
	kern, ok := s.kern.(SubsetKernel)
	if !ok {
		return fmt.Errorf("solver: kernel %T has no boundary split (SubsetKernel); cannot run overlapped", s.kern)
	}
	t0 := s.clock.Now()
	h, err := s.rt.ExchangeStart(v)
	if err != nil {
		return err
	}
	s.commTime += s.clock.Now().Sub(t0)

	nLocal := s.rt.LocalN()
	tv := s.scratch(nLocal)
	xadj, adj := s.rt.LocalAdj()
	data := v.Data
	plan := s.rt.Plan()
	interior, boundary := plan.Interior(), plan.Boundary()

	if s.costPerItem > 0 {
		// Virtual compute: the interior charge happens between Start
		// and Wait, so in virtual time the interior sweep hides the
		// message flight exactly like real interior compute would —
		// the in-flight deliveries land while this rank sleeps.
		kern.SweepIdx(data, xadj, adj, tv, interior)
		d := s.virtualCost(len(interior))
		s.clock.Sleep(d)
		s.computeTime += d

		t2 := s.clock.Now()
		if err := h.Wait(); err != nil {
			return err
		}
		s.commTime += s.clock.Now().Sub(t2)

		kern.SweepIdx(data, xadj, adj, tv, boundary)
		s.divide(data, xadj, tv, nLocal)
		d = s.virtualCost(len(boundary))
		s.clock.Sleep(d)
		s.computeTime += d
		return nil
	}

	full, frac := s.reps()
	t1 := s.clock.Now()
	for rep := 0; rep <= full; rep++ {
		limit := len(interior)
		if rep == full {
			limit = int(frac * float64(limit))
		}
		kern.SweepIdx(data, xadj, adj, tv, interior[:limit])
	}
	kern.SweepIdx(data, xadj, adj, tv, interior)
	s.computeTime += s.clock.Now().Sub(t1)

	t2 := s.clock.Now()
	if err := h.Wait(); err != nil {
		return err
	}
	s.commTime += s.clock.Now().Sub(t2)

	t3 := s.clock.Now()
	for rep := 0; rep <= full; rep++ {
		limit := len(boundary)
		if rep == full {
			limit = int(frac * float64(limit))
		}
		kern.SweepIdx(data, xadj, adj, tv, boundary[:limit])
	}
	kern.SweepIdx(data, xadj, adj, tv, boundary)
	s.divide(data, xadj, tv, nLocal)
	s.computeTime += s.clock.Now().Sub(t3)
	return nil
}

// divide finishes the phase: y[u] = tv[u] / deg(u).
func (s *Solver) divide(data []float64, xadj []int32, tv []float64, nLocal int) {
	for u := 0; u < nLocal; u++ {
		if d := xadj[u+1] - xadj[u]; d > 0 {
			data[u] = tv[u] / float64(d)
		}
	}
}

// Timings are the accumulated per-rank measurements since the last
// TakeTimings. The JSON field names are stable API (the stanced job
// service serves reports over HTTP): durations marshal as integer
// nanoseconds, hence the _ns suffix.
type Timings struct {
	Compute time.Duration `json:"compute_ns"`
	Comm    time.Duration `json:"comm_ns"`
	// Items is the total number of element-iterations computed; the
	// load monitor's "average computation time per data item" is
	// Compute/Items (paper Section 5).
	Items int64 `json:"items"`
}

// RatePerItem returns the measured compute seconds per element, the
// paper's capability estimate. Zero items yields zero.
func (t Timings) RatePerItem() float64 {
	if t.Items == 0 {
		return 0
	}
	return t.Compute.Seconds() / float64(t.Items)
}

// Add accumulates another measurement window into t.
func (t *Timings) Add(o Timings) {
	t.Compute += o.Compute
	t.Comm += o.Comm
	t.Items += o.Items
}

// TakeTimings returns the accumulated measurements and resets them.
func (s *Solver) TakeTimings() Timings {
	t := Timings{Compute: s.computeTime, Comm: s.commTime, Items: s.items}
	s.computeTime, s.commTime, s.items = 0, 0, 0
	return t
}

// Run executes n iterations, invoking afterIter (if non-nil) once per
// completed iteration — the hook the session's cancellation poll and
// the load balancer's periodic check use. In pipelined mode afterIter
// may run while next-iteration handles are in flight, so it must not
// trigger a Remap or Rebind; the session segments its runs so checks
// fall between Run calls, by which point every handle has drained.
func (s *Solver) Run(n int, afterIter func(iter int) error) error {
	if s.pipeline > 0 {
		return s.runPipelined(n, afterIter)
	}
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
		if afterIter != nil {
			if err := afterIter(s.iter); err != nil {
				return err
			}
		}
	}
	return nil
}

// runPipelined drives n iterations of the asynchronous dataflow loop.
// At depth 1 every field's exchange is posted at the top of each
// iteration and drained within it; at depth >= 2 the prologue posts
// the first iteration's exchanges and each field re-posts its next
// exchange as soon as its divide completes, so iteration k+1's
// messages fly while the remaining fields still drain iteration k. The
// final iteration never re-posts: Run always returns with zero live
// handles, which is what lets the session remap, rebind or gather at
// segment boundaries.
func (s *Solver) runPipelined(n int, afterIter func(iter int) error) error {
	kern, ok := s.kern.(SubsetKernel)
	if !ok {
		return fmt.Errorf("solver: kernel %T has no boundary split (SubsetKernel); cannot run pipelined", s.kern)
	}
	if n <= 0 {
		return nil
	}
	if cap(s.handles) < len(s.fields) {
		s.handles = make([]*core.OpHandle, len(s.fields))
	}
	s.handles = s.handles[:len(s.fields)]
	cross := s.pipeline >= 2
	if cross {
		if err := s.startAll(); err != nil {
			return err
		}
	}
	for k := 0; k < n; k++ {
		if !cross {
			if err := s.startAll(); err != nil {
				return err
			}
		}
		if err := s.stepPipelined(kern, cross && k < n-1); err != nil {
			return err
		}
		if afterIter != nil {
			if err := afterIter(s.iter); err != nil {
				return err
			}
		}
	}
	return nil
}

// startAll posts every field's exchange, one live handle per field.
func (s *Solver) startAll() error {
	t0 := s.clock.Now()
	for f, v := range s.fields {
		h, err := s.rt.ExchangeStart(v)
		if err != nil {
			return err
		}
		s.handles[f] = h
	}
	s.commTime += s.clock.Now().Sub(t0)
	return nil
}

// stepPipelined completes one iteration over all fields against their
// already-posted exchanges: per field, sweep the interior strip (its
// own exchange and every other live handle make progress meanwhile),
// Wait, sweep the boundary strip, divide — and, with restart set,
// immediately post the field's next-iteration exchange. The values
// each sum reads are exactly the synchronous schedule's, so the result
// is bit-for-bit identical; only the communication overlap changes.
func (s *Solver) stepPipelined(kern SubsetKernel, restart bool) error {
	nLocal := s.rt.LocalN()
	tv := s.scratch(nLocal)
	xadj, adj := s.rt.LocalAdj()
	plan := s.rt.Plan()
	interior, boundary := plan.Interior(), plan.Boundary()

	for f, v := range s.fields {
		data := v.Data
		if s.costPerItem > 0 {
			kern.SweepIdx(data, xadj, adj, tv, interior)
			d := s.virtualCost(len(interior))
			s.clock.Sleep(d)
			s.computeTime += d
		} else {
			full, frac := s.reps()
			t1 := s.clock.Now()
			for rep := 0; rep <= full; rep++ {
				limit := len(interior)
				if rep == full {
					limit = int(frac * float64(limit))
				}
				kern.SweepIdx(data, xadj, adj, tv, interior[:limit])
			}
			kern.SweepIdx(data, xadj, adj, tv, interior)
			s.computeTime += s.clock.Now().Sub(t1)
		}

		t2 := s.clock.Now()
		h := s.handles[f]
		s.handles[f] = nil
		if err := h.Wait(); err != nil {
			return err
		}
		s.commTime += s.clock.Now().Sub(t2)

		if s.costPerItem > 0 {
			kern.SweepIdx(data, xadj, adj, tv, boundary)
			s.divide(data, xadj, tv, nLocal)
			d := s.virtualCost(len(boundary))
			s.clock.Sleep(d)
			s.computeTime += d
		} else {
			full, frac := s.reps()
			t3 := s.clock.Now()
			for rep := 0; rep <= full; rep++ {
				limit := len(boundary)
				if rep == full {
					limit = int(frac * float64(limit))
				}
				kern.SweepIdx(data, xadj, adj, tv, boundary[:limit])
			}
			kern.SweepIdx(data, xadj, adj, tv, boundary)
			s.divide(data, xadj, tv, nLocal)
			s.computeTime += s.clock.Now().Sub(t3)
		}

		if restart {
			// The field's next-iteration exchange departs while the
			// remaining fields still drain this iteration — the
			// cross-iteration software pipeline.
			t4 := s.clock.Now()
			nh, err := s.rt.ExchangeStart(v)
			if err != nil {
				return err
			}
			s.handles[f] = nh
			s.commTime += s.clock.Now().Sub(t4)
		}
	}
	s.items += int64(nLocal * len(s.fields))
	s.iter++
	return nil
}

// SequentialReference runs the same kernel single-rank and returns the
// gathered result; see core's tests for the bit-exactness argument.
func (s *Solver) GatherResult(root int) ([]float64, error) {
	return s.rt.GatherGlobal(root, s.y)
}

// GatherField assembles field f on root in transformed-global order
// (field 0 is the GatherResult vector). Collective.
func (s *Solver) GatherField(root, f int) ([]float64, error) {
	if f < 0 || f >= len(s.fields) {
		return nil, fmt.Errorf("solver: field %d of %d", f, len(s.fields))
	}
	return s.rt.GatherGlobal(root, s.fields[f])
}
