// Package solver implements the paper's motivating application: the
// irregular loop of Figure 8 (neighbor averaging through an
// indirection array over an unstructured mesh), iterated hundreds of
// times with an implicit synchronization per phase. It runs on the
// core runtime and doubles as the measurement instrument: per-phase
// compute and communication times drive the adaptive load balancer,
// and a work-amplification hook lets the hetero package emulate slower
// or loaded workstations.
package solver

import (
	"fmt"
	"time"

	"stance/internal/core"
	"stance/internal/hetero"
	"stance/internal/vtime"
)

// Solver holds one rank's state for the iterative loop.
type Solver struct {
	rt    *core.Runtime
	env   *hetero.Env
	clock vtime.Clock
	y     *core.Vector
	t     []float64

	// kern is the per-iteration compute body (Figure8 by default).
	kern Kernel
	// overlap selects the split-phase executor mode: ExchangeStart,
	// interior sweep while messages fly, ExchangeFinish, boundary
	// sweep. Requires a SubsetKernel.
	overlap bool

	// workRep is the number of times each element's kernel body is
	// repeated per iteration at work factor 1. Amplifying per-element
	// work keeps the compute/communication ratio of the paper's SUN4 +
	// Ethernet setting reproducible on modern hardware.
	workRep int

	// costPerItem, when positive, switches compute emulation from real
	// spinning to virtual charging: the kernel sweeps each element once
	// (repeats recompute identical values, so numerics are unchanged)
	// and the solver charges costPerItem × workRep × WorkFactor per
	// element to the clock instead. On a simulated clock this is what
	// makes heterogeneity an exact, instant, deterministic quantity; on
	// the real clock it emulates compute by sleeping.
	costPerItem time.Duration

	iter int

	// Accumulated timings since the last TakeTimings call.
	computeTime time.Duration
	commTime    time.Duration
	items       int64
}

// New creates a solver for the runtime. env may be nil (uniform,
// unloaded). workRep < 1 is treated as 1.
func New(rt *core.Runtime, env *hetero.Env, workRep int) (*Solver, error) {
	if rt == nil {
		return nil, fmt.Errorf("solver: nil runtime")
	}
	if env != nil {
		if err := env.Validate(); err != nil {
			return nil, err
		}
		// The environment describes physical workstations, so it is
		// sized to the root world even when the runtime is bound to an
		// active sub-world.
		if env.P() != rt.Comm().WorldSize() {
			return nil, fmt.Errorf("solver: environment has %d workstations, world has %d",
				env.P(), rt.Comm().WorldSize())
		}
	}
	if workRep < 1 {
		workRep = 1
	}
	s := &Solver{
		rt:      rt,
		env:     env,
		clock:   rt.Clock(),
		y:       rt.NewVector(),
		kern:    Figure8{},
		workRep: workRep,
	}
	s.InitDefault()
	return s, nil
}

// Kernel returns the solver's compute body.
func (s *Solver) Kernel() Kernel { return s.kern }

// SetKernel replaces the compute body. With the overlapped mode
// enabled the kernel must support the boundary split (SubsetKernel).
func (s *Solver) SetKernel(k Kernel) error {
	if k == nil {
		return fmt.Errorf("solver: nil kernel")
	}
	if s.overlap {
		if _, ok := k.(SubsetKernel); !ok {
			return fmt.Errorf("solver: kernel %T has no boundary split (SubsetKernel); disable the overlapped mode or use a split-capable kernel", k)
		}
	}
	s.kern = k
	return nil
}

// CanOverlap reports whether the current kernel supports the
// interior/boundary split the overlapped executor mode needs.
func (s *Solver) CanOverlap() bool {
	_, ok := s.kern.(SubsetKernel)
	return ok
}

// Overlap reports whether the solver runs the split-phase executor.
func (s *Solver) Overlap() bool { return s.overlap }

// SetOverlap switches the solver between the synchronous executor
// (Exchange, then the full sweep) and the split-phase overlapped one
// (ExchangeStart, interior sweep while messages are in flight,
// ExchangeFinish, boundary sweep). The numerical result is identical
// bit for bit; only the schedule of communication against computation
// changes. Enabling it fails — loudly, never falling back — when the
// kernel has no boundary split.
func (s *Solver) SetOverlap(on bool) error {
	if on && !s.CanOverlap() {
		return fmt.Errorf("solver: kernel %T has no boundary split (SubsetKernel); cannot run overlapped", s.kern)
	}
	s.overlap = on
	return nil
}

// SetVirtualCompute switches the solver to virtual compute charging:
// each element costs perItem × workRep × WorkFactor on the clock per
// iteration, charged with a single Sleep, while the kernel sweeps the
// data exactly once for the numerics. The result is bit-for-bit the
// same as the spinning mode; only where the time comes from changes.
// perItem <= 0 restores real spinning.
func (s *Solver) SetVirtualCompute(perItem time.Duration) {
	if perItem < 0 {
		perItem = 0
	}
	s.costPerItem = perItem
}

// VirtualCompute returns the virtual per-element compute cost (zero in
// spinning mode).
func (s *Solver) VirtualCompute() time.Duration { return s.costPerItem }

// virtualCost returns this iteration's virtual compute charge for n
// elements at the current work amplification. Pure float arithmetic on
// deterministic inputs, so identical on every run.
func (s *Solver) virtualCost(n int) time.Duration {
	factor := 1.0
	if s.env != nil {
		factor = s.env.WorkFactor(s.rt.Comm().WorldRank(), s.iter)
	}
	return time.Duration(float64(s.costPerItem) * float64(s.workRep) * factor * float64(n))
}

// Y returns the solution vector.
func (s *Solver) Y() *core.Vector { return s.y }

// Runtime returns the underlying runtime.
func (s *Solver) Runtime() *core.Runtime { return s.rt }

// Iter returns the number of completed iterations.
func (s *Solver) Iter() int { return s.iter }

// SetIter fast-forwards the iteration counter — used when a parked
// rank is admitted into the active set mid-run: its solver did not
// step while the others did, and the counter must agree globally for
// the environment's iteration-indexed schedules and the balancer's
// check boundaries to line up.
func (s *Solver) SetIter(iter int) { s.iter = iter }

// InitDefault sets the canonical initial condition y(g) = (g mod 97) + 1.
func (s *Solver) InitDefault() {
	s.y.SetByGlobal(func(g int64) float64 { return float64(g%97) + 1 })
}

// reps returns this iteration's work amplification as whole passes
// plus a fractional pass.
func (s *Solver) reps() (full int, frac float64) {
	factor := 1.0
	if s.env != nil {
		// Index the environment by world rank: the workstation identity
		// survives membership changes that renumber the active
		// sub-world.
		factor = s.env.WorkFactor(s.rt.Comm().WorldRank(), s.iter)
	}
	r := float64(s.workRep) * factor
	full = int(r)
	frac = r - float64(full)
	return full, frac
}

// scratch returns the tv buffer sized for the current local section.
func (s *Solver) scratch(nLocal int) []float64 {
	if cap(s.t) < nLocal {
		s.t = make([]float64, nLocal)
	}
	return s.t[:nLocal]
}

// Step executes one phase of the Figure 8 loop:
//
//	gather ghosts; t[i] = sum_k y[ia[k]]; y[i] = t[i]/deg(i)
//
// The kernel body is repeated workRep * WorkFactor(rank, iter) times;
// repeats recompute identical values, so the numerical result is
// independent of the environment — only the time changes, exactly like
// a slower workstation. With the overlapped mode enabled the exchange
// is split-phase and the interior sweep hides the message flight time;
// the result is bit-for-bit the same either way.
func (s *Solver) Step() error {
	if s.overlap {
		return s.stepOverlap()
	}
	return s.stepSync()
}

// stepSync is the paper's synchronous phase: gather every ghost, then
// sweep all local elements.
func (s *Solver) stepSync() error {
	t0 := s.clock.Now()
	if err := s.rt.Exchange(s.y); err != nil {
		return err
	}
	s.commTime += s.clock.Now().Sub(t0)

	nLocal := s.rt.LocalN()
	tv := s.scratch(nLocal)
	xadj, adj := s.rt.LocalAdj()
	data := s.y.Data

	if s.costPerItem > 0 {
		// Virtual compute: one real sweep for the numerics, one exact
		// charge for the time.
		s.kern.Sweep(data, xadj, adj, tv, 0, nLocal)
		s.divide(data, xadj, tv, nLocal)
		d := s.virtualCost(nLocal)
		s.clock.Sleep(d)
		s.computeTime += d
	} else {
		full, frac := s.reps()
		t1 := s.clock.Now()
		for rep := 0; rep <= full; rep++ {
			limit := nLocal
			if rep == full {
				limit = int(frac * float64(nLocal))
			}
			s.kern.Sweep(data, xadj, adj, tv, 0, limit)
		}
		// One guaranteed full pass so results never depend on the factor.
		s.kern.Sweep(data, xadj, adj, tv, 0, nLocal)
		s.divide(data, xadj, tv, nLocal)
		s.computeTime += s.clock.Now().Sub(t1)
	}
	s.items += int64(nLocal)
	s.iter++
	return nil
}

// stepOverlap is the split-phase variant (Phase C′): post the exchange,
// sweep the interior strip while the messages are in flight, drain the
// arrivals, then sweep the boundary strip. The per-element sums read
// exactly the same values as the synchronous step — interior elements
// touch no ghost, boundary sums run after every ghost has landed — so
// the result is bit-for-bit identical.
func (s *Solver) stepOverlap() error {
	kern, ok := s.kern.(SubsetKernel)
	if !ok {
		return fmt.Errorf("solver: kernel %T has no boundary split (SubsetKernel); cannot run overlapped", s.kern)
	}
	t0 := s.clock.Now()
	if err := s.rt.ExchangeStart(s.y); err != nil {
		return err
	}
	s.commTime += s.clock.Now().Sub(t0)

	nLocal := s.rt.LocalN()
	tv := s.scratch(nLocal)
	xadj, adj := s.rt.LocalAdj()
	data := s.y.Data
	plan := s.rt.Plan()
	interior, boundary := plan.Interior(), plan.Boundary()

	if s.costPerItem > 0 {
		// Virtual compute: the interior charge happens between Start
		// and Finish, so in virtual time the interior sweep hides the
		// message flight exactly like real interior compute would —
		// the in-flight deliveries land while this rank sleeps.
		kern.SweepIdx(data, xadj, adj, tv, interior)
		d := s.virtualCost(len(interior))
		s.clock.Sleep(d)
		s.computeTime += d

		t2 := s.clock.Now()
		if err := s.rt.ExchangeFinish(); err != nil {
			return err
		}
		s.commTime += s.clock.Now().Sub(t2)

		kern.SweepIdx(data, xadj, adj, tv, boundary)
		s.divide(data, xadj, tv, nLocal)
		d = s.virtualCost(len(boundary))
		s.clock.Sleep(d)
		s.computeTime += d
		s.items += int64(nLocal)
		s.iter++
		return nil
	}

	full, frac := s.reps()
	t1 := s.clock.Now()
	for rep := 0; rep <= full; rep++ {
		limit := len(interior)
		if rep == full {
			limit = int(frac * float64(limit))
		}
		kern.SweepIdx(data, xadj, adj, tv, interior[:limit])
	}
	kern.SweepIdx(data, xadj, adj, tv, interior)
	s.computeTime += s.clock.Now().Sub(t1)

	t2 := s.clock.Now()
	if err := s.rt.ExchangeFinish(); err != nil {
		return err
	}
	s.commTime += s.clock.Now().Sub(t2)

	t3 := s.clock.Now()
	for rep := 0; rep <= full; rep++ {
		limit := len(boundary)
		if rep == full {
			limit = int(frac * float64(limit))
		}
		kern.SweepIdx(data, xadj, adj, tv, boundary[:limit])
	}
	kern.SweepIdx(data, xadj, adj, tv, boundary)
	s.divide(data, xadj, tv, nLocal)
	s.computeTime += s.clock.Now().Sub(t3)
	s.items += int64(nLocal)
	s.iter++
	return nil
}

// divide finishes the phase: y[u] = tv[u] / deg(u).
func (s *Solver) divide(data []float64, xadj []int32, tv []float64, nLocal int) {
	for u := 0; u < nLocal; u++ {
		if d := xadj[u+1] - xadj[u]; d > 0 {
			data[u] = tv[u] / float64(d)
		}
	}
}

// Timings are the accumulated per-rank measurements since the last
// TakeTimings. The JSON field names are stable API (the stanced job
// service serves reports over HTTP): durations marshal as integer
// nanoseconds, hence the _ns suffix.
type Timings struct {
	Compute time.Duration `json:"compute_ns"`
	Comm    time.Duration `json:"comm_ns"`
	// Items is the total number of element-iterations computed; the
	// load monitor's "average computation time per data item" is
	// Compute/Items (paper Section 5).
	Items int64 `json:"items"`
}

// RatePerItem returns the measured compute seconds per element, the
// paper's capability estimate. Zero items yields zero.
func (t Timings) RatePerItem() float64 {
	if t.Items == 0 {
		return 0
	}
	return t.Compute.Seconds() / float64(t.Items)
}

// Add accumulates another measurement window into t.
func (t *Timings) Add(o Timings) {
	t.Compute += o.Compute
	t.Comm += o.Comm
	t.Items += o.Items
}

// TakeTimings returns the accumulated measurements and resets them.
func (s *Solver) TakeTimings() Timings {
	t := Timings{Compute: s.computeTime, Comm: s.commTime, Items: s.items}
	s.computeTime, s.commTime, s.items = 0, 0, 0
	return t
}

// Run executes n iterations, invoking afterIter (if non-nil) once per
// completed iteration — the hook the load balancer's periodic check
// uses.
func (s *Solver) Run(n int, afterIter func(iter int) error) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
		if afterIter != nil {
			if err := afterIter(s.iter); err != nil {
				return err
			}
		}
	}
	return nil
}

// SequentialReference runs the same kernel single-rank and returns the
// gathered result; see core's tests for the bit-exactness argument.
func (s *Solver) GatherResult(root int) ([]float64, error) {
	return s.rt.GatherGlobal(root, s.y)
}
