package solver

import (
	"strings"
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/mesh"
	"stance/internal/order"
)

func testSolver(t *testing.T) *Solver {
	t.Helper()
	g, err := mesh.Honeycomb(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { comm.CloseWorld(ws) })
	rt, err := core.New(ws[0], g, core.Config{Order: order.RCB})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rt, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKernelRegistry(t *testing.T) {
	k, err := KernelByName("figure8")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.(SubsetKernel); !ok {
		t.Error("figure8 kernel lost its boundary split")
	}
	k, err = KernelByName("figure8-fused")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.(SubsetKernel); ok {
		t.Error("figure8-fused kernel implements SubsetKernel; it exists precisely to not have one")
	}
	if _, err := KernelByName("nope"); err == nil || !strings.Contains(err.Error(), "figure8") {
		t.Errorf("unknown kernel error %v should list the registry", err)
	}
	names := KernelNames()
	if !strings.Contains(names, "figure8") || !strings.Contains(names, "figure8-fused") {
		t.Errorf("KernelNames() = %q, want both built-ins", names)
	}
}

func TestSetOverlapValidation(t *testing.T) {
	s := testSolver(t)
	if !s.CanOverlap() {
		t.Fatal("default kernel cannot overlap")
	}
	if err := s.SetOverlap(true); err != nil {
		t.Fatal(err)
	}
	if !s.Overlap() {
		t.Fatal("overlap not enabled")
	}
	// Swapping in a split-less kernel while overlapped must fail and
	// leave the kernel unchanged.
	if err := s.SetKernel(Figure8Fused{}); err == nil || !strings.Contains(err.Error(), "boundary split") {
		t.Fatalf("SetKernel(fused) while overlapped: err=%v, want boundary-split error", err)
	}
	if _, ok := s.Kernel().(Figure8); !ok {
		t.Fatalf("kernel changed to %T after a rejected SetKernel", s.Kernel())
	}
	if err := s.SetKernel(nil); err == nil {
		t.Fatal("SetKernel(nil) succeeded")
	}
	// And the reverse order: split-less kernel first, then overlap.
	if err := s.SetOverlap(false); err != nil {
		t.Fatal(err)
	}
	if err := s.SetKernel(Figure8Fused{}); err != nil {
		t.Fatal(err)
	}
	if s.CanOverlap() {
		t.Fatal("fused kernel reports overlap capability")
	}
	if err := s.SetOverlap(true); err == nil || !strings.Contains(err.Error(), "boundary split") {
		t.Fatalf("SetOverlap with fused kernel: err=%v, want boundary-split error", err)
	}
	// A solver refused the overlapped mode still steps synchronously.
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
}
