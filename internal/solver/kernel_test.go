package solver

import (
	"strings"
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/mesh"
	"stance/internal/order"
)

func testSolver(t *testing.T) *Solver {
	t.Helper()
	g, err := mesh.Honeycomb(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { comm.CloseWorld(ws) })
	rt, err := core.New(ws[0], g, core.Config{Order: order.RCB})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rt, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKernelRegistry(t *testing.T) {
	k, err := KernelByName("figure8")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.(SubsetKernel); !ok {
		t.Error("figure8 kernel lost its boundary split")
	}
	k, err = KernelByName("figure8-fused")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.(SubsetKernel); ok {
		t.Error("figure8-fused kernel implements SubsetKernel; it exists precisely to not have one")
	}
	if _, err := KernelByName("nope"); err == nil || !strings.Contains(err.Error(), "figure8") {
		t.Errorf("unknown kernel error %v should list the registry", err)
	}
	names := KernelNames()
	if !strings.Contains(names, "figure8") || !strings.Contains(names, "figure8-fused") {
		t.Errorf("KernelNames() = %q, want both built-ins", names)
	}
}

func TestCGKernel(t *testing.T) {
	k, err := KernelByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	sk, ok := k.(SubsetKernel)
	if !ok {
		t.Fatal("cg kernel has no boundary split")
	}

	// A 4-cycle: every vertex has degree 2.
	xadj := []int32{0, 2, 4, 6, 8}
	adj := []int32{1, 3, 0, 2, 1, 3, 0, 2}
	data := []float64{1, 2, 3, 4}

	// tv[u] = 0.5*(deg*x[u] + Σ neighbors); after the solver's
	// divide-by-degree that is (x + avg(neighbors)) / 2.
	want := []float64{
		0.5 * (2*1 + (2 + 4)),
		0.5 * (2*2 + (1 + 3)),
		0.5 * (2*3 + (2 + 4)),
		0.5 * (2*4 + (1 + 3)),
	}
	tv := make([]float64, 4)
	k.Sweep(data, xadj, adj, tv, 0, 4)
	for u := range want {
		if tv[u] != want[u] {
			t.Errorf("Sweep tv[%d] = %v, want %v", u, tv[u], want[u])
		}
	}

	// The split form must match the contiguous form bit for bit.
	tv2 := make([]float64, 4)
	sk.SweepIdx(data, xadj, adj, tv2, []int32{1, 3})
	sk.SweepIdx(data, xadj, adj, tv2, []int32{0, 2})
	for u := range want {
		if tv2[u] != tv[u] {
			t.Errorf("SweepIdx tv[%d] = %v, Sweep gave %v", u, tv2[u], tv[u])
		}
	}
}

func TestSetOverlapValidation(t *testing.T) {
	s := testSolver(t)
	if !s.CanOverlap() {
		t.Fatal("default kernel cannot overlap")
	}
	if err := s.SetOverlap(true); err != nil {
		t.Fatal(err)
	}
	if !s.Overlap() {
		t.Fatal("overlap not enabled")
	}
	// Swapping in a split-less kernel while overlapped must fail and
	// leave the kernel unchanged.
	if err := s.SetKernel(Figure8Fused{}); err == nil || !strings.Contains(err.Error(), "boundary split") {
		t.Fatalf("SetKernel(fused) while overlapped: err=%v, want boundary-split error", err)
	}
	if _, ok := s.Kernel().(Figure8); !ok {
		t.Fatalf("kernel changed to %T after a rejected SetKernel", s.Kernel())
	}
	if err := s.SetKernel(nil); err == nil {
		t.Fatal("SetKernel(nil) succeeded")
	}
	// And the reverse order: split-less kernel first, then overlap.
	if err := s.SetOverlap(false); err != nil {
		t.Fatal(err)
	}
	if err := s.SetKernel(Figure8Fused{}); err != nil {
		t.Fatal(err)
	}
	if s.CanOverlap() {
		t.Fatal("fused kernel reports overlap capability")
	}
	if err := s.SetOverlap(true); err == nil || !strings.Contains(err.Error(), "boundary split") {
		t.Fatalf("SetOverlap with fused kernel: err=%v, want boundary-split error", err)
	}
	// A solver refused the overlapped mode still steps synchronously.
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
}
