package solver

import (
	"fmt"
	"sort"
	"strings"
)

// Kernel is the compute body of one solver iteration: it sweeps local
// elements, reading the solution vector through the localized CSR
// (references >= LocalN index the ghost section) and writing each
// element's neighbor aggregate into tv. The solver owns everything
// around the sweep — the ghost exchange, the work amplification, the
// final divide-by-degree — so a kernel is pure computation and two
// kernels computing the same aggregate are interchangeable bit for
// bit.
type Kernel interface {
	// Sweep computes tv[u] for every local element u in [lo, hi), in
	// ascending order.
	Sweep(data []float64, xadj, adj []int32, tv []float64, lo, hi int)
}

// SubsetKernel is implemented by kernels that can sweep an arbitrary
// ascending subset of the local elements. This is the boundary split
// the overlapped and pipelined executor modes need: the solver sweeps
// the plan's interior elements while Exchange messages are in flight
// and the boundary elements after the handle's Wait. A kernel without
// it can only run synchronously.
type SubsetKernel interface {
	Kernel
	// SweepIdx computes tv[u] for each u in idx, in idx order.
	SweepIdx(data []float64, xadj, adj []int32, tv []float64, idx []int32)
}

// Figure8 is the paper's Figure 8 kernel — each element sums its
// neighbors' values — with full subset-sweep support, so it runs in
// both the synchronous and the overlapped executor mode. It is the
// solver's default kernel.
type Figure8 struct{}

// Sweep sums each element's neighbors over the contiguous range.
func (Figure8) Sweep(data []float64, xadj, adj []int32, tv []float64, lo, hi int) {
	for u := lo; u < hi; u++ {
		sum := 0.0
		for k := xadj[u]; k < xadj[u+1]; k++ {
			sum += data[adj[k]]
		}
		tv[u] = sum
	}
}

// SweepIdx sums each listed element's neighbors — the boundary-split
// form the overlapped mode computes interior and boundary strips with.
func (Figure8) SweepIdx(data []float64, xadj, adj []int32, tv []float64, idx []int32) {
	for _, u := range idx {
		sum := 0.0
		for k := xadj[u]; k < xadj[u+1]; k++ {
			sum += data[adj[k]]
		}
		tv[u] = sum
	}
}

// Figure8Fused is the same computation as Figure8 but deliberately
// without a subset sweep: it can only traverse the full contiguous
// range, like a fused or library-provided compute body that cannot be
// cut at the interior/boundary line. Requesting the overlapped mode
// with it is an error — there is no silent fallback to synchronous —
// which makes it the A/B partner for attributing overlap speedups with
// the compute body held constant.
type Figure8Fused struct{}

// Sweep sums each element's neighbors over the contiguous range.
func (Figure8Fused) Sweep(data []float64, xadj, adj []int32, tv []float64, lo, hi int) {
	Figure8{}.Sweep(data, xadj, adj, tv, lo, hi)
}

// CG is a sparse conjugate-gradient-style smoothing kernel: each
// element combines its own value with its neighbor sum, weighting the
// diagonal by the element's degree. After the solver's
// divide-by-degree this yields y' = (x + avg(neighbors)) / 2 — a
// damped Jacobi relaxation step, the smoother at the heart of a CG
// preconditioner — which contracts smoothly instead of Figure8's pure
// neighbor averaging. Fully subset-sweep capable, so it runs in the
// synchronous, overlapped and pipelined executor modes alike.
type CG struct{}

// Sweep computes the degree-weighted aggregate over the contiguous
// range.
func (CG) Sweep(data []float64, xadj, adj []int32, tv []float64, lo, hi int) {
	for u := lo; u < hi; u++ {
		sum := 0.0
		for k := xadj[u]; k < xadj[u+1]; k++ {
			sum += data[adj[k]]
		}
		deg := float64(xadj[u+1] - xadj[u])
		tv[u] = 0.5 * (deg*data[u] + sum)
	}
}

// SweepIdx computes the degree-weighted aggregate for each listed
// element — the boundary-split form for the overlapped mode.
func (CG) SweepIdx(data []float64, xadj, adj []int32, tv []float64, idx []int32) {
	for _, u := range idx {
		sum := 0.0
		for k := xadj[u]; k < xadj[u+1]; k++ {
			sum += data[adj[k]]
		}
		deg := float64(xadj[u+1] - xadj[u])
		tv[u] = 0.5 * (deg*data[u] + sum)
	}
}

// kernelRegistry names the built-in kernels for CLI selection.
var kernelRegistry = map[string]func() Kernel{
	"figure8":       func() Kernel { return Figure8{} },
	"figure8-fused": func() Kernel { return Figure8Fused{} },
	"cg":            func() Kernel { return CG{} },
}

// KernelByName returns a built-in kernel by registry name.
func KernelByName(name string) (Kernel, error) {
	f, ok := kernelRegistry[name]
	if !ok {
		return nil, fmt.Errorf("solver: unknown kernel %q (want %s)", name, KernelNames())
	}
	return f(), nil
}

// KernelNames lists the built-in kernel names, sorted.
func KernelNames() string {
	names := make([]string, 0, len(kernelRegistry))
	for n := range kernelRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
