package session

import (
	"context"
	"sync"
	"testing"

	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/mesh"
)

// TestConcurrentSubWorldSessions is the stanced multiplexing pattern at
// the session layer: three disjoint sub-worlds carved from one shared
// 7-rank parent each drive an independent session concurrently — one
// of them elastic, retiring and re-admitting a rank mid-run through
// the epoch protocol. The shared mailboxes and the concurrent traffic
// must not perturb any session: every gathered result has to be
// bit-identical to the same configuration run alone in a dedicated
// world. CI's -race pass makes this double as the data-race pin for
// endpoint sharing across concurrent sessions.
func TestConcurrentSubWorldSessions(t *testing.T) {
	parent, err := comm.Open("inproc", 7, comm.TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()

	groups := [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	const iters = 60

	hc, err := mesh.Honeycomb(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := mesh.GridTriangulated(8, 8, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	an, err := mesh.Annulus(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{hc, gr, an}

	// makeCfg is the shared per-group configuration; group 0 runs
	// elastic so the driver below can retire and re-admit a rank
	// mid-run via explicit resizes — exactly how the job service
	// reallocates pool ranks.
	makeCfg := func(gi int) Config {
		cfg := Config{OrderName: "rcb", CheckEvery: 5, WorkRep: 2}
		if gi == 0 {
			cfg.Elastic = true
		}
		return cfg
	}

	// Ground truth: each configuration alone in a dedicated fixed world
	// of the group's size, no churn (membership changes are
	// numerics-preserving, pinned elsewhere).
	refs := make([][]float64, len(groups))
	for gi, members := range groups {
		cfg := makeCfg(gi)
		cfg.Elastic = false
		cfg.Procs = len(members)
		s, err := New(context.Background(), graphs[gi], cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(iters); err != nil {
			t.Fatal(err)
		}
		if refs[gi], err = s.ResultByVertex(); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}

	// The concurrent run: all three sessions at once on the one parent.
	results := make([][]float64, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for gi, members := range groups {
		subs := make([]*comm.Comm, len(members))
		for i, m := range members {
			sc, err := parent.Comm(m).Sub(members)
			if err != nil {
				t.Fatal(err)
			}
			subs[i] = sc
		}
		w := comm.WrapWorld(subs, nil)
		wg.Add(1)
		go func(gi int, w *comm.World) {
			defer wg.Done()
			errs[gi] = func() error {
				cfg := makeCfg(gi)
				cfg.World = w
				s, err := New(context.Background(), graphs[gi], cfg)
				if err != nil {
					return err
				}
				defer s.Close()
				transitions := 0
				if gi == 0 {
					// Shrink to {0,1} mid-run and grow back, in segments,
					// while the other two sessions keep running.
					for _, seg := range []struct {
						resize []int
						iters  int
					}{{nil, 15}, {[]int{0, 1}, 25}, {[]int{0, 1, 2}, 20}} {
						if seg.resize != nil {
							if err := s.Resize(seg.resize); err != nil {
								return err
							}
						}
						rep, err := s.Run(seg.iters)
						if err != nil {
							return err
						}
						transitions += len(rep.Members)
					}
					if transitions != 2 {
						t.Errorf("elastic group recorded %d membership transitions, want 2", transitions)
					}
				} else if _, err := s.Run(iters); err != nil {
					return err
				}
				results[gi], err = s.ResultByVertex()
				return err
			}()
		}(gi, w)
	}
	wg.Wait()

	for gi := range groups {
		if errs[gi] != nil {
			t.Fatalf("group %d session: %v", gi, errs[gi])
		}
		if len(results[gi]) != len(refs[gi]) {
			t.Fatalf("group %d gathered %d values, dedicated run %d", gi, len(results[gi]), len(refs[gi]))
		}
		for v := range refs[gi] {
			if results[gi][v] != refs[gi][v] {
				t.Fatalf("group %d vertex %d: shared-pool %v != dedicated %v (must be bit-identical)",
					gi, v, results[gi][v], refs[gi][v])
			}
		}
	}
}
