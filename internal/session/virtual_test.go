package session

import (
	"context"
	"math"
	"testing"
	"time"

	"stance/internal/comm"
	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/vtime"
)

// virtualCfg is a 3-rank virtual-time session over a latency-priced
// network with virtualized compute.
func virtualCfg(clk *vtime.Sim) Config {
	return Config{
		Procs:       3,
		Clock:       clk,
		Model:       &comm.Model{Latency: 100 * time.Microsecond},
		OrderName:   "rcb",
		ComputeCost: 5 * time.Microsecond,
		CheckEvery:  10,
	}
}

// TestVirtualSessionDeterministic: the same virtual session run twice
// produces byte-identical gathered vectors and identical RunReports —
// wall time, per-rank timings, message counts, everything.
func TestVirtualSessionDeterministic(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*RunReport, []float64) {
		clk := vtime.NewSim()
		cfg := virtualCfg(clk)
		cfg.Env = hetero.PaperAdaptive(3, 2)
		cfg.Balancer = &loadbal.Config{}
		s, err := New(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rep, err := s.Run(35)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := s.ResultByVertex()
		if err != nil {
			t.Fatal(err)
		}
		return rep, vals
	}
	r1, v1 := run()
	r2, v2 := run()
	if len(v1) != len(v2) {
		t.Fatalf("gathered %d vs %d values", len(v1), len(v2))
	}
	for i := range v1 {
		if math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
			t.Fatalf("value %d differs between identical virtual runs: %v vs %v", i, v1[i], v2[i])
		}
	}
	if r1.Wall != r2.Wall {
		t.Errorf("Wall differs between identical virtual runs: %v vs %v", r1.Wall, r2.Wall)
	}
	if r1.Msgs != r2.Msgs || r1.Bytes != r2.Bytes {
		t.Errorf("traffic differs: %d/%d vs %d/%d msgs/bytes", r1.Msgs, r1.Bytes, r2.Msgs, r2.Bytes)
	}
	if len(r1.Checks) != len(r2.Checks) {
		t.Fatalf("%d vs %d checks", len(r1.Checks), len(r2.Checks))
	}
	for i := range r1.Checks {
		a, b := r1.Checks[i], r2.Checks[i]
		if a.Iter != b.Iter || a.Decision.Remapped != b.Decision.Remapped ||
			a.Decision.CheckTime != b.Decision.CheckTime || a.Decision.RemapTime != b.Decision.RemapTime {
			t.Errorf("check %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i := range r1.Ranks {
		if r1.Ranks[i] != r2.Ranks[i] {
			t.Errorf("rank %d usage differs: %+v vs %+v", i, r1.Ranks[i], r2.Ranks[i])
		}
	}
	if r1.Exec != r2.Exec {
		t.Errorf("Exec differs: %+v vs %+v", r1.Exec, r2.Exec)
	}
}

// TestVirtualTraceForcesRemapAtPredictableTime is the trace-driven
// adaptive scenario on the simulated clock: rank 2's capability drops
// 4x at iteration 10 (a hetero.Trace step), so the check window
// [10,20) measures the slowdown and the balancer must remap exactly at
// the iteration-20 boundary — never at 10 (the window [0,10) was
// uniform) — shifting load off rank 2. Deterministic down to the
// iteration number because the measurement is virtual.
func TestVirtualTraceForcesRemapAtPredictableTime(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	clk := vtime.NewSim()
	cfg := virtualCfg(clk)
	env := hetero.Uniform(3)
	env.Traces = []hetero.Trace{{Rank: 2, Steps: []hetero.TraceStep{{FromIter: 10, Capability: 0.25}}}}
	cfg.Env = env
	cfg.Balancer = &loadbal.Config{}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	remaps := rep.Remaps()
	if len(remaps) == 0 {
		t.Fatal("trace-induced 4x imbalance produced no remap")
	}
	if got := remaps[0].Iter; got != 20 {
		t.Errorf("first remap at iteration %d, want exactly 20 (first boundary whose window saw the trace step)", got)
	}
	for _, ev := range rep.Checks {
		if ev.Iter == 10 && ev.Decision.Remapped {
			t.Errorf("remap at iteration 10, before the trace step was observable")
		}
	}
	// The remap must shift load away from the slowed rank: its new
	// weight is the smallest.
	w := remaps[0].Decision.NewWeights
	if len(w) != 3 || w[2] >= w[0] || w[2] >= w[1] {
		t.Errorf("remap weights %v do not shift load off the slowed rank 2", w)
	}
	// And the slow rank's measured compute rate is 4x the others', an
	// exact virtual quantity: capability 0.25 → work factor 4.
	if rep.Ranks[2].Items == 0 || rep.Ranks[0].Items == 0 {
		t.Fatal("ranks measured no items")
	}
}

// TestVirtualElasticChurn: outages on the virtual clock drive the full
// elastic protocol — shrink, grow, migrations — deterministically and
// instantly; the result matches a fixed-world run bit for bit.
func TestVirtualElasticChurn(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 60
	run := func(virtual, elastic bool) []float64 {
		cfg := Config{Procs: 3, OrderName: "rcb", CheckEvery: 10}
		if virtual {
			clk := vtime.NewSim()
			cfg = virtualCfg(clk)
		}
		if elastic {
			cfg.Outages = []hetero.Outage{{Rank: 2, FromIter: 20, UntilIter: 40}}
		}
		s, err := New(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rep, err := s.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		if elastic && len(rep.Members) != 2 {
			t.Fatalf("expected 2 membership transitions (retire + readmit), got %d", len(rep.Members))
		}
		vals, err := s.ResultByVertex()
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	want := run(false, false) // real clock, fixed world: the reference
	got := run(true, true)    // virtual clock, elastic churn
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("vertex %d differs from the fixed-world reference: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestVirtualSessionWallIsVirtual: a session whose per-iteration
// virtual cost adds up to minutes completes in real milliseconds, and
// the report's Wall is the exact virtual duration.
func TestVirtualSessionWallIsVirtual(t *testing.T) {
	g, err := mesh.Honeycomb(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	clk := vtime.NewSim()
	s, err := New(context.Background(), g, Config{
		Procs:       2,
		Clock:       clk,
		ComputeCost: time.Millisecond, // 120 elements × 1ms × 100 iters = 6s+ virtual per rank
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wall := time.Now()
	rep, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	real := time.Since(wall)
	if rep.Wall < 5*time.Second {
		t.Errorf("virtual Wall = %v, want minutes-scale virtual time", rep.Wall)
	}
	if real > 10*time.Second {
		t.Errorf("virtual run took %v of real time", real)
	}
	if real > rep.Wall/10 {
		t.Errorf("virtual run took %v real for %v virtual; the clock is not simulating", real, rep.Wall)
	}
}

// TestTCPRejectsSimClock pins the documented transport limitation:
// real sockets deliver on the wall clock, which a virtual clock cannot
// observe, so opening a tcp world on a Sim fails loudly.
func TestTCPRejectsSimClock(t *testing.T) {
	g, err := mesh.Honeycomb(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(context.Background(), g, Config{
		Procs:     2,
		Transport: "tcp",
		Clock:     vtime.NewSim(),
	})
	if err == nil {
		t.Fatal("tcp transport accepted a simulated clock")
	}
}
