package session

import (
	"context"
	"errors"
	"testing"
	"time"

	"stance/internal/ckpt"
	"stance/internal/mesh"
	"stance/internal/order"
	"stance/internal/vtime"
)

// TestKillRecoverBitExact is the acceptance scenario: a 4-rank run on
// the sim clock with rank 2 killed at iteration 30. The survivors must
// detect the failure at the iteration-30 gate, roll back to the
// iteration-20 checkpoint, re-cut onto 3 ranks and finish — with the
// gathered final vector bit-identical to a run that never failed, and
// the recovery overhead exact on the virtual clock: detection costs
// exactly one DetectTimeout (uniform ranks on equal intervals reach
// the gate at the same instant, so the only wait is the dead rank's
// deadline) and the restore itself is free on the free network.
func TestKillRecoverBitExact(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30) // 600 vertices: equal 4-rank intervals
	if err != nil {
		t.Fatal(err)
	}
	const (
		iters         = 60
		detectTimeout = 50 * time.Millisecond
	)
	base := Config{
		Procs:       4,
		Order:       order.RCB,
		WorkRep:     3,
		CheckEvery:  10,
		ComputeCost: 20 * time.Microsecond,
	}

	ref := base
	ref.Clock = vtime.NewSim()
	fixed, err := New(context.Background(), g, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Run(iters); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Clock = vtime.NewSim()
	cfg.Checkpoint = &ckpt.Config{
		DetectTimeout: detectTimeout,
		Kills:         []ckpt.Kill{{Rank: 2, Iter: 30}},
	}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(iters)
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Recoveries) != 1 {
		t.Fatalf("run recorded %d recoveries, want 1: %+v", len(rep.Recoveries), rep.Recoveries)
	}
	rec := rep.Recoveries[0]
	if rec.Iter != 30 || rec.RestoredIter != 20 || rec.RollbackDepth != 10 {
		t.Errorf("recovery at iter %d restored iter %d (depth %d), want 30/20/10",
			rec.Iter, rec.RestoredIter, rec.RollbackDepth)
	}
	if len(rec.Dead) != 1 || rec.Dead[0] != 2 {
		t.Errorf("dead set %v, want [2]", rec.Dead)
	}
	wantActive := []int{0, 1, 3}
	if len(rec.Active) != 3 || rec.Active[0] != 0 || rec.Active[1] != 1 || rec.Active[2] != 3 {
		t.Errorf("survivor set %v, want %v", rec.Active, wantActive)
	}
	if rec.Epoch != 1 {
		t.Errorf("recovery epoch %d, want 1", rec.Epoch)
	}
	// Exact virtual-time accounting: all ranks reach the gate at the
	// same instant (uniform compute cost on equal intervals, free
	// network), so detection waits exactly the dead rank's deadline,
	// and the recovery epoch itself (rebind + restore + re-checkpoint)
	// moves no virtual time at all.
	if rec.DetectLatency != detectTimeout {
		t.Errorf("detect latency %v, want exactly %v", rec.DetectLatency, detectTimeout)
	}
	if rec.Duration != 0 {
		t.Errorf("recovery duration %v, want exactly 0 on the free network", rec.Duration)
	}
	if wantBytes := int64(g.N) * 8; rec.RestoredBytes != wantBytes {
		t.Errorf("restored %d bytes, want %d", rec.RestoredBytes, wantBytes)
	}
	if epoch, active := s.Membership(); epoch != 1 || len(active) != 3 {
		t.Errorf("final membership epoch %d with %d active, want 1 with 3", epoch, len(active))
	}

	got, err := s.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered result has %d values, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: recovered %v != reference %v (results must match bit for bit)",
				i, got[i], want[i])
		}
	}
}

// TestKillAtRunBoundaryRecoversNextRun: a kill whose iteration falls
// on a Run's final boundary fires at the next Run's start gate (the
// final boundary is deferred, like checks). The recovery must land in
// the second report and the result must still match the reference.
func TestKillAtRunBoundaryRecoversNextRun(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Procs:      4,
		Order:      order.RCB,
		WorkRep:    3,
		CheckEvery: 10,
	}
	ref := base
	fixed, err := New(context.Background(), g, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Run(30); err != nil {
		t.Fatal(err)
	}
	if _, err := fixed.Run(30); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Clock = vtime.NewSim()
	cfg.ComputeCost = 10 * time.Microsecond
	cfg.Checkpoint = &ckpt.Config{Kills: []ckpt.Kill{{Rank: 1, Iter: 30}}}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep1, err := s.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Recoveries) != 0 {
		t.Fatalf("first Run recorded %d recoveries, want 0 (boundary deferred)", len(rep1.Recoveries))
	}
	rep2, err := s.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Recoveries) != 1 {
		t.Fatalf("second Run recorded %d recoveries, want 1: %+v", len(rep2.Recoveries), rep2.Recoveries)
	}
	rec := rep2.Recoveries[0]
	if rec.Iter != 30 || rec.RestoredIter != 20 || len(rec.Dead) != 1 || rec.Dead[0] != 1 {
		t.Errorf("recovery %+v, want rank 1 dead at iter 30 restored to 20", rec)
	}
	got, err := s.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: recovered %v != reference %v", i, got[i], want[i])
		}
	}
}

// TestKillBeforeFirstCheckpointReinits: a rank killed at iteration 0
// dies at the very first gate, before any checkpoint exists. The
// survivors restart from the initial conditions (a pure function of
// the global index, hence layout-independent) and the run must still
// finish bit-exact.
func TestKillBeforeFirstCheckpointReinits(t *testing.T) {
	g, err := mesh.Honeycomb(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Procs:      3,
		Order:      order.RCB,
		WorkRep:    3,
		CheckEvery: 10,
	}
	fixed, err := New(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Run(40); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Clock = vtime.NewSim()
	cfg.ComputeCost = 10 * time.Microsecond
	cfg.Checkpoint = &ckpt.Config{Kills: []ckpt.Kill{{Rank: 1, Iter: 0}}}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recoveries) != 1 {
		t.Fatalf("run recorded %d recoveries, want 1", len(rep.Recoveries))
	}
	rec := rep.Recoveries[0]
	if rec.Iter != 0 || rec.RestoredIter != 0 || rec.RollbackDepth != 0 || rec.RestoredBytes != 0 {
		t.Errorf("recovery %+v, want a restart from initial conditions at iter 0", rec)
	}
	got, err := s.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: recovered %v != reference %v", i, got[i], want[i])
		}
	}
}

// TestKillCoordinatorFailsLoudly: the coordinator has no backup; when
// it dies the members' verdict deadline expires and the Run must fail
// with a wrapped ErrUnrecoverable — never hang, never succeed
// silently.
func TestKillCoordinatorFailsLoudly(t *testing.T) {
	g, err := mesh.Honeycomb(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Procs:       3,
		Order:       order.RCB,
		CheckEvery:  10,
		Clock:       vtime.NewSim(),
		ComputeCost: 10 * time.Microsecond,
		Checkpoint:  &ckpt.Config{Kills: []ckpt.Kill{{Rank: 0, Iter: 15}}},
	}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Run(40)
	if err == nil {
		t.Fatal("Run succeeded with a dead coordinator")
	}
	if !errors.Is(err, ckpt.ErrUnrecoverable) {
		t.Fatalf("Run error %v does not wrap ckpt.ErrUnrecoverable", err)
	}
}

// TestKillBuddyPairFailsLoudly: a rank and its checkpoint buddy dying
// inside the same detection window lose the checkpoint; the
// coordinator must abort the run with a wrapped ErrUnrecoverable on
// every survivor.
func TestKillBuddyPairFailsLoudly(t *testing.T) {
	g, err := mesh.Honeycomb(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Procs:       4,
		Order:       order.RCB,
		CheckEvery:  10,
		Clock:       vtime.NewSim(),
		ComputeCost: 10 * time.Microsecond,
		Checkpoint: &ckpt.Config{Kills: []ckpt.Kill{
			{Rank: 1, Iter: 15},
			{Rank: 2, Iter: 15},
		}},
	}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Run(40)
	if err == nil {
		t.Fatal("Run succeeded after a rank and its buddy died together")
	}
	if !errors.Is(err, ckpt.ErrUnrecoverable) {
		t.Fatalf("Run error %v does not wrap ckpt.ErrUnrecoverable", err)
	}
}

// TestSequentialKillsRecoverTwice: two ranks dying at different
// boundaries are two independent recoveries — the second one's buddy
// ring is the first one's survivor set — and the result still matches
// the never-failed reference.
func TestSequentialKillsRecoverTwice(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Procs:      4,
		Order:      order.RCB,
		WorkRep:    3,
		CheckEvery: 10,
	}
	fixed, err := New(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Run(60); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Clock = vtime.NewSim()
	cfg.ComputeCost = 10 * time.Microsecond
	cfg.Checkpoint = &ckpt.Config{Kills: []ckpt.Kill{
		{Rank: 3, Iter: 20},
		{Rank: 1, Iter: 40},
	}}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recoveries) != 2 {
		t.Fatalf("run recorded %d recoveries, want 2: %+v", len(rep.Recoveries), rep.Recoveries)
	}
	first, second := rep.Recoveries[0], rep.Recoveries[1]
	if first.Iter != 20 || len(first.Dead) != 1 || first.Dead[0] != 3 || first.Epoch != 1 {
		t.Errorf("first recovery %+v, want rank 3 dead at iter 20, epoch 1", first)
	}
	if second.Iter != 40 || len(second.Dead) != 1 || second.Dead[0] != 1 || second.Epoch != 2 {
		t.Errorf("second recovery %+v, want rank 1 dead at iter 40, epoch 2", second)
	}
	if len(second.Active) != 2 {
		t.Errorf("final survivor set %v, want 2 ranks", second.Active)
	}
	got, err := s.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: recovered %v != reference %v", i, got[i], want[i])
		}
	}
}
