package session

import (
	"context"
	"testing"
	"time"

	"stance/internal/ckpt"
	"stance/internal/comm"
	"stance/internal/mesh"
	"stance/internal/order"
)

// TestTcpHeartbeatKillRecover is the wire-level liveness acceptance
// scenario: a 3-rank TCP session with transport heartbeats, a peer
// killed for real between runs (comm.KillEndpoint — sockets stay open,
// no injected ckpt.Kill, no clean end of stream), and a deliberately
// enormous protocol DetectTimeout. The next run's checkpoint gate must
// learn of the death from the transport — the dead peer's receive
// fails with ErrPeerDead, which unwraps to the ErrTimeout the gate's
// detector already understands — long before the protocol deadline,
// roll back to the surviving checkpoint, re-cut onto the survivors and
// finish with the gathered result bit-identical to a run that never
// failed.
func TestTcpHeartbeatKillRecover(t *testing.T) {
	g, err := mesh.Honeycomb(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Procs:      3,
		Order:      order.RCB,
		WorkRep:    2,
		CheckEvery: 5,
	}

	// The failure-free reference. Bit-exactness must hold across
	// transports: the plan replay fixes the reduction order, so the
	// arithmetic is transport-independent.
	fixed, err := New(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Run(10); err != nil {
		t.Fatal(err)
	}
	if _, err := fixed.Run(10); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	// The protocol timeout is absurdly large on purpose: if detection
	// relied on it, this test would take minutes. Passing quickly is
	// the proof that the transport's heartbeat liveness — not the
	// protocol deadline — delivered the failure signal.
	const detectTimeout = 5 * time.Minute
	cfg := base
	cfg.Transport = "tcp"
	cfg.Tuning = &comm.TransportOptions{
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatMiss:     3,
	}
	cfg.Checkpoint = &ckpt.Config{DetectTimeout: detectTimeout}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rep1, err := s.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Recoveries) != 0 {
		t.Fatalf("failure-free run recorded %d recoveries", len(rep1.Recoveries))
	}
	if rep1.Transport == nil {
		t.Fatal("tcp run report carries no transport stats")
	}
	if rep1.Transport.NTx == 0 || rep1.Transport.NFlushes == 0 {
		t.Errorf("transport stats %+v, want live n_tx/n_flushes counters", *rep1.Transport)
	}

	// Crash rank 2 for real: its endpoint goes silent, its sockets
	// stay open. Survivors can only learn of this by missed
	// heartbeats.
	if err := comm.KillEndpoint(s.world.Comm(2)); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rep2, err := s.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	detectWall := time.Since(start)
	if len(rep2.Recoveries) != 1 {
		t.Fatalf("post-kill run recorded %d recoveries, want 1: %+v", len(rep2.Recoveries), rep2.Recoveries)
	}
	rec := rep2.Recoveries[0]
	if len(rec.Dead) != 1 || rec.Dead[0] != 2 {
		t.Errorf("dead set %v, want [2]", rec.Dead)
	}
	if rec.Iter != 10 || rec.RestoredIter != 5 {
		t.Errorf("recovery at iter %d restored iter %d, want 10/5 (the deferred boundary's gate)", rec.Iter, rec.RestoredIter)
	}
	if len(rec.Active) != 2 || rec.Active[0] != 0 || rec.Active[1] != 1 {
		t.Errorf("survivor set %v, want [0 1]", rec.Active)
	}
	// The whole run — detection included — must finish in a fraction
	// of the 5-minute protocol deadline, and the recovery record's own
	// latency measurement must agree.
	if detectWall > 30*time.Second {
		t.Errorf("post-kill run took %v: detection waited on the protocol deadline, not the transport", detectWall)
	}
	if rec.DetectLatency >= detectTimeout {
		t.Errorf("detect latency %v reached the protocol deadline %v", rec.DetectLatency, detectTimeout)
	}
	if rep2.Transport.NDroppedHB < int64(cfg.Tuning.HeartbeatMiss) {
		t.Errorf("n_dropped_hb = %d, want >= %d misses behind the declaration",
			rep2.Transport.NDroppedHB, cfg.Tuning.HeartbeatMiss)
	}

	got, err := s.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered result has %d values, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: recovered %v != reference %v (results must match bit for bit)", i, got[i], want[i])
		}
	}
}
