package session

import (
	"context"
	"errors"
	"testing"

	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/order"
)

// TestElasticShrinkGrowBitExact is the scripted shrink→grow scenario:
// a 4-rank run retires rank 2 mid-run (outage from iteration 20) and
// re-admits it later (iteration 60). The deterministic solver kernel
// must produce the same gathered final vector, bit for bit, as the
// fixed-world run, and the RunReport must record the two membership
// epochs with their migration byte counts.
func TestElasticShrinkGrowBitExact(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 80
	base := Config{
		Procs:      4,
		Order:      order.RCB,
		WorkRep:    3,
		CheckEvery: 10,
	}

	fixed, err := New(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Run(iters); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Outages = []hetero.Outage{{Rank: 2, FromIter: 20, UntilIter: 60}}
	el, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer el.Close()
	rep, err := el.Run(iters)
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Members) != 2 {
		t.Fatalf("run recorded %d membership transitions, want 2: %+v", len(rep.Members), rep.Members)
	}
	shrink, grow := rep.Members[0], rep.Members[1]
	if shrink.Iter != 20 || shrink.Epoch != 1 ||
		len(shrink.Retired) != 1 || shrink.Retired[0] != 2 || len(shrink.Active) != 3 {
		t.Errorf("shrink event %+v, want rank 2 retired at iter 20, epoch 1", shrink)
	}
	if grow.Iter != 60 || grow.Epoch != 2 ||
		len(grow.Admitted) != 1 || grow.Admitted[0] != 2 || len(grow.Active) != 4 {
		t.Errorf("grow event %+v, want rank 2 admitted at iter 60, epoch 2", grow)
	}
	for _, ev := range rep.Members {
		if ev.MovedBytes <= 0 || ev.Msgs <= 0 {
			t.Errorf("epoch %d recorded %d migration bytes in %d transfers, want > 0",
				ev.Epoch, ev.MovedBytes, ev.Msgs)
		}
	}
	// Rank 2 computed nothing during its outage.
	if epoch, active := el.Membership(); epoch != 2 || len(active) != 4 {
		t.Errorf("final membership epoch %d with %d active, want 2 with 4", epoch, len(active))
	}

	got, err := el.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("elastic result has %d values, fixed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: elastic %v != fixed %v (results must match bit for bit)",
				i, got[i], want[i])
		}
	}
}

// TestElasticWithBalancer: the membership protocol and the Phase D
// balancer share the check boundaries; remaps inside a shrunken epoch
// must not perturb the numerical result either.
func TestElasticWithBalancer(t *testing.T) {
	g, err := mesh.Honeycomb(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Procs:      3,
		Order:      order.RCB,
		WorkRep:    3,
		CheckEvery: 5,
	}
	fixed, err := New(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Run(40); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Env = hetero.PaperAdaptive(3, 3)
	cfg.Env.Outages = []hetero.Outage{{Rank: 1, FromIter: 10, UntilIter: 25}}
	cfg.Balancer = &loadbal.Config{}
	el, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer el.Close()
	rep, err := el.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Members) != 2 {
		t.Fatalf("recorded %d membership transitions, want 2", len(rep.Members))
	}
	got, err := el.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: elastic+balancer %v != fixed %v", i, got[i], want[i])
		}
	}
}

// TestElasticAcrossRuns: membership state persists across Run calls —
// a rank parked when one Run ends stays parked into the next Run and
// is re-admitted there.
func TestElasticAcrossRuns(t *testing.T) {
	g, err := mesh.Honeycomb(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Procs: 3, Order: order.RCB, CheckEvery: 10}
	fixed, err := New(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	for i := 0; i < 2; i++ {
		if _, err := fixed.Run(40); err != nil {
			t.Fatal(err)
		}
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Outages = []hetero.Outage{{Rank: 2, FromIter: 20, UntilIter: 50}}
	el, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer el.Close()
	rep1, err := el.Run(40) // shrink at 20; run ends with rank 2 parked
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Members) != 1 {
		t.Fatalf("first Run recorded %d transitions, want 1 (the shrink)", len(rep1.Members))
	}
	if _, active := el.Membership(); len(active) != 2 {
		t.Fatalf("between Runs: %d active ranks, want 2", len(active))
	}
	// Mid-outage results gather over the shrunken world.
	if _, err := el.Result(); err != nil {
		t.Fatalf("Result over the shrunken world: %v", err)
	}
	rep2, err := el.Run(40) // grow back at 50
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Members) != 1 {
		t.Fatalf("second Run recorded %d transitions, want 1 (the grow)", len(rep2.Members))
	}
	got, err := el.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: split elastic runs %v != fixed %v", i, got[i], want[i])
		}
	}
}

// TestElasticDeferredBoundary: a membership boundary falling on a
// Run's final iteration is deferred to the next Run's start, not
// skipped — split Runs retire a departed rank at the same iteration a
// single long Run would.
func TestElasticDeferredBoundary(t *testing.T) {
	g, err := mesh.Honeycomb(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Procs:      3,
		Order:      order.RCB,
		CheckEvery: 10,
		Outages:    []hetero.Outage{{Rank: 2, FromIter: 20, UntilIter: 40}},
	}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(20); err != nil { // ends exactly on the outage boundary
		t.Fatal(err)
	}
	if _, active := s.Membership(); len(active) != 3 {
		t.Fatalf("transition ran before the deferred boundary: %d active", len(active))
	}
	rep, err := s.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Members) != 2 {
		t.Fatalf("second Run recorded %d transitions, want deferred shrink + grow: %+v",
			len(rep.Members), rep.Members)
	}
	if rep.Members[0].Iter != 20 || rep.Members[0].Epoch != 1 {
		t.Errorf("deferred shrink at iter %d (epoch %d), want iter 20 epoch 1 — same as a single Run(60)",
			rep.Members[0].Iter, rep.Members[0].Epoch)
	}
	if rep.Members[1].Iter != 40 {
		t.Errorf("grow at iter %d, want 40", rep.Members[1].Iter)
	}
}

// TestResize: an explicit Resize shrinks the active set at the next
// boundary and a second Resize grows it back, without any availability
// windows configured.
func TestResize(t *testing.T) {
	g, err := mesh.Honeycomb(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(context.Background(), g, Config{
		Procs:      3,
		Order:      order.RCB,
		CheckEvery: 10,
		Elastic:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Resize([]int{1, 2}); err == nil {
		t.Error("Resize without the coordinator accepted")
	}
	if err := s.Resize([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Members) != 1 || len(rep.Members[0].Retired) != 1 || rep.Members[0].Retired[0] != 2 {
		t.Fatalf("after Resize([0 1]): transitions %+v, want rank 2 retired once", rep.Members)
	}
	if err := s.Resize([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Members) != 1 || len(rep.Members[0].Admitted) != 1 || rep.Members[0].Admitted[0] != 2 {
		t.Fatalf("after Resize([0 1 2]): transitions %+v, want rank 2 admitted once", rep.Members)
	}

	// A fixed-membership session rejects Resize.
	fixed, err := New(context.Background(), g, Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if err := fixed.Resize([]int{0}); err == nil {
		t.Error("Resize on a fixed-membership session accepted")
	}
}

// TestElasticCancellation: cancelling the session context while one
// rank is parked must fail the Run with context.Canceled — the parked
// receive unblocks instead of deadlocking the world.
func TestElasticCancellation(t *testing.T) {
	g, err := mesh.Honeycomb(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Procs:      3,
		Order:      order.RCB,
		CheckEvery: 5,
		Outages:    []hetero.Outage{{Rank: 2, FromIter: 5}}, // gone forever
		Balancer:   &loadbal.Config{},
	}
	// Cancel from inside the run, at a check after the shrink: rank 2
	// is parked in its control receive at that point.
	cfg.OnCheck = func(ev CheckEvent) {
		if ev.Iter >= 10 {
			cancel()
		}
	}
	s, err := New(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Run(1000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under mid-epoch cancellation returned %v, want context.Canceled", err)
	}
	if _, err := s.Run(1); err == nil {
		t.Error("session usable after a failed Run")
	}
}

// TestElasticInitialOutage: an outage active from iteration 0 parks
// the rank from the very start; it joins at its first boundary after
// the outage ends.
func TestElasticInitialOutage(t *testing.T) {
	g, err := mesh.Honeycomb(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Procs: 3, Order: order.RCB, CheckEvery: 10}
	fixed, err := New(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Run(40); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Outages = []hetero.Outage{{Rank: 1, FromIter: 0, UntilIter: 15}}
	el, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer el.Close()
	if _, active := el.Membership(); len(active) != 2 {
		t.Fatalf("initial active set has %d ranks, want 2", len(active))
	}
	rep, err := el.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Members) != 1 || len(rep.Members[0].Admitted) != 1 || rep.Members[0].Admitted[0] != 1 {
		t.Fatalf("transitions %+v, want rank 1 admitted once", rep.Members)
	}
	if rep.Members[0].Iter != 20 {
		t.Errorf("admission at iter %d, want the first boundary after the outage (20)", rep.Members[0].Iter)
	}
	got, err := el.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: initially-shrunken run %v != fixed %v", i, got[i], want[i])
		}
	}
}
