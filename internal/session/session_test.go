package session

import (
	"context"
	"errors"
	"testing"
	"time"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/order"
	"stance/internal/solver"
)

// handWired runs iters iterations of the Figure 8 loop the way callers
// used to before the session API existed — NewWorld → SPMD → core.New
// → solver.New (→ loadbal.New) with a manual check loop — and returns
// the gathered result.
func handWired(t *testing.T, p, iters, checkEvery int, env *hetero.Env, balance bool) []float64 {
	t.Helper()
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{Order: order.RCB})
		if err != nil {
			return err
		}
		s, err := solver.New(rt, env, 2)
		if err != nil {
			return err
		}
		var bal *loadbal.Balancer
		if balance {
			bal, err = loadbal.New(rt, loadbal.Config{Horizon: checkEvery})
			if err != nil {
				return err
			}
		}
		err = s.Run(iters, func(iter int) error {
			if bal == nil || iter%checkEvery != 0 || iter == iters {
				return nil
			}
			tm := s.TakeTimings()
			_, err := bal.Check(loadbal.Report{RatePerItem: tm.RatePerItem(), Items: tm.Items})
			return err
		})
		if err != nil {
			return err
		}
		y, err := s.GatherResult(0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = y
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunMatchesHandWiredLoop is the acceptance test for the Session
// driver: Run must reproduce, bit for bit, the final vector of the
// hand-wired world/runtime/solver loop it replaced — with and without
// load balancing (remaps move data without changing values).
func TestRunMatchesHandWiredLoop(t *testing.T) {
	const p, iters, checkEvery = 3, 12, 5
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	env := hetero.PaperAdaptive(p, 2)

	for _, balance := range []bool{false, true} {
		name := "static"
		var balCfg *loadbal.Config
		if balance {
			name = "balanced"
			balCfg = &loadbal.Config{}
		}
		t.Run(name, func(t *testing.T) {
			want := handWired(t, p, iters, checkEvery, env, balance)

			s, err := New(context.Background(), g, Config{
				Procs:      p,
				Order:      order.RCB,
				Env:        env,
				WorkRep:    2,
				Balancer:   balCfg,
				CheckEvery: checkEvery,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			rep, err := s.Run(iters)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Result()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("Result() has %d values, hand-wired loop %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("value %d: session %v != hand-wired %v", i, got[i], want[i])
				}
			}
			if rep.Iters != iters || len(rep.Ranks) != p {
				t.Errorf("report: %d iters, %d ranks", rep.Iters, len(rep.Ranks))
			}
			var items int64
			for _, u := range rep.Ranks {
				items += u.Items
			}
			if want := int64(g.N) * int64(iters); items != want {
				t.Errorf("report items = %d, want %d", items, want)
			}
			if rep.Msgs <= 0 || rep.Bytes <= 0 {
				t.Errorf("report msgs/bytes = %d/%d, want > 0", rep.Msgs, rep.Bytes)
			}
			if balance {
				if len(rep.Checks) == 0 {
					t.Error("balanced run recorded no checks")
				}
				for _, ev := range rep.Checks {
					if ev.Iter%checkEvery != 0 {
						t.Errorf("check at iteration %d, want multiples of %d", ev.Iter, checkEvery)
					}
				}
			}
		})
	}
}

// TestRunResumes: consecutive Run calls continue the same computation,
// matching one long hand-wired run.
func TestRunResumes(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := handWired(t, 2, 10, 100, nil, false)

	s, err := New(context.Background(), g, Config{Procs: 2, Order: order.RCB, WorkRep: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, n := range []int{4, 6} {
		if _, err := s.Run(n); err != nil {
			t.Fatal(err)
		}
	}
	if s.Iter() != 10 {
		t.Errorf("Iter() = %d, want 10", s.Iter())
	}
	got, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("value %d: split runs %v != single run %v", i, got[i], want[i])
		}
	}
}

// TestRunDeferredCheck: a session driven by repeated short Runs whose
// length equals the check interval must still balance — the check
// that falls on each Run's final iteration is deferred to the start
// of the next Run, not dropped.
func TestRunDeferredCheck(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(context.Background(), g, Config{
		Procs:      3,
		Order:      order.RCB,
		Env:        hetero.PaperAdaptive(3, 3),
		WorkRep:    5,
		Balancer:   &loadbal.Config{},
		CheckEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var checks []CheckEvent
	for i := 0; i < 3; i++ {
		rep, err := s.Run(5)
		if err != nil {
			t.Fatal(err)
		}
		checks = append(checks, rep.Checks...)
	}
	// Runs 2 and 3 must each open with the check deferred from the
	// previous Run's final iteration (at global iters 5 and 10).
	if len(checks) != 2 {
		t.Fatalf("3x Run(5) performed %d checks, want 2 deferred ones: %+v", len(checks), checks)
	}
	for i, want := range []int{5, 10} {
		if checks[i].Iter != want {
			t.Errorf("check %d at iter %d, want %d", i, checks[i].Iter, want)
		}
	}
	if !checks[0].Decision.Remapped {
		t.Error("3x imbalance not remapped by the deferred check")
	}
}

// TestSessionCancellation: cancelling the session context mid-run must
// terminate Run with context.Canceled instead of deadlocking.
func TestSessionCancellation(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s, err := New(ctx, g, Config{Procs: 2, WorkRep: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := s.Run(1_000_000)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run error = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled Run did not terminate")
	}
	// Ranks may have stopped at different iterations: the session must
	// refuse further collectives instead of deadlocking them.
	if _, err := s.Run(1); err == nil {
		t.Error("Run succeeded on a session whose previous Run failed")
	}
	if _, err := s.Result(); err == nil {
		t.Error("Result succeeded on a session whose previous Run failed")
	}
}

// TestSessionClose: double Close is safe and a closed session refuses
// to run; the escape hatches degrade to nil instead of panicking.
func TestSessionClose(t *testing.T) {
	g, err := mesh.Honeycomb(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(context.Background(), g, Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if _, err := s.Run(1); err == nil {
		t.Error("Run on a closed session succeeded")
	}
	if s.Runtime(0) != nil || s.Solver(0) != nil || s.Iter() != 0 {
		t.Error("closed session still hands out per-rank state")
	}
	if _, err := s.Result(); err == nil {
		t.Error("Result on a closed session succeeded")
	}
}

// TestSessionClonesEstimator: the configured estimator is a prototype;
// each rank's balancer must get its own copy or decentralized checks
// race on the shared history (caught by -race) and can diverge.
func TestSessionClonesEstimator(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	est, err := loadbal.NewEstimator(loadbal.EstimateEWMA, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(context.Background(), g, Config{
		Procs:      3,
		Order:      order.RCB,
		Env:        hetero.PaperAdaptive(3, 2),
		WorkRep:    2,
		Balancer:   &loadbal.Config{Estimator: est, Decentralized: true},
		CheckEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(est.Predict()) != 0 {
		t.Error("session mutated the prototype estimator")
	}
}

// TestSessionConfigValidation: bad configurations fail fast.
func TestSessionConfigValidation(t *testing.T) {
	g, err := mesh.Honeycomb(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Config{
		"zero procs":      {},
		"bad transport":   {Procs: 2, Transport: "bogus"},
		"bad order":       {Procs: 2, OrderName: "bogus"},
		"env mismatch":    {Procs: 2, Env: hetero.Uniform(3)},
		"weight mismatch": {Procs: 2, Weights: []float64{1, 2, 3}},
	}
	for name, cfg := range cases {
		if _, err := New(context.Background(), g, cfg); err == nil {
			t.Errorf("%s: New succeeded", name)
		}
	}
	if _, err := New(context.Background(), nil, Config{Procs: 1}); err == nil {
		t.Error("nil graph: New succeeded")
	}
}

// TestSessionEfficiencyReport: the report's Section 4 efficiency is a
// sane fraction on a uniform world.
func TestSessionEfficiencyReport(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(context.Background(), g, Config{Procs: 2, Order: order.RCB, WorkRep: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	eff, err := rep.Efficiency(g.N)
	if err != nil {
		t.Fatal(err)
	}
	if eff <= 0 || eff > 1.5 {
		t.Errorf("Efficiency = %v, want a sane fraction", eff)
	}
}

// TestRunReportsExecutorTraffic: the report's Exec stats come from the
// executor's own per-operation counters — one Exchange per rank per
// iteration, the same messages every iteration on a static layout, and
// always a subset of the world-level totals. Repeated Runs report
// deltas, not cumulative counts.
func TestRunReportsExecutorTraffic(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	const p, iters = 3, 4
	s, err := New(context.Background(), g, Config{Procs: p, Order: order.RCB})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exec.Ops != p*iters {
		t.Errorf("Exec.Ops = %d, want %d", rep.Exec.Ops, p*iters)
	}
	if rep.Exec.Msgs <= 0 || rep.Exec.Msgs%iters != 0 {
		t.Errorf("Exec.Msgs = %d, want a positive multiple of %d", rep.Exec.Msgs, iters)
	}
	if rep.Exec.Bytes <= 0 || rep.Exec.Bytes%8 != 0 {
		t.Errorf("Exec.Bytes = %d, want a positive multiple of 8", rep.Exec.Bytes)
	}
	if rep.Exec.Msgs > rep.Msgs || rep.Exec.Bytes > rep.Bytes {
		t.Errorf("executor traffic (%d msgs/%d bytes) exceeds world totals (%d/%d)",
			rep.Exec.Msgs, rep.Exec.Bytes, rep.Msgs, rep.Bytes)
	}
	// A second Run reports its own window.
	rep2, err := s.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Exec != rep.Exec {
		t.Errorf("static layout: second Run's Exec %+v != first %+v", rep2.Exec, rep.Exec)
	}
}
