package session

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/order"
)

// TestRunReportJSONRoundTrip pins the RunReport wire format the stanced
// job service serves: a fully populated report (per-rank timings,
// balance checks, membership transitions, executor traffic) must
// marshal to JSON and unmarshal back to an identical value, and the
// stable snake_case field names must actually appear on the wire.
func TestRunReportJSONRoundTrip(t *testing.T) {
	g, err := mesh.Honeycomb(15, 20)
	if err != nil {
		t.Fatal(err)
	}
	env := hetero.PaperAdaptive(3, 3)
	env.Outages = []hetero.Outage{{Rank: 1, FromIter: 10, UntilIter: 25}}
	s, err := New(context.Background(), g, Config{
		Procs:      3,
		Order:      order.RCB,
		WorkRep:    3,
		CheckEvery: 5,
		Env:        env,
		Balancer:   &loadbal.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checks) == 0 || len(rep.Members) == 0 {
		t.Fatalf("report not fully populated: %d checks, %d members", len(rep.Checks), len(rep.Members))
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Errorf("round trip lost information:\n got %+v\nwant %+v", back, rep)
	}

	// The wire names are stable API: spot-check one from every nested
	// struct so a renamed Go field can't silently change the format.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"iters", "wall_ns", "ranks", "checks", "members", "msgs", "bytes", "exec"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("marshaled report is missing top-level key %q", key)
		}
	}
	for want, sub := range map[string]string{
		"ranks":   `"compute_ns"`,
		"checks":  `"predicted_current_s"`,
		"members": `"moved_bytes"`,
		"exec":    `"idle_ns"`,
	} {
		if !json.Valid(raw[want]) {
			t.Fatalf("key %q holds invalid JSON", want)
		}
		if s := string(raw[want]); !strings.Contains(s, sub) {
			t.Errorf("key %q does not contain %s: %s", want, sub, s)
		}
	}
}
