package session

import (
	"errors"
	"fmt"
	"time"

	"stance/internal/ckpt"
	"stance/internal/comm"
	"stance/internal/elastic"
)

// Crash-stop fault tolerance (internal/ckpt wired into the elastic
// driver). With Config.Checkpoint set, every check boundary and every
// Run start is a checkpoint gate: active members heartbeat the
// coordinator, which collects them under a receive deadline and
// multicasts a verdict — all alive (then everyone takes a buddy
// checkpoint), a recovery plan (survivors re-cut, restore the last
// checkpoint and roll back), or an abort (the failure is
// unrecoverable and the run fails loudly). Injected kills make a rank
// go silent at its gate, which is how the sim's seeded kill schedules
// exercise the whole path.

// gateResult is one rank's outcome of a checkpoint gate.
type gateResult int

const (
	// gateAlive: every member answered; continue the run.
	gateAlive gateResult = iota
	// gateRecovered: dead ranks were detected and this rank finished
	// its share of the recovery epoch; the boundary the gate guarded
	// is void (the recovery re-cut, rolled back and re-checkpointed).
	gateRecovered
	// gateDied: this rank's injected kill fired; it must return from
	// the SPMD body immediately and silently.
	gateDied
)

// ckptOn reports whether crash-stop fault tolerance is enabled.
func (s *Session) ckptOn() bool { return s.cfg.Checkpoint != nil }

// fieldData returns the solver's per-field backing slices in the
// rank's persistent scratch, so boundary-rate callers allocate
// nothing.
func (s *Session) fieldData(rk *rankState) [][]float64 {
	n := rk.sol.Fields()
	if cap(rk.fieldBufs) < n {
		rk.fieldBufs = make([][]float64, n)
	}
	rk.fieldBufs = rk.fieldBufs[:n]
	for f := range rk.fieldBufs {
		rk.fieldBufs[f] = rk.sol.Field(f).Data
	}
	return rk.fieldBufs
}

// ckptTake checkpoints this rank under the current membership and
// layout. Collective over the active set: every take site is chosen so
// that all members reach it under the same epoch (run starts without a
// transition, boundaries after the balance check, post-commit, and
// post-recovery).
func (s *Session) ckptTake(me, iter int) error {
	rk := s.ranks[me]
	cur := s.ctls[me].Membership()
	return s.cks[me].Take(iter, rk.rt.Layout(), cur.Active, s.fieldData(rk))
}

// ckptGate runs one rank's side of a checkpoint gate at iteration
// iter. The caller must have drained the pipeline and recorded the
// solver's timings first (a dying rank's last segment must still be
// accounted).
func (s *Session) ckptGate(c *comm.Comm, rep *RunReport, iter int) (gateResult, error) {
	me := c.Rank()
	ck := s.cks[me]
	for _, k := range s.cfg.Checkpoint.Kills {
		if k.Rank == me && iter >= k.Iter {
			// The injected crash: go silent. The survivors' gate
			// detects the missing heartbeat.
			s.killed[me] = true
			return gateDied, nil
		}
	}
	cur := s.ctls[me].Membership()
	timeout := s.cfg.Checkpoint.DetectTimeout

	if me != 0 {
		if err := ck.SendHB(iter); err != nil {
			return 0, err
		}
		// The coordinator spends up to one timeout per member before
		// its verdict; only a dead coordinator exceeds this deadline.
		deadline := time.Duration(len(cur.Active)+2) * timeout
		data, err := c.RecvTimeout(0, ckpt.TagCtl, deadline)
		if err != nil {
			if errors.Is(err, comm.ErrTimeout) {
				return 0, fmt.Errorf("session: no gate verdict within %v at iteration %d, coordinator presumed dead: %w",
					deadline, iter, ckpt.ErrUnrecoverable)
			}
			return 0, err
		}
		plan, err := ckpt.DecodeVerdict(data)
		c.Release(data)
		if err != nil {
			return 0, fmt.Errorf("session: iteration %d: %w", iter, err)
		}
		if plan == nil {
			return gateAlive, nil
		}
		if err := s.recover(c, rep, plan, 0); err != nil {
			return 0, err
		}
		return gateRecovered, nil
	}

	// Coordinator: collect every member's heartbeat under the
	// deadline. Members that answered after a miss must still be
	// drained, or their heartbeats would poison the next gate.
	t0 := s.clock.Now()
	var dead []int
	for _, r := range cur.Active {
		if r == 0 {
			continue
		}
		hbIter, err := ck.RecvHB(r, timeout)
		if err != nil {
			if errors.Is(err, comm.ErrTimeout) {
				dead = append(dead, r)
				continue
			}
			return 0, err
		}
		if hbIter != iter {
			return 0, fmt.Errorf("session: rank %d heartbeat for iteration %d at the iteration-%d gate", r, hbIter, iter)
		}
	}
	detect := s.clock.Now().Sub(t0)
	if len(dead) == 0 {
		if len(cur.Active) > 1 {
			if err := c.Multicast(cur.Active[1:], ckpt.TagCtl, s.aliveVerdict); err != nil {
				return 0, err
			}
		}
		return gateAlive, nil
	}

	ck.MarkDead(dead)
	survivors := diffRanks(cur.Active, dead)
	ckIter, ckLayout, have := ck.Have()
	recoverable := true
	if have {
		// Every dead rank's snapshot must survive on its buddy.
		for _, d := range dead {
			h := ckpt.Holder(d, cur.Active)
			if h == d || containsRank(dead, h) {
				recoverable = false
				break
			}
		}
	}
	if !recoverable {
		if len(survivors) > 1 {
			if err := c.Multicast(survivors[1:], ckpt.TagCtl, ckpt.EncodeAbort(dead)); err != nil {
				return 0, err
			}
		}
		return 0, fmt.Errorf("session: ranks %v died at iteration %d and their checkpoints died with them: %w",
			dead, iter, ckpt.ErrUnrecoverable)
	}
	rk := s.ranks[me]
	plan := &ckpt.Plan{
		Iter:      iter,
		CkptIter:  -1,
		Dead:      dead,
		OldActive: cur.Active,
		NewActive: survivors,
		Old:       rk.rt.Layout(),
	}
	if have {
		// The take rules guarantee the last checkpoint was taken
		// under the current membership and layout.
		plan.CkptIter = ckIter
		plan.Old = ckLayout
	}
	newLayout, err := rk.rt.CutLayout(s.activeWeights(survivors))
	if err != nil {
		return 0, err
	}
	plan.New = newLayout
	if len(survivors) > 1 {
		if err := c.Multicast(survivors[1:], ckpt.TagCtl, ckpt.EncodePlan(plan)); err != nil {
			return 0, err
		}
	}
	if err := s.recover(c, rep, plan, detect); err != nil {
		return 0, err
	}
	return gateRecovered, nil
}

// recover executes one survivor's share of a recovery epoch: rebind
// the runtime onto the survivors under the re-cut layout, restore the
// last checkpoint (the dead ranks' state replayed by their buddies) or
// reinitialize when none was ever taken, roll the solver back, advance
// the membership epoch, re-arm the balancer and take a fresh
// checkpoint under the new world. The coordinator records the
// RecoveryEvent.
func (s *Session) recover(c *comm.Comm, rep *RunReport, p *ckpt.Plan, detect time.Duration) error {
	me := c.Rank()
	rk := s.ranks[me]
	ck := s.cks[me]
	t0 := s.clock.Now()
	ck.MarkDead(p.Dead)
	epoch := s.ctls[me].Membership().Epoch + 1
	newSub, err := c.Sub(p.NewActive)
	if err != nil {
		return err
	}
	// The gate's heartbeat round proved every survivor is quiescent at
	// the same iteration with its pipeline drained, so the structural
	// rebind needs no drain barrier; the vectors' contents are garbage
	// until the restore below overwrites them.
	if err := rk.rt.Bind(newSub, p.New); err != nil {
		return err
	}
	s.subs[me] = newSub
	var restored int64
	if p.CkptIter < 0 {
		// Died before the first checkpoint: restart from the initial
		// conditions, which are a pure function of the global index
		// and therefore identical on any layout.
		rk.sol.InitDefault()
		rk.sol.SetIter(0)
	} else {
		if err := ck.Restore(p, s.fieldData(rk)); err != nil {
			return err
		}
		rk.sol.SetIter(p.CkptIter)
		restored = p.New.N() * int64(rk.sol.Fields()) * 8
	}
	s.ctls[me].Force(elastic.Membership{Epoch: epoch, Active: p.NewActive})
	if s.cfg.Balancer != nil {
		// A recovery is a forced remap: measurement history from the
		// old world would poison the estimator.
		if rk.bal == nil {
			if rk.bal, err = s.newBalancer(rk.rt); err != nil {
				return err
			}
		} else {
			rk.bal.Reset()
		}
	}
	if err := s.ckptTake(me, rk.sol.Iter()); err != nil {
		return err
	}
	if me == 0 {
		restoredIter := p.CkptIter
		if restoredIter < 0 {
			restoredIter = 0
		}
		rep.Recoveries = append(rep.Recoveries, ckpt.RecoveryEvent{
			Iter:          p.Iter,
			RestoredIter:  restoredIter,
			RollbackDepth: p.Iter - restoredIter,
			Dead:          p.Dead,
			Active:        append([]int(nil), p.NewActive...),
			Epoch:         epoch,
			DetectLatency: detect,
			RestoredBytes: restored,
			Duration:      s.clock.Now().Sub(t0),
		})
	}
	return nil
}

func diffRanks(all, drop []int) []int {
	out := make([]int, 0, len(all))
	for _, r := range all {
		if !containsRank(drop, r) {
			out = append(out, r)
		}
	}
	return out
}

func containsRank(list []int, r int) bool {
	for _, x := range list {
		if x == r {
			return true
		}
	}
	return false
}
