package session

import (
	"context"
	"strings"
	"testing"

	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/order"
	"stance/internal/solver"
)

// runPair executes the same configuration twice — synchronous and
// overlapped — and returns both reports and gathered results.
func runPair(t *testing.T, cfg Config, iters int) (syncRep, ovRep *RunReport, syncRes, ovRes []float64) {
	t.Helper()
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	run := func(overlap bool) (*RunReport, []float64) {
		c := cfg
		c.Overlap = overlap
		s, err := New(context.Background(), g, c)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rep, err := s.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.ResultByVertex()
		if err != nil {
			t.Fatal(err)
		}
		return rep, res
	}
	syncRep, syncRes = run(false)
	ovRep, ovRes = run(true)
	return syncRep, ovRep, syncRes, ovRes
}

func assertBitExact(t *testing.T, want, got []float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: result lengths differ: %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: vertex %d: overlapped %v != synchronous %v (must match bit for bit)",
				label, i, got[i], want[i])
		}
	}
}

// TestOverlapMatchesSyncBitExact pins the overlapped session mode
// against the synchronous one on the meshsolver configuration,
// including across a load-balancer remap: a 6x competing load on rank
// 0 (real amplified work, not scheduling noise) makes the measured
// rates robustly lopsided, so the balancer remaps away from the
// uniform initial cut.
func TestOverlapMatchesSyncBitExact(t *testing.T) {
	env := hetero.Uniform(4)
	env.Loads = []hetero.Load{{Rank: 0, Factor: 6, FromIter: 0}}
	cfg := Config{
		Procs:      4,
		Order:      order.RCB,
		WorkRep:    12,
		CheckEvery: 5,
		Env:        env,
		Balancer:   &loadbal.Config{},
	}
	syncRep, ovRep, syncRes, ovRes := runPair(t, cfg, 30)
	assertBitExact(t, syncRes, ovRes, "balanced run")

	if syncRep.Exec.Overlapped != 0 {
		t.Errorf("synchronous run recorded %d overlapped ops, want 0", syncRep.Exec.Overlapped)
	}
	if ovRep.Exec.Overlapped == 0 {
		t.Error("overlapped run recorded no overlapped executor ops")
	}
	if ovRep.Exec.Ops != ovRep.Exec.Overlapped {
		t.Errorf("overlapped run: %d of %d executor ops were split-phase, want all",
			ovRep.Exec.Overlapped, ovRep.Exec.Ops)
	}
	if len(ovRep.Remaps()) == 0 {
		t.Error("overlapped run performed no remap; the 6x load on rank 0 should force one")
	}
	if len(syncRep.Remaps()) == 0 {
		t.Error("synchronous run performed no remap; the 6x load on rank 0 should force one")
	}
}

// TestOverlapSameTraffic: without a balancer (whose remap cuts depend
// on measured rates) the overlapped and synchronous runs replay the
// identical schedule, so splitting an exchange into Start/Finish
// changes when messages are drained, not how many travel.
func TestOverlapSameTraffic(t *testing.T) {
	cfg := Config{Procs: 3, Order: order.RCB, WorkRep: 2}
	syncRep, ovRep, syncRes, ovRes := runPair(t, cfg, 20)
	assertBitExact(t, syncRes, ovRes, "no-balancer run")
	if ovRep.Exec.Msgs != syncRep.Exec.Msgs || ovRep.Exec.Bytes != syncRep.Exec.Bytes {
		t.Errorf("executor traffic differs: overlapped %d msgs/%d bytes, synchronous %d msgs/%d bytes",
			ovRep.Exec.Msgs, ovRep.Exec.Bytes, syncRep.Exec.Msgs, syncRep.Exec.Bytes)
	}
	if ovRep.Exec.Overlapped != ovRep.Exec.Ops || ovRep.Exec.Ops == 0 {
		t.Errorf("overlapped run: %d of %d ops split-phase, want all of a positive count",
			ovRep.Exec.Overlapped, ovRep.Exec.Ops)
	}
}

// checkPlanSplit asserts the interior/boundary partition invariant on
// a session's active runtimes — the cross-world half of the
// classification property test, exercised after elastic rebinds.
func checkPlanSplit(t *testing.T, s *Session, label string) {
	t.Helper()
	_, active := s.Membership()
	for _, r := range active {
		rt := s.Runtime(r)
		p := rt.Plan()
		if p == nil || !p.Classified() {
			t.Fatalf("%s: rank %d has no classified plan", label, r)
		}
		interior, boundary := p.Interior(), p.Boundary()
		if len(interior)+len(boundary) != rt.LocalN() {
			t.Fatalf("%s: rank %d: |interior|=%d + |boundary|=%d != nLocal=%d",
				label, r, len(interior), len(boundary), rt.LocalN())
		}
		seen := make(map[int32]bool, rt.LocalN())
		for _, u := range append(append([]int32(nil), interior...), boundary...) {
			if u < 0 || int(u) >= rt.LocalN() {
				t.Fatalf("%s: rank %d: index %d out of local range [0,%d)", label, r, u, rt.LocalN())
			}
			if seen[u] {
				t.Fatalf("%s: rank %d: index %d in both interior and boundary", label, r, u)
			}
			seen[u] = true
		}
	}
}

// TestOverlapElasticShrinkGrowBitExact runs the scripted shrink→grow
// scenario in overlapped mode: rank 2 retires at iteration 20 and is
// re-admitted at 60, and the overlapped elastic run must match the
// synchronous fixed-world run bit for bit. It also asserts the
// classification invariant after each cross-world rebind.
func TestOverlapElasticShrinkGrowBitExact(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 80
	base := Config{
		Procs:      4,
		Order:      order.RCB,
		WorkRep:    3,
		CheckEvery: 10,
	}

	fixed, err := New(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if _, err := fixed.Run(iters); err != nil {
		t.Fatal(err)
	}
	want, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Overlap = true
	cfg.Outages = []hetero.Outage{{Rank: 2, FromIter: 20, UntilIter: 60}}
	el, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer el.Close()
	rep, err := el.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Members) != 2 {
		t.Fatalf("overlapped elastic run recorded %d membership transitions, want 2: %+v",
			len(rep.Members), rep.Members)
	}
	if rep.Exec.Overlapped == 0 {
		t.Error("overlapped elastic run recorded no overlapped executor ops")
	}
	checkPlanSplit(t, el, "after shrink+grow")

	got, err := el.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, want, got, "elastic shrink/grow")

	// An explicit Resize exercises one more cross-world rebind pair;
	// the classification must hold on the shrunken world too, and the
	// continued run must stay bit-exact against the fixed session.
	if err := el.Resize([]int{0, 1, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := el.Run(20); err != nil {
		t.Fatal(err)
	}
	checkPlanSplit(t, el, "after resize")
	if _, err := fixed.Run(20); err != nil {
		t.Fatal(err)
	}
	want2, err := fixed.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := el.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, want2, got2, "post-resize continuation")
}

// TestOverlapRequiresSplitKernel: requesting the overlapped mode with
// a kernel that has no boundary split fails loudly at session build —
// there is no silent fallback to the synchronous executor.
func TestOverlapRequiresSplitKernel(t *testing.T) {
	g, err := mesh.Honeycomb(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(context.Background(), g, Config{
		Procs:   2,
		Overlap: true,
		Kernel:  solver.Figure8Fused{},
	})
	if err == nil {
		t.Fatal("session with Overlap and a split-less kernel built successfully, want error")
	}
	if !strings.Contains(err.Error(), "boundary split") {
		t.Fatalf("error %q does not name the missing boundary split", err)
	}

	// The same kernel without overlap runs fine and matches the default
	// kernel bit for bit — it is the same computation, only unsplit.
	run := func(k solver.Kernel) []float64 {
		s, err := New(context.Background(), g, Config{Procs: 2, Order: order.RCB, Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Run(12); err != nil {
			t.Fatal(err)
		}
		res, err := s.ResultByVertex()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	assertBitExact(t, run(solver.Figure8{}), run(solver.Figure8Fused{}), "fused kernel")
}
