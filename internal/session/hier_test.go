package session

import (
	"context"
	"math"
	"testing"
	"time"

	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/vtime"
)

// bandDumbbell builds the paper's Section 4 nonuniform-network stress
// graph: two dense bands of a and b vertices (every vertex joined to
// its k nearest successors within the band) connected by a single
// bridge edge. In identity order any cut inside a band crosses ~k²/2
// edges; the cut at the bridge crosses exactly one. A flat equal cut
// of a+b vertices lands inside the first band whenever a != b, so the
// group boundary drags a wide ghost frontier across the slow link —
// the hierarchical cut slides it onto the bridge.
func bandDumbbell(t *testing.T, a, b, k int) *graph.Graph {
	t.Helper()
	n := a + b
	var edges []graph.Edge
	band := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j <= i+k && j < hi; j++ {
				edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
			}
		}
	}
	band(0, a)
	band(a, n)
	edges = append(edges, graph.Edge{U: int32(a - 1), V: int32(a)})
	g, err := graph.FromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// hierRun executes one deterministic virtual-time session on the
// dumbbell and returns its report and gathered result.
func hierRun(t *testing.T, g *graph.Graph, iters int, mutate func(*Config)) (*RunReport, []float64) {
	t.Helper()
	topo, err := comm.ContiguousGroups(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Procs:    4,
		Clock:    vtime.NewSim(),
		Topology: topo,
		// Intra-group links are fast; the inter-group link is both
		// higher-latency and two orders of magnitude thinner, so the
		// bytes a cut pushes across it dominate the phase time.
		Model:       &comm.Model{Latency: 20 * time.Microsecond, Bandwidth: 1e7},
		InterModel:  &comm.Model{Latency: 200 * time.Microsecond, Bandwidth: 1e5},
		ComputeCost: time.Microsecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := s.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	return rep, vals
}

func sameBits(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d values", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: value %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestHierarchicalCutBeatsFlatOnSlowLink is the tentpole acceptance
// test: on a two-level world whose inter-group link is ~10× slower,
// the hierarchy-aware cut (which slides the group boundary onto the
// dumbbell's bridge) must beat the flat equal cut (which lands inside
// a dense band) on exact virtual wall time, because it pushes a
// one-edge ghost frontier across the slow link instead of a ~20-edge
// one. The numerics must not notice: both cuts, and the topology-free
// reference, produce bit-identical solution vectors.
func TestHierarchicalCutBeatsFlatOnSlowLink(t *testing.T) {
	g := bandDumbbell(t, 55, 45, 6)
	const iters = 30

	hier, hierVals := hierRun(t, g, iters, nil)
	flat, flatVals := hierRun(t, g, iters, func(cfg *Config) { cfg.FlatCut = true })

	if hier.Wall >= flat.Wall {
		t.Errorf("hierarchical cut did not beat the flat cut on the slow link: hier %v vs flat %v",
			hier.Wall, flat.Wall)
	}
	if hier.InterBytes >= flat.InterBytes {
		t.Errorf("hierarchical cut moved no fewer bytes across the slow link: hier %d vs flat %d",
			hier.InterBytes, flat.InterBytes)
	}
	if hier.InterMsgs == 0 || flat.InterMsgs == 0 {
		t.Errorf("inter-group counters silent: hier %d, flat %d msgs", hier.InterMsgs, flat.InterMsgs)
	}
	t.Logf("hier: wall %v, %d inter msgs, %d inter bytes", hier.Wall, hier.InterMsgs, hier.InterBytes)
	t.Logf("flat: wall %v, %d inter msgs, %d inter bytes", flat.Wall, flat.InterMsgs, flat.InterBytes)

	// Same graph, same math: partitioning must not change the answer.
	sameBits(t, "hier vs flat cut", hierVals, flatVals)

	// On a uniform network (no InterModel) the hierarchy is free to be
	// present without cost: results stay bit-identical to a plain flat
	// world, and the counters still attribute the crossings.
	uniHier, uniHierVals := hierRun(t, g, iters, func(cfg *Config) { cfg.InterModel = nil })
	_, uniFlatVals := hierRun(t, g, iters, func(cfg *Config) {
		cfg.Topology, cfg.InterModel = nil, nil
	})
	sameBits(t, "uniform hier vs flat world", uniHierVals, uniFlatVals)
	sameBits(t, "uniform vs priced", uniHierVals, hierVals)
	if uniHier.InterMsgs != hier.InterMsgs {
		t.Errorf("crossing count depends on pricing: %d with InterModel, %d without",
			hier.InterMsgs, uniHier.InterMsgs)
	}
}

// TestLeaderReportsSlowLinkTraffic pins the balancer half of the
// tentpole from the outside, on RunReport counters alone: with 8 ranks
// in 2 groups, each decentralized balance check costs the slow link
// exactly P = 8 messages under the flat all-gather (4 gather sends + 4
// broadcast crossings) but exactly G·(G−1) = 2 under the leader
// exchange — O(groups), not O(ranks). The environment is uniform so no
// check remaps and the data-path traffic is identical across runs,
// which makes the per-check delta exact, not approximate.
func TestLeaderReportsSlowLinkTraffic(t *testing.T) {
	const p, iters, checkEvery = 8, 30, 10
	const nChecks = 2 // checks at 10 and 20; 30 is deferred past the Run
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := comm.ContiguousGroups(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(bal *loadbal.Config, flatReports bool) *RunReport {
		s, err := New(context.Background(), g, Config{
			Procs:       p,
			Clock:       vtime.NewSim(),
			Topology:    topo,
			Model:       &comm.Model{Latency: 10 * time.Microsecond},
			InterModel:  &comm.Model{Latency: 100 * time.Microsecond},
			OrderName:   "rcb",
			ComputeCost: 2 * time.Microsecond,
			CheckEvery:  checkEvery,
			Balancer:    bal,
			FlatReports: flatReports,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rep, err := s.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		if bal != nil {
			if len(rep.Checks) != nChecks {
				t.Fatalf("%d checks, want %d", len(rep.Checks), nChecks)
			}
			for _, ev := range rep.Checks {
				if ev.Decision.Remapped {
					t.Fatalf("uniform environment remapped at iteration %d", ev.Iter)
				}
			}
		}
		return rep
	}

	base := run(nil, false)
	flat := run(&loadbal.Config{Decentralized: true}, true)
	leader := run(&loadbal.Config{Decentralized: true}, false)

	if base.InterMsgs == 0 {
		t.Fatal("no inter-group traffic measured at all; the counter is broken")
	}
	if got, want := flat.InterMsgs-base.InterMsgs, int64(p*nChecks); got != want {
		t.Errorf("flat all-gather checks cost %d slow-link messages, want exactly P·checks = %d", got, want)
	}
	if got, want := leader.InterMsgs-base.InterMsgs, int64(2*nChecks); got != want {
		t.Errorf("leader-aggregated checks cost %d slow-link messages, want exactly G(G-1)·checks = %d", got, want)
	}
	if leader.InterBytes >= flat.InterBytes {
		t.Errorf("leader exchange moved no fewer bytes across the slow link: %d vs %d",
			leader.InterBytes, flat.InterBytes)
	}
	t.Logf("slow-link msgs: baseline %d, flat +%d, leader +%d",
		base.InterMsgs, flat.InterMsgs-base.InterMsgs, leader.InterMsgs-base.InterMsgs)
}

// TestSessionTopologyValidation covers the configuration surface added
// with two-level worlds.
func TestSessionTopologyValidation(t *testing.T) {
	g, err := mesh.Honeycomb(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := comm.ContiguousGroups(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// InterModel without a Topology is meaningless.
	if _, err := New(context.Background(), g, Config{
		Procs: 4, InterModel: &comm.Model{Latency: time.Millisecond},
	}); err == nil {
		t.Error("InterModel without Topology accepted")
	}
	// A topology must cover exactly the world's ranks.
	if _, err := New(context.Background(), g, Config{Procs: 3, Topology: topo}); err == nil {
		t.Error("4-rank topology on a 3-rank world accepted")
	}
	// An adopted world's transport is already built; a topology cannot
	// be injected after the fact.
	w, err := comm.Open("inproc", 4, comm.TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := New(context.Background(), g, Config{World: w, Topology: topo}); err == nil {
		t.Error("Topology alongside an adopted World accepted")
	}
	// Topology belongs in Config, not in the transport tuning.
	if _, err := New(context.Background(), g, Config{
		Procs:  4,
		Tuning: &comm.TransportOptions{Topology: topo},
	}); err == nil {
		t.Error("Tuning.Topology accepted")
	}
}
