// Package session is the one-call orchestration layer of the STANCE
// reproduction: it owns the wiring the paper's runtime library absorbs
// on behalf of applications — build a world, transform and partition
// the graph (Phase A), run the inspector (Phase B), then drive the
// iterate → measure → balance-check → remap loop (Phases C and D) —
// so callers go from a mesh to a finished run in two calls instead of
// hand-wiring world, runtime, solver and balancer on every rank.
//
// The facade package re-exports this as stance.NewSession with
// functional options; internal callers (the bench harness) use the
// Config struct directly.
package session

import (
	"context"
	"fmt"
	"time"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/graph"
	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/metrics"
	"stance/internal/order"
	"stance/internal/solver"
)

// Barrier tags for the Run driver (distinct from the runtime's and the
// balancer's).
const (
	tagRunStart = 0x501
	tagRunEnd   = 0x502
)

// Config parameterizes a session. The zero value runs the identity
// ordering on one in-process rank with a free network and no load
// balancing.
type Config struct {
	// Procs is the number of SPMD ranks (workstations).
	Procs int
	// Transport names a registered comm transport ("" means "inproc").
	Transport string
	// Model is the network cost model for modeled transports (nil means
	// a free network; ignored by the TCP transport).
	Model *comm.Model
	// Order is the Phase A locality transformation (nil falls back to
	// OrderName, then to identity).
	Order order.Func
	// OrderName resolves an ordering by registry name ("rcb",
	// "hilbert", ...) when Order is nil.
	OrderName string
	// Weights are the initial relative processor capabilities (nil
	// means uniform).
	Weights []float64
	// VertexWeights are per-vertex computational weights in original
	// vertex numbering (nil means unit weights).
	VertexWeights []float64
	// Strategy selects the Phase B inspector variant.
	Strategy core.Strategy
	// RemapPolicy selects the arrangement search used on remaps.
	RemapPolicy core.RemapPolicy
	// RootComputesOrder makes rank 0 compute the ordering and broadcast
	// it instead of every rank computing it independently.
	RootComputesOrder bool
	// Env simulates a nonuniform/adaptive cluster (nil means uniform,
	// unloaded).
	Env *hetero.Env
	// WorkRep is the kernel work amplification per element (values < 1
	// are treated as 1).
	WorkRep int
	// Balancer enables Phase D adaptive load balancing (nil disables
	// it). A zero Horizon defaults to CheckEvery.
	Balancer *loadbal.Config
	// CheckEvery is the number of iterations between balance checks
	// (default 10, the paper's protocol).
	CheckEvery int
	// OnCheck, if non-nil, is called on rank 0 immediately after each
	// balance check, giving long runs live feedback instead of waiting
	// for the RunReport. It runs inside the SPMD section; keep it
	// cheap and do not call back into the session.
	OnCheck func(CheckEvent)
}

// rankState is one rank's slice of the session.
type rankState struct {
	rt  *core.Runtime
	sol *solver.Solver
	bal *loadbal.Balancer
	// window is the rank's most recent measurement window, kept so a
	// check deferred across a Run boundary still has a rate estimate.
	window solver.Timings
}

// Session owns a world and the per-rank runtime/solver/balancer stack
// built on it. State persists across Run calls: iterations, layout and
// vector values continue where the previous Run stopped.
type Session struct {
	cfg   Config
	ctx   context.Context
	g     *graph.Graph
	world *comm.World
	ranks []*rankState
	// pendingCheck records that the previous Run ended on a check
	// boundary whose check was skipped (a remap there could not pay
	// off within that Run); the next Run performs it first, so a
	// session driven by repeated short Runs still balances.
	pendingCheck bool
	// broken marks a session whose Run failed partway: ranks may have
	// stopped at different iterations, so any further collective would
	// misalign and deadlock. Only Close remains usable.
	broken bool
}

// New builds a session collectively: opens the world on the configured
// transport and constructs the runtime, solver and (optionally)
// balancer on every rank. ctx governs the whole session: cancelling it
// unblocks any pending communication with ctx.Err().
func New(ctx context.Context, g *graph.Graph, cfg Config) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return nil, fmt.Errorf("session: nil graph")
	}
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("session: world size must be positive, got %d", cfg.Procs)
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 10
	}
	if cfg.Order == nil && cfg.OrderName != "" {
		f, err := order.ByName(cfg.OrderName)
		if err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
		cfg.Order = f
	}
	if cfg.Env != nil {
		if err := cfg.Env.Validate(); err != nil {
			return nil, err
		}
		if cfg.Env.P() != cfg.Procs {
			return nil, fmt.Errorf("session: environment has %d workstations, world has %d",
				cfg.Env.P(), cfg.Procs)
		}
	}
	world, err := comm.Open(cfg.Transport, cfg.Procs, comm.TransportConfig{Model: cfg.Model})
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:   cfg,
		ctx:   ctx,
		g:     g,
		world: world,
		ranks: make([]*rankState, cfg.Procs),
	}
	err = world.SPMD(ctx, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{
			Order:             cfg.Order,
			Weights:           cfg.Weights,
			VertexWeights:     cfg.VertexWeights,
			Strategy:          cfg.Strategy,
			RemapPolicy:       cfg.RemapPolicy,
			RootComputesOrder: cfg.RootComputesOrder,
		})
		if err != nil {
			return err
		}
		sol, err := solver.New(rt, cfg.Env, cfg.WorkRep)
		if err != nil {
			return err
		}
		st := &rankState{rt: rt, sol: sol}
		if cfg.Balancer != nil {
			bc := *cfg.Balancer
			if bc.Horizon <= 0 {
				bc.Horizon = cfg.CheckEvery
			}
			// The estimator is stateful and per-rank; the configured one
			// is only a prototype, or the ranks would race on it.
			bc.Estimator = bc.Estimator.Clone()
			st.bal, err = loadbal.New(rt, bc)
			if err != nil {
				return err
			}
		}
		s.ranks[c.Rank()] = st
		return nil
	})
	if err != nil {
		world.Close()
		return nil, err
	}
	return s, nil
}

// RankUsage is one rank's accumulated measurements over a Run: the
// solver's timing window type, summed across the Run's check windows.
type RankUsage = solver.Timings

// CheckEvent records one load-balance check (remapping or not) with
// rank 0's view of the collective decision.
type CheckEvent struct {
	// Iter is the global iteration count at which the check ran.
	Iter int
	// Decision is the controller's verdict, including the predicted
	// phase times, the modeled remap cost and the measured check/remap
	// durations on rank 0.
	Decision loadbal.Decision
}

// RunReport is the consolidated result of one Run: wall time, per-rank
// timings, every balance check with its decision, and the messages and
// bytes the world moved during the run.
type RunReport struct {
	// Iters is the number of iterations this Run executed.
	Iters int
	// Wall is rank 0's barrier-to-barrier wall time.
	Wall time.Duration
	// Ranks holds each rank's accumulated compute/comm time and items.
	Ranks []RankUsage
	// Checks are the load-balance checks in iteration order (empty
	// without a balancer).
	Checks []CheckEvent
	// Msgs and Bytes count the messages and payload bytes sent by all
	// ranks during the run.
	Msgs, Bytes int64
	// Exec is the traffic the executor data path itself generated
	// during the run (Exchange/ScatterAdd operations, messages and
	// bytes summed over ranks), counted per operation by the runtimes.
	// Unlike Msgs/Bytes it excludes barrier, balancer and remap
	// traffic, so it is the pure schedule-replay cost.
	Exec core.ExecStats
}

// Remaps returns the subset of checks that actually remapped.
func (r *RunReport) Remaps() []CheckEvent {
	var out []CheckEvent
	for _, ev := range r.Checks {
		if ev.Decision.Remapped {
			out = append(out, ev)
		}
	}
	return out
}

// Efficiency derives the paper's Section 4 nonuniform-environment
// efficiency from the measured per-rank rates: a rank computing rate
// seconds/item alone would need rate * vertices * iters for the whole
// run. It fails if some rank measured no items.
func (r *RunReport) Efficiency(vertices int) (float64, error) {
	seq := make([]float64, 0, len(r.Ranks))
	for rank, u := range r.Ranks {
		if u.Items == 0 {
			return 0, fmt.Errorf("session: rank %d measured no items", rank)
		}
		seq = append(seq, u.RatePerItem()*float64(vertices)*float64(r.Iters))
	}
	return metrics.EfficiencyStatic(r.Wall.Seconds(), seq)
}

// Run executes iters iterations of the parallel loop on every rank,
// owning the paper's per-phase protocol: iterate, accumulate
// measurements, check the balancer every CheckEvery iterations, and
// remap when the controller says it is profitable. A check falling on
// the run's final iteration is deferred — its remap could not pay off
// within this Run — and performed at the start of the next Run if the
// session continues, so repeated short Runs still balance. It returns
// the consolidated report. Run may be called repeatedly; iteration
// counts and data continue from the previous call. A Run that fails
// partway leaves ranks at divergent iterations, so it marks the
// session unusable: further Run/Result calls fail and only Close
// remains.
func (s *Session) Run(iters int) (*RunReport, error) {
	if err := s.usable(); err != nil {
		return nil, err
	}
	if iters < 0 {
		return nil, fmt.Errorf("session: negative iteration count %d", iters)
	}
	rep := &RunReport{Iters: iters, Ranks: make([]RankUsage, s.cfg.Procs)}
	if iters == 0 {
		return rep, nil
	}
	msgs0, bytes0 := s.world.Stats()
	execBefore := make([]core.ExecStats, len(s.ranks))
	for i, rk := range s.ranks {
		execBefore[i] = rk.rt.ExecStats()
	}
	// The solvers' own counters are the source of truth for the global
	// iteration count (they advance even on a Run that errors partway).
	first := s.Iter()
	last := first + iters
	pending := s.pendingCheck
	s.pendingCheck = false
	var wall time.Duration
	check := func(c *comm.Comm, iter int, tm solver.Timings) error {
		rk := s.ranks[c.Rank()]
		d, err := rk.bal.Check(loadbal.Report{RatePerItem: tm.RatePerItem(), Items: tm.Items})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			ev := CheckEvent{Iter: iter, Decision: d}
			rep.Checks = append(rep.Checks, ev)
			if s.cfg.OnCheck != nil {
				s.cfg.OnCheck(ev)
			}
		}
		return nil
	}
	err := s.world.SPMD(s.ctx, func(c *comm.Comm) error {
		rk := s.ranks[c.Rank()]
		usage := &rep.Ranks[c.Rank()]
		if err := c.Barrier(tagRunStart); err != nil {
			return err
		}
		start := time.Now()
		if pending && rk.bal != nil {
			if err := check(c, first, rk.window); err != nil {
				return err
			}
		}
		err := rk.sol.Run(iters, func(iter int) error {
			if rk.bal == nil || iter%s.cfg.CheckEvery != 0 || iter == last {
				return nil
			}
			tm := rk.sol.TakeTimings()
			usage.Add(tm)
			rk.window = tm
			return check(c, iter, tm)
		})
		if err != nil {
			return err
		}
		if err := c.Barrier(tagRunEnd); err != nil {
			return err
		}
		if c.Rank() == 0 {
			wall = time.Since(start)
		}
		tm := rk.sol.TakeTimings()
		usage.Add(tm)
		rk.window = tm
		return nil
	})
	if err != nil {
		s.broken = true
		return nil, err
	}
	s.pendingCheck = s.ranks[0].bal != nil && last%s.cfg.CheckEvery == 0
	rep.Wall = wall
	msgs1, bytes1 := s.world.Stats()
	rep.Msgs, rep.Bytes = msgs1-msgs0, bytes1-bytes0
	for i, rk := range s.ranks {
		rep.Exec.Add(rk.rt.ExecStats().Sub(execBefore[i]))
	}
	return rep, nil
}

// World returns the underlying world.
func (s *Session) World() *comm.World { return s.world }

// Graph returns the computational graph the session was built on.
func (s *Session) Graph() *graph.Graph { return s.g }

// Iter returns the number of completed iterations across all Runs
// (rank 0's count; ranks only diverge after a mid-run error).
func (s *Session) Iter() int {
	if s.ranks == nil {
		return 0
	}
	return s.ranks[0].sol.Iter()
}

// usable reports whether collective operations may still run.
func (s *Session) usable() error {
	if s.ranks == nil {
		return fmt.Errorf("session: closed")
	}
	if s.broken {
		return fmt.Errorf("session: unusable after a failed Run (ranks may have diverged); Close it")
	}
	return nil
}

// Runtime returns rank's runtime — the escape hatch for callers that
// need the low-level API alongside the driver. It returns nil on a
// closed session and panics on an out-of-range rank.
func (s *Session) Runtime(rank int) *core.Runtime {
	if s.ranks == nil {
		return nil
	}
	if rank < 0 || rank >= len(s.ranks) {
		panic(fmt.Sprintf("session: rank %d of %d", rank, len(s.ranks)))
	}
	return s.ranks[rank].rt
}

// Solver returns rank's solver, or nil on a closed session. It panics
// on an out-of-range rank.
func (s *Session) Solver(rank int) *solver.Solver {
	if s.ranks == nil {
		return nil
	}
	if rank < 0 || rank >= len(s.ranks) {
		panic(fmt.Sprintf("session: rank %d of %d", rank, len(s.ranks)))
	}
	return s.ranks[rank].sol
}

// Result gathers the solution vector on rank 0 in transformed-global
// order (the order the runtime partitions). Collective.
func (s *Session) Result() ([]float64, error) {
	if err := s.usable(); err != nil {
		return nil, err
	}
	var out []float64
	err := s.world.SPMD(s.ctx, func(c *comm.Comm) error {
		y, err := s.ranks[c.Rank()].sol.GatherResult(0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ResultByVertex is Result mapped back to the original vertex
// numbering: out[v] is vertex v's value.
func (s *Session) ResultByVertex() ([]float64, error) {
	vals, err := s.Result()
	if err != nil {
		return nil, err
	}
	return s.ranks[0].rt.Unpermute(vals)
}

// Close shuts the session's world down. Pending operations fail;
// repeated Close calls are safe and return the first call's error.
func (s *Session) Close() error {
	if s.world == nil {
		return nil
	}
	err := s.world.Close()
	s.ranks = nil
	return err
}
