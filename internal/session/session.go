// Package session is the one-call orchestration layer of the STANCE
// reproduction: it owns the wiring the paper's runtime library absorbs
// on behalf of applications — build a world, transform and partition
// the graph (Phase A), run the inspector (Phase B), then drive the
// iterate → measure → balance-check → remap loop (Phases C and D) —
// so callers go from a mesh to a finished run in two calls instead of
// hand-wiring world, runtime, solver and balancer on every rank.
//
// When the environment takes workstations away and gives them back
// (availability outages, or an explicit Resize), the session also runs
// the elastic membership protocol (Phase E, internal/elastic): at
// check boundaries the coordinator shrinks or grows the active rank
// set, data migrates onto the survivors, and parked ranks block
// cheaply until re-admitted.
//
// The facade package re-exports this as stance.NewSession with
// functional options; internal callers (the bench harness) use the
// Config struct directly.
package session

import (
	"context"
	"errors"
	"fmt"
	"time"

	"stance/internal/ckpt"
	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/elastic"
	"stance/internal/graph"
	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/metrics"
	"stance/internal/order"
	"stance/internal/partition"
	"stance/internal/solver"
	"stance/internal/vtime"
)

// Barrier tags for the Run driver (distinct from the runtime's, the
// balancer's and the elastic protocol's).
const (
	tagRunStart = 0x501
	tagRunEnd   = 0x502
)

// Config parameterizes a session. The zero value runs the identity
// ordering on one in-process rank with a free network and no load
// balancing.
type Config struct {
	// Procs is the number of SPMD ranks (workstations).
	Procs int
	// World, when non-nil, runs the session on a caller-provided world
	// instead of opening a fresh one — the stanced job service carves
	// per-job sub-worlds out of one shared rank pool (comm.WrapWorld
	// over Comm.Sub endpoints) and hands each job's session its slice.
	// Procs must equal World.Size() (or be zero, which adopts it);
	// Transport and Model must be unset — the adopted world already
	// has both — and a nil Clock is taken from the world. Close leaves
	// an adopted world open: the provider owns its lifecycle.
	World *comm.World
	// Transport names a registered comm transport ("" means "inproc").
	Transport string
	// Tuning carries the transport's wire tuning (batching flush
	// period, batch cap, compression codec, heartbeat liveness, outbox
	// high-water mark, mesh deadlines) to comm.Open — the facade's
	// WithTransportTuning. nil means library defaults. Its Model and
	// Clock fields must stay nil: Config.Model and Config.Clock are the
	// single source of truth and are injected into the tuning at Open.
	// Like Transport and Model it conflicts with an adopted World.
	Tuning *comm.TransportOptions
	// Model is the network cost model (nil means a free network). The
	// in-process transport applies it in full; the TCP transport
	// charges Latency/Bandwidth sender-side and applies Delay on the
	// receive side, additive to the real wire time.
	Model *comm.Model
	// Topology declares a two-level world: ranks grouped into node
	// clusters joined by a slower inter-group link (the paper's
	// nonuniform network). It flows into every hierarchy-aware layer:
	// the transport prices (and counts) inter-group traffic separately,
	// the partitioner cuts across groups first, and the decentralized
	// balancer exchanges reports through group leaders. Must cover
	// exactly Procs ranks; conflicts with an adopted World (whose
	// transport is already built).
	Topology *comm.Topology
	// Groups is the convenience form of Topology: split the Procs ranks
	// into this many contiguous, near-equal node groups. 0 means flat;
	// mutually exclusive with an explicit Topology.
	Groups int
	// InterModel is the cost model for messages crossing group
	// boundaries (requires Topology; nil prices inter-group traffic on
	// Model like everything else). This is the knob that makes the
	// network nonuniform: intra-group messages cost Model, inter-group
	// messages cost InterModel.
	InterModel *comm.Model
	// FlatCut keeps hierarchical pricing and leader-aggregated checks
	// but cuts the partition flat, ignoring group boundaries — the
	// control arm for measuring what the hierarchy-aware cut is worth.
	FlatCut bool
	// FlatReports keeps the hierarchy-aware cut but exchanges balance
	// reports by flat all-gather instead of through group leaders — the
	// control arm for measuring the leader aggregation.
	FlatReports bool
	// Clock is the session's time source (nil means the real clock):
	// network charges, delivery delays, every measured duration in the
	// RunReport and the balancer's decisions all come off it. A
	// vtime.Sim runs the whole session in deterministic virtual time —
	// hours of simulated adaptivity in milliseconds, same clock ⇒ same
	// report. Only the in-process transport supports a simulated clock.
	Clock vtime.Clock
	// ComputeCost, when positive, virtualizes the solver's compute:
	// each element charges ComputeCost × WorkRep × WorkFactor to the
	// clock per iteration instead of spinning the kernel that many
	// times. Numerics are unchanged (the kernel still sweeps once).
	// This is how heterogeneity is injected under a simulated clock —
	// as exact virtual cost instead of real work.
	ComputeCost time.Duration
	// Order is the Phase A locality transformation (nil falls back to
	// OrderName, then to identity).
	Order order.Func
	// OrderName resolves an ordering by registry name ("rcb",
	// "hilbert", ...) when Order is nil.
	OrderName string
	// Weights are the initial relative processor capabilities (nil
	// means uniform).
	Weights []float64
	// VertexWeights are per-vertex computational weights in original
	// vertex numbering (nil means unit weights).
	VertexWeights []float64
	// Strategy selects the Phase B inspector variant.
	Strategy core.Strategy
	// RemapPolicy selects the arrangement search used on remaps.
	RemapPolicy core.RemapPolicy
	// RootComputesOrder makes rank 0 compute the ordering and broadcast
	// it instead of every rank computing it independently.
	RootComputesOrder bool
	// Env simulates a nonuniform/adaptive cluster (nil means uniform,
	// unloaded). Availability outages in the environment enable the
	// elastic membership protocol.
	Env *hetero.Env
	// Outages are additional availability windows merged into Env (a
	// uniform environment is synthesized when Env is nil). Any outage
	// enables elastic membership.
	Outages []hetero.Outage
	// Elastic enables the membership protocol even without outages, so
	// Session.Resize can shrink and grow the active set explicitly.
	Elastic bool
	// WorkRep is the kernel work amplification per element (values < 1
	// are treated as 1).
	WorkRep int
	// Kernel is the solver's compute body (nil means the built-in
	// Figure 8 kernel). With Overlap or Pipeline set it must be a
	// solver.SubsetKernel — a kernel that can sweep the interior and
	// boundary strips separately.
	Kernel solver.Kernel
	// Overlap runs the executor split-phase (Phase C′): each iteration
	// posts its ghost exchange, computes the interior elements while the
	// messages are in flight, then drains the arrivals and computes the
	// boundary strip. Results are bit-for-bit identical to the
	// synchronous executor; RunReport.Exec.Overlapped and .Idle report
	// how much latency the overlap hid. Requires a kernel with a
	// boundary split — New fails loudly otherwise, it never falls back
	// to synchronous. Mutually exclusive with Pipeline.
	Overlap bool
	// Pipeline, when positive, runs the solver software-pipelined on op
	// handles: every field's ghost exchange is in flight at once, and at
	// depth >= 2 a field's next-iteration exchange is posted as soon as
	// its update completes, so the pipeline spans iteration boundaries.
	// Results stay bit-for-bit identical; RunReport.Exec.Pipelined
	// counts the ops issued while another was already in flight. Like
	// Overlap it requires a solver.SubsetKernel and never falls back
	// silently; the two modes are mutually exclusive (pipelining
	// subsumes the overlap).
	Pipeline int
	// Fields is the number of independent solution fields the solver
	// advances per iteration (0 means 1). Extra fields give the
	// pipelined executor independent exchanges to keep in flight; field
	// 0 is the solution vector Result returns.
	Fields int
	// Balancer enables Phase D adaptive load balancing (nil disables
	// it). A zero Horizon defaults to CheckEvery.
	Balancer *loadbal.Config
	// CheckEvery is the number of iterations between balance checks
	// (default 10, the paper's protocol). Membership transitions happen
	// only at these boundaries, so it is also the granularity at which
	// availability changes take effect.
	CheckEvery int
	// OnCheck, if non-nil, is called on rank 0 immediately after each
	// balance check, giving long runs live feedback instead of waiting
	// for the RunReport. It runs inside the SPMD section; keep it
	// cheap and do not call back into the session.
	OnCheck func(CheckEvent)
	// OnMembership, if non-nil, is called on rank 0 immediately after
	// each committed membership transition. Same rules as OnCheck.
	OnMembership func(MembershipEvent)
	// Checkpoint enables crash-stop fault tolerance (internal/ckpt):
	// buddy checkpoints at every check boundary, heartbeat failure
	// detection with the configured receive deadline, and survivor-side
	// restart from the last checkpoint. It implies the elastic path
	// (recovery is a membership transition). The DetectTimeout must
	// exceed the compute skew between ranks within one check segment,
	// or a slow rank is mistaken for a dead one.
	Checkpoint *ckpt.Config
}

// rankState is one rank's slice of the session.
type rankState struct {
	rt  *core.Runtime
	sol *solver.Solver
	bal *loadbal.Balancer
	// window is the rank's most recent measurement window, kept so a
	// check deferred across a Run boundary still has a rate estimate.
	window solver.Timings
	// fieldBufs is persistent scratch for the checkpoint path's
	// per-field data views.
	fieldBufs [][]float64
}

// Session owns a world and the per-rank runtime/solver/balancer stack
// built on it. State persists across Run calls: iterations, layout and
// vector values continue where the previous Run stopped.
type Session struct {
	cfg   Config
	ctx   context.Context
	clock vtime.Clock
	g     *graph.Graph
	world *comm.World
	// ownWorld marks a world the session opened itself (and therefore
	// closes); an adopted Config.World stays open after Close.
	ownWorld bool
	ranks    []*rankState
	// elastic marks a session running the membership protocol; ctls
	// and subs are per-world-rank: the rank's protocol controller and
	// its endpoint in the current active sub-world (nil while parked).
	elastic bool
	ctls    []*elastic.Controller
	subs    []*comm.Comm
	// pendingCheck records that the previous Run ended on a check
	// boundary whose check was skipped (a remap there could not pay
	// off within that Run); the next Run performs it first, so a
	// session driven by repeated short Runs still balances.
	pendingCheck bool
	// pendingBoundary is the elastic counterpart: the previous Run
	// ended on a membership boundary whose verdict was skipped, so the
	// next Run opens with it — a session driven by repeated short Runs
	// tracks availability at the same iterations a single long Run
	// would.
	pendingBoundary bool
	// broken marks a session whose Run failed partway: ranks may have
	// stopped at different iterations, so any further collective would
	// misalign and deadlock. Only Close remains usable.
	broken bool
	// Crash-stop state (nil/empty without Config.Checkpoint): each
	// rank's checkpoint store, the per-rank killed flags (written only
	// by the rank's own SPMD goroutine when its injected kill fires),
	// and the preencoded all-alive gate verdict.
	cks          []*ckpt.Store
	killed       []bool
	aliveVerdict []byte
}

// New builds a session collectively: opens the world on the configured
// transport and constructs the runtime, solver and (optionally)
// balancer on every rank. ctx governs the whole session: cancelling it
// unblocks any pending communication with ctx.Err().
func New(ctx context.Context, g *graph.Graph, cfg Config) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return nil, fmt.Errorf("session: nil graph")
	}
	if cfg.World != nil {
		if cfg.Procs == 0 {
			cfg.Procs = cfg.World.Size()
		}
		if cfg.Procs != cfg.World.Size() {
			return nil, fmt.Errorf("session: Procs %d does not match the adopted world's %d ranks",
				cfg.Procs, cfg.World.Size())
		}
		if cfg.Transport != "" {
			return nil, fmt.Errorf("session: Transport %q conflicts with an adopted World", cfg.Transport)
		}
		if cfg.Model != nil {
			return nil, fmt.Errorf("session: Model conflicts with an adopted World (the world's transport already has one)")
		}
		if cfg.Tuning != nil {
			return nil, fmt.Errorf("session: Tuning conflicts with an adopted World (the world's transport is already built)")
		}
		if cfg.Topology != nil {
			return nil, fmt.Errorf("session: Topology conflicts with an adopted World (the world's transport is already built)")
		}
	}
	if cfg.Groups != 0 {
		if cfg.Topology != nil {
			return nil, fmt.Errorf("session: Groups conflicts with an explicit Topology — set one or the other")
		}
		if cfg.World != nil {
			return nil, fmt.Errorf("session: Groups conflicts with an adopted World (the world's transport is already built)")
		}
		topo, err := comm.ContiguousGroups(cfg.Procs, cfg.Groups)
		if err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
		cfg.Topology = topo
	}
	if cfg.InterModel != nil && cfg.Topology == nil {
		return nil, fmt.Errorf("session: InterModel requires a Topology (there is no inter-group link without groups)")
	}
	if cfg.Tuning != nil {
		if cfg.Tuning.Model != nil {
			return nil, fmt.Errorf("session: set the network model through Config.Model, not Tuning.Model")
		}
		if cfg.Tuning.Clock != nil {
			return nil, fmt.Errorf("session: set the clock through Config.Clock, not Tuning.Clock")
		}
		if cfg.Tuning.Topology != nil {
			return nil, fmt.Errorf("session: set the topology through Config.Topology, not Tuning.Topology")
		}
		if cfg.Tuning.InterModel != nil {
			return nil, fmt.Errorf("session: set the inter-group model through Config.InterModel, not Tuning.InterModel")
		}
		if err := cfg.Tuning.Validate(); err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
	}
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("session: world size must be positive, got %d", cfg.Procs)
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 10
	}
	if cfg.Order == nil && cfg.OrderName != "" {
		f, err := order.ByName(cfg.OrderName)
		if err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
		cfg.Order = f
	}
	if len(cfg.Outages) > 0 {
		if cfg.Env == nil {
			cfg.Env = hetero.Uniform(cfg.Procs)
		} else {
			cfg.Env = cfg.Env.Clone()
		}
		cfg.Env.Outages = append(cfg.Env.Outages, cfg.Outages...)
	}
	if cfg.Env != nil {
		if err := cfg.Env.Validate(); err != nil {
			return nil, err
		}
		if cfg.Env.P() != cfg.Procs {
			return nil, fmt.Errorf("session: environment has %d workstations, world has %d",
				cfg.Env.P(), cfg.Procs)
		}
	}
	if cfg.Weights != nil && len(cfg.Weights) != cfg.Procs {
		return nil, fmt.Errorf("session: %d weights for %d ranks", len(cfg.Weights), cfg.Procs)
	}
	if cfg.Overlap && cfg.Kernel != nil {
		if _, ok := cfg.Kernel.(solver.SubsetKernel); !ok {
			return nil, fmt.Errorf("session: overlapped mode requires a kernel with a boundary split (solver.SubsetKernel); %T has none", cfg.Kernel)
		}
	}
	if cfg.Pipeline < 0 {
		return nil, fmt.Errorf("session: negative pipeline depth %d", cfg.Pipeline)
	}
	if cfg.Pipeline > 0 {
		if cfg.Overlap {
			return nil, fmt.Errorf("session: Overlap and Pipeline are mutually exclusive (pipelining subsumes the overlap)")
		}
		if cfg.Kernel != nil {
			if _, ok := cfg.Kernel.(solver.SubsetKernel); !ok {
				return nil, fmt.Errorf("session: pipelined mode requires a kernel with a boundary split (solver.SubsetKernel); %T has none", cfg.Kernel)
			}
		}
	}
	if cfg.Fields < 0 {
		return nil, fmt.Errorf("session: negative field count %d", cfg.Fields)
	}
	if cfg.ComputeCost < 0 {
		return nil, fmt.Errorf("session: negative compute cost %v", cfg.ComputeCost)
	}
	if cfg.Checkpoint != nil {
		resolved := cfg.Checkpoint.WithDefaults()
		for _, k := range resolved.Kills {
			if k.Rank < 0 || k.Rank >= cfg.Procs {
				return nil, fmt.Errorf("session: kill names rank %d of %d", k.Rank, cfg.Procs)
			}
			if k.Iter < 0 {
				return nil, fmt.Errorf("session: kill at negative iteration %d", k.Iter)
			}
		}
		cfg.Checkpoint = &resolved
	}
	world := cfg.World
	ownWorld := world == nil
	if ownWorld {
		if cfg.Clock == nil {
			cfg.Clock = vtime.Real{}
		}
		opts := comm.TransportOptions{}
		if cfg.Tuning != nil {
			opts = *cfg.Tuning
		}
		opts.Model, opts.Clock = cfg.Model, cfg.Clock
		opts.Topology, opts.InterModel = cfg.Topology, cfg.InterModel
		var err error
		world, err = comm.Open(cfg.Transport, cfg.Procs, opts)
		if err != nil {
			return nil, err
		}
	} else if cfg.Clock == nil {
		// An adopted world already runs on a clock (a sub-world
		// delegates to its parent's); the session must measure on the
		// same timeline.
		cfg.Clock = world.Comm(0).Clock()
	}
	s := &Session{
		cfg:      cfg,
		ctx:      ctx,
		clock:    cfg.Clock,
		g:        g,
		world:    world,
		ownWorld: ownWorld,
		ranks:    make([]*rankState, cfg.Procs),
		elastic:  cfg.Elastic || (cfg.Env != nil && cfg.Env.Elastic()) || cfg.Checkpoint != nil,
	}
	var err error
	if cfg.Checkpoint != nil {
		s.cks = make([]*ckpt.Store, cfg.Procs)
		s.killed = make([]bool, cfg.Procs)
		s.aliveVerdict = ckpt.EncodeAlive()
	}
	if s.elastic {
		s.ctls = make([]*elastic.Controller, cfg.Procs)
		s.subs = make([]*comm.Comm, cfg.Procs)
		err = world.SPMD(ctx, s.buildElasticRank)
	} else {
		err = world.SPMD(ctx, s.buildFixedRank)
	}
	if err != nil {
		if ownWorld {
			world.Close()
		}
		return nil, err
	}
	return s, nil
}

// coreConfig assembles the runtime configuration shared by both build
// paths.
func (s *Session) coreConfig() core.Config {
	cc := core.Config{
		Order:             s.cfg.Order,
		Weights:           s.cfg.Weights,
		VertexWeights:     s.cfg.VertexWeights,
		Strategy:          s.cfg.Strategy,
		RemapPolicy:       s.cfg.RemapPolicy,
		RootComputesOrder: s.cfg.RootComputesOrder,
	}
	if s.cfg.Topology != nil && !s.cfg.FlatCut {
		cc.Groups = s.cfg.Topology.GroupOfSlice()
	}
	return cc
}

// buildFixedRank constructs one rank's stack for a fixed-membership
// session: runtime, solver, balancer, all on the full world.
func (s *Session) buildFixedRank(c *comm.Comm) error {
	rt, err := core.New(c, s.g, s.coreConfig())
	if err != nil {
		return err
	}
	sol, err := s.newSolver(rt)
	if err != nil {
		return err
	}
	st := &rankState{rt: rt, sol: sol}
	if s.cfg.Balancer != nil {
		if st.bal, err = s.newBalancer(rt); err != nil {
			return err
		}
	}
	s.ranks[c.Rank()] = st
	return nil
}

// buildElasticRank constructs one rank's stack for an elastic session:
// the locality transform runs on every rank of the full world (so
// parked ranks can be admitted later), but only the initial active set
// binds runtimes — onto a sub-world — and everyone else parks.
func (s *Session) buildElasticRank(c *comm.Comm) error {
	active := s.initialActive()
	ctl, err := elastic.NewController(c, active)
	if err != nil {
		return err
	}
	s.ctls[c.Rank()] = ctl
	if s.ckptOn() {
		fields := s.cfg.Fields
		if fields < 1 {
			fields = 1
		}
		s.cks[c.Rank()] = ckpt.NewStore(c, fields)
	}
	rt, err := core.NewParked(c, s.g, s.coreConfig())
	if err != nil {
		return err
	}
	if ctl.ActiveHere() {
		sub, err := c.Sub(active)
		if err != nil {
			return err
		}
		layout, err := rt.CutLayout(s.activeWeights(active))
		if err != nil {
			return err
		}
		if err := rt.Bind(sub, layout); err != nil {
			return err
		}
		s.subs[c.Rank()] = sub
	}
	sol, err := s.newSolver(rt)
	if err != nil {
		return err
	}
	st := &rankState{rt: rt, sol: sol}
	if s.cfg.Balancer != nil && ctl.ActiveHere() {
		if st.bal, err = s.newBalancer(rt); err != nil {
			return err
		}
	}
	s.ranks[c.Rank()] = st
	return nil
}

// initialActive returns the active set at iteration 0.
func (s *Session) initialActive() []int {
	if s.cfg.Env != nil && s.cfg.Env.Elastic() {
		return s.cfg.Env.ActiveSet(0)
	}
	all := make([]int, s.cfg.Procs)
	for i := range all {
		all[i] = i
	}
	return all
}

// activeWeights restricts the configured capability weights to an
// active set (uniform when none are configured).
func (s *Session) activeWeights(active []int) []float64 {
	w := make([]float64, len(active))
	for i, r := range active {
		if s.cfg.Weights != nil {
			w[i] = s.cfg.Weights[r]
		} else {
			w[i] = 1
		}
	}
	return w
}

// newSolver builds a rank's solver with the configured kernel, field
// count and executor mode. SetOverlap/SetPipeline run last: they are
// the checks that reject a kernel without a boundary split instead of
// silently running the synchronous path.
func (s *Session) newSolver(rt *core.Runtime) (*solver.Solver, error) {
	sol, err := solver.New(rt, s.cfg.Env, s.cfg.WorkRep)
	if err != nil {
		return nil, err
	}
	if s.cfg.Kernel != nil {
		if err := sol.SetKernel(s.cfg.Kernel); err != nil {
			return nil, err
		}
	}
	if s.cfg.Fields > 1 {
		if err := sol.SetFields(s.cfg.Fields); err != nil {
			return nil, err
		}
	}
	if s.cfg.Overlap {
		if err := sol.SetOverlap(true); err != nil {
			return nil, err
		}
	}
	if s.cfg.Pipeline > 0 {
		if err := sol.SetPipeline(s.cfg.Pipeline); err != nil {
			return nil, err
		}
	}
	if s.cfg.ComputeCost > 0 {
		sol.SetVirtualCompute(s.cfg.ComputeCost)
	}
	return sol, nil
}

// newBalancer builds a rank's balancer from the configured prototype.
// The estimator is stateful and per-rank; the configured one is only
// a prototype, or the ranks would race on it.
func (s *Session) newBalancer(rt *core.Runtime) (*loadbal.Balancer, error) {
	bc := *s.cfg.Balancer
	if bc.Horizon <= 0 {
		bc.Horizon = s.cfg.CheckEvery
	}
	if bc.Decentralized && bc.Topology == nil && !s.cfg.FlatReports {
		// On a two-level world the decentralized check routes through
		// group leaders by default; FlatReports is the explicit opt-out.
		bc.Topology = s.cfg.Topology
	}
	bc.Estimator = bc.Estimator.Clone()
	return loadbal.New(rt, bc)
}

// RankUsage is one rank's accumulated measurements over a Run: the
// solver's timing window type, summed across the Run's check windows.
type RankUsage = solver.Timings

// CheckEvent records one load-balance check (remapping or not) with
// rank 0's view of the collective decision.
type CheckEvent struct {
	// Iter is the global iteration count at which the check ran.
	Iter int `json:"iter"`
	// Decision is the controller's verdict, including the predicted
	// phase times, the modeled remap cost and the measured check/remap
	// durations on rank 0.
	Decision loadbal.Decision `json:"decision"`
}

// MembershipEvent records one committed membership transition: the new
// epoch, who left and joined, and what the migration moved.
type MembershipEvent = elastic.Event

// RunReport is the consolidated result of one Run: wall time, per-rank
// timings, every balance check and membership transition, and the
// messages and bytes the world moved during the run.
//
// RunReport and every nested event/timing struct marshal to JSON with
// stable snake_case field names — the wire format the stanced job
// service serves on /v1/jobs and /metrics. Durations are integer
// nanoseconds (fields suffixed _ns); modeled times are float seconds
// (suffixed _s). The round trip is loss-free: unmarshaling the JSON
// reproduces the report exactly.
type RunReport struct {
	// Iters is the number of iterations this Run executed.
	Iters int `json:"iters"`
	// Wall is rank 0's barrier-to-barrier wall time.
	Wall time.Duration `json:"wall_ns"`
	// Ranks holds each rank's accumulated compute/comm time and items,
	// indexed by world rank (parked ranks accumulate nothing).
	Ranks []RankUsage `json:"ranks"`
	// Checks are the load-balance checks in iteration order (empty
	// without a balancer).
	Checks []CheckEvent `json:"checks,omitempty"`
	// Members are the membership transitions in iteration order (empty
	// on fixed-membership sessions), each with its migration byte
	// count.
	Members []MembershipEvent `json:"members,omitempty"`
	// Recoveries are the crash-stop recovery epochs in iteration order
	// (empty without Config.Checkpoint or when nothing died): who was
	// declared dead, the detection latency, the checkpoint rolled back
	// to and how many iterations were replayed.
	Recoveries []ckpt.RecoveryEvent `json:"recoveries,omitempty"`
	// Msgs and Bytes count the messages and payload bytes sent by all
	// ranks during the run.
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
	// InterMsgs and InterBytes are the subset of Msgs/Bytes that
	// crossed a group boundary on a two-level world (Config.Topology) —
	// the traffic the slow inter-group link carried. Zero on flat
	// worlds and adopted worlds.
	InterMsgs  int64 `json:"inter_msgs,omitempty"`
	InterBytes int64 `json:"inter_bytes,omitempty"`
	// Exec is the traffic the executor data path itself generated
	// during the run (Exchange/ScatterAdd operations, messages and
	// bytes summed over ranks), counted per operation by the runtimes.
	// Unlike Msgs/Bytes it excludes barrier, balancer and remap
	// traffic, so it is the pure schedule-replay cost.
	Exec core.ExecStats `json:"exec"`
	// Transport is the wire-counter delta over the run (framed writes,
	// wire bytes after batching and compression, missed heartbeats,
	// backpressure stalls), summed over ranks. nil when the transport
	// keeps no counters (inproc) or the world is adopted — a shared
	// pool's counters mix every tenant's traffic, so a per-job delta
	// would lie.
	Transport *comm.TransportStats `json:"transport,omitempty"`
}

// Remaps returns the subset of checks that actually remapped.
func (r *RunReport) Remaps() []CheckEvent {
	var out []CheckEvent
	for _, ev := range r.Checks {
		if ev.Decision.Remapped {
			out = append(out, ev)
		}
	}
	return out
}

// Efficiency derives the paper's Section 4 nonuniform-environment
// efficiency from the measured per-rank rates: a rank computing rate
// seconds/item alone would need rate * vertices * iters for the whole
// run. It fails if some rank measured no items (in particular, ranks
// parked for the whole run).
func (r *RunReport) Efficiency(vertices int) (float64, error) {
	seq := make([]float64, 0, len(r.Ranks))
	for rank, u := range r.Ranks {
		if u.Items == 0 {
			return 0, fmt.Errorf("session: rank %d measured no items", rank)
		}
		seq = append(seq, u.RatePerItem()*float64(vertices)*float64(r.Iters))
	}
	return metrics.EfficiencyStatic(r.Wall.Seconds(), seq)
}

// Run executes iters iterations of the parallel loop on every rank,
// owning the paper's per-phase protocol: iterate, accumulate
// measurements, check the balancer every CheckEvery iterations, and
// remap when the controller says it is profitable. On an elastic
// session the check boundaries double as membership boundaries: the
// coordinator compares the active set against the environment's
// availability (or a pending Resize request) and drives the epoch
// transition when they differ. A check falling on the run's final
// iteration is deferred — its remap could not pay off within this Run
// — and performed at the start of the next Run if the session
// continues, so repeated short Runs still balance. It returns the
// consolidated report. Run may be called repeatedly; iteration counts,
// membership and data continue from the previous call. A Run that
// fails partway leaves ranks at divergent iterations, so it marks the
// session unusable: further Run/Result calls fail and only Close
// remains.
func (s *Session) Run(iters int) (*RunReport, error) {
	if err := s.usable(); err != nil {
		return nil, err
	}
	if iters < 0 {
		return nil, fmt.Errorf("session: negative iteration count %d", iters)
	}
	rep := &RunReport{Iters: iters, Ranks: make([]RankUsage, s.cfg.Procs)}
	if iters == 0 {
		return rep, nil
	}
	msgs0, bytes0 := s.world.Stats()
	var interMsgs0, interBytes0 int64
	if s.ownWorld {
		interMsgs0, interBytes0 = s.world.InterGroupStats()
	}
	var trBefore comm.TransportStats
	trOK := false
	if s.ownWorld {
		trBefore, trOK = s.world.TransportStats()
	}
	execBefore := make([]core.ExecStats, len(s.ranks))
	for i, rk := range s.ranks {
		execBefore[i] = rk.rt.ExecStats()
	}
	// The solvers' own counters are the source of truth for the global
	// iteration count (they advance even on a Run that errors partway).
	first := s.Iter()
	last := first + iters
	pending := s.pendingCheck
	pendingB := s.pendingBoundary
	s.pendingCheck, s.pendingBoundary = false, false
	var wall time.Duration
	err := s.world.SPMD(s.ctx, func(c *comm.Comm) error {
		var err error
		if s.elastic {
			err = s.runElastic(c, rep, last, pending, pendingB, &wall)
		} else {
			err = s.runFixed(c, rep, first, last, pending, &wall)
		}
		if err != nil && s.ckptOn() && errors.Is(err, comm.ErrKilled) {
			// The rank's transport endpoint was crash-injected
			// (comm.KillEndpoint): a crash-stop death, not a program
			// error. The rank goes silent — exactly like an injected
			// gate kill — and the survivors' heartbeat detection and
			// recovery carry the run.
			s.killed[c.Rank()] = true
			return nil
		}
		return err
	})
	if err != nil {
		s.broken = true
		return nil, err
	}
	s.pendingCheck = s.ranks[0].bal != nil && last%s.cfg.CheckEvery == 0
	s.pendingBoundary = s.elastic && last%s.cfg.CheckEvery == 0
	rep.Wall = wall
	msgs1, bytes1 := s.world.Stats()
	rep.Msgs, rep.Bytes = msgs1-msgs0, bytes1-bytes0
	if s.ownWorld {
		interMsgs1, interBytes1 := s.world.InterGroupStats()
		rep.InterMsgs, rep.InterBytes = interMsgs1-interMsgs0, interBytes1-interBytes0
	}
	if trOK {
		trAfter, _ := s.world.TransportStats()
		d := trAfter.Sub(trBefore)
		rep.Transport = &d
	}
	for i, rk := range s.ranks {
		rep.Exec.Add(rk.rt.ExecStats().Sub(execBefore[i]))
	}
	return rep, nil
}

// check runs one collective balance check on a rank and records the
// event on rank 0.
func (s *Session) check(me int, rep *RunReport, iter int, tm solver.Timings) error {
	rk := s.ranks[me]
	d, err := rk.bal.Check(loadbal.Report{RatePerItem: tm.RatePerItem(), Items: tm.Items})
	if err != nil {
		return err
	}
	if me == 0 {
		ev := CheckEvent{Iter: iter, Decision: d}
		rep.Checks = append(rep.Checks, ev)
		if s.cfg.OnCheck != nil {
			s.cfg.OnCheck(ev)
		}
	}
	return nil
}

// runFixed is one rank's Run body on a fixed-membership session.
func (s *Session) runFixed(c *comm.Comm, rep *RunReport, first, last int, pending bool, wall *time.Duration) error {
	me := c.Rank()
	rk := s.ranks[me]
	usage := &rep.Ranks[me]
	if err := c.Barrier(tagRunStart); err != nil {
		return err
	}
	start := s.clock.Now()
	if pending && rk.bal != nil {
		if err := s.check(me, rep, first, rk.window); err != nil {
			return err
		}
	}
	// Iterate in segments between check boundaries, mirroring the
	// elastic path: a check may Remap, and the pipelined solver keeps op
	// handles in flight inside a Run call, so layout changes must fall
	// between Run calls (every Run returns with the pipeline drained).
	// The per-iteration callback only polls cancellation: a rank that
	// never blocks (a one-rank world has no ghosts) must still notice
	// it.
	for iter := first; iter < last; {
		next := iter + s.cfg.CheckEvery - iter%s.cfg.CheckEvery
		if next > last {
			next = last
		}
		if err := rk.sol.Run(next-iter, func(int) error { return s.ctx.Err() }); err != nil {
			return err
		}
		iter = next
		if rk.bal == nil || iter == last {
			// A check on the final iteration is deferred to the next Run
			// (its remap could not pay off within this one).
			continue
		}
		tm := rk.sol.TakeTimings()
		usage.Add(tm)
		rk.window = tm
		if err := s.check(me, rep, iter, tm); err != nil {
			return err
		}
	}
	if err := c.Barrier(tagRunEnd); err != nil {
		return err
	}
	if me == 0 {
		*wall = s.clock.Now().Sub(start)
	}
	tm := rk.sol.TakeTimings()
	usage.Add(tm)
	rk.window = tm
	return nil
}

// runElastic is one rank's Run body on an elastic session. Active
// ranks iterate in segments between check boundaries; at each interior
// boundary the coordinator's membership verdict arrives first (a
// transition forces a fresh cut and resets the balancer, so the
// regular balance check is skipped at that boundary), then the regular
// check runs. Parked ranks block in Park until admitted or the run
// ends; retiring ranks migrate their data away and join the parked
// set.
func (s *Session) runElastic(c *comm.Comm, rep *RunReport, last int, pending, pendingB bool, wall *time.Duration) error {
	me := c.Rank()
	rk := s.ranks[me]
	ctl := s.ctls[me]
	usage := &rep.Ranks[me]
	if s.killed != nil && s.killed[me] {
		// A rank whose injected kill fired in an earlier Run stays
		// silent forever; its own controller still lists it as active
		// (it never saw the recovery verdict), so it must not fall
		// into the active path below.
		return nil
	}

	var start time.Time
	if ctl.ActiveHere() {
		// The Run start is a checkpoint gate: ranks that died at the
		// end of the previous Run (or whose kill names iteration 0)
		// are detected before any survivor blocks in a barrier with
		// them. A recovery here voids the deferred boundary and check:
		// it re-cut, rolled back and re-checkpointed already.
		transitioned := false
		if s.ckptOn() {
			res, err := s.ckptGate(c, rep, rk.sol.Iter())
			if err != nil {
				return err
			}
			switch res {
			case gateDied:
				return nil
			case gateRecovered:
				transitioned = true
				pendingB, pending = false, false
			}
		}
		if err := s.subs[me].Barrier(tagRunStart); err != nil {
			return err
		}
		start = s.clock.Now()
		// A boundary that fell on the previous Run's final iteration
		// was deferred; perform it now, in boundary order: membership
		// verdict first, then the deferred balance check unless a
		// transition already forced a fresh cut. A rank retired here
		// parks at the top of the loop; an admitted rank wakes inside
		// its Park call below.
		if pendingB {
			iter := rk.sol.Iter()
			prop, err := ctl.Boundary(iter, rk.rt.Layout(), s.desiredFn(ctl, iter), s.cutFn(rk))
			if err != nil {
				return err
			}
			if prop != nil {
				if err := s.commit(me, rep, prop, s.subs[me]); err != nil {
					return err
				}
				pending = false
				transitioned = true
			}
		}
		if pending && rk.bal != nil {
			if err := s.check(me, rep, rk.sol.Iter(), rk.window); err != nil {
				return err
			}
		}
		// Checkpoint under the Run-start layout and membership. After
		// a transition or recovery the commit/recovery itself took
		// one, collectively with any admitted ranks, so taking again
		// here would misalign the buddy ring. A retired rank is no
		// longer active and parks at the top of the loop instead.
		if s.ckptOn() && !transitioned && ctl.ActiveHere() {
			if err := s.ckptTake(me, rk.sol.Iter()); err != nil {
				return err
			}
		}
	}
	for {
		if !ctl.ActiveHere() {
			prop, err := ctl.Park()
			if err != nil {
				return err
			}
			if prop == nil {
				// Run ended while parked; stay parked for the next Run.
				return nil
			}
			if err := s.commit(me, rep, prop, nil); err != nil {
				return err
			}
			continue
		}
		iter := rk.sol.Iter()
		if iter >= last {
			break
		}
		next := iter + s.cfg.CheckEvery - iter%s.cfg.CheckEvery
		if next > last {
			next = last
		}
		// As on the fixed path, cancellation is polled every iteration
		// so compute-only segments notice it too.
		if err := rk.sol.Run(next-iter, func(int) error { return s.ctx.Err() }); err != nil {
			return err
		}
		if next == last {
			// A boundary on the final iteration is deferred, exactly
			// like the fixed path's final check.
			break
		}
		tm := rk.sol.TakeTimings()
		usage.Add(tm)
		rk.window = tm
		// The checkpoint gate runs first at every interior boundary —
		// after the segment's timings are recorded, so a dying rank's
		// last segment is still accounted. A recovery voids the rest
		// of this boundary: membership and balance restart fresh on
		// the survivor world at the next one.
		if s.ckptOn() {
			res, err := s.ckptGate(c, rep, next)
			if err != nil {
				return err
			}
			switch res {
			case gateDied:
				return nil
			case gateRecovered:
				continue
			}
		}
		prop, err := ctl.Boundary(next, rk.rt.Layout(), s.desiredFn(ctl, next), s.cutFn(rk))
		if err != nil {
			return err
		}
		if prop != nil {
			if err := s.commit(me, rep, prop, s.subs[me]); err != nil {
				return err
			}
			continue
		}
		if rk.bal != nil {
			if err := s.check(me, rep, next, tm); err != nil {
				return err
			}
		}
		// Checkpoint after the balance check, so the snapshot always
		// matches the layout the next segment runs on (a check may
		// remap). On a transition the commit takes instead — jointly
		// with any admitted ranks.
		if s.ckptOn() {
			if err := s.ckptTake(me, next); err != nil {
				return err
			}
		}
	}
	// Run end: only reached by ranks active in the final epoch.
	tm := rk.sol.TakeTimings()
	usage.Add(tm)
	rk.window = tm
	if err := s.subs[me].Barrier(tagRunEnd); err != nil {
		return err
	}
	if me == 0 {
		*wall = s.clock.Now().Sub(start)
		// Dead ranks get no run-end verdict: nobody would ever consume
		// it, and on a shared pool (jobsvc) the stale message could
		// leak into a later tenant of the same rank.
		var dead []int
		if s.ckptOn() {
			dead = s.cks[me].Dead()
		}
		if err := ctl.ReleaseParked(dead); err != nil {
			return err
		}
	}
	return nil
}

// desiredFn is the coordinator's membership policy at a boundary: an
// explicit Resize request wins, otherwise the environment's
// availability windows name the set; nil means no change.
func (s *Session) desiredFn(ctl *elastic.Controller, iter int) func() []int {
	return func() []int {
		want := ctl.TakeResize()
		if want == nil && s.cfg.Env != nil && s.cfg.Env.Elastic() {
			want = s.cfg.Env.ActiveSet(iter)
		}
		if want != nil && s.ckptOn() {
			// A dead rank can never be re-admitted: the environment
			// and Resize callers don't know who died, so the
			// coordinator filters them here. Only invoked on rank 0.
			want = s.cks[0].FilterDead(want)
		}
		return want
	}
}

// cutFn builds the incoming layout for a proposed active set, cutting
// by the configured capability weights restricted to its members.
func (s *Session) cutFn(rk *rankState) func(active []int) (*partition.Layout, error) {
	return func(active []int) (*partition.Layout, error) {
		return rk.rt.CutLayout(s.activeWeights(active))
	}
}

// commit applies an agreed membership transition on one rank: drain,
// migrate, rebind (or park), then re-arm the balancer — a transition
// is a forced remap, so the balancer restarts with a clean measurement
// history and an admitted rank gets a fresh balancer.
func (s *Session) commit(me int, rep *RunReport, prop *elastic.Proposal, oldSub *comm.Comm) error {
	rk := s.ranks[me]
	ev, sub, err := s.ctls[me].Transition(prop, oldSub, rk.rt)
	if err != nil {
		return err
	}
	s.subs[me] = sub
	if sub == nil {
		// Retired: a parked rank contributes zero capability — it is
		// simply absent from the active world the balancer sees.
		rk.bal = nil
	} else {
		rk.sol.SetIter(prop.Iter)
		if s.cfg.Balancer != nil {
			if rk.bal == nil {
				if rk.bal, err = s.newBalancer(rk.rt); err != nil {
					return err
				}
			} else {
				rk.bal.Reset()
			}
		}
	}
	if me == 0 {
		rep.Members = append(rep.Members, ev)
		if s.cfg.OnMembership != nil {
			s.cfg.OnMembership(ev)
		}
	}
	// Every committed transition re-checkpoints under the new
	// membership and layout — survivors here, admitted ranks in their
	// Park-side commit — so the buddy ring always matches the world
	// the next segment runs on. Retired ranks are out of the ring.
	if s.ckptOn() && sub != nil {
		if err := s.ckptTake(me, prop.Iter); err != nil {
			return err
		}
	}
	return nil
}

// Resize requests an explicit membership change to the given world
// ranks (ascending, containing rank 0 — the coordinator cannot
// retire), applied at the next check boundary of a running or future
// Run. Only valid on elastic sessions (Config.Elastic, or any
// availability outage). With availability windows also configured, the
// environment re-asserts its own active set at the following boundary.
// Safe to call concurrently with Run.
func (s *Session) Resize(active []int) error {
	if s.ranks == nil {
		return fmt.Errorf("session: closed")
	}
	if !s.elastic {
		return fmt.Errorf("session: Resize on a fixed-membership session (enable with Config.Elastic or availability outages)")
	}
	return s.ctls[0].RequestResize(active)
}

// Membership returns the current epoch number and active world ranks
// (rank 0's view). Fixed-membership sessions are permanently at epoch
// 0 with every rank active.
func (s *Session) Membership() (epoch int, active []int) {
	if !s.elastic {
		return 0, s.initialActive()
	}
	m := s.ctls[0].Membership()
	return m.Epoch, m.Active
}

// World returns the underlying world.
func (s *Session) World() *comm.World { return s.world }

// Graph returns the computational graph the session was built on.
func (s *Session) Graph() *graph.Graph { return s.g }

// Iter returns the number of completed iterations across all Runs
// (rank 0's count; ranks only diverge after a mid-run error).
func (s *Session) Iter() int {
	if s.ranks == nil {
		return 0
	}
	return s.ranks[0].sol.Iter()
}

// usable reports whether collective operations may still run.
func (s *Session) usable() error {
	if s.ranks == nil {
		return fmt.Errorf("session: closed")
	}
	if s.broken {
		return fmt.Errorf("session: unusable after a failed Run (ranks may have diverged); Close it")
	}
	return nil
}

// Runtime returns rank's runtime — the escape hatch for callers that
// need the low-level API alongside the driver. It returns nil on a
// closed session and panics on an out-of-range rank.
func (s *Session) Runtime(rank int) *core.Runtime {
	if s.ranks == nil {
		return nil
	}
	if rank < 0 || rank >= len(s.ranks) {
		panic(fmt.Sprintf("session: rank %d of %d", rank, len(s.ranks)))
	}
	return s.ranks[rank].rt
}

// Solver returns rank's solver, or nil on a closed session. It panics
// on an out-of-range rank.
func (s *Session) Solver(rank int) *solver.Solver {
	if s.ranks == nil {
		return nil
	}
	if rank < 0 || rank >= len(s.ranks) {
		panic(fmt.Sprintf("session: rank %d of %d", rank, len(s.ranks)))
	}
	return s.ranks[rank].sol
}

// Result gathers the solution vector on rank 0 in transformed-global
// order (the order the runtime partitions). Collective. On an elastic
// session the active sub-world gathers; parked ranks own nothing and
// contribute nothing.
func (s *Session) Result() ([]float64, error) {
	if err := s.usable(); err != nil {
		return nil, err
	}
	var out []float64
	err := s.world.SPMD(s.ctx, func(c *comm.Comm) error {
		if s.killed != nil && s.killed[c.Rank()] {
			// A killed rank's own controller still lists it as active;
			// it contributes nothing and must stay silent.
			return nil
		}
		if s.elastic && !s.ctls[c.Rank()].ActiveHere() {
			return nil
		}
		y, err := s.ranks[c.Rank()].sol.GatherResult(0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ResultByVertex is Result mapped back to the original vertex
// numbering: out[v] is vertex v's value.
func (s *Session) ResultByVertex() ([]float64, error) {
	vals, err := s.Result()
	if err != nil {
		return nil, err
	}
	return s.ranks[0].rt.Unpermute(vals)
}

// Close shuts the session's world down (a world adopted through
// Config.World stays open — its provider owns it). Pending operations
// fail; repeated Close calls are safe and return the first call's
// error.
func (s *Session) Close() error {
	s.ranks = nil
	if s.ownWorld && s.world != nil {
		return s.world.Close()
	}
	return nil
}
