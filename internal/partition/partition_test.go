package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSizesFromWeightsExact(t *testing.T) {
	sizes, err := SizesFromWeights(100, []float64{0.27, 0.18, 0.34, 0.07, 0.14})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{27, 18, 34, 7, 14}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestSizesFromWeightsRounding(t *testing.T) {
	sizes, err := SizesFromWeights(10, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, s := range sizes {
		sum += s
		if s < 3 || s > 4 {
			t.Errorf("unbalanced size %d", s)
		}
	}
	if sum != 10 {
		t.Errorf("sum = %d, want 10", sum)
	}
}

func TestSizesFromWeightsErrors(t *testing.T) {
	if _, err := SizesFromWeights(-1, []float64{1}); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := SizesFromWeights(10, nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := SizesFromWeights(10, []float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := SizesFromWeights(10, []float64{0, 0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestSizesSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int64(nRaw)
		p := int(pRaw%20) + 1
		weights := make([]float64, p)
		for i := range weights {
			weights[i] = rng.Float64() + 0.01
		}
		sizes, err := SizesFromWeights(n, weights)
		if err != nil {
			return false
		}
		var sum int64
		for _, s := range sizes {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntervalOps(t *testing.T) {
	iv := Interval{10, 20}
	if iv.Len() != 10 {
		t.Errorf("Len = %d", iv.Len())
	}
	if !iv.Contains(10) || iv.Contains(20) || iv.Contains(9) {
		t.Error("Contains wrong at boundaries")
	}
	got := iv.Intersect(Interval{15, 30})
	if got != (Interval{15, 20}) {
		t.Errorf("Intersect = %+v", got)
	}
	empty := iv.Intersect(Interval{30, 40})
	if empty.Len() != 0 {
		t.Errorf("disjoint Intersect Len = %d", empty.Len())
	}
	if (Interval{5, 3}).Len() != 0 {
		t.Error("inverted interval should have zero length")
	}
}

func TestLayoutBasics(t *testing.T) {
	l, err := NewBlock(100, []float64{0.27, 0.18, 0.34, 0.07, 0.14})
	if err != nil {
		t.Fatal(err)
	}
	if l.P() != 5 || l.N() != 100 {
		t.Fatalf("P=%d N=%d", l.P(), l.N())
	}
	wantIv := []Interval{{0, 27}, {27, 45}, {45, 79}, {79, 86}, {86, 100}}
	for proc, want := range wantIv {
		if got := l.Interval(proc); got != want {
			t.Errorf("Interval(%d) = %+v, want %+v", proc, got, want)
		}
	}
	if owner, _ := l.Owner(0); owner != 0 {
		t.Error("Owner(0) wrong")
	}
	if owner, _ := l.Owner(99); owner != 4 {
		t.Error("Owner(99) wrong")
	}
	if owner, _ := l.Owner(45); owner != 2 {
		t.Error("Owner(45) wrong")
	}
	if _, err := l.Owner(100); err == nil {
		t.Error("Owner(100) accepted")
	}
	if _, err := l.Owner(-1); err == nil {
		t.Error("Owner(-1) accepted")
	}
}

func TestLayoutArrangement(t *testing.T) {
	// Arrangement (P0, P3, P1, P2, P4) from paper Figure 5(b).
	l, err := New(100, []float64{0.10, 0.13, 0.29, 0.24, 0.24}, []int{0, 3, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Interval(0); got != (Interval{0, 10}) {
		t.Errorf("P0 = %+v", got)
	}
	if got := l.Interval(3); got != (Interval{10, 34}) {
		t.Errorf("P3 = %+v", got)
	}
	if got := l.Interval(1); got != (Interval{34, 47}) {
		t.Errorf("P1 = %+v", got)
	}
	if got := l.Interval(2); got != (Interval{47, 76}) {
		t.Errorf("P2 = %+v", got)
	}
	if got := l.Interval(4); got != (Interval{76, 100}) {
		t.Errorf("P4 = %+v", got)
	}
}

func TestLayoutErrors(t *testing.T) {
	if _, err := New(10, []float64{1, 1}, []int{0}); err == nil {
		t.Error("short arrangement accepted")
	}
	if _, err := New(10, []float64{1, 1}, []int{0, 2}); err == nil {
		t.Error("out-of-range arrangement accepted")
	}
	if _, err := New(10, []float64{1, 1}, []int{0, 0}); err == nil {
		t.Error("duplicate arrangement accepted")
	}
	if _, err := NewUniform(10, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewFromSizes([]int64{-1, 2}, []int{0, 1}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestLocateRoundTrip(t *testing.T) {
	l, err := New(57, []float64{3, 1, 2}, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for g := int64(0); g < l.N(); g++ {
		proc, local, err := l.Locate(g)
		if err != nil {
			t.Fatal(err)
		}
		back, err := l.Global(proc, local)
		if err != nil {
			t.Fatal(err)
		}
		if back != g {
			t.Fatalf("roundtrip %d -> (%d,%d) -> %d", g, proc, local, back)
		}
		l2, err := l.Local(proc, g)
		if err != nil || l2 != local {
			t.Fatalf("Local mismatch at %d", g)
		}
	}
	if _, err := l.Local(0, 0); err == nil {
		// Processor 0 is at position 1; global 0 belongs to processor 2.
		t.Error("Local accepted an unowned index")
	}
	if _, err := l.Global(0, 999); err == nil {
		t.Error("Global accepted out-of-range local index")
	}
}

func TestZeroWeightProcessor(t *testing.T) {
	l, err := NewBlock(10, []float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Size(1) != 0 {
		t.Errorf("zero-weight processor owns %d", l.Size(1))
	}
	// All elements still findable and owned by procs 0/2.
	for g := int64(0); g < 10; g++ {
		owner, err := l.Owner(g)
		if err != nil {
			t.Fatal(err)
		}
		if owner == 1 {
			t.Fatalf("element %d assigned to empty processor", g)
		}
	}
}

func TestOverlapIdentity(t *testing.T) {
	l, err := NewUniform(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := Overlap(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if ov != 100 {
		t.Errorf("self overlap = %d, want 100", ov)
	}
	moved, _ := Moved(l, l)
	if moved != 0 {
		t.Errorf("self moved = %d", moved)
	}
	msgs, _ := Messages(l, l)
	if msgs != 0 {
		t.Errorf("self messages = %d", msgs)
	}
}

// TestFigure5 reproduces the paper's Figure 5 example: 100 elements,
// capabilities 0.27/0.18/0.34/0.07/0.14 adapting to
// 0.10/0.13/0.29/0.24/0.24. Keeping the identity arrangement preserves
// far less data than the arrangement (P0,P3,P1,P2,P4). The paper
// reports 29 vs 65 overlapped elements and 5 vs 3 messages from its
// drawn intervals; exact largest-remainder arithmetic gives 31 vs 64
// and 6 vs 5 — same ranking, same ~2x overlap improvement.
func TestFigure5(t *testing.T) {
	old, err := NewBlock(100, []float64{0.27, 0.18, 0.34, 0.07, 0.14})
	if err != nil {
		t.Fatal(err)
	}
	newW := []float64{0.10, 0.13, 0.29, 0.24, 0.24}
	same, err := NewBlock(100, newW)
	if err != nil {
		t.Fatal(err)
	}
	better, err := New(100, newW, []int{0, 3, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}

	ovSame, _ := Overlap(old, same)
	ovBetter, _ := Overlap(old, better)
	if ovSame != 31 {
		t.Errorf("identity overlap = %d, want 31", ovSame)
	}
	if ovBetter != 64 {
		t.Errorf("rearranged overlap = %d, want 64", ovBetter)
	}
	if ovBetter <= ovSame {
		t.Error("rearrangement did not improve overlap")
	}

	msgSame, _ := Messages(old, same)
	msgBetter, _ := Messages(old, better)
	if msgSame != 6 {
		t.Errorf("identity messages = %d, want 6", msgSame)
	}
	if msgBetter != 5 {
		t.Errorf("rearranged messages = %d, want 5", msgBetter)
	}
	if msgBetter >= msgSame {
		t.Error("rearrangement did not reduce messages")
	}
}

func TestOverlapSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		p := rng.Intn(6) + 2
		n := int64(rng.Intn(500) + p)
		wa := randWeights(rng, p)
		wb := randWeights(rng, p)
		a, err := NewBlock(n, wa)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewBlock(n, wb)
		if err != nil {
			t.Fatal(err)
		}
		ab, _ := Overlap(a, b)
		ba, _ := Overlap(b, a)
		if ab != ba {
			t.Fatalf("overlap not symmetric: %d vs %d", ab, ba)
		}
		if ab < 0 || ab > n {
			t.Fatalf("overlap %d out of range", ab)
		}
	}
}

func randWeights(rng *rand.Rand, p int) []float64 {
	w := make([]float64, p)
	for i := range w {
		w[i] = rng.Float64() + 0.05
	}
	return w
}

func TestOverlapIncompatible(t *testing.T) {
	a, _ := NewUniform(10, 2)
	b, _ := NewUniform(12, 2)
	c, _ := NewUniform(10, 3)
	if _, err := Overlap(a, b); err == nil {
		t.Error("different n accepted")
	}
	if _, err := Overlap(a, c); err == nil {
		t.Error("different p accepted")
	}
	if _, err := Messages(a, b); err == nil {
		t.Error("Messages with different n accepted")
	}
}

func TestEqual(t *testing.T) {
	a, _ := NewBlock(100, []float64{1, 2, 3})
	b, _ := NewBlock(100, []float64{1, 2, 3})
	c, _ := NewBlock(100, []float64{3, 2, 1})
	d, _ := New(100, []float64{1, 2, 3}, []int{2, 1, 0})
	if !a.Equal(b) {
		t.Error("identical layouts not equal")
	}
	if a.Equal(c) {
		t.Error("different sizes equal")
	}
	if a.Equal(d) {
		t.Error("different arrangements equal")
	}
}

func TestStartsCopy(t *testing.T) {
	l, _ := NewUniform(10, 2)
	s := l.Starts()
	s[0] = 999
	if l.Starts()[0] == 999 {
		t.Error("Starts leaked internal storage")
	}
	arr := l.Arrangement()
	arr[0] = 999
	if l.Arrangement()[0] == 999 {
		t.Error("Arrangement leaked internal storage")
	}
}

func TestOwnerCoversAllProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int64(nRaw%1000) + 1
		p := int(pRaw%8) + 1
		w := randWeights(rng, p)
		arr := rng.Perm(p)
		l, err := New(n, w, arr)
		if err != nil {
			return false
		}
		counts := make([]int64, p)
		for g := int64(0); g < n; g++ {
			proc, local, err := l.Locate(g)
			if err != nil {
				return false
			}
			if local != counts[proc] {
				return false // local indices must be dense and in order
			}
			counts[proc]++
		}
		for proc := 0; proc < p; proc++ {
			if counts[proc] != l.Size(proc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
