package partition

import "testing"

// dumbbell builds the CSR adjacency of two cliques of sizes a and b
// joined by a single bridge edge between vertex a-1 and vertex a — a
// list whose thinnest point is unmistakable.
func dumbbell(a, b int) (xadj, adj []int32) {
	n := a + b
	neighbors := func(v int) []int32 {
		var ns []int32
		lo, hi := 0, a
		if v >= a {
			lo, hi = a, n
		}
		for u := lo; u < hi; u++ {
			if u != v {
				ns = append(ns, int32(u))
			}
		}
		if v == a-1 {
			ns = append(ns, int32(a))
		}
		if v == a {
			ns = append(ns, int32(a-1))
		}
		return ns
	}
	xadj = make([]int32, n+1)
	for v := 0; v < n; v++ {
		ns := neighbors(v)
		xadj[v+1] = xadj[v] + int32(len(ns))
		adj = append(adj, ns...)
	}
	return xadj, adj
}

func TestHierSpecValidation(t *testing.T) {
	w := []float64{1, 1, 1, 1}
	if _, err := NewHierarchical(8, w, HierSpec{GroupOf: []int{0, 0, 1}}); err == nil {
		t.Error("group count mismatch should fail")
	}
	if _, err := NewHierarchical(8, w, HierSpec{GroupOf: []int{0, 0, 2, 2}}); err == nil {
		t.Error("gap in group ids should fail")
	}
	if _, err := NewHierarchical(8, w, HierSpec{GroupOf: []int{0, 0, 1, 1}, Xadj: make([]int32, 5)}); err == nil {
		t.Error("adjacency size mismatch should fail")
	}
}

// TestHierarchicalMatchesFlatOnOneGroup: with a single group the
// hierarchical cut IS the flat cut — identical layout, bit for bit.
func TestHierarchicalMatchesFlatOnOneGroup(t *testing.T) {
	weights := []float64{1, 2, 3, 2}
	flat, err := NewBlock(100, weights)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewHierarchical(100, weights, HierSpec{GroupOf: []int{0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Equal(hier) {
		t.Errorf("one-group hierarchical layout differs from flat:\nflat %v %v\nhier %v %v",
			flat.Starts(), flat.Arrangement(), hier.Starts(), hier.Arrangement())
	}
}

// TestHierarchicalGroupContiguous: each group's members own one
// contiguous super-interval, groups in id order — the property that
// puts all intra-group boundaries on fast links.
func TestHierarchicalGroupContiguous(t *testing.T) {
	groupOf := []int{0, 1, 0, 2, 1, 2}
	weights := []float64{1, 1, 2, 1, 3, 1}
	l, err := NewHierarchical(97, weights, HierSpec{GroupOf: groupOf})
	if err != nil {
		t.Fatal(err)
	}
	arr := l.Arrangement()
	want := []int{0, 2, 1, 4, 3, 5} // groups in id order, members ascending
	for i := range want {
		if arr[i] != want[i] {
			t.Fatalf("arrangement = %v, want %v", arr, want)
		}
	}
	var total int64
	for proc := range weights {
		total += l.Size(proc)
	}
	if total != 97 {
		t.Errorf("sizes sum to %d, want 97", total)
	}
}

// TestHierarchicalBoundaryRefinement: on a dumbbell list the group
// boundary must slide off the balanced midpoint to the bridge, cutting
// one edge instead of many clique edges.
func TestHierarchicalBoundaryRefinement(t *testing.T) {
	const a, b = 55, 45 // balanced cut at 50 severs the size-55 clique
	xadj, adj := dumbbell(a, b)
	weights := []float64{1, 1, 1, 1}
	spec := HierSpec{GroupOf: []int{0, 0, 1, 1}, Xadj: xadj, Adj: adj, Window: 10}
	l, err := NewHierarchical(int64(a+b), weights, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The group boundary is the end of processor 1's interval (last
	// member of group 0).
	if cut := l.Interval(1).Hi; cut != a {
		t.Errorf("refined group boundary at %d, want %d (the bridge)", cut, a)
	}
	// Unrefined for contrast: without the graph the boundary stays at
	// the balanced midpoint.
	flat, err := NewHierarchical(int64(a+b), weights, HierSpec{GroupOf: []int{0, 0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if cut := flat.Interval(1).Hi; cut != 50 {
		t.Errorf("unrefined group boundary at %d, want 50", cut)
	}
	if got := crossingsAt(xadj, adj, a); got != 1 {
		t.Errorf("crossings at bridge = %d, want 1", got)
	}
	if got := crossingsAt(xadj, adj, 50); got <= 1 {
		t.Errorf("crossings at midpoint = %d, want many", got)
	}
}

// TestHierarchicalRefinementWindow: the boundary may not slide past
// the window — load balance bounds the locality gain.
func TestHierarchicalRefinementWindow(t *testing.T) {
	const a, b = 55, 45
	xadj, adj := dumbbell(a, b)
	weights := []float64{1, 1, 1, 1}
	spec := HierSpec{GroupOf: []int{0, 0, 1, 1}, Xadj: xadj, Adj: adj, Window: 2}
	l, err := NewHierarchical(int64(a+b), weights, spec)
	if err != nil {
		t.Fatal(err)
	}
	cut := l.Interval(1).Hi
	if cut < 48 || cut > 52 {
		t.Errorf("boundary %d escaped the ±2 window around 50", cut)
	}
}

// TestHierarchicalWeighted: item weights steer both phases — the
// group spans and the member cuts balance weight, not counts.
func TestHierarchicalWeighted(t *testing.T) {
	items := make([]float64, 100)
	for i := range items {
		if i < 25 {
			items[i] = 3 // heavy head
		} else {
			items[i] = 1
		}
	}
	weights := []float64{1, 1, 1, 1}
	l, err := NewHierarchicalWeighted(items, weights, HierSpec{GroupOf: []int{0, 0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Total weight 150, half per group: the heavy head [0, 25) alone
	// weighs 75, so the group boundary lands at 25 — a count-balanced
	// cut would put it at 50.
	boundary := l.Interval(1).Hi
	if boundary != 25 {
		t.Errorf("weighted group boundary at %d, want 25 (equal halves of weight)", boundary)
	}
	var w0 float64
	for g := int64(0); g < boundary; g++ {
		w0 += items[g]
	}
	if w0 != 75 {
		t.Errorf("group 0 weight = %g, want 75", w0)
	}
}
