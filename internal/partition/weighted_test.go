package partition

import (
	"math"
	"math/rand"
	"testing"
)

func uniformItems(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestWeightedSizesUniformMatchesCounts(t *testing.T) {
	items := uniformItems(100)
	procW := []float64{0.27, 0.18, 0.34, 0.07, 0.14}
	got, err := WeightedSizes(items, procW)
	if err != nil {
		t.Fatal(err)
	}
	// With unit item weights the split must track the count-based
	// apportionment within one element per boundary.
	want, err := SizesFromWeights(100, procW)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i := range got {
		if d := got[i] - want[i]; d < -1 || d > 1 {
			t.Errorf("sizes[%d] = %d, count-based %d", i, got[i], want[i])
		}
		sum += got[i]
	}
	if sum != 100 {
		t.Errorf("sizes sum to %d", sum)
	}
}

func TestWeightedSizesSkewedItems(t *testing.T) {
	// First 10 items carry 10x weight: an equal 2-way split must give
	// the first processor far fewer items.
	items := uniformItems(100)
	for i := 0; i < 10; i++ {
		items[i] = 10
	}
	sizes, err := WeightedSizes(items, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Total weight 190; half is 95; the first 10 items carry 100 >= 95,
	// so the first block holds at most 10 items.
	if sizes[0] > 10 {
		t.Errorf("sizes[0] = %d, want <= 10 under 10x front-loaded weights", sizes[0])
	}
	if sizes[0]+sizes[1] != 100 {
		t.Errorf("sizes sum to %d", sizes[0]+sizes[1])
	}
}

func TestWeightedSizesBalanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(500) + 10
		p := rng.Intn(6) + 1
		items := make([]float64, n)
		maxItem := 0.0
		for i := range items {
			items[i] = rng.Float64()*2 + 0.01
			if items[i] > maxItem {
				maxItem = items[i]
			}
		}
		procW := make([]float64, p)
		for i := range procW {
			procW[i] = rng.Float64() + 0.1
		}
		sizes, err := WeightedSizes(items, procW)
		if err != nil {
			t.Fatal(err)
		}
		var totalProc float64
		for _, w := range procW {
			totalProc += w
		}
		var totalItem float64
		for _, w := range items {
			totalItem += w
		}
		// Each block's weight must be within one item of its target
		// (the cut granularity bound).
		idx := 0
		for proc := 0; proc < p; proc++ {
			blockW := 0.0
			for k := int64(0); k < sizes[proc]; k++ {
				blockW += items[idx]
				idx++
			}
			target := totalItem * procW[proc] / totalProc
			if math.Abs(blockW-target) > maxItem+1e-9 {
				t.Fatalf("trial %d: block %d weight %.3f, target %.3f, max item %.3f",
					trial, proc, blockW, target, maxItem)
			}
		}
		if idx != n {
			t.Fatalf("blocks cover %d of %d items", idx, n)
		}
	}
}

func TestWeightedSizesErrors(t *testing.T) {
	if _, err := WeightedSizes([]float64{1}, nil); err == nil {
		t.Error("no processor weights accepted")
	}
	if _, err := WeightedSizes([]float64{1}, []float64{-1, 2}); err == nil {
		t.Error("negative processor weight accepted")
	}
	if _, err := WeightedSizes([]float64{1}, []float64{0, 0}); err == nil {
		t.Error("zero processor weights accepted")
	}
	if _, err := WeightedSizes([]float64{-1, 1}, []float64{1}); err == nil {
		t.Error("negative item weight accepted")
	}
	if _, err := WeightedSizes([]float64{0, 0}, []float64{1}); err == nil {
		t.Error("zero item weights accepted")
	}
}

func TestNewWeightedLayout(t *testing.T) {
	items := uniformItems(90)
	// Heavier tail.
	for i := 60; i < 90; i++ {
		items[i] = 3
	}
	procW := []float64{1, 1, 1}
	l, err := NewWeighted(items, procW, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.N() != 90 {
		t.Fatalf("N = %d", l.N())
	}
	// Block weights within one max item (3) of the target 60.
	for proc := 0; proc < 3; proc++ {
		w, err := l.BlockWeight(items, proc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w-50) > 3 {
			t.Errorf("block %d weight %.1f, want ~50", proc, w)
		}
	}
	// The heavy tail means the last processor owns fewer items.
	if !(l.Size(2) < l.Size(0)) {
		t.Errorf("sizes %d/%d/%d: heavy tail should shrink the last block",
			l.Size(0), l.Size(1), l.Size(2))
	}
}

func TestNewWeightedArrangement(t *testing.T) {
	items := uniformItems(100)
	for i := 0; i < 50; i++ {
		items[i] = 2
	}
	// Processor 1 (weight 3) stationed first: its block covers the
	// heavy prefix, so it gets fewer items than a count split would
	// give.
	l, err := NewWeighted(items, []float64{1, 3}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	iv1 := l.Interval(1)
	if iv1.Lo != 0 {
		t.Errorf("processor 1 should hold the first block, got %+v", iv1)
	}
	w1, _ := l.BlockWeight(items, 1)
	w0, _ := l.BlockWeight(items, 0)
	if math.Abs(w1/(w1+w0)-0.75) > 0.03 {
		t.Errorf("weight split %.3f, want ~0.75", w1/(w1+w0))
	}
	if _, err := NewWeighted(items, []float64{1, 1}, []int{0}); err == nil {
		t.Error("short arrangement accepted")
	}
	if _, err := NewWeighted(items, []float64{1, 1}, []int{0, 5}); err == nil {
		t.Error("bad arrangement accepted")
	}
}

func TestBlockWeightErrors(t *testing.T) {
	l, _ := NewUniform(10, 2)
	if _, err := l.BlockWeight([]float64{1}, 0); err == nil {
		t.Error("short item weights accepted")
	}
}
