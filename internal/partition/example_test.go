package partition_test

import (
	"fmt"

	"stance/internal/partition"
)

// The paper's Figure 5: 100 elements on five workstations whose
// capabilities adapt. Keeping the arrangement preserves little data;
// the (P0,P3,P1,P2,P4) arrangement preserves twice as much.
func ExampleOverlap() {
	old, _ := partition.NewBlock(100, []float64{0.27, 0.18, 0.34, 0.07, 0.14})
	keep, _ := partition.NewBlock(100, []float64{0.10, 0.13, 0.29, 0.24, 0.24})
	better, _ := partition.New(100, []float64{0.10, 0.13, 0.29, 0.24, 0.24}, []int{0, 3, 1, 2, 4})

	ovKeep, _ := partition.Overlap(old, keep)
	ovBetter, _ := partition.Overlap(old, better)
	fmt.Println("same arrangement:", ovKeep, "elements stay")
	fmt.Println("rearranged:      ", ovBetter, "elements stay")
	// Output:
	// same arrangement: 31 elements stay
	// rearranged:       64 elements stay
}

// Locate is the paper's interval-table dereference: a global index
// resolves to (processor, local index) from p+1 boundaries alone.
func ExampleLayout_Locate() {
	l, _ := partition.NewBlock(200, []float64{0.5, 0.3, 0.2})
	for _, g := range []int64{0, 99, 150, 199} {
		proc, local, _ := l.Locate(g)
		fmt.Printf("global %3d -> processor %d, local %d\n", g, proc, local)
	}
	// Output:
	// global   0 -> processor 0, local 0
	// global  99 -> processor 0, local 99
	// global 150 -> processor 1, local 50
	// global 199 -> processor 2, local 39
}

// WeightedSizes balances total vertex weight rather than counts: a
// heavy prefix shrinks the first block.
func ExampleWeightedSizes() {
	items := make([]float64, 10)
	for i := range items {
		items[i] = 1
	}
	items[0], items[1] = 5, 5 // two heavyweight elements up front
	sizes, _ := partition.WeightedSizes(items, []float64{1, 1})
	fmt.Println("block sizes:", sizes)
	// Output:
	// block sizes: [2 8]
}
