package partition

import (
	"fmt"
	"sort"
)

// The paper partitions "nodes with computational weight proportional
// to the computational capabilities of that processor". When vertices
// cost unequal work (e.g. work proportional to degree), the cut points
// must balance total weight, not counts. WeightedSizes computes those
// cut points on the one-dimensional list.

// WeightedSizes splits len(itemWeights) items, in list order, into
// contiguous blocks whose total item weight is proportional to
// procWeights. Item weights must be non-negative with a positive sum;
// blocks can balance weight only to the granularity of single items.
func WeightedSizes(itemWeights, procWeights []float64) ([]int64, error) {
	n := len(itemWeights)
	p := len(procWeights)
	if p == 0 {
		return nil, fmt.Errorf("partition: no processor weights")
	}
	var totalProc float64
	for i, w := range procWeights {
		if w < 0 {
			return nil, fmt.Errorf("partition: negative processor weight %g at %d", w, i)
		}
		totalProc += w
	}
	if totalProc <= 0 {
		return nil, fmt.Errorf("partition: processor weights sum to %g, want > 0", totalProc)
	}
	prefix := make([]float64, n+1)
	for i, w := range itemWeights {
		if w < 0 {
			return nil, fmt.Errorf("partition: negative item weight %g at %d", w, i)
		}
		prefix[i+1] = prefix[i] + w
	}
	totalItem := prefix[n]
	if totalItem <= 0 && n > 0 {
		return nil, fmt.Errorf("partition: item weights sum to %g, want > 0", totalItem)
	}
	sizes := make([]int64, p)
	cumProc := 0.0
	prevCut := 0
	for proc := 0; proc < p; proc++ {
		cumProc += procWeights[proc]
		target := totalItem * cumProc / totalProc
		// The cut point: the smallest index whose prefix weight
		// reaches the cumulative target (the final block always ends
		// at n).
		cut := n
		if proc < p-1 {
			cut = sort.Search(n+1, func(i int) bool { return prefix[i] >= target })
			if cut < prevCut {
				cut = prevCut
			}
		}
		sizes[proc] = int64(cut - prevCut)
		prevCut = cut
	}
	return sizes, nil
}

// NewWeighted builds a layout whose blocks balance the item weights
// in proportion to the processor weights, under the given arrangement.
// Block sizes are assigned by the order processors appear in the
// arrangement (position k's block covers the k-th weighted span).
func NewWeighted(itemWeights, procWeights []float64, arrangement []int) (*Layout, error) {
	if len(arrangement) != len(procWeights) {
		return nil, fmt.Errorf("partition: arrangement length %d, want %d", len(arrangement), len(procWeights))
	}
	// The k-th positional span must reflect the weight of the
	// processor stationed there.
	posWeights := make([]float64, len(procWeights))
	for pos, proc := range arrangement {
		if proc < 0 || proc >= len(procWeights) {
			return nil, fmt.Errorf("partition: arrangement[%d] = %d out of range", pos, proc)
		}
		posWeights[pos] = procWeights[proc]
	}
	posSizes, err := WeightedSizes(itemWeights, posWeights)
	if err != nil {
		return nil, err
	}
	// fromSizes expects sizes indexed by processor id.
	sizes := make([]int64, len(procWeights))
	for pos, proc := range arrangement {
		sizes[proc] = posSizes[pos]
	}
	return fromSizes(int64(len(itemWeights)), sizes, arrangement)
}

// BlockWeight returns the total item weight inside proc's interval.
func (l *Layout) BlockWeight(itemWeights []float64, proc int) (float64, error) {
	if int64(len(itemWeights)) != l.n {
		return 0, fmt.Errorf("partition: %d item weights for %d elements", len(itemWeights), l.n)
	}
	iv := l.Interval(proc)
	sum := 0.0
	for g := iv.Lo; g < iv.Hi; g++ {
		sum += itemWeights[g]
	}
	return sum, nil
}
