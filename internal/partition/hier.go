package partition

import "fmt"

// Hierarchical partitioning for the paper's nonuniform environment: a
// cluster of node groups with fast links inside each group and a slow
// shared link between groups. A flat weighted cut balances load but is
// blind to WHERE its block boundaries fall — on a nonuniform network a
// boundary between two groups is priced on the slow link, so the cut
// across groups should fall where the (transformed) graph is thinnest,
// and only the cuts inside a group may land anywhere the load balance
// wants them. NewHierarchical cuts in two phases: first across groups —
// apportioning the list by total group capability, then sliding each
// group boundary inside a window to minimize the edges crossing it —
// and then within each group, by member capability, exactly like the
// flat partitioner.

// HierSpec describes the two-level environment to a hierarchical cut.
type HierSpec struct {
	// GroupOf assigns each processor to a node group
	// (comm.Topology.GroupOfSlice). Group ids must form a contiguous
	// range 0..G-1 with no group empty.
	GroupOf []int
	// Xadj/Adj is the optional CSR adjacency of the data graph in
	// transformed (list) order. When present, each inter-group boundary
	// slides inside the refinement window to the cut crossed by the
	// fewest edges — the edges that would become ghost traffic on the
	// slow link. When nil, boundaries stay where the capability
	// apportionment puts them.
	Xadj, Adj []int32
	// Window bounds how far a group boundary may slide from its
	// balanced position, in list elements (load given up for locality).
	// Zero means n/(8·G), at least 1.
	Window int64
}

// groups validates the spec against p processors and returns the
// member lists, group id -> member processors ascending.
func (s HierSpec) groups(p int) ([][]int, error) {
	if len(s.GroupOf) != p {
		return nil, fmt.Errorf("partition: %d group assignments for %d processors", len(s.GroupOf), p)
	}
	ng := 0
	for proc, g := range s.GroupOf {
		if g < 0 || g >= p {
			return nil, fmt.Errorf("partition: processor %d assigned to group %d of at most %d", proc, g, p)
		}
		if g+1 > ng {
			ng = g + 1
		}
	}
	members := make([][]int, ng)
	for proc, g := range s.GroupOf {
		members[g] = append(members[g], proc)
	}
	for g, m := range members {
		if len(m) == 0 {
			return nil, fmt.Errorf("partition: group %d is empty (group ids must form a contiguous range)", g)
		}
	}
	return members, nil
}

// NewHierarchical builds the two-level layout for n unweighted
// elements: groups in id order along the list, each group's span
// proportional to its total capability (boundary-refined against the
// graph when the spec carries one), members in rank order within their
// group's span, proportional to their own capability.
func NewHierarchical(n int64, procWeights []float64, spec HierSpec) (*Layout, error) {
	return newHierarchical(n, nil, procWeights, spec)
}

// NewHierarchicalWeighted is NewHierarchical for weighted items: every
// apportionment balances total item weight instead of counts.
func NewHierarchicalWeighted(itemWeights, procWeights []float64, spec HierSpec) (*Layout, error) {
	return newHierarchical(int64(len(itemWeights)), itemWeights, procWeights, spec)
}

func newHierarchical(n int64, itemWeights, procWeights []float64, spec HierSpec) (*Layout, error) {
	members, err := spec.groups(len(procWeights))
	if err != nil {
		return nil, err
	}
	ng := len(members)
	// Phase 1: apportion the list across groups by total capability.
	groupWeights := make([]float64, ng)
	for g, m := range members {
		for _, proc := range m {
			groupWeights[g] += procWeights[proc]
		}
	}
	var groupSizes []int64
	if itemWeights != nil {
		groupSizes, err = WeightedSizes(itemWeights, groupWeights)
	} else {
		groupSizes, err = SizesFromWeights(n, groupWeights)
	}
	if err != nil {
		return nil, err
	}
	// The group boundaries as cumulative cut points, refined against the
	// graph where one is given: the elements a boundary separates are
	// the ghost traffic of the slow inter-group link, so the boundary
	// belongs where the list is thinnest, not exactly where the balance
	// puts it.
	cuts := make([]int64, ng+1)
	for g := 0; g < ng; g++ {
		cuts[g+1] = cuts[g] + groupSizes[g]
	}
	if spec.Xadj != nil && ng > 1 && n > 0 {
		if int64(len(spec.Xadj)) != n+1 {
			return nil, fmt.Errorf("partition: adjacency covers %d vertices, list has %d", len(spec.Xadj)-1, n)
		}
		window := spec.Window
		if window <= 0 {
			window = n / int64(8*ng)
		}
		if window < 1 {
			window = 1
		}
		orig := append([]int64(nil), cuts...)
		for b := 1; b < ng; b++ {
			lo := orig[b] - window
			if lo < cuts[b-1] { // stay monotone against the refined left neighbor
				lo = cuts[b-1]
			}
			hi := orig[b] + window
			if hi > orig[b+1] { // and inside the next balanced span
				hi = orig[b+1]
			}
			cuts[b] = bestCut(spec.Xadj, spec.Adj, lo, hi, orig[b])
		}
	}
	// Phase 2: cut each group's span across its members by capability —
	// the flat partitioner, once per group. Positions along the list are
	// groups in id order, members in rank order; sizes index processors.
	arrangement := make([]int, 0, len(procWeights))
	sizes := make([]int64, len(procWeights))
	for g, m := range members {
		arrangement = append(arrangement, m...)
		span := cuts[g+1] - cuts[g]
		memberWeights := make([]float64, len(m))
		for i, proc := range m {
			memberWeights[i] = procWeights[proc]
		}
		var memberSizes []int64
		if itemWeights != nil {
			memberSizes, err = WeightedSizes(itemWeights[cuts[g]:cuts[g+1]], memberWeights)
			if err != nil {
				// A span of all-zero item weights still needs owners:
				// split it by count instead (negative weights keep
				// failing here too).
				memberSizes, err = SizesFromWeights(span, memberWeights)
				if err != nil {
					return nil, err
				}
			}
		} else {
			memberSizes, err = SizesFromWeights(span, memberWeights)
			if err != nil {
				return nil, err
			}
		}
		for i, proc := range m {
			sizes[proc] = memberSizes[i]
		}
	}
	return fromSizes(n, sizes, arrangement)
}

// bestCut slides a boundary over [lo, hi] and returns the cut crossed
// by the fewest edges, breaking ties toward the balanced position c0
// and then toward the smaller cut, so the choice is deterministic.
// Crossings update incrementally: moving the cut from c to c+1 shifts
// vertex c from the right side to the left, so edges from c to lower
// indices stop crossing and edges to higher indices start.
func bestCut(xadj, adj []int32, lo, hi, c0 int64) int64 {
	cross := crossingsAt(xadj, adj, lo)
	best, bestCross := lo, cross
	for c := lo; c < hi; c++ {
		for _, v := range adj[xadj[c]:xadj[c+1]] {
			if int64(v) < c {
				cross--
			} else if int64(v) > c {
				cross++
			}
		}
		if better(c+1, cross, best, bestCross, c0) {
			best, bestCross = c+1, cross
		}
	}
	return best
}

func better(c, cross, best, bestCross, c0 int64) bool {
	if cross != bestCross {
		return cross < bestCross
	}
	dc, db := c-c0, best-c0
	if dc < 0 {
		dc = -dc
	}
	if db < 0 {
		db = -db
	}
	if dc != db {
		return dc < db
	}
	return c < best
}

// crossingsAt counts the edges (u, v) with u < cut <= v — the edges a
// boundary at cut turns into inter-group ghost traffic.
func crossingsAt(xadj, adj []int32, cut int64) int64 {
	var cross int64
	for u := int64(0); u < cut; u++ {
		for _, v := range adj[xadj[u]:xadj[u+1]] {
			if int64(v) >= cut {
				cross++
			}
		}
	}
	return cross
}
