// Package partition implements the one-dimensional data-distribution
// model of paper Sections 3.1 and 3.4. After the locality transform
// (package order), the data is a list of n elements; a *Layout* assigns
// each processor one contiguous interval, with interval sizes
// proportional to processor capability and an *arrangement* choosing
// which processor holds which position along the list. Re-partitioning
// quality is measured by the overlap between old and new layouts (data
// that does not move) and by the number of messages a redistribution
// generates — the two quantities MinimizeCostRedistribution trades off.
package partition

import (
	"fmt"
	"sort"
)

// Interval is the half-open range [Lo, Hi) of global list indices.
type Interval struct {
	Lo, Hi int64
}

// Len returns the number of elements in the interval.
func (iv Interval) Len() int64 {
	if iv.Hi < iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether g lies in the interval.
func (iv Interval) Contains(g int64) bool { return g >= iv.Lo && g < iv.Hi }

// Intersect returns the intersection of two intervals (possibly
// empty, with Len() == 0).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Interval{lo, hi}
}

// SizesFromWeights apportions n elements to p processors in proportion
// to weights, using the largest-remainder method so that the sizes sum
// exactly to n. Weights must be non-negative with a positive sum.
func SizesFromWeights(n int64, weights []float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("partition: negative element count %d", n)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("partition: no weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("partition: negative weight %g at %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("partition: weights sum to %g, want > 0", total)
	}
	sizes := make([]int64, len(weights))
	type rem struct {
		frac float64
		i    int
	}
	rems := make([]rem, len(weights))
	var assigned int64
	for i, w := range weights {
		exact := float64(n) * w / total
		sizes[i] = int64(exact)
		rems[i] = rem{exact - float64(sizes[i]), i}
		assigned += sizes[i]
	}
	sort.SliceStable(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].i < rems[b].i
	})
	for k := int64(0); k < n-assigned; k++ {
		sizes[rems[k%int64(len(rems))].i]++
	}
	return sizes, nil
}

// Layout is a complete distribution: n elements cut into p contiguous
// blocks; block k (left to right) has size Sizes[k] and is owned by
// processor Arrangement[k]. The paper's default is the identity
// arrangement (processor i holds block i); MinimizeCostRedistribution
// searches over arrangements.
type Layout struct {
	n           int64
	arrangement []int   // position -> processor
	position    []int   // processor -> position
	starts      []int64 // position -> first global index; len p+1
}

// New builds a layout for n elements with per-processor weights and an
// explicit arrangement (a permutation of 0..p-1 giving the processor
// at each position).
func New(n int64, weights []float64, arrangement []int) (*Layout, error) {
	sizes, err := SizesFromWeights(n, weights)
	if err != nil {
		return nil, err
	}
	return fromSizes(n, sizes, arrangement)
}

// NewBlock builds the default layout: identity arrangement, sizes from
// weights.
func NewBlock(n int64, weights []float64) (*Layout, error) {
	arr := make([]int, len(weights))
	for i := range arr {
		arr[i] = i
	}
	return New(n, weights, arr)
}

// NewUniform builds the layout for p equally capable processors.
func NewUniform(n int64, p int) (*Layout, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	w := make([]float64, p)
	for i := range w {
		w[i] = 1
	}
	return NewBlock(n, w)
}

func fromSizes(n int64, sizes []int64, arrangement []int) (*Layout, error) {
	p := len(sizes)
	if len(arrangement) != p {
		return nil, fmt.Errorf("partition: arrangement length %d, want %d", len(arrangement), p)
	}
	position := make([]int, p)
	for i := range position {
		position[i] = -1
	}
	for pos, proc := range arrangement {
		if proc < 0 || proc >= p {
			return nil, fmt.Errorf("partition: arrangement[%d] = %d out of range", pos, proc)
		}
		if position[proc] != -1 {
			return nil, fmt.Errorf("partition: processor %d appears twice in arrangement", proc)
		}
		position[proc] = pos
	}
	l := &Layout{
		n:           n,
		arrangement: append([]int(nil), arrangement...),
		position:    position,
		starts:      make([]int64, p+1),
	}
	for pos := 0; pos < p; pos++ {
		// Block at position pos has the size belonging to the
		// processor that occupies it.
		l.starts[pos+1] = l.starts[pos] + sizes[arrangement[pos]]
	}
	if l.starts[p] != n {
		return nil, fmt.Errorf("partition: sizes sum to %d, want %d", l.starts[p], n)
	}
	return l, nil
}

// NewFromStarts rebuilds a layout from its per-position start offsets
// (length p+1, as returned by Starts) and arrangement — the inverse of
// (Starts, Arrangement), used to ship a layout across the wire during
// membership transitions so ranks that were parked when it was cut can
// reconstruct it.
func NewFromStarts(starts []int64, arrangement []int) (*Layout, error) {
	if len(starts) != len(arrangement)+1 {
		return nil, fmt.Errorf("partition: %d starts for %d arrangement entries", len(starts), len(arrangement))
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("partition: starts begin at %d, want 0", starts[0])
	}
	sizes := make([]int64, len(arrangement))
	for pos, proc := range arrangement {
		if proc < 0 || proc >= len(arrangement) {
			return nil, fmt.Errorf("partition: arrangement[%d] = %d out of range", pos, proc)
		}
		if starts[pos+1] < starts[pos] {
			return nil, fmt.Errorf("partition: starts decrease at position %d", pos)
		}
		sizes[proc] = starts[pos+1] - starts[pos]
	}
	return fromSizes(starts[len(starts)-1], sizes, arrangement)
}

// NewFromSizes builds a layout directly from per-processor block sizes
// (indexed by processor id, not position) and an arrangement.
func NewFromSizes(sizes []int64, arrangement []int) (*Layout, error) {
	var n int64
	for i, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("partition: negative size %d at %d", s, i)
		}
		n += s
	}
	return fromSizes(n, sizes, arrangement)
}

// P returns the number of processors.
func (l *Layout) P() int { return len(l.arrangement) }

// N returns the number of elements.
func (l *Layout) N() int64 { return l.n }

// Arrangement returns a copy of position -> processor.
func (l *Layout) Arrangement() []int { return append([]int(nil), l.arrangement...) }

// Interval returns the interval owned by processor proc.
func (l *Layout) Interval(proc int) Interval {
	pos := l.position[proc]
	return Interval{l.starts[pos], l.starts[pos+1]}
}

// Size returns the number of elements owned by proc.
func (l *Layout) Size(proc int) int64 { return l.Interval(proc).Len() }

// Starts returns a copy of the per-position start offsets (length
// p+1). This — together with the arrangement — is the entire
// replicated translation state the paper's Figure 3 scheme needs:
// memory proportional to the number of processors.
func (l *Layout) Starts() []int64 { return append([]int64(nil), l.starts...) }

// Owner returns the processor holding global index g.
func (l *Layout) Owner(g int64) (int, error) {
	pos, err := l.ownerPos(g)
	if err != nil {
		return 0, err
	}
	return l.arrangement[pos], nil
}

func (l *Layout) ownerPos(g int64) (int, error) {
	if g < 0 || g >= l.n {
		return 0, fmt.Errorf("partition: index %d out of range [0,%d)", g, l.n)
	}
	// Binary search over starts: the largest pos with starts[pos] <= g.
	pos := sort.Search(len(l.starts), func(i int) bool { return l.starts[i] > g }) - 1
	// Skip empty blocks that share the same start.
	for l.starts[pos+1] == l.starts[pos] {
		pos++
	}
	return pos, nil
}

// Locate translates a global index into its (processor, local index)
// pair — the dereference operation of paper Section 3.2 using the
// interval table.
func (l *Layout) Locate(g int64) (proc int, local int64, err error) {
	pos, err := l.ownerPos(g)
	if err != nil {
		return 0, 0, err
	}
	return l.arrangement[pos], g - l.starts[pos], nil
}

// Local translates a global index owned by proc into its local index,
// or an error if proc does not own g.
func (l *Layout) Local(proc int, g int64) (int64, error) {
	iv := l.Interval(proc)
	if !iv.Contains(g) {
		return 0, fmt.Errorf("partition: index %d not owned by processor %d", g, proc)
	}
	return g - iv.Lo, nil
}

// Global translates proc's local index into the global index.
func (l *Layout) Global(proc int, local int64) (int64, error) {
	iv := l.Interval(proc)
	if local < 0 || local >= iv.Len() {
		return 0, fmt.Errorf("partition: local index %d out of range [0,%d) on processor %d",
			local, iv.Len(), proc)
	}
	return iv.Lo + local, nil
}

// Equal reports whether two layouts distribute the same list the same
// way.
func (l *Layout) Equal(o *Layout) bool {
	if l.n != o.n || len(l.arrangement) != len(o.arrangement) {
		return false
	}
	for i := range l.arrangement {
		if l.arrangement[i] != o.arrangement[i] || l.starts[i] != o.starts[i] {
			return false
		}
	}
	return l.starts[len(l.starts)-1] == o.starts[len(o.starts)-1]
}

// Overlap returns the number of elements that stay on their current
// processor when moving from layout a to layout b (paper Section 3.4:
// the quantity MCR maximizes).
func Overlap(a, b *Layout) (int64, error) {
	if err := compatible(a, b); err != nil {
		return 0, err
	}
	var total int64
	for proc := 0; proc < a.P(); proc++ {
		total += a.Interval(proc).Intersect(b.Interval(proc)).Len()
	}
	return total, nil
}

// Moved returns the number of elements that must cross the network
// when moving from layout a to layout b.
func Moved(a, b *Layout) (int64, error) {
	ov, err := Overlap(a, b)
	if err != nil {
		return 0, err
	}
	return a.n - ov, nil
}

// Messages returns the number of point-to-point messages a
// redistribution from a to b generates: the number of ordered
// processor pairs (src != dst) for which some elements move from src's
// old interval into dst's new interval.
func Messages(a, b *Layout) (int, error) {
	if err := compatible(a, b); err != nil {
		return 0, err
	}
	count := 0
	for src := 0; src < a.P(); src++ {
		old := a.Interval(src)
		for dst := 0; dst < b.P(); dst++ {
			if src == dst {
				continue
			}
			if old.Intersect(b.Interval(dst)).Len() > 0 {
				count++
			}
		}
	}
	return count, nil
}

func compatible(a, b *Layout) error {
	if a.n != b.n {
		return fmt.Errorf("partition: layouts cover %d and %d elements", a.n, b.n)
	}
	if a.P() != b.P() {
		return fmt.Errorf("partition: layouts have %d and %d processors", a.P(), b.P())
	}
	return nil
}
