package graph

import "fmt"

// EdgeCut returns the number of undirected edges whose endpoints are
// assigned to different parts. part[v] is the part of vertex v.
func (g *Graph) EdgeCut(part []int32) (int, error) {
	if len(part) != g.N {
		return 0, fmt.Errorf("graph: part length %d for %d vertices", len(part), g.N)
	}
	cut := 0
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(int(v)) {
			if v < w && part[v] != part[w] {
				cut++
			}
		}
	}
	return cut, nil
}

// Bandwidth returns max |u - v| over edges (u, v) under the current
// numbering: the worst-case distance in the one-dimensional list that
// an interaction has to reach across.
func (g *Graph) Bandwidth() int {
	bw := 0
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(int(v)) {
			d := int(v - w)
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// MeanEdgeSpan returns the mean |u - v| over undirected edges under
// the current numbering. Lower means better one-dimensional locality.
// It returns 0 for an edgeless graph.
func (g *Graph) MeanEdgeSpan() float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	total := 0.0
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(int(v)) {
			if v < w {
				total += float64(w - v)
			}
		}
	}
	return total / float64(g.NumEdges())
}

// DegreeHistogram returns a histogram h where h[d] is the number of
// vertices with degree d.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N; v++ {
		h[g.Degree(v)]++
	}
	return h
}
