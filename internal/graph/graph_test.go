package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stance/internal/geom"
)

// path returns a path graph 0-1-2-...-(n-1).
func path(t testing.TB, n int) *Graph {
	t.Helper()
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{int32(i), int32(i + 1)})
	}
	g, err := FromEdges(n, edges, nil)
	if err != nil {
		t.Fatalf("path(%d): %v", n, err)
	}
	return g
}

// randomGraph returns a connected random graph: a random spanning tree
// plus extra random edges.
func randomGraph(t testing.TB, n, extra int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ u, v int32 }
	seen := map[pair]bool{}
	var edges []Edge
	addEdge := func(u, v int32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return
		}
		seen[pair{u, v}] = true
		edges = append(edges, Edge{u, v})
	}
	for i := 1; i < n; i++ {
		addEdge(int32(i), int32(rng.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		addEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g, err := FromEdges(n, edges, nil)
	if err != nil {
		t.Fatalf("randomGraph: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.NumEdges() != 4 {
		t.Fatalf("N=%d E=%d", g.N, g.NumEdges())
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	want := []int32{1, 3}
	got := g.Neighbors(0)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Neighbors(0) = %v, want %v", got, want)
	}
}

func TestFromEdgesErrors(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"self-loop", 3, []Edge{{1, 1}}},
		{"out of range", 3, []Edge{{0, 3}}},
		{"negative", 3, []Edge{{-1, 0}}},
		{"duplicate", 3, []Edge{{0, 1}, {1, 0}}},
	}
	for _, c := range cases {
		if _, err := FromEdges(c.n, c.edges, nil); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := FromEdges(-1, nil, nil); err == nil {
		t.Error("negative n: expected error")
	}
	if _, err := FromEdges(2, nil, make([]geom.Point, 3)); err == nil {
		t.Error("coord mismatch: expected error")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := randomGraph(t, 50, 80, 1)
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges returned %d, want %d", len(edges), g.NumEdges())
	}
	g2, err := FromEdges(g.N, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency mismatch", v)
			}
		}
	}
}

func TestPermuteIdentity(t *testing.T) {
	g := randomGraph(t, 30, 40, 2)
	perm := make([]int32, g.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	ng, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		a, b := g.Neighbors(v), ng.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree changed at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency changed at %d", v)
			}
		}
	}
}

func TestPermutePreservesStructure(t *testing.T) {
	g := randomGraph(t, 60, 100, 3)
	rng := rand.New(rand.NewSource(4))
	perm := make([]int32, g.N)
	for i, p := range rng.Perm(g.N) {
		perm[i] = int32(p)
	}
	ng, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatalf("permuted graph invalid: %v", err)
	}
	if ng.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), ng.NumEdges())
	}
	// Degree multiset preserved.
	d1 := make([]int, g.N)
	d2 := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		d1[v] = g.Degree(v)
		d2[v] = ng.Degree(v)
	}
	sort.Ints(d1)
	sort.Ints(d2)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("degree multiset changed")
		}
	}
	// Every original edge maps to an edge in the new graph.
	for _, e := range g.Edges() {
		u, v := perm[e.U], perm[e.V]
		found := false
		for _, w := range ng.Neighbors(int(u)) {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge (%d,%d) lost by permutation", e.U, e.V)
		}
	}
}

func TestPermuteCoords(t *testing.T) {
	coords := []geom.Point{{X: 0}, {X: 1}, {X: 2}}
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}}, coords)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := g.Permute([]int32{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ng.Coords[0].X != 2 || ng.Coords[2].X != 0 {
		t.Errorf("coords not permuted: %+v", ng.Coords)
	}
}

func TestPermuteErrors(t *testing.T) {
	g := path(t, 3)
	if _, err := g.Permute([]int32{0, 1}); err == nil {
		t.Error("short perm: expected error")
	}
	if _, err := g.Permute([]int32{0, 1, 3}); err == nil {
		t.Error("out-of-range perm: expected error")
	}
	if _, err := g.Permute([]int32{0, 1, 1}); err == nil {
		t.Error("non-injective perm: expected error")
	}
}

func TestConnected(t *testing.T) {
	g := path(t, 10)
	if !g.Connected() {
		t.Error("path should be connected")
	}
	if g.Components() != 1 {
		t.Error("path should have 1 component")
	}
	g2, err := FromEdges(4, []Edge{{0, 1}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Connected() {
		t.Error("two components reported connected")
	}
	if g2.Components() != 2 {
		t.Errorf("Components = %d, want 2", g2.Components())
	}
	empty, err := FromEdges(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Connected() {
		t.Error("empty graph should be connected")
	}
}

func TestEdgeCut(t *testing.T) {
	g := path(t, 6)
	part := []int32{0, 0, 0, 1, 1, 1}
	cut, err := g.EdgeCut(part)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("EdgeCut = %d, want 1", cut)
	}
	alt := []int32{0, 1, 0, 1, 0, 1}
	cut, err = g.EdgeCut(alt)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 5 {
		t.Errorf("alternating EdgeCut = %d, want 5", cut)
	}
	if _, err := g.EdgeCut([]int32{0}); err == nil {
		t.Error("short part: expected error")
	}
}

func TestBandwidthAndSpan(t *testing.T) {
	g := path(t, 5)
	if bw := g.Bandwidth(); bw != 1 {
		t.Errorf("path Bandwidth = %d, want 1", bw)
	}
	if span := g.MeanEdgeSpan(); span != 1 {
		t.Errorf("path MeanEdgeSpan = %v, want 1", span)
	}
	// Reversing the path preserves bandwidth; a shuffle usually grows it.
	rev := make([]int32, g.N)
	for i := range rev {
		rev[i] = int32(g.N - 1 - i)
	}
	ng, err := g.Permute(rev)
	if err != nil {
		t.Fatal(err)
	}
	if bw := ng.Bandwidth(); bw != 1 {
		t.Errorf("reversed path Bandwidth = %d, want 1", bw)
	}
	empty, _ := FromEdges(3, nil, nil)
	if empty.MeanEdgeSpan() != 0 || empty.Bandwidth() != 0 {
		t.Error("edgeless graph should have zero span and bandwidth")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(t, 4) // degrees 1,2,2,1
	h := g.DegreeHistogram()
	if len(h) != 3 || h[1] != 2 || h[2] != 2 {
		t.Errorf("DegreeHistogram = %v", h)
	}
}

func TestPermuteIsBijectionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		g := randomGraph(t, n, n, seed)
		rng := rand.New(rand.NewSource(seed + 1))
		perm := make([]int32, n)
		for i, p := range rng.Perm(n) {
			perm[i] = int32(p)
		}
		ng, err := g.Permute(perm)
		if err != nil {
			return false
		}
		// Applying the inverse permutation restores the original.
		inv := make([]int32, n)
		for old, nw := range perm {
			inv[nw] = int32(old)
		}
		back, err := ng.Permute(inv)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			a, b := g.Neighbors(v), back.Neighbors(v)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := path(t, 4)
	bad := *g
	bad.Adj = append([]int32(nil), g.Adj...)
	bad.Adj[0] = 99
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range neighbor not caught")
	}
	bad2 := *g
	bad2.Xadj = append([]int32(nil), g.Xadj...)
	bad2.Xadj[1] = 0
	if err := bad2.Validate(); err == nil {
		t.Error("inconsistent Xadj not caught")
	}
	bad3 := *g
	bad3.Adj = append([]int32(nil), g.Adj...)
	// Break symmetry: vertex 0's neighbor list says 2, but 2 does not list 0.
	bad3.Adj[0] = 2
	if err := bad3.Validate(); err == nil {
		t.Error("asymmetry not caught")
	}
}
