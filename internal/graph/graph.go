// Package graph implements the computational-graph representation at
// the heart of the STANCE runtime (paper Section 3.1). Vertices stand
// for units of data-parallel work, edges for interactions between
// them. Graphs are stored in compressed sparse row (CSR) form and may
// carry physical coordinates, which the locality transformations in
// package order rely on.
package graph

import (
	"fmt"
	"sort"

	"stance/internal/geom"
)

// Graph is an undirected graph in CSR form. Vertex v's neighbors are
// Adj[Xadj[v]:Xadj[v+1]]. For a well-formed undirected graph every
// edge appears twice, once in each endpoint's adjacency list.
type Graph struct {
	N      int          // number of vertices
	Xadj   []int32      // row pointers, length N+1
	Adj    []int32      // concatenated adjacency lists, length 2*|E|
	Coords []geom.Point // optional physical coordinates, length N or nil
}

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int32
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors returns the adjacency list of vertex v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.Adj[g.Xadj[v]:g.Xadj[v+1]] }

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// FromEdges builds an undirected CSR graph with n vertices from an
// edge list. Self-loops and duplicate edges are rejected. coords may
// be nil.
func FromEdges(n int, edges []Edge, coords []geom.Point) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if coords != nil && len(coords) != n {
		return nil, fmt.Errorf("graph: %d coords for %d vertices", len(coords), n)
	}
	deg := make([]int32, n)
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e.U)
		}
		deg[e.U]++
		deg[e.V]++
	}
	g := &Graph{
		N:      n,
		Xadj:   make([]int32, n+1),
		Adj:    make([]int32, 2*len(edges)),
		Coords: coords,
	}
	for v := 0; v < n; v++ {
		g.Xadj[v+1] = g.Xadj[v] + deg[v]
	}
	next := make([]int32, n)
	copy(next, g.Xadj[:n])
	for _, e := range edges {
		g.Adj[next[e.U]] = e.V
		next[e.U]++
		g.Adj[next[e.V]] = e.U
		next[e.V]++
	}
	// Sort each adjacency list so graphs built from permuted edge
	// lists are identical, then detect duplicates.
	for v := 0; v < n; v++ {
		lst := g.Adj[g.Xadj[v]:g.Xadj[v+1]]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		for i := 1; i < len(lst); i++ {
			if lst[i] == lst[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", v, lst[i])
			}
		}
	}
	return g, nil
}

// Edges returns each undirected edge exactly once, with U < V, in
// increasing order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(int(v)) {
			if v < w {
				out = append(out, Edge{v, w})
			}
		}
	}
	return out
}

// Validate checks CSR structural invariants: monotone Xadj, in-range
// adjacency entries, symmetry, no self loops.
func (g *Graph) Validate() error {
	if len(g.Xadj) != g.N+1 {
		return fmt.Errorf("graph: len(Xadj) = %d, want %d", len(g.Xadj), g.N+1)
	}
	if g.Xadj[0] != 0 || int(g.Xadj[g.N]) != len(g.Adj) {
		return fmt.Errorf("graph: Xadj endpoints [%d,%d] do not match Adj length %d",
			g.Xadj[0], g.Xadj[g.N], len(g.Adj))
	}
	if g.Coords != nil && len(g.Coords) != g.N {
		return fmt.Errorf("graph: %d coords for %d vertices", len(g.Coords), g.N)
	}
	for v := 0; v < g.N; v++ {
		if g.Xadj[v] > g.Xadj[v+1] {
			return fmt.Errorf("graph: Xadj not monotone at vertex %d", v)
		}
		for _, w := range g.Neighbors(v) {
			if w < 0 || int(w) >= g.N {
				return fmt.Errorf("graph: neighbor %d of vertex %d out of range", w, v)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
		}
	}
	// Symmetry: count directed arcs both ways.
	type arc struct{ u, v int32 }
	seen := make(map[arc]int, len(g.Adj))
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(int(v)) {
			seen[arc{v, w}]++
		}
	}
	for a, c := range seen {
		if c != 1 {
			return fmt.Errorf("graph: arc (%d,%d) appears %d times", a.u, a.v, c)
		}
		if seen[arc{a.v, a.u}] != 1 {
			return fmt.Errorf("graph: edge (%d,%d) is not symmetric", a.u, a.v)
		}
	}
	return nil
}

// Permute renumbers the graph according to perm, where perm[old] = new
// position in the one-dimensional list (the transformation T of paper
// Section 3.1). The result's vertex i is the old vertex with
// perm[old] == i; adjacency lists are sorted.
func (g *Graph) Permute(perm []int32) (*Graph, error) {
	if len(perm) != g.N {
		return nil, fmt.Errorf("graph: permutation length %d for %d vertices", len(perm), g.N)
	}
	inv := make([]int32, g.N)
	for i := range inv {
		inv[i] = -1
	}
	for old, nw := range perm {
		if nw < 0 || int(nw) >= g.N {
			return nil, fmt.Errorf("graph: perm[%d] = %d out of range", old, nw)
		}
		if inv[nw] != -1 {
			return nil, fmt.Errorf("graph: perm maps both %d and %d to %d", inv[nw], old, nw)
		}
		inv[nw] = int32(old)
	}
	ng := &Graph{
		N:    g.N,
		Xadj: make([]int32, g.N+1),
		Adj:  make([]int32, len(g.Adj)),
	}
	if g.Coords != nil {
		ng.Coords = make([]geom.Point, g.N)
	}
	for nw := 0; nw < g.N; nw++ {
		old := inv[nw]
		ng.Xadj[nw+1] = ng.Xadj[nw] + int32(g.Degree(int(old)))
		if g.Coords != nil {
			ng.Coords[nw] = g.Coords[old]
		}
		dst := ng.Adj[ng.Xadj[nw]:ng.Xadj[nw+1]]
		for i, w := range g.Neighbors(int(old)) {
			dst[i] = perm[w]
		}
		sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	}
	return ng, nil
}

// Connected reports whether the graph is connected (true for N <= 1).
func (g *Graph) Connected() bool {
	if g.N <= 1 {
		return true
	}
	visited := make([]bool, g.N)
	stack := []int32{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(int(v)) {
			if !visited[w] {
				visited[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N
}

// Components returns the number of connected components.
func (g *Graph) Components() int {
	visited := make([]bool, g.N)
	comps := 0
	var stack []int32
	for s := 0; s < g.N; s++ {
		if visited[s] {
			continue
		}
		comps++
		visited[s] = true
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(int(v)) {
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return comps
}
