package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	p := Point{1, 2, 3}
	for axis := 0; axis < 3; axis++ {
		want := float64(axis + 1)
		if got := p.Coord(axis); got != want {
			t.Errorf("Coord(%d) = %v, want %v", axis, got, want)
		}
	}
	q := p.WithCoord(1, 9)
	if q.Y != 9 || q.X != 1 || q.Z != 3 {
		t.Errorf("WithCoord(1, 9) = %+v", q)
	}
	if p.Y != 2 {
		t.Error("WithCoord mutated the receiver")
	}
}

func TestCoordPanicsOnBadAxis(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Coord(3) did not panic")
		}
	}()
	Point{}.Coord(3)
}

func TestWithCoordPanicsOnBadAxis(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithCoord(-1) did not panic")
		}
	}()
	Point{}.WithCoord(-1, 0)
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{4, 5, 6}
	if got := p.Add(q); got != (Point{5, 7, 9}) {
		t.Errorf("Add = %+v", got)
	}
	if got := q.Sub(p); got != (Point{3, 3, 3}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4, 6}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := p.Dot(q); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := Dist(p, p); got != 0 {
		t.Errorf("Dist(p, p) = %v", got)
	}
	if got := Dist(Point{}, Point{3, 4, 0}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestEmptyBoxExtend(t *testing.T) {
	b := EmptyBox()
	p := Point{1, -2, 3}
	b = b.Extend(p)
	if b.Min != p || b.Max != p {
		t.Errorf("Extend on empty box = %+v", b)
	}
	if !b.Contains(p) {
		t.Error("box does not contain its only point")
	}
}

func TestBounds(t *testing.T) {
	pts := []Point{{0, 0, 0}, {2, -1, 5}, {1, 3, -2}}
	b := Bounds(pts)
	if b.Min != (Point{0, -1, -2}) {
		t.Errorf("Min = %+v", b.Min)
	}
	if b.Max != (Point{2, 3, 5}) {
		t.Errorf("Max = %+v", b.Max)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("Bounds does not contain %+v", p)
		}
	}
}

func TestLongestAxis(t *testing.T) {
	cases := []struct {
		box  Box
		want int
	}{
		{Box{Point{0, 0, 0}, Point{3, 1, 1}}, 0},
		{Box{Point{0, 0, 0}, Point{1, 3, 1}}, 1},
		{Box{Point{0, 0, 0}, Point{1, 1, 3}}, 2},
		{Box{Point{0, 0, 0}, Point{2, 2, 2}}, 0}, // tie prefers X
	}
	for _, c := range cases {
		if got := c.box.LongestAxis(); got != c.want {
			t.Errorf("LongestAxis(%+v) = %d, want %d", c.box, got, c.want)
		}
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %+v", got)
	}
	pts := []Point{{0, 0, 0}, {2, 4, 6}}
	if got := Centroid(pts); got != (Point{1, 2, 3}) {
		t.Errorf("Centroid = %+v", got)
	}
}

func TestBoundsContainsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		pts := make([]Point, int(n)+1)
		for i := range pts {
			pts[i] = Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		b := Bounds(pts)
		for _, p := range pts {
			if !b.Contains(p) {
				return false
			}
		}
		c := Centroid(pts)
		return b.Contains(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		p := Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		q := Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		r := Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		return Dist(p, r) <= Dist(p, q)+Dist(q, r)+1e-12
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestNorm(t *testing.T) {
	if got := (Point{3, 4, 0}).Norm(); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm = %v", got)
	}
}
