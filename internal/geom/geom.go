// Package geom provides the small amount of computational geometry the
// STANCE runtime needs: points embedded in two or three dimensions and
// axis-aligned bounding boxes. The paper's locality transformations
// (Section 3.1) operate on computational graphs whose vertices carry
// physical coordinates; this package is their substrate.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in up to three dimensions. Two-dimensional data
// leaves Z at zero.
type Point struct {
	X, Y, Z float64
}

// Coord returns the axis-th coordinate (0 = X, 1 = Y, 2 = Z).
func (p Point) Coord(axis int) float64 {
	switch axis {
	case 0:
		return p.X
	case 1:
		return p.Y
	case 2:
		return p.Z
	}
	panic(fmt.Sprintf("geom: invalid axis %d", axis))
}

// WithCoord returns a copy of p with the axis-th coordinate replaced.
func (p Point) WithCoord(axis int, v float64) Point {
	switch axis {
	case 0:
		p.X = v
	case 1:
		p.Y = v
	case 2:
		p.Z = v
	default:
		panic(fmt.Sprintf("geom: invalid axis %d", axis))
	}
	return p
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s, p.Z * s} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 { return p.Sub(q).Norm() }

// Box is an axis-aligned bounding box.
type Box struct {
	Min, Max Point
}

// EmptyBox returns a box that contains nothing; extending it with any
// point yields a degenerate box around that point.
func EmptyBox() Box {
	inf := math.Inf(1)
	return Box{
		Min: Point{inf, inf, inf},
		Max: Point{-inf, -inf, -inf},
	}
}

// Extend grows the box to contain p.
func (b Box) Extend(p Point) Box {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
	return b
}

// Bounds returns the bounding box of pts. It returns EmptyBox() for an
// empty slice.
func Bounds(pts []Point) Box {
	b := EmptyBox()
	for _, p := range pts {
		b = b.Extend(p)
	}
	return b
}

// Extent returns the box's side length along axis.
func (b Box) Extent(axis int) float64 {
	return b.Max.Coord(axis) - b.Min.Coord(axis)
}

// LongestAxis returns the axis (0, 1 or 2) with the largest extent,
// preferring lower axes on ties.
func (b Box) LongestAxis() int {
	best, bestExt := 0, b.Extent(0)
	for axis := 1; axis < 3; axis++ {
		if ext := b.Extent(axis); ext > bestExt {
			best, bestExt = axis, ext
		}
	}
	return best
}

// Contains reports whether p lies inside the closed box.
func (b Box) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Centroid returns the arithmetic mean of pts. It returns the zero
// point for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
