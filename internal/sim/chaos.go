package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"stance/internal/ckpt"
)

// The chaos harness: seeded kill schedules layered over the scenario
// generator, including schedules that are unrecoverable by
// construction (a dead coordinator, a rank and its checkpoint buddy
// dying together). The invariant every chaos seed must satisfy is the
// crash-stop contract itself: a recoverable schedule completes
// bit-exact to the fixed-world reference, an unrecoverable one fails
// loudly with a cause chain wrapping ckpt.ErrUnrecoverable — and
// nothing ever hangs, because the virtual clock's stall watchdog
// converts a hang into an immediate ErrDeadlock.

// chaosSalt decorrelates the kill-schedule draws from the scenario
// draws, so chaos seed s shares Generate(s)'s graph, network model and
// executor mode but explores an independent failure axis.
const chaosSalt = 0x6368616f73 // "chaos"

// ChaosScenario is a Scenario plus the outcome its kill schedule
// forces.
type ChaosScenario struct {
	*Scenario
	// ExpectUnrecoverable: the schedule kills the coordinator or a
	// buddy pair, so the run must fail with ckpt.ErrUnrecoverable in
	// its cause chain.
	ExpectUnrecoverable bool
	// MinRecoveries is the number of kills guaranteed to fire at a
	// gate before the run ends (a kill scheduled past the last gate
	// never fires, which is a legitimate no-op).
	MinRecoveries int
}

// GenerateChaos derives a chaos scenario from a seed: the base
// scenario of Generate(seed) with its churn stripped (a dead rank must
// stay dead — readmission races belong to the elastic tests) and a
// freshly drawn kill schedule forced on top.
func GenerateChaos(seed int64) (*ChaosScenario, error) {
	sc, err := Generate(seed)
	if err != nil {
		return nil, err
	}
	cs := &ChaosScenario{Scenario: sc}
	rng := rand.New(rand.NewSource(seed ^ chaosSalt))

	cfg := &sc.Cfg
	procs := cfg.Procs
	checkEvery := cfg.CheckEvery
	cfg.Env.Outages = nil
	cfg.Elastic = false
	for i := range sc.Resizes {
		sc.Resizes[i] = nil
	}
	for ti := range cfg.Env.Traces {
		for si, st := range cfg.Env.Traces[ti].Steps {
			if st.Capability == 0 {
				cfg.Env.Traces[ti].Steps[si].Capability = 0.25
			}
		}
	}
	sc.Elastic = cfg.Env.Elastic()

	// The detection timeout is huge in virtual time: gates are at most
	// CheckEvery iterations apart, so honest skew stays far below it
	// and only an injected kill can trip it.
	ckCfg := &ckpt.Config{DetectTimeout: 5 * time.Second}
	switch mode := rng.Intn(8); {
	case mode == 7 || (mode == 6 && procs < 3):
		// Kill the coordinator. It has no backup: the members' verdict
		// deadline expires and every survivor unwinds with a wrapped
		// ErrUnrecoverable.
		ckCfg.Kills = []ckpt.Kill{{Rank: 0, Iter: 1 + rng.Intn(checkEvery)}}
		cs.ExpectUnrecoverable = true
	case mode == 6:
		// Kill a rank and its checkpoint buddy (the ring successor) in
		// the same detection window. The checkpoint dies with them and
		// the coordinator must abort the run on every survivor.
		r := 1 + rng.Intn(procs-2)
		iter := 1 + rng.Intn(checkEvery) // after the run-start checkpoint
		ckCfg.Kills = []ckpt.Kill{{Rank: r, Iter: iter}, {Rank: r + 1, Iter: iter}}
		cs.ExpectUnrecoverable = true
	default:
		// One or two recoverable kills at distinct gates. Iters >=
		// 3*CheckEvery always, so gates at CheckEvery and 2*CheckEvery
		// both exist and both kills are guaranteed to fire.
		first := ckpt.Kill{Rank: 1 + rng.Intn(procs-1), Iter: 1 + rng.Intn(checkEvery)}
		ckCfg.Kills = []ckpt.Kill{first}
		cs.MinRecoveries = 1
		if procs > 2 && rng.Intn(2) == 0 {
			second := ckpt.Kill{Iter: 2 * checkEvery}
			for second.Rank == 0 || second.Rank == first.Rank {
				second.Rank = 1 + rng.Intn(procs-1)
			}
			ckCfg.Kills = append(ckCfg.Kills, second)
			cs.MinRecoveries = 2
		}
	}
	cfg.Checkpoint = ckCfg
	sc.Checkpoint = true
	sc.Kills = ckCfg.Kills

	sc.Desc = fmt.Sprintf("%s chaos-kills=%v expect-unrecoverable=%v",
		sc.Desc, ckCfg.Kills, cs.ExpectUnrecoverable)
	return cs, nil
}

// RunChaos generates and executes the chaos scenario for seed and
// verifies the crash-stop contract. A nil error means the contract
// held: either the run completed with every invariant of Run intact
// (recoverable schedules, with at least MinRecoveries recorded), or it
// failed loudly with ckpt.ErrUnrecoverable in the chain (unrecoverable
// schedules). A hang, a silent success of an unrecoverable schedule,
// or a wrong result all come back as errors naming the scenario.
func RunChaos(seed int64) (*Result, error) {
	cs, err := GenerateChaos(seed)
	if err != nil {
		return nil, err
	}
	sc := cs.Scenario
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("sim: %s: %s", sc.Desc, fmt.Sprintf(format, args...))
	}

	res, err := execute(sc)
	if cs.ExpectUnrecoverable {
		if err == nil {
			return nil, fail("unrecoverable kill schedule completed successfully")
		}
		if errors.Is(err, ErrDeadlock) {
			return nil, fail("unrecoverable kill schedule hung instead of failing loudly: %v", err)
		}
		if !errors.Is(err, ckpt.ErrUnrecoverable) {
			return nil, fail("failure does not wrap ckpt.ErrUnrecoverable: %v", err)
		}
		return nil, nil
	}
	if err != nil {
		return nil, fail("recoverable kill schedule failed: %v", err)
	}
	ref, err := reference(sc)
	if err != nil {
		return nil, fail("reference run: %v", err)
	}
	if err := checkInvariants(sc, res, ref); err != nil {
		return nil, fail("%v", err)
	}
	recoveries := 0
	for _, rep := range res.Reports {
		recoveries += len(rep.Recoveries)
	}
	if recoveries < cs.MinRecoveries {
		return nil, fail("%d recoveries recorded, schedule guarantees %d", recoveries, cs.MinRecoveries)
	}
	return res, nil
}
