// Package sim is the deterministic adaptive-scenario harness: a
// seeded generator composes random geometric graphs, random
// delay/latency network models, heterogeneity traces and loads,
// elastic churn (outages and explicit resizes), balancer policies and
// executor modes into full Session runs on a simulated clock
// (internal/vtime), and Run checks runtime invariants on every one.
// Hours of simulated adaptivity cost milliseconds of CI time, and the
// same seed reproduces the same run byte for byte — the
// scenario-diversity fuzzer the adaptive runtime is verified against.
//
// The invariants every scenario must satisfy:
//
//   - The gathered result is bit-equal to a fixed-world synchronous
//     single-rank reference: no remap, rebind, overlap mode, delay
//     model or membership change may perturb the numerics.
//   - Element conservation: summed over ranks, exactly N items are
//     computed per iteration, across every remap and epoch transition.
//   - No deadlock: the virtual clock's stall detector converts a hung
//     collective into an immediate error instead of a frozen test.
//   - RunReport accounting is consistent: executor traffic is bounded
//     by world traffic, split-phase counters by operation counts,
//     check iterations lie on boundaries, epochs advance monotonically
//     and migrations carry bytes.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"stance/internal/ckpt"
	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/graph"
	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/redist"
	"stance/internal/session"
	"stance/internal/solver"
	"stance/internal/vtime"
)

// Scenario is one generated configuration, fully determined by its
// seed.
type Scenario struct {
	Seed  int64
	Desc  string
	Graph *graph.Graph
	// Iters is the total iteration count, split into Segments (one
	// Session.Run per segment). Resizes[i], when non-nil, is an
	// explicit Resize request issued before segment i.
	Iters    int
	Segments []int
	Resizes  [][]int
	// Cfg is the session configuration (Clock is filled in by Run).
	Cfg session.Config

	// Feature flags, for picking interesting seeds in tests.
	HasDelay    bool
	HasBalancer bool
	Elastic     bool
	Overlap     bool
	// Pipeline and Fields mirror the session config: a positive
	// Pipeline runs the handle-based pipelined executor at that depth,
	// over Fields independent solution fields.
	Pipeline int
	Fields   int
	// Kernel names a non-default compute body ("" means the built-in
	// Figure8). Checkpoint reports crash-stop fault tolerance enabled;
	// Kills is its injected kill schedule (empty means checkpointing
	// overhead only — gates and buddy mirrors with nobody dying).
	Kernel     string
	Checkpoint bool
	Kills      []ckpt.Kill
	// Hierarchical reports a two-level world: Groups is the per-rank
	// group id slice, and the session prices inter-group traffic on a
	// slower model. FlatCut keeps that pricing but disables the
	// hierarchy-aware cut (the control arm the Table 4/5 twins measure).
	Hierarchical bool
	Groups       []int
	FlatCut      bool
}

// Result carries a completed scenario run.
type Result struct {
	Scenario *Scenario
	// Reports are the per-segment run reports, in order.
	Reports []*session.RunReport
	// Values is the gathered result in original vertex numbering.
	Values []float64
}

var orderNames = []string{"identity", "rcb", "morton", "hilbert"}

// Generate derives a scenario from a seed. Same seed, same scenario —
// including the graph, which is built from a seeded generator.
func Generate(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	sc := &Scenario{Seed: seed}

	procs := 2 + rng.Intn(3) // 2..4
	n := 40 + rng.Intn(120)
	radius := 0.15 + 0.1*rng.Float64()
	g, err := mesh.RandomGeometric(n, radius, rng.Int63())
	if err != nil {
		return nil, fmt.Errorf("sim: seed %d: %w", seed, err)
	}
	sc.Graph = g

	checkEvery := 5 * (1 + rng.Intn(2)) // 5 or 10
	sc.Iters = 3*checkEvery + rng.Intn(61)

	cfg := session.Config{
		Procs:       procs,
		OrderName:   orderNames[rng.Intn(len(orderNames))],
		CheckEvery:  checkEvery,
		WorkRep:     1,
		ComputeCost: time.Duration(1+rng.Intn(20)) * time.Microsecond,
	}
	cfg.Strategy = []core.Strategy{core.StrategySort2, core.StrategySort1, core.StrategySimple}[rng.Intn(3)]
	cfg.RemapPolicy = []core.RemapPolicy{core.RemapMCRIterated, core.RemapMCR, core.RemapKeepArrangement}[rng.Intn(3)]
	cfg.RootComputesOrder = rng.Intn(4) == 0

	// Network: free, latency-only, delay-only, or the full model.
	switch rng.Intn(4) {
	case 0: // free network
	case 1:
		cfg.Model = &comm.Model{Latency: time.Duration(50+rng.Intn(500)) * time.Microsecond}
	case 2:
		cfg.Model = &comm.Model{Delay: time.Duration(200+rng.Intn(4800)) * time.Microsecond}
		sc.HasDelay = true
	default:
		cfg.Model = &comm.Model{
			Latency:   time.Duration(50+rng.Intn(300)) * time.Microsecond,
			Bandwidth: 1e6 * (1 + 9*rng.Float64()),
			Delay:     time.Duration(rng.Intn(3000)) * time.Microsecond,
			Multicast: rng.Intn(2) == 0,
		}
		sc.HasDelay = cfg.Model.Delay > 0
	}

	// Heterogeneity: base speeds, competing loads and capability
	// traces; traces may include zero-capability (outage) segments on
	// non-coordinator ranks, and explicit outage windows add elastic
	// churn.
	env := hetero.Uniform(procs)
	for i := range env.Speeds {
		env.Speeds[i] = 0.5 + 1.5*rng.Float64()
	}
	for i := rng.Intn(3); i > 0; i-- {
		from := rng.Intn(sc.Iters)
		until := 0
		if rng.Intn(2) == 0 {
			until = from + 1 + rng.Intn(sc.Iters-from)
		}
		env.Loads = append(env.Loads, hetero.Load{
			Rank:      rng.Intn(procs),
			Factor:    1 + 2*rng.Float64(),
			FromIter:  from,
			UntilIter: until,
		})
	}
	for i := rng.Intn(3); i > 0; i-- {
		tr := hetero.Trace{Rank: rng.Intn(procs)}
		from := 0
		for s := 1 + rng.Intn(3); s > 0; s-- {
			from += rng.Intn(sc.Iters/2 + 1)
			cap := []float64{0.25, 0.5, 2, 1}[rng.Intn(4)]
			if tr.Rank != 0 && rng.Intn(5) == 0 {
				cap = 0 // an outage segment: elastic churn via trace
			}
			tr.Steps = append(tr.Steps, hetero.TraceStep{FromIter: from, Capability: cap})
			from++
		}
		env.Traces = append(env.Traces, tr)
	}
	if procs > 1 && rng.Intn(3) == 0 {
		from := checkEvery + rng.Intn(sc.Iters)
		until := 0
		if rng.Intn(2) == 0 {
			until = from + checkEvery + rng.Intn(2*checkEvery)
		}
		env.Outages = append(env.Outages, hetero.Outage{
			Rank:      1 + rng.Intn(procs-1),
			FromIter:  from,
			UntilIter: until,
		})
	}
	cfg.Env = env

	// Balancer: present most of the time — forced remaps are the point.
	if rng.Intn(4) != 3 {
		bal := &loadbal.Config{
			Decentralized: rng.Intn(3) == 0,
			SafetyFactor:  1,
		}
		if rng.Intn(2) == 0 {
			bal.CostModel = redist.CostModel{PerMessage: 1e-4, PerByte: 1e-8}
		}
		switch rng.Intn(3) {
		case 1:
			bal.Estimator, _ = loadbal.NewEstimator(loadbal.EstimateEWMA, 0.5)
		case 2:
			bal.Estimator, _ = loadbal.NewEstimator(loadbal.EstimateMax, 0)
		}
		cfg.Balancer = bal
		sc.HasBalancer = true
	}

	// Executor mode: synchronous, split-phase overlapped, or pipelined
	// on op handles with a random depth and field count — the modes are
	// mutually exclusive. Multi-field pipelined runs keep several
	// exchanges in flight at once, exercising the dependency tracker and
	// rotating wire tags under every network model and churn pattern.
	switch rng.Intn(3) {
	case 1:
		cfg.Overlap = true
	case 2:
		cfg.Pipeline = 1 + rng.Intn(2)
		cfg.Fields = 1 + rng.Intn(3)
	}
	sc.Overlap = cfg.Overlap
	sc.Pipeline = cfg.Pipeline
	sc.Fields = cfg.Fields
	if sc.Fields == 0 {
		sc.Fields = 1
	}

	// Segmentation and explicit elastic resizes: split the run into
	// 1..3 Session.Run calls; sometimes shrink the active set before a
	// middle segment and grow it back before the next.
	nSeg := 1 + rng.Intn(3)
	sc.Segments = splitIters(rng, sc.Iters, nSeg)
	sc.Resizes = make([][]int, nSeg)
	if procs > 1 && nSeg > 1 && rng.Intn(2) == 0 {
		cfg.Elastic = true
		shrunk := make([]int, 0, procs-1)
		for r := 0; r < procs-1; r++ {
			shrunk = append(shrunk, r)
		}
		full := make([]int, procs)
		for r := range full {
			full[r] = r
		}
		sc.Resizes[1] = shrunk
		if nSeg > 2 {
			sc.Resizes[2] = full
		}
	}
	// Kernel: mostly the paper's Figure 8 neighbor sum, sometimes the
	// sparse CG smoothing kernel — subset-capable, so every executor
	// mode above still applies. The reference run uses the same kernel,
	// keeping the bit-equality invariant meaningful.
	if rng.Intn(3) == 0 {
		sc.Kernel = "cg"
		cfg.Kernel = solver.CG{}
	}

	// Crash-stop fault tolerance: about a third of the multi-rank
	// seeds enable buddy checkpointing, and most of those inject a
	// kill. The schedule is always recoverable by construction (a
	// single non-coordinator rank), so every seed must complete with
	// the reference result — unrecoverable schedules are the chaos
	// harness's job (GenerateChaos). DetectTimeout is huge in virtual
	// time: gates are at most CheckEvery iterations apart, so honest
	// skew stays far below it and only an injected kill can time out.
	if procs > 1 && rng.Intn(3) == 0 {
		sc.Checkpoint = true
		ckCfg := &ckpt.Config{DetectTimeout: 5 * time.Second}
		if rng.Intn(3) > 0 {
			ckCfg.Kills = []ckpt.Kill{{
				Rank: 1 + rng.Intn(procs-1),
				Iter: 1 + rng.Intn(sc.Iters-1),
			}}
			sc.Kills = ckCfg.Kills
			// A dead rank leaves the membership for good: drop the
			// churn that would race recovery to readmit or retire it
			// (the kill-vs-churn interleavings belong to the session
			// tests; here every kill seed must stay recoverable).
			env.Outages = nil
			cfg.Elastic = false
			for i := range sc.Resizes {
				sc.Resizes[i] = nil
			}
			for ti := range env.Traces {
				for si, st := range env.Traces[ti].Steps {
					if st.Capability == 0 {
						env.Traces[ti].Steps[si].Capability = 0.25
					}
				}
			}
		}
		cfg.Checkpoint = ckCfg
	}

	// Two-level worlds (the paper's nonuniform network): about a third
	// of the multi-rank seeds group the ranks over a slower inter-group
	// link. The hierarchy composes with everything above — elastic
	// churn falls back to flat cuts on partial active sets, the
	// decentralized balancer routes reports through group leaders, and
	// the bit-equality invariant must hold regardless. These draws come
	// last so older seeds keep their pre-hierarchy scenarios.
	if procs > 1 && rng.Intn(3) == 0 {
		topo, err := comm.ContiguousGroups(procs, 2)
		if err != nil {
			return nil, fmt.Errorf("sim: seed %d: %w", seed, err)
		}
		cfg.Topology = topo
		cfg.InterModel = &comm.Model{
			Latency:   time.Duration(500+rng.Intn(2000)) * time.Microsecond,
			Bandwidth: 1e5 * (1 + 9*rng.Float64()),
			Multicast: rng.Intn(2) == 0,
		}
		cfg.FlatCut = rng.Intn(4) == 0
		cfg.FlatReports = rng.Intn(4) == 0
		sc.Hierarchical = true
		sc.Groups = topo.GroupOfSlice()
		sc.FlatCut = cfg.FlatCut
	}

	sc.Elastic = cfg.Elastic || env.Elastic()
	sc.Cfg = cfg

	sc.Desc = fmt.Sprintf(
		"seed=%d n=%d procs=%d iters=%v order=%s check=%d cost=%v model=%+v overlap=%v pipeline=%d fields=%d kernel=%q balancer=%v elastic=%v ckpt=%v kills=%v loads=%d traces=%d outages=%d resizes=%v groups=%v flatcut=%v",
		seed, g.N, procs, sc.Segments, cfg.OrderName, checkEvery, cfg.ComputeCost,
		cfg.Model, cfg.Overlap, cfg.Pipeline, sc.Fields, sc.Kernel, sc.HasBalancer, sc.Elastic,
		sc.Checkpoint, sc.Kills,
		len(env.Loads), len(env.Traces), len(env.Outages), sc.Resizes, sc.Groups, sc.FlatCut)
	return sc, nil
}

// splitIters partitions total into n positive segments, each a
// multiple of nothing in particular — segment boundaries landing on
// and off check boundaries are both interesting.
func splitIters(rng *rand.Rand, total, n int) []int {
	segs := make([]int, n)
	remaining := total
	for i := 0; i < n-1; i++ {
		max := remaining - (n - 1 - i)
		seg := 1 + rng.Intn(max)
		segs[i] = seg
		remaining -= seg
	}
	segs[n-1] = remaining
	return segs
}

// ErrDeadlock marks a virtual-time deadlock: every rank blocked with
// no event scheduled. execute wraps the session error with it, so
// harnesses that tolerate loud failures (the chaos tests) can still
// distinguish a clean abort from a hang.
var ErrDeadlock = errors.New("virtual-time deadlock")

// Run generates the scenario for seed, executes it on a simulated
// clock, and checks every invariant. It returns an error naming the
// seed and scenario on any violation, so a CI failure is immediately
// reproducible with Run(seed) locally.
func Run(seed int64) (*Result, error) {
	sc, err := Generate(seed)
	if err != nil {
		return nil, err
	}
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("sim: %s: %s", sc.Desc, fmt.Sprintf(format, args...))
	}

	// The fixed-world synchronous reference: a single rank, no model,
	// no balancer, real clock. Orderings depend only on the graph, and
	// every runtime mechanism is numerics-preserving, so the adaptive
	// run must reproduce this bit for bit.
	ref, err := reference(sc)
	if err != nil {
		return nil, fail("reference run: %v", err)
	}

	res, err := execute(sc)
	if err != nil {
		return nil, fail("%v", err)
	}
	if err := checkInvariants(sc, res, ref); err != nil {
		return nil, fail("%v", err)
	}
	return res, nil
}

// execute runs a scenario on a fresh simulated clock with the stall
// watchdog armed and gathers the result. Errors are the session's own,
// except a hang, which is converted into an ErrDeadlock-wrapped error.
func execute(sc *Scenario) (*Result, error) {
	clk := vtime.NewSim()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stalled := make(chan struct{})
	var stallOnce sync.Once
	clk.SetStallHandler(func() {
		// A virtual-time deadlock: every rank blocked with no event
		// scheduled. Cancel the session so every receive unwinds with
		// an error instead of hanging the harness. The handler can fire
		// once per quiescent episode and the post-cancel unwind can
		// quiesce again, hence the Once.
		stallOnce.Do(func() {
			close(stalled)
			cancel()
		})
	})

	cfg := sc.Cfg
	cfg.Clock = clk
	s, err := session.New(ctx, sc.Graph, cfg)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	defer s.Close()

	res := &Result{Scenario: sc}
	deadlocked := func(err error) error {
		select {
		case <-stalled:
			return fmt.Errorf("%w: %v", ErrDeadlock, err)
		default:
			return err
		}
	}
	for i, iters := range sc.Segments {
		if req := sc.Resizes[i]; req != nil {
			if err := s.Resize(req); err != nil {
				return nil, fmt.Errorf("resize %v: %w", req, err)
			}
		}
		rep, err := s.Run(iters)
		if err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, deadlocked(err))
		}
		res.Reports = append(res.Reports, rep)
	}
	res.Values, err = s.ResultByVertex()
	if err != nil {
		return nil, fmt.Errorf("gather: %w", deadlocked(err))
	}
	return res, nil
}

// reference runs the scenario's graph and iteration count on one rank,
// synchronously, on the real clock, and gathers by vertex.
func reference(sc *Scenario) ([]float64, error) {
	s, err := session.New(context.Background(), sc.Graph, session.Config{
		Procs:     1,
		OrderName: sc.Cfg.OrderName,
		Kernel:    sc.Cfg.Kernel,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if _, err := s.Run(sc.Iters); err != nil {
		return nil, err
	}
	return s.ResultByVertex()
}

// checkInvariants verifies the harness's run-level properties.
func checkInvariants(sc *Scenario, res *Result, ref []float64) error {
	// Bit-equality against the fixed-world synchronous reference.
	if len(res.Values) != len(ref) {
		return fmt.Errorf("gathered %d values, reference has %d", len(res.Values), len(ref))
	}
	for i := range ref {
		if math.Float64bits(res.Values[i]) != math.Float64bits(ref[i]) {
			return fmt.Errorf("vertex %d: %v differs from reference %v (bit inequality)", i, res.Values[i], ref[i])
		}
	}

	// Element conservation: exactly N items per iteration, summed over
	// ranks, across every remap, rebind and epoch transition. A
	// recovery rolls the survivors back RollbackDepth iterations, and
	// those re-executed iterations are honestly recomputed work — the
	// dying rank's last partial segment was accounted before its gate —
	// so the target grows by N × Fields × depth per recovery.
	var items, iters, rollback int64
	prevEpoch := 0
	for si, rep := range res.Reports {
		iters += int64(rep.Iters)
		for _, u := range rep.Ranks {
			if u.Items < 0 || u.Compute < 0 || u.Comm < 0 {
				return fmt.Errorf("segment %d: negative usage %+v", si, u)
			}
			items += u.Items
		}
		// Accounting consistency within the report.
		if rep.Exec.Msgs > rep.Msgs {
			return fmt.Errorf("segment %d: executor msgs %d exceed world msgs %d", si, rep.Exec.Msgs, rep.Msgs)
		}
		if rep.Exec.Bytes > rep.Bytes {
			return fmt.Errorf("segment %d: executor bytes %d exceed world bytes %d", si, rep.Exec.Bytes, rep.Bytes)
		}
		// Inter-group traffic is a subset of world traffic, and flat
		// worlds must not attribute anything to a link they don't have.
		if rep.InterMsgs < 0 || rep.InterBytes < 0 {
			return fmt.Errorf("segment %d: negative inter-group counters %d msgs / %d bytes", si, rep.InterMsgs, rep.InterBytes)
		}
		if rep.InterMsgs > rep.Msgs || rep.InterBytes > rep.Bytes {
			return fmt.Errorf("segment %d: inter-group traffic %d/%d exceeds world traffic %d/%d",
				si, rep.InterMsgs, rep.InterBytes, rep.Msgs, rep.Bytes)
		}
		if !sc.Hierarchical && (rep.InterMsgs != 0 || rep.InterBytes != 0) {
			return fmt.Errorf("segment %d: flat world attributed %d msgs / %d bytes to an inter-group link",
				si, rep.InterMsgs, rep.InterBytes)
		}
		if rep.Exec.Overlapped > rep.Exec.Ops {
			return fmt.Errorf("segment %d: %d overlapped ops of %d total", si, rep.Exec.Overlapped, rep.Exec.Ops)
		}
		if rep.Exec.Pipelined > rep.Exec.Overlapped {
			return fmt.Errorf("segment %d: %d pipelined ops exceed %d overlapped (pipelined is a subset)",
				si, rep.Exec.Pipelined, rep.Exec.Overlapped)
		}
		if rep.Exec.Ops < 0 || rep.Exec.Msgs < 0 || rep.Exec.Bytes < 0 || rep.Exec.Idle < 0 || rep.Exec.Pipelined < 0 {
			return fmt.Errorf("segment %d: negative executor counters %+v", si, rep.Exec)
		}
		if !sc.Overlap && sc.Pipeline == 0 && rep.Exec.Overlapped != 0 {
			return fmt.Errorf("segment %d: synchronous run recorded %d overlapped ops", si, rep.Exec.Overlapped)
		}
		if sc.Pipeline == 0 && rep.Exec.Pipelined != 0 {
			return fmt.Errorf("segment %d: non-pipelined run recorded %d pipelined ops", si, rep.Exec.Pipelined)
		}
		if rep.Iters > 0 && rep.Wall <= 0 {
			return fmt.Errorf("segment %d: non-positive virtual wall %v for %d iters", si, rep.Wall, rep.Iters)
		}
		for _, ev := range rep.Checks {
			if ev.Iter%sc.Cfg.CheckEvery != 0 {
				return fmt.Errorf("segment %d: check at iteration %d, not a multiple of %d", si, ev.Iter, sc.Cfg.CheckEvery)
			}
			if ev.Decision.Remapped && ev.Decision.RemapTime < 0 {
				return fmt.Errorf("segment %d: negative remap time at iter %d", si, ev.Iter)
			}
		}
		for _, rec := range rep.Recoveries {
			if len(sc.Kills) == 0 {
				return fmt.Errorf("segment %d: recovery %+v with no kill scheduled", si, rec)
			}
			if rec.RollbackDepth < 0 || rec.RestoredIter < 0 || rec.Iter != rec.RestoredIter+rec.RollbackDepth {
				return fmt.Errorf("segment %d: inconsistent rollback accounting %+v", si, rec)
			}
			if rec.DetectLatency < 0 || rec.Duration < 0 || rec.RestoredBytes < 0 {
				return fmt.Errorf("segment %d: negative recovery accounting %+v", si, rec)
			}
			if len(rec.Dead) == 0 || len(rec.Active) == 0 {
				return fmt.Errorf("segment %d: recovery with empty dead or survivor set %+v", si, rec)
			}
			for _, d := range rec.Dead {
				if d == 0 {
					return fmt.Errorf("segment %d: coordinator in the dead set of a successful run %+v", si, rec)
				}
			}
			rollback += int64(rec.RollbackDepth)
		}
		for _, ev := range rep.Members {
			if ev.Epoch <= prevEpoch {
				return fmt.Errorf("segment %d: epoch went %d -> %d", si, prevEpoch, ev.Epoch)
			}
			prevEpoch = ev.Epoch
			if ev.MovedBytes < 0 || ev.Msgs < 0 {
				return fmt.Errorf("segment %d: negative migration accounting %+v", si, ev)
			}
			if ev.MovedBytes > 0 && ev.Msgs == 0 {
				return fmt.Errorf("segment %d: %d migration bytes in zero messages", si, ev.MovedBytes)
			}
			if len(ev.Active) == 0 {
				return fmt.Errorf("segment %d: empty active set committed", si)
			}
		}
	}
	if iters != int64(sc.Iters) {
		return fmt.Errorf("segments ran %d iterations, scenario has %d", iters, sc.Iters)
	}
	if want := int64(sc.Graph.N) * (iters + rollback) * int64(sc.Fields); items != want {
		return fmt.Errorf("element conservation violated: %d items computed, want %d (N=%d × (%d iters + %d rolled back) × %d fields)",
			items, want, sc.Graph.N, iters, rollback, sc.Fields)
	}
	return nil
}
