package sim

import (
	"fmt"
	"testing"
)

// multiJobSeeds is the fixed seed list CI runs in the sim-scenarios
// job (the `-run 'TestSim'` filter picks these up alongside the
// single-session sweep): seeded multi-tenant workloads on a shared
// pool, each checked for queueing, elastic reallocation and per-job
// bit-exactness against dedicated runs.
const multiJobSeeds = 4

func TestSimMultiJobSeeds(t *testing.T) {
	for seed := int64(0); seed < multiJobSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := RunMultiJob(seed)
			if err != nil {
				t.Fatal(err)
			}
			if n := len(res.Statuses); n != 1+len(res.Scenario.Burst) {
				t.Fatalf("%d final statuses for %d jobs", n, 1+len(res.Scenario.Burst))
			}
		})
	}
}

// TestSimMultiJobDiversity guards the workload generator: across the
// CI seed list the interesting spec features must all occur, or the
// harness silently stops covering what it was built to cover.
func TestSimMultiJobDiversity(t *testing.T) {
	kinds := map[string]int{}
	var multi, min2, work, orders, overlap int
	for seed := int64(0); seed < multiJobSeeds; seed++ {
		sc, err := GenerateMultiJob(seed)
		if err != nil {
			t.Fatal(err)
		}
		if got := 1 + len(sc.Burst); got < 8 || got > 12 {
			t.Errorf("seed %d: %d jobs, want 8..12", seed, got)
		}
		demand := sc.Hog.Ranks
		for _, sp := range sc.Burst {
			demand += sp.Ranks
		}
		if demand <= sc.Pool {
			t.Errorf("seed %d: demand %d does not exceed the pool %d", seed, demand, sc.Pool)
		}
		for k, n := range sc.Kinds {
			kinds[k] += n
		}
		if sc.HasMulti {
			multi++
		}
		if sc.HasMin2 {
			min2++
		}
		if sc.HasWork {
			work++
		}
		if sc.HasOrders {
			orders++
		}
		for _, sp := range sc.Burst {
			if sp.Overlap {
				overlap++
				break
			}
		}
	}
	for _, k := range []string{"honeycomb", "grid", "annulus", "random", "paper"} {
		if kinds[k] == 0 {
			t.Errorf("no %q graphs across the %d-seed list", k, multiJobSeeds)
		}
	}
	for name, n := range map[string]int{
		"multi-rank burst jobs": multi, "min_ranks >= 2": min2,
		"work amplification": work, "mixed orderings": orders,
		"overlap executors": overlap,
	} {
		if n == 0 {
			t.Errorf("no scenario in the %d-seed list exercises %s", multiJobSeeds, name)
		}
	}
}
