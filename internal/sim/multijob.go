// Multi-job scenarios: the jobsvc harness counterpart to the
// single-session fuzzer in sim.go. A seeded generator composes a
// worker pool, one pool-saturating "hog" job and a burst of smaller
// jobs whose total demand exceeds the pool, and RunMultiJob drives
// them through a jobsvc.Service on the simulated clock — queueing,
// admission control, elastic shrinks through the epoch protocol, and
// regrows all exercised on one shared runtime.
//
// The scenario is fully seed-derived; the schedule is not (job
// goroutines race on the wall clock even though every duration inside
// them is virtual), so unlike Run the harness does not pin
// byte-identical replays. What it checks instead are the invariants
// that must hold under every interleaving:
//
//   - Every job completes Done — no job is starved, lost or wedged by
//     the multiplexing.
//   - Every job's gathered result is bit-identical to the same spec
//     run alone in a dedicated fixed world of the granted size: the
//     shared mailboxes, concurrent sub-worlds and mid-run resizes
//     never perturb the numerics.
//   - Element conservation per job: N items per iteration summed over
//     ranks, across every scheduler-initiated resize.
//   - The burst actually contended: jobs queued, the scheduler shrank
//     the hog via the membership protocol, and the commits handed the
//     freed ranks to the queue.
//   - The pool drains: no busy ranks, no queue, consistent counters
//     once every job has finished.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"stance/internal/jobsvc"
	"stance/internal/session"
	"stance/internal/vtime"
)

// MultiJobScenario is one generated service workload, fully determined
// by its seed.
type MultiJobScenario struct {
	Seed int64
	Desc string
	// Pool is the worker pool size (always smaller than the summed
	// rank demand of the jobs).
	Pool int
	// Hog is the first submission: it wants the whole pool and runs
	// long enough (in virtual time and in scheduling work) that the
	// burst arrives while it holds everything.
	Hog jobsvc.Spec
	// Burst are the contending submissions, in submission order.
	Burst []jobsvc.Spec

	// Feature flags, for the diversity guard in tests.
	Kinds     map[string]int
	HasMulti  bool // some burst job wants >1 rank
	HasMin2   bool // some burst job insists on >=2 ranks
	HasWork   bool // some burst job amplifies kernel work
	HasOrders bool // burst jobs use more than one ordering
}

// MultiJobResult carries a completed service run.
type MultiJobResult struct {
	Scenario *MultiJobScenario
	// Statuses are the final job statuses, submission order (hog
	// first).
	Statuses []*jobsvc.Status
	// Metrics is the service snapshot after the pool drained.
	Metrics jobsvc.Metrics
}

// GenerateMultiJob derives a service workload from a seed. Same seed,
// same workload — pool size, every spec, every graph parameter.
func GenerateMultiJob(seed int64) (*MultiJobScenario, error) {
	rng := rand.New(rand.NewSource(seed))
	sc := &MultiJobScenario{Seed: seed, Kinds: map[string]int{}}

	sc.Pool = 3 + rng.Intn(2) // 3 or 4

	// The hog saturates the pool and keeps it saturated: thousands of
	// iterations with a short check period, so scheduler-initiated
	// shrinks commit quickly once the burst queues behind it.
	sc.Hog = jobsvc.Spec{
		Name:         "hog",
		Graph:        jobsvc.GraphSpec{Kind: "honeycomb", Rows: 6 + rng.Intn(3), Cols: 8 + rng.Intn(4)},
		Iters:        2000 + rng.Intn(1500),
		Ranks:        sc.Pool,
		MinRanks:     1,
		Order:        "rcb",
		CheckEvery:   5,
		ComputeCost:  time.Duration(100+rng.Intn(300)) * time.Microsecond,
		ReturnResult: true,
	}
	sc.Kinds["honeycomb"]++

	orders := map[string]bool{}
	nBurst := 7 + rng.Intn(5) // 7..11 -> 8..12 jobs total
	for i := 0; i < nBurst; i++ {
		sp := jobsvc.Spec{
			Name:         fmt.Sprintf("b%d", i+1),
			Iters:        30 + rng.Intn(70),
			Ranks:        1 + rng.Intn(sc.Pool),
			MinRanks:     1,
			Order:        orderNames[rng.Intn(len(orderNames))],
			CheckEvery:   5 * (1 + rng.Intn(2)),
			ComputeCost:  time.Duration(1+rng.Intn(50)) * time.Microsecond,
			ReturnResult: true,
		}
		switch rng.Intn(5) {
		case 0:
			sp.Graph = jobsvc.GraphSpec{Kind: "honeycomb", Rows: 4 + rng.Intn(4), Cols: 4 + rng.Intn(5)}
		case 1:
			sp.Graph = jobsvc.GraphSpec{
				Kind: "grid", Rows: 5 + rng.Intn(5), Cols: 5 + rng.Intn(5),
				Perturb: 0.2 * rng.Float64(), Seed: rng.Int63(),
			}
		case 2:
			sp.Graph = jobsvc.GraphSpec{Kind: "annulus", Rows: 3 + rng.Intn(3), Cols: 8 + rng.Intn(6)}
		case 3:
			sp.Graph = jobsvc.GraphSpec{
				Kind: "random", N: 40 + rng.Intn(40),
				Radius: 0.2 + 0.1*rng.Float64(), Seed: rng.Int63(),
			}
		default:
			sp.Graph = jobsvc.GraphSpec{Kind: "paper"}
		}
		if sp.Ranks >= 2 && rng.Intn(4) == 0 {
			sp.MinRanks = 2
			sc.HasMin2 = true
		}
		if rng.Intn(3) == 0 {
			sp.WorkRep = 2
			sc.HasWork = true
		}
		if rng.Intn(3) == 0 {
			sp.Overlap = true
		}
		sc.Kinds[sp.Graph.Kind]++
		orders[sp.Order] = true
		if sp.Ranks > 1 {
			sc.HasMulti = true
		}
		sc.Burst = append(sc.Burst, sp)
	}
	sc.HasOrders = len(orders) > 1

	demand := sc.Hog.Ranks
	for _, sp := range sc.Burst {
		demand += sp.Ranks
	}
	sc.Desc = fmt.Sprintf("seed=%d pool=%d jobs=%d demand=%d hog=%d×%v kinds=%v",
		seed, sc.Pool, 1+len(sc.Burst), demand, sc.Hog.Iters, sc.Hog.ComputeCost, sc.Kinds)
	return sc, nil
}

// RunMultiJob generates the workload for seed, runs it through a
// jobsvc.Service on a simulated clock, and checks every invariant. A
// violation names the seed and scenario, reproducible with
// RunMultiJob(seed) locally.
func RunMultiJob(seed int64) (*MultiJobResult, error) {
	sc, err := GenerateMultiJob(seed)
	if err != nil {
		return nil, err
	}
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("sim: %s: %s", sc.Desc, fmt.Sprintf(format, args...))
	}

	svc, err := jobsvc.New(jobsvc.Config{PoolRanks: sc.Pool, Clock: vtime.NewSim()})
	if err != nil {
		return nil, fail("service: %v", err)
	}
	defer svc.Close()

	// The hog goes in first and grabs the whole idle pool; the burst is
	// submitted only once it is running, so every burst job queues
	// behind a saturated pool and the scheduler must shrink the hog to
	// place them.
	hogSt, err := svc.Submit(sc.Hog)
	if err != nil {
		return nil, fail("submit hog: %v", err)
	}
	if err := waitFor(svc, hogSt.ID, func(st jobsvc.State) bool { return st == jobsvc.Running }, 30*time.Second); err != nil {
		return nil, fail("%v", err)
	}

	ids := []string{hogSt.ID}
	for _, sp := range sc.Burst {
		st, err := svc.Submit(sp)
		if err != nil {
			return nil, fail("submit %s: %v", sp.Name, err)
		}
		ids = append(ids, st.ID)
	}

	res := &MultiJobResult{Scenario: sc}
	for _, id := range ids {
		if err := waitFor(svc, id, jobsvc.State.Finished, 2*time.Minute); err != nil {
			return nil, fail("%v", err)
		}
		st, err := svc.Get(id)
		if err != nil {
			return nil, fail("get %s: %v", id, err)
		}
		res.Statuses = append(res.Statuses, st)
	}
	res.Metrics = svc.Metrics()

	if err := checkMultiJob(sc, res); err != nil {
		return nil, fail("%v", err)
	}
	return res, nil
}

// waitFor polls (on the wall clock — the poller is not a sim worker,
// so it never holds virtual time back) until the job satisfies ok.
func waitFor(svc *jobsvc.Service, id string, ok func(jobsvc.State) bool, within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		st, err := svc.Get(id)
		if err != nil {
			return err
		}
		if ok(st.State) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in state %q after %v (error %q)", id, st.State, within, st.Error)
		}
		time.Sleep(time.Millisecond)
	}
}

// dedicatedReference runs the spec alone in a fixed world of the given
// size — the ground truth a pool-multiplexed job must match bit for
// bit. ComputeCost is dropped: it charges the clock, never the
// numbers, and the reference runs on the real clock.
func dedicatedReference(spec jobsvc.Spec, procs int) ([]float64, error) {
	g, err := spec.Graph.Build()
	if err != nil {
		return nil, err
	}
	s, err := session.New(context.Background(), g, session.Config{
		Procs:      procs,
		OrderName:  spec.Order,
		CheckEvery: spec.CheckEvery,
		WorkRep:    spec.WorkRep,
		Overlap:    spec.Overlap,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if _, err := s.Run(spec.Iters); err != nil {
		return nil, err
	}
	return s.ResultByVertex()
}

// checkMultiJob verifies the run-level properties of a drained
// service.
func checkMultiJob(sc *MultiJobScenario, res *MultiJobResult) error {
	specs := append([]jobsvc.Spec{sc.Hog}, sc.Burst...)
	for i, st := range res.Statuses {
		spec := specs[i]
		if st.State != jobsvc.Done {
			return fmt.Errorf("job %s (%s) ended %q: %s", st.ID, st.Name, st.State, st.Error)
		}
		if st.Report == nil {
			return fmt.Errorf("job %s finished without a report", st.ID)
		}
		if st.Report.Iters != spec.Iters {
			return fmt.Errorf("job %s report has %d iters, want %d", st.ID, st.Report.Iters, spec.Iters)
		}
		if len(st.Granted) < spec.MinRanks || len(st.Granted) > spec.Ranks {
			return fmt.Errorf("job %s granted %v, want between min %d and want %d",
				st.ID, st.Granted, spec.MinRanks, spec.Ranks)
		}
		if len(st.Report.Ranks) != len(st.Granted) {
			return fmt.Errorf("job %s report covers %d ranks, granted %d", st.ID, len(st.Report.Ranks), len(st.Granted))
		}

		// Element conservation across every scheduler-initiated resize.
		g, err := spec.Graph.Build()
		if err != nil {
			return err
		}
		var items int64
		for _, u := range st.Report.Ranks {
			items += u.Items
		}
		if want := int64(g.N) * int64(spec.Iters); items != want {
			return fmt.Errorf("job %s processed %d items, want %d (N=%d × %d iters) — ranks lost work across resizes",
				st.ID, items, want, g.N, spec.Iters)
		}

		// Bit-equality against a dedicated world of the granted size.
		ref, err := dedicatedReference(spec, len(st.Granted))
		if err != nil {
			return fmt.Errorf("job %s dedicated reference: %v", st.ID, err)
		}
		if len(st.Result) != len(ref) {
			return fmt.Errorf("job %s gathered %d values, reference has %d", st.ID, len(st.Result), len(ref))
		}
		for v := range ref {
			if math.Float64bits(st.Result[v]) != math.Float64bits(ref[v]) {
				return fmt.Errorf("job %s vertex %d: pooled %v != dedicated %v (bit inequality)",
					st.ID, v, st.Result[v], ref[v])
			}
		}
	}

	// The hog was elastically reallocated: shrunk for the burst (and
	// possibly regrown once the queue drained).
	if res.Statuses[0].Resizes == 0 {
		return fmt.Errorf("hog was never resized — the burst did not force a reallocation")
	}

	// Service-level accounting: every job done, the pool drained, and
	// the decision log shows the contention actually happened.
	m := res.Metrics
	if m.Done != len(specs) || m.Queued != 0 || m.Running != 0 || m.Failed != 0 || m.Canceled != 0 {
		return fmt.Errorf("counts done/queued/running/failed/canceled = %d/%d/%d/%d/%d, want %d/0/0/0/0",
			m.Done, m.Queued, m.Running, m.Failed, m.Canceled, len(specs))
	}
	if m.BusyRanks != 0 {
		return fmt.Errorf("pool not drained: %d ranks busy", m.BusyRanks)
	}
	if m.JobWall.N != len(specs) || m.JobWall.P50 > m.JobWall.P95 || m.JobWall.P95 > m.JobWall.P99 {
		return fmt.Errorf("job wall summary inconsistent: %+v", m.JobWall)
	}
	kinds := map[string]int{}
	for _, d := range m.Decisions {
		kinds[d.Kind]++
	}
	if kinds["grant"] != len(specs) {
		return fmt.Errorf("%d grants for %d jobs (decisions: %v)", kinds["grant"], len(specs), kinds)
	}
	if kinds["shrink"] == 0 || kinds["commit"] == 0 {
		return fmt.Errorf("no elastic reallocation (decisions: %v) — the burst should have shrunk the hog", kinds)
	}
	return nil
}
