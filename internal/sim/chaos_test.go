package sim

import (
	"fmt"
	"testing"
)

// chaosSeeds is the fixed chaos seed list CI runs as a required job.
// Every seed carries a forced kill schedule — including coordinator
// kills and buddy-pair kills, which are unrecoverable by construction
// — and RunChaos enforces the crash-stop contract on each: complete
// bit-exact to the reference, or fail loudly with a cause chain
// wrapping ckpt.ErrUnrecoverable. Never hang: a hang trips the
// virtual clock's stall watchdog and comes back as ErrDeadlock, which
// RunChaos rejects.
const chaosSeeds = 24

func TestSimChaosSeeds(t *testing.T) {
	for seed := int64(0); seed < chaosSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if _, err := RunChaos(seed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSimChaosScheduleDiversity guards the chaos generator: across the
// CI seed list both unrecoverable flavors and multi-kill recoverable
// schedules must actually occur, and every seed must schedule at least
// one kill.
func TestSimChaosScheduleDiversity(t *testing.T) {
	var unrecoverable, coordinator, pair, multi, recoverable int
	for seed := int64(0); seed < chaosSeeds; seed++ {
		cs, err := GenerateChaos(seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs.Kills) == 0 {
			t.Errorf("chaos seed %d schedules no kill: %s", seed, cs.Desc)
			continue
		}
		if cs.ExpectUnrecoverable {
			unrecoverable++
			if cs.Kills[0].Rank == 0 {
				coordinator++
			} else {
				pair++
			}
			continue
		}
		recoverable++
		if cs.MinRecoveries > 1 {
			multi++
		}
	}
	for name, n := range map[string]int{
		"recoverable kills":       recoverable,
		"unrecoverable schedules": unrecoverable,
		"coordinator kills":       coordinator,
		"buddy-pair kills":        pair,
		"sequential double kills": multi,
	} {
		if n == 0 {
			t.Errorf("no chaos seed in the %d-seed CI list exercises %s", chaosSeeds, name)
		}
	}
}
