package sim

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"stance/internal/comm"
	"stance/internal/mesh"
	"stance/internal/session"
	"stance/internal/vtime"
)

// simSeeds is the fixed seed list CI runs as a required job: 32
// scenarios spanning delay/latency models, heterogeneity traces,
// elastic churn, balancer policies and both executor modes. A failure
// prints the full scenario description, reproducible locally with
// sim.Run(seed).
const simSeeds = 32

func TestSimSeeds(t *testing.T) {
	for seed := int64(0); seed < simSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(seed)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Values) != res.Scenario.Graph.N {
				t.Fatalf("gathered %d values for %d vertices", len(res.Values), res.Scenario.Graph.N)
			}
		})
	}
}

// TestSimScenarioDiversity guards the generator itself: across the CI
// seed list, the interesting features must all actually occur —
// otherwise the fuzzer silently stops covering what it was built to
// cover.
func TestSimScenarioDiversity(t *testing.T) {
	var delay, balancer, elastic, overlap, traces, multiSeg, resize int
	var pipeline, pipelineMulti, syncMode int
	var cg, ckptOverhead, kills int
	var hier, hierBalanced int
	for seed := int64(0); seed < simSeeds; seed++ {
		sc, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Hierarchical {
			hier++
			if sc.HasBalancer {
				hierBalanced++
			}
		}
		if sc.Kernel == "cg" {
			cg++
		}
		if sc.Checkpoint && len(sc.Kills) == 0 {
			ckptOverhead++
		}
		if len(sc.Kills) > 0 {
			kills++
		}
		if sc.HasDelay {
			delay++
		}
		if sc.HasBalancer {
			balancer++
		}
		if sc.Elastic {
			elastic++
		}
		if sc.Overlap {
			overlap++
		}
		if sc.Pipeline > 0 {
			pipeline++
			if sc.Fields > 1 {
				// Several exchanges genuinely in flight at once.
				pipelineMulti++
			}
		} else if !sc.Overlap {
			syncMode++
		}
		if len(sc.Cfg.Env.Traces) > 0 {
			traces++
		}
		if len(sc.Segments) > 1 {
			multiSeg++
		}
		for _, r := range sc.Resizes {
			if r != nil {
				resize++
				break
			}
		}
	}
	for name, n := range map[string]int{
		"delay models": delay, "balancers": balancer, "elastic churn": elastic,
		"overlap executors": overlap, "capability traces": traces,
		"multi-segment runs": multiSeg, "explicit resizes": resize,
		"pipelined executors":         pipeline,
		"multi-field pipelined runs":  pipelineMulti,
		"plain synchronous executors": syncMode,
		"cg kernels":                  cg,
		"kill-free checkpointing":     ckptOverhead,
		"injected kills":              kills,
		"multi-group worlds":          hier,
		"balanced multi-group worlds": hierBalanced,
	} {
		if n == 0 {
			t.Errorf("no scenario in the %d-seed CI list exercises %s", simSeeds, name)
		}
	}
}

// replaySeed picks the first seed whose scenario composes the full
// stack — injected delay, balancer-driven remaps and elastic churn —
// so the determinism pin below covers everything at once.
func replaySeed(t *testing.T) int64 {
	for seed := int64(0); seed < 256; seed++ {
		sc, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		if sc.HasDelay && sc.HasBalancer && sc.Elastic {
			t.Logf("replay scenario: %s", sc.Desc)
			return seed
		}
	}
	t.Fatal("no seed under 256 composes delay + balancer + elastic churn")
	return 0
}

// TestSimSeedReplay is the determinism pin: the same seeded scenario —
// random graph, delay model, capability trace, elastic churn — run
// twice produces byte-identical gathered vectors and identical
// RunReport counters, timings included, because every duration is
// virtual.
func TestSimSeedReplay(t *testing.T) {
	seed := replaySeed(t)
	a, err := Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Values) != len(b.Values) {
		t.Fatalf("gathered %d vs %d values", len(a.Values), len(b.Values))
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			t.Fatalf("vertex %d differs between replays: %v vs %v", i, a.Values[i], b.Values[i])
		}
	}
	if len(a.Reports) != len(b.Reports) {
		t.Fatalf("%d vs %d reports", len(a.Reports), len(b.Reports))
	}
	for i := range a.Reports {
		if !reflect.DeepEqual(a.Reports[i], b.Reports[i]) {
			t.Errorf("segment %d reports differ between replays:\n%+v\nvs\n%+v", i, a.Reports[i], b.Reports[i])
		}
	}
}

// TestSimDeadlockWatchdog: a genuinely hung collective — one rank
// receiving a message nobody will ever send — trips the virtual
// clock's stall detector immediately instead of hanging the suite for
// a wall-clock timeout.
func TestSimDeadlockWatchdog(t *testing.T) {
	clk := vtime.NewSim()
	w, err := comm.Open("inproc", 2, comm.TransportOptions{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clk.SetStallHandler(cancel)
	done := make(chan error, 1)
	go func() {
		done <- w.SPMD(ctx, func(c *comm.Comm) error {
			if c.Rank() == 0 {
				_, err := c.Recv(1, 99) // rank 1 never sends
				return err
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("deadlocked section returned no error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stall detector did not fire; the deadlocked section hung")
	}
}

// TestVirtualSteadyStateAllocTripwire bounds per-iteration allocations
// of a virtual-time steady state on a free network: the executor data
// path is allocation-free (pinned exactly by TestExecutorZeroAlloc in
// internal/bench), the sim clock recycles its sleep timers, and what
// remains — context-cancel watchers on blocking receives, bookkeeping
// — must stay small and bounded. A regression that allocates per
// message or recompiles a plan per iteration trips this immediately.
// Not parallel: it reads global allocation counters.
func TestVirtualSteadyStateAllocTripwire(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	clk := vtime.NewSim()
	s, err := session.New(context.Background(), g, session.Config{
		Procs:       3,
		Clock:       clk,
		OrderName:   "rcb",
		ComputeCost: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(50); err != nil { // warm pools, plans, buffers
		t.Fatal(err)
	}
	const iters = 300
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := s.Run(iters); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	perIter := (m1.Mallocs - m0.Mallocs) / iters
	t.Logf("steady state: %d allocs/iteration across 3 ranks", perIter)
	if perIter > 300 {
		t.Errorf("virtual steady state allocates %d objects/iteration; the replay path should stay near-allocation-free", perIter)
	}
}
