// Package vtime abstracts the runtime's view of time behind a Clock,
// with two implementations: Real (the wall clock) and Sim, a
// deterministic discrete-event clock. Everything in the runtime that
// sleeps, stamps or measures — the network cost model's charges,
// delayed delivery, RecvTimeout deadlines, the solver's and balancer's
// phase timings — goes through the Clock, so an adaptive scenario that
// takes minutes of wall time on Real runs in milliseconds on Sim, and
// runs identically every time.
//
// # The simulated clock's contract
//
// A Sim serves a fixed set of registered workers (the SPMD rank
// goroutines; comm.SPMD registers them automatically). Virtual time
// only moves in one place: when every registered worker is blocked —
// either in Sleep or parked on an external condition it has announced
// through Block — the clock jumps to the earliest scheduled event and
// fires it. Workers therefore never observe time passing while they
// run: a worker's reading of Now is always the instant it last woke,
// which is what makes runs deterministic regardless of how the OS
// schedules the goroutines. If every worker is blocked and no event is
// scheduled, no virtual future can unblock anyone: that is a deadlock,
// and the stall handler fires instead of hanging the process.
package vtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is the runtime's source of time. Implementations must be safe
// for concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep pauses the calling goroutine for d (no-op for d <= 0). On a
	// Sim the caller must be a registered worker.
	Sleep(d time.Duration)
	// AfterFunc schedules f to run once d has elapsed. On a Sim, f runs
	// on the clock's dispatcher goroutine when virtual time reaches the
	// deadline; f must not block indefinitely.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle on a pending AfterFunc. Stop reports whether it
// prevented the function from running.
type Timer interface {
	Stop() bool
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return realTimer{time.AfterFunc(d, f)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// AsSim returns the Sim behind a Clock, or nil for any other
// implementation — the hook blocking primitives use to decide whether
// waiter accounting applies.
func AsSim(c Clock) *Sim {
	s, _ := c.(*Sim)
	return s
}

// simEpoch is the fixed instant a Sim starts at. Any constant works —
// only durations between instants are observable — but a fixed one
// keeps Now values themselves reproducible across runs.
var simEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// timer kinds.
const (
	timerSleep    = iota // wakes the goroutine parked in Sleep
	timerCallback        // runs a function on the dispatcher
)

// timer is one scheduled event.
type timer struct {
	due     time.Duration
	seq     uint64 // insertion order; ties on due fire in seq order (per-goroutine FIFO)
	kind    int
	fired   bool
	stopped bool
	fn      func()
	next    *timer // freelist link
}

// timerHeap is a min-heap on (due, seq).
type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Sim is the deterministic discrete-event clock.
type Sim struct {
	mu   sync.Mutex
	cond *sync.Cond

	now     time.Duration
	seq     uint64
	workers int // registered worker goroutines (Add/Done)
	blocked int // workers currently parked (Sleep or Block)
	timers  timerHeap

	// Fired callbacks awaiting execution. They run in fire order on a
	// transient runner goroutine; pending counts callbacks queued or
	// executing, and the clock never advances past an unexecuted one.
	ready   []func()
	pending int
	running bool

	free *timer // recycled timers, so steady-state Sleep allocates nothing

	onStall func()
	stalled bool
	// stallGen counts state mutations. A suspected stall is only
	// confirmed after a real-time grace period if no mutation happened
	// meanwhile — wakeups that travel outside the clock (a cancelled
	// context's AfterFunc goroutine calling Unblock) are in flight for
	// a moment during which the blocked counts look like a deadlock.
	stallGen uint64
}

// stallGrace is how long a suspected deadlock must persist, in real
// time, before the stall handler fires. It only delays the error path:
// asynchronous out-of-band wakeups (context cancellation) get this
// long to land and disprove the stall.
const stallGrace = 10 * time.Millisecond

// NewSim returns a simulated clock at the fixed epoch with no workers
// registered.
func NewSim() *Sim {
	s := &Sim{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Now implements Clock: the epoch plus the virtual time elapsed.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return simEpoch.Add(s.now)
}

// Add registers n worker goroutines. Register every worker of a
// cohort before any of them starts blocking (comm.SPMD does), or an
// early blocker could be mistaken for "everyone is blocked" and
// advance the clock prematurely.
func (s *Sim) Add(n int) {
	s.mu.Lock()
	s.workers += n
	s.stallGen++
	s.mu.Unlock()
}

// Done deregisters the calling worker. The remaining workers may now
// satisfy the all-blocked condition, so an advance is attempted.
func (s *Sim) Done() {
	s.mu.Lock()
	s.workers--
	s.stallGen++
	s.maybeAdvanceLocked()
	s.mu.Unlock()
}

// Sleep implements Clock: the worker parks until virtual time reaches
// now+d. If it was the last runnable worker, the clock advances.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	t := s.newTimerLocked(s.now+d, timerSleep, nil)
	heap.Push(&s.timers, t)
	s.stalled = false
	s.stallGen++
	s.blocked++
	s.maybeAdvanceLocked()
	for !t.fired {
		s.cond.Wait()
	}
	s.putTimerLocked(t)
	s.mu.Unlock()
}

// AfterFunc implements Clock. f runs on a dispatcher goroutine once
// virtual time reaches the deadline; the clock does not advance past a
// fired-but-unexecuted callback, so anything f unblocks (a message
// delivery waking a receiver) is accounted before the next event.
func (s *Sim) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	t := s.newTimerLocked(s.now+d, timerCallback, f)
	heap.Push(&s.timers, t)
	s.stalled = false
	s.stallGen++
	s.maybeAdvanceLocked()
	s.mu.Unlock()
	return simTimer{s: s, t: t}
}

type simTimer struct {
	s *Sim
	t *timer
}

// Stop prevents a pending callback from firing. The timer stays in
// the heap and is discarded when popped.
func (st simTimer) Stop() bool {
	st.s.mu.Lock()
	defer st.s.mu.Unlock()
	if st.t.fired || st.t.stopped {
		return false
	}
	st.t.stopped = true
	return true
}

// Block announces that the calling worker is parked on an external
// condition (a mailbox receive). Whoever satisfies the condition must
// call Unblock for it — transferring the "runnable" token atomically
// with the wakeup is what keeps the advance rule race-free.
func (s *Sim) Block() {
	s.mu.Lock()
	s.blocked++
	s.stallGen++
	s.maybeAdvanceLocked()
	s.mu.Unlock()
}

// Unblock retires n outstanding Block marks (no-op for n <= 0).
func (s *Sim) Unblock(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.blocked -= n
	s.stalled = false
	s.stallGen++
	s.mu.Unlock()
}

// SetStallHandler replaces the deadlock handler. The default panics
// with a diagnostic; a session-level harness typically cancels its
// context instead, which unblocks every receive with an error. The
// handler runs on its own goroutine and fires once per quiescent
// episode.
func (s *Sim) SetStallHandler(f func()) {
	s.mu.Lock()
	s.onStall = f
	s.mu.Unlock()
}

// maybeAdvanceLocked fires the earliest scheduled event if every
// registered worker is blocked and no fired callback is outstanding —
// the waiter-counting auto-advance rule. Firing makes someone runnable
// (a woken sleeper, or a callback the dispatcher will run), which
// breaks the condition until they block again.
func (s *Sim) maybeAdvanceLocked() {
	for s.workers > 0 && s.blocked >= s.workers && s.pending == 0 {
		var t *timer
		for len(s.timers) > 0 {
			c := heap.Pop(&s.timers).(*timer)
			if c.stopped {
				// Callback timers are never recycled: their simTimer
				// handle outlives them and may still be Stopped.
				continue
			}
			t = c
			break
		}
		if t == nil {
			s.stallLocked()
			return
		}
		if t.due > s.now {
			s.now = t.due
		}
		t.fired = true
		switch t.kind {
		case timerSleep:
			// The sleeper is runnable from this instant; it retires its
			// own blocked mark's worth here so the clock cannot advance
			// again before it actually wakes.
			s.blocked--
			s.cond.Broadcast()
		case timerCallback:
			s.ready = append(s.ready, t.fn)
			s.pending++
			if !s.running {
				s.running = true
				go s.runCallbacks()
			}
		}
	}
}

// runCallbacks drains fired callbacks in fire order. A single runner
// at a time preserves FIFO; it exits when the queue empties.
func (s *Sim) runCallbacks() {
	s.mu.Lock()
	for len(s.ready) > 0 {
		fn := s.ready[0]
		s.ready[0] = nil
		s.ready = s.ready[1:]
		s.mu.Unlock()
		fn()
		s.mu.Lock()
		s.pending--
		s.stallGen++
		s.maybeAdvanceLocked()
	}
	s.running = false
	s.mu.Unlock()
}

// stallLocked starts confirming a suspected virtual-time deadlock:
// every worker is blocked and no scheduled event can ever unblock one.
// Confirmation is deferred by stallGrace so an out-of-band wakeup
// already in flight (a context cancellation's AfterFunc goroutine,
// which the clock cannot see until it calls Unblock) can disprove it.
func (s *Sim) stallLocked() {
	if s.stalled {
		return
	}
	s.stalled = true
	go s.confirmStall(s.stallGen)
}

// confirmStall fires the stall handler if no clock-state mutation
// happened since the suspicion was raised; otherwise it clears the
// suspicion and re-evaluates, so a still-deadlocked clock re-arms with
// the new generation.
func (s *Sim) confirmStall(gen uint64) {
	time.Sleep(stallGrace)
	s.mu.Lock()
	if s.stallGen != gen {
		s.stalled = false
		s.maybeAdvanceLocked()
		s.mu.Unlock()
		return
	}
	msg := fmt.Sprintf("vtime: deadlock at virtual %v: all %d workers blocked with no scheduled event",
		s.now, s.workers)
	h := s.onStall
	s.mu.Unlock()
	if h != nil {
		h()
		return
	}
	panic(msg)
}

// newTimerLocked takes a timer from the freelist or allocates one.
func (s *Sim) newTimerLocked(due time.Duration, kind int, fn func()) *timer {
	t := s.free
	if t == nil {
		t = &timer{}
	} else {
		s.free = t.next
	}
	s.seq++
	*t = timer{due: due, seq: s.seq, kind: kind, fn: fn}
	return t
}

// putTimerLocked recycles a popped timer.
func (s *Sim) putTimerLocked(t *timer) {
	*t = timer{next: s.free}
	s.free = t
}
