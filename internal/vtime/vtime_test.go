package vtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSimSleepAdvances: with every worker asleep, the clock jumps to
// each due instant in order; every worker observes exactly its own
// sleep total, regardless of interleaving.
func TestSimSleepAdvances(t *testing.T) {
	s := NewSim()
	start := s.Now()
	const workers = 4
	s.Add(workers)
	var wg sync.WaitGroup
	elapsed := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer s.Done()
			for i := 0; i < 10; i++ {
				s.Sleep(time.Duration(w+1) * time.Millisecond)
			}
			elapsed[w] = s.Now().Sub(start)
		}(w)
	}
	wg.Wait()
	for w, d := range elapsed {
		want := 10 * time.Duration(w+1) * time.Millisecond
		if d != want {
			t.Errorf("worker %d observed %v, want exactly %v", w, d, want)
		}
	}
	if now := s.Now().Sub(start); now != 40*time.Millisecond {
		t.Errorf("final virtual time %v, want 40ms (the slowest worker)", now)
	}
}

// TestSimNoRealTime: an hour of virtual sleeping completes in well
// under a second of wall time.
func TestSimNoRealTime(t *testing.T) {
	s := NewSim()
	s.Add(1)
	wall := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer s.Done()
		s.Sleep(time.Hour)
	}()
	<-done
	if d := time.Since(wall); d > 5*time.Second {
		t.Fatalf("1h virtual sleep took %v of wall time", d)
	}
	if got := s.Now().Sub(simEpoch); got != time.Hour {
		t.Fatalf("virtual time advanced %v, want 1h", got)
	}
}

// TestSimAfterFuncOrder: callbacks fire in deadline order, with ties
// broken by scheduling order, and only when the workers block.
func TestSimAfterFuncOrder(t *testing.T) {
	s := NewSim()
	var mu sync.Mutex
	var order []int
	record := func(id int) func() {
		return func() { mu.Lock(); order = append(order, id); mu.Unlock() }
	}
	s.Add(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer s.Done()
		s.AfterFunc(3*time.Millisecond, record(3))
		s.AfterFunc(1*time.Millisecond, record(1))
		s.AfterFunc(3*time.Millisecond, record(4)) // same due as 3: scheduled later, fires later
		s.AfterFunc(2*time.Millisecond, record(2))
		s.Sleep(10 * time.Millisecond)
	}()
	<-done
	mu.Lock()
	defer mu.Unlock()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestSimAfterFuncStop: a stopped timer never fires and Stop reports
// whether it was in time.
func TestSimAfterFuncStop(t *testing.T) {
	s := NewSim()
	var fired atomic.Int32
	s.Add(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer s.Done()
		tm := s.AfterFunc(time.Millisecond, func() { fired.Add(1) })
		if !tm.Stop() {
			t.Error("Stop before the deadline reported false")
		}
		if tm.Stop() {
			t.Error("second Stop reported true")
		}
		s.Sleep(5 * time.Millisecond)
	}()
	<-done
	if n := fired.Load(); n != 0 {
		t.Errorf("stopped timer fired %d times", n)
	}
}

// TestSimBlockUnblock: a worker parked via Block does not stop the
// clock from serving the other's sleeps, and Unblock hands the token
// back.
func TestSimBlockUnblock(t *testing.T) {
	s := NewSim()
	s.Add(2)
	var woke atomic.Bool
	release := make(chan struct{})
	unblocked := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // externally-parked worker
		defer wg.Done()
		defer s.Done()
		s.Block()
		<-release
		s.Unblock(1)
		woke.Store(true)
		close(unblocked)
	}()
	go func() { // sleeping worker; its sleeps must advance the clock
		defer wg.Done()
		s.Sleep(time.Millisecond)
		s.Sleep(time.Millisecond)
		close(release)
		// The parked worker's wake is external (a Go channel), which the
		// clock cannot see; hand the runnable token back before this
		// worker deregisters or the clock would report a stall.
		<-unblocked
		s.Done()
	}()
	wg.Wait()
	if !woke.Load() {
		t.Fatal("blocked worker never released")
	}
	if got := s.Now().Sub(simEpoch); got != 2*time.Millisecond {
		t.Fatalf("virtual time %v, want 2ms", got)
	}
}

// TestSimStallHandler: all workers blocked with no scheduled event is
// a virtual deadlock; the stall handler fires instead of hanging.
func TestSimStallHandler(t *testing.T) {
	s := NewSim()
	stalled := make(chan struct{})
	release := make(chan struct{})
	s.SetStallHandler(func() { close(stalled) })
	s.Add(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer s.Done()
		s.Block()
		<-release
		s.Unblock(1)
	}()
	select {
	case <-stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("stall handler never fired")
	}
	close(release)
	<-done
}

// TestRealClock smoke-tests the wall-clock implementation.
func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Now().Sub(t0) <= 0 {
		t.Error("real clock did not advance")
	}
	fired := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if AsSim(c) != nil {
		t.Error("AsSim(Real) is not nil")
	}
}
