package metrics

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestEfficiencyStaticUniform(t *testing.T) {
	// Two identical processors, perfect halving: E = 1.
	e, err := EfficiencyStatic(50, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(e, 1) {
		t.Errorf("E = %v, want 1", e)
	}
}

func TestEfficiencyStaticPaperTable4(t *testing.T) {
	// Paper Table 4 row "1,2": T=55.68 with E=0.88 given T(p1)=97.61.
	// Back out T(p2) and verify our formula reproduces the row: with
	// all five workstations roughly matching T(p1), E(5 ws, T=31.50)
	// ~= 0.62 as the paper reports.
	seq := []float64{97.61, 97.61, 97.61, 97.61, 97.61}
	e, err := EfficiencyStatic(31.50, seq)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0.60 || e > 0.64 {
		t.Errorf("E = %.3f, want ~0.62 (paper Table 4)", e)
	}
	e2, err := EfficiencyStatic(55.68, seq[:2])
	if err != nil {
		t.Fatal(err)
	}
	if e2 < 0.85 || e2 > 0.90 {
		t.Errorf("E(2) = %.3f, want ~0.88 (paper Table 4)", e2)
	}
}

func TestEfficiencyStaticHeterogeneous(t *testing.T) {
	// One processor twice as fast as the other; together they can do
	// 1/50 + 1/100 = 0.03 tasks per second. A run at the ideal 33.3s
	// has efficiency 1.
	e, err := EfficiencyStatic(100.0/3.0, []float64{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(e, 1) {
		t.Errorf("E = %v, want 1", e)
	}
}

func TestEfficiencyStaticErrors(t *testing.T) {
	if _, err := EfficiencyStatic(0, []float64{1}); err == nil {
		t.Error("tPar=0 accepted")
	}
	if _, err := EfficiencyStatic(1, nil); err == nil {
		t.Error("empty seq accepted")
	}
	if _, err := EfficiencyStatic(1, []float64{1, -1}); err == nil {
		t.Error("negative seq time accepted")
	}
}

func TestEfficiencyAdaptive(t *testing.T) {
	// If during the run each of 4 processors could have completed a
	// quarter of the task, E = 1.
	e, err := EfficiencyAdaptive([]float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(e, 1) {
		t.Errorf("E = %v, want 1", e)
	}
	// Overshooting capacity (idle time existed) lowers efficiency.
	e2, err := EfficiencyAdaptive([]float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(e2, 0.5) {
		t.Errorf("E = %v, want 0.5", e2)
	}
}

func TestEfficiencyAdaptiveErrors(t *testing.T) {
	if _, err := EfficiencyAdaptive(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := EfficiencyAdaptive([]float64{-0.1, 0.5}); err == nil {
		t.Error("negative accepted")
	}
	if _, err := EfficiencyAdaptive([]float64{0, 0}); err == nil {
		t.Error("zero-sum accepted")
	}
}

func TestFractionCompleted(t *testing.T) {
	f, err := FractionCompleted(25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f, 0.25) {
		t.Errorf("f = %v, want 0.25", f)
	}
	if _, err := FractionCompleted(1, 0); err == nil {
		t.Error("seqTime=0 accepted")
	}
	if _, err := FractionCompleted(-1, 10); err == nil {
		t.Error("negative elapsed accepted")
	}
}

func TestSpeedup(t *testing.T) {
	s, err := Speedup(100, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s, 4) {
		t.Errorf("speedup = %v, want 4", s)
	}
	if _, err := Speedup(0, 1); err == nil {
		t.Error("tSeq=0 accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) || s.Min != 2 || s.Max != 9 {
		t.Errorf("Summary = %+v", s)
	}
	// Sample SD of this classic dataset is ~2.138.
	if math.Abs(s.SD-2.13809) > 1e-4 {
		t.Errorf("SD = %v", s.SD)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty Summary = %+v", empty)
	}
	one := Summarize([]float64{3})
	if one.SD != 0 || one.Mean != 3 {
		t.Errorf("single Summary = %+v", one)
	}
}
