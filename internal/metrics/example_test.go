package metrics_test

import (
	"fmt"

	"stance/internal/metrics"
)

// The paper's Table 4, last row: all five workstations take 31.50 s on
// a task each could finish alone in 97.61 s.
func ExampleEfficiencyStatic() {
	seq := []float64{97.61, 97.61, 97.61, 97.61, 97.61}
	e, _ := metrics.EfficiencyStatic(31.50, seq)
	fmt.Printf("E = %.2f\n", e)
	// Output:
	// E = 0.62
}

// In an adaptive run, efficiency compares against what each processor
// could have completed with the resources it actually had (Section 4).
func ExampleEfficiencyAdaptive() {
	// Four processors; during the run each could have done 30% of the
	// task alone (some capacity idled at synchronization points).
	e, _ := metrics.EfficiencyAdaptive([]float64{0.3, 0.3, 0.3, 0.3})
	fmt.Printf("E = %.2f\n", e)
	// Output:
	// E = 0.83
}
