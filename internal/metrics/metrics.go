// Package metrics implements the performance measures of paper
// Section 4: efficiency definitions that make sense when processors
// are nonuniform (different speeds) or adaptive (speeds change during
// the run), where classic speedup over "p processors" is meaningless.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// EfficiencyStatic is the paper's nonuniform-environment efficiency:
//
//	E(p1..pn) = (1/Tpar) / sum_i (1/T(pi))
//
// where Tpar is the parallel completion time and seqTimes[i] = T(pi)
// is the time processor i alone would need for the whole task.
// Collectively the processors can complete sum_i 1/T(pi) of the task
// per unit time, so E is achieved throughput over ideal throughput.
func EfficiencyStatic(tPar float64, seqTimes []float64) (float64, error) {
	if tPar <= 0 {
		return 0, fmt.Errorf("metrics: parallel time %g, want > 0", tPar)
	}
	if len(seqTimes) == 0 {
		return 0, fmt.Errorf("metrics: no sequential times")
	}
	ideal := 0.0
	for i, t := range seqTimes {
		if t <= 0 {
			return 0, fmt.Errorf("metrics: sequential time %g at %d, want > 0", t, i)
		}
		ideal += 1 / t
	}
	return (1 / tPar) / ideal, nil
}

// EfficiencyAdaptive is the paper's adaptive-environment efficiency:
//
//	E = 1 / sum_i f_i(T)
//
// where f_i(T) is the fraction of the whole task processor i could
// have completed during the parallel run's duration T, given the
// resources it actually had.
func EfficiencyAdaptive(fractions []float64) (float64, error) {
	if len(fractions) == 0 {
		return 0, fmt.Errorf("metrics: no fractions")
	}
	sum := 0.0
	for i, f := range fractions {
		if f < 0 {
			return 0, fmt.Errorf("metrics: negative fraction %g at %d", f, i)
		}
		sum += f
	}
	if sum <= 0 {
		return 0, fmt.Errorf("metrics: fractions sum to %g, want > 0", sum)
	}
	return 1 / sum, nil
}

// FractionCompleted returns f_i(T) for a processor whose solo
// completion time for the whole task is seqTime: running for elapsed
// time T it completes T/seqTime of the task.
func FractionCompleted(t, seqTime float64) (float64, error) {
	if seqTime <= 0 {
		return 0, fmt.Errorf("metrics: sequential time %g, want > 0", seqTime)
	}
	if t < 0 {
		return 0, fmt.Errorf("metrics: elapsed time %g, want >= 0", t)
	}
	return t / seqTime, nil
}

// Speedup is tSeq / tPar, using the fastest single processor as the
// sequential baseline.
func Speedup(tSeq, tPar float64) (float64, error) {
	if tSeq <= 0 || tPar <= 0 {
		return 0, fmt.Errorf("metrics: times must be positive (%g, %g)", tSeq, tPar)
	}
	return tSeq / tPar, nil
}

// Summary is basic descriptive statistics for repeated measurements.
// The JSON field names are stable: the stanced job service serves
// Summary values (e.g. job latency distributions) on /metrics.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	SD   float64 `json:"sd"`
	// P50, P95 and P99 are linear-interpolation percentiles (the
	// common "type 7" estimator: rank h = (n-1)q between the sorted
	// order statistics). Zero when N == 0.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Summarize computes summary statistics of xs. xs is not modified.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.SD = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.P50 = percentileSorted(sorted, 0.50)
	s.P95 = percentileSorted(sorted, 0.95)
	s.P99 = percentileSorted(sorted, 0.99)
	return s
}

// Percentile returns the q-th quantile of xs (0 <= q <= 1) by linear
// interpolation between the closest order statistics — the "type 7"
// estimator used by most statistics packages: rank h = (n-1)q, value
// x[floor(h)] + (h - floor(h)) * (x[floor(h)+1] - x[floor(h)]). xs is
// not modified.
func Percentile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: percentile of no data")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("metrics: quantile %g, want [0, 1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q), nil
}

// percentileSorted is Percentile over already-sorted non-empty data.
func percentileSorted(sorted []float64, q float64) float64 {
	h := float64(len(sorted)-1) * q
	lo := int(math.Floor(h))
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	return sorted[lo] + (h-float64(lo))*(sorted[lo+1]-sorted[lo])
}
