package metrics

import (
	"math/rand"
	"testing"
)

// TestPercentileKnownDistributions checks the linear-interpolation
// estimator against hand-computed values on distributions small enough
// to verify by eye.
func TestPercentileKnownDistributions(t *testing.T) {
	oneTo100 := make([]float64, 100)
	for i := range oneTo100 {
		oneTo100[i] = float64(i + 1)
	}
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"single/p50", []float64{7}, 0.50, 7},
		{"single/p99", []float64{7}, 0.99, 7},
		{"pair/p50", []float64{10, 20}, 0.50, 15},
		{"pair/p25", []float64{10, 20}, 0.25, 12.5},
		{"odd/p50", []float64{3, 1, 2}, 0.50, 2},
		{"even/p50", []float64{4, 1, 3, 2}, 0.50, 2.5},
		// 1..100: h = 99q, so p50 = x[49.5] = 50.5, p95 = x[94.05] =
		// 95.05, p99 = x[98.01] = 99.01, extremes are exact.
		{"1..100/p0", oneTo100, 0, 1},
		{"1..100/p50", oneTo100, 0.50, 50.5},
		{"1..100/p95", oneTo100, 0.95, 95.05},
		{"1..100/p99", oneTo100, 0.99, 99.01},
		{"1..100/p100", oneTo100, 1, 100},
		{"constant/p95", []float64{5, 5, 5, 5}, 0.95, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Percentile(tc.xs, tc.q)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(got, tc.want) {
				t.Errorf("Percentile(%v, %g) = %g, want %g", tc.xs, tc.q, got, tc.want)
			}
		})
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 0.5); err == nil {
		t.Error("Percentile of no data did not fail")
	}
	for _, q := range []float64{-0.1, 1.1} {
		if _, err := Percentile([]float64{1}, q); err == nil {
			t.Errorf("Percentile with q=%g did not fail", q)
		}
	}
}

// TestPercentileDoesNotMutate: Percentile and Summarize sort a copy,
// never the caller's slice.
func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

// TestSummarizePercentiles: the Summary fields agree with Percentile
// and behave sensibly on a large shuffled uniform sample.
func TestSummarizePercentiles(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..1000
	}
	rand.New(rand.NewSource(1)).Shuffle(len(xs), func(i, j int) {
		xs[i], xs[j] = xs[j], xs[i]
	})
	s := Summarize(xs)
	// h = 999q: p50 = x[499.5] = 500.5, p95 = x[949.05] = 950.05,
	// p99 = x[989.01] = 990.01.
	if !almost(s.P50, 500.5) || !almost(s.P95, 950.05) || !almost(s.P99, 990.01) {
		t.Errorf("percentiles = %g/%g/%g, want 500.5/950.05/990.01", s.P50, s.P95, s.P99)
	}
	for _, q := range []struct {
		got float64
		q   float64
	}{{s.P50, 0.50}, {s.P95, 0.95}, {s.P99, 0.99}} {
		want, err := Percentile(xs, q.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(q.got, want) {
			t.Errorf("Summary p%v = %g, Percentile = %g", q.q, q.got, want)
		}
	}
	zero := Summarize(nil)
	if zero.P50 != 0 || zero.P95 != 0 || zero.P99 != 0 {
		t.Errorf("empty summary has nonzero percentiles: %+v", zero)
	}
}
