package jobsvc

// PoolState is the scheduler's view of the pool at a decision point.
type PoolState struct {
	// PoolRanks is the fixed pool size.
	PoolRanks int
	// Free is the number of ranks in no job's active set.
	Free int
	// Running and Queued count jobs in those states.
	Running int
	Queued  int
}

// JobView is the scheduler's read-only view of one job.
type JobView struct {
	ID   string
	Name string
	// Want and Min are the spec's desired and minimum rank counts.
	Want int
	Min  int
	// Active is the job's current active rank count (0 while queued).
	Active int
	// ResizePending marks a job with an uncommitted resize in flight;
	// policies must not shrink or grow it again yet.
	ResizePending bool
}

// Policy decides rank allocation. Implementations must be pure
// functions of their arguments — they are called under the service
// mutex and must not block or call back into the service.
type Policy interface {
	// Grant decides how many ranks to give the next queued job. The
	// service clamps the answer to [0, min(job.Want, free)]; returning
	// less than job.Min keeps the job queued (and may trigger Shrink).
	Grant(next JobView, st PoolState) int
	// Shrink is consulted when the head-of-queue job cannot start for
	// lack of free ranks: need is the shortfall. It returns the new
	// active size per running-job ID; jobs not in the map keep their
	// ranks. The service only applies entries that actually shrink a
	// job and never below the job's Min.
	Shrink(running []JobView, need int, st PoolState) map[string]int
}

// FairShare is the default policy: every job — running or waiting —
// deserves an equal share of the pool. A new job gets its desired
// ranks when they are free, but never more than the fair share
// max(1, pool/(running+queued+1 new)); when the head of the queue
// cannot start, running jobs above their fair share are shrunk down
// toward it (never below their Min), oldest first, and only if the
// recovered ranks actually cover the shortfall — pointless churn helps
// nobody.
type FairShare struct{}

// Grant implements Policy.
func (FairShare) Grant(next JobView, st PoolState) int {
	jobs := st.Running + st.Queued
	if jobs <= 0 {
		jobs = 1
	}
	share := st.PoolRanks / jobs
	if share < 1 {
		share = 1
	}
	give := next.Want
	if give > share {
		give = share
	}
	if give < next.Min {
		give = next.Min
	}
	if give > st.Free {
		give = st.Free
	}
	return give
}

// Shrink implements Policy.
func (FairShare) Shrink(running []JobView, need int, st PoolState) map[string]int {
	jobs := st.Running + st.Queued
	if jobs <= 0 {
		jobs = 1
	}
	share := st.PoolRanks / jobs
	if share < 1 {
		share = 1
	}
	plan := make(map[string]int)
	recovered := 0
	for _, j := range running {
		if j.ResizePending {
			continue
		}
		target := share
		if target < j.Min {
			target = j.Min
		}
		if j.Active <= target {
			continue
		}
		give := j.Active - target
		if give > need-recovered {
			give = need - recovered
		}
		plan[j.ID] = j.Active - give
		recovered += give
		if recovered >= need {
			break
		}
	}
	if recovered < need {
		return nil
	}
	return plan
}
