package jobsvc

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs      submit a Spec, 202 + Status (429 on backpressure)
//	GET    /v1/jobs      list all jobs
//	GET    /v1/jobs/{id} one job's status
//	DELETE /v1/jobs/{id} cancel
//	GET    /metrics      pool, queue and scheduler accounting
//
// All bodies are JSON; errors come back as {"error": "..."} with the
// appropriate status code.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
