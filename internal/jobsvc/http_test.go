package jobsvc_test

// The HTTP API is tested end to end through the client package —
// httptest server on the real handler, wire format and all — which is
// also why this file lives in jobsvc_test: client imports jobsvc.

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stance/client"
	"stance/internal/ckpt"
	"stance/internal/jobsvc"
)

func newServer(t *testing.T, cfg jobsvc.Config) (*client.Client, *jobsvc.Service) {
	t.Helper()
	svc, err := jobsvc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return client.New(srv.URL), svc
}

// TestHTTPLifecycle walks a job through the whole API: submit, get,
// list, wait, metrics.
func TestHTTPLifecycle(t *testing.T) {
	c, _ := newServer(t, jobsvc.Config{PoolRanks: 2})
	ctx := context.Background()

	spec := client.Spec{
		Name:         "api-test",
		Graph:        client.GraphSpec{Kind: "honeycomb", Rows: 6, Cols: 8},
		Iters:        20,
		Ranks:        2,
		ReturnResult: true,
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Name != "api-test" {
		t.Fatalf("submit returned %+v", st)
	}

	final, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.Done {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	if final.Report == nil || final.Report.Iters != 20 {
		t.Fatalf("report over the wire: %+v", final.Report)
	}
	if len(final.Result) == 0 {
		t.Fatal("no result over the wire")
	}
	if len(final.Granted) != 2 {
		t.Fatalf("granted %v over the wire, want 2 ranks", final.Granted)
	}

	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Done != 1 || m.PoolRanks != 2 || m.JobWall.N != 1 {
		t.Fatalf("metrics over the wire: %+v", m)
	}
	if len(m.Decisions) == 0 {
		t.Fatal("no scheduler decisions over the wire")
	}
}

// TestHTTPRecoveryReport: a checkpointed job that loses a rank and
// recovers serves the recovery story over GET /v1/jobs/{id} — the
// wire status carries Report.Recoveries, not just the local struct.
func TestHTTPRecoveryReport(t *testing.T) {
	c, _ := newServer(t, jobsvc.Config{PoolRanks: 2})
	ctx := context.Background()

	spec := client.Spec{
		Name:       "phoenix-http",
		Graph:      client.GraphSpec{Kind: "honeycomb", Rows: 6, Cols: 8},
		Iters:      20,
		Ranks:      2,
		CheckEvery: 5,
		Checkpoint: &ckpt.Config{
			DetectTimeout: time.Second,
			Kills:         []ckpt.Kill{{Rank: 1, Iter: 10}},
		},
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.Done {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	if final.Report == nil || len(final.Report.Recoveries) != 1 {
		t.Fatalf("report over the wire: %+v, want one recovery", final.Report)
	}
	rec := final.Report.Recoveries[0]
	if len(rec.Dead) != 1 || rec.Dead[0] != 1 || rec.Iter != 10 {
		t.Fatalf("recovery over the wire: %+v, want rank 1 dead at iteration 10", rec)
	}
}

// TestHTTPErrors maps service errors onto status codes: bad spec 400,
// unknown job 404, double cancel 409, queue full 429.
func TestHTTPErrors(t *testing.T) {
	c, svc := newServer(t, jobsvc.Config{PoolRanks: 1, QueueDepth: 1, StartHeld: true})
	ctx := context.Background()

	if _, err := c.Submit(ctx, client.Spec{Graph: client.GraphSpec{Kind: "nope"}, Iters: 1}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("bad spec: %v, want HTTP 400", err)
	}
	if _, err := c.Job(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job: %v, want HTTP 404", err)
	}

	good := client.Spec{Graph: client.GraphSpec{Kind: "honeycomb", Rows: 3, Cols: 3}, Iters: 5}
	st, err := c.Submit(ctx, good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, good); err == nil || !strings.Contains(err.Error(), "429") {
		t.Errorf("full queue: %v, want HTTP 429", err)
	}

	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("double cancel: %v, want HTTP 409", err)
	}
	svc.Release()
}
