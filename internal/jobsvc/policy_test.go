package jobsvc

import (
	"reflect"
	"testing"
)

func TestFairShareGrant(t *testing.T) {
	cases := []struct {
		name string
		next JobView
		st   PoolState
		want int
	}{
		// Alone on the pool: take everything you asked for.
		{"alone", JobView{Want: 4, Min: 1}, PoolState{PoolRanks: 4, Free: 4, Queued: 1}, 4},
		// Contended: clamp to the fair share.
		{"share", JobView{Want: 4, Min: 1}, PoolState{PoolRanks: 4, Free: 4, Running: 1, Queued: 1}, 2},
		// Share rounds down to at least one.
		{"tiny-share", JobView{Want: 2, Min: 1}, PoolState{PoolRanks: 4, Free: 1, Running: 4, Queued: 4}, 1},
		// Min overrides the share but never the free count.
		{"min-over-share", JobView{Want: 3, Min: 3}, PoolState{PoolRanks: 4, Free: 3, Running: 1, Queued: 1}, 3},
		{"starved", JobView{Want: 2, Min: 2}, PoolState{PoolRanks: 4, Free: 0, Running: 2, Queued: 1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := (FairShare{}).Grant(tc.next, tc.st); got != tc.want {
				t.Errorf("Grant(%+v, %+v) = %d, want %d", tc.next, tc.st, got, tc.want)
			}
		})
	}
}

func TestFairShareShrink(t *testing.T) {
	// One hog on a 4-rank pool, one queued job needing 1 rank: shrink
	// the hog by exactly the shortfall (toward, not below, the share).
	plan := (FairShare{}).Shrink(
		[]JobView{{ID: "job-1", Want: 4, Min: 1, Active: 4}},
		1, PoolState{PoolRanks: 4, Running: 1, Queued: 1})
	if want := map[string]int{"job-1": 3}; !reflect.DeepEqual(plan, want) {
		t.Errorf("plan = %v, want %v", plan, want)
	}

	// Respect the victim's Min: a job pinned at its minimum cannot
	// cover the shortfall, so nothing is churned.
	plan = (FairShare{}).Shrink(
		[]JobView{{ID: "job-1", Want: 4, Min: 4, Active: 4}},
		1, PoolState{PoolRanks: 4, Running: 1, Queued: 1})
	if plan != nil {
		t.Errorf("plan = %v, want nil (victim is at its min)", plan)
	}

	// A resize already in flight exempts the job.
	plan = (FairShare{}).Shrink(
		[]JobView{{ID: "job-1", Want: 4, Min: 1, Active: 4, ResizePending: true}},
		1, PoolState{PoolRanks: 4, Running: 1, Queued: 1})
	if plan != nil {
		t.Errorf("plan = %v, want nil (resize pending)", plan)
	}

	// Two victims, big shortfall: take from both, oldest first.
	plan = (FairShare{}).Shrink(
		[]JobView{
			{ID: "job-1", Want: 4, Min: 1, Active: 4},
			{ID: "job-2", Want: 4, Min: 1, Active: 4},
		},
		4, PoolState{PoolRanks: 8, Running: 2, Queued: 2})
	if want := map[string]int{"job-1": 2, "job-2": 2}; !reflect.DeepEqual(plan, want) {
		t.Errorf("plan = %v, want %v", plan, want)
	}
}
