package jobsvc

import (
	"context"
	"time"

	"stance/internal/graph"
	"stance/internal/session"
	"stance/internal/vtime"
)

// State is a job's lifecycle position.
type State string

const (
	// Queued: admitted but not yet placed on the pool.
	Queued State = "queued"
	// Running: a sub-world is carved out and the session is live.
	Running State = "running"
	// Done: the session completed all iterations.
	Done State = "done"
	// Failed: the session errored (including deadline expiry).
	Failed State = "failed"
	// Canceled: the caller canceled the job before it completed.
	Canceled State = "canceled"
)

// Finished reports whether the state is terminal.
func (s State) Finished() bool {
	return s == Done || s == Failed || s == Canceled
}

// job is the service's record of one submission. All fields after the
// immutable header are guarded by the service mutex.
type job struct {
	id   string
	spec Spec
	g    *graph.Graph

	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	// granted are the pool ranks carved into the job's sub-world, in
	// sub-world rank order: granted[i] is sub-rank i's pool rank. Fixed
	// for the job's lifetime — elastic resizes move ranks in and out of
	// the active subset, never out of the grant.
	granted []int
	// activeSub are the currently active sub-world ranks (ascending,
	// always containing 0). The corresponding pool ranks are the ones
	// the job occupies.
	activeSub []int
	// resizePending marks a scheduler-requested resize that has not
	// committed yet; the scheduler won't stack another until it does.
	resizePending bool
	resizes       int

	ctx    context.Context
	cancel context.CancelCauseFunc
	timer  vtime.Timer

	sess   *session.Session
	report *session.RunReport
	result []float64
	err    error
}

// activePool returns the pool ranks the job currently occupies.
func (j *job) activePool() []int {
	out := make([]int, len(j.activeSub))
	for i, sr := range j.activeSub {
		out[i] = j.granted[sr]
	}
	return out
}

// Status is a job's externally visible state — the JSON served by
// GET /v1/jobs/{id}.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State State  `json:"state"`
	Spec  Spec   `json:"spec"`
	// Granted and Active are pool ranks: the sub-world the job was
	// placed on and the subset it currently occupies.
	Granted []int `json:"granted,omitempty"`
	Active  []int `json:"active,omitempty"`
	// Resizes counts committed membership transitions.
	Resizes int `json:"resizes"`
	// Submitted/Started/Finished are service-clock timestamps (the
	// zero time until reached).
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
	// Report is the session's consolidated accounting, present once the
	// job is done.
	Report *session.RunReport `json:"report,omitempty"`
	// Result is the solution vector in original vertex order, present
	// when the spec asked for it.
	Result []float64 `json:"result,omitempty"`
}

// statusLocked snapshots the job under the service mutex.
func (j *job) statusLocked() *Status {
	st := &Status{
		ID:        j.id,
		Name:      j.spec.Name,
		State:     j.state,
		Spec:      j.spec,
		Resizes:   j.resizes,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Report:    j.report,
		Result:    j.result,
	}
	if j.granted != nil {
		st.Granted = append([]int(nil), j.granted...)
	}
	if j.state == Running {
		st.Active = j.activePool()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
