package jobsvc

import (
	"strings"
	"testing"
	"time"

	"stance/internal/ckpt"
	"stance/internal/vtime"
)

// TestJobRecoversFromKill: a job whose rank dies mid-run recovers on
// the survivors, finishes Done with the recovery in its report, and
// its result is bit-identical to a dedicated run that never failed.
func TestJobRecoversFromKill(t *testing.T) {
	s, err := New(Config{PoolRanks: 3, Clock: vtime.NewSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := Spec{
		Name:         "phoenix",
		Graph:        GraphSpec{Kind: "honeycomb", Rows: 8, Cols: 10},
		Iters:        30,
		Ranks:        3,
		CheckEvery:   5,
		ComputeCost:  50 * time.Microsecond,
		ReturnResult: true,
		Checkpoint: &ckpt.Config{
			DetectTimeout: time.Second,
			Kills:         []ckpt.Kill{{Rank: 2, Iter: 10}},
		},
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, State.Finished, 10*time.Second)
	if final.State != Done {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	if final.Report == nil || len(final.Report.Recoveries) != 1 {
		t.Fatalf("report %+v, want exactly one recovery", final.Report)
	}
	rec := final.Report.Recoveries[0]
	if len(rec.Dead) != 1 || rec.Dead[0] != 2 || rec.Iter != 10 {
		t.Fatalf("recovery %+v, want rank 2 dead at iteration 10", rec)
	}
	requireBitExact(t, st.ID, final.Result, dedicatedResult(t, spec, len(final.Granted)))
}

// TestUnrecoverableJobFailsAndFreesPool: a job that dies
// unrecoverably (its coordinator is killed) must end Failed with the
// cause in its status — not hang its grant — and the freed ranks must
// immediately serve the next job.
func TestUnrecoverableJobFailsAndFreesPool(t *testing.T) {
	s, err := New(Config{PoolRanks: 2, Clock: vtime.NewSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	doomed := Spec{
		Name:        "doomed",
		Graph:       GraphSpec{Kind: "honeycomb", Rows: 6, Cols: 8},
		Iters:       20,
		Ranks:       2,
		CheckEvery:  5,
		ComputeCost: 50 * time.Microsecond,
		Checkpoint: &ckpt.Config{
			DetectTimeout: time.Second,
			Kills:         []ckpt.Kill{{Rank: 0, Iter: 5}},
		},
	}
	st, err := s.Submit(doomed)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, State.Finished, 10*time.Second)
	if final.State != Failed {
		t.Fatalf("doomed job ended %q, want %q (error %q)", final.State, Failed, final.Error)
	}
	if !strings.Contains(final.Error, "unrecoverable") {
		t.Fatalf("failure cause %q does not name the unrecoverable crash", final.Error)
	}

	// The grant must be back in the pool: a full-width job runs to
	// completion right after.
	next := Spec{
		Name:         "after",
		Graph:        GraphSpec{Kind: "honeycomb", Rows: 6, Cols: 8},
		Iters:        20,
		Ranks:        2,
		CheckEvery:   5,
		ComputeCost:  50 * time.Microsecond,
		ReturnResult: true,
	}
	st2, err := s.Submit(next)
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitState(t, s, st2.ID, State.Finished, 10*time.Second)
	if final2.State != Done {
		t.Fatalf("follow-up job ended %q: %s", final2.State, final2.Error)
	}
	if len(final2.Granted) != 2 {
		t.Fatalf("follow-up granted %v, want both pool ranks back", final2.Granted)
	}
	requireBitExact(t, st2.ID, final2.Result, dedicatedResult(t, next, 2))
}

// TestKillBeyondGrantIsDropped: a kill naming a rank the scheduler
// never granted is a no-op, not a launch failure. A blocker job holds
// one pool rank so the victim job wants 3 but is granted 2, leaving
// its kill of sub-rank 2 pointing at a rank that never existed.
func TestKillBeyondGrantIsDropped(t *testing.T) {
	s, err := New(Config{PoolRanks: 3, Clock: vtime.NewSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocker := Spec{
		Name:        "blocker",
		Graph:       GraphSpec{Kind: "honeycomb", Rows: 6, Cols: 8},
		Iters:       50,
		Ranks:       1,
		ComputeCost: 50 * time.Microsecond,
	}
	if _, err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Graph:       GraphSpec{Kind: "honeycomb", Rows: 6, Cols: 8},
		Iters:       20,
		Ranks:       3, // wants 3; the blocker holds one, so granted 2
		MinRanks:    2,
		CheckEvery:  5,
		ComputeCost: 50 * time.Microsecond,
		Checkpoint: &ckpt.Config{
			DetectTimeout: time.Second,
			Kills:         []ckpt.Kill{{Rank: 2, Iter: 5}},
		},
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, State.Finished, 10*time.Second)
	if final.State != Done {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	if len(final.Granted) != 2 {
		t.Fatalf("granted %v, want 2 ranks with the blocker holding the third", final.Granted)
	}
	if final.Report == nil || len(final.Report.Recoveries) != 0 {
		t.Fatalf("report %+v, want no recoveries (the killed rank was never granted)", final.Report)
	}
}
