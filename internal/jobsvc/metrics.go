package jobsvc

import (
	"time"

	"stance/internal/comm"
	"stance/internal/metrics"
)

// maxDecisions bounds the scheduler decision log served on /metrics;
// older entries roll off.
const maxDecisions = 256

// Decision is one scheduler log entry: what the scheduler did and to
// whom. Kind is "queue", "grant", "shrink", "grow", "commit", "done",
// "failed", "canceled", "cancel" or "deadline".
type Decision struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	Job  string    `json:"job"`
	// Ranks are the pool ranks the decision touched (granted, released
	// or reserved), when any.
	Ranks  []int  `json:"ranks,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// recordLocked appends a decision under the service mutex.
func (s *Service) recordLocked(kind, jobID string, ranks []int, detail string) {
	s.decSeq++
	s.decisions = append(s.decisions, Decision{
		Seq:    s.decSeq,
		Time:   s.clock.Now(),
		Kind:   kind,
		Job:    jobID,
		Ranks:  append([]int(nil), ranks...),
		Detail: detail,
	})
	if len(s.decisions) > maxDecisions {
		s.decisions = s.decisions[len(s.decisions)-maxDecisions:]
	}
}

// Metrics is the service-wide accounting served on /metrics.
type Metrics struct {
	// Pool occupancy at the time of the call.
	PoolRanks   int     `json:"pool_ranks"`
	BusyRanks   int     `json:"busy_ranks"`
	FreeRanks   int     `json:"free_ranks"`
	Utilization float64 `json:"utilization"`
	// Job counts by state, plus the all-time total.
	Submitted int `json:"submitted"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	// QueueDepth is the admission queue bound (Queued ==
	// QueueDepth means Submit is returning ErrQueueFull).
	QueueDepth int `json:"queue_depth"`
	// JobWall summarizes finished jobs' submit-to-completion times in
	// seconds, with p50/p95/p99.
	JobWall metrics.Summary `json:"job_wall_s"`
	// PoolMsgs and PoolBytes are the pool world's lifetime traffic.
	PoolMsgs  int64 `json:"pool_msgs"`
	PoolBytes int64 `json:"pool_bytes"`
	// Transport is the pool world's wire-level counters (frames,
	// flushes, heartbeats, backpressure stalls); nil on transports
	// without a socket mesh, such as inproc.
	Transport *comm.TransportStats `json:"transport,omitempty"`
	// Decisions is the scheduler's recent decision log, oldest first.
	Decisions []Decision `json:"decisions"`
}

// Metrics snapshots the service.
func (s *Service) Metrics() Metrics {
	msgs, bytes := s.pool.Stats()
	var tr *comm.TransportStats
	if ts, ok := s.pool.TransportStats(); ok {
		tr = &ts
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		PoolRanks:   s.cfg.PoolRanks,
		BusyRanks:   len(s.busy),
		FreeRanks:   s.cfg.PoolRanks - len(s.busy),
		Utilization: float64(len(s.busy)) / float64(s.cfg.PoolRanks),
		Submitted:   s.seq,
		Queued:      s.counts[Queued],
		Running:     s.counts[Running],
		Done:        s.counts[Done],
		Failed:      s.counts[Failed],
		Canceled:    s.counts[Canceled],
		QueueDepth:  s.cfg.QueueDepth,
		JobWall:     metrics.Summarize(s.latencies),
		PoolMsgs:    msgs,
		PoolBytes:   bytes,
		Transport:   tr,
		Decisions:   append([]Decision(nil), s.decisions...),
	}
	return m
}
