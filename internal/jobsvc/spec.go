// Package jobsvc is the stanced job service: a long-lived server that
// owns a fixed pool of worker ranks and runs many independent
// computations ("jobs") on it concurrently. Each job gets a sub-world
// carved out of the shared pool (comm.Sub endpoints wrapped as a
// world) and a session of its own; a scheduler with admission control
// queues jobs the pool cannot place yet and uses the elastic
// membership protocol to shrink running jobs and grant the freed ranks
// to queued ones. Disjoint active sets keep the concurrent sessions'
// traffic isolated on the shared mailboxes, so every job computes
// exactly what it would have computed alone in a dedicated world.
package jobsvc

import (
	"fmt"
	"time"

	"stance/internal/ckpt"
	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/session"
	"stance/internal/solver"
)

// GraphSpec names one of the built-in mesh generators and its
// parameters. Kind selects the generator; the other fields are read
// per kind and ignored otherwise.
type GraphSpec struct {
	// Kind is "honeycomb", "grid", "annulus", "random" or "paper".
	Kind string `json:"kind"`
	// Rows and Cols size the honeycomb (rows × cols of cells), the
	// triangulated grid (rows × cols of points) and the annulus (rows
	// rings × cols segments).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Perturb jitters the grid's interior points (grid only).
	Perturb float64 `json:"perturb,omitempty"`
	// N and Radius size the random geometric graph (random only).
	N      int     `json:"n,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	// Seed drives the grid perturbation and the random graph.
	Seed int64 `json:"seed,omitempty"`
}

// Build generates the graph.
func (gs GraphSpec) Build() (*graph.Graph, error) {
	switch gs.Kind {
	case "honeycomb":
		return mesh.Honeycomb(gs.Rows, gs.Cols)
	case "grid":
		return mesh.GridTriangulated(gs.Rows, gs.Cols, gs.Perturb, gs.Seed)
	case "annulus":
		return mesh.Annulus(gs.Rows, gs.Cols)
	case "random":
		return mesh.RandomGeometric(gs.N, gs.Radius, gs.Seed)
	case "paper":
		return mesh.Paper(), nil
	default:
		return nil, fmt.Errorf("jobsvc: unknown graph kind %q (want honeycomb, grid, annulus, random or paper)", gs.Kind)
	}
}

// Spec is a job submission: what to compute and how many ranks to
// compute it on. It is the JSON body of POST /v1/jobs and maps
// directly onto a session configuration; the zero value of every
// optional field means the session default.
type Spec struct {
	// Name is a caller-chosen label (optional, for humans).
	Name string `json:"name,omitempty"`
	// Graph is the computational mesh.
	Graph GraphSpec `json:"graph"`
	// Iters is the number of solver iterations to run. Required.
	Iters int `json:"iters"`
	// Ranks is the number of pool ranks the job wants. The scheduler
	// may grant fewer (never fewer than MinRanks) and may shrink the
	// job while it runs; results are identical either way. Default 1.
	Ranks int `json:"ranks,omitempty"`
	// MinRanks is the smallest world the job accepts, both at admission
	// and under elastic shrinking. Default 1.
	MinRanks int `json:"min_ranks,omitempty"`
	// Order names the Phase A ordering ("rcb", "hilbert", ...; default
	// "rcb").
	Order string `json:"order,omitempty"`
	// CheckEvery is the balance/membership boundary period (default
	// 10). It is also the granularity at which scheduler-initiated
	// resizes take effect.
	CheckEvery int `json:"check_every,omitempty"`
	// WorkRep amplifies the kernel work per element (default 1).
	WorkRep int `json:"work_rep,omitempty"`
	// Kernel names a built-in solver kernel ("" means the default).
	Kernel string `json:"kernel,omitempty"`
	// Overlap runs the split-phase executor (requires a kernel with a
	// boundary split; the default has one).
	Overlap bool `json:"overlap,omitempty"`
	// ComputeCost virtualizes compute: each element charges this many
	// nanoseconds to the clock per iteration instead of spinning.
	// Essential under a simulated clock, where real spinning would
	// take zero virtual time.
	ComputeCost time.Duration `json:"compute_cost_ns,omitempty"`
	// Balance enables the Phase D load balancer.
	Balance bool `json:"balance,omitempty"`
	// Timeout fails the job if it has not finished this long after
	// submission (0 means no deadline). Measured on the service clock,
	// so virtual on a simulated one.
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// ReturnResult gathers the solution vector (original vertex order)
	// into the job status when the job completes. Large for big
	// meshes; off by default.
	ReturnResult bool `json:"return_result,omitempty"`
	// Checkpoint enables crash-stop fault tolerance for the job: buddy
	// checkpoints at every check boundary, kill detection under
	// DetectTimeout, and survivor-side restart. Recovered jobs finish
	// with Report.Recoveries telling the story; an unrecoverable
	// failure fails the job with its cause, never a hung grant.
	// Injected kills naming ranks the scheduler did not grant are
	// dropped (the rank never existed).
	Checkpoint *ckpt.Config `json:"checkpoint,omitempty"`
}

// withDefaults returns the spec with zero optional fields resolved.
func (sp Spec) withDefaults() Spec {
	if sp.Ranks <= 0 {
		sp.Ranks = 1
	}
	if sp.MinRanks <= 0 {
		sp.MinRanks = 1
	}
	if sp.Order == "" {
		sp.Order = "rcb"
	}
	return sp
}

// validate checks a defaulted spec against the service limits.
func (sp Spec) validate(maxRanks int) error {
	if sp.Iters <= 0 {
		return fmt.Errorf("jobsvc: iters %d, want > 0", sp.Iters)
	}
	if sp.MinRanks > sp.Ranks {
		return fmt.Errorf("jobsvc: min_ranks %d > ranks %d", sp.MinRanks, sp.Ranks)
	}
	if sp.Ranks > maxRanks {
		return fmt.Errorf("jobsvc: ranks %d exceeds the per-job limit %d", sp.Ranks, maxRanks)
	}
	if sp.ComputeCost < 0 {
		return fmt.Errorf("jobsvc: negative compute cost %v", sp.ComputeCost)
	}
	if sp.Timeout < 0 {
		return fmt.Errorf("jobsvc: negative timeout %v", sp.Timeout)
	}
	if sp.Kernel != "" {
		if _, err := solver.KernelByName(sp.Kernel); err != nil {
			return fmt.Errorf("jobsvc: %w", err)
		}
	}
	if sp.Checkpoint != nil {
		if sp.Checkpoint.DetectTimeout < 0 {
			return fmt.Errorf("jobsvc: negative checkpoint detect timeout %v", sp.Checkpoint.DetectTimeout)
		}
		for _, k := range sp.Checkpoint.Kills {
			if k.Rank < 0 || k.Rank >= sp.Ranks {
				return fmt.Errorf("jobsvc: kill names rank %d of the %d requested", k.Rank, sp.Ranks)
			}
			if k.Iter < 0 {
				return fmt.Errorf("jobsvc: kill at negative iteration %d", k.Iter)
			}
		}
	}
	return nil
}

// sessionConfig maps the spec onto a session running on the job's
// sub-world. Worlds larger than one rank run elastic so the scheduler
// can resize them mid-run.
func (sp Spec) sessionConfig(world *comm.World) (session.Config, error) {
	cfg := session.Config{
		World:       world,
		OrderName:   sp.Order,
		CheckEvery:  sp.CheckEvery,
		WorkRep:     sp.WorkRep,
		Overlap:     sp.Overlap,
		ComputeCost: sp.ComputeCost,
		Elastic:     world.Size() > 1,
	}
	if sp.Kernel != "" {
		k, err := solver.KernelByName(sp.Kernel)
		if err != nil {
			return session.Config{}, err
		}
		cfg.Kernel = k
	}
	if sp.Balance {
		cfg.Balancer = &loadbal.Config{}
	}
	if sp.Checkpoint != nil {
		// The scheduler may have granted fewer ranks than requested;
		// kills naming sub-ranks beyond the grant are dropped — the
		// rank they would crash never existed.
		ck := *sp.Checkpoint
		ck.Kills = nil
		for _, k := range sp.Checkpoint.Kills {
			if k.Rank < world.Size() {
				ck.Kills = append(ck.Kills, k)
			}
		}
		cfg.Checkpoint = &ck
	}
	return cfg, nil
}
