package jobsvc

import (
	"context"
	"errors"
	"testing"
	"time"

	"stance/internal/session"
	"stance/internal/vtime"
)

// dedicatedResult runs the spec alone in a dedicated fixed world of
// the given size and returns the solution in original vertex order —
// the ground truth a pool-multiplexed job must match bit for bit.
// ComputeCost is dropped (it charges the clock, never the numbers) so
// the reference runs at full speed on the real clock.
func dedicatedResult(t *testing.T, spec Spec, procs int) []float64 {
	t.Helper()
	spec = spec.withDefaults()
	g, err := spec.Graph.Build()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := session.New(context.Background(), g, session.Config{
		Procs:      procs,
		OrderName:  spec.Order,
		CheckEvery: spec.CheckEvery,
		WorkRep:    spec.WorkRep,
		Overlap:    spec.Overlap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Run(spec.Iters); err != nil {
		t.Fatal(err)
	}
	out, err := sess.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// waitState polls until the job reaches a state for which ok returns
// true, failing the test after the deadline.
func waitState(t *testing.T, s *Service, id string, ok func(State) bool, within time.Duration) *Status {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if ok(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q (error %q)", id, st.State, st.Error)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

func requireBitExact(t *testing.T, id string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: result has %d values, dedicated run %d", id, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: vertex %d: pooled %v != dedicated %v (results must be bit-identical)",
				id, i, got[i], want[i])
		}
	}
}

// TestSingleJobBitExact: one job on a shared pool computes exactly
// what it would alone in a dedicated world of the same size.
func TestSingleJobBitExact(t *testing.T) {
	s, err := New(Config{PoolRanks: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := Spec{
		Graph:        GraphSpec{Kind: "honeycomb", Rows: 8, Cols: 10},
		Iters:        30,
		Ranks:        3,
		WorkRep:      2,
		ReturnResult: true,
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, State.Finished, 10*time.Second)
	if final.State != Done {
		t.Fatalf("job ended %q: %s", final.State, final.Error)
	}
	if len(final.Granted) != 3 {
		t.Fatalf("granted %v, want 3 ranks", final.Granted)
	}
	if final.Report == nil || final.Report.Iters != 30 {
		t.Fatalf("report %+v, want 30 iters", final.Report)
	}
	requireBitExact(t, st.ID, final.Result, dedicatedResult(t, spec, len(final.Granted)))
}

// TestStancedSmoke is the acceptance scenario: a pool of 4 ranks on a
// simulated clock takes a burst of 8 jobs whose total demand exceeds
// the pool. The first job grabs everything; the following submissions
// force queueing and at least one elastic reallocation (the scheduler
// shrinks the big job through the epoch protocol and hands the freed
// ranks to the queue). Every job must complete with a consistent
// report and results bit-identical to dedicated runs.
func TestStancedSmoke(t *testing.T) {
	s, err := New(Config{PoolRanks: 4, Clock: vtime.NewSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	big := Spec{
		Name:         "big",
		Graph:        GraphSpec{Kind: "honeycomb", Rows: 8, Cols: 10},
		Iters:        2500,
		Ranks:        4,
		CheckEvery:   5,
		ComputeCost:  200 * time.Microsecond,
		ReturnResult: true,
	}
	bigSt, err := s.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	// The pool is saturated the moment the big job launches.
	waitState(t, s, bigSt.ID, func(st State) bool { return st == Running }, 10*time.Second)

	burst := []Spec{
		{Name: "b1", Graph: GraphSpec{Kind: "honeycomb", Rows: 4, Cols: 6}, Iters: 40, Ranks: 2, ReturnResult: true},
		{Name: "b2", Graph: GraphSpec{Kind: "grid", Rows: 8, Cols: 8}, Iters: 60, Ranks: 1, ReturnResult: true},
		{Name: "b3", Graph: GraphSpec{Kind: "annulus", Rows: 4, Cols: 10}, Iters: 50, Ranks: 2, ReturnResult: true},
		{Name: "b4", Graph: GraphSpec{Kind: "random", N: 60, Radius: 0.25, Seed: 7}, Iters: 40, Ranks: 1, ReturnResult: true},
		{Name: "b5", Graph: GraphSpec{Kind: "honeycomb", Rows: 5, Cols: 5}, Iters: 80, Ranks: 2, WorkRep: 2, ReturnResult: true},
		{Name: "b6", Graph: GraphSpec{Kind: "grid", Rows: 6, Cols: 10}, Iters: 50, Ranks: 3, ReturnResult: true},
		{Name: "b7", Graph: GraphSpec{Kind: "paper"}, Iters: 40, Ranks: 2, ReturnResult: true},
	}
	ids := []string{bigSt.ID}
	specs := map[string]Spec{bigSt.ID: big}
	for _, sp := range burst {
		st, err := s.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		specs[st.ID] = sp
	}

	for _, id := range ids {
		final := waitState(t, s, id, State.Finished, 60*time.Second)
		if final.State != Done {
			t.Fatalf("job %s (%s) ended %q: %s", id, final.Name, final.State, final.Error)
		}
		spec := specs[id]
		if final.Report == nil {
			t.Fatalf("job %s finished without a report", id)
		}
		if final.Report.Iters != spec.Iters {
			t.Errorf("job %s report has %d iters, want %d", id, final.Report.Iters, spec.Iters)
		}
		if len(final.Report.Ranks) != len(final.Granted) {
			t.Errorf("job %s report covers %d ranks, granted %d", id, len(final.Report.Ranks), len(final.Granted))
		}
		g, err := spec.withDefaults().Graph.Build()
		if err != nil {
			t.Fatal(err)
		}
		var items int64
		for _, u := range final.Report.Ranks {
			items += u.Items
		}
		if want := int64(g.N) * int64(spec.Iters); items != want {
			t.Errorf("job %s processed %d items, want %d — ranks lost work across resizes", id, items, want)
		}
		requireBitExact(t, id, final.Result, dedicatedResult(t, spec, len(final.Granted)))
	}

	m := s.Metrics()
	if m.Done != len(ids) || m.Queued != 0 || m.Running != 0 {
		t.Errorf("metrics counts done/queued/running = %d/%d/%d, want %d/0/0", m.Done, m.Queued, m.Running, len(ids))
	}
	if m.BusyRanks != 0 || m.Utilization != 0 {
		t.Errorf("pool not drained: %d busy, utilization %g", m.BusyRanks, m.Utilization)
	}
	if m.JobWall.N != len(ids) || m.JobWall.P50 > m.JobWall.P95 || m.JobWall.P95 > m.JobWall.P99 {
		t.Errorf("job wall summary inconsistent: %+v", m.JobWall)
	}
	kinds := map[string]int{}
	for _, d := range m.Decisions {
		kinds[d.Kind]++
	}
	if kinds["shrink"] == 0 || kinds["commit"] == 0 {
		t.Errorf("no elastic reallocation happened (decisions: %v) — the burst should have shrunk the big job", kinds)
	}
	if kinds["grant"] != len(ids) {
		t.Errorf("%d grants for %d jobs (decisions: %v)", kinds["grant"], len(ids), kinds)
	}
	// The big job was resized at least once (shrunk for the burst,
	// possibly regrown after it).
	bigFinal, err := s.Get(bigSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bigFinal.Resizes == 0 {
		t.Error("big job was never resized")
	}
}

// TestQueueBackpressure: a held service accepts QueueDepth jobs and
// rejects the next with ErrQueueFull.
func TestQueueBackpressure(t *testing.T) {
	s, err := New(Config{PoolRanks: 2, QueueDepth: 2, StartHeld: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := Spec{Graph: GraphSpec{Kind: "honeycomb", Rows: 3, Cols: 3}, Iters: 5}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit returned %v, want ErrQueueFull", err)
	}
	s.Release()
	for _, st := range s.List() {
		final := waitState(t, s, st.ID, State.Finished, 10*time.Second)
		if final.State != Done {
			t.Errorf("job %s ended %q: %s", st.ID, final.State, final.Error)
		}
	}
}

// TestCancel covers both cancellation paths: a queued job leaves the
// queue without ever running; a running job unwinds mid-run.
func TestCancel(t *testing.T) {
	s, err := New(Config{PoolRanks: 1, StartHeld: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	queued, err := s.Submit(Spec{Graph: GraphSpec{Kind: "honeycomb", Rows: 3, Cols: 3}, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	st, err := s.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Canceled || !st.Started.IsZero() {
		t.Fatalf("queued job after cancel: state %q, started %v", st.State, st.Started)
	}
	if err := s.Cancel(queued.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("re-cancel returned %v, want ErrFinished", err)
	}

	running, err := s.Submit(Spec{Graph: GraphSpec{Kind: "honeycomb", Rows: 10, Cols: 12}, Iters: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	s.Release()
	waitState(t, s, running.ID, func(st State) bool { return st == Running }, 10*time.Second)
	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, running.ID, State.Finished, 10*time.Second)
	if final.State != Canceled {
		t.Fatalf("running job after cancel ended %q: %s", final.State, final.Error)
	}
	m := s.Metrics()
	if m.BusyRanks != 0 {
		t.Errorf("%d ranks still busy after cancellation", m.BusyRanks)
	}
}

// TestDeadline: on the simulated clock a job whose virtual runtime
// exceeds its timeout fails with the deadline error — compute cost is
// charged to the clock, so the deadline fires deterministically
// mid-run.
func TestDeadline(t *testing.T) {
	s, err := New(Config{PoolRanks: 1, Clock: vtime.NewSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Submit(Spec{
		Graph:       GraphSpec{Kind: "honeycomb", Rows: 4, Cols: 5},
		Iters:       1000,
		ComputeCost: time.Millisecond, // virtual seconds per iteration
		Timeout:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, State.Finished, 30*time.Second)
	if final.State != Failed || final.Error == "" {
		t.Fatalf("job ended %q (%s), want deadline failure", final.State, final.Error)
	}
}

// TestSubmitValidation rejects malformed specs up front.
func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{PoolRanks: 2, MaxRanksPerJob: 2, StartHeld: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	good := GraphSpec{Kind: "honeycomb", Rows: 3, Cols: 3}
	bad := []Spec{
		{Graph: good},                                              // no iters
		{Graph: good, Iters: 10, Ranks: 3},                         // over per-job cap
		{Graph: good, Iters: 10, Ranks: 1, MinRanks: 2},            // min > want
		{Graph: good, Iters: 10, Kernel: "no-such-kernel"},         // unknown kernel
		{Graph: GraphSpec{Kind: "nope"}, Iters: 10},                // unknown graph
		{Graph: good, Iters: 10, Timeout: -time.Second},            // negative timeout
		{Graph: good, Iters: 10, ComputeCost: -time.Second},        // negative cost
		{Graph: GraphSpec{Kind: "honeycomb", Rows: -1}, Iters: 10}, // generator error
	}
	for i, sp := range bad {
		if _, err := s.Submit(sp); err == nil {
			t.Errorf("bad spec %d was accepted", i)
		}
	}
	if n := len(s.List()); n != 0 {
		t.Errorf("%d jobs recorded from rejected submissions", n)
	}
}
