package jobsvc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"stance/internal/comm"
	"stance/internal/session"
	"stance/internal/vtime"
)

// Sentinel errors for the service API.
var (
	// ErrQueueFull is Submit's backpressure signal: the queue is at
	// QueueDepth. Callers retry later or shed load.
	ErrQueueFull = errors.New("jobsvc: queue full")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobsvc: no such job")
	// ErrFinished reports a Cancel on a job that already reached a
	// terminal state.
	ErrFinished = errors.New("jobsvc: job already finished")
)

// Cancellation causes, distinguishable through context.Cause.
var (
	errCanceledByUser = errors.New("jobsvc: canceled by caller")
	errDeadline       = errors.New("jobsvc: deadline exceeded")
	errShutdown       = errors.New("jobsvc: service shutting down")
)

// Config parameterizes a Service.
type Config struct {
	// PoolRanks is the fixed worker pool size. Required.
	PoolRanks int
	// Transport names the comm transport the pool runs on ("" means
	// "inproc").
	Transport string
	// Model is the network cost model for the pool (nil: free network).
	Model *comm.Model
	// Clock is the service time source (nil: the real clock). A
	// vtime.Sim runs the whole service — every job, every deadline —
	// in deterministic virtual time.
	Clock vtime.Clock
	// Tuning carries wire-transport options (batching, compression,
	// heartbeats) for the pool world. It is pool-scoped, not per-job:
	// every session multiplexes over the one shared socket mesh, so
	// there is exactly one flush loop and one liveness policy to tune.
	// Model and Clock must stay nil here — set them through the fields
	// above.
	Tuning *comm.TransportOptions
	// MaxConcurrent caps simultaneously running jobs (0: PoolRanks,
	// the natural bound since every job needs at least one rank).
	MaxConcurrent int
	// MaxRanksPerJob caps a single job's grant (0: PoolRanks).
	MaxRanksPerJob int
	// QueueDepth bounds the admission queue; Submit returns
	// ErrQueueFull beyond it (0: 64).
	QueueDepth int
	// Policy decides grants and shrinks (nil: FairShare).
	Policy Policy
	// StartHeld creates the service with scheduling paused: submitted
	// jobs queue up and nothing launches until Release. Tests use it to
	// make burst arrival order deterministic.
	StartHeld bool
}

// Service owns the pool world and multiplexes jobs onto it.
type Service struct {
	cfg   Config
	pool  *comm.World
	clock vtime.Clock

	mu       sync.Mutex
	held     bool
	closed   bool
	seq      int
	jobs     map[string]*job
	queue    []*job
	busy     map[int]string // pool rank -> occupying job ID
	nRunning int
	counts   map[State]int
	// latencies are finished jobs' submit-to-finish times in seconds,
	// for the /metrics latency summary.
	latencies []float64
	decisions []Decision
	decSeq    int

	wg sync.WaitGroup
}

// New opens the pool world and starts the (initially idle) service.
func New(cfg Config) (*Service, error) {
	if cfg.PoolRanks <= 0 {
		return nil, fmt.Errorf("jobsvc: pool of %d ranks, want > 0", cfg.PoolRanks)
	}
	if cfg.Clock == nil {
		cfg.Clock = vtime.Real{}
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = cfg.PoolRanks
	}
	if cfg.MaxRanksPerJob <= 0 || cfg.MaxRanksPerJob > cfg.PoolRanks {
		cfg.MaxRanksPerJob = cfg.PoolRanks
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Policy == nil {
		cfg.Policy = FairShare{}
	}
	opts := comm.TransportOptions{}
	if cfg.Tuning != nil {
		opts = *cfg.Tuning
		if opts.Model != nil {
			return nil, fmt.Errorf("jobsvc: set the network model through Config.Model, not Tuning.Model")
		}
		if opts.Clock != nil {
			return nil, fmt.Errorf("jobsvc: set the clock through Config.Clock, not Tuning.Clock")
		}
	}
	opts.Model, opts.Clock = cfg.Model, cfg.Clock
	pool, err := comm.Open(cfg.Transport, cfg.PoolRanks, opts)
	if err != nil {
		return nil, err
	}
	return &Service{
		cfg:    cfg,
		pool:   pool,
		clock:  cfg.Clock,
		held:   cfg.StartHeld,
		jobs:   make(map[string]*job),
		busy:   make(map[int]string),
		counts: make(map[State]int),
	}, nil
}

// Submit validates and enqueues a job, returning its initial status.
// The scheduler places it as soon as the policy and the pool allow;
// ErrQueueFull is the backpressure signal when the queue is at
// capacity.
func (s *Service) Submit(spec Spec) (*Status, error) {
	spec = spec.withDefaults()
	if err := spec.validate(s.cfg.MaxRanksPerJob); err != nil {
		return nil, err
	}
	g, err := spec.Graph.Build()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errShutdown
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		return nil, ErrQueueFull
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		spec:      spec,
		g:         g,
		state:     Queued,
		submitted: s.clock.Now(),
	}
	j.ctx, j.cancel = context.WithCancelCause(context.Background())
	if spec.Timeout > 0 {
		j.timer = s.clock.AfterFunc(spec.Timeout, func() { s.expire(j) })
	}
	s.jobs[j.id] = j
	s.queue = append(s.queue, j)
	s.counts[Queued]++
	s.recordLocked("queue", j.id, nil, fmt.Sprintf("wants %d ranks (min %d)", spec.Ranks, spec.MinRanks))
	s.scheduleLocked()
	return j.statusLocked(), nil
}

// Get returns a job's status.
func (s *Service) Get(id string) (*Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.statusLocked(), nil
}

// List returns every job's status, oldest first.
func (s *Service) List() []*Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		return jobSeq(ids[a]) < jobSeq(ids[b])
	})
	out := make([]*Status, len(ids))
	for i, id := range ids {
		out[i] = s.jobs[id].statusLocked()
	}
	return out
}

// jobSeq extracts the numeric suffix of "job-N" for ordering.
func jobSeq(id string) int {
	n := 0
	for i := len("job-"); i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return n
}

// Cancel stops a job: a queued job leaves the queue immediately, a
// running one has its context canceled and winds down at the next
// blocking point.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	switch j.state {
	case Queued:
		s.dequeueLocked(j)
		s.setStateLocked(j, Canceled)
		j.finished = s.clock.Now()
		j.err = errCanceledByUser
		s.stopTimerLocked(j)
		s.recordLocked("cancel", j.id, nil, "canceled while queued")
		s.scheduleLocked()
		s.mu.Unlock()
		return nil
	case Running:
		s.recordLocked("cancel", j.id, nil, "cancel requested")
		s.mu.Unlock()
		j.cancel(errCanceledByUser)
		return nil
	default:
		s.mu.Unlock()
		return ErrFinished
	}
}

// Release starts scheduling on a service created with StartHeld.
func (s *Service) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.held = false
	s.scheduleLocked()
}

// Close cancels every job, waits for them to wind down and closes the
// pool world.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for _, j := range s.queue {
		s.setStateLocked(j, Canceled)
		j.finished = s.clock.Now()
		j.err = errShutdown
		s.stopTimerLocked(j)
	}
	s.queue = nil
	var running []*job
	for _, j := range s.jobs {
		if j.state == Running {
			running = append(running, j)
		}
	}
	s.mu.Unlock()
	for _, j := range running {
		j.cancel(errShutdown)
	}
	s.wg.Wait()
	return s.pool.Close()
}

// expire is the deadline timer's callback.
func (s *Service) expire(j *job) {
	s.mu.Lock()
	switch j.state {
	case Queued:
		s.dequeueLocked(j)
		s.setStateLocked(j, Failed)
		j.finished = s.clock.Now()
		j.err = errDeadline
		s.recordLocked("deadline", j.id, nil, "expired while queued")
		s.scheduleLocked()
		s.mu.Unlock()
	case Running:
		s.recordLocked("deadline", j.id, nil, "expired while running")
		s.mu.Unlock()
		j.cancel(errDeadline)
	default:
		s.mu.Unlock()
	}
}

// dequeueLocked removes j from the admission queue.
func (s *Service) dequeueLocked(j *job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// setStateLocked moves j between states, maintaining the counters.
func (s *Service) setStateLocked(j *job, st State) {
	s.counts[j.state]--
	j.state = st
	s.counts[st]++
	if st == Running {
		s.nRunning++
	}
	if st.Finished() && j.started != (time.Time{}) {
		s.nRunning--
	}
}

func (s *Service) stopTimerLocked(j *job) {
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
}

// freeRanksLocked lists pool ranks in no job's active set, ascending.
func (s *Service) freeRanksLocked() []int {
	free := make([]int, 0, s.cfg.PoolRanks-len(s.busy))
	for r := 0; r < s.cfg.PoolRanks; r++ {
		if _, taken := s.busy[r]; !taken {
			free = append(free, r)
		}
	}
	return free
}

func (s *Service) poolStateLocked() PoolState {
	return PoolState{
		PoolRanks: s.cfg.PoolRanks,
		Free:      s.cfg.PoolRanks - len(s.busy),
		Running:   s.nRunning,
		Queued:    len(s.queue),
	}
}

func (j *job) view() JobView {
	return JobView{
		ID:            j.id,
		Name:          j.spec.Name,
		Want:          j.spec.Ranks,
		Min:           j.spec.MinRanks,
		Active:        len(j.activeSub),
		ResizePending: j.resizePending,
	}
}

// scheduleLocked is the scheduler: launch queued jobs while the policy
// grants them ranks; when the head of the queue is stuck, ask the
// policy to shrink running jobs toward it; when the queue is empty,
// grow shrunken jobs back toward their grant. Runs under the service
// mutex at every event that changes the pool (submit, membership
// commit, job completion, release).
func (s *Service) scheduleLocked() {
	if s.held || s.closed {
		return
	}
	for len(s.queue) > 0 && s.nRunning < s.cfg.MaxConcurrent {
		j := s.queue[0]
		free := s.freeRanksLocked()
		give := s.cfg.Policy.Grant(j.view(), s.poolStateLocked())
		if give > j.spec.Ranks {
			give = j.spec.Ranks
		}
		if give > len(free) {
			give = len(free)
		}
		if give >= j.spec.MinRanks && give > 0 {
			s.queue = s.queue[1:]
			s.launchLocked(j, free[:give])
			continue
		}
		// The head of the queue is stuck: recover ranks from running
		// jobs via the epoch protocol, then wait for the commits.
		s.requestShrinksLocked(j.spec.MinRanks - len(free))
		return
	}
	if len(s.queue) == 0 {
		s.regrowLocked()
	}
}

// launchLocked carves the sub-world ranks out of the pool and starts
// the job goroutine.
func (s *Service) launchLocked(j *job, ranks []int) {
	j.granted = append([]int(nil), ranks...)
	j.activeSub = make([]int, len(ranks))
	for i, r := range ranks {
		j.activeSub[i] = i
		s.busy[r] = j.id
	}
	s.setStateLocked(j, Running)
	j.started = s.clock.Now()
	s.recordLocked("grant", j.id, ranks, fmt.Sprintf("launch on %d of %d wanted ranks", len(ranks), j.spec.Ranks))
	s.wg.Add(1)
	go s.runJob(j)
}

// requestShrinksLocked asks the policy to free `need` ranks and issues
// the resizes. The freed ranks only become available at each job's
// next membership boundary; the commit callback re-runs the scheduler.
func (s *Service) requestShrinksLocked(need int) {
	if need <= 0 {
		return
	}
	var views []JobView
	victims := make(map[string]*job)
	for _, j := range s.jobs {
		if j.state == Running && j.sess != nil && len(j.granted) > 1 {
			views = append(views, j.view())
			victims[j.id] = j
		}
	}
	sort.Slice(views, func(a, b int) bool { return jobSeq(views[a].ID) < jobSeq(views[b].ID) })
	plan := s.cfg.Policy.Shrink(views, need, s.poolStateLocked())
	for id, newSize := range plan {
		j := victims[id]
		if j == nil || j.resizePending || newSize < j.spec.MinRanks || newSize < 1 || newSize >= len(j.activeSub) {
			continue
		}
		keep := append([]int(nil), j.activeSub[:newSize]...)
		if err := j.sess.Resize(keep); err != nil {
			s.recordLocked("shrink-failed", j.id, nil, err.Error())
			continue
		}
		j.resizePending = true
		released := make([]int, 0, len(j.activeSub)-newSize)
		for _, sr := range j.activeSub[newSize:] {
			released = append(released, j.granted[sr])
		}
		s.recordLocked("shrink", j.id, released, fmt.Sprintf("%d -> %d ranks for the queue", len(j.activeSub), newSize))
	}
}

// regrowLocked hands idle ranks back to shrunken running jobs, oldest
// first — the pool should not sit idle while a job limps along below
// its grant.
func (s *Service) regrowLocked() {
	var running []*job
	for _, j := range s.jobs {
		if j.state == Running && j.sess != nil && !j.resizePending && len(j.activeSub) < len(j.granted) {
			running = append(running, j)
		}
	}
	sort.Slice(running, func(a, b int) bool { return jobSeq(running[a].id) < jobSeq(running[b].id) })
	for _, j := range running {
		var want []int // sub-ranks to re-admit
		var ranks []int
		active := make(map[int]bool, len(j.activeSub))
		for _, sr := range j.activeSub {
			active[sr] = true
		}
		for sr, r := range j.granted {
			if active[sr] {
				continue
			}
			if _, taken := s.busy[r]; !taken {
				want = append(want, sr)
				ranks = append(ranks, r)
			}
		}
		if len(want) == 0 {
			continue
		}
		next := append(append([]int(nil), j.activeSub...), want...)
		sort.Ints(next)
		if err := j.sess.Resize(next); err != nil {
			s.recordLocked("grow-failed", j.id, nil, err.Error())
			continue
		}
		// Reserve immediately: the ranks are committed to this job even
		// though the admission only happens at its next boundary.
		for _, r := range ranks {
			s.busy[r] = j.id
		}
		j.resizePending = true
		s.recordLocked("grow", j.id, ranks, fmt.Sprintf("%d -> %d ranks", len(j.activeSub), len(next)))
	}
}

// runJob owns one job from launch to completion: carve the sub-world,
// build the session, run, gather, report. It runs on its own goroutine
// so the scheduler never blocks on a job.
func (s *Service) runJob(j *job) {
	defer s.wg.Done()
	rep, result, err := s.executeJob(j)
	s.finish(j, rep, result, err)
}

// executeJob is runJob without the bookkeeping.
func (s *Service) executeJob(j *job) (*session.RunReport, []float64, error) {
	subComms := make([]*comm.Comm, len(j.granted))
	for i, r := range j.granted {
		sc, err := s.pool.Comm(r).Sub(j.granted)
		if err != nil {
			return nil, nil, err
		}
		subComms[i] = sc
	}
	world := comm.WrapWorld(subComms, nil)
	cfg, err := j.spec.sessionConfig(world)
	if err != nil {
		return nil, nil, err
	}
	cfg.OnMembership = func(ev session.MembershipEvent) { s.onMembership(j, ev) }
	sess, err := session.New(j.ctx, j.g, cfg)
	if err != nil {
		return nil, nil, err
	}
	defer sess.Close()
	s.mu.Lock()
	j.sess = sess
	// A job queued while this session was still building could not
	// shrink it (no Resize target yet); retry now that it has one.
	s.scheduleLocked()
	s.mu.Unlock()
	rep, err := sess.Run(j.spec.Iters)
	if err != nil {
		return nil, nil, err
	}
	var result []float64
	if j.spec.ReturnResult {
		if result, err = sess.ResultByVertex(); err != nil {
			return rep, nil, err
		}
	}
	return rep, result, nil
}

// onMembership is the session's commit callback (rank 0, inside the
// job's SPMD section): fold the new active set into the pool
// accounting — a shrink's retired ranks become free here and only here
// — and re-run the scheduler, which may hand them straight to the head
// of the queue.
func (s *Service) onMembership(j *job, ev session.MembershipEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wasBusy := make(map[int]bool, len(j.activeSub))
	for _, r := range j.activePool() {
		wasBusy[r] = true
	}
	j.activeSub = append([]int(nil), ev.Active...)
	sort.Ints(j.activeSub)
	nowBusy := make(map[int]bool, len(j.activeSub))
	for _, r := range j.activePool() {
		nowBusy[r] = true
	}
	var freed []int
	for r := range wasBusy {
		if !nowBusy[r] {
			delete(s.busy, r)
			freed = append(freed, r)
		}
	}
	sort.Ints(freed)
	j.resizePending = false
	j.resizes++
	s.recordLocked("commit", j.id, freed,
		fmt.Sprintf("epoch %d: %d active", ev.Epoch, len(ev.Active)))
	s.scheduleLocked()
}

// finish retires a job: free its ranks, classify the outcome and give
// the scheduler the pool back.
func (s *Service) finish(j *job, rep *session.RunReport, result []float64, runErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for r, id := range s.busy {
		if id == j.id {
			delete(s.busy, r)
		}
	}
	j.resizePending = false
	j.finished = s.clock.Now()
	j.report = rep
	j.result = result
	s.stopTimerLocked(j)
	switch cause := context.Cause(j.ctx); {
	case runErr == nil:
		s.setStateLocked(j, Done)
		s.latencies = append(s.latencies, j.finished.Sub(j.submitted).Seconds())
		s.recordLocked("done", j.id, nil, fmt.Sprintf("%d iters, %d resizes", j.spec.Iters, j.resizes))
	case errors.Is(cause, errCanceledByUser):
		s.setStateLocked(j, Canceled)
		j.err = errCanceledByUser
		s.recordLocked("canceled", j.id, nil, "")
	case errors.Is(cause, errDeadline):
		s.setStateLocked(j, Failed)
		j.err = fmt.Errorf("%w after %v", errDeadline, j.spec.Timeout)
		s.recordLocked("failed", j.id, nil, j.err.Error())
	default:
		s.setStateLocked(j, Failed)
		j.err = runErr
		s.recordLocked("failed", j.id, nil, runErr.Error())
	}
	s.scheduleLocked()
}
