package translate

import (
	"errors"
	"math/rand"
	"testing"

	"stance/internal/partition"
)

func testLayout(t *testing.T) *partition.Layout {
	t.Helper()
	l, err := partition.New(100, []float64{0.27, 0.18, 0.34, 0.07, 0.14}, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestIntervalTableMatchesLayout(t *testing.T) {
	l := testLayout(t)
	tab := NewIntervalTable(l)
	for g := int64(0); g < l.N(); g++ {
		e, err := tab.Lookup(g)
		if err != nil {
			t.Fatal(err)
		}
		proc, local, err := l.Locate(g)
		if err != nil {
			t.Fatal(err)
		}
		if int(e.Proc) != proc || int64(e.Local) != local {
			t.Fatalf("Lookup(%d) = %+v, want (%d,%d)", g, e, proc, local)
		}
	}
	if _, err := tab.Lookup(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := tab.Lookup(100); err == nil {
		t.Error("past-end index accepted")
	}
}

func TestAllTablesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		p := rng.Intn(6) + 1
		n := int64(rng.Intn(300) + 1)
		w := make([]float64, p)
		for i := range w {
			w[i] = rng.Float64() + 0.01
		}
		arr := rng.Perm(p)
		l, err := partition.New(n, w, arr)
		if err != nil {
			t.Fatal(err)
		}
		interval := NewIntervalTable(l)
		replicated := NewReplicatedTable(l)
		shards := make([]*DistributedTable, p)
		for s := 0; s < p; s++ {
			shards[s], err = NewDistributedTable(l, p, s)
			if err != nil {
				t.Fatal(err)
			}
		}
		for g := int64(0); g < n; g++ {
			a, err := interval.Lookup(g)
			if err != nil {
				t.Fatal(err)
			}
			b, err := replicated.Lookup(g)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("interval %+v != replicated %+v at %d", a, b, g)
			}
			owner, err := shards[0].ShardOf(g)
			if err != nil {
				t.Fatal(err)
			}
			c, err := shards[owner].Lookup(g)
			if err != nil {
				t.Fatal(err)
			}
			if a != c {
				t.Fatalf("interval %+v != distributed %+v at %d", a, c, g)
			}
		}
	}
}

func TestDistributedTableRemote(t *testing.T) {
	l := testLayout(t)
	tab, err := NewDistributedTable(l, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 holds globals [0, 20); index 50 is remote.
	if _, err := tab.Lookup(50); !errors.Is(err, ErrRemote) {
		t.Errorf("remote lookup error = %v, want ErrRemote", err)
	}
	if _, err := tab.Lookup(5); err != nil {
		t.Errorf("local lookup failed: %v", err)
	}
	if _, err := tab.Lookup(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := tab.ShardOf(1000); err == nil {
		t.Error("out-of-range ShardOf accepted")
	}
}

func TestDistributedTableErrors(t *testing.T) {
	l := testLayout(t)
	if _, err := NewDistributedTable(l, 0, 0); err == nil {
		t.Error("shards=0 accepted")
	}
	if _, err := NewDistributedTable(l, 3, 3); err == nil {
		t.Error("shard out of range accepted")
	}
}

func TestDistributedTableUnevenShards(t *testing.T) {
	// 10 elements over 4 shards: block size 3, last shard holds 1.
	l, err := partition.NewUniform(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{3, 3, 3, 1}
	for s := 0; s < 4; s++ {
		tab, err := NewDistributedTable(l, 4, s)
		if err != nil {
			t.Fatal(err)
		}
		if got := int(tab.MemoryWords() / 2); got != sizes[s] {
			t.Errorf("shard %d holds %d entries, want %d", s, got, sizes[s])
		}
	}
}

func TestMemoryWordsScaling(t *testing.T) {
	// The paper's argument: interval table is O(p), replicated is O(n).
	l, err := partition.NewUniform(10000, 4)
	if err != nil {
		t.Fatal(err)
	}
	interval := NewIntervalTable(l).MemoryWords()
	replicated := NewReplicatedTable(l).MemoryWords()
	if interval >= 100 {
		t.Errorf("interval table uses %d words, want O(p)", interval)
	}
	if replicated != 20000 {
		t.Errorf("replicated table uses %d words, want 2n", replicated)
	}
	dist, err := NewDistributedTable(l, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist.MemoryWords() != 5000 {
		t.Errorf("distributed shard uses %d words, want 2n/p", dist.MemoryWords())
	}
}

func TestReplicatedTableBounds(t *testing.T) {
	l := testLayout(t)
	tab := NewReplicatedTable(l)
	if _, err := tab.Lookup(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := tab.Lookup(100); err == nil {
		t.Error("past-end accepted")
	}
}

func TestTableInterfaceCompliance(t *testing.T) {
	l := testLayout(t)
	var tables []Table
	tables = append(tables, NewIntervalTable(l), NewReplicatedTable(l))
	for _, tab := range tables {
		if tab.MemoryWords() <= 0 {
			t.Errorf("%T: non-positive memory", tab)
		}
		if _, err := tab.Lookup(0); err != nil {
			t.Errorf("%T: %v", tab, err)
		}
	}
}
