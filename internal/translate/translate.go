// Package translate implements the address-translation mechanisms of
// paper Section 3.2 (Figure 3). Dereferencing converts a global index
// into a (processor, local index) pair. Three schemes are provided:
//
//   - IntervalTable: the paper's contribution. After the 1-D locality
//     transform each processor owns one contiguous interval, so storing
//     the p+1 interval boundaries (replicated everywhere, O(p) memory)
//     is enough to dereference locally.
//   - ReplicatedTable: the classic CHAOS/PARTI scheme — a full
//     element-to-home table replicated on every processor. Fast but
//     O(n) memory per processor, which the paper rejects for large
//     data.
//   - DistributedTable: the full table block-distributed across
//     processors; dereferencing an element owned by another shard
//     requires communication (the request/reply protocol lives in the
//     inspector, package sched). This is the "Simple Strategy" baseline
//     of Table 3.
package translate

import (
	"fmt"

	"stance/internal/partition"
)

// Entry is a dereferenced address: the home processor and the local
// index there.
type Entry struct {
	Proc  int32
	Local int32
}

// Table dereferences global indices without communication.
type Table interface {
	// Lookup translates a global index.
	Lookup(global int64) (Entry, error)
	// MemoryWords reports the table's per-processor storage in
	// 32-bit words, the quantity the paper's memory argument is about.
	MemoryWords() int64
}

// IntervalTable dereferences through the layout's interval
// boundaries: binary search over p+1 starts.
type IntervalTable struct {
	layout *partition.Layout
}

// NewIntervalTable wraps a layout as a translation table.
func NewIntervalTable(l *partition.Layout) *IntervalTable {
	return &IntervalTable{layout: l}
}

// Lookup implements Table.
func (t *IntervalTable) Lookup(global int64) (Entry, error) {
	proc, local, err := t.layout.Locate(global)
	if err != nil {
		return Entry{}, err
	}
	return Entry{Proc: int32(proc), Local: int32(local)}, nil
}

// MemoryWords implements Table: p+1 interval starts (two words each,
// being 64-bit) plus the arrangement.
func (t *IntervalTable) MemoryWords() int64 {
	p := int64(t.layout.P())
	return 2*(p+1) + p
}

// ReplicatedTable stores every element's home explicitly.
type ReplicatedTable struct {
	entries []Entry
}

// NewReplicatedTable materializes the full table for a layout.
func NewReplicatedTable(l *partition.Layout) *ReplicatedTable {
	entries := make([]Entry, l.N())
	for proc := 0; proc < l.P(); proc++ {
		iv := l.Interval(proc)
		for g := iv.Lo; g < iv.Hi; g++ {
			entries[g] = Entry{Proc: int32(proc), Local: int32(g - iv.Lo)}
		}
	}
	return &ReplicatedTable{entries: entries}
}

// Lookup implements Table.
func (t *ReplicatedTable) Lookup(global int64) (Entry, error) {
	if global < 0 || global >= int64(len(t.entries)) {
		return Entry{}, fmt.Errorf("translate: index %d out of range [0,%d)", global, len(t.entries))
	}
	return t.entries[global], nil
}

// MemoryWords implements Table: two words per element.
func (t *ReplicatedTable) MemoryWords() int64 { return 2 * int64(len(t.entries)) }

// DistributedTable is one processor's shard of the full table,
// block-distributed by global index: shard s holds entries for
// globals [s*blockSize, (s+1)*blockSize). Lookups outside the local
// shard must be resolved by asking the owning shard (see
// sched.BuildSimple); ShardOf says whom to ask.
type DistributedTable struct {
	n         int64
	shards    int
	blockSize int64
	shard     int
	entries   []Entry // local shard
}

// NewDistributedTable builds processor shard's piece of the table for
// the given layout, distributed over shards processors.
func NewDistributedTable(l *partition.Layout, shards, shard int) (*DistributedTable, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("translate: shards must be positive, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("translate: shard %d out of range [0,%d)", shard, shards)
	}
	n := l.N()
	blockSize := (n + int64(shards) - 1) / int64(shards)
	if blockSize == 0 {
		blockSize = 1
	}
	lo := int64(shard) * blockSize
	hi := lo + blockSize
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	t := &DistributedTable{
		n:         n,
		shards:    shards,
		blockSize: blockSize,
		shard:     shard,
	}
	if hi > lo {
		t.entries = make([]Entry, hi-lo)
		for g := lo; g < hi; g++ {
			proc, local, err := l.Locate(g)
			if err != nil {
				return nil, err
			}
			t.entries[g-lo] = Entry{Proc: int32(proc), Local: int32(local)}
		}
	}
	return t, nil
}

// ShardOf returns the processor whose table shard can resolve global.
func (t *DistributedTable) ShardOf(global int64) (int, error) {
	if global < 0 || global >= t.n {
		return 0, fmt.Errorf("translate: index %d out of range [0,%d)", global, t.n)
	}
	return int(global / t.blockSize), nil
}

// Lookup resolves a global index against the local shard only; it
// fails with ErrRemote if another shard owns the entry.
func (t *DistributedTable) Lookup(global int64) (Entry, error) {
	owner, err := t.ShardOf(global)
	if err != nil {
		return Entry{}, err
	}
	if owner != t.shard {
		return Entry{}, fmt.Errorf("translate: index %d owned by shard %d, not %d: %w",
			global, owner, t.shard, ErrRemote)
	}
	return t.entries[global-int64(t.shard)*t.blockSize], nil
}

// MemoryWords implements Table: two words per locally stored entry.
func (t *DistributedTable) MemoryWords() int64 { return 2 * int64(len(t.entries)) }

// ErrRemote reports that a lookup needs communication with the owning
// shard.
var ErrRemote = fmt.Errorf("entry stored on a remote shard")
