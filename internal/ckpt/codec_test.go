package ckpt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestSnapshotRoundTrip: encode/decode is the identity on every field,
// bit-for-bit, across random shapes — including zero-length intervals,
// zero fields, and payloads holding NaN/Inf bit patterns.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := int64(rng.Intn(40))
		lo := int64(rng.Intn(1000))
		s := &Snapshot{
			Iter:   rng.Intn(1 << 20),
			Lo:     lo,
			Hi:     lo + n,
			Fields: make([][]float64, rng.Intn(4)),
		}
		for f := range s.Fields {
			vals := make([]float64, n)
			for i := range vals {
				switch rng.Intn(10) {
				case 0:
					vals[i] = math.NaN()
				case 1:
					vals[i] = math.Inf(1 - 2*rng.Intn(2))
				default:
					vals[i] = rng.NormFloat64()
				}
			}
			s.Fields[f] = vals
		}
		enc, err := AppendSnapshot(nil, s)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		if len(enc) != EncodedLen(len(s.Fields), n) {
			t.Fatalf("trial %d: %d encoded bytes, EncodedLen says %d", trial, len(enc), EncodedLen(len(s.Fields), n))
		}
		got, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got.Iter != s.Iter || got.Lo != s.Lo || got.Hi != s.Hi || len(got.Fields) != len(s.Fields) {
			t.Fatalf("trial %d: decoded header %+v, want %+v", trial, got, s)
		}
		for f := range s.Fields {
			for i := range s.Fields[f] {
				if math.Float64bits(got.Fields[f][i]) != math.Float64bits(s.Fields[f][i]) {
					t.Fatalf("trial %d: field %d element %d: %x, want %x",
						trial, f, i, math.Float64bits(got.Fields[f][i]), math.Float64bits(s.Fields[f][i]))
				}
			}
		}
	}
}

// TestSnapshotEncodeRejects: malformed snapshots fail at encode time
// instead of producing undecodable bytes.
func TestSnapshotEncodeRejects(t *testing.T) {
	cases := []struct {
		name string
		s    Snapshot
	}{
		{"negative iter", Snapshot{Iter: -1}},
		{"iter overflows u32", Snapshot{Iter: 1 << 33}},
		{"negative lo", Snapshot{Lo: -1, Hi: 2}},
		{"inverted interval", Snapshot{Lo: 5, Hi: 3}},
		{"short field", Snapshot{Lo: 0, Hi: 3, Fields: [][]float64{{1, 2}}}},
	}
	for _, tc := range cases {
		if _, err := AppendSnapshot(nil, &tc.s); err == nil {
			t.Errorf("%s: encode accepted %+v", tc.name, tc.s)
		}
	}
}

// FuzzCkptDecode fuzzes the checkpoint snapshot decoder with the
// round-trip property: any input DecodeSnapshot accepts must re-encode
// to exactly the original bytes (the format is canonical — fixed
// header, then field payloads, no slack), and no input may panic or
// size an allocation from an unvalidated count. Run under `go test
// -fuzz=FuzzCkptDecode ./internal/ckpt`; the seed corpus below and in
// testdata/fuzz keeps the interesting shapes exercised on every
// ordinary `go test` run.
func FuzzCkptDecode(f *testing.F) {
	f.Add([]byte{})                            // too short for a header
	f.Add(make([]byte, snapHeaderLen))         // empty interval, zero fields: canonical
	f.Add(mustEnc(f, 3, 10, 12, 1))            // one field of two elements
	f.Add(mustEnc(f, 0, 0, 5, 3))              // three fields
	f.Add(append(mustEnc(f, 3, 10, 12, 1), 0)) // trailing byte
	huge := make([]byte, snapHeaderLen)        // absurd field count, must not allocate it
	for i := 20; i < 24; i++ {
		huge[i] = 0xff
	}
	f.Add(huge)
	f.Add(mustEnc(f, 3, 10, 12, 1)[:snapHeaderLen+8]) // truncated body
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		round, err := AppendSnapshot(nil, s)
		if err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		if !bytes.Equal(round, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, round)
		}
	})
}

// mustEnc builds a valid wire snapshot for the fuzz seed corpus.
func mustEnc(f *testing.F, iter int, lo, hi int64, nFields int) []byte {
	fields := make([][]float64, nFields)
	for fi := range fields {
		vals := make([]float64, hi-lo)
		for i := range vals {
			vals[i] = float64(fi*100 + i)
		}
		fields[fi] = vals
	}
	enc, err := AppendSnapshot(nil, &Snapshot{Iter: iter, Lo: lo, Hi: hi, Fields: fields})
	if err != nil {
		f.Fatal(err)
	}
	return enc
}
