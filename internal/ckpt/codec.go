package ckpt

import (
	"encoding/binary"
	"fmt"

	"stance/internal/comm"
)

// Snapshot is one rank's checkpoint: the owned interval [Lo,Hi) of
// every field at solver iteration Iter. On the wire it is
//
//	[u32 iter][u64 lo][u64 hi][u32 nFields][nFields*(hi-lo) float64s]
//
// little-endian, fields concatenated in order — the same raw-float
// framing as the comm codecs, so encode/decode reuse PutF64s/GetF64s
// and a receive into a persistent buffer allocates nothing.
type Snapshot struct {
	Iter   int
	Lo, Hi int64
	Fields [][]float64 // one slice per field, each of length Hi-Lo
}

const snapHeaderLen = 4 + 8 + 8 + 4

// EncodedLen returns the wire size of a snapshot with nFields fields
// over an interval of n elements.
func EncodedLen(nFields int, n int64) int {
	return snapHeaderLen + nFields*int(n)*8
}

// AppendSnapshot appends s's wire encoding to dst and returns the
// extended slice. Each field must have exactly Hi-Lo elements.
func AppendSnapshot(dst []byte, s *Snapshot) ([]byte, error) {
	if s.Iter < 0 || int64(s.Iter) > int64(^uint32(0)) {
		return dst, fmt.Errorf("ckpt: iteration %d does not fit the wire format", s.Iter)
	}
	if s.Lo < 0 || s.Hi < s.Lo {
		return dst, fmt.Errorf("ckpt: bad interval [%d,%d)", s.Lo, s.Hi)
	}
	n := s.Hi - s.Lo
	for f, vals := range s.Fields {
		if int64(len(vals)) != n {
			return dst, fmt.Errorf("ckpt: field %d has %d elements, interval has %d", f, len(vals), n)
		}
	}
	base := len(dst)
	need := EncodedLen(len(s.Fields), n)
	if cap(dst) < base+need {
		grown := make([]byte, base+need)
		copy(grown, dst[:base])
		dst = grown
	} else {
		dst = dst[:base+need]
	}
	binary.LittleEndian.PutUint32(dst[base:], uint32(s.Iter))
	binary.LittleEndian.PutUint64(dst[base+4:], uint64(s.Lo))
	binary.LittleEndian.PutUint64(dst[base+12:], uint64(s.Hi))
	binary.LittleEndian.PutUint32(dst[base+20:], uint32(len(s.Fields)))
	off := base + snapHeaderLen
	for _, vals := range s.Fields {
		comm.PutF64s(dst[off:off+len(vals)*8], vals)
		off += len(vals) * 8
	}
	return dst, nil
}

// DecodeSnapshot decodes a wire snapshot. The field data is copied out
// of data, so the caller may release the transport buffer afterwards.
// Every count is validated against the bytes actually present before
// any allocation is sized from it, so corrupt input fails with an
// error rather than an over-allocation.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapHeaderLen {
		return nil, fmt.Errorf("ckpt: %d-byte snapshot, header is %d", len(data), snapHeaderLen)
	}
	iter := binary.LittleEndian.Uint32(data)
	lo := int64(binary.LittleEndian.Uint64(data[4:]))
	hi := int64(binary.LittleEndian.Uint64(data[12:]))
	nf := binary.LittleEndian.Uint32(data[20:])
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("ckpt: bad interval [%d,%d)", lo, hi)
	}
	rem := len(data) - snapHeaderLen
	if rem%8 != 0 {
		return nil, fmt.Errorf("ckpt: %d payload bytes, not a multiple of 8", rem)
	}
	// Count bound: a snapshot never promises more fields than it has
	// bytes, so a corrupt count cannot size an allocation.
	if uint64(nf) > uint64(len(data)) {
		return nil, fmt.Errorf("ckpt: %d fields promised in %d bytes", nf, len(data))
	}
	n := hi - lo
	if n == 0 || nf == 0 {
		if rem != 0 {
			return nil, fmt.Errorf("ckpt: %d payload bytes for %d fields of %d elements", rem, nf, n)
		}
	} else {
		// n is bounded by the bytes present before n*8 is ever
		// computed, so a huge interval cannot overflow the size math.
		if uint64(n) > uint64(rem)/8 {
			return nil, fmt.Errorf("ckpt: interval of %d elements in %d payload bytes", n, rem)
		}
		per := uint64(n) * 8
		if uint64(rem)%per != 0 || uint64(rem)/per != uint64(nf) {
			return nil, fmt.Errorf("ckpt: %d payload bytes for %d fields of %d elements", rem, nf, n)
		}
	}
	s := &Snapshot{Iter: int(iter), Lo: lo, Hi: hi, Fields: make([][]float64, nf)}
	off := snapHeaderLen
	for f := range s.Fields {
		vals, err := comm.BytesToF64s(data[off : off+int(n)*8])
		if err != nil {
			return nil, err
		}
		s.Fields[f] = vals
		off += int(n) * 8
	}
	return s, nil
}
