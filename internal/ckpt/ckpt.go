// Package ckpt implements crash-stop fault tolerance for a session:
// lightweight peer checkpoints of vector state taken at check
// boundaries, heartbeat-based failure detection with receive
// deadlines, and the recovery plan survivors follow to re-cut a dead
// rank's interval onto themselves and roll back to the last
// checkpoint.
//
// The protocol is buddy mirroring on a ring: at each checkpoint every
// active rank snapshots its own interval (all fields, plus the solver
// iteration) and mirrors the encoded snapshot to its successor in the
// active set. When rank r dies, its predecessor's successor — r's
// buddy, succ(r) — holds r's last snapshot and replays it into the
// survivors' re-cut layout during the recovery epoch. A failure is
// unrecoverable only when a rank and its buddy die inside the same
// detection window, or when the coordinator (world rank 0) dies.
package ckpt

import (
	"errors"
	"time"
)

// Wire tags used by the checkpoint/recovery protocol, in the 0x7xx
// block (core uses 0x2xx, loadbal 0x4xx, session 0x5xx, elastic 0x6xx,
// op handles 0x1000+).
const (
	// TagSnap carries encoded snapshots around the buddy ring.
	TagSnap = 0x701
	// TagHB carries heartbeats from members to the coordinator at
	// every checkpoint gate.
	TagHB = 0x702
	// TagCtl carries the coordinator's gate verdict (alive, recover,
	// or abort) to the members.
	TagCtl = 0x703
	// TagRestoreBase + i tags restore transfers whose data
	// originates from the rank at position i of the pre-failure
	// active set, so a buddy relaying a dead rank's state to the
	// same receiver as its own never creates FIFO ambiguity.
	TagRestoreBase = 0x710
)

// ErrUnrecoverable marks a crash the protocol cannot recover from: the
// coordinator died, or a dead rank's checkpoint buddy died with it.
// Sessions fail loudly with this cause rather than continuing on lost
// state.
var ErrUnrecoverable = errors.New("ckpt: unrecoverable rank failure")

// Kill schedules an injected crash for testing and chaos runs: the
// rank goes silent at the first checkpoint gate at or after Iter.
type Kill struct {
	Rank int `json:"rank"`
	Iter int `json:"iter"`
}

// Config enables crash-stop fault tolerance on a session.
type Config struct {
	// DetectTimeout is the receive deadline the coordinator applies
	// to each member's heartbeat at a checkpoint gate; a missed
	// deadline declares the member dead. Members wait
	// (active+2)*DetectTimeout for the verdict before presuming the
	// coordinator dead. It must comfortably exceed the per-segment
	// compute skew between ranks. Zero means 50ms.
	DetectTimeout time.Duration `json:"detect_timeout_ns"`
	// Kills is the injected crash schedule (empty in production).
	Kills []Kill `json:"kills,omitempty"`
}

// WithDefaults returns the config with zero fields resolved.
func (c Config) WithDefaults() Config {
	if c.DetectTimeout <= 0 {
		c.DetectTimeout = 50 * time.Millisecond
	}
	return c
}

// RecoveryEvent records one completed recovery epoch, appended to
// RunReport.Recoveries by the coordinator.
type RecoveryEvent struct {
	// Iter is the iteration of the checkpoint gate that detected
	// the failure.
	Iter int `json:"iter"`
	// RestoredIter is the checkpoint iteration the survivors rolled
	// back to (0 when the run restarted from initial conditions).
	RestoredIter int `json:"restored_iter"`
	// RollbackDepth is Iter - RestoredIter: the number of
	// iterations of lost work replayed after the restore.
	RollbackDepth int `json:"rollback_depth"`
	// Dead lists the world ranks declared dead at this gate.
	Dead []int `json:"dead"`
	// Active lists the surviving active set the run continued on.
	Active []int `json:"active"`
	// Epoch is the membership epoch after the recovery transition.
	Epoch int `json:"epoch"`
	// DetectLatency is the virtual (or wall) time the coordinator
	// spent between reaching the gate and declaring the verdict.
	DetectLatency time.Duration `json:"detect_latency_ns"`
	// RestoredBytes is the total checkpoint payload written back
	// into vectors across all survivors (N * fields * 8 for a full
	// restore, 0 for a restart from initial conditions).
	RestoredBytes int64 `json:"restored_bytes"`
	// Duration is the time the recovery epoch itself took (rebind +
	// restore + re-checkpoint), excluding detection.
	Duration time.Duration `json:"duration_ns"`
}

// Holder returns the world rank holding r's mirrored snapshot: r's
// successor on the ring over active. With a single active rank there
// is no buddy and Holder returns r itself.
func Holder(r int, active []int) int {
	for i, a := range active {
		if a == r {
			return active[(i+1)%len(active)]
		}
	}
	return r
}
