package ckpt

import (
	"encoding/binary"
	"fmt"
	"time"

	"stance/internal/comm"
	"stance/internal/partition"
	"stance/internal/redist"
)

// Store is one rank's side of the checkpoint protocol: it keeps the
// rank's own last snapshot, the mirrored snapshot of its ring
// predecessor (whose buddy this rank is), and the persistent wire
// buffers both travel through. All buffers are reused across takes, so
// steady-state checkpointing with a stable layout allocates nothing.
type Store struct {
	c      *comm.Comm
	fields int

	// Own snapshot.
	haveSnap bool
	snapIter int
	snapIv   partition.Interval
	snapData [][]float64 // per field, persistent backing
	layout   *partition.Layout
	active   []int // active set at the take, persistent copy

	encBuf []byte // own snapshot, encoded for the buddy send

	// Predecessor's mirrored snapshot, kept encoded.
	heldBuf  []byte
	heldLen  int
	heldFrom int // world rank it belongs to; -1 when none

	hbBuf [8]byte

	dead []bool // world ranks this rank has seen declared dead
}

// NewStore returns a store for the rank behind c, checkpointing
// fields vector fields.
func NewStore(c *comm.Comm, fields int) *Store {
	return &Store{
		c:        c,
		fields:   fields,
		heldFrom: -1,
		dead:     make([]bool, c.Size()),
	}
}

// Take checkpoints this rank's state at iteration iter: it copies the
// owned interval of every field out of data (the vectors' backing
// slices, ghosts ignored), then mirrors the encoded snapshot to the
// ring successor in active and receives the predecessor's in exchange.
// Take is collective over active and must be called at a point where
// every member calls it under the same layout and active set.
func (st *Store) Take(iter int, layout *partition.Layout, active []int, data [][]float64) error {
	if len(data) != st.fields {
		return fmt.Errorf("ckpt: %d fields passed to a %d-field store", len(data), st.fields)
	}
	me := st.c.Rank()
	idx := indexOf(active, me)
	if idx < 0 {
		return fmt.Errorf("ckpt: rank %d is not in the active set %v", me, active)
	}
	iv := layout.Interval(idx)
	n := int(iv.Len())
	if st.snapData == nil {
		st.snapData = make([][]float64, st.fields)
	}
	for f, vals := range data {
		if len(vals) < n {
			return fmt.Errorf("ckpt: field %d has %d elements, interval needs %d", f, len(vals), n)
		}
		if cap(st.snapData[f]) < n {
			st.snapData[f] = make([]float64, n)
		}
		st.snapData[f] = st.snapData[f][:n]
		copy(st.snapData[f], vals[:n])
	}
	st.haveSnap = true
	st.snapIter = iter
	st.snapIv = iv
	st.layout = layout
	st.active = append(st.active[:0], active...)

	if len(active) == 1 {
		st.heldFrom = -1
		st.heldLen = 0
		return nil
	}
	snap := Snapshot{Iter: iter, Lo: iv.Lo, Hi: iv.Hi, Fields: st.snapData}
	var err error
	st.encBuf, err = AppendSnapshot(st.encBuf[:0], &snap)
	if err != nil {
		return err
	}
	succ := active[(idx+1)%len(active)]
	pred := active[(idx-1+len(active))%len(active)]
	if err := st.c.Send(succ, TagSnap, st.encBuf); err != nil {
		return fmt.Errorf("ckpt: mirror to buddy %d: %w", succ, err)
	}
	predIdx := indexOf(active, pred)
	need := EncodedLen(st.fields, layout.Interval(predIdx).Len())
	if cap(st.heldBuf) < need {
		st.heldBuf = make([]byte, need)
	}
	st.heldBuf = st.heldBuf[:need]
	got, err := st.c.RecvInto(pred, TagSnap, st.heldBuf)
	if err != nil {
		return fmt.Errorf("ckpt: mirror from %d: %w", pred, err)
	}
	st.heldLen = got
	st.heldFrom = pred
	return nil
}

// Have reports the last checkpoint, if any.
func (st *Store) Have() (iter int, layout *partition.Layout, ok bool) {
	if !st.haveSnap {
		return 0, nil, false
	}
	return st.snapIter, st.layout, true
}

// SendHB sends this rank's gate heartbeat to the coordinator.
func (st *Store) SendHB(iter int) error {
	binary.LittleEndian.PutUint64(st.hbBuf[:], uint64(iter))
	return st.c.Send(0, TagHB, st.hbBuf[:])
}

// RecvHB collects one heartbeat from src with a receive deadline; it
// returns comm.ErrTimeout (wrapped) when src misses the gate.
func (st *Store) RecvHB(src int, d time.Duration) (int, error) {
	data, err := st.c.RecvTimeout(src, TagHB, d)
	if err != nil {
		return 0, err
	}
	if len(data) != 8 {
		st.c.Release(data)
		return 0, fmt.Errorf("ckpt: %d-byte heartbeat from rank %d", len(data), src)
	}
	iter := int(binary.LittleEndian.Uint64(data))
	st.c.Release(data)
	return iter, nil
}

// MarkDead records ranks as permanently dead; a dead rank is filtered
// out of every future desired active set, so the environment can never
// re-admit it.
func (st *Store) MarkDead(ranks []int) {
	for _, r := range ranks {
		if r >= 0 && r < len(st.dead) {
			st.dead[r] = true
		}
	}
}

// Dead lists the ranks marked dead, ascending.
func (st *Store) Dead() []int {
	var out []int
	for r, d := range st.dead {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// FilterDead returns want with every dead rank removed. It returns
// want itself when nothing is filtered.
func (st *Store) FilterDead(want []int) []int {
	filtered := want
	for i, r := range want {
		if r >= 0 && r < len(st.dead) && st.dead[r] {
			if len(filtered) == len(want) {
				filtered = append([]int(nil), want[:i]...)
			}
			continue
		}
		if len(filtered) != len(want) {
			filtered = append(filtered, r)
		}
	}
	return filtered
}

// Restore executes this rank's share of a recovery plan: it fills the
// vectors' backing slices (data, one per field, already re-bound to
// the plan's New layout) with checkpoint state — the kept region from
// its own snapshot, transfers from surviving peers, and the dead
// ranks' regions replayed from whichever buddy holds their snapshot.
// It must be called by every survivor of the plan.
func (st *Store) Restore(p *Plan, data [][]float64) error {
	me := st.c.Rank()
	if len(data) != st.fields {
		return fmt.Errorf("ckpt: %d fields passed to a %d-field store", len(data), st.fields)
	}
	if !st.haveSnap || st.snapIter != p.CkptIter {
		return fmt.Errorf("ckpt: rank %d has checkpoint iteration %d, plan restores %d", me, st.snapIter, p.CkptIter)
	}
	oldIdx := indexOf(p.OldActive, me)
	newIdx := indexOf(p.NewActive, me)
	if oldIdx < 0 || newIdx < 0 {
		return fmt.Errorf("ckpt: rank %d is not a survivor of the plan", me)
	}
	dead := make(map[int]bool, len(p.Dead))
	for _, d := range p.Dead {
		dead[d] = true
	}
	my, err := redist.NewCrossPlan(p.Old, p.New, p.OldActive, p.NewActive, me)
	if err != nil {
		return err
	}
	newIv := my.New
	for f, vals := range data {
		if int64(len(vals)) < newIv.Len() {
			return fmt.Errorf("ckpt: field %d has %d elements, new interval needs %d", f, len(vals), newIv.Len())
		}
	}

	// Sends first — all transfers are asynchronous, so issuing every
	// outbound message (own segments and the held dead snapshots'
	// segments) before blocking in receives cannot deadlock.
	for _, tr := range my.Sends {
		buf := packTransfer(st.snapData, my.Old, tr.Global, st.fields)
		if err := st.c.Send(tr.Peer, TagRestoreBase+oldIdx, buf); err != nil {
			return err
		}
	}
	if st.heldFrom >= 0 && dead[st.heldFrom] {
		held, err := DecodeSnapshot(st.heldBuf[:st.heldLen])
		if err != nil {
			return fmt.Errorf("ckpt: held snapshot for rank %d: %w", st.heldFrom, err)
		}
		if held.Iter != p.CkptIter {
			return fmt.Errorf("ckpt: held snapshot for rank %d is at iteration %d, plan restores %d",
				st.heldFrom, held.Iter, p.CkptIter)
		}
		dp, err := redist.NewCrossPlan(p.Old, p.New, p.OldActive, p.NewActive, st.heldFrom)
		if err != nil {
			return err
		}
		dIdx := indexOf(p.OldActive, st.heldFrom)
		heldOld := partition.Interval{Lo: held.Lo, Hi: held.Hi}
		for _, tr := range dp.Sends {
			if tr.Peer == me {
				copyTransfer(data, newIv, held.Fields, heldOld, tr.Global)
				continue
			}
			buf := packTransfer(held.Fields, dp.Old, tr.Global, st.fields)
			if err := st.c.Send(tr.Peer, TagRestoreBase+dIdx, buf); err != nil {
				return err
			}
		}
	}

	for f := range data {
		if err := my.ApplyLocal(st.snapData[f][:my.Old.Len()], data[f][:newIv.Len()]); err != nil {
			return err
		}
	}

	for _, tr := range my.Recvs {
		src := tr.Peer
		srcIdx := indexOf(p.OldActive, tr.Peer)
		if dead[tr.Peer] {
			src = Holder(tr.Peer, p.OldActive)
			if dead[src] || src == tr.Peer {
				return fmt.Errorf("ckpt: no surviving holder for dead rank %d: %w", tr.Peer, ErrUnrecoverable)
			}
			if src == me {
				continue // replayed locally from the held snapshot above
			}
		}
		payload, err := st.c.Recv(src, TagRestoreBase+srcIdx)
		if err != nil {
			return err
		}
		err = unpackTransfer(data, newIv, tr.Global, payload)
		st.c.Release(payload)
		if err != nil {
			return err
		}
	}
	return nil
}

// packTransfer encodes the global range g of every field (fields hold
// the interval old) into one field-major payload.
func packTransfer(fields [][]float64, old, g partition.Interval, nf int) []byte {
	n := int(g.Len())
	buf := make([]byte, nf*n*8)
	off := int(g.Lo - old.Lo)
	for f := 0; f < nf; f++ {
		comm.PutF64s(buf[f*n*8:(f+1)*n*8], fields[f][off:off+n])
	}
	return buf
}

// copyTransfer is packTransfer+unpackTransfer without the wire: the
// global range g moves from src (holding interval srcIv) straight into
// dst (holding interval dstIv).
func copyTransfer(dst [][]float64, dstIv partition.Interval, src [][]float64, srcIv, g partition.Interval) {
	n := int(g.Len())
	srcOff := int(g.Lo - srcIv.Lo)
	dstOff := int(g.Lo - dstIv.Lo)
	for f := range dst {
		copy(dst[f][dstOff:dstOff+n], src[f][srcOff:srcOff+n])
	}
}

// unpackTransfer decodes a field-major transfer payload covering the
// global range g into the vectors' backing slices.
func unpackTransfer(data [][]float64, newIv partition.Interval, g partition.Interval, payload []byte) error {
	n := int(g.Len())
	if len(payload) != len(data)*n*8 {
		return fmt.Errorf("ckpt: %d-byte restore payload for %d fields of %d elements", len(payload), len(data), n)
	}
	off := int(g.Lo - newIv.Lo)
	for f := range data {
		if err := comm.GetF64s(data[f][off:off+n], payload[f*n*8:(f+1)*n*8]); err != nil {
			return err
		}
	}
	return nil
}

func indexOf(list []int, v int) int {
	for i, x := range list {
		if x == v {
			return i
		}
	}
	return -1
}
