package ckpt

import (
	"fmt"

	"stance/internal/comm"
	"stance/internal/partition"
)

// Gate verdict opcodes, multicast by the coordinator on TagCtl after
// collecting heartbeats. Like the elastic control protocol, verdict
// payloads are float64 vectors (integers are exact up to 2^53) so they
// ride the same wire codecs as everything else.
const (
	opAlive   = 0 // every member answered: continue
	opRecover = 1 // dead ranks detected: recovery plan follows
	opAbort   = 2 // dead ranks detected but unrecoverable: fail loudly
)

// Plan is the coordinator's recovery verdict: which ranks died, the
// surviving active set, and the layouts to move between. Every
// survivor executes it deterministically.
type Plan struct {
	// Iter is the gate iteration at which the failure was detected.
	Iter int
	// CkptIter is the checkpoint iteration to restore, or -1 when no
	// checkpoint existed yet and survivors restart from initial
	// conditions.
	CkptIter int
	// Dead lists the world ranks that missed the gate, ascending.
	Dead []int
	// OldActive is the active set the last checkpoint was taken
	// under (identical to the set at detection).
	OldActive []int
	// NewActive is OldActive minus Dead.
	NewActive []int
	// Old is the layout at the checkpoint; New is the re-cut layout
	// over the survivors.
	Old, New *partition.Layout
}

// EncodeAlive returns the all-alive verdict payload.
func EncodeAlive() []byte {
	return comm.F64sToBytes([]float64{opAlive})
}

// EncodeAbort returns the unrecoverable verdict payload naming the
// dead ranks.
func EncodeAbort(dead []int) []byte {
	vals := make([]float64, 0, 2+len(dead))
	vals = append(vals, opAbort, float64(len(dead)))
	for _, d := range dead {
		vals = append(vals, float64(d))
	}
	return comm.F64sToBytes(vals)
}

// EncodePlan returns the recovery verdict payload.
func EncodePlan(p *Plan) []byte {
	vals := make([]float64, 0, 8+len(p.Dead)+2*len(p.OldActive)+2*len(p.NewActive)+3*(p.Old.P()+p.New.P()))
	vals = append(vals, opRecover, float64(p.Iter), float64(p.CkptIter))
	vals = appendRanks(vals, p.Dead)
	vals = appendRanks(vals, p.OldActive)
	vals = appendRanks(vals, p.NewActive)
	vals = appendLayout(vals, p.Old)
	vals = appendLayout(vals, p.New)
	return comm.F64sToBytes(vals)
}

// DecodeVerdict decodes a TagCtl payload. It returns (nil, nil) for an
// all-alive verdict, a plan for a recovery verdict, and an error
// wrapping ErrUnrecoverable for an abort verdict or any malformed
// payload.
func DecodeVerdict(data []byte) (*Plan, error) {
	vals, err := comm.BytesToF64s(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: verdict: %w", err)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("ckpt: empty verdict")
	}
	switch int(vals[0]) {
	case opAlive:
		return nil, nil
	case opAbort:
		dead, _, err := decodeRanks(vals[1:])
		if err != nil {
			return nil, fmt.Errorf("ckpt: abort verdict: %w", err)
		}
		return nil, fmt.Errorf("ckpt: ranks %v died and their checkpoints are lost: %w", dead, ErrUnrecoverable)
	case opRecover:
		p := &Plan{}
		if len(vals) < 3 {
			return nil, fmt.Errorf("ckpt: truncated recovery verdict")
		}
		p.Iter = int(vals[1])
		p.CkptIter = int(vals[2])
		rest := vals[3:]
		if p.Dead, rest, err = decodeRanks(rest); err != nil {
			return nil, fmt.Errorf("ckpt: recovery verdict dead set: %w", err)
		}
		if p.OldActive, rest, err = decodeRanks(rest); err != nil {
			return nil, fmt.Errorf("ckpt: recovery verdict old active set: %w", err)
		}
		if p.NewActive, rest, err = decodeRanks(rest); err != nil {
			return nil, fmt.Errorf("ckpt: recovery verdict new active set: %w", err)
		}
		if p.Old, rest, err = decodeLayout(rest); err != nil {
			return nil, fmt.Errorf("ckpt: recovery verdict old layout: %w", err)
		}
		if p.New, rest, err = decodeLayout(rest); err != nil {
			return nil, fmt.Errorf("ckpt: recovery verdict new layout: %w", err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("ckpt: %d trailing values after recovery verdict", len(rest))
		}
		return p, nil
	default:
		return nil, fmt.Errorf("ckpt: unknown verdict opcode %v", vals[0])
	}
}

func appendRanks(vals []float64, ranks []int) []float64 {
	vals = append(vals, float64(len(ranks)))
	for _, r := range ranks {
		vals = append(vals, float64(r))
	}
	return vals
}

func decodeRanks(vals []float64) ([]int, []float64, error) {
	if len(vals) < 1 {
		return nil, nil, fmt.Errorf("missing count")
	}
	k := int(vals[0])
	if k < 0 || len(vals) < 1+k {
		return nil, nil, fmt.Errorf("%d ranks promised, %d values present", k, len(vals)-1)
	}
	ranks := make([]int, k)
	for i := range ranks {
		ranks[i] = int(vals[1+i])
	}
	return ranks, vals[1+k:], nil
}

// appendLayout flattens a layout as (p, p+1 starts, p arrangement) —
// the same replicated translation state the elastic transition wire
// carries, rebuilt on the far side with partition.NewFromStarts.
func appendLayout(vals []float64, l *partition.Layout) []float64 {
	starts := l.Starts()
	arr := l.Arrangement()
	vals = append(vals, float64(len(arr)))
	for _, s := range starts {
		vals = append(vals, float64(s))
	}
	for _, a := range arr {
		vals = append(vals, float64(a))
	}
	return vals
}

func decodeLayout(vals []float64) (*partition.Layout, []float64, error) {
	if len(vals) < 1 {
		return nil, nil, fmt.Errorf("missing processor count")
	}
	k := int(vals[0])
	if k <= 0 || len(vals) < 1+(k+1)+k {
		return nil, nil, fmt.Errorf("%d processors promised, %d values present", k, len(vals)-1)
	}
	starts := make([]int64, k+1)
	for i := range starts {
		starts[i] = int64(vals[1+i])
	}
	arr := make([]int, k)
	for i := range arr {
		arr[i] = int(vals[1+k+1+i])
	}
	l, err := partition.NewFromStarts(starts, arr)
	if err != nil {
		return nil, nil, err
	}
	return l, vals[1+k+1+k:], nil
}
