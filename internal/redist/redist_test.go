package redist

import (
	"math/rand"
	"testing"

	"stance/internal/partition"
)

func TestMoveExamples(t *testing.T) {
	// The paper's own example: MOVE({1,3,5,4,6}, 5, 0) = {5,1,3,4,6}.
	list := []int{1, 3, 5, 4, 6}
	Move(list, 5, 0)
	want := []int{5, 1, 3, 4, 6}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("Move = %v, want %v", list, want)
		}
	}
	// Move right.
	list = []int{0, 1, 2, 3}
	Move(list, 0, 2)
	want = []int{1, 2, 0, 3}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("Move right = %v, want %v", list, want)
		}
	}
	// Move to same place is a no-op.
	list = []int{0, 1, 2}
	Move(list, 1, 1)
	for i, v := range []int{0, 1, 2} {
		if list[i] != v {
			t.Fatal("no-op Move changed list")
		}
	}
}

func TestMovePreservesPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		p := rng.Intn(8) + 1
		list := rng.Perm(p)
		c := list[rng.Intn(p)]
		l := rng.Intn(p)
		Move(list, c, l)
		if list[l] != c {
			t.Fatalf("element %d not at %d: %v", c, l, list)
		}
		seen := make([]bool, p)
		for _, v := range list {
			if seen[v] {
				t.Fatalf("duplicate after Move: %v", list)
			}
			seen[v] = true
		}
	}
}

func TestMovePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"missing element", func() { Move([]int{0, 1}, 5, 0) }},
		{"bad target", func() { Move([]int{0, 1}, 0, 2) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

// TestMCRFigure5 pins down MCR behaviour on the paper's Figure 5
// instance: a single greedy sweep improves the identity arrangement's
// overlap from 31 to 53; iterating sweeps to convergence reaches the
// optimum 64, matching the paper's hand-picked (P0,P3,P1,P2,P4)
// arrangement.
func TestMCRFigure5(t *testing.T) {
	old, err := partition.NewBlock(100, []float64{0.27, 0.18, 0.34, 0.07, 0.14})
	if err != nil {
		t.Fatal(err)
	}
	newW := []float64{0.10, 0.13, 0.29, 0.24, 0.24}

	single, err := MinimizeCostRedistribution(old, newW, OverlapCost)
	if err != nil {
		t.Fatal(err)
	}
	ovSingle, err := partition.Overlap(old, single)
	if err != nil {
		t.Fatal(err)
	}
	if ovSingle != 53 {
		t.Errorf("single-sweep MCR overlap = %d, want 53", ovSingle)
	}

	iterated, err := Iterated(old, newW, OverlapCost, 0)
	if err != nil {
		t.Fatal(err)
	}
	ovIter, err := partition.Overlap(old, iterated)
	if err != nil {
		t.Fatal(err)
	}
	if ovIter < 64 {
		t.Errorf("iterated MCR overlap = %d, want >= 64 (the paper's arrangement)", ovIter)
	}

	opt, err := BruteForce(old, newW, OverlapCost)
	if err != nil {
		t.Fatal(err)
	}
	ovOpt, _ := partition.Overlap(old, opt)
	if ovOpt != 64 {
		t.Errorf("brute-force overlap = %d, want 64", ovOpt)
	}
	if ovIter > ovOpt {
		t.Errorf("iterated MCR (%d) beat brute force (%d)", ovIter, ovOpt)
	}

	identity, err := partition.NewBlock(100, newW)
	if err != nil {
		t.Fatal(err)
	}
	ovID, _ := partition.Overlap(old, identity)
	if ovID != 31 {
		t.Errorf("identity overlap = %d, want 31", ovID)
	}
	if ovSingle <= ovID {
		t.Errorf("single-sweep MCR (%d) did not beat the identity arrangement (%d)", ovSingle, ovID)
	}
}

func TestMCRNeverWorseThanIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		p := rng.Intn(7) + 2
		n := int64(rng.Intn(900) + 100)
		oldW := randWeights(rng, p)
		newW := randWeights(rng, p)
		old, err := partition.NewBlock(n, oldW)
		if err != nil {
			t.Fatal(err)
		}
		mcr, err := MinimizeCostRedistribution(old, newW, OverlapCost)
		if err != nil {
			t.Fatal(err)
		}
		identity, err := partition.NewBlock(n, newW)
		if err != nil {
			t.Fatal(err)
		}
		ovMCR, _ := partition.Overlap(old, mcr)
		ovID, _ := partition.Overlap(old, identity)
		if ovMCR < ovID {
			t.Fatalf("trial %d: MCR overlap %d worse than identity %d", trial, ovMCR, ovID)
		}
	}
}

func TestMCRNearOptimal(t *testing.T) {
	// The paper claims MCR "produces good suboptimal results". On
	// random small instances the single sweep stays within ~70% of the
	// brute-force optimum and never beats it; iterated sweeps reach at
	// least 90% in the worst case.
	rng := rand.New(rand.NewSource(23))
	worstSingle, worstIter := 1.0, 1.0
	for trial := 0; trial < 60; trial++ {
		p := rng.Intn(4) + 3 // 3..6
		n := int64(rng.Intn(400) + 100)
		old, err := partition.NewBlock(n, randWeights(rng, p))
		if err != nil {
			t.Fatal(err)
		}
		newW := randWeights(rng, p)
		single, err := MinimizeCostRedistribution(old, newW, OverlapCost)
		if err != nil {
			t.Fatal(err)
		}
		iter, err := Iterated(old, newW, OverlapCost, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := BruteForce(old, newW, OverlapCost)
		if err != nil {
			t.Fatal(err)
		}
		ovSingle, _ := partition.Overlap(old, single)
		ovIter, _ := partition.Overlap(old, iter)
		ovOpt, _ := partition.Overlap(old, opt)
		if ovSingle > ovOpt || ovIter > ovOpt {
			t.Fatalf("heuristic beat brute force: %d/%d > %d", ovSingle, ovIter, ovOpt)
		}
		if ovIter < ovSingle {
			t.Fatalf("iterated (%d) worse than single sweep (%d)", ovIter, ovSingle)
		}
		if ovOpt > 0 {
			if r := float64(ovSingle) / float64(ovOpt); r < worstSingle {
				worstSingle = r
			}
			if r := float64(ovIter) / float64(ovOpt); r < worstIter {
				worstIter = r
			}
		}
	}
	if worstSingle < 0.65 {
		t.Errorf("single-sweep MCR worst-case ratio %.3f, want >= 0.65", worstSingle)
	}
	if worstIter < 0.9 {
		t.Errorf("iterated MCR worst-case ratio %.3f, want >= 0.9", worstIter)
	}
}

func TestMCRWithMessageCost(t *testing.T) {
	old, err := partition.NewBlock(100, []float64{0.27, 0.18, 0.34, 0.07, 0.14})
	if err != nil {
		t.Fatal(err)
	}
	newW := []float64{0.10, 0.13, 0.29, 0.24, 0.24}
	withMsgs, err := MinimizeCostRedistribution(old, newW, OverlapMessagesCost(2))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MinimizeCostRedistribution(old, newW, nil) // nil defaults to OverlapCost
	if err != nil {
		t.Fatal(err)
	}
	mw, _ := partition.Messages(old, withMsgs)
	mp, _ := partition.Messages(old, plain)
	if mw > mp {
		t.Errorf("message-aware cost produced more messages (%d) than overlap-only (%d)", mw, mp)
	}
}

func TestMCRErrors(t *testing.T) {
	old, _ := partition.NewUniform(10, 3)
	if _, err := MinimizeCostRedistribution(old, []float64{1, 1}, nil); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, err := MinimizeCostRedistribution(old, []float64{1, -1, 1}, nil); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := BruteForce(old, []float64{1, 1}, nil); err == nil {
		t.Error("brute force weight mismatch accepted")
	}
	big, _ := partition.NewUniform(100, 10)
	w := make([]float64, 10)
	for i := range w {
		w[i] = 1
	}
	if _, err := BruteForce(big, w, nil); err == nil {
		t.Error("brute force p=10 accepted")
	}
}

func randWeights(rng *rand.Rand, p int) []float64 {
	w := make([]float64, p)
	for i := range w {
		w[i] = rng.Float64() + 0.05
	}
	return w
}

func TestNewPlanPartitionsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		p := rng.Intn(6) + 2
		n := int64(rng.Intn(500) + 50)
		old, err := partition.NewBlock(n, randWeights(rng, p))
		if err != nil {
			t.Fatal(err)
		}
		new, err := MinimizeCostRedistribution(old, randWeights(rng, p), OverlapCost)
		if err != nil {
			t.Fatal(err)
		}
		// Every new-layout element must be covered exactly once by
		// Keep or Recvs; every old element by Keep or Sends.
		for proc := 0; proc < p; proc++ {
			pl, err := NewPlan(old, new, proc)
			if err != nil {
				t.Fatal(err)
			}
			var kept, sent, recvd int64
			kept = pl.Keep.Len()
			for _, s := range pl.Sends {
				sent += s.Global.Len()
				if s.Peer == proc {
					t.Fatal("send to self")
				}
			}
			for _, r := range pl.Recvs {
				recvd += r.Global.Len()
				if r.Peer == proc {
					t.Fatal("recv from self")
				}
			}
			if kept+sent != pl.Old.Len() {
				t.Fatalf("proc %d: kept %d + sent %d != old %d", proc, kept, sent, pl.Old.Len())
			}
			if kept+recvd != pl.New.Len() {
				t.Fatalf("proc %d: kept %d + recvd %d != new %d", proc, kept, recvd, pl.New.Len())
			}
		}
		// Sends and Recvs must pair up across processors.
		type key struct {
			src, dst int
			lo, hi   int64
		}
		sends := map[key]bool{}
		for proc := 0; proc < p; proc++ {
			pl, _ := NewPlan(old, new, proc)
			for _, s := range pl.Sends {
				sends[key{proc, s.Peer, s.Global.Lo, s.Global.Hi}] = true
			}
		}
		for proc := 0; proc < p; proc++ {
			pl, _ := NewPlan(old, new, proc)
			for _, r := range pl.Recvs {
				if !sends[key{r.Peer, proc, r.Global.Lo, r.Global.Hi}] {
					t.Fatalf("recv %+v on proc %d has no matching send", r, proc)
				}
			}
		}
	}
}

func TestNewPlanErrors(t *testing.T) {
	a, _ := partition.NewUniform(10, 2)
	b, _ := partition.NewUniform(12, 2)
	if _, err := NewPlan(a, b, 0); err == nil {
		t.Error("incompatible layouts accepted")
	}
	if _, err := NewPlan(a, a, 5); err == nil {
		t.Error("bad proc accepted")
	}
}

func TestApplyLocal(t *testing.T) {
	old, _ := partition.NewBlock(10, []float64{0.5, 0.5})
	new, _ := partition.NewBlock(10, []float64{0.8, 0.2})
	pl, err := NewPlan(old, new, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldData := []float64{0, 1, 2, 3, 4}
	newData := make([]float64, 8)
	if err := pl.ApplyLocal(oldData, newData); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if newData[i] != float64(i) {
			t.Fatalf("kept data wrong: %v", newData)
		}
	}
	if err := pl.ApplyLocal(oldData[:2], newData); err == nil {
		t.Error("short old data accepted")
	}
	if err := pl.ApplyLocal(oldData, newData[:2]); err == nil {
		t.Error("short new data accepted")
	}
}

func TestMovedBytes(t *testing.T) {
	old, _ := partition.NewBlock(10, []float64{0.5, 0.5})
	new, _ := partition.NewBlock(10, []float64{0.2, 0.8})
	pl, _ := NewPlan(old, new, 0)
	// Processor 0 shrinks from [0,5) to [0,2): sends 3 elements.
	if got := pl.MovedBytes(); got != 24 {
		t.Errorf("MovedBytes = %d, want 24", got)
	}
}

func TestCostModelEstimate(t *testing.T) {
	old, _ := partition.NewBlock(100, []float64{1, 1})
	new, _ := partition.NewBlock(100, []float64{3, 1})
	m := CostModel{PerMessage: 0.001, PerByte: 1e-6}
	est, err := m.Estimate(old, new)
	if err != nil {
		t.Fatal(err)
	}
	// 25 elements move (one message): 0.001 + 25*8*1e-6 = 0.0012.
	want := 0.001 + 200e-6
	if est < want-1e-12 || est > want+1e-12 {
		t.Errorf("Estimate = %v, want %v", est, want)
	}
	if est2, _ := m.Estimate(old, old); est2 != 0 {
		t.Errorf("self estimate = %v, want 0", est2)
	}
}
