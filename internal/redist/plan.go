package redist

import (
	"fmt"
	"sort"

	"stance/internal/partition"
)

// Transfer is one contiguous block of global indices moving between
// two processors during a redistribution.
type Transfer struct {
	Peer   int                // the other processor
	Global partition.Interval // global index range being transferred
}

// Plan describes, for one processor, the data movement required to go
// from layout Old to layout New. Sends are ranges of the processor's
// old interval destined for peers; Recvs are ranges of its new
// interval arriving from peers. Ranges kept locally appear in neither.
type Plan struct {
	Proc  int
	Old   partition.Interval
	New   partition.Interval
	Keep  partition.Interval // intersection retained locally (may be empty)
	Sends []Transfer         // ordered by peer
	Recvs []Transfer         // ordered by peer
}

// NewPlan computes processor proc's part of the redistribution from
// old to new. Because both layouts assign contiguous intervals, each
// peer exchange is a single contiguous range.
func NewPlan(old, new *partition.Layout, proc int) (*Plan, error) {
	if old.N() != new.N() || old.P() != new.P() {
		return nil, fmt.Errorf("redist: incompatible layouts (%d/%d elements, %d/%d processors)",
			old.N(), new.N(), old.P(), new.P())
	}
	if proc < 0 || proc >= old.P() {
		return nil, fmt.Errorf("redist: processor %d out of range [0,%d)", proc, old.P())
	}
	procs := identityProcs(old.P())
	return NewCrossPlan(old, new, procs, procs, proc)
}

// NewCrossPlan computes one rank's part of a redistribution that may
// cross world sizes — the data-movement step of an elastic membership
// transition. The two layouts need not have the same number of
// processors: oldProcs and newProcs map each layout's processor index
// to the rank that owns it on the carrier world the transfers travel
// over, so transfer peers are carrier ranks. A rank absent from
// oldProcs owned nothing before the move (a parked rank being
// admitted); a rank absent from newProcs owns nothing after (a
// retiring rank, which sends its whole interval away). Sends and Recvs
// are ordered by carrier rank.
func NewCrossPlan(old, new *partition.Layout, oldProcs, newProcs []int, self int) (*Plan, error) {
	if old.N() != new.N() {
		return nil, fmt.Errorf("redist: layouts cover %d and %d elements", old.N(), new.N())
	}
	if err := validProcs(old, oldProcs); err != nil {
		return nil, err
	}
	if err := validProcs(new, newProcs); err != nil {
		return nil, err
	}
	if self < 0 {
		return nil, fmt.Errorf("redist: negative rank %d", self)
	}
	pl := &Plan{Proc: self}
	for i, r := range oldProcs {
		if r == self {
			pl.Old = old.Interval(i)
		}
	}
	for j, r := range newProcs {
		if r == self {
			pl.New = new.Interval(j)
		}
	}
	pl.Keep = pl.Old.Intersect(pl.New)
	for j, r := range newProcs {
		if r == self {
			continue
		}
		if send := pl.Old.Intersect(new.Interval(j)); send.Len() > 0 {
			pl.Sends = append(pl.Sends, Transfer{Peer: r, Global: send})
		}
	}
	for i, r := range oldProcs {
		if r == self {
			continue
		}
		if recv := pl.New.Intersect(old.Interval(i)); recv.Len() > 0 {
			pl.Recvs = append(pl.Recvs, Transfer{Peer: r, Global: recv})
		}
	}
	sort.Slice(pl.Sends, func(a, b int) bool { return pl.Sends[a].Peer < pl.Sends[b].Peer })
	sort.Slice(pl.Recvs, func(a, b int) bool { return pl.Recvs[a].Peer < pl.Recvs[b].Peer })
	return pl, nil
}

// CrossStats reports the total elements moved between ranks and the
// number of point-to-point transfers a cross-world redistribution
// generates. It is a pure function of the layouts and mappings, so
// every rank (including ones that were parked and saw neither layout
// being cut) computes the identical accounting without communication.
func CrossStats(old, new *partition.Layout, oldProcs, newProcs []int) (moved int64, msgs int, err error) {
	if old.N() != new.N() {
		return 0, 0, fmt.Errorf("redist: layouts cover %d and %d elements", old.N(), new.N())
	}
	if err := validProcs(old, oldProcs); err != nil {
		return 0, 0, err
	}
	if err := validProcs(new, newProcs); err != nil {
		return 0, 0, err
	}
	for i, ri := range oldProcs {
		iv := old.Interval(i)
		for j, rj := range newProcs {
			if ri == rj {
				continue
			}
			if x := iv.Intersect(new.Interval(j)).Len(); x > 0 {
				moved += x
				msgs++
			}
		}
	}
	return moved, msgs, nil
}

func validProcs(l *partition.Layout, procs []int) error {
	if len(procs) != l.P() {
		return fmt.Errorf("redist: %d carrier ranks for %d processors", len(procs), l.P())
	}
	seen := map[int]bool{}
	for i, r := range procs {
		if r < 0 {
			return fmt.Errorf("redist: negative carrier rank %d for processor %d", r, i)
		}
		if seen[r] {
			return fmt.Errorf("redist: carrier rank %d mapped twice", r)
		}
		seen[r] = true
	}
	return nil
}

func identityProcs(p int) []int {
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	return procs
}

// MovedBytes returns the number of float64 payload bytes this
// processor sends during the redistribution.
func (p *Plan) MovedBytes() int64 {
	var n int64
	for _, s := range p.Sends {
		n += s.Global.Len() * 8
	}
	return n
}

// ApplyLocal rearranges the retained region: it copies the kept range
// from oldData (indexed by old local indices) into newData (indexed by
// new local indices). Transfer ranges are filled in by the comm layer.
func (p *Plan) ApplyLocal(oldData, newData []float64) error {
	if int64(len(oldData)) != p.Old.Len() {
		return fmt.Errorf("redist: old data length %d, want %d", len(oldData), p.Old.Len())
	}
	if int64(len(newData)) != p.New.Len() {
		return fmt.Errorf("redist: new data length %d, want %d", len(newData), p.New.Len())
	}
	if p.Keep.Len() == 0 {
		return nil
	}
	srcOff := p.Keep.Lo - p.Old.Lo
	dstOff := p.Keep.Lo - p.New.Lo
	copy(newData[dstOff:dstOff+p.Keep.Len()], oldData[srcOff:srcOff+p.Keep.Len()])
	return nil
}

// CostModel estimates redistribution time for profitability decisions
// (paper Section 3.5): latency per message plus volume over bandwidth.
type CostModel struct {
	PerMessage float64 // seconds per message
	PerByte    float64 // seconds per payload byte
}

// Estimate returns the predicted redistribution time from old to new:
// every transfer contributes a message setup, and the total moved
// volume is serialized over the (shared-medium) network.
func (m CostModel) Estimate(old, new *partition.Layout) (float64, error) {
	msgs, err := partition.Messages(old, new)
	if err != nil {
		return 0, err
	}
	moved, err := partition.Moved(old, new)
	if err != nil {
		return 0, err
	}
	return float64(msgs)*m.PerMessage + float64(moved*8)*m.PerByte, nil
}
