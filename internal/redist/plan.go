package redist

import (
	"fmt"

	"stance/internal/partition"
)

// Transfer is one contiguous block of global indices moving between
// two processors during a redistribution.
type Transfer struct {
	Peer   int                // the other processor
	Global partition.Interval // global index range being transferred
}

// Plan describes, for one processor, the data movement required to go
// from layout Old to layout New. Sends are ranges of the processor's
// old interval destined for peers; Recvs are ranges of its new
// interval arriving from peers. Ranges kept locally appear in neither.
type Plan struct {
	Proc  int
	Old   partition.Interval
	New   partition.Interval
	Keep  partition.Interval // intersection retained locally (may be empty)
	Sends []Transfer         // ordered by peer
	Recvs []Transfer         // ordered by peer
}

// NewPlan computes processor proc's part of the redistribution from
// old to new. Because both layouts assign contiguous intervals, each
// peer exchange is a single contiguous range.
func NewPlan(old, new *partition.Layout, proc int) (*Plan, error) {
	if old.N() != new.N() || old.P() != new.P() {
		return nil, fmt.Errorf("redist: incompatible layouts (%d/%d elements, %d/%d processors)",
			old.N(), new.N(), old.P(), new.P())
	}
	if proc < 0 || proc >= old.P() {
		return nil, fmt.Errorf("redist: processor %d out of range [0,%d)", proc, old.P())
	}
	pl := &Plan{
		Proc: proc,
		Old:  old.Interval(proc),
		New:  new.Interval(proc),
	}
	pl.Keep = pl.Old.Intersect(pl.New)
	for peer := 0; peer < old.P(); peer++ {
		if peer == proc {
			continue
		}
		if send := pl.Old.Intersect(new.Interval(peer)); send.Len() > 0 {
			pl.Sends = append(pl.Sends, Transfer{Peer: peer, Global: send})
		}
		if recv := pl.New.Intersect(old.Interval(peer)); recv.Len() > 0 {
			pl.Recvs = append(pl.Recvs, Transfer{Peer: peer, Global: recv})
		}
	}
	return pl, nil
}

// MovedBytes returns the number of float64 payload bytes this
// processor sends during the redistribution.
func (p *Plan) MovedBytes() int64 {
	var n int64
	for _, s := range p.Sends {
		n += s.Global.Len() * 8
	}
	return n
}

// ApplyLocal rearranges the retained region: it copies the kept range
// from oldData (indexed by old local indices) into newData (indexed by
// new local indices). Transfer ranges are filled in by the comm layer.
func (p *Plan) ApplyLocal(oldData, newData []float64) error {
	if int64(len(oldData)) != p.Old.Len() {
		return fmt.Errorf("redist: old data length %d, want %d", len(oldData), p.Old.Len())
	}
	if int64(len(newData)) != p.New.Len() {
		return fmt.Errorf("redist: new data length %d, want %d", len(newData), p.New.Len())
	}
	if p.Keep.Len() == 0 {
		return nil
	}
	srcOff := p.Keep.Lo - p.Old.Lo
	dstOff := p.Keep.Lo - p.New.Lo
	copy(newData[dstOff:dstOff+p.Keep.Len()], oldData[srcOff:srcOff+p.Keep.Len()])
	return nil
}

// CostModel estimates redistribution time for profitability decisions
// (paper Section 3.5): latency per message plus volume over bandwidth.
type CostModel struct {
	PerMessage float64 // seconds per message
	PerByte    float64 // seconds per payload byte
}

// Estimate returns the predicted redistribution time from old to new:
// every transfer contributes a message setup, and the total moved
// volume is serialized over the (shared-medium) network.
func (m CostModel) Estimate(old, new *partition.Layout) (float64, error) {
	msgs, err := partition.Messages(old, new)
	if err != nil {
		return 0, err
	}
	moved, err := partition.Moved(old, new)
	if err != nil {
		return 0, err
	}
	return float64(msgs)*m.PerMessage + float64(moved*8)*m.PerByte, nil
}
