package redist

import (
	"testing"

	"stance/internal/partition"
)

// applyCross simulates a cross-world redistribution globally: element
// values start distributed per old (over oldProcs), every rank's plan
// executes, and the result must be the values distributed per new
// (over newProcs) with every element landing exactly once.
func applyCross(t *testing.T, old, new *partition.Layout, oldProcs, newProcs []int, ranks []int) (sentBytes int64, msgs int) {
	t.Helper()
	n := old.N()
	// Initial per-rank data per the old layout.
	oldData := map[int][]float64{}
	for i, r := range oldProcs {
		iv := old.Interval(i)
		vals := make([]float64, iv.Len())
		for k := range vals {
			vals[k] = float64(iv.Lo + int64(k))
		}
		oldData[r] = vals
	}
	// In-flight transfers keyed by (src, dst).
	type key struct{ src, dst int }
	wire := map[key][]float64{}
	newData := map[int][]float64{}
	landed := make([]int, n)

	for _, self := range ranks {
		pl, err := NewCrossPlan(old, new, oldProcs, newProcs, self)
		if err != nil {
			t.Fatalf("plan for rank %d: %v", self, err)
		}
		if pl.Old.Len() != int64(len(oldData[self])) {
			t.Fatalf("rank %d: plan old interval %v for %d held values", self, pl.Old, len(oldData[self]))
		}
		dst := make([]float64, pl.New.Len())
		if err := pl.ApplyLocal(oldData[self], dst); err != nil {
			t.Fatalf("rank %d: %v", self, err)
		}
		for k := pl.Keep.Lo; k < pl.Keep.Hi; k++ {
			landed[k]++
		}
		for _, s := range pl.Sends {
			seg := oldData[self][s.Global.Lo-pl.Old.Lo : s.Global.Hi-pl.Old.Lo]
			wire[key{self, s.Peer}] = append([]float64(nil), seg...)
			sentBytes += s.Global.Len() * 8
			msgs++
		}
		newData[self] = dst
	}
	// Byte accounting per plan must agree with the plans' own view.
	var fromPlans int64
	for _, self := range ranks {
		pl, _ := NewCrossPlan(old, new, oldProcs, newProcs, self)
		fromPlans += pl.MovedBytes()
	}
	if fromPlans != sentBytes {
		t.Fatalf("MovedBytes sum %d != simulated sent bytes %d", fromPlans, sentBytes)
	}
	// Deliver.
	for _, self := range ranks {
		pl, _ := NewCrossPlan(old, new, oldProcs, newProcs, self)
		for _, r := range pl.Recvs {
			seg, ok := wire[key{r.Peer, self}]
			if !ok {
				t.Fatalf("rank %d expects a transfer from %d that was never sent", self, r.Peer)
			}
			if int64(len(seg)) != r.Global.Len() {
				t.Fatalf("rank %d: transfer from %d carries %d values, want %d",
					self, r.Peer, len(seg), r.Global.Len())
			}
			copy(newData[self][r.Global.Lo-pl.New.Lo:], seg)
			for k := r.Global.Lo; k < r.Global.Hi; k++ {
				landed[k]++
			}
			delete(wire, key{r.Peer, self})
		}
	}
	if len(wire) != 0 {
		t.Fatalf("%d transfers sent but never received", len(wire))
	}
	// Every element lands exactly once and carries its own index.
	for g, c := range landed {
		if c != 1 {
			t.Fatalf("element %d landed %d times, want exactly once", g, c)
		}
	}
	for j, r := range newProcs {
		iv := new.Interval(j)
		vals := newData[r]
		if int64(len(vals)) != iv.Len() {
			t.Fatalf("rank %d holds %d values for new interval of %d", r, len(vals), iv.Len())
		}
		for k, v := range vals {
			if v != float64(iv.Lo+int64(k)) {
				t.Fatalf("rank %d: element %d arrived as %g", r, iv.Lo+int64(k), v)
			}
		}
	}
	return sentBytes, msgs
}

// TestCrossPlanShrinkGrow: redistribution plans between layouts of
// different world sizes — a 4-rank layout shrinking onto 3 survivors
// and growing back — must move every element exactly once, with
// moved-byte accounting that matches CrossStats on both legs.
func TestCrossPlanShrinkGrow(t *testing.T) {
	const n = 103 // deliberately not divisible by 3 or 4
	full, err := partition.NewUniform(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := partition.NewUniform(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	fullProcs := []int{0, 1, 2, 3}
	survivors := []int{0, 1, 3} // rank 2 retires

	// Shrink: rank 2's interval must scatter onto the survivors.
	bytes, msgs := applyCross(t, full, shrunk, fullProcs, survivors, fullProcs)
	wantMoved, wantMsgs, err := CrossStats(full, shrunk, fullProcs, survivors)
	if err != nil {
		t.Fatal(err)
	}
	if bytes != wantMoved*8 || msgs != wantMsgs {
		t.Errorf("shrink moved %d bytes in %d msgs, CrossStats predicts %d bytes in %d",
			bytes, msgs, wantMoved*8, wantMsgs)
	}
	if wantMoved < full.Size(2) {
		t.Errorf("shrink moved %d elements, must at least evacuate rank 2's %d", wantMoved, full.Size(2))
	}

	// Grow back: rank 2 re-admitted, starting from the shrunken layout.
	bytes, msgs = applyCross(t, shrunk, full, survivors, fullProcs, fullProcs)
	wantMoved, wantMsgs, err = CrossStats(shrunk, full, survivors, fullProcs)
	if err != nil {
		t.Fatal(err)
	}
	if bytes != wantMoved*8 || msgs != wantMsgs {
		t.Errorf("grow moved %d bytes in %d msgs, CrossStats predicts %d bytes in %d",
			bytes, msgs, wantMoved*8, wantMsgs)
	}
	if wantMoved < full.Size(2) {
		t.Errorf("grow moved %d elements, must at least repopulate rank 2's %d", wantMoved, full.Size(2))
	}
}

// TestCrossPlanWeightedShrink: a shrink onto non-uniform survivors
// (different capability weights) still lands every element exactly
// once.
func TestCrossPlanWeightedShrink(t *testing.T) {
	const n = 200
	full, err := partition.NewUniform(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := partition.NewBlock(n, []float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	applyCross(t, full, shrunk, []int{0, 1, 2, 3, 4}, []int{0, 2, 4}, []int{0, 1, 2, 3, 4})
}

// TestCrossPlanIdentityMatchesNewPlan: with identity mappings the
// cross plan must reduce to the in-world plan.
func TestCrossPlanIdentityMatchesNewPlan(t *testing.T) {
	old, err := partition.NewBlock(50, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	new, err := partition.NewBlock(50, []float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 3; proc++ {
		a, err := NewPlan(old, new, proc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewCrossPlan(old, new, []int{0, 1, 2}, []int{0, 1, 2}, proc)
		if err != nil {
			t.Fatal(err)
		}
		if a.Old != b.Old || a.New != b.New || a.Keep != b.Keep ||
			len(a.Sends) != len(b.Sends) || len(a.Recvs) != len(b.Recvs) {
			t.Errorf("proc %d: cross plan %+v differs from in-world plan %+v", proc, b, a)
		}
	}
}

// TestCrossPlanValidation: malformed mappings must be rejected.
func TestCrossPlanValidation(t *testing.T) {
	a, _ := partition.NewUniform(10, 2)
	b, _ := partition.NewUniform(10, 3)
	c, _ := partition.NewUniform(12, 3)
	cases := []struct {
		name               string
		old, new           *partition.Layout
		oldProcs, newProcs []int
	}{
		{"element count mismatch", a, c, []int{0, 1}, []int{0, 1, 2}},
		{"old mapping too short", a, b, []int{0}, []int{0, 1, 2}},
		{"duplicate carrier rank", a, b, []int{0, 0}, []int{0, 1, 2}},
		{"negative carrier rank", a, b, []int{0, -1}, []int{0, 1, 2}},
	}
	for _, tc := range cases {
		if _, err := NewCrossPlan(tc.old, tc.new, tc.oldProcs, tc.newProcs, 0); err == nil {
			t.Errorf("%s: NewCrossPlan succeeded, want error", tc.name)
		}
		if _, _, err := CrossStats(tc.old, tc.new, tc.oldProcs, tc.newProcs); err == nil {
			t.Errorf("%s: CrossStats succeeded, want error", tc.name)
		}
	}
}
