package redist_test

import (
	"fmt"

	"stance/internal/partition"
	"stance/internal/redist"
)

// Move is the paper's Figure 7 primitive, shown on its own example:
// MOVE({1,3,5,4,6}, 5, 0) = {5,1,3,4,6}.
func ExampleMove() {
	list := []int{1, 3, 5, 4, 6}
	redist.Move(list, 5, 0)
	fmt.Println(list)
	// Output:
	// [5 1 3 4 6]
}

// MinimizeCostRedistribution searches arrangements greedily; Iterated
// repeats the sweep with swap refinement and finds the Figure 5
// optimum.
func ExampleIterated() {
	old, _ := partition.NewBlock(100, []float64{0.27, 0.18, 0.34, 0.07, 0.14})
	newW := []float64{0.10, 0.13, 0.29, 0.24, 0.24}

	best, _ := redist.Iterated(old, newW, redist.OverlapCost, 0)
	ov, _ := partition.Overlap(old, best)
	moved, _ := partition.Moved(old, best)
	fmt.Printf("kept %d, moved %d\n", ov, moved)
	// Output:
	// kept 64, moved 36
}

// NewPlan turns two layouts into one processor's transfer list.
func ExampleNewPlan() {
	old, _ := partition.NewBlock(12, []float64{1, 1})
	wide, _ := partition.NewBlock(12, []float64{3, 1})
	plan, _ := redist.NewPlan(old, wide, 0)
	fmt.Printf("old %v new %v keep %v\n", plan.Old, plan.New, plan.Keep)
	for _, r := range plan.Recvs {
		fmt.Printf("receive %v from processor %d\n", r.Global, r.Peer)
	}
	// Output:
	// old {0 6} new {0 9} keep {0 6}
	// receive {6 9} from processor 1
}
