// Package redist implements the data-redistribution machinery of
// paper Section 3.4: the MinimizeCostRedistribution (MCR) greedy
// search over processor arrangements (Figure 6), its MOVE primitive
// (Figure 7), a brute-force optimal baseline, and the transfer plans
// that actually move data between an old and a new layout.
package redist

import (
	"fmt"

	"stance/internal/partition"
)

// CostFunc scores a candidate new layout against the old layout;
// higher is better. MCR maximizes it.
type CostFunc func(old, candidate *partition.Layout) float64

// OverlapCost scores by the number of elements that stay put —
// maximizing overlap minimizes the volume of data moved.
func OverlapCost(old, cand *partition.Layout) float64 {
	ov, err := partition.Overlap(old, cand)
	if err != nil {
		return -1
	}
	return float64(ov)
}

// OverlapMessagesCost combines data overlap with the message count,
// the paper's "number of messages generated can also be taken into
// account by incorporating it into the cost". Each message is charged
// msgPenalty elements.
func OverlapMessagesCost(msgPenalty float64) CostFunc {
	return func(old, cand *partition.Layout) float64 {
		ov, err := partition.Overlap(old, cand)
		if err != nil {
			return -1
		}
		msgs, err := partition.Messages(old, cand)
		if err != nil {
			return -1
		}
		return float64(ov) - msgPenalty*float64(msgs)
	}
}

// Move relocates element c of list to index l, shifting the elements
// in between (paper Figure 7). For example
// Move([1,3,5,4,6], 5, 0) yields [5,1,3,4,6]. It panics if c is not in
// list or l is out of range, mirroring the paper's precondition.
func Move(list []int, c, l int) {
	if l < 0 || l >= len(list) {
		panic(fmt.Sprintf("redist: Move target %d out of range [0,%d)", l, len(list)))
	}
	x := -1
	for i, v := range list {
		if v == c {
			x = i
			break
		}
	}
	if x < 0 {
		panic(fmt.Sprintf("redist: Move element %d not in list", c))
	}
	switch {
	case x < l:
		copy(list[x:], list[x+1:l+1])
	case x > l:
		copy(list[l+1:x+1], list[l:x])
	}
	list[l] = c
}

// MinimizeCostRedistribution implements the paper's MCR greedy
// algorithm (Figure 6): starting from the old arrangement, it
// considers each processor in old-arrangement order and moves it to
// the position that maximizes cost, given the placements made so far.
// The returned layout distributes n elements by newWeights using the
// chosen arrangement.
//
// The search evaluates O(p^2) candidate placements, each costing O(p),
// for the paper's O(p^3) total. A single greedy sweep can stop short
// of the best reachable arrangement (it finds overlap 53 on the
// paper's own Figure 5 instance, whose optimum is 64); Iterated runs
// sweeps to convergence.
func MinimizeCostRedistribution(old *partition.Layout, newWeights []float64, cost CostFunc) (*partition.Layout, error) {
	build, err := countBuilder(old, newWeights)
	if err != nil {
		return nil, err
	}
	return mcrRun(old, build, cost, 1)
}

// MinimizeCostRedistributionWeighted is MCR over weighted layouts:
// candidate arrangements re-cut the list so each processor's block
// carries item weight proportional to its capability (block sizes
// depend on the position along the list, not just the processor).
func MinimizeCostRedistributionWeighted(old *partition.Layout, itemWeights, newProcWeights []float64, cost CostFunc) (*partition.Layout, error) {
	build, err := weightedBuilder(old, itemWeights, newProcWeights)
	if err != nil {
		return nil, err
	}
	return mcrRun(old, build, cost, 1)
}

// Iterated strengthens the paper's single MCR sweep into a local
// search: it alternates greedy Move sweeps (the Figure 6 step) with
// pairwise-swap refinement until the cost stops improving, bounded by
// maxPasses rounds (maxPasses <= 0 means p rounds). Each round costs
// the same O(p^3) as one MCR sweep. The swap neighborhood matters:
// Move-only hill climbing gets stuck exactly one transposition away
// from the optimum on easily-constructed instances — including the
// paper's own Figure 5 example, where the single sweep reaches overlap
// 53 against an optimum of 64.
func Iterated(old *partition.Layout, newWeights []float64, cost CostFunc, maxPasses int) (*partition.Layout, error) {
	build, err := countBuilder(old, newWeights)
	if err != nil {
		return nil, err
	}
	if maxPasses <= 0 {
		maxPasses = old.P()
	}
	return mcrRun(old, build, cost, maxPasses)
}

// IteratedWeighted is Iterated over weighted layouts (see
// MinimizeCostRedistributionWeighted).
func IteratedWeighted(old *partition.Layout, itemWeights, newProcWeights []float64, cost CostFunc, maxPasses int) (*partition.Layout, error) {
	build, err := weightedBuilder(old, itemWeights, newProcWeights)
	if err != nil {
		return nil, err
	}
	if maxPasses <= 0 {
		maxPasses = old.P()
	}
	return mcrRun(old, build, cost, maxPasses)
}

// layoutBuilder materializes a candidate layout for an arrangement.
type layoutBuilder func(arrangement []int) (*partition.Layout, error)

// countBuilder cuts by element counts: block sizes depend only on the
// processor, so they are computed once.
func countBuilder(old *partition.Layout, newWeights []float64) (layoutBuilder, error) {
	if len(newWeights) != old.P() {
		return nil, fmt.Errorf("redist: %d new weights for %d processors", len(newWeights), old.P())
	}
	sizes, err := partition.SizesFromWeights(old.N(), newWeights)
	if err != nil {
		return nil, err
	}
	return func(arr []int) (*partition.Layout, error) {
		return partition.NewFromSizes(sizes, arr)
	}, nil
}

// weightedBuilder cuts by item weights: every arrangement re-cuts the
// list, since the weight profile along the list determines each
// block's extent.
func weightedBuilder(old *partition.Layout, itemWeights, newProcWeights []float64) (layoutBuilder, error) {
	if len(newProcWeights) != old.P() {
		return nil, fmt.Errorf("redist: %d new weights for %d processors", len(newProcWeights), old.P())
	}
	if int64(len(itemWeights)) != old.N() {
		return nil, fmt.Errorf("redist: %d item weights for %d elements", len(itemWeights), old.N())
	}
	return func(arr []int) (*partition.Layout, error) {
		return partition.NewWeighted(itemWeights, newProcWeights, arr)
	}, nil
}

// mcrRun executes the greedy search: maxPasses rounds of a Figure 6
// sweep, each followed (for multi-pass searches) by pairwise-swap
// refinement.
func mcrRun(old *partition.Layout, build layoutBuilder, cost CostFunc, maxPasses int) (*partition.Layout, error) {
	if cost == nil {
		cost = OverlapCost
	}
	list := old.Arrangement()
	out := old.Arrangement() // LIST_OUT starts as a copy of LIST
	eval := func(arr []int) (float64, error) {
		cand, err := build(arr)
		if err != nil {
			return 0, err
		}
		return cost(old, cand), nil
	}
	if maxPasses == 1 {
		if _, err := mcrSweep(list, out, eval); err != nil {
			return nil, err
		}
		return build(out)
	}
	prev, err := eval(out)
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < maxPasses; pass++ {
		c, err := mcrSweep(list, out, eval)
		if err != nil {
			return nil, err
		}
		c, err = swapSweep(out, c, eval)
		if err != nil {
			return nil, err
		}
		if c <= prev {
			break
		}
		prev = c
	}
	return build(out)
}

// swapSweep greedily applies the best pairwise position swap while it
// improves the cost, starting from current cost cur.
func swapSweep(out []int, cur float64, eval func([]int) (float64, error)) (float64, error) {
	p := len(out)
	for {
		bestI, bestJ, best := -1, -1, cur
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				out[i], out[j] = out[j], out[i]
				c, err := eval(out)
				out[i], out[j] = out[j], out[i]
				if err != nil {
					return 0, err
				}
				if c > best {
					bestI, bestJ, best = i, j, c
				}
			}
		}
		if bestI < 0 {
			return cur, nil
		}
		out[bestI], out[bestJ] = out[bestJ], out[bestI]
		cur = best
	}
}

// mcrSweep performs one greedy pass, mutating out in place, and
// returns the cost of the final arrangement.
func mcrSweep(list, out []int, eval func([]int) (float64, error)) (float64, error) {
	p := len(list)
	last := 0.0
	for i := 0; i < p; i++ {
		// The paper's pseudocode shares max/jmax across iterations of
		// i, which would reuse a stale jmax; we reset them per element,
		// the evidently intended greedy step.
		best := -1.0
		bestJ := -1
		for j := 0; j < p; j++ {
			Move(out, list[i], j)
			c, err := eval(out)
			if err != nil {
				return 0, err
			}
			if c > best {
				best, bestJ = c, j
			}
		}
		Move(out, list[i], bestJ)
		last = best
	}
	return last, nil
}

// BruteForce finds the arrangement that maximizes cost by enumerating
// all p! arrangements. It is the optimal baseline MCR is compared
// against; p is limited to keep the search tractable.
func BruteForce(old *partition.Layout, newWeights []float64, cost CostFunc) (*partition.Layout, error) {
	p := old.P()
	if p > 9 {
		return nil, fmt.Errorf("redist: brute force limited to p <= 9, got %d", p)
	}
	if len(newWeights) != p {
		return nil, fmt.Errorf("redist: %d new weights for %d processors", len(newWeights), p)
	}
	if cost == nil {
		cost = OverlapCost
	}
	sizes, err := partition.SizesFromWeights(old.N(), newWeights)
	if err != nil {
		return nil, err
	}
	arr := make([]int, p)
	for i := range arr {
		arr[i] = i
	}
	var best *partition.Layout
	bestCost := 0.0
	var permute func(k int) error
	permute = func(k int) error {
		if k == p {
			cand, err := partition.NewFromSizes(sizes, arr)
			if err != nil {
				return err
			}
			if c := cost(old, cand); best == nil || c > bestCost {
				best, bestCost = cand, c
			}
			return nil
		}
		for i := k; i < p; i++ {
			arr[k], arr[i] = arr[i], arr[k]
			if err := permute(k + 1); err != nil {
				return err
			}
			arr[k], arr[i] = arr[i], arr[k]
		}
		return nil
	}
	if err := permute(0); err != nil {
		return nil, err
	}
	return best, nil
}
