package loadbal

import (
	"fmt"
	"sort"

	"stance/internal/comm"
)

// Leader-aggregated report exchange for two-level worlds (paper
// Section 4's nonuniform environment). The flat decentralized check
// all-gathers every rank's report — on a cluster of node groups that
// puts O(P) messages on the slow inter-group link every check. Here
// the exchange follows the topology: members hand their report to
// their group leader over the fast intra-group links, ONLY the leaders
// exchange (aggregated, packed) group vectors across the slow link —
// G·(G−1) messages — and each leader multicasts the assembled world
// vector back down. Every rank ends with the identical [][]byte the
// flat all-gather would have produced, so the pure-float decision
// downstream is bit-exact either way.

// Tags for the leader protocol (the 0x40x block belongs to loadbal).
const (
	tagLeaderGather = 0x403
	tagLeaderX      = 0x404
	tagLeaderBcast  = 0x405
)

// hierGroups projects the world topology onto the communicator: comm
// rank -> compact group index, members per compact group in ascending
// comm rank. A sub-world sees only the groups it intersects; compact
// ids follow ascending world group id, so every rank derives the same
// structure without communicating.
func hierGroups(c *comm.Comm, topo *comm.Topology) (groupOf []int, members [][]int, err error) {
	if topo.P() != c.WorldSize() {
		return nil, nil, fmt.Errorf("loadbal: topology covers %d ranks, world has %d", topo.P(), c.WorldSize())
	}
	size := c.Size()
	worldGroup := make([]int, size)
	present := map[int]bool{}
	for r := 0; r < size; r++ {
		worldGroup[r] = topo.GroupOf(c.WorldRankOf(r))
		present[worldGroup[r]] = true
	}
	ids := make([]int, 0, len(present))
	for g := range present {
		ids = append(ids, g)
	}
	sort.Ints(ids)
	compact := make(map[int]int, len(ids))
	for i, g := range ids {
		compact[g] = i
	}
	groupOf = make([]int, size)
	members = make([][]int, len(ids))
	for r := 0; r < size; r++ {
		g := compact[worldGroup[r]]
		groupOf[r] = g
		members[g] = append(members[g], r)
	}
	return groupOf, members, nil
}

// leaderAllGather is AllGather with the hierarchical exchange pattern:
// the returned slices are indexed by comm rank and identical on every
// rank, exactly like c.AllGather's.
func leaderAllGather(c *comm.Comm, topo *comm.Topology, payload []byte) ([][]byte, error) {
	groupOf, members, err := hierGroups(c, topo)
	if err != nil {
		return nil, err
	}
	me := c.Rank()
	g := groupOf[me]
	mine := members[g]
	leader := mine[0]

	if me != leader {
		// Member: report up the fast link, wait for the assembled world
		// vector to come back down.
		if err := c.Send(leader, tagLeaderGather, payload); err != nil {
			return nil, err
		}
		packed, err := c.Recv(leader, tagLeaderBcast)
		if err != nil {
			return nil, err
		}
		defer c.Release(packed)
		return decodeWorldVector(packed, c.Size())
	}

	// Leader: gather the group's reports over the fast links...
	groupVec := make([][]byte, len(mine))
	groupVec[0] = payload
	for i, r := range mine[1:] {
		data, err := c.Recv(r, tagLeaderGather)
		if err != nil {
			return nil, err
		}
		groupVec[i+1] = data
		defer c.Release(data)
	}
	packedMine := comm.EncodeSections(groupVec)

	// ...exchange packed group vectors with the other leaders — the
	// only traffic on the slow link. Sends go out first and do not
	// block on the receives, so the exchange cannot deadlock.
	for h, m := range members {
		if h != g {
			if err := c.Send(m[0], tagLeaderX, packedMine); err != nil {
				return nil, err
			}
		}
	}
	all := make([][]byte, c.Size())
	place := func(h int, packed []byte) error {
		vec, err := comm.DecodeSections(packed)
		if err != nil {
			return err
		}
		if len(vec) != len(members[h]) {
			return fmt.Errorf("loadbal: group %d vector carries %d reports for %d members", h, len(vec), len(members[h]))
		}
		for i, r := range members[h] {
			// DecodeSections aliases the packed buffer, which goes back
			// to the transport pool — copy the reports out.
			all[r] = append([]byte(nil), vec[i]...)
		}
		return nil
	}
	if err := place(g, packedMine); err != nil {
		return nil, err
	}
	for h, m := range members {
		if h == g {
			continue
		}
		packed, err := c.Recv(m[0], tagLeaderX)
		if err != nil {
			return nil, err
		}
		err = place(h, packed)
		c.Release(packed)
		if err != nil {
			return nil, err
		}
	}

	// ...and multicast the world vector back down the fast links.
	if len(mine) > 1 {
		packedAll := comm.EncodeSections(all)
		if err := c.Multicast(mine[1:], tagLeaderBcast, packedAll); err != nil {
			return nil, err
		}
	}
	return all, nil
}

// decodeWorldVector unpacks a leader's assembled world vector.
func decodeWorldVector(packed []byte, size int) ([][]byte, error) {
	vec, err := comm.DecodeSections(packed)
	if err != nil {
		return nil, err
	}
	if len(vec) != size {
		return nil, fmt.Errorf("loadbal: world vector carries %d reports for %d ranks", len(vec), size)
	}
	// The packed buffer is released by the caller; the decision layer
	// keeps the slices only within the check, so copy them out.
	out := make([][]byte, size)
	for i, v := range vec {
		out[i] = append([]byte(nil), v...)
	}
	return out, nil
}
