// Package loadbal implements the adaptive load balancing of paper
// Section 3.5: each processor monitors its own load (average compute
// time per data item), ships it to a centralized controller (rank 0),
// and the controller decides whether remapping pays — remapping is
// profitable when the predicted per-phase improvement over the
// decision horizon offsets the estimated cost of moving the data and
// rebuilding the communication schedule.
package loadbal

import (
	"fmt"
	"time"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/partition"
	"stance/internal/redist"
)

// Message tags for the controller protocol.
const (
	tagLoadReport = 0x401
	tagDecision   = 0x402
)

// Config parameterizes the balancer.
type Config struct {
	// Horizon is the number of future iterations a remap is assumed to
	// benefit; the paper checks every 10 iterations and the remap
	// serves until the next check, so Horizon defaults to CheckEvery.
	Horizon int
	// SafetyFactor inflates the estimated remap cost before the
	// profitability comparison (default 1: the paper's plain
	// comparison).
	SafetyFactor float64
	// CostModel estimates redistribution time from the data moved and
	// messages generated. The zero model prices redistribution at zero
	// and makes every imbalance remap-worthy.
	CostModel redist.CostModel
	// Estimator predicts next-phase rates from the measurement
	// history (nil: the paper's last-window behaviour). See
	// EstimatorKind for the policies.
	Estimator *Estimator
	// Decentralized replaces the centralized controller with the
	// paper's envisioned distributed strategy: rates travel by
	// all-gather and every rank computes the (identical) decision
	// itself, removing the controller bottleneck at the price of p
	// concurrent reductions.
	Decentralized bool
	// Topology routes the decentralized report exchange through group
	// leaders on a two-level world: members report to their group
	// leader over the fast links, only leaders exchange across the slow
	// inter-group link — G·(G−1) slow-link messages per check instead
	// of O(P) — and leaders multicast the assembled vector back down.
	// Every rank still sees the identical report vector, so decisions
	// are bit-exact against the flat exchange. nil keeps the flat
	// all-gather; ignored in centralized mode.
	Topology *comm.Topology
}

// Report is one rank's load report: measured compute seconds per data
// item over the window since the last check.
type Report struct {
	RatePerItem float64
	Items       int64
}

// Decision is the controller's verdict, identical on every rank.
type Decision struct {
	// Remapped reports whether a remap was performed.
	Remapped bool `json:"remapped"`
	// NewWeights are the capability estimates (1/rate, normalized)
	// that the remap used, or would have used.
	NewWeights []float64 `json:"new_weights"`
	// PredictedCurrent and PredictedNew are the controller's per-phase
	// time predictions for the current and proposed layouts, in
	// seconds (hence the _s JSON suffix).
	PredictedCurrent float64 `json:"predicted_current_s"`
	PredictedNew     float64 `json:"predicted_new_s"`
	// EstimatedRemapCost is the modeled redistribution + inspector
	// cost in seconds.
	EstimatedRemapCost float64 `json:"estimated_remap_cost_s"`
	// CheckTime is the cost of the check itself (report, decide,
	// broadcast) on this rank.
	CheckTime time.Duration `json:"check_ns"`
	// RemapTime is the measured remap cost on this rank (zero when no
	// remap happened).
	RemapTime time.Duration `json:"remap_ns"`
}

// Balancer drives the periodic load-balance check for one rank.
type Balancer struct {
	rt  *core.Runtime
	cfg Config
}

// New creates a balancer bound to a runtime.
func New(rt *core.Runtime, cfg Config) (*Balancer, error) {
	if rt == nil {
		return nil, fmt.Errorf("loadbal: nil runtime")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 10
	}
	if cfg.SafetyFactor <= 0 {
		cfg.SafetyFactor = 1
	}
	return &Balancer{rt: rt, cfg: cfg}, nil
}

// Reset clears the measurement history after a membership transition:
// the active world the balancer reads through its runtime has been
// renumbered, a parked workstation contributes zero capability (it is
// simply absent from the new world), and the transition itself already
// forced a fresh cut of the list, so the next check starts from a
// clean slate instead of mixing windows from two different rank
// numberings.
func (b *Balancer) Reset() {
	b.cfg.Estimator.Reset()
}

// Check is the collective load-balance check. In the paper's
// centralized mode every rank reports its measured rate to rank 0,
// which decides and broadcasts; in decentralized mode the rates travel
// by all-gather and every rank computes the identical decision. If
// remapping is profitable, all ranks remap together. The caller
// supplies the window measurement (typically solver.Timings since the
// last check).
func (b *Balancer) Check(rep Report) (Decision, error) {
	c := b.rt.Comm()
	clock := b.rt.Clock()
	start := clock.Now()

	// The report carries the rank's last inspector time alongside the
	// measurement: the schedule-rebuild estimate must be identical on
	// every rank, or (in decentralized mode) a borderline decision
	// could diverge and strand some ranks in the remap collective.
	payload := comm.F64sToBytes([]float64{
		rep.RatePerItem, float64(rep.Items), b.rt.LastInspectorTime().Seconds(),
	})
	var verdict []float64 // [remap 0/1, predCur, predNew, estCost, weights...]
	if b.cfg.Decentralized {
		var all [][]byte
		var err error
		if b.cfg.Topology != nil {
			all, err = leaderAllGather(c, b.cfg.Topology, payload)
		} else {
			all, err = c.AllGather(tagLoadReport, payload)
		}
		if err != nil {
			return Decision{}, err
		}
		rates, inspector, err := parseReports(all)
		if err != nil {
			return Decision{}, err
		}
		// Every rank computes the same pure-float decision from the
		// same gathered inputs, so no broadcast is needed.
		verdict, err = b.decide(rates, inspector)
		if err != nil {
			return Decision{}, err
		}
	} else {
		reports, err := c.Gather(0, tagLoadReport, payload)
		if err != nil {
			return Decision{}, err
		}
		if c.Rank() == 0 {
			rates, inspector, err := parseReports(reports)
			if err != nil {
				return Decision{}, err
			}
			verdict, err = b.decide(rates, inspector)
			if err != nil {
				return Decision{}, err
			}
		}
		packed, err := c.Bcast(0, tagDecision, comm.F64sToBytes(verdict))
		if err != nil {
			return Decision{}, err
		}
		verdict, err = comm.BytesToF64s(packed)
		if err != nil {
			return Decision{}, err
		}
	}
	if len(verdict) != 4+c.Size() {
		return Decision{}, fmt.Errorf("loadbal: malformed decision of %d values", len(verdict))
	}
	d := Decision{
		Remapped:           verdict[0] != 0,
		PredictedCurrent:   verdict[1],
		PredictedNew:       verdict[2],
		EstimatedRemapCost: verdict[3],
		NewWeights:         verdict[4:],
	}
	d.CheckTime = clock.Now().Sub(start)

	if d.Remapped {
		t0 := clock.Now()
		if _, err := b.rt.Remap(d.NewWeights); err != nil {
			return Decision{}, err
		}
		d.RemapTime = clock.Now().Sub(t0)
	}
	return d, nil
}

// parseReports decodes the gathered per-rank reports into rates and
// the slowest reported inspector time (the shared schedule-rebuild
// estimate).
func parseReports(reports [][]byte) ([]float64, float64, error) {
	rates := make([]float64, len(reports))
	inspector := 0.0
	for q, data := range reports {
		vals, err := comm.BytesToF64s(data)
		if err != nil {
			return nil, 0, err
		}
		if len(vals) != 3 {
			return nil, 0, fmt.Errorf("loadbal: malformed report from rank %d", q)
		}
		rates[q] = vals[0]
		if vals[2] > inspector {
			inspector = vals[2]
		}
	}
	return rates, inspector, nil
}

// decide runs on the controller (or on every rank when
// decentralized): estimate capabilities from measured rates, predict
// the next phase under current and proposed layouts, price the
// redistribution, and compare. inspector is the gathered worst-case
// schedule-rebuild time — deliberately not this rank's own, so every
// rank prices the remap identically.
func (b *Balancer) decide(rates []float64, inspector float64) ([]float64, error) {
	if b.cfg.Estimator != nil {
		b.cfg.Estimator.Observe(rates)
		rates = b.cfg.Estimator.Predict()
	}
	layout := b.rt.Layout()
	p := layout.P()

	// A rank that measured nothing (no items yet) inherits the mean
	// positive rate, a neutral estimate.
	meanRate := 0.0
	nPos := 0
	for _, r := range rates {
		if r > 0 {
			meanRate += r
			nPos++
		}
	}
	if nPos == 0 {
		// No information at all: keep the current layout.
		verdict := make([]float64, 4+p)
		for i := range verdict[4:] {
			verdict[4+i] = 1
		}
		return verdict, nil
	}
	meanRate /= float64(nPos)
	weights := make([]float64, p)
	for i, r := range rates {
		if r <= 0 {
			r = meanRate
		}
		weights[i] = 1 / r
	}

	// Predicted per-phase time = max_i items_i * rate_i (the paper's
	// idle-time minimization target).
	predCur := 0.0
	for i := 0; i < p; i++ {
		r := rates[i]
		if r <= 0 {
			r = meanRate
		}
		if t := float64(layout.Size(i)) * r; t > predCur {
			predCur = t
		}
	}
	newSizes, err := partition.SizesFromWeights(layout.N(), weights)
	if err != nil {
		return nil, err
	}
	predNew := 0.0
	for i := 0; i < p; i++ {
		r := rates[i]
		if r <= 0 {
			r = meanRate
		}
		if t := float64(newSizes[i]) * r; t > predNew {
			predNew = t
		}
	}

	// Price the redistribution against the proposed layout (identity
	// arrangement bound; MCR only lowers it) plus the gathered
	// inspector time as the schedule-rebuild estimate.
	cand, err := partition.NewFromSizes(newSizes, layout.Arrangement())
	if err != nil {
		return nil, err
	}
	moveCost, err := b.cfg.CostModel.Estimate(layout, cand)
	if err != nil {
		return nil, err
	}
	estCost := (moveCost + inspector) * b.cfg.SafetyFactor

	gain := (predCur - predNew) * float64(b.cfg.Horizon)
	remap := 0.0
	if gain > estCost && predNew < predCur {
		remap = 1
	}
	verdict := make([]float64, 0, 4+p)
	verdict = append(verdict, remap, predCur, predNew, estCost)
	verdict = append(verdict, weights...)
	return verdict, nil
}
