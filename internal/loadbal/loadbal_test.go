package loadbal

import (
	"fmt"
	"testing"
	"time"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/graph"
	"stance/internal/hetero"
	"stance/internal/mesh"
	"stance/internal/order"
	"stance/internal/redist"
	"stance/internal/solver"
	"stance/internal/vtime"
)

func testMesh(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := mesh.Honeycomb(25, 40)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runScenario runs the solver under env for warmup iterations, checks
// once, and returns the decisions (indexed by rank) plus the final
// layout sizes.
func runScenario(t *testing.T, env *hetero.Env, cfg Config, warmup int) ([]Decision, []int64) {
	t.Helper()
	g := testMesh(t)
	p := env.P()
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	decisions := make([]Decision, p)
	sizes := make([]int64, p)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{Order: order.RCB})
		if err != nil {
			return err
		}
		s, err := solver.New(rt, env, 2)
		if err != nil {
			return err
		}
		b, err := New(rt, cfg)
		if err != nil {
			return err
		}
		if err := s.Run(warmup, nil); err != nil {
			return err
		}
		tm := s.TakeTimings()
		d, err := b.Check(Report{RatePerItem: tm.RatePerItem(), Items: tm.Items})
		if err != nil {
			return err
		}
		decisions[c.Rank()] = d
		if c.Rank() == 0 {
			for q := 0; q < p; q++ {
				sizes[q] = rt.Layout().Size(q)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return decisions, sizes
}

func TestImbalanceTriggersRemap(t *testing.T) {
	// Workstation 0 carries a constant factor-3 competing load (the
	// paper's Table 5 setup): the controller must remap, and the new
	// layout must give workstation 0 roughly a third of a fair share.
	env := hetero.PaperAdaptive(4, 3)
	decisions, sizes := runScenario(t, env, Config{Horizon: 490}, 10)
	for rank, d := range decisions {
		if !d.Remapped {
			t.Fatalf("rank %d: no remap despite 3x imbalance", rank)
		}
		if d.PredictedNew >= d.PredictedCurrent {
			t.Errorf("rank %d: predicted no improvement (%v >= %v)",
				rank, d.PredictedNew, d.PredictedCurrent)
		}
		if d.CheckTime <= 0 {
			t.Errorf("rank %d: check time not measured", rank)
		}
		if d.RemapTime <= 0 {
			t.Errorf("rank %d: remap time not measured", rank)
		}
	}
	// All ranks must agree on the decision.
	for rank := 1; rank < len(decisions); rank++ {
		if decisions[rank].Remapped != decisions[0].Remapped {
			t.Fatal("ranks disagree on the decision")
		}
	}
	fair := int64(0)
	for _, s := range sizes {
		fair += s
	}
	fair /= int64(len(sizes))
	if sizes[0] >= fair {
		t.Errorf("loaded workstation still owns %d of fair share %d", sizes[0], fair)
	}
	// The loaded workstation should hold roughly fair/3 x 4/3... more
	// precisely weights ~ (1/3,1,1,1): share ~ (1/3)/(10/3) = 10%.
	total := 4 * fair
	lo, hi := total/20, total/5 // 5%..20% brackets the 10% target
	if sizes[0] < lo || sizes[0] > hi {
		t.Errorf("loaded workstation owns %d of %d, want in [%d,%d]", sizes[0], total, lo, hi)
	}
}

func TestBalancedEnvironmentDoesNotRemap(t *testing.T) {
	env := hetero.Uniform(3)
	// A realistic cost model: any remap costs something, and a
	// balanced run cannot win anything back.
	cfg := Config{
		Horizon:   10,
		CostModel: redist.CostModel{PerMessage: 1e-3, PerByte: 1e-6},
	}
	decisions, _ := runScenario(t, env, cfg, 8)
	for rank, d := range decisions {
		if d.Remapped {
			t.Errorf("rank %d: remapped a balanced environment (gain %v vs cost %v)",
				rank, d.PredictedCurrent-d.PredictedNew, d.EstimatedRemapCost)
		}
	}
}

func TestShortHorizonSuppressesRemap(t *testing.T) {
	// Same 3x imbalance, but the remap only has 1 iteration to pay off
	// against an enormous modeled cost: the controller must decline.
	env := hetero.PaperAdaptive(3, 3)
	cfg := Config{
		Horizon:      1,
		CostModel:    redist.CostModel{PerMessage: 10, PerByte: 1e-3},
		SafetyFactor: 1,
	}
	decisions, _ := runScenario(t, env, cfg, 6)
	for rank, d := range decisions {
		if d.Remapped {
			t.Errorf("rank %d: remapped despite prohibitive cost", rank)
		}
		if d.EstimatedRemapCost <= 0 {
			t.Errorf("rank %d: zero cost estimate under a priced model", rank)
		}
	}
}

func TestZeroInformationKeepsLayout(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{})
		if err != nil {
			return err
		}
		b, err := New(rt, Config{})
		if err != nil {
			return err
		}
		d, err := b.Check(Report{}) // no measurements at all
		if err != nil {
			return err
		}
		if d.Remapped {
			return fmt.Errorf("remapped with zero information")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartialInformationUsesMeanRate(t *testing.T) {
	// One rank reports a rate, the other reports nothing: the missing
	// rank is assumed average, so weights come out equal and no remap
	// happens under a priced model.
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{})
		if err != nil {
			return err
		}
		b, err := New(rt, Config{CostModel: redist.CostModel{PerMessage: 1e-3}})
		if err != nil {
			return err
		}
		rep := Report{}
		if c.Rank() == 0 {
			rep = Report{RatePerItem: 1e-6, Items: 1000}
		}
		d, err := b.Check(rep)
		if err != nil {
			return err
		}
		if d.Remapped {
			return fmt.Errorf("remapped on partial information")
		}
		if len(d.NewWeights) != 2 {
			return fmt.Errorf("weights = %v", d.NewWeights)
		}
		if d.NewWeights[0] != d.NewWeights[1] {
			return fmt.Errorf("missing rank not assumed average: %v", d.NewWeights)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil runtime accepted")
	}
}

// End-to-end: with the paper's protocol (run 10, check, run the rest)
// the balanced run must beat the unbalanced one substantially. Runs on
// the simulated clock with virtualized compute, so the comparison is
// between exact virtual durations — the wall-clock version of this
// test had to hide behind -short on loaded machines.
func TestAdaptiveRunBeatsStaticUnderLoad(t *testing.T) {
	g, err := mesh.Honeycomb(60, 80)
	if err != nil {
		t.Fatal(err)
	}
	env := hetero.PaperAdaptive(3, 3)
	const totalIters = 40
	run := func(balance bool) time.Duration {
		clk := vtime.NewSim()
		w, err := comm.Open("inproc", 3, comm.TransportOptions{Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		var elapsed time.Duration
		err = w.SPMD(nil, func(c *comm.Comm) error {
			rt, err := core.New(c, g, core.Config{Order: order.RCB})
			if err != nil {
				return err
			}
			s, err := solver.New(rt, env, 1)
			if err != nil {
				return err
			}
			s.SetVirtualCompute(5 * time.Microsecond)
			b, err := New(rt, Config{Horizon: totalIters - 10})
			if err != nil {
				return err
			}
			if err := c.Barrier(0x777); err != nil {
				return err
			}
			start := clk.Now()
			if err := s.Run(10, nil); err != nil {
				return err
			}
			if balance {
				tm := s.TakeTimings()
				if _, err := b.Check(Report{RatePerItem: tm.RatePerItem(), Items: tm.Items}); err != nil {
					return err
				}
			}
			if err := s.Run(totalIters-10, nil); err != nil {
				return err
			}
			if err := c.Barrier(0x778); err != nil {
				return err
			}
			if c.Rank() == 0 {
				elapsed = clk.Now().Sub(start)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	static := run(false)
	adaptive := run(true)
	if adaptive >= static {
		t.Errorf("load balancing did not help: %v with vs %v without", adaptive, static)
	}
}
