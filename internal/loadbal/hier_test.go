package loadbal

import (
	"fmt"
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/order"
	"stance/internal/vtime"
)

// checkOnce builds a deterministic world on the simulated clock, runs
// exactly one balance check with synthetic heterogeneous rates, and
// returns each rank's decision plus the per-rank layout sizes after
// the check and the slow-link message count the check generated.
func checkOnce(t *testing.T, cfg Config, topo *comm.Topology) ([]Decision, []int64, int64) {
	t.Helper()
	g := testMesh(t)
	const p = 4
	clk := vtime.NewSim()
	w, err := comm.Open("inproc", p, comm.TransportOptions{Clock: clk, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	decisions := make([]Decision, p)
	sizes := make([]int64, p)
	var before int64
	err = w.SPMD(nil, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{Order: order.RCB})
		if err != nil {
			return err
		}
		b, err := New(rt, cfg)
		if err != nil {
			return err
		}
		if err := c.Barrier(0x70); err != nil {
			return err
		}
		if c.Rank() == 0 {
			before, _ = w.InterGroupStats()
		}
		if err := c.Barrier(0x71); err != nil {
			return err
		}
		// Rank r runs (r+1)× slower than rank 0 — the heterogeneous
		// speeds of the paper's Table 4 environments.
		d, err := b.Check(Report{
			RatePerItem: float64(c.Rank()+1) * 1e-6,
			Items:       rt.Layout().Size(c.Rank()),
		})
		if err != nil {
			return err
		}
		decisions[c.Rank()] = d
		sizes[c.Rank()] = rt.Layout().Size(c.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := w.InterGroupStats()
	return decisions, sizes, after - before
}

func decisionsEqual(a, b Decision) error {
	if a.Remapped != b.Remapped {
		return fmt.Errorf("Remapped %v vs %v", a.Remapped, b.Remapped)
	}
	if a.PredictedCurrent != b.PredictedCurrent || a.PredictedNew != b.PredictedNew ||
		a.EstimatedRemapCost != b.EstimatedRemapCost {
		return fmt.Errorf("predictions (%g,%g,%g) vs (%g,%g,%g)",
			a.PredictedCurrent, a.PredictedNew, a.EstimatedRemapCost,
			b.PredictedCurrent, b.PredictedNew, b.EstimatedRemapCost)
	}
	if len(a.NewWeights) != len(b.NewWeights) {
		return fmt.Errorf("weights length %d vs %d", len(a.NewWeights), len(b.NewWeights))
	}
	for i := range a.NewWeights {
		if a.NewWeights[i] != b.NewWeights[i] {
			return fmt.Errorf("weight[%d] %v vs %v", i, a.NewWeights[i], b.NewWeights[i])
		}
	}
	return nil
}

// TestExchangeModesBitExact pins the divergence class PR 1 fixed in
// the decentralized path, now across ALL THREE exchange modes: the
// centralized Gather(0)+Bcast controller, the flat decentralized
// all-gather, and the leader-aggregated hierarchical exchange must
// produce bit-identical decisions on every rank under heterogeneous
// speeds — same remap verdict, same weights, same predictions, same
// resulting layout.
func TestExchangeModesBitExact(t *testing.T) {
	topo, err := comm.ContiguousGroups(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	central, centralSizes, _ := checkOnce(t, Config{}, topo)
	flat, flatSizes, _ := checkOnce(t, Config{Decentralized: true}, topo)
	leader, leaderSizes, _ := checkOnce(t, Config{Decentralized: true, Topology: topo}, topo)

	// Within each mode every rank must hold the identical decision.
	for name, ds := range map[string][]Decision{"centralized": central, "flat": flat, "leader": leader} {
		for r := 1; r < len(ds); r++ {
			if err := decisionsEqual(ds[0], ds[r]); err != nil {
				t.Errorf("%s: rank %d decision diverges from rank 0: %v", name, r, err)
			}
		}
	}
	// And the modes must agree with each other, bit for bit.
	if err := decisionsEqual(central[0], flat[0]); err != nil {
		t.Errorf("centralized vs flat decentralized: %v", err)
	}
	if err := decisionsEqual(flat[0], leader[0]); err != nil {
		t.Errorf("flat vs leader-aggregated: %v", err)
	}
	if !central[0].Remapped {
		t.Error("heterogeneous speeds should have triggered a remap in this scenario")
	}
	for r := range centralSizes {
		if centralSizes[r] != flatSizes[r] || flatSizes[r] != leaderSizes[r] {
			t.Errorf("rank %d sizes diverge: centralized %d, flat %d, leader %d",
				r, centralSizes[r], flatSizes[r], leaderSizes[r])
		}
	}
}

// TestLeaderExchangeSubWorld: the leader exchange must follow a
// sub-world's rank translation — a balancer on an elastic active set
// sees only the groups the survivors span.
func TestLeaderExchangeSubWorld(t *testing.T) {
	topo, err := comm.ContiguousGroups(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.Open("inproc", 4, comm.TransportOptions{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	members := []int{0, 2, 3} // world rank 1 parked; groups {0} and {2,3}
	err = w.SPMD(nil, func(c *comm.Comm) error {
		if c.Rank() == 1 {
			return nil
		}
		sub, err := c.Sub(members)
		if err != nil {
			return err
		}
		payload := []byte{byte('a' + c.Rank())}
		all, err := leaderAllGather(sub, topo, payload)
		if err != nil {
			return err
		}
		if len(all) != 3 {
			return fmt.Errorf("world %d: %d reports, want 3", c.Rank(), len(all))
		}
		for i, m := range members {
			if len(all[i]) != 1 || all[i][0] != byte('a'+m) {
				return fmt.Errorf("world %d: report[%d] = %q, want %q", c.Rank(), i, all[i], byte('a'+m))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
