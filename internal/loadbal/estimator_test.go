package loadbal

import (
	"math"
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/hetero"
	"stance/internal/redist"
	"stance/internal/solver"
)

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(EstimateEWMA, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewEstimator(EstimateEWMA, 1.5); err == nil {
		t.Error("alpha=1.5 accepted")
	}
	if _, err := NewEstimator(EstimateLast, 0); err != nil {
		t.Errorf("last-window estimator rejected: %v", err)
	}
}

func TestEstimateLastTracksLatest(t *testing.T) {
	e, err := NewEstimator(EstimateLast, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Predict() != nil {
		t.Error("empty estimator predicted something")
	}
	e.Observe([]float64{1, 2})
	e.Observe([]float64{3, 0}) // rank 1 silent this window
	got := e.Predict()
	if got[0] != 3 {
		t.Errorf("rank 0 = %v, want latest 3", got[0])
	}
	if got[1] != 2 {
		t.Errorf("rank 1 = %v, want last known 2", got[1])
	}
}

func TestEstimateEWMASmoothsSpikes(t *testing.T) {
	e, err := NewEstimator(EstimateEWMA, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Observe([]float64{1, 1})
	}
	// A single spike on rank 0.
	e.Observe([]float64{10, 1})
	got := e.Predict()
	if got[0] > 4 {
		t.Errorf("EWMA %v tracked the spike too closely", got[0])
	}
	if got[0] <= 1 {
		t.Errorf("EWMA %v ignored the spike entirely", got[0])
	}
	if math.Abs(got[1]-1) > 1e-9 {
		t.Errorf("steady rank drifted to %v", got[1])
	}
	// Silent windows keep the previous estimate.
	before := e.Predict()[0]
	e.Observe([]float64{0, 1})
	if e.Predict()[0] != before {
		t.Error("silent window changed the EWMA")
	}
}

func TestEstimateMaxIsPessimistic(t *testing.T) {
	e, err := NewEstimator(EstimateMax, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe([]float64{5, 1})
	e.Observe([]float64{2, 3})
	got := e.Predict()
	if got[0] != 5 || got[1] != 3 {
		t.Errorf("Predict = %v, want [5 3]", got)
	}
}

func TestEstimatorWindowCap(t *testing.T) {
	e, err := NewEstimator(EstimateMax, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.WindowCap = 2
	e.Observe([]float64{100})
	e.Observe([]float64{1})
	e.Observe([]float64{2})
	// The 100 observation has aged out of the 2-window history.
	if got := e.Predict(); got[0] != 2 {
		t.Errorf("Predict = %v, want 2 after the spike aged out", got)
	}
}

// TestDecentralizedMatchesCentralized runs the same imbalanced
// scenario under both strategies; both must remap and agree on the
// weights, and in decentralized mode all ranks decide identically
// without a controller broadcast.
func TestDecentralizedMatchesCentralized(t *testing.T) {
	g := testMesh(t)
	env := hetero.PaperAdaptive(3, 3)
	run := func(decentralized bool) []Decision {
		ws, err := comm.NewWorld(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer comm.CloseWorld(ws)
		decisions := make([]Decision, 3)
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			rt, err := core.New(c, g, core.Config{})
			if err != nil {
				return err
			}
			s, err := solver.New(rt, env, 2)
			if err != nil {
				return err
			}
			b, err := New(rt, Config{Horizon: 100, Decentralized: decentralized})
			if err != nil {
				return err
			}
			if err := s.Run(8, nil); err != nil {
				return err
			}
			tm := s.TakeTimings()
			d, err := b.Check(Report{RatePerItem: tm.RatePerItem(), Items: tm.Items})
			if err != nil {
				return err
			}
			decisions[c.Rank()] = d
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return decisions
	}
	central := run(false)
	decentral := run(true)
	for rank := 0; rank < 3; rank++ {
		if !central[rank].Remapped {
			t.Fatalf("centralized rank %d did not remap", rank)
		}
		if !decentral[rank].Remapped {
			t.Fatalf("decentralized rank %d did not remap", rank)
		}
	}
	// Decentralized ranks must agree exactly among themselves.
	for rank := 1; rank < 3; rank++ {
		if decentral[rank].PredictedCurrent != decentral[0].PredictedCurrent ||
			decentral[rank].PredictedNew != decentral[0].PredictedNew {
			t.Fatalf("decentralized ranks disagree: %+v vs %+v", decentral[rank], decentral[0])
		}
		for i := range decentral[rank].NewWeights {
			if decentral[rank].NewWeights[i] != decentral[0].NewWeights[i] {
				t.Fatalf("decentralized weights disagree at rank %d", rank)
			}
		}
	}
}

// TestEstimatorDampensTransientLoad shows the EWMA extension doing its
// job end to end: a load that vanished before the check no longer
// dominates the estimate the way the last window would.
func TestEstimatorDampensTransientLoad(t *testing.T) {
	g := testMesh(t)
	// Load active only for iterations 4..8 of 8: the last window is
	// polluted, but the longer history is clean.
	env := hetero.Uniform(2)
	env.Loads = []hetero.Load{{Rank: 0, Factor: 8, FromIter: 6, UntilIter: 8}}
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	var lastW, ewmaW float64
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{})
		if err != nil {
			return err
		}
		s, err := solver.New(rt, env, 2)
		if err != nil {
			return err
		}
		est, err := NewEstimator(EstimateEWMA, 0.3)
		if err != nil {
			return err
		}
		huge := redist.CostModel{PerMessage: 1e6, PerByte: 1}
		bLast, err := New(rt, Config{Horizon: 1, CostModel: huge})
		if err != nil {
			return err
		}
		bEWMA, err := New(rt, Config{Horizon: 1, Estimator: est, CostModel: huge})
		if err != nil {
			return err
		}
		// Checks every 2 iterations; huge cost model means no remap is
		// ever performed, we only inspect the weight estimates.
		for chunk := 0; chunk < 4; chunk++ {
			if err := s.Run(2, nil); err != nil {
				return err
			}
			tm := s.TakeTimings()
			rep := Report{RatePerItem: tm.RatePerItem(), Items: tm.Items}
			dLast, err := bLast.Check(rep)
			if err != nil {
				return err
			}
			dEWMA, err := bEWMA.Check(rep)
			if err != nil {
				return err
			}
			if c.Rank() == 0 && chunk == 3 {
				lastW = dLast.NewWeights[0] / dLast.NewWeights[1]
				ewmaW = dEWMA.NewWeights[0] / dEWMA.NewWeights[1]
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The last-window estimate sees rank 0 as ~8x slower; the EWMA
	// estimate is much closer to parity.
	if !(ewmaW > lastW) {
		t.Errorf("EWMA weight ratio %.3f not gentler than last-window %.3f", ewmaW, lastW)
	}
}
