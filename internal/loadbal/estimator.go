package loadbal

import (
	"fmt"
	"math"
)

// The paper estimates a processor's capability from the current
// phase's measured time per data item, and notes (Section 3.5,
// footnote) that "this could be extended to techniques that would
// predict the available computational resources based on more than one
// previous phase". Estimator implements that extension: a per-rank
// time series of measured rates is folded into a prediction by one of
// several policies.

// EstimatorKind selects the rate-prediction policy.
type EstimatorKind int

const (
	// EstimateLast predicts the next phase from the latest window
	// alone — the paper's baseline behaviour.
	EstimateLast EstimatorKind = iota
	// EstimateEWMA predicts with an exponentially weighted moving
	// average, damping one-off spikes (a brief cron job does not
	// trigger a remap).
	EstimateEWMA
	// EstimateMax predicts pessimistically with the slowest rate seen
	// in the window history, for environments where loads recur.
	EstimateMax
)

// Estimator turns a history of measured per-item rates into the rate
// used for the remap decision.
type Estimator struct {
	Kind EstimatorKind
	// Alpha is the EWMA smoothing factor in (0, 1]; higher tracks the
	// latest window more closely. Only used by EstimateEWMA.
	Alpha float64
	// WindowCap bounds the retained history (default 8).
	WindowCap int

	history [][]float64 // per update: rates indexed by rank
	ewma    []float64
}

// NewEstimator creates an estimator; zero values select the paper's
// last-window behaviour.
func NewEstimator(kind EstimatorKind, alpha float64) (*Estimator, error) {
	if kind == EstimateEWMA && (alpha <= 0 || alpha > 1) {
		return nil, fmt.Errorf("loadbal: EWMA alpha %g, want (0,1]", alpha)
	}
	return &Estimator{Kind: kind, Alpha: alpha, WindowCap: 8}, nil
}

// Clone returns a fresh estimator with the same policy and empty
// history. An Estimator is stateful and not safe for concurrent use,
// so each rank's balancer must own its own copy; the session layer
// clones the configured prototype once per rank.
func (e *Estimator) Clone() *Estimator {
	if e == nil {
		return nil
	}
	return &Estimator{Kind: e.Kind, Alpha: e.Alpha, WindowCap: e.WindowCap}
}

// Reset discards the accumulated history. The elastic layer calls it
// through Balancer.Reset on membership transitions: the history is
// indexed by active-set rank, and after a shrink or grow those indices
// name different workstations, so stale windows would feed one rank's
// past into another rank's prediction.
func (e *Estimator) Reset() {
	if e == nil {
		return
	}
	e.history = nil
	e.ewma = nil
}

// Observe records one check's gathered rates (indexed by rank; zero
// entries mean "no measurement this window").
func (e *Estimator) Observe(rates []float64) {
	snap := append([]float64(nil), rates...)
	e.history = append(e.history, snap)
	cap := e.WindowCap
	if cap <= 0 {
		cap = 8
	}
	if len(e.history) > cap {
		e.history = e.history[len(e.history)-cap:]
	}
	if e.Kind == EstimateEWMA {
		if e.ewma == nil {
			e.ewma = snap
			return
		}
		for i, r := range rates {
			if r <= 0 {
				continue // keep the previous estimate for silent ranks
			}
			if e.ewma[i] <= 0 {
				e.ewma[i] = r
				continue
			}
			e.ewma[i] = e.Alpha*r + (1-e.Alpha)*e.ewma[i]
		}
	}
}

// Predict returns the rate estimate per rank for the next phase. Ranks
// with no information anywhere in the history report zero (the
// controller substitutes the mean).
func (e *Estimator) Predict() []float64 {
	if len(e.history) == 0 {
		return nil
	}
	p := len(e.history[len(e.history)-1])
	out := make([]float64, p)
	switch e.Kind {
	case EstimateEWMA:
		copy(out, e.ewma)
	case EstimateMax:
		for _, window := range e.history {
			for i, r := range window {
				if i < p {
					out[i] = math.Max(out[i], r)
				}
			}
		}
	default: // EstimateLast: latest positive measurement per rank
		for _, window := range e.history {
			for i, r := range window {
				if i < p && r > 0 {
					out[i] = r
				}
			}
		}
	}
	return out
}
