package elastic

import (
	"fmt"

	"stance/internal/comm"
	"stance/internal/partition"
)

// Control payloads are float64 vectors (the codec every other protocol
// in the library uses); ranks, iterations and interval offsets are
// integers well below 2^53, so the round trip is exact. An epoch
// proposal carries both layouts as (starts, arrangement) pairs — the
// replicated translation state of paper Figure 3, memory proportional
// to the number of processors — so an admitted rank that was parked
// when the outgoing layout was cut can reconstruct it exactly.
//
//	[0] opcode
//	opEpoch only:
//	[1] iter  [2] next epoch
//	[3] kOld, kOld old active world ranks,
//	    kOld+1 old starts, kOld old arrangement
//	[.] kNew, kNew new active world ranks,
//	    kNew+1 new starts, kNew new arrangement

func encodeOp(op int) []byte {
	return comm.F64sToBytes([]float64{float64(op)})
}

func encodeProposal(p *Proposal) []byte {
	vals := []float64{opEpoch, float64(p.Iter), float64(p.Next.Epoch)}
	vals = appendSide(vals, p.OldActive, p.Old)
	vals = appendSide(vals, p.Next.Active, p.New)
	return comm.F64sToBytes(vals)
}

func appendSide(vals []float64, active []int, l *partition.Layout) []float64 {
	vals = append(vals, float64(len(active)))
	for _, r := range active {
		vals = append(vals, float64(r))
	}
	for _, s := range l.Starts() {
		vals = append(vals, float64(s))
	}
	for _, a := range l.Arrangement() {
		vals = append(vals, float64(a))
	}
	return vals
}

// decodeVerdict parses a control payload: nil for opContinue and
// opRunEnd, the Proposal for opEpoch.
func decodeVerdict(data []byte) (*Proposal, error) {
	vals, err := comm.BytesToF64s(data)
	if err != nil {
		return nil, fmt.Errorf("elastic: %w", err)
	}
	if len(vals) < 1 {
		return nil, fmt.Errorf("elastic: empty verdict")
	}
	switch int(vals[0]) {
	case opContinue, opRunEnd:
		return nil, nil
	case opEpoch:
	default:
		return nil, fmt.Errorf("elastic: unknown verdict opcode %g", vals[0])
	}
	if len(vals) < 4 {
		return nil, fmt.Errorf("elastic: truncated proposal of %d values", len(vals))
	}
	p := &Proposal{Iter: int(vals[1])}
	epoch := int(vals[2])
	rest := vals[3:]
	var oldLayout, newLayout *partition.Layout
	p.OldActive, oldLayout, rest, err = decodeSide(rest)
	if err != nil {
		return nil, err
	}
	var newActive []int
	newActive, newLayout, rest, err = decodeSide(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("elastic: %d trailing values in proposal", len(rest))
	}
	p.Old, p.New = oldLayout, newLayout
	p.Next = Membership{Epoch: epoch, Active: newActive}
	return p, nil
}

func decodeSide(vals []float64) (active []int, l *partition.Layout, rest []float64, err error) {
	if len(vals) < 1 {
		return nil, nil, nil, fmt.Errorf("elastic: truncated proposal side")
	}
	k := int(vals[0])
	// k ranks + (k+1) starts + k arrangement entries.
	if k <= 0 || len(vals) < 1+3*k+1 {
		return nil, nil, nil, fmt.Errorf("elastic: malformed proposal side of %d entries", k)
	}
	vals = vals[1:]
	active = make([]int, k)
	for i := range active {
		active[i] = int(vals[i])
	}
	starts := make([]int64, k+1)
	for i := range starts {
		starts[i] = int64(vals[k+i])
	}
	arr := make([]int, k)
	for i := range arr {
		arr[i] = int(vals[2*k+1+i])
	}
	l, err = partition.NewFromStarts(starts, arr)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("elastic: %w", err)
	}
	return active, l, vals[3*k+1:], nil
}
