package elastic

import (
	"fmt"
	"sync"
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/graph"
	"stance/internal/partition"
)

func TestProposalWireRoundTrip(t *testing.T) {
	old, err := partition.NewBlock(101, []float64{1, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	new, err := partition.New(101, []float64{1, 1, 3}, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	in := &Proposal{
		Iter:      40,
		Next:      Membership{Epoch: 3, Active: []int{0, 2, 5}},
		OldActive: []int{0, 1, 2, 5},
		Old:       old,
		New:       new,
	}
	out, err := decodeVerdict(encodeProposal(in))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("proposal decoded as a continue/run-end verdict")
	}
	if out.Iter != in.Iter || out.Next.Epoch != in.Next.Epoch {
		t.Errorf("decoded iter/epoch %d/%d, want %d/%d", out.Iter, out.Next.Epoch, in.Iter, in.Next.Epoch)
	}
	if !equalInts(out.Next.Active, in.Next.Active) || !equalInts(out.OldActive, in.OldActive) {
		t.Errorf("decoded active sets %v/%v, want %v/%v",
			out.OldActive, out.Next.Active, in.OldActive, in.Next.Active)
	}
	if !out.Old.Equal(in.Old) || !out.New.Equal(in.New) {
		t.Error("decoded layouts differ from the originals")
	}
	for _, op := range []int{opContinue, opRunEnd} {
		p, err := decodeVerdict(encodeOp(op))
		if err != nil || p != nil {
			t.Errorf("opcode %d decoded as (%v, %v), want (nil, nil)", op, p, err)
		}
	}
	if _, err := decodeVerdict(encodeOp(7)); err == nil {
		t.Error("unknown opcode accepted")
	}
	if _, err := decodeVerdict([]byte{1, 2, 3}); err == nil {
		t.Error("non-f64 payload accepted")
	}
}

func TestValidActive(t *testing.T) {
	for _, bad := range [][]int{nil, {}, {1, 2}, {0, 2, 2}, {0, 3, 1}, {0, 8}} {
		if err := ValidActive(bad, 4); err == nil {
			t.Errorf("ValidActive(%v, 4) accepted", bad)
		}
	}
	for _, good := range [][]int{{0}, {0, 1, 2, 3}, {0, 3}} {
		if err := ValidActive(good, 4); err != nil {
			t.Errorf("ValidActive(%v, 4): %v", good, err)
		}
	}
}

func TestMembership(t *testing.T) {
	m := Membership{Epoch: 1, Active: []int{0, 2, 3}}
	if m.SubRank(0) != 0 || m.SubRank(2) != 1 || m.SubRank(3) != 2 {
		t.Errorf("sub ranks %d %d %d, want 0 1 2", m.SubRank(0), m.SubRank(2), m.SubRank(3))
	}
	if m.Contains(1) || m.SubRank(1) != -1 {
		t.Error("parked rank 1 reported active")
	}
}

// ringGraph builds a cycle of n vertices.
func ringGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: int32(i), V: int32((i + 1) % n)}
	}
	g, err := graph.FromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestProtocolShrinkGrow drives the raw epoch protocol on a 3-rank
// world: full membership, retire rank 1, grow back — asserting that a
// distributed vector survives both transitions bit for bit and that
// the parked rank blocks in Park until its admission proposal.
func TestProtocolShrinkGrow(t *testing.T) {
	const n = 31
	g := ringGraph(t, n)
	world, err := comm.Open("inproc", 3, comm.TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()

	all := []int{0, 1, 2}
	shrunk := []int{0, 2}
	var mu sync.Mutex
	events := map[int][]Event{}

	err = world.SPMD(nil, func(c *comm.Comm) error {
		ctl, err := NewController(c, all)
		if err != nil {
			return err
		}
		rt, err := core.New(c, g, core.Config{})
		if err != nil {
			return err
		}
		v := rt.NewVector()
		v.SetByGlobal(func(gl int64) float64 { return float64(gl) * 1.5 })
		sub, err := c.Sub(all)
		if err != nil {
			return err
		}

		record := func(ev Event) {
			mu.Lock()
			events[c.Rank()] = append(events[c.Rank()], ev)
			mu.Unlock()
		}
		transition := func(prop *Proposal, oldSub *comm.Comm) (*comm.Comm, error) {
			ev, newSub, err := ctl.Transition(prop, oldSub, rt)
			if err != nil {
				return nil, err
			}
			record(ev)
			return newSub, nil
		}

		// Boundary 1: shrink to {0, 2}.
		desired := func() []int { return shrunk }
		cut := func(active []int) (*partition.Layout, error) {
			return rt.CutLayout([]float64{1, 1})
		}
		prop, err := ctl.Boundary(10, rt.Layout(), desired, cut)
		if err != nil {
			return err
		}
		if prop == nil {
			return fmt.Errorf("rank %d: shrink boundary returned no proposal", c.Rank())
		}
		sub, err = transition(prop, sub)
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			if sub != nil {
				return fmt.Errorf("retired rank got a sub-world")
			}
			if !rt.Parked() || len(v.Data) != 0 {
				return fmt.Errorf("retired rank not parked (%d values held)", len(v.Data))
			}
			// Block until re-admitted.
			prop, err := ctl.Park()
			if err != nil {
				return err
			}
			if prop == nil {
				return fmt.Errorf("parked rank released instead of admitted")
			}
			if sub, err = transition(prop, nil); err != nil {
				return err
			}
		} else {
			// Boundary 2 on the shrunken world: no change.
			desired = func() []int { return nil }
			if prop, err = ctl.Boundary(20, rt.Layout(), desired, nil); err != nil {
				return err
			}
			if prop != nil {
				return fmt.Errorf("rank %d: no-change boundary proposed an epoch", c.Rank())
			}
			// Boundary 3: grow back.
			desired = func() []int { return all }
			cut = func(active []int) (*partition.Layout, error) {
				return rt.CutLayout([]float64{1, 1, 1})
			}
			if prop, err = ctl.Boundary(30, rt.Layout(), desired, cut); err != nil {
				return err
			}
			if prop == nil {
				return fmt.Errorf("rank %d: grow boundary returned no proposal", c.Rank())
			}
			if sub, err = transition(prop, sub); err != nil {
				return err
			}
		}

		// Everyone is active again; the vector must be intact.
		iv := rt.GlobalInterval()
		for u := int64(0); u < iv.Len(); u++ {
			if want := float64(iv.Lo+u) * 1.5; v.Data[u] != want {
				return fmt.Errorf("rank %d: element %d = %g after shrink+grow, want %g",
					c.Rank(), iv.Lo+u, v.Data[u], want)
			}
		}
		// And the executor must work on the regrown world.
		return rt.Exchange(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, evs := range events {
		if len(evs) != 2 {
			t.Fatalf("rank %d saw %d transitions, want 2", rank, len(evs))
		}
		if evs[0].Epoch != 1 || evs[1].Epoch != 2 {
			t.Errorf("rank %d epochs %d, %d, want 1, 2", rank, evs[0].Epoch, evs[1].Epoch)
		}
		if !equalInts(evs[0].Retired, []int{1}) || !equalInts(evs[1].Admitted, []int{1}) {
			t.Errorf("rank %d: retired %v / admitted %v, want [1] / [1]",
				rank, evs[0].Retired, evs[1].Admitted)
		}
		for i, ev := range evs {
			if ev.MovedBytes <= 0 {
				t.Errorf("rank %d transition %d moved %d bytes, want > 0", rank, i, ev.MovedBytes)
			}
		}
	}
	// All ranks agree on the global migration accounting.
	for i := 0; i < 2; i++ {
		if events[0][i].MovedBytes != events[1][i].MovedBytes ||
			events[0][i].MovedBytes != events[2][i].MovedBytes {
			t.Errorf("transition %d: ranks disagree on moved bytes: %d %d %d",
				i, events[0][i].MovedBytes, events[1][i].MovedBytes, events[2][i].MovedBytes)
		}
	}
}
