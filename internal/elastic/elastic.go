// Package elastic implements elastic membership: the active rank set
// of a running computation shrinks and grows between iterations as
// workstations are taken away and given back — the half of the paper's
// "adaptive environment" that load remapping alone cannot absorb.
//
// The protocol is coordinator-led (world rank 0, which therefore can
// never retire) and piggybacks on the existing balance-check
// boundaries, in three steps per epoch transition:
//
//   - propose: at a boundary, the coordinator compares the current
//     active set against the desired one (availability windows in
//     hetero.Env, or an explicit resize request) and multicasts a
//     verdict to the active members — either "continue" or a Proposal
//     carrying the next membership, the outgoing layout (admitted
//     ranks were parked when it was cut and cannot know it) and the
//     incoming layout. Parked ranks being admitted receive the same
//     proposal as their wake-up message.
//   - drain: the outgoing sub-world barriers, so every member has
//     fully completed the epoch's final iteration before data moves.
//   - commit: every participant migrates its vectors onto the
//     incoming layout over the parent world (core.Runtime.Rebind with
//     a cross-world redist plan), survivors and admitted ranks rebuild
//     schedules on a fresh sub-world of the new active set, and
//     retiring ranks park.
//
// Parked ranks block in a single receive on the control tag — no
// polling, no barrier participation — until the coordinator either
// admits them (a Proposal) or ends the run. A rank failing mid-epoch
// cancels the SPMD section's shared context, which unblocks parked
// receives with a wrapped context.Canceled instead of deadlocking the
// world.
package elastic

import (
	"fmt"
	"sync"
	"time"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/partition"
	"stance/internal/redist"
)

// Control-protocol tags (distinct from the runtime's, the balancer's
// and the session driver's).
const (
	// tagCtl carries coordinator verdicts: continue, epoch proposal,
	// or run end. Parked ranks block on it.
	tagCtl = 0x601
	// TagDrain is the drain barrier over the outgoing sub-world.
	TagDrain = 0x602
)

// Verdict opcodes on tagCtl.
const (
	opContinue = iota // membership unchanged, keep iterating
	opEpoch           // epoch transition: payload is a Proposal
	opRunEnd          // run over (sent to parked ranks so they return)
)

// Membership is one epoch's active set.
type Membership struct {
	// Epoch counts transitions since the session started (the initial
	// active set is epoch 0).
	Epoch int
	// Active lists the active world ranks in ascending order. It
	// always contains rank 0, the coordinator, so sub-world rank 0 is
	// world rank 0 in every epoch.
	Active []int
}

// Contains reports whether a world rank is active.
func (m Membership) Contains(rank int) bool { return m.SubRank(rank) >= 0 }

// SubRank returns the rank's position in the active set (its rank in
// the epoch's sub-world), or -1 if parked.
func (m Membership) SubRank(rank int) int {
	for i, r := range m.Active {
		if r == rank {
			return i
		}
	}
	return -1
}

// Proposal is an agreed epoch transition: everything a participant —
// including a rank that has been parked since before the outgoing
// layout existed — needs to commit it deterministically.
type Proposal struct {
	// Iter is the global iteration count at the boundary.
	Iter int
	// Next is the incoming membership.
	Next Membership
	// OldActive is the outgoing active set (the carrier ranks of Old).
	OldActive []int
	// Old and New are the outgoing and incoming layouts.
	Old, New *partition.Layout
}

// Event records one committed membership transition. The JSON field
// names are stable API (the stanced job service serves reports over
// HTTP); durations marshal as integer nanoseconds.
type Event struct {
	// Iter is the global iteration count at which the epoch changed.
	Iter int `json:"iter"`
	// Epoch is the new epoch number.
	Epoch int `json:"epoch"`
	// Active is the new active set; Retired and Admitted are the world
	// ranks that left and joined relative to the previous epoch.
	Active   []int `json:"active"`
	Retired  []int `json:"retired"`
	Admitted []int `json:"admitted"`
	// MovedBytes and Msgs are the total migration payload and transfer
	// count across all ranks and registered vectors — identical on
	// every participant, computed without communication from the two
	// layouts.
	MovedBytes int64 `json:"moved_bytes"`
	Msgs       int   `json:"msgs"`
	// Local is this rank's own share of the migration.
	Local core.RebindStats `json:"local"`
	// Duration is the transition's wall time on this rank.
	Duration time.Duration `json:"duration_ns"`
}

// Controller is one world rank's handle on the epoch protocol. Every
// rank of the world holds one; world rank 0 is the coordinator.
type Controller struct {
	c *comm.Comm // world endpoint

	// mu guards cur and resize against cross-goroutine access: the run
	// loop advances cur on its own SPMD goroutine while monitoring
	// callers read Membership and Session.Resize writes resize.
	mu     sync.Mutex
	cur    Membership
	resize []int
}

// NewController builds a rank's controller with the initial active
// set, which must be ascending, duplicate-free, within the world and
// contain the coordinator (world rank 0).
func NewController(c *comm.Comm, initial []int) (*Controller, error) {
	if c == nil {
		return nil, fmt.Errorf("elastic: nil communicator")
	}
	if err := ValidActive(initial, c.Size()); err != nil {
		return nil, err
	}
	return &Controller{
		c:   c,
		cur: Membership{Epoch: 0, Active: append([]int(nil), initial...)},
	}, nil
}

// ValidActive checks an active set: ascending, duplicate-free, within
// [0, worldSize) and containing the coordinator.
func ValidActive(active []int, worldSize int) error {
	if len(active) == 0 {
		return fmt.Errorf("elastic: empty active set")
	}
	if active[0] != 0 {
		return fmt.Errorf("elastic: active set %v does not contain the coordinator (world rank 0)", active)
	}
	for i, r := range active {
		if r < 0 || r >= worldSize {
			return fmt.Errorf("elastic: active rank %d of %d", r, worldSize)
		}
		if i > 0 && r <= active[i-1] {
			return fmt.Errorf("elastic: active set %v is not strictly ascending", active)
		}
	}
	return nil
}

// Membership returns the rank's current view of the active set. Safe
// to call from any goroutine.
func (ct *Controller) Membership() Membership {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return Membership{Epoch: ct.cur.Epoch, Active: append([]int(nil), ct.cur.Active...)}
}

// ActiveHere reports whether this rank is in the current active set.
func (ct *Controller) ActiveHere() bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.cur.Contains(ct.c.Rank())
}

// RequestResize records an explicit active-set request; the
// coordinator applies it at the next membership boundary. Only the
// coordinator's controller consults it. Safe to call from any
// goroutine. With availability windows also configured, the
// environment re-asserts its own active set at the following boundary.
func (ct *Controller) RequestResize(active []int) error {
	if err := ValidActive(active, ct.c.Size()); err != nil {
		return err
	}
	ct.mu.Lock()
	ct.resize = append([]int(nil), active...)
	ct.mu.Unlock()
	return nil
}

// TakeResize returns and clears the pending resize request, or nil.
func (ct *Controller) TakeResize() []int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	r := ct.resize
	ct.resize = nil
	return r
}

// Boundary runs the propose step at an iteration boundary for an
// active rank. On the coordinator, desired() names the wanted active
// set (nil means no change) and cut() builds the incoming layout for
// it; members pass nils and receive the verdict. It returns nil when
// membership is unchanged, or the agreed Proposal — in which case
// every returned-to rank must call Transition, and parked ranks being
// admitted have been sent the same proposal as their wake-up. All
// active ranks must call Boundary at the same iteration.
func (ct *Controller) Boundary(iter int, oldLayout *partition.Layout,
	desired func() []int, cut func(active []int) (*partition.Layout, error)) (*Proposal, error) {
	if !ct.ActiveHere() {
		return nil, fmt.Errorf("elastic: Boundary on parked rank %d", ct.c.Rank())
	}
	if ct.c.Rank() != 0 {
		data, err := ct.c.Recv(0, tagCtl)
		if err != nil {
			return nil, err
		}
		prop, err := decodeVerdict(data)
		ct.c.Release(data)
		return prop, err
	}

	cur := ct.Membership()
	want := desired()
	if want == nil || equalInts(want, cur.Active) {
		if err := ct.multicastActive(cur, encodeOp(opContinue)); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if err := ValidActive(want, ct.c.Size()); err != nil {
		return nil, err
	}
	newLayout, err := cut(want)
	if err != nil {
		return nil, err
	}
	prop := &Proposal{
		Iter:      iter,
		Next:      Membership{Epoch: cur.Epoch + 1, Active: append([]int(nil), want...)},
		OldActive: cur.Active,
		Old:       oldLayout,
		New:       newLayout,
	}
	payload := encodeProposal(prop)
	if err := ct.multicastActive(cur, payload); err != nil {
		return nil, err
	}
	// Wake the parked ranks being admitted with the same proposal.
	for _, r := range diffInts(want, cur.Active) {
		if err := ct.c.Send(r, tagCtl, payload); err != nil {
			return nil, err
		}
	}
	return prop, nil
}

// multicastActive sends a control payload to every active member but
// the coordinator.
func (ct *Controller) multicastActive(cur Membership, payload []byte) error {
	if len(cur.Active) == 1 {
		return nil
	}
	return ct.c.Multicast(cur.Active[1:], tagCtl, payload)
}

// Park blocks a parked rank until the coordinator releases it: an
// admission returns the Proposal to commit with Transition, run end
// returns nil (the rank stays parked for the next run). A cancelled
// session context unblocks the receive with its error.
func (ct *Controller) Park() (*Proposal, error) {
	if ct.ActiveHere() {
		return nil, fmt.Errorf("elastic: Park on active rank %d", ct.c.Rank())
	}
	data, err := ct.c.Recv(0, tagCtl)
	if err != nil {
		return nil, err
	}
	prop, err := decodeVerdict(data)
	ct.c.Release(data)
	if err != nil {
		return nil, err
	}
	if prop != nil && !prop.Next.Contains(ct.c.Rank()) {
		return nil, fmt.Errorf("elastic: parked rank %d woken by an epoch that excludes it", ct.c.Rank())
	}
	return prop, nil
}

// ReleaseParked ends the run for every parked rank (coordinator only):
// each gets a run-end verdict and returns from its Park call. The
// parked set stays parked across runs. Ranks in skip get nothing —
// they are known dead (crash-stop), so a message to them would sit
// unconsumed in their mailbox forever.
func (ct *Controller) ReleaseParked(skip []int) error {
	if ct.c.Rank() != 0 {
		return fmt.Errorf("elastic: ReleaseParked on rank %d", ct.c.Rank())
	}
	cur := ct.Membership()
	payload := encodeOp(opRunEnd)
	for r := 0; r < ct.c.Size(); r++ {
		if cur.Contains(r) {
			continue
		}
		dead := false
		for _, d := range skip {
			if d == r {
				dead = true
				break
			}
		}
		if dead {
			continue
		}
		if err := ct.c.Send(r, tagCtl, payload); err != nil {
			return err
		}
	}
	return nil
}

// Transition commits an agreed proposal on one participating rank —
// an outgoing active member or an admitted rank. It drains the
// outgoing sub-world (oldSub; nil for admitted ranks, which have
// nothing to drain), migrates the runtime's vectors and rebinds it
// onto the incoming sub-world (nil Sub parks a retiring rank), and
// advances the membership. It returns the transition event and the
// rank's new sub-world endpoint (nil when retiring).
func (ct *Controller) Transition(prop *Proposal, oldSub *comm.Comm, rt *core.Runtime) (Event, *comm.Comm, error) {
	clock := ct.c.Clock()
	start := clock.Now()
	ev := Event{
		Iter:     prop.Iter,
		Epoch:    prop.Next.Epoch,
		Active:   append([]int(nil), prop.Next.Active...),
		Retired:  diffInts(prop.OldActive, prop.Next.Active),
		Admitted: diffInts(prop.Next.Active, prop.OldActive),
	}
	var err error
	ev.MovedBytes, ev.Msgs, err = CrossCost(prop, rt.NumVectors())
	if err != nil {
		return ev, nil, err
	}
	if oldSub != nil {
		// Drain: every outgoing member finishes the epoch's last
		// iteration before any data moves.
		if err := oldSub.Barrier(TagDrain); err != nil {
			return ev, nil, err
		}
	}
	var newSub *comm.Comm
	if prop.Next.Contains(ct.c.Rank()) {
		newSub, err = ct.c.Sub(prop.Next.Active)
		if err != nil {
			return ev, nil, err
		}
	}
	ev.Local, err = rt.Rebind(core.Rebind{
		Carrier:  ct.c,
		Sub:      newSub,
		Old:      prop.Old,
		New:      prop.New,
		OldProcs: prop.OldActive,
		NewProcs: prop.Next.Active,
	})
	if err != nil {
		return ev, nil, err
	}
	ct.mu.Lock()
	ct.cur = prop.Next
	ct.mu.Unlock()
	ev.Duration = clock.Now().Sub(start)
	return ev, newSub, nil
}

// Force advances the membership without the propose/drain/commit
// protocol — the recovery epoch's transition, where the departed
// ranks cannot drain or migrate anything and the survivors have
// already agreed on the next membership out of band (the coordinator's
// recovery verdict). Every survivor must call Force with the same
// membership.
func (ct *Controller) Force(next Membership) {
	ct.mu.Lock()
	ct.cur = next
	ct.mu.Unlock()
}

// CrossCost returns the total migration bytes and transfer count of a
// proposal for a runtime carrying nVecs registered vectors — the
// world-wide accounting, identical on every participant.
func CrossCost(prop *Proposal, nVecs int) (bytes int64, msgs int, err error) {
	moved, transfers, err := redist.CrossStats(prop.Old, prop.New, prop.OldActive, prop.Next.Active)
	if err != nil {
		return 0, 0, err
	}
	return moved * 8 * int64(nVecs), transfers * nVecs, nil
}

// equalInts reports whether two int slices are element-wise equal.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffInts returns the elements of a not present in b (both ascending).
func diffInts(a, b []int) []int {
	var out []int
	for _, x := range a {
		found := false
		for _, y := range b {
			if y == x {
				found = true
				break
			}
		}
		if !found {
			out = append(out, x)
		}
	}
	return out
}
