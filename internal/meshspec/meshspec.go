// Package meshspec parses the command-line mesh specifications shared
// by the stance-run and meshgen commands:
//
//	paper            the 30269-vertex evaluation-mesh substitute
//	honeycomb:RxC    brick-wall lattice, degree <= 3
//	grid:WxH         triangulated, perturbed grid
//	annulus:RxS      ring-shaped domain with a hole
//	random:N         connected random geometric graph
//
// Omitted arguments select sensible demo sizes.
package meshspec

import (
	"fmt"
	"strings"

	"stance/internal/graph"
	"stance/internal/mesh"
)

// Build constructs the mesh described by spec.
func Build(spec string) (*graph.Graph, error) {
	name, arg, _ := strings.Cut(spec, ":")
	a, b, err := parseArg(arg)
	if err != nil {
		return nil, fmt.Errorf("mesh %q: %w", spec, err)
	}
	switch name {
	case "paper":
		if arg != "" {
			return nil, fmt.Errorf("mesh %q: paper takes no argument", spec)
		}
		return mesh.Paper(), nil
	case "honeycomb":
		if a == 0 {
			a, b = 60, 80
		}
		return mesh.Honeycomb(a, b)
	case "grid":
		if a == 0 {
			a, b = 40, 40
		}
		return mesh.GridTriangulated(a, b, 0.2, 1)
	case "annulus":
		if a == 0 {
			a, b = 20, 120
		}
		return mesh.Annulus(a, b)
	case "random":
		if a == 0 {
			a = 5000
		}
		return mesh.RandomGeometric(a, 0.03, 1)
	}
	return nil, fmt.Errorf("unknown mesh %q (want paper, honeycomb:RxC, grid:WxH, annulus:RxS, random:N)", name)
}

// parseArg accepts "", "N" or "AxB".
func parseArg(arg string) (a, b int, err error) {
	if arg == "" {
		return 0, 0, nil
	}
	if i := strings.IndexByte(arg, 'x'); i >= 0 {
		if _, err := fmt.Sscanf(arg, "%dx%d", &a, &b); err != nil {
			return 0, 0, fmt.Errorf("want RxC, got %q", arg)
		}
		if a <= 0 || b <= 0 {
			return 0, 0, fmt.Errorf("dimensions must be positive, got %dx%d", a, b)
		}
		return a, b, nil
	}
	if _, err := fmt.Sscanf(arg, "%d", &a); err != nil {
		return 0, 0, fmt.Errorf("want N or RxC, got %q", arg)
	}
	if a <= 0 {
		return 0, 0, fmt.Errorf("size must be positive, got %d", a)
	}
	return a, 0, nil
}

// Names lists the accepted specification forms, for usage strings.
func Names() string {
	return "paper, honeycomb:RxC, grid:WxH, annulus:RxS, random:N"
}
