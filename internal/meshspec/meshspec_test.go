package meshspec

import (
	"strings"
	"testing"
)

func TestBuildSpecs(t *testing.T) {
	cases := []struct {
		spec     string
		vertices int // 0 = just check it builds
	}{
		{"honeycomb:10x12", 120},
		{"grid:6x7", 42},
		{"annulus:3x9", 27},
		{"random:100", 100},
		{"honeycomb", 4800},
		{"grid", 1600},
		{"annulus", 2400},
	}
	for _, c := range cases {
		g, err := Build(c.spec)
		if err != nil {
			t.Errorf("Build(%q): %v", c.spec, err)
			continue
		}
		if c.vertices != 0 && g.N != c.vertices {
			t.Errorf("Build(%q) has %d vertices, want %d", c.spec, g.N, c.vertices)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Build(%q): invalid graph: %v", c.spec, err)
		}
	}
}

func TestBuildPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("paper mesh in -short mode")
	}
	g, err := Build("paper")
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 30269 {
		t.Errorf("paper mesh has %d vertices", g.N)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		"",
		"nope",
		"paper:5",
		"grid:0x5",
		"grid:-3x5",
		"grid:abc",
		"random:0",
		"random:xyz",
		"honeycomb:4", // honeycomb needs two dims >= 2; 4x0 fails in mesh
	}
	for _, spec := range cases {
		if _, err := Build(spec); err == nil {
			t.Errorf("Build(%q) succeeded, want error", spec)
		}
	}
}

func TestNames(t *testing.T) {
	if !strings.Contains(Names(), "honeycomb") {
		t.Errorf("Names() = %q", Names())
	}
}
