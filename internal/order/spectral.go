package order

import (
	"fmt"
	"math"
	"math/rand"

	"stance/internal/graph"
)

// SpectralOptions control the approximate Fiedler-vector computation.
type SpectralOptions struct {
	// MaxIters bounds the power-iteration count.
	MaxIters int
	// Tol is the convergence tolerance on the iterate change.
	Tol float64
	// Seed seeds the random starting vector.
	Seed int64
}

// DefaultSpectralOptions returns settings that give a useful ordering
// on meshes up to a few hundred thousand vertices in well under a
// second.
func DefaultSpectralOptions() SpectralOptions {
	return SpectralOptions{MaxIters: 300, Tol: 1e-7, Seed: 12345}
}

// Spectral returns a recursive-spectral-bisection style index (the
// transformation the paper's experiments use, from reference [19]):
// vertices are sorted by their component in an approximate Fiedler
// vector (the eigenvector of the graph Laplacian's second-smallest
// eigenvalue). The Fiedler vector varies smoothly across the graph, so
// sorting by it yields a locality-preserving one-dimensional index
// without needing coordinates.
//
// The vector is computed by shifted power iteration on B = sigma*I - L
// with the constant vector deflated; the iteration count bounds the
// cost, and even a partially converged vector orders well.
func Spectral(opts SpectralOptions) Func {
	return func(g *graph.Graph) ([]int32, error) {
		if opts.MaxIters <= 0 {
			return nil, fmt.Errorf("order: spectral MaxIters must be positive, got %d", opts.MaxIters)
		}
		if g.N == 0 {
			return []int32{}, nil
		}
		f := fiedler(g, opts)
		return fromRanked(sortByKey(g.N, func(v int32) float64 { return f[v] })), nil
	}
}

// fiedler approximates the Fiedler vector of g's Laplacian.
func fiedler(g *graph.Graph, opts SpectralOptions) []float64 {
	n := g.N
	sigma := float64(g.MaxDegree())*2 + 1
	rng := rand.New(rand.NewSource(opts.Seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)
	deflate := func(v []float64) {
		mean := 0.0
		for _, a := range v {
			mean += a
		}
		mean /= float64(n)
		for i := range v {
			v[i] -= mean
		}
	}
	normalize := func(v []float64) float64 {
		s := 0.0
		for _, a := range v {
			s += a * a
		}
		norm := math.Sqrt(s)
		if norm == 0 {
			return 0
		}
		for i := range v {
			v[i] /= norm
		}
		return norm
	}
	deflate(x)
	if normalize(x) == 0 {
		return x
	}
	for it := 0; it < opts.MaxIters; it++ {
		// y = (sigma*I - L) x = sigma*x - D*x + A*x
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, w := range g.Neighbors(v) {
				sum += x[w]
			}
			y[v] = (sigma-float64(g.Degree(v)))*x[v] + sum
		}
		deflate(y)
		if normalize(y) == 0 {
			break
		}
		// Convergence: ||y - x|| small (up to sign).
		diff, diffNeg := 0.0, 0.0
		for i := range y {
			d := y[i] - x[i]
			diff += d * d
			d = y[i] + x[i]
			diffNeg += d * d
		}
		x, y = y, x
		if math.Min(diff, diffNeg) < opts.Tol*opts.Tol {
			break
		}
	}
	return x
}
