package order

import (
	"testing"
	"testing/quick"

	"stance/internal/graph"
	"stance/internal/mesh"
)

func testMesh(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := mesh.GridTriangulated(16, 16, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allOrderings(t testing.TB) map[string]Func {
	t.Helper()
	out := map[string]Func{}
	for _, name := range Names() {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		out[name] = f
	}
	return out
}

func TestEveryOrderingIsAPermutation(t *testing.T) {
	g := testMesh(t)
	for name, f := range allOrderings(t) {
		perm, err := f(g)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := Validate(perm, g.N); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestIdentity(t *testing.T) {
	g := testMesh(t)
	perm, err := Identity(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		if int(p) != i {
			t.Fatalf("Identity perm[%d] = %d", i, p)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	g := testMesh(t)
	a, _ := Random(7)(g)
	b, _ := Random(7)(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random(7) not deterministic")
		}
	}
	c, _ := Random(8)(g)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical permutation")
	}
}

func TestInvert(t *testing.T) {
	g := testMesh(t)
	perm, _ := Random(3)(g)
	inv := Invert(perm)
	for old, nw := range perm {
		if inv[nw] != int32(old) {
			t.Fatalf("Invert broken at %d", old)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	if err := Validate([]int32{0, 1}, 3); err == nil {
		t.Error("short perm accepted")
	}
	if err := Validate([]int32{0, 1, 3}, 3); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := Validate([]int32{0, 1, 1}, 3); err == nil {
		t.Error("duplicate accepted")
	}
}

// Locality orderings must beat the random baseline on a planar mesh,
// and should beat identity-on-shuffled-input too. This is the core
// claim of paper Section 3.1.
func TestLocalityOrderingsBeatRandom(t *testing.T) {
	g := testMesh(t)
	randPerm, _ := Random(99)(g)
	shuffled, err := g.Permute(randPerm)
	if err != nil {
		t.Fatal(err)
	}
	randQ, err := Evaluate(shuffled, mustPerm(t, Identity, shuffled), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rcb", "rib", "morton", "hilbert", "rcm", "spectral"} {
		f, _ := ByName(name)
		perm, err := f(shuffled)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q, err := Evaluate(shuffled, perm, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if q.EdgeCut >= randQ.EdgeCut {
			t.Errorf("%s edge cut %d not better than shuffled baseline %d", name, q.EdgeCut, randQ.EdgeCut)
		}
		if q.MeanEdgeSpan >= randQ.MeanEdgeSpan {
			t.Errorf("%s mean span %.1f not better than shuffled baseline %.1f", name, q.MeanEdgeSpan, randQ.MeanEdgeSpan)
		}
	}
}

func mustPerm(t testing.TB, f Func, g *graph.Graph) []int32 {
	t.Helper()
	perm, err := f(g)
	if err != nil {
		t.Fatal(err)
	}
	return perm
}

func TestCoordinateOrderingsRequireCoords(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rcb", "rib", "morton", "hilbert"} {
		f, _ := ByName(name)
		if _, err := f(g); err == nil {
			t.Errorf("%s accepted a coordinate-less graph", name)
		}
	}
	// RCM and spectral do not need coordinates.
	for _, name := range []string{"rcm", "spectral"} {
		f, _ := ByName(name)
		perm, err := f(g)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := Validate(perm, g.N); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRCMPathIsContiguous(t *testing.T) {
	// On a path graph RCM must recover bandwidth 1.
	n := 30
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	g, err := graph.FromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := g.Permute(mustPerm(t, Random(5), g))
	if err != nil {
		t.Fatal(err)
	}
	perm := mustPerm(t, RCM, shuffled)
	ng, err := shuffled.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if bw := ng.Bandwidth(); bw != 1 {
		t.Errorf("RCM on path: bandwidth %d, want 1", bw)
	}
}

func TestRCMDisconnected(t *testing.T) {
	g, err := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	perm := mustPerm(t, RCM, g)
	if err := Validate(perm, g.N); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertLocality2D(t *testing.T) {
	// Adjacent Hilbert indices must be adjacent grid cells.
	prev := [2]uint32{}
	first := true
	// Walk a small sub-curve by inverting via brute force on an 8x8 grid.
	type cell struct {
		x, y uint32
		d    uint64
	}
	var cells []cell
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			// Scale up to the full sfcBits grid to use the same code path.
			d := hilbertXY2D(x<<(sfcBits-3), y<<(sfcBits-3))
			cells = append(cells, cell{x, y, d})
		}
	}
	// Sort by curve position.
	for i := range cells {
		for j := i + 1; j < len(cells); j++ {
			if cells[j].d < cells[i].d {
				cells[i], cells[j] = cells[j], cells[i]
			}
		}
	}
	for _, c := range cells {
		if !first {
			dx := int(c.x) - int(prev[0])
			dy := int(c.y) - int(prev[1])
			if dx*dx+dy*dy != 1 {
				t.Fatalf("Hilbert neighbors (%d,%d) -> (%d,%d) not grid-adjacent", prev[0], prev[1], c.x, c.y)
			}
		}
		prev = [2]uint32{c.x, c.y}
		first = false
	}
}

func TestMortonBijective(t *testing.T) {
	f := func(x, y uint16) bool {
		m := morton2(uint32(x), uint32(y))
		// Deinterleave and compare.
		var gx, gy uint32
		for b := 0; b < 16; b++ {
			gx |= uint32(m>>(2*b)&1) << b
			gy |= uint32(m>>(2*b+1)&1) << b
		}
		return gx == uint32(x) && gy == uint32(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMorton3Bijective(t *testing.T) {
	f := func(x, y, z uint16) bool {
		m := morton3(uint32(x), uint32(y), uint32(z))
		var gx, gy, gz uint32
		for b := 0; b < 16; b++ {
			gx |= uint32(m>>(3*b)&1) << b
			gy |= uint32(m>>(3*b+1)&1) << b
			gz |= uint32(m>>(3*b+2)&1) << b
		}
		return gx == uint32(x) && gy == uint32(y) && gz == uint32(z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHilbertInjectiveOnGrid(t *testing.T) {
	seen := map[uint64][2]uint32{}
	for x := uint32(0); x < 32; x++ {
		for y := uint32(0); y < 32; y++ {
			d := hilbertXY2D(x<<(sfcBits-5), y<<(sfcBits-5))
			if prev, ok := seen[d]; ok {
				t.Fatalf("Hilbert collision: (%d,%d) and (%d,%d)", prev[0], prev[1], x, y)
			}
			seen[d] = [2]uint32{x, y}
		}
	}
}

func TestSpectralOnPath(t *testing.T) {
	// The Fiedler vector of a path is monotone, so spectral ordering
	// must recover bandwidth 1 on a shuffled path.
	n := 24
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	g, err := graph.FromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := g.Permute(mustPerm(t, Random(2), g))
	if err != nil {
		t.Fatal(err)
	}
	f := Spectral(SpectralOptions{MaxIters: 4000, Tol: 1e-12, Seed: 4})
	perm := mustPerm(t, f, shuffled)
	ng, err := shuffled.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if bw := ng.Bandwidth(); bw > 2 {
		t.Errorf("spectral on path: bandwidth %d, want <= 2", bw)
	}
}

func TestSpectralBadOptions(t *testing.T) {
	g := testMesh(t)
	if _, err := Spectral(SpectralOptions{MaxIters: 0})(g); err == nil {
		t.Error("MaxIters=0 accepted")
	}
}

func TestSpectralEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := Spectral(DefaultSpectralOptions())(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != 0 {
		t.Error("empty graph should give empty permutation")
	}
}

func TestRCBStages(t *testing.T) {
	g := testMesh(t)
	stages, err := RCBStages(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("got %d stages", len(stages))
	}
	for k, st := range stages {
		maxCell := int32(1)<<(k+1) - 1
		counts := map[int32]int{}
		for _, c := range st {
			if c < 0 || c > maxCell {
				t.Fatalf("stage %d: cell %d out of range [0,%d]", k, c, maxCell)
			}
			counts[c]++
		}
		if len(counts) != int(maxCell)+1 {
			t.Errorf("stage %d: %d distinct cells, want %d", k, len(counts), maxCell+1)
		}
		// Each split is at the median, so cells stay balanced within 1
		// at every power-of-two level on a 256-vertex mesh.
		for c, cnt := range counts {
			want := g.N / (int(maxCell) + 1)
			if cnt < want-1 || cnt > want+1 {
				t.Errorf("stage %d cell %d has %d vertices, want ~%d", k, c, cnt, want)
			}
		}
	}
	// Stages refine: same stage-k cell implies same stage-(k-1) cell.
	for v := 0; v < g.N; v++ {
		for k := 1; k < 3; k++ {
			if stages[k][v]/2 != stages[k-1][v] {
				t.Fatalf("stage %d does not refine stage %d at vertex %d", k, k-1, v)
			}
		}
	}
	if _, err := RCBStages(g, 0); err == nil {
		t.Error("levels=0 accepted")
	}
}

func TestEvaluateErrors(t *testing.T) {
	g := testMesh(t)
	perm := mustPerm(t, Identity, g)
	if _, err := Evaluate(g, perm, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Evaluate(g, perm[:10], 2); err == nil {
		t.Error("short perm accepted")
	}
}

func TestEvaluateBalancedBlocks(t *testing.T) {
	g := testMesh(t)
	perm := mustPerm(t, RCB, g)
	q, err := Evaluate(g, perm, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.EdgeCut <= 0 {
		t.Error("expected a positive edge cut on a connected mesh")
	}
	if q.Bandwidth <= 0 || q.MeanEdgeSpan <= 0 {
		t.Errorf("quality = %+v", q)
	}
}
