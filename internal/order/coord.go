package order

import (
	"fmt"
	"math"
	"sort"

	"stance/internal/geom"
	"stance/internal/graph"
)

// RCB computes a recursive-coordinate-bisection index (paper Figure
// 2): the point set is recursively split at the median of its longest
// axis, and the leaves of the recursion are numbered left to right.
// Vertices that are physically proximate end up with nearby indices.
func RCB(g *graph.Graph) ([]int32, error) {
	if g.Coords == nil {
		return nil, fmt.Errorf("order: RCB requires vertex coordinates")
	}
	ids := make([]int32, g.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	rcbRecurse(ids, g.Coords, axisLongest)
	return fromRanked(ids), nil
}

// RIB computes a recursive-inertial-bisection index: like RCB but each
// split is along the principal axis of the point subset (the direction
// of greatest variance), which adapts to non-axis-aligned geometry.
func RIB(g *graph.Graph) ([]int32, error) {
	if g.Coords == nil {
		return nil, fmt.Errorf("order: RIB requires vertex coordinates")
	}
	ids := make([]int32, g.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	rcbRecurse(ids, g.Coords, axisPrincipal)
	return fromRanked(ids), nil
}

// axisKey returns, for the point subset ids, a scalar key to sort by
// when bisecting.
type axisKey func(ids []int32, coords []geom.Point) func(v int32) float64

// axisLongest keys by the coordinate along the bounding box's longest
// axis.
func axisLongest(ids []int32, coords []geom.Point) func(v int32) float64 {
	b := geom.EmptyBox()
	for _, v := range ids {
		b = b.Extend(coords[v])
	}
	axis := b.LongestAxis()
	return func(v int32) float64 { return coords[v].Coord(axis) }
}

// axisPrincipal keys by projection onto the principal component of the
// subset, computed by power iteration on the 3x3 covariance matrix.
func axisPrincipal(ids []int32, coords []geom.Point) func(v int32) float64 {
	var c geom.Point
	for _, v := range ids {
		c = c.Add(coords[v])
	}
	c = c.Scale(1 / float64(len(ids)))
	// Covariance matrix (symmetric 3x3).
	var m [3][3]float64
	for _, v := range ids {
		d := coords[v].Sub(c)
		dv := [3]float64{d.X, d.Y, d.Z}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += dv[i] * dv[j]
			}
		}
	}
	// Power iteration from a fixed start.
	vec := [3]float64{1, 0.5, 0.25}
	for it := 0; it < 50; it++ {
		var nv [3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				nv[i] += m[i][j] * vec[j]
			}
		}
		norm := math.Sqrt(nv[0]*nv[0] + nv[1]*nv[1] + nv[2]*nv[2])
		if norm == 0 {
			break // degenerate subset (all points identical)
		}
		for i := range nv {
			nv[i] /= norm
		}
		vec = nv
	}
	dir := geom.Point{X: vec[0], Y: vec[1], Z: vec[2]}
	return func(v int32) float64 { return coords[v].Sub(c).Dot(dir) }
}

// rcbRecurse reorders ids in place so that the recursion's leaves read
// left to right.
func rcbRecurse(ids []int32, coords []geom.Point, ax axisKey) {
	if len(ids) <= 2 {
		if len(ids) == 2 {
			key := ax(ids, coords)
			if key(ids[0]) > key(ids[1]) || (key(ids[0]) == key(ids[1]) && ids[0] > ids[1]) {
				ids[0], ids[1] = ids[1], ids[0]
			}
		}
		return
	}
	key := ax(ids, coords)
	sort.SliceStable(ids, func(i, j int) bool {
		ki, kj := key(ids[i]), key(ids[j])
		if ki != kj {
			return ki < kj
		}
		return ids[i] < ids[j]
	})
	mid := len(ids) / 2
	rcbRecurse(ids[:mid], coords, ax)
	rcbRecurse(ids[mid:], coords, ax)
}

// RCBStages returns the intermediate partitions of the first `levels`
// levels of recursive coordinate bisection, for visualizing paper
// Figure 2: stage k maps each vertex to one of 2^k cells.
func RCBStages(g *graph.Graph, levels int) ([][]int32, error) {
	if g.Coords == nil {
		return nil, fmt.Errorf("order: RCB requires vertex coordinates")
	}
	if levels < 1 {
		return nil, fmt.Errorf("order: levels must be >= 1, got %d", levels)
	}
	ids := make([]int32, g.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	// stages[k][v] is the cell (0..2^(k+1)-1) of vertex v after k+1
	// bisection levels.
	stages := make([][]int32, levels)
	for k := range stages {
		stages[k] = make([]int32, g.N)
	}
	var walk func(ids []int32, level int, cell int32)
	walk = func(ids []int32, level int, cell int32) {
		if level >= levels {
			return
		}
		if len(ids) < 2 {
			// A cell too small to split stays put in all deeper stages.
			c := cell
			for k := level; k < levels; k++ {
				c *= 2
				for _, v := range ids {
					stages[k][v] = c
				}
			}
			return
		}
		key := axisLongest(ids, g.Coords)
		sort.SliceStable(ids, func(i, j int) bool {
			ki, kj := key(ids[i]), key(ids[j])
			if ki != kj {
				return ki < kj
			}
			return ids[i] < ids[j]
		})
		mid := len(ids) / 2
		left, right := ids[:mid], ids[mid:]
		for _, v := range left {
			stages[level][v] = 2 * cell
		}
		for _, v := range right {
			stages[level][v] = 2*cell + 1
		}
		walk(left, level+1, 2*cell)
		walk(right, level+1, 2*cell+1)
	}
	walk(ids, 0, 0)
	return stages, nil
}
