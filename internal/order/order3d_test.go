package order

import (
	"testing"

	"stance/internal/geom"
	"stance/internal/graph"
)

// cube3d builds a small 3-D lattice graph to exercise the
// three-dimensional paths of the coordinate orderings.
func cube3d(t *testing.T, n int) *graph.Graph {
	t.Helper()
	id := func(x, y, z int) int32 { return int32((z*n+y)*n + x) }
	var edges []graph.Edge
	coords := make([]geom.Point, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				coords[id(x, y, z)] = geom.Point{X: float64(x), Y: float64(y), Z: float64(z)}
				if x+1 < n {
					edges = append(edges, graph.Edge{U: id(x, y, z), V: id(x+1, y, z)})
				}
				if y+1 < n {
					edges = append(edges, graph.Edge{U: id(x, y, z), V: id(x, y+1, z)})
				}
				if z+1 < n {
					edges = append(edges, graph.Edge{U: id(x, y, z), V: id(x, y, z+1)})
				}
			}
		}
	}
	g, err := graph.FromEdges(n*n*n, edges, coords)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCoordinateOrderings3D(t *testing.T) {
	g := cube3d(t, 6)
	randPerm := mustPerm(t, Random(13), g)
	shuffled, err := g.Permute(randPerm)
	if err != nil {
		t.Fatal(err)
	}
	baseQ, err := Evaluate(shuffled, mustPerm(t, Identity, shuffled), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rcb", "rib", "morton", "hilbert"} {
		f, _ := ByName(name)
		perm, err := f(shuffled)
		if err != nil {
			t.Fatalf("%s on 3-D data: %v", name, err)
		}
		if err := Validate(perm, g.N); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q, err := Evaluate(shuffled, perm, 8)
		if err != nil {
			t.Fatal(err)
		}
		if q.EdgeCut >= baseQ.EdgeCut {
			t.Errorf("%s 3-D edge cut %d not better than shuffled %d", name, q.EdgeCut, baseQ.EdgeCut)
		}
	}
}

func TestRCB3DSplitsAlongLongestAxis(t *testing.T) {
	// An elongated 3-D box: the first split must separate low-Z from
	// high-Z, so the two halves of the resulting index each stay in
	// one Z half.
	n := 4
	id := func(x, y, z int) int {
		return (z*n+y)*n + x
	}
	var edges []graph.Edge
	coords := make([]geom.Point, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				coords[id(x, y, z)] = geom.Point{X: float64(x), Y: float64(y), Z: float64(z) * 100}
				if x+1 < n {
					edges = append(edges, graph.Edge{U: int32(id(x, y, z)), V: int32(id(x+1, y, z))})
				}
			}
		}
	}
	// Make it connected along rows only; RCB needs no connectivity.
	g, err := graph.FromEdges(n*n*n, edges, coords)
	if err != nil {
		t.Fatal(err)
	}
	perm := mustPerm(t, RCB, g)
	half := int32(g.N / 2)
	for v := 0; v < g.N; v++ {
		z := v / (n * n)
		lowHalf := perm[v] < half
		if (z < n/2) != lowHalf {
			t.Fatalf("vertex %d (z=%d) mapped to index %d: first split not along Z", v, z, perm[v])
		}
	}
}
