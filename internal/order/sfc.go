package order

import (
	"fmt"
	"sort"

	"stance/internal/geom"
	"stance/internal/graph"
)

// sfcBits is the per-axis resolution of the space-filling-curve
// orderings: coordinates are quantized onto a 2^sfcBits grid.
const sfcBits = 16

// quantize maps coordinates onto the integer grid [0, 2^sfcBits).
func quantize(coords []geom.Point) ([][3]uint32, bool) {
	b := geom.Bounds(coords)
	span := [3]float64{b.Extent(0), b.Extent(1), b.Extent(2)}
	is3D := span[2] > 0
	const maxCell = (1 << sfcBits) - 1
	out := make([][3]uint32, len(coords))
	for i, p := range coords {
		for axis := 0; axis < 3; axis++ {
			if span[axis] <= 0 {
				continue
			}
			f := (p.Coord(axis) - b.Min.Coord(axis)) / span[axis]
			c := uint32(f * maxCell)
			if c > maxCell {
				c = maxCell
			}
			out[i][axis] = c
		}
	}
	return out, is3D
}

// Morton orders vertices along the Z-order (Morton) space-filling
// curve of their quantized coordinates. Works for 2-D and 3-D data.
func Morton(g *graph.Graph) ([]int32, error) {
	if g.Coords == nil {
		return nil, fmt.Errorf("order: Morton requires vertex coordinates")
	}
	q, is3D := quantize(g.Coords)
	keys := make([]uint64, g.N)
	for i := range q {
		if is3D {
			keys[i] = morton3(q[i][0], q[i][1], q[i][2])
		} else {
			keys[i] = morton2(q[i][0], q[i][1])
		}
	}
	return permFromUintKeys(keys), nil
}

// Hilbert orders vertices along the 2-D Hilbert curve of their
// quantized coordinates; for 3-D inputs it falls back to interleaving
// the Hilbert index of (x, y) with z, which preserves most locality.
func Hilbert(g *graph.Graph) ([]int32, error) {
	if g.Coords == nil {
		return nil, fmt.Errorf("order: Hilbert requires vertex coordinates")
	}
	q, is3D := quantize(g.Coords)
	keys := make([]uint64, g.N)
	for i := range q {
		h := hilbertXY2D(q[i][0], q[i][1])
		if is3D {
			// Coarse 3-D handling: major-order on the z layer bits.
			keys[i] = uint64(q[i][2])<<(2*sfcBits) | h
		} else {
			keys[i] = h
		}
	}
	return permFromUintKeys(keys), nil
}

func permFromUintKeys(keys []uint64) []int32 {
	ranked := make([]int32, len(keys))
	for i := range ranked {
		ranked[i] = int32(i)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if keys[ranked[i]] != keys[ranked[j]] {
			return keys[ranked[i]] < keys[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	return fromRanked(ranked)
}

// spread2 inserts a zero bit between each of the low 32 bits of x.
func spread2(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// morton2 interleaves the bits of x and y.
func morton2(x, y uint32) uint64 {
	return spread2(x) | spread2(y)<<1
}

// spread3 inserts two zero bits between each of the low 21 bits of x.
func spread3(x uint32) uint64 {
	v := uint64(x) & 0x1FFFFF
	v = (v | v<<32) & 0x1F00000000FFFF
	v = (v | v<<16) & 0x1F0000FF0000FF
	v = (v | v<<8) & 0x100F00F00F00F00F
	v = (v | v<<4) & 0x10C30C30C30C30C3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// morton3 interleaves the low 21 bits of x, y and z.
func morton3(x, y, z uint32) uint64 {
	return spread3(x) | spread3(y)<<1 | spread3(z)<<2
}

// hilbertXY2D converts grid coordinates to their index along the
// Hilbert curve of order sfcBits (the classical Wikipedia xy2d
// rotation algorithm).
func hilbertXY2D(x, y uint32) uint64 {
	var d uint64
	rx, ry := uint32(0), uint32(0)
	for s := uint32(1) << (sfcBits - 1); s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
