// Package order implements the architecture-independent locality
// transformations of paper Section 3.1: permutations T : V -> {0..n-1}
// that renumber a computational graph so that physically proximate
// vertices receive nearby indices. Once a graph is in this
// one-dimensional form, partitioning for any processor-capability
// vector is just cutting the list into contiguous intervals, and
// remapping after an adaptation reuses the same transform.
//
// The paper treats the transform as pluggable ("several methods are
// described in [19, 7]"); this package provides the standard family:
// recursive coordinate bisection, recursive inertial bisection, Morton
// and Hilbert space-filling curves, (reverse) Cuthill-McKee, and an
// approximate spectral (Fiedler-vector) ordering, plus identity and
// random baselines.
package order

import (
	"fmt"
	"math/rand"
	"sort"

	"stance/internal/graph"
)

// A Func computes a permutation perm with perm[v] = the new index of
// vertex v in the one-dimensional list.
type Func func(g *graph.Graph) ([]int32, error)

// Identity returns the trivial transformation T(v) = v.
func Identity(g *graph.Graph) ([]int32, error) {
	perm := make([]int32, g.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm, nil
}

// Random returns a uniformly random permutation; the worst-case
// baseline for locality experiments.
func Random(seed int64) Func {
	return func(g *graph.Graph) ([]int32, error) {
		rng := rand.New(rand.NewSource(seed))
		perm := make([]int32, g.N)
		for i, p := range rng.Perm(g.N) {
			perm[i] = int32(p)
		}
		return perm, nil
	}
}

// ByName returns the named ordering: "identity", "random", "rcb",
// "rib", "morton", "hilbert", "rcm" or "spectral".
func ByName(name string) (Func, error) {
	switch name {
	case "identity":
		return Identity, nil
	case "random":
		return Random(1), nil
	case "rcb":
		return RCB, nil
	case "rib":
		return RIB, nil
	case "morton":
		return Morton, nil
	case "hilbert":
		return Hilbert, nil
	case "rcm":
		return RCM, nil
	case "spectral":
		return Spectral(DefaultSpectralOptions()), nil
	}
	return nil, fmt.Errorf("order: unknown ordering %q", name)
}

// Names lists the orderings available through ByName.
func Names() []string {
	return []string{"identity", "random", "rcb", "rib", "morton", "hilbert", "rcm", "spectral"}
}

// Validate checks that perm is a permutation of 0..n-1.
func Validate(perm []int32, n int) error {
	if len(perm) != n {
		return fmt.Errorf("order: permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for v, p := range perm {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("order: perm[%d] = %d out of range", v, p)
		}
		if seen[p] {
			return fmt.Errorf("order: duplicate target %d", p)
		}
		seen[p] = true
	}
	return nil
}

// Invert returns the inverse permutation: inv[newIndex] = oldVertex.
func Invert(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for old, nw := range perm {
		inv[nw] = int32(old)
	}
	return inv
}

// fromRanked builds a permutation from a slice of vertex ids listed in
// their new order: ranked[i] is the vertex that gets index i.
func fromRanked(ranked []int32) []int32 {
	perm := make([]int32, len(ranked))
	for i, v := range ranked {
		perm[v] = int32(i)
	}
	return perm
}

// sortByKey returns the vertices 0..n-1 sorted by key, breaking ties
// by vertex id so orderings are deterministic.
func sortByKey(n int, key func(v int32) float64) []int32 {
	ranked := make([]int32, n)
	for i := range ranked {
		ranked[i] = int32(i)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		ki, kj := key(ranked[i]), key(ranked[j])
		if ki != kj {
			return ki < kj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// Quality reports how well an ordering serves interval partitioning.
type Quality struct {
	EdgeCut      int     // edges crossing block boundaries for p equal blocks
	Bandwidth    int     // max index distance across an edge
	MeanEdgeSpan float64 // mean index distance across an edge
}

// Evaluate partitions the transformed list into p equal contiguous
// blocks and reports the resulting cut and locality statistics.
func Evaluate(g *graph.Graph, perm []int32, p int) (Quality, error) {
	if err := Validate(perm, g.N); err != nil {
		return Quality{}, err
	}
	if p < 1 {
		return Quality{}, fmt.Errorf("order: p must be >= 1, got %d", p)
	}
	ng, err := g.Permute(perm)
	if err != nil {
		return Quality{}, err
	}
	part := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		b := v * p / g.N
		part[v] = int32(b)
	}
	cut, err := ng.EdgeCut(part)
	if err != nil {
		return Quality{}, err
	}
	return Quality{
		EdgeCut:      cut,
		Bandwidth:    ng.Bandwidth(),
		MeanEdgeSpan: ng.MeanEdgeSpan(),
	}, nil
}
