package order_test

import (
	"fmt"

	"stance/internal/mesh"
	"stance/internal/order"
)

// A locality transform turns the mesh into a one-dimensional list;
// Evaluate reports how well contiguous blocks of that list partition
// the mesh. RCB beats a random numbering by an order of magnitude.
func ExampleEvaluate() {
	g, _ := mesh.GridTriangulated(16, 16, 0, 1)
	shufflePerm, _ := order.Random(7)(g)
	shuffled, _ := g.Permute(shufflePerm)

	identity, _ := order.Identity(shuffled)
	qBefore, _ := order.Evaluate(shuffled, identity, 8)

	rcb, _ := order.RCB(shuffled)
	qAfter, _ := order.Evaluate(shuffled, rcb, 8)

	fmt.Println("shuffled edge cut:", qBefore.EdgeCut)
	fmt.Println("after RCB:        ", qAfter.EdgeCut)
	// Output:
	// shuffled edge cut: 620
	// after RCB:         121
}
