package order

import (
	"sort"

	"stance/internal/graph"
)

// RCM computes a reverse Cuthill-McKee ordering: breadth-first search
// from a pseudo-peripheral vertex, visiting neighbors in increasing
// degree order, then reversing. RCM is the classic cheap
// bandwidth-reducing renumbering and needs no coordinates, so it works
// on purely combinatorial graphs. Disconnected graphs are handled by
// restarting the search in each component.
func RCM(g *graph.Graph) ([]int32, error) {
	ranked := make([]int32, 0, g.N)
	visited := make([]bool, g.N)
	queue := make([]int32, 0, g.N)
	for {
		start := pseudoPeripheral(g, visited)
		if start < 0 {
			break
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			ranked = append(ranked, v)
			nbrs := make([]int32, 0, g.Degree(int(v)))
			for _, w := range g.Neighbors(int(v)) {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			sort.Slice(nbrs, func(i, j int) bool {
				di, dj := g.Degree(int(nbrs[i])), g.Degree(int(nbrs[j]))
				if di != dj {
					return di < dj
				}
				return nbrs[i] < nbrs[j]
			})
			queue = append(queue, nbrs...)
		}
	}
	// Reverse (the "R" in RCM).
	for i, j := 0, len(ranked)-1; i < j; i, j = i+1, j-1 {
		ranked[i], ranked[j] = ranked[j], ranked[i]
	}
	return fromRanked(ranked), nil
}

// pseudoPeripheral finds a vertex at (approximately) maximum
// eccentricity among unvisited vertices: start anywhere, BFS to the
// farthest vertex, repeat once. Returns -1 when every vertex is
// visited.
func pseudoPeripheral(g *graph.Graph, visited []bool) int32 {
	start := int32(-1)
	for v := 0; v < g.N; v++ {
		if !visited[v] {
			start = int32(v)
			break
		}
	}
	if start < 0 {
		return -1
	}
	for iter := 0; iter < 2; iter++ {
		far := bfsFarthest(g, start, visited)
		if far == start {
			break
		}
		start = far
	}
	return start
}

// bfsFarthest returns the vertex at maximum BFS distance from start
// within the unvisited subgraph, preferring the one with minimum
// degree (a heuristic for peripherality), then lowest id.
func bfsFarthest(g *graph.Graph, start int32, visited []bool) int32 {
	dist := make(map[int32]int, 64)
	dist[start] = 0
	queue := []int32{start}
	best, bestDist := start, 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v]
		if d > bestDist ||
			(d == bestDist && g.Degree(int(v)) < g.Degree(int(best))) ||
			(d == bestDist && g.Degree(int(v)) == g.Degree(int(best)) && v < best) {
			best, bestDist = v, d
		}
		for _, w := range g.Neighbors(int(v)) {
			if visited[w] {
				continue
			}
			if _, ok := dist[w]; !ok {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
	return best
}
