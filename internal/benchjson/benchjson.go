// Package benchjson turns the `go test -json -bench` event stream into
// a machine-readable benchmark summary. CI pipes the -benchtime=1x
// sweep through it to publish bench.json as a workflow artifact, and
// the committed BENCH_baseline.json snapshot records the perf
// trajectory PR over PR (cmd/benchjson is the CLI wrapper).
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	// Pkg is the import path the benchmark ran in.
	Pkg string `json:"pkg"`
	// Name is the full benchmark name including sub-benchmarks and the
	// -cpu suffix (e.g. "BenchmarkExchange/p=2-8").
	Name string `json:"name"`
	// N is the iteration count the measurements are averaged over.
	N int64 `json:"n"`
	// Metrics maps unit to per-operation value: "ns/op", "B/op",
	// "allocs/op" and any b.ReportMetric custom units.
	Metrics map[string]float64 `json:"metrics"`
}

// Summary is the document bench.json carries.
type Summary struct {
	Benchmarks []Result `json:"benchmarks"`
}

// event is the subset of the test2json stream we care about.
type event struct {
	Action  string
	Package string
	Output  string
}

// Parse consumes a `go test -json` stream and extracts every benchmark
// result line. go test prints a benchmark's name and its measurements
// as separate writes, so output fragments are reassembled into lines
// per package before parsing. Results come back sorted by package then
// name, so the output is diffable across runs.
func Parse(r io.Reader) (*Summary, error) {
	partial := map[string]string{} // package -> unterminated output fragment
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("benchjson: malformed test2json event: %w", err)
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if res, ok := parseBenchLine(ev.Package, buf[:nl]); ok {
				results = append(results, res)
			}
			buf = buf[nl+1:]
		}
		partial[ev.Package] = buf
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Pkg != results[j].Pkg {
			return results[i].Pkg < results[j].Pkg
		}
		return results[i].Name < results[j].Name
	})
	return &Summary{Benchmarks: results}, nil
}

// parseBenchLine recognizes a benchmark result line:
//
//	BenchmarkName/sub-8   <N>   <value> <unit>   <value> <unit> ...
func parseBenchLine(pkg, line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	// A bare "Benchmark" line (a test named BenchmarkX being *run*, or
	// a name-only fragment) is not a result.
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Pkg: pkg, Name: fields[0], N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return Result{}, false
	}
	return res, true
}

// Write renders the summary as indented JSON with a trailing newline.
func (s *Summary) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read decodes a summary previously produced by Write — the format of
// bench.json and the committed BENCH_baseline.json.
func Read(r io.Reader) (*Summary, error) {
	var s Summary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("benchjson: malformed summary: %w", err)
	}
	return &s, nil
}
