package benchjson

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sample mimics a `go test -json -bench` stream: the benchmark name
// and its measurements arrive as separate output events (exactly how
// go test writes them), interleaved across two packages, with noise
// lines around them.
const sample = `{"Action":"start","Package":"stance/internal/bench"}
{"Action":"output","Package":"stance/internal/bench","Output":"goos: linux\n"}
{"Action":"output","Package":"stance/internal/bench","Output":"BenchmarkExchange/p=2-8         \t"}
{"Action":"output","Package":"stance/internal/comm","Output":"BenchmarkSendRecv-8 \t    5000\t    211.5 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"stance/internal/bench","Output":"     100\t     12345 ns/op\t      24 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"stance/internal/bench","Output":"BenchmarkOverlapLatencyHiding/executor=overlap-8 \t       1\t  30446969 ns/op\t  24509641 idle-ns/op\n"}
{"Action":"output","Package":"stance/internal/bench","Output":"--- PASS: TestSomething (0.01s)\n"}
{"Action":"output","Package":"stance/internal/bench","Output":"PASS\n"}
{"Action":"pass","Package":"stance/internal/bench"}
`

func TestParse(t *testing.T) {
	sum, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(sum.Benchmarks), sum.Benchmarks)
	}
	// Sorted by package then name.
	got := sum.Benchmarks
	if got[0].Pkg != "stance/internal/bench" || got[0].Name != "BenchmarkExchange/p=2-8" {
		t.Errorf("first result %+v, want the reassembled split-line Exchange benchmark", got[0])
	}
	if got[0].N != 100 || got[0].Metrics["ns/op"] != 12345 || got[0].Metrics["B/op"] != 24 {
		t.Errorf("Exchange metrics wrong: %+v", got[0])
	}
	if v, ok := got[0].Metrics["allocs/op"]; !ok || v != 0 {
		t.Errorf("Exchange allocs/op = %v (present %v), want 0", v, ok)
	}
	if got[1].Name != "BenchmarkOverlapLatencyHiding/executor=overlap-8" ||
		got[1].Metrics["idle-ns/op"] != 24509641 {
		t.Errorf("custom-metric benchmark wrong: %+v", got[1])
	}
	if got[2].Pkg != "stance/internal/comm" || got[2].Metrics["ns/op"] != 211.5 {
		t.Errorf("comm benchmark wrong: %+v", got[2])
	}

	var buf bytes.Buffer
	if err := sum.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var round Summary
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v", err)
	}
	if len(round.Benchmarks) != 3 {
		t.Fatalf("round-tripped %d benchmarks, want 3", len(round.Benchmarks))
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed stream parsed without error")
	}
	// Non-result Benchmark lines (run markers, name-only fragments at
	// EOF) are skipped, not errors.
	sum, err := Parse(strings.NewReader(
		`{"Action":"output","Package":"p","Output":"BenchmarkX\n"}` + "\n" +
			`{"Action":"output","Package":"p","Output":"BenchmarkY-8 \t dangling"}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from non-result lines, want 0", len(sum.Benchmarks))
	}
}
