package benchjson

import (
	"strings"
	"testing"
)

// FuzzBenchJSON fuzzes the `go test -json` stream parser: whatever the
// input — split output lines, interleaved packages, garbage bytes,
// half-written JSON — Parse must never panic, and when it accepts a
// stream the summary must be well-formed (no nil metric maps, no
// negative iteration counts it parsed out of thin air). Run under
// `go test -fuzz=FuzzBenchJSON ./internal/benchjson`; the seed corpus
// covers the reassembly path (benchmark name and measurements arriving
// as separate output events) that motivated the parser.
func FuzzBenchJSON(f *testing.F) {
	f.Add("")
	f.Add("not json at all\n")
	f.Add(`{"Action":"output","Package":"p","Output":"BenchmarkX-8   10   5 ns/op\n"}` + "\n")
	// The reassembly case: name and measurements split across events.
	f.Add(`{"Action":"output","Package":"p","Output":"BenchmarkSplit/case=1-8   "}` + "\n" +
		`{"Action":"output","Package":"p","Output":"25   4031 ns/op   0 B/op\n"}` + "\n")
	// Interleaved packages sharing the stream.
	f.Add(`{"Action":"output","Package":"a","Output":"BenchmarkA-2   1   9 ns/op"}` + "\n" +
		`{"Action":"output","Package":"b","Output":"BenchmarkB-2   2   8 ns/op\n"}` + "\n" +
		`{"Action":"output","Package":"a","Output":"\n"}` + "\n")
	f.Add(`{"Action":"run","Package":"p"}` + "\n")
	f.Add(`{"Action":"output","Package":"p","Output":"Benchmark   notanumber   x\n"}` + "\n")
	f.Add("{\"Action\":\"output\"") // truncated JSON event
	f.Add("\x00\x01\x02\n{}\n")     // binary garbage then empty event
	f.Fuzz(func(t *testing.T, stream string) {
		sum, err := Parse(strings.NewReader(stream))
		if err != nil {
			return
		}
		for i, b := range sum.Benchmarks {
			if b.Metrics == nil || len(b.Metrics) == 0 {
				t.Fatalf("benchmark %d (%s) accepted with no metrics", i, b.Name)
			}
			if b.N < 0 {
				t.Fatalf("benchmark %d (%s) has negative N %d", i, b.Name, b.N)
			}
			if !strings.HasPrefix(b.Name, "Benchmark") {
				t.Fatalf("benchmark %d has non-benchmark name %q", i, b.Name)
			}
		}
	})
}
