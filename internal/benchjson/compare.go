package benchjson

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// gatedUnits are the metrics the regression gate checks. Timings catch
// gross slowdowns; allocation counts are deterministic, so with a zero
// baseline any increase is flagged regardless of tolerance.
var gatedUnits = []string{"ns/op", "allocs/op"}

// Regression is one benchmark metric that got worse beyond tolerance.
type Regression struct {
	// Pkg and Name identify the benchmark (Result fields).
	Pkg  string `json:"pkg"`
	Name string `json:"name"`
	// Unit is the metric that regressed ("ns/op" or "allocs/op").
	Unit string `json:"unit"`
	// Old and New are the baseline and current values.
	Old float64 `json:"old"`
	New float64 `json:"new"`
}

// Delta is the fractional increase over the baseline; +Inf when the
// baseline was zero.
func (r Regression) Delta() float64 {
	if r.Old == 0 {
		return math.Inf(1)
	}
	return (r.New - r.Old) / r.Old
}

// String renders the regression the way the CLI reports it.
func (r Regression) String() string {
	if r.Old == 0 {
		return fmt.Sprintf("%s %s: %s %v -> %v (baseline was zero)",
			r.Pkg, r.Name, r.Unit, r.Old, r.New)
	}
	return fmt.Sprintf("%s %s: %s %v -> %v (+%.1f%%)",
		r.Pkg, r.Name, r.Unit, r.Old, r.New, 100*(r.New-r.Old)/r.Old)
}

// Compare checks cur against base and returns every gated metric that
// regressed beyond tol, a fractional tolerance (0.10 = a 10% increase
// is still acceptable). A zero baseline tolerates nothing: the
// allocation gates pin 0 allocs/op, and any increase from 0 is a real
// regression no matter the percentage asked for. Benchmarks present in
// only one summary are skipped — new benchmarks are not regressions,
// and deleted ones have nothing to measure. Results come back sorted
// by package, name, then unit.
func Compare(base, cur *Summary, tol float64) []Regression {
	type key struct{ pkg, name string }
	old := make(map[key]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		old[key{r.Pkg, r.Name}] = r
	}
	var regs []Regression
	for _, r := range cur.Benchmarks {
		b, ok := old[key{r.Pkg, r.Name}]
		if !ok {
			continue
		}
		for _, unit := range gatedUnits {
			nv, nok := r.Metrics[unit]
			ov, ook := b.Metrics[unit]
			if !nok || !ook {
				continue
			}
			if (ov == 0 && nv > 0) || (ov > 0 && nv > ov*(1+tol)) {
				regs = append(regs, Regression{Pkg: r.Pkg, Name: r.Name, Unit: unit, Old: ov, New: nv})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		a, b := regs[i], regs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Unit < b.Unit
	})
	return regs
}

// ParseTolerance reads a tolerance argument: either a percentage with
// a trailing '%' ("10%") or a bare fraction ("0.1"). Both examples
// mean the same bound.
func ParseTolerance(s string) (float64, error) {
	raw := strings.TrimSpace(s)
	pct := strings.HasSuffix(raw, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(raw, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("benchjson: bad tolerance %q (want \"10%%\" or \"0.1\")", s)
	}
	if pct {
		v /= 100
	}
	if v < 0 || v != v {
		return 0, fmt.Errorf("benchjson: tolerance %q is negative", s)
	}
	return v, nil
}
