package benchjson

import (
	"strings"
	"testing"
)

func sum(results ...Result) *Summary { return &Summary{Benchmarks: results} }

func res(pkg, name string, metrics map[string]float64) Result {
	return Result{Pkg: pkg, Name: name, N: 1, Metrics: metrics}
}

func TestCompare(t *testing.T) {
	base := sum(
		res("p", "BenchmarkA-8", map[string]float64{"ns/op": 1000, "allocs/op": 0}),
		res("p", "BenchmarkB-8", map[string]float64{"ns/op": 1000, "allocs/op": 4}),
		res("p", "BenchmarkGone-8", map[string]float64{"ns/op": 50}),
	)
	cur := sum(
		// Exactly at the 10% bound: not a regression (the gate is >).
		res("p", "BenchmarkA-8", map[string]float64{"ns/op": 1100, "allocs/op": 0}),
		// 20% slower and one extra alloc: two regressions.
		res("p", "BenchmarkB-8", map[string]float64{"ns/op": 1200, "allocs/op": 5}),
		// Only in the new run: ignored.
		res("p", "BenchmarkNew-8", map[string]float64{"ns/op": 1e9}),
	)
	regs := Compare(base, cur, 0.10)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkB-8" || regs[0].Unit != "allocs/op" || regs[0].New != 5 {
		t.Errorf("first regression %+v, want BenchmarkB allocs/op 4 -> 5", regs[0])
	}
	if regs[1].Name != "BenchmarkB-8" || regs[1].Unit != "ns/op" || regs[1].Old != 1000 || regs[1].New != 1200 {
		t.Errorf("second regression %+v, want BenchmarkB ns/op 1000 -> 1200", regs[1])
	}
	if d := regs[1].Delta(); d < 0.199 || d > 0.201 {
		t.Errorf("ns/op delta %v, want 0.2", d)
	}
	if got := regs[1].String(); !strings.Contains(got, "+20.0%") {
		t.Errorf("regression rendered as %q, want the percentage in it", got)
	}

	// Generous tolerance lets the timing slide but a zero-alloc
	// baseline still tolerates nothing.
	cur2 := sum(res("p", "BenchmarkA-8", map[string]float64{"ns/op": 4000, "allocs/op": 1}))
	regs = Compare(base, cur2, 5.0)
	if len(regs) != 1 || regs[0].Unit != "allocs/op" || regs[0].Old != 0 {
		t.Fatalf("got %v, want exactly the 0 -> 1 allocs/op regression", regs)
	}
	if got := regs[0].String(); !strings.Contains(got, "baseline was zero") {
		t.Errorf("zero-baseline regression rendered as %q", got)
	}

	if regs := Compare(base, base, 0); len(regs) != 0 {
		t.Errorf("summary regressed against itself: %v", regs)
	}
}

func TestParseTolerance(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"10%", 0.10}, {"0.1", 0.10}, {" 400% ", 4.0}, {"0", 0}, {"0%", 0},
	} {
		got, err := ParseTolerance(tc.in)
		if err != nil {
			t.Errorf("ParseTolerance(%q): %v", tc.in, err)
		} else if diff := got - tc.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("ParseTolerance(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "%", "-5%", "-0.1", "NaN"} {
		if v, err := ParseTolerance(bad); err == nil {
			t.Errorf("ParseTolerance(%q) = %v, want error", bad, v)
		}
	}
}

func TestReadRoundTrip(t *testing.T) {
	s := sum(res("p", "BenchmarkA-8", map[string]float64{"ns/op": 1.5}))
	var buf strings.Builder
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Metrics["ns/op"] != 1.5 {
		t.Fatalf("round-trip lost data: %+v", got)
	}
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage summary read without error")
	}
}
