package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"stance/internal/comm"
	"stance/internal/order"
)

// Failure injection: when a workstation disappears (its endpoint
// closes), collectives must fail with ErrClosed rather than hang or
// corrupt state — the paper's model tolerates resources leaving only
// between phases, so the runtime's job is to surface the error.

func TestExchangeFailsAfterPeerLoss(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rts := make([]*Runtime, 2)
	vecs := make([]*Vector, 2)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		rts[c.Rank()] = rt
		vecs[c.Rank()] = rt.NewVector()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Workstation 1 dies.
	ws[1].Close()
	// Rank 0's next exchange must fail: the send may still succeed
	// (its own endpoint is alive) but the receive from the dead peer
	// blocks until rank 0's endpoint is closed too. Use a watchdog
	// close to model failure detection.
	var wg sync.WaitGroup
	wg.Add(1)
	var exchErr error
	go func() {
		defer wg.Done()
		exchErr = rts[0].Exchange(vecs[0])
	}()
	time.Sleep(20 * time.Millisecond)
	ws[0].Close()
	wg.Wait()
	if exchErr == nil {
		t.Fatal("exchange with a dead peer succeeded")
	}
	if !errors.Is(exchErr, comm.ErrClosed) {
		t.Fatalf("exchange error = %v, want ErrClosed", exchErr)
	}
}

func TestRemapFailsCleanlyOnClosedWorld(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rts := make([]*Runtime, 2)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		rt.NewVector()
		rts[c.Rank()] = rt
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	comm.CloseWorld(ws)
	if _, err := rts[0].Remap([]float64{3, 1}); err == nil {
		t.Fatal("remap on a closed world succeeded")
	}
}

func TestNewFailsOnClosedWorldWithRootOrder(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	comm.CloseWorld(ws)
	// RootComputesOrder requires a broadcast, which must fail loudly.
	if _, err := New(ws[0], g, Config{Order: order.RCB, RootComputesOrder: true}); err == nil {
		t.Fatal("runtime construction on a closed world succeeded")
	}
}

func TestGatherGlobalFailsOnClosedWorld(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rts := make([]*Runtime, 2)
	vecs := make([]*Vector, 2)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{})
		if err != nil {
			return err
		}
		rts[c.Rank()] = rt
		vecs[c.Rank()] = rt.NewVector()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	comm.CloseWorld(ws)
	if _, err := rts[0].GatherGlobal(0, vecs[0]); err == nil {
		t.Fatal("gather on a closed world succeeded")
	}
}
