package core

import (
	"fmt"
	"math"
	"testing"

	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/mesh"
	"stance/internal/order"
)

// seqKernel runs the paper's Figure 8 loop sequentially on the
// transformed graph: t[i] = sum of neighbors' y, then y[i] = t[i]/deg.
func seqKernel(g *graph.Graph, y []float64, iters int) {
	t := make([]float64, g.N)
	for it := 0; it < iters; it++ {
		for i := 0; i < g.N; i++ {
			sum := 0.0
			for _, w := range g.Neighbors(i) {
				sum += y[w]
			}
			t[i] = sum
		}
		for i := 0; i < g.N; i++ {
			if d := g.Degree(i); d > 0 {
				y[i] = t[i] / float64(d)
			}
		}
	}
}

// parKernel runs the same loop on a runtime vector.
func parKernel(rt *Runtime, v *Vector, iters int) error {
	xadj, adj := rt.LocalAdj()
	nLocal := rt.LocalN()
	t := make([]float64, nLocal)
	for it := 0; it < iters; it++ {
		if err := rt.Exchange(v); err != nil {
			return err
		}
		for u := 0; u < nLocal; u++ {
			sum := 0.0
			for k := xadj[u]; k < xadj[u+1]; k++ {
				sum += v.Data[adj[k]]
			}
			t[u] = sum
		}
		for u := 0; u < nLocal; u++ {
			if d := xadj[u+1] - xadj[u]; d > 0 {
				v.Data[u] = t[u] / float64(d)
			}
		}
	}
	return nil
}

func initValue(g int64) float64 { return math.Sin(float64(g)*0.7) + 2 }

// runParallel executes the kernel on p ranks and returns the gathered
// global vector (transformed order).
func runParallel(t *testing.T, g *graph.Graph, p, iters int, cfg Config) []float64 {
	t.Helper()
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	var result []float64
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, cfg)
		if err != nil {
			return err
		}
		v := rt.NewVector()
		v.SetByGlobal(initValue)
		if err := parKernel(rt, v, iters); err != nil {
			return err
		}
		full, err := rt.GatherGlobal(0, v)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			result = full
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return result
}

// seqReference computes the expected result for a configuration's
// transformed graph.
func seqReference(t *testing.T, g *graph.Graph, ord order.Func, iters int) []float64 {
	t.Helper()
	if ord == nil {
		ord = order.Identity
	}
	perm, err := ord(g)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, tg.N)
	for i := range y {
		y[i] = initValue(int64(i))
	}
	seqKernel(tg, y, iters)
	return y
}

func testMesh(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := mesh.GridTriangulated(11, 13, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParallelMatchesSequentialExactly(t *testing.T) {
	g := testMesh(t)
	const iters = 7
	for _, p := range []int{1, 2, 3, 5} {
		for _, ord := range []struct {
			name string
			f    order.Func
		}{{"identity", nil}, {"rcb", order.RCB}} {
			cfg := Config{Order: ord.f}
			got := runParallel(t, g, p, iters, cfg)
			want := seqReference(t, g, ord.f, iters)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d order=%s: element %d = %v, want %v (must be bit-exact)",
						p, ord.name, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAllStrategiesComputeTheSame(t *testing.T) {
	g := testMesh(t)
	const iters = 4
	want := seqReference(t, g, order.RCB, iters)
	for _, s := range []Strategy{StrategySort1, StrategySort2, StrategySimple} {
		got := runParallel(t, g, 3, iters, Config{Order: order.RCB, Strategy: s})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("strategy %d: element %d = %v, want %v", s, i, got[i], want[i])
			}
		}
	}
}

func TestRootComputesOrder(t *testing.T) {
	g := testMesh(t)
	const iters = 3
	want := seqReference(t, g, order.RCB, iters)
	got := runParallel(t, g, 4, iters, Config{Order: order.RCB, RootComputesOrder: true})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRemapPreservesComputation(t *testing.T) {
	g := testMesh(t)
	const itersBefore, itersAfter = 3, 4
	want := seqReference(t, g, order.RCB, itersBefore+itersAfter)

	for _, policy := range []RemapPolicy{RemapMCRIterated, RemapMCR, RemapKeepArrangement} {
		p := 4
		ws, err := comm.NewWorld(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			rt, err := New(c, g, Config{
				Order:       order.RCB,
				Weights:     []float64{1, 1, 1, 1},
				RemapPolicy: policy,
			})
			if err != nil {
				return err
			}
			v := rt.NewVector()
			v.SetByGlobal(initValue)
			if err := parKernel(rt, v, itersBefore); err != nil {
				return err
			}
			// The environment "adapts": rank 0 slows to a third.
			stats, err := rt.Remap([]float64{0.33, 1, 1, 1})
			if err != nil {
				return err
			}
			if !stats.Changed {
				return fmt.Errorf("remap with changed weights reported no change")
			}
			if stats.Moved <= 0 {
				return fmt.Errorf("remap moved %d elements", stats.Moved)
			}
			if err := parKernel(rt, v, itersAfter); err != nil {
				return err
			}
			full, err := rt.GatherGlobal(0, v)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				got = full
			}
			return nil
		})
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		comm.CloseWorld(ws)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("policy %d: element %d = %v, want %v after remap", policy, i, got[i], want[i])
			}
		}
	}
}

func TestRemapMovesLessWithMCR(t *testing.T) {
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	oldW := []float64{0.27, 0.18, 0.34, 0.07, 0.14}
	newW := []float64{0.10, 0.13, 0.29, 0.24, 0.24}
	moved := map[RemapPolicy]int64{}
	for _, policy := range []RemapPolicy{RemapMCRIterated, RemapKeepArrangement} {
		ws, err := comm.NewWorld(5, nil)
		if err != nil {
			t.Fatal(err)
		}
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			rt, err := New(c, g, Config{Weights: oldW, RemapPolicy: policy})
			if err != nil {
				return err
			}
			rt.NewVector()
			stats, err := rt.Remap(newW)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				moved[policy] = stats.Moved
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		comm.CloseWorld(ws)
	}
	if moved[RemapMCRIterated] >= moved[RemapKeepArrangement] {
		t.Errorf("MCR moved %d elements, keep-arrangement moved %d; MCR should move less",
			moved[RemapMCRIterated], moved[RemapKeepArrangement])
	}
}

func TestRemapNoChange(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{})
		if err != nil {
			return err
		}
		stats, err := rt.Remap([]float64{1, 1})
		if err != nil {
			return err
		}
		if stats.Changed || stats.Moved != 0 {
			return fmt.Errorf("no-op remap reported %+v", stats)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterAdd(t *testing.T) {
	g := testMesh(t)
	// Each element pushes 1 to every neighbor: the result must be the
	// vertex degree.
	for _, p := range []int{1, 3} {
		ws, err := comm.NewWorld(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			rt, err := New(c, g, Config{Order: order.RCB})
			if err != nil {
				return err
			}
			v := rt.NewVector()
			xadj, adj := rt.LocalAdj()
			nLocal := rt.LocalN()
			// Accumulate contributions: local targets immediately,
			// ghost targets into the ghost section.
			for u := 0; u < nLocal; u++ {
				for k := xadj[u]; k < xadj[u+1]; k++ {
					v.Data[adj[k]]++
				}
			}
			if err := rt.ScatterAdd(v); err != nil {
				return err
			}
			iv := rt.GlobalInterval()
			for u := 0; u < nLocal; u++ {
				wantDeg := 0
				// Degree in the transformed graph equals degree of the
				// global vertex.
				wantDeg = int(xadj[u+1] - xadj[u])
				if v.Data[u] != float64(wantDeg) {
					return fmt.Errorf("rank %d: element %d (global %d) = %v, want degree %d",
						c.Rank(), u, iv.Lo+int64(u), v.Data[u], wantDeg)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		comm.CloseWorld(ws)
	}
}

func TestUnpermuteRoundTrip(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		v := rt.NewVector()
		v.SetByGlobal(func(gid int64) float64 { return float64(gid) })
		full, err := rt.GatherGlobal(0, v)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		orig, err := rt.Unpermute(full)
		if err != nil {
			return err
		}
		perm := rt.Perm()
		for o := 0; o < g.N; o++ {
			if orig[o] != float64(perm[o]) {
				return fmt.Errorf("Unpermute[%d] = %v, want %v", o, orig[o], float64(perm[o]))
			}
		}
		if _, err := rt.Unpermute(full[:3]); err == nil {
			return fmt.Errorf("short vector accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigErrors(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	if _, err := New(nil, g, Config{}); err == nil {
		t.Error("nil comm accepted")
	}
	if _, err := New(ws[0], nil, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(ws[0], g, Config{Weights: []float64{1}}); err == nil {
		t.Error("short weights accepted")
	}
	if _, err := New(ws[0], g, Config{Order: order.Morton, Weights: []float64{1, 1}}); err == nil {
		// testMesh has coords, so use a graph without them.
		bare, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, nil)
		if _, err := New(ws[0], bare, Config{Order: order.Morton, Weights: []float64{1, 1}}); err == nil {
			t.Error("failing ordering accepted")
		}
	}
}

func TestForeignVectorRejected(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	rtA, err := New(ws[0], g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rtB, err := New(ws[0], g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := rtA.NewVector()
	if err := rtB.Exchange(v); err == nil {
		t.Error("foreign vector accepted by Exchange")
	}
	if err := rtB.ScatterAdd(v); err == nil {
		t.Error("foreign vector accepted by ScatterAdd")
	}
	if _, err := rtB.GatherGlobal(0, v); err == nil {
		t.Error("foreign vector accepted by GatherGlobal")
	}
	if _, err := rtA.Remap([]float64{1, 1}); err == nil {
		t.Error("wrong-length remap weights accepted")
	}
}

func TestMultipleVectorsSurviveRemap(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		a := rt.NewVector()
		b := rt.NewVector()
		a.SetByGlobal(func(gid int64) float64 { return float64(gid) })
		b.SetByGlobal(func(gid int64) float64 { return float64(-gid) })
		if _, err := rt.Remap([]float64{3, 1, 2}); err != nil {
			return err
		}
		iv := rt.GlobalInterval()
		for u := 0; u < rt.LocalN(); u++ {
			gid := iv.Lo + int64(u)
			if a.Data[u] != float64(gid) {
				return fmt.Errorf("vector a corrupted at global %d: %v", gid, a.Data[u])
			}
			if b.Data[u] != float64(-gid) {
				return fmt.Errorf("vector b corrupted at global %d: %v", gid, b.Data[u])
			}
		}
		if len(a.Data) != rt.LocalN()+rt.Schedule().NGhosts() {
			return fmt.Errorf("vector a not resized for new schedule")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	g, err := mesh.GridTriangulated(8, 8, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 3
	want := seqReference(t, g, order.RCB, iters)
	ws, closer, err := comm.NewTCPWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	var got []float64
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		v := rt.NewVector()
		v.SetByGlobal(initValue)
		if err := parKernel(rt, v, iters); err != nil {
			return err
		}
		full, err := rt.GatherGlobal(0, v)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			got = full
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TCP element %d = %v, want %v", i, got[i], want[i])
		}
	}
}
