package core

import (
	"fmt"
	"time"

	"stance/internal/comm"
	"stance/internal/partition"
	"stance/internal/redist"
)

// RemapStats reports what a Remap cost and moved (paper Sections 3.4
// and 3.5).
type RemapStats struct {
	// Moved is the number of elements that crossed the network.
	Moved int64
	// Messages is the number of point-to-point transfers generated.
	Messages int
	// Total is the wall time of the whole remap on this rank,
	// including data movement and the inspector rebuild.
	Total time.Duration
	// Inspector is the schedule-rebuild portion.
	Inspector time.Duration
	// Changed reports whether the layout actually changed.
	Changed bool
}

// Remap redistributes the data for new processor capabilities: a new
// layout is chosen under the configured policy, every registered
// vector's owned section is moved according to the transfer plan, and
// the inspector rebuilds the schedule and local subgraph. Collective;
// all ranks must pass the same weights.
func (rt *Runtime) Remap(newWeights []float64) (RemapStats, error) {
	start := rt.clock.Now()
	if n := len(rt.live); n > 0 {
		return RemapStats{}, fmt.Errorf("core: Remap while %d split-phase op(s) are in flight; Wait on their handles first", n)
	}
	if len(newWeights) != rt.c.Size() {
		return RemapStats{}, fmt.Errorf("core: %d weights for %d ranks", len(newWeights), rt.c.Size())
	}
	newLayout, err := rt.chooseLayout(newWeights)
	if err != nil {
		return RemapStats{}, err
	}
	stats := RemapStats{}
	stats.Moved, err = partition.Moved(rt.layout, newLayout)
	if err != nil {
		return RemapStats{}, err
	}
	stats.Messages, err = partition.Messages(rt.layout, newLayout)
	if err != nil {
		return RemapStats{}, err
	}
	if newLayout.Equal(rt.layout) {
		stats.Total = rt.clock.Now().Sub(start)
		return stats, nil
	}
	stats.Changed = true

	plan, err := redist.NewPlan(rt.layout, newLayout, rt.c.Rank())
	if err != nil {
		return RemapStats{}, err
	}
	if err := rt.moveVectors(plan); err != nil {
		return RemapStats{}, err
	}
	rt.layout = newLayout
	if err := rt.rebuild(); err != nil {
		return RemapStats{}, err
	}
	// Re-extend the vectors' ghost sections for the new schedule.
	for _, v := range rt.vecs {
		local := v.Data[:plan.New.Len()]
		v.Data = make([]float64, int(plan.New.Len())+rt.sch.NGhosts())
		copy(v.Data, local)
	}
	stats.Inspector = rt.lastInspector
	stats.Total = rt.clock.Now().Sub(start)
	return stats, nil
}

// chooseLayout picks the new layout under the configured remap policy,
// cutting by vertex weights when the runtime carries them. A
// hierarchical configuration recuts hierarchically regardless of the
// remap policy: the group-contiguous arrangement is what keeps the
// inter-group boundaries few and refined, and an arrangement search
// that scattered groups along the list would undo exactly that.
func (rt *Runtime) chooseLayout(newWeights []float64) (*partition.Layout, error) {
	if spec, ok := rt.hierSpec(len(newWeights)); ok {
		if rt.itemWeights != nil {
			return partition.NewHierarchicalWeighted(rt.itemWeights, newWeights, spec)
		}
		return partition.NewHierarchical(rt.n, newWeights, spec)
	}
	if rt.itemWeights != nil {
		switch rt.cfg.RemapPolicy {
		case RemapKeepArrangement:
			return partition.NewWeighted(rt.itemWeights, newWeights, rt.layout.Arrangement())
		case RemapMCR:
			return redist.MinimizeCostRedistributionWeighted(rt.layout, rt.itemWeights, newWeights, rt.cfg.RemapCost)
		default:
			return redist.IteratedWeighted(rt.layout, rt.itemWeights, newWeights, rt.cfg.RemapCost, 0)
		}
	}
	switch rt.cfg.RemapPolicy {
	case RemapKeepArrangement:
		return partition.New(rt.n, newWeights, rt.layout.Arrangement())
	case RemapMCR:
		return redist.MinimizeCostRedistribution(rt.layout, newWeights, rt.cfg.RemapCost)
	default:
		return redist.Iterated(rt.layout, newWeights, rt.cfg.RemapCost, 0)
	}
}

// moveVectors executes the transfer plan for every registered vector
// within the runtime's own world.
func (rt *Runtime) moveVectors(plan *redist.Plan) error {
	return rt.moveVectorsOn(rt.c, tagRedist, plan)
}

// moveVectorsOn executes the transfer plan for every registered vector
// over an explicit carrier communicator — the runtime's own world for
// a Remap, the full parent world for a cross-world Rebind (whose
// transfer peers are carrier ranks). Vectors move in registration
// order on all ranks, so same-tag transfers pair up FIFO.
func (rt *Runtime) moveVectorsOn(c *comm.Comm, tag int, plan *redist.Plan) error {
	for _, v := range rt.vecs {
		oldLocal := v.Data[:plan.Old.Len()]
		newLocal := make([]float64, plan.New.Len())
		if err := plan.ApplyLocal(oldLocal, newLocal); err != nil {
			return err
		}
		for _, s := range plan.Sends {
			off := s.Global.Lo - plan.Old.Lo
			seg := oldLocal[off : off+s.Global.Len()]
			if err := c.Send(s.Peer, tag, comm.F64sToBytes(seg)); err != nil {
				return err
			}
		}
		for _, r := range plan.Recvs {
			want := int(r.Global.Len())
			if cap(rt.wireScratch) < 8*want {
				rt.wireScratch = make([]byte, 8*want)
			}
			n, err := c.RecvInto(r.Peer, tag, rt.wireScratch[:8*want])
			if err != nil {
				return err
			}
			if n != 8*want {
				return fmt.Errorf("core: redistribution from %d carried %d values, want %d",
					r.Peer, n/8, want)
			}
			dst := newLocal[r.Global.Lo-plan.New.Lo:][:want]
			if err := comm.GetF64s(dst, rt.wireScratch[:n]); err != nil {
				return err
			}
		}
		// Park the new local section; ghost space is re-attached once
		// the new schedule is known.
		v.Data = newLocal
	}
	return nil
}
