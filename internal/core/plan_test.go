package core

import (
	"fmt"
	"math"
	"testing"

	"stance/internal/comm"
	"stance/internal/order"
)

// The reference implementations below are the pre-plan executor data
// path (PR 1's Exchange/ScatterAdd/ExchangeAll, verbatim): a fresh
// pack buffer per peer per call, two copies through the byte codec,
// and receives drained in fixed rank order. The equivalence tests pin
// the compiled-plan path against them bit for bit — same wire format,
// same ghost values, and the same floating-point accumulation order.

func refExchange(rt *Runtime, v *Vector) error {
	s := rt.sch
	for q := 0; q < s.NProcs; q++ {
		idx := s.SendIdx[q]
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, len(idx))
		for i, li := range idx {
			buf[i] = v.Data[li]
		}
		if err := rt.c.Send(q, tagExchange, comm.F64sToBytes(buf)); err != nil {
			return err
		}
	}
	nLocal := rt.LocalN()
	for q := 0; q < s.NProcs; q++ {
		slots := s.RecvSlot[q]
		if len(slots) == 0 {
			continue
		}
		data, err := rt.c.Recv(q, tagExchange)
		if err != nil {
			return err
		}
		vals, err := comm.BytesToF64s(data)
		if err != nil {
			return err
		}
		if len(vals) != len(slots) {
			return fmt.Errorf("peer %d sent %d values, schedule expects %d", q, len(vals), len(slots))
		}
		for i, slot := range slots {
			v.Data[nLocal+int(slot)] = vals[i]
		}
	}
	return nil
}

func refScatterAdd(rt *Runtime, v *Vector) error {
	s := rt.sch
	nLocal := rt.LocalN()
	for q := 0; q < s.NProcs; q++ {
		slots := s.RecvSlot[q]
		if len(slots) == 0 {
			continue
		}
		buf := make([]float64, len(slots))
		for i, slot := range slots {
			buf[i] = v.Data[nLocal+int(slot)]
		}
		if err := rt.c.Send(q, tagScatter, comm.F64sToBytes(buf)); err != nil {
			return err
		}
	}
	for q := 0; q < s.NProcs; q++ {
		idx := s.SendIdx[q]
		if len(idx) == 0 {
			continue
		}
		data, err := rt.c.Recv(q, tagScatter)
		if err != nil {
			return err
		}
		vals, err := comm.BytesToF64s(data)
		if err != nil {
			return err
		}
		if len(vals) != len(idx) {
			return fmt.Errorf("peer %d scattered %d values, schedule expects %d", q, len(vals), len(idx))
		}
		for i, li := range idx {
			v.Data[li] += vals[i]
		}
	}
	return nil
}

func refExchangeAll(rt *Runtime, vecs ...*Vector) error {
	s := rt.sch
	nLocal := rt.LocalN()
	for q := 0; q < s.NProcs; q++ {
		idx := s.SendIdx[q]
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, 0, len(idx)*len(vecs))
		for _, v := range vecs {
			for _, li := range idx {
				buf = append(buf, v.Data[li])
			}
		}
		if err := rt.c.Send(q, tagExchange, comm.F64sToBytes(buf)); err != nil {
			return err
		}
	}
	for q := 0; q < s.NProcs; q++ {
		slots := s.RecvSlot[q]
		if len(slots) == 0 {
			continue
		}
		data, err := rt.c.Recv(q, tagExchange)
		if err != nil {
			return err
		}
		vals, err := comm.BytesToF64s(data)
		if err != nil {
			return err
		}
		if len(vals) != len(slots)*len(vecs) {
			return fmt.Errorf("peer %d sent %d values, coalesced schedule expects %d",
				q, len(vals), len(slots)*len(vecs))
		}
		for vi, v := range vecs {
			seg := vals[vi*len(slots) : (vi+1)*len(slots)]
			for i, slot := range slots {
				v.Data[nLocal+int(slot)] = seg[i]
			}
		}
	}
	return nil
}

// execScript drives one runtime through a fixed mix of executor
// operations (including across a Remap) and snapshots every rank's
// full vector data (owned + ghost) after each step. planPath selects
// the compiled-plan implementations or the pre-plan references.
func execScript(t *testing.T, p int, planPath bool) [][][]float64 {
	t.Helper()
	g := testMesh(t)
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)

	var mu = make(chan struct{}, 1) // snapshot append guard
	mu <- struct{}{}
	var snaps [][][]float64 // snapshot -> rank -> data
	snapshot := func(rank int, step int, vecs ...*Vector) {
		<-mu
		for len(snaps) <= step {
			snaps = append(snaps, make([][]float64, p))
		}
		var all []float64
		for _, v := range vecs {
			all = append(all, append([]float64(nil), v.Data...)...)
		}
		snaps[step][rank] = all
		mu <- struct{}{}
	}

	exchange := func(rt *Runtime, v *Vector) error {
		if planPath {
			return rt.Exchange(v)
		}
		return refExchange(rt, v)
	}
	scatterAdd := func(rt *Runtime, v *Vector) error {
		if planPath {
			return rt.ScatterAdd(v)
		}
		return refScatterAdd(rt, v)
	}
	exchangeAll := func(rt *Runtime, vecs ...*Vector) error {
		if planPath {
			return rt.ExchangeAll(vecs...)
		}
		return refExchangeAll(rt, vecs...)
	}

	weights := make([]float64, p)
	for i := range weights {
		weights[i] = 1
	}
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB, Weights: weights})
		if err != nil {
			return err
		}
		v := rt.NewVector()
		w := rt.NewVector()
		v.SetByGlobal(initValue)
		w.SetByGlobal(func(gid int64) float64 { return math.Cos(float64(gid)*0.3) - 1 })

		step := 0
		runOnce := func() error {
			if err := exchange(rt, v); err != nil {
				return err
			}
			snapshot(c.Rank(), step, v)
			step++
			// Push each element's value onto its neighbors (ghost
			// contributions included), then scatter them home: elements
			// on partition corners receive contributions from several
			// peers, which is exactly where accumulation order shows.
			xadj, adj := rt.LocalAdj()
			for u := 0; u < rt.LocalN(); u++ {
				for k := xadj[u]; k < xadj[u+1]; k++ {
					w.Data[adj[k]] += v.Data[u] * 0.25
				}
			}
			if err := scatterAdd(rt, w); err != nil {
				return err
			}
			snapshot(c.Rank(), step, w)
			step++
			if err := exchangeAll(rt, v, w); err != nil {
				return err
			}
			snapshot(c.Rank(), step, v, w)
			step++
			// Mix ghosts into owned values so the next round depends on
			// the previous exchanges.
			for u := 0; u < rt.LocalN(); u++ {
				sum := 0.0
				for k := xadj[u]; k < xadj[u+1]; k++ {
					sum += v.Data[adj[k]]
				}
				if d := xadj[u+1] - xadj[u]; d > 0 {
					v.Data[u] = sum / float64(d)
				}
			}
			return nil
		}
		for round := 0; round < 2; round++ {
			if err := runOnce(); err != nil {
				return err
			}
		}
		// The environment adapts; the schedule, plan and ghost layouts
		// are rebuilt, and the replay must still match.
		newW := make([]float64, p)
		for i := range newW {
			newW[i] = 1
		}
		newW[0] = 0.4
		if _, err := rt.Remap(newW); err != nil {
			return err
		}
		return runOnce()
	})
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

// TestPlanPathMatchesReferenceBitForBit pins the refactor's acceptance
// criterion: the compiled-plan Exchange/ScatterAdd/ExchangeAll produce
// bit-identical vectors to the pre-plan path, including after a remap.
func TestPlanPathMatchesReferenceBitForBit(t *testing.T) {
	for _, p := range []int{2, 4} {
		planned := execScript(t, p, true)
		reference := execScript(t, p, false)
		if len(planned) != len(reference) || len(planned) == 0 {
			t.Fatalf("p=%d: snapshot counts differ: %d vs %d", p, len(planned), len(reference))
		}
		for step := range planned {
			for rank := range planned[step] {
				a, b := planned[step][rank], reference[step][rank]
				if len(a) != len(b) {
					t.Fatalf("p=%d step %d rank %d: data lengths differ: %d vs %d",
						p, step, rank, len(a), len(b))
				}
				for i := range a {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
						t.Fatalf("p=%d step %d rank %d: element %d = %v (plan) vs %v (reference); must be bit-exact",
							p, step, rank, i, a[i], b[i])
					}
				}
			}
		}
	}
}

// TestPlanInvalidatedByRemap covers plan invalidation: after Remap the
// compiled plan is rebuilt for the new layout, and replaying it
// matches a freshly constructed runtime element for element.
func TestPlanInvalidatedByRemap(t *testing.T) {
	g := testMesh(t)
	const p = 3
	oldW := []float64{1, 1, 1}
	newW := []float64{0.5, 1, 2}

	// Remapped runtime: built under oldW, remapped to newW keeping the
	// arrangement, so the resulting layout equals a fresh build with
	// newW.
	collect := func(build func(c *comm.Comm) (*Runtime, *Vector, error)) [][]float64 {
		t.Helper()
		ws, err := comm.NewWorld(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer comm.CloseWorld(ws)
		out := make([][]float64, p)
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			rt, v, err := build(c)
			if err != nil {
				return err
			}
			if err := rt.Exchange(v); err != nil {
				return err
			}
			if err := rt.ScatterAdd(v); err != nil {
				return err
			}
			if err := rt.ExchangeAll(v); err != nil {
				return err
			}
			out[c.Rank()] = append([]float64(nil), v.Data...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	remapped := collect(func(c *comm.Comm) (*Runtime, *Vector, error) {
		rt, err := New(c, g, Config{Order: order.RCB, Weights: oldW, RemapPolicy: RemapKeepArrangement})
		if err != nil {
			return nil, nil, err
		}
		v := rt.NewVector()
		before := rt.Plan()
		if _, err := rt.Remap(newW); err != nil {
			return nil, nil, err
		}
		if rt.Plan() == before {
			return nil, nil, fmt.Errorf("rank %d: plan not rebuilt by Remap", c.Rank())
		}
		if got, want := rt.Plan().NLocal(), rt.LocalN(); got != want {
			return nil, nil, fmt.Errorf("rank %d: rebuilt plan NLocal %d, layout %d", c.Rank(), got, want)
		}
		v.SetByGlobal(initValue)
		return rt, v, nil
	})
	fresh := collect(func(c *comm.Comm) (*Runtime, *Vector, error) {
		rt, err := New(c, g, Config{Order: order.RCB, Weights: newW})
		if err != nil {
			return nil, nil, err
		}
		v := rt.NewVector()
		v.SetByGlobal(initValue)
		return rt, v, nil
	})

	for rank := range remapped {
		if len(remapped[rank]) != len(fresh[rank]) {
			t.Fatalf("rank %d: data lengths differ: %d vs %d", rank, len(remapped[rank]), len(fresh[rank]))
		}
		for i := range remapped[rank] {
			if math.Float64bits(remapped[rank][i]) != math.Float64bits(fresh[rank][i]) {
				t.Fatalf("rank %d: element %d = %v (remapped) vs %v (fresh)",
					rank, i, remapped[rank][i], fresh[rank][i])
			}
		}
	}
}

// TestScatterAddAll checks the coalesced transpose: contributions from
// several vectors travel home in one message per peer and land exactly
// as repeated ScatterAdd calls would.
func TestScatterAddAll(t *testing.T) {
	g := testMesh(t)
	const p = 3
	run := func(coalesced bool) [][]float64 {
		t.Helper()
		ws, err := comm.NewWorld(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer comm.CloseWorld(ws)
		out := make([][]float64, p)
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			rt, err := New(c, g, Config{Order: order.RCB})
			if err != nil {
				return err
			}
			a, b := rt.NewVector(), rt.NewVector()
			xadj, adj := rt.LocalAdj()
			for u := 0; u < rt.LocalN(); u++ {
				for k := xadj[u]; k < xadj[u+1]; k++ {
					a.Data[adj[k]]++
					b.Data[adj[k]] += 0.5
				}
			}
			if coalesced {
				if err := rt.ScatterAddAll(a, b); err != nil {
					return err
				}
			} else {
				if err := rt.ScatterAdd(a); err != nil {
					return err
				}
				if err := rt.ScatterAdd(b); err != nil {
					return err
				}
			}
			out[c.Rank()] = append(append([]float64(nil), a.Local()...), b.Local()...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	coalesced := run(true)
	separate := run(false)
	for rank := range coalesced {
		for i := range coalesced[rank] {
			if math.Float64bits(coalesced[rank][i]) != math.Float64bits(separate[rank][i]) {
				t.Fatalf("rank %d element %d: coalesced %v vs separate %v",
					rank, i, coalesced[rank][i], separate[rank][i])
			}
		}
	}
	// And the counts themselves are right: every element accumulated
	// its degree (a) and half its degree (b).
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	rt, err := New(ws[0], g, Config{Order: order.RCB})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 owns the first contiguous interval of the transformed
	// graph, so its local indices line up with the solo runtime's.
	xadj, _ := rt.LocalAdj()
	for u := 0; u < len(coalesced[0])/2; u++ {
		deg := float64(xadj[u+1] - xadj[u])
		if coalesced[0][u] != deg {
			t.Fatalf("element %d = %v, want degree %v", u, coalesced[0][u], deg)
		}
	}
}
