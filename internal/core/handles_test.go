package core

import (
	"math"
	"math/rand"
	"testing"

	"stance/internal/comm"
	"stance/internal/order"
	"stance/internal/partition"
)

// The multi-handle property test: random scripts of concurrent
// handle-based executor operations — random vector subsets, random
// Exchange/ScatterAdd kinds, coalesced multi-vector ops, random Wait
// interleavings, a mid-script Remap and a cross-world shrink/grow
// Rebind — must be bit-exact against the synchronous reference
// executing the same ops in start order. Ops in one round touch
// disjoint vector sets, so the dependency tracker admits them all and
// any drain order is semantically equivalent; the test pins that the
// implementation actually delivers that equivalence down to the bit
// pattern.

const nScriptVecs = 4

// scriptOp is one operation of a round: a disjoint set of vectors (a
// single op coalesces them) replayed as Exchange or ScatterAdd.
type scriptOp struct {
	vecs    []int
	scatter bool
}

type scriptRound struct {
	ops []scriptOp
	// wait is the async drain order, a permutation of ops indices.
	wait []int
}

type handleScript struct {
	rounds []scriptRound
	remapW []float64
}

// genHandleScript derives the whole script from the seed before any
// rank runs, so both execution modes (and every rank) follow the same
// program in the same SPMD order.
func genHandleScript(seed int64, p, rounds int) handleScript {
	rng := rand.New(rand.NewSource(seed))
	sc := handleScript{rounds: make([]scriptRound, rounds)}
	for r := range sc.rounds {
		// Partition a random prefix of a vector permutation into ops of
		// one or two vectors each.
		perm := rng.Perm(nScriptVecs)
		take := 1 + rng.Intn(nScriptVecs)
		var ops []scriptOp
		for i := 0; i < take; {
			w := 1 + rng.Intn(2)
			if i+w > take {
				w = take - i
			}
			ops = append(ops, scriptOp{
				vecs:    perm[i : i+w],
				scatter: rng.Intn(2) == 1,
			})
			i += w
		}
		sc.rounds[r] = scriptRound{ops: ops, wait: rng.Perm(len(ops))}
	}
	sc.remapW = make([]float64, p)
	for i := range sc.remapW {
		sc.remapW[i] = 0.5 + rng.Float64()
	}
	return sc
}

// runHandleScript executes the script on a p-rank world, either with
// op handles drained in the script's wait order (async) or with the
// synchronous executor in start order, snapshotting every rank's full
// vector data after each round.
func runHandleScript(t *testing.T, p int, sc handleScript, async bool) [][][]float64 {
	t.Helper()
	g := testMesh(t)
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)

	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	snaps := make([][][]float64, len(sc.rounds))
	for i := range snaps {
		snaps[i] = make([][]float64, p)
	}
	snapshot := func(rank, step int, vecs []*Vector) {
		<-mu
		var all []float64
		for _, v := range vecs {
			all = append(all, append([]float64(nil), v.Data...)...)
		}
		snaps[step][rank] = all
		mu <- struct{}{}
	}

	full := make([]int, p)
	for i := range full {
		full[i] = i
	}
	survivors := full[:p-1] // the last rank retires mid-script
	wFull := make([]float64, p)
	for i := range wFull {
		wFull[i] = 1
	}
	wShrunk := wFull[:p-1]

	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		vecs := make([]*Vector, nScriptVecs)
		for i := range vecs {
			off := float64(i) * 0.375
			vecs[i] = rt.NewVector()
			vecs[i].SetByGlobal(func(gid int64) float64 { return initValue(gid) + off })
		}
		opVecs := func(op scriptOp) []*Vector {
			vs := make([]*Vector, len(op.vecs))
			for i, vi := range op.vecs {
				vs[i] = vecs[vi]
			}
			return vs
		}

		// mix deterministically folds ghost values into owned elements
		// and refreshes the ghost section, so every round depends on the
		// previous round's exchanges and feeds fresh scatter payloads.
		mix := func() {
			nLocal := rt.LocalN()
			xadj, adj := rt.LocalAdj()
			for vi, v := range vecs {
				scale := 0.0625 * float64(vi+1)
				for u := 0; u < nLocal; u++ {
					sum := 0.0
					for k := xadj[u]; k < xadj[u+1]; k++ {
						sum += v.Data[adj[k]]
					}
					v.Data[u] = v.Data[u]*0.5 + sum*scale
				}
				for j := nLocal; j < len(v.Data); j++ {
					v.Data[j] = v.Data[j]*0.25 + float64(vi+1)
				}
			}
		}

		runRound := func(step int) error {
			rd := sc.rounds[step]
			if async {
				hs := make([]*OpHandle, len(rd.ops))
				for i, op := range rd.ops {
					var err error
					if op.scatter {
						hs[i], err = rt.ScatterAddAllStart(opVecs(op)...)
					} else {
						hs[i], err = rt.ExchangeAllStart(opVecs(op)...)
					}
					if err != nil {
						return err
					}
				}
				for _, i := range rd.wait {
					if err := hs[i].Wait(); err != nil {
						return err
					}
				}
			} else {
				for _, op := range rd.ops {
					var err error
					if op.scatter {
						err = rt.ScatterAddAll(opVecs(op)...)
					} else {
						err = rt.ExchangeAll(opVecs(op)...)
					}
					if err != nil {
						return err
					}
				}
			}
			mix()
			snapshot(c.Rank(), step, vecs)
			return nil
		}

		rebindTo := func(oldL *partition.Layout, oldActive []int, newL *partition.Layout, newActive []int) error {
			var sub *comm.Comm
			for _, r := range newActive {
				if r == c.Rank() {
					if sub, err = c.Sub(newActive); err != nil {
						return err
					}
					break
				}
			}
			_, err := rt.Rebind(Rebind{
				Carrier: c, Sub: sub,
				Old: oldL, New: newL,
				OldProcs: oldActive, NewProcs: newActive,
			})
			return err
		}

		for r := 0; r < 3; r++ {
			if err := runRound(r); err != nil {
				return err
			}
		}
		if _, err := rt.Remap(sc.remapW); err != nil {
			return err
		}
		for r := 3; r < 6; r++ {
			if err := runRound(r); err != nil {
				return err
			}
		}
		// Shrink onto the survivors; the last rank parks and sits out
		// two rounds, then the world grows back and it rejoins.
		fullLayout := rt.Layout()
		shrunkLayout, err := rt.CutLayout(wShrunk)
		if err != nil {
			return err
		}
		if err := rebindTo(fullLayout, full, shrunkLayout, survivors); err != nil {
			return err
		}
		for r := 6; r < 8; r++ {
			if rt.Parked() {
				continue
			}
			if err := runRound(r); err != nil {
				return err
			}
		}
		if fullLayout, err = rt.CutLayout(wFull); err != nil {
			return err
		}
		if err := rebindTo(shrunkLayout, survivors, fullLayout, full); err != nil {
			return err
		}
		return runRound(len(sc.rounds) - 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

// TestHandleScriptsMatchSyncBitForBit drives random multi-handle op
// scripts through both executors and requires bit-identical snapshots
// at every round on every rank.
func TestHandleScriptsMatchSyncBitForBit(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, p := range []int{2, 4} {
			sc := genHandleScript(seed, p, 9)
			asyncRun := runHandleScript(t, p, sc, true)
			syncRun := runHandleScript(t, p, sc, false)
			for step := range asyncRun {
				for rank := range asyncRun[step] {
					a, b := asyncRun[step][rank], syncRun[step][rank]
					if len(a) != len(b) {
						t.Fatalf("seed %d p=%d step %d rank %d: data lengths differ: %d vs %d",
							seed, p, step, rank, len(a), len(b))
					}
					for i := range a {
						if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
							t.Fatalf("seed %d p=%d step %d rank %d: element %d = %v (handles) vs %v (sync); must be bit-exact",
								seed, p, step, rank, i, a[i], b[i])
						}
					}
				}
			}
		}
	}
}
