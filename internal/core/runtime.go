// Package core is the STANCE runtime proper: it ties the locality
// transform (Phase A), inspector (Phase B), executor (Phase C) and
// redistribution machinery together behind the interface a
// data-parallel application programs against. Each SPMD rank holds a
// Runtime; collective operations (New, Exchange, Remap) must be called
// by every rank.
package core

import (
	"fmt"
	"time"

	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/order"
	"stance/internal/partition"
	"stance/internal/redist"
	"stance/internal/sched"
	"stance/internal/vtime"
)

// Message tags used by the runtime (distinct from the inspector's).
const (
	tagOrder    = 0x201
	tagExchange = 0x202
	tagScatter  = 0x203
	tagRedist   = 0x204
	tagGatherV  = 0x205
)

// Strategy selects the inspector's schedule builder (paper Table 3).
type Strategy int

const (
	// StrategySort2 builds schedules locally, generating send lists
	// pre-sorted (the fastest builder; the default).
	StrategySort2 Strategy = iota
	// StrategySort1 builds schedules locally and sorts send lists
	// afterwards.
	StrategySort1
	// StrategySimple dereferences through a distributed translation
	// table with two message rounds (the baseline).
	StrategySimple
)

// RemapPolicy selects how Remap chooses the new layout's arrangement
// (paper Section 3.4).
type RemapPolicy int

const (
	// RemapMCRIterated runs MCR sweeps with swap refinement to
	// convergence (the default; still O(p^3) per sweep).
	RemapMCRIterated RemapPolicy = iota
	// RemapMCR runs the paper's single greedy MCR sweep.
	RemapMCR
	// RemapKeepArrangement re-cuts the list under the current
	// arrangement without searching (the paper's "without MCR"
	// baseline in Table 2).
	RemapKeepArrangement
)

// Config parameterizes Runtime construction.
type Config struct {
	// Order is the locality transformation (nil means identity; the
	// experiments use order.RCB or order.Spectral). It must be
	// deterministic: every rank computes it independently unless
	// RootComputesOrder is set.
	Order order.Func
	// Weights are the initial relative processor capabilities (nil
	// means uniform). Length must equal the world size.
	Weights []float64
	// VertexWeights are per-vertex computational weights in the
	// original vertex numbering (nil means unit weights). With weights
	// set, intervals balance total vertex weight instead of vertex
	// counts — the paper's "nodes with computational weight
	// proportional to the computational capabilities" model. A common
	// choice is the vertex degree, which tracks the Figure 8 kernel's
	// per-element cost.
	VertexWeights []float64
	// Strategy selects the inspector variant.
	Strategy Strategy
	// RemapPolicy selects the arrangement search used by Remap.
	RemapPolicy RemapPolicy
	// RemapCost scores candidate arrangements (nil means maximize
	// overlap).
	RemapCost redist.CostFunc
	// RootComputesOrder makes rank 0 compute the transformation and
	// broadcast it, instead of every rank computing it independently.
	RootComputesOrder bool
	// Groups assigns each rank of the full world to a node group
	// (comm.Topology.GroupOfSlice; nil means a flat environment). With
	// groups set, CutLayout cuts hierarchically: across groups first —
	// sliding each group boundary to where the transformed graph is
	// thinnest, since those boundaries become ghost traffic on the slow
	// inter-group link — then within groups by member capability. The
	// hierarchical cut applies only when the weights cover the full
	// world: an elastic subset has no stable rank -> group mapping, so
	// it falls back to the flat cut.
	Groups []int
	// GroupWindow bounds how far a group boundary may slide from its
	// balanced position, in list elements (0 means n/(8·G)).
	GroupWindow int64
}

// Runtime is one rank's view of a distributed computational graph.
type Runtime struct {
	c *comm.Comm
	// clock is the world's time source (the transport's clock); every
	// runtime measurement — inspector builds, remap costs, split-phase
	// idle — comes off it, so a world on a simulated clock measures
	// deterministic virtual durations.
	clock  vtime.Clock
	cfg    Config
	n      int64
	tg     *graph.Graph // transformed graph (immutable, shared read-only)
	perm   []int32      // original vertex -> transformed index
	layout *partition.Layout
	sch    *sched.Schedule
	// itemWeights are the vertex weights in transformed order, or nil
	// for unit weights.
	itemWeights []float64

	// plan is the compiled replay form of sch: per-peer pack/unpack
	// index tables plus persistent wire buffers. rebuild discards and
	// recompiles it whenever the schedule changes.
	plan *sched.Plan

	// Localized CSR: references < LocalN() are local indices,
	// references >= LocalN() are LocalN()+ghost slot.
	lxadj []int32
	ladj  []int32

	vecs []*Vector
	// vecScratch is the reused [][]float64 view handed to the plan's
	// pack/unpack calls, so Exchange/ScatterAdd stay allocation-free.
	vecScratch [][]float64
	// wireScratch is a reused receive buffer for non-replay transfers
	// (redistribution).
	wireScratch []byte

	// live are the handle-based operations currently between Start and
	// Wait, in start order; each owns its arrival mask, parked payloads
	// and wire tag. opPool recycles completed handles and opSeq drives
	// the rotating tag window (reset on every rebuild — see
	// splitphase.go). vsetScratch is the reused single-vector view the
	// one-vector Starts hand to beginOp.
	live        []*OpHandle
	opPool      []*OpHandle
	opSeq       int
	vsetScratch []*Vector

	// Executor traffic counters (see ExecStats).
	execOps, execMsgs, execBytes int64
	// Split-phase counters: execOverlap counts Start/Wait operation
	// pairs, execPipelined counts the Starts issued while another
	// handle was already live, execIdle accumulates the time Wait spent
	// blocked waiting for arrivals — the latency the overlapped compute
	// failed to hide.
	execOverlap   int64
	execPipelined int64
	execIdle      time.Duration

	lastInspector time.Duration
}

// ExecStats counts the executor data path's traffic: schedule-replay
// operations (Exchange/ScatterAdd and their coalesced variants), the
// messages they sent and the payload bytes those messages carried.
// Unlike comm's transport counters it excludes collectives, inspector
// and remap traffic, so it is exactly the per-iteration replay cost
// the paper's Phase C measures.
// The JSON field names are stable API (the stanced job service serves
// reports over HTTP); durations marshal as integer nanoseconds.
type ExecStats struct {
	Ops   int64 `json:"ops"`
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
	// Overlapped counts the replay operations that ran split-phase
	// (one per Start/Wait pair); they are included in Ops.
	Overlapped int64 `json:"overlapped"`
	// Pipelined counts the split-phase operations started while
	// another handle was already in flight — the ops the single-slot
	// executor would have serialized; they are included in Overlapped.
	Pipelined int64 `json:"pipelined"`
	// Idle is the total time Wait calls spent blocked waiting for
	// arrivals — the communication latency the overlapped interior
	// compute did not hide. Zero idle means the split-phase pipeline
	// hid the exchange entirely.
	Idle time.Duration `json:"idle_ns"`
}

// Add accumulates o into s.
func (s *ExecStats) Add(o ExecStats) {
	s.Ops += o.Ops
	s.Msgs += o.Msgs
	s.Bytes += o.Bytes
	s.Overlapped += o.Overlapped
	s.Pipelined += o.Pipelined
	s.Idle += o.Idle
}

// Sub returns s - o, for windowed deltas.
func (s ExecStats) Sub(o ExecStats) ExecStats {
	return ExecStats{
		Ops: s.Ops - o.Ops, Msgs: s.Msgs - o.Msgs, Bytes: s.Bytes - o.Bytes,
		Overlapped: s.Overlapped - o.Overlapped, Pipelined: s.Pipelined - o.Pipelined,
		Idle: s.Idle - o.Idle,
	}
}

// New builds the runtime collectively: transforms the graph into the
// one-dimensional representation, partitions it by the configured
// weights, extracts this rank's local subgraph and builds the
// communication schedule. Every rank must call New with the same graph
// and configuration.
func New(c *comm.Comm, g *graph.Graph, cfg Config) (*Runtime, error) {
	if cfg.Weights == nil && c != nil {
		cfg.Weights = make([]float64, c.Size())
		for i := range cfg.Weights {
			cfg.Weights[i] = 1
		}
	}
	rt, err := NewParked(c, g, cfg)
	if err != nil {
		return nil, err
	}
	if len(cfg.Weights) != c.Size() {
		return nil, fmt.Errorf("core: %d weights for %d ranks", len(cfg.Weights), c.Size())
	}
	layout, err := rt.CutLayout(cfg.Weights)
	if err != nil {
		return nil, err
	}
	if err := rt.Bind(c, layout); err != nil {
		return nil, err
	}
	return rt, nil
}

// NewParked builds a dormant runtime: the Phase A locality transform
// runs (over c when RootComputesOrder is set, so every rank of an
// elastic world learns the ordering while it is still fully
// assembled), but the rank owns no data and holds no schedule until
// Bind or Rebind admits it into an active sub-world. Vectors may be
// created on a parked runtime; they are empty until admission.
func NewParked(c *comm.Comm, g *graph.Graph, cfg Config) (*Runtime, error) {
	if c == nil || g == nil {
		return nil, fmt.Errorf("core: nil communicator or graph")
	}
	if cfg.Order == nil {
		cfg.Order = order.Identity
	}
	rt := &Runtime{c: c, clock: c.Clock(), cfg: cfg, n: int64(g.N)}

	var perm []int32
	var err error
	if cfg.RootComputesOrder {
		var payload []byte
		if c.Rank() == 0 {
			perm, err = cfg.Order(g)
			if err != nil {
				return nil, fmt.Errorf("core: ordering: %w", err)
			}
			payload = comm.I32sToBytes(perm)
		}
		payload, err = c.Bcast(0, tagOrder, payload)
		if err != nil {
			return nil, err
		}
		perm, err = comm.BytesToI32s(payload)
		if err != nil {
			return nil, err
		}
	} else {
		perm, err = cfg.Order(g)
		if err != nil {
			return nil, fmt.Errorf("core: ordering: %w", err)
		}
	}
	if err := order.Validate(perm, g.N); err != nil {
		return nil, fmt.Errorf("core: ordering: %w", err)
	}
	rt.perm = perm
	rt.tg, err = g.Permute(perm)
	if err != nil {
		return nil, err
	}
	if cfg.VertexWeights != nil {
		if len(cfg.VertexWeights) != g.N {
			return nil, fmt.Errorf("core: %d vertex weights for %d vertices", len(cfg.VertexWeights), g.N)
		}
		rt.itemWeights = make([]float64, g.N)
		for orig, nw := range perm {
			rt.itemWeights[nw] = cfg.VertexWeights[orig]
		}
	}
	return rt, nil
}

// CutLayout cuts the transformed list into len(weights) contiguous
// intervals in proportion to the weights — by total vertex weight when
// the runtime carries vertex weights — under the identity arrangement.
// The number of intervals is independent of the runtime's current
// world size, which is what membership transitions need: the
// coordinator cuts the list for the incoming active set before the
// sub-world exists.
func (rt *Runtime) CutLayout(weights []float64) (*partition.Layout, error) {
	if spec, ok := rt.hierSpec(len(weights)); ok {
		if rt.itemWeights != nil {
			return partition.NewHierarchicalWeighted(rt.itemWeights, weights, spec)
		}
		return partition.NewHierarchical(rt.n, weights, spec)
	}
	if rt.itemWeights != nil {
		return partition.NewWeighted(rt.itemWeights, weights, identityArrangement(len(weights)))
	}
	return partition.NewBlock(rt.n, weights)
}

// hierSpec returns the hierarchical partitioning spec when the
// configuration carries groups covering exactly p processors — the
// full world. Elastic subsets cut flat (see Config.Groups).
func (rt *Runtime) hierSpec(p int) (partition.HierSpec, bool) {
	if rt.cfg.Groups == nil || len(rt.cfg.Groups) != p {
		return partition.HierSpec{}, false
	}
	return partition.HierSpec{
		GroupOf: rt.cfg.Groups,
		Xadj:    rt.tg.Xadj,
		Adj:     rt.tg.Adj,
		Window:  rt.cfg.GroupWindow,
	}, true
}

// Bind attaches a prepared (parked) runtime to a communicator and
// layout and runs the inspector — the activation half of New, called
// directly by the elastic layer when the initial active set is a
// sub-world. The layout must have c.Size() processors and this rank's
// interval must match the vectors' current contents (for a freshly
// parked runtime: any layout, since no vectors hold data yet).
func (rt *Runtime) Bind(c *comm.Comm, layout *partition.Layout) error {
	if c == nil || layout == nil {
		return fmt.Errorf("core: nil communicator or layout")
	}
	if layout.P() != c.Size() {
		return fmt.Errorf("core: layout has %d processors for %d ranks", layout.P(), c.Size())
	}
	if layout.N() != rt.n {
		return fmt.Errorf("core: layout covers %d elements, want %d", layout.N(), rt.n)
	}
	if n := len(rt.live); n > 0 {
		return fmt.Errorf("core: bind while %d split-phase op(s) are in flight; Wait on their handles first", n)
	}
	rt.c = c
	rt.layout = layout
	if err := rt.rebuild(); err != nil {
		return err
	}
	for _, v := range rt.vecs {
		local := v.Data
		if int64(len(local)) > layout.Interval(c.Rank()).Len() {
			local = local[:layout.Interval(c.Rank()).Len()]
		}
		data := make([]float64, int(layout.Interval(c.Rank()).Len())+rt.sch.NGhosts())
		copy(data, local)
		v.Data = data
	}
	return nil
}

// rebuild runs the inspector for the current layout: builds the
// schedule and the localized CSR. Collective when StrategySimple.
func (rt *Runtime) rebuild() error {
	refs := rt.refs()
	start := rt.clock.Now()
	var s *sched.Schedule
	var err error
	switch rt.cfg.Strategy {
	case StrategySort1:
		s, err = sched.BuildSort1(rt.layout, rt.c.Rank(), refs)
	case StrategySimple:
		s, err = sched.BuildSimple(rt.c, rt.layout, refs)
	default:
		s, err = sched.BuildSort2(rt.layout, rt.c.Rank(), refs)
	}
	if err != nil {
		return err
	}
	rt.lastInspector = rt.clock.Now().Sub(start)
	rt.sch = s
	rt.plan = sched.Compile(s)
	// The rotating op-tag counter restarts with the schedule: every
	// rebuild site (Bind, Remap, Rebind) requires zero live handles,
	// and resetting here keeps a freshly admitted rank's tag sequence
	// aligned with the survivors'.
	rt.opSeq = 0
	if err := rt.localize(refs); err != nil {
		return err
	}
	// The interior/boundary split rides on the plan, so it is rebuilt
	// here too and stays valid across remaps and rebinds.
	return rt.plan.Classify(rt.lxadj, rt.ladj)
}

// refs extracts this rank's access pattern from the transformed graph.
func (rt *Runtime) refs() sched.Refs {
	iv := rt.layout.Interval(rt.c.Rank())
	nLocal := int(iv.Len())
	r := sched.Refs{Xadj: make([]int32, 1, nLocal+1)}
	for g := iv.Lo; g < iv.Hi; g++ {
		for _, w := range rt.tg.Neighbors(int(g)) {
			r.Adj = append(r.Adj, int64(w))
		}
		r.Xadj = append(r.Xadj, int32(len(r.Adj)))
	}
	return r
}

// localize rewrites the access pattern into local/ghost references,
// preserving neighbor order so floating-point sums match a sequential
// execution of the transformed graph exactly.
func (rt *Runtime) localize(refs sched.Refs) error {
	iv := rt.layout.Interval(rt.c.Rank())
	nLocal := int(iv.Len())
	rt.lxadj = refs.Xadj
	rt.ladj = make([]int32, len(refs.Adj))
	for i, g := range refs.Adj {
		if iv.Contains(g) {
			rt.ladj[i] = int32(g - iv.Lo)
			continue
		}
		slot := rt.sch.GhostSlot(g)
		if slot < 0 {
			return fmt.Errorf("core: reference %d missing from ghost list", g)
		}
		rt.ladj[i] = int32(nLocal + slot)
	}
	return nil
}

// Comm returns the rank's communicator.
func (rt *Runtime) Comm() *comm.Comm { return rt.c }

// Clock returns the world's time source. The solver, balancer and
// elastic layers all measure through it.
func (rt *Runtime) Clock() vtime.Clock { return rt.clock }

// Layout returns the current data layout.
func (rt *Runtime) Layout() *partition.Layout { return rt.layout }

// Schedule returns the current communication schedule.
func (rt *Runtime) Schedule() *sched.Schedule { return rt.sch }

// Plan returns the compiled exchange plan the executor replays; it is
// discarded and recompiled whenever the schedule is rebuilt (Remap,
// SetGraph).
func (rt *Runtime) Plan() *sched.Plan { return rt.plan }

// ExecStats returns the executor traffic counters accumulated since
// the runtime was built.
func (rt *Runtime) ExecStats() ExecStats {
	return ExecStats{
		Ops: rt.execOps, Msgs: rt.execMsgs, Bytes: rt.execBytes,
		Overlapped: rt.execOverlap, Pipelined: rt.execPipelined, Idle: rt.execIdle,
	}
}

// Perm returns the locality transformation (original vertex ->
// transformed index). The returned slice must not be modified.
func (rt *Runtime) Perm() []int32 { return rt.perm }

// Parked reports whether the runtime is dormant: outside the active
// set, owning no data and holding no schedule. Executor and collective
// operations are invalid on a parked runtime; Rebind re-activates it.
func (rt *Runtime) Parked() bool { return rt.layout == nil }

// NumVectors returns the number of vectors registered with the
// runtime.
func (rt *Runtime) NumVectors() int { return len(rt.vecs) }

// LocalN returns the number of locally owned elements (zero while
// parked).
func (rt *Runtime) LocalN() int {
	if rt.sch == nil {
		return 0
	}
	return rt.sch.NLocal
}

// nGhosts returns the ghost-section size (zero while parked).
func (rt *Runtime) nGhosts() int {
	if rt.sch == nil {
		return 0
	}
	return rt.sch.NGhosts()
}

// GlobalInterval returns the contiguous range of transformed indices
// this rank owns (empty while parked).
func (rt *Runtime) GlobalInterval() partition.Interval {
	if rt.layout == nil {
		return partition.Interval{}
	}
	return rt.layout.Interval(rt.c.Rank())
}

// LocalAdj returns the localized CSR: for local element u, its
// references are adj[xadj[u]:xadj[u+1]], where values < LocalN() index
// the vector's local section and values >= LocalN() index the ghost
// section. The slices must not be modified.
func (rt *Runtime) LocalAdj() (xadj, adj []int32) { return rt.lxadj, rt.ladj }

// LastInspectorTime reports how long the most recent schedule build
// took — the Phase B cost the load balancer weighs remapping against.
func (rt *Runtime) LastInspectorTime() time.Duration { return rt.lastInspector }

// identityArrangement returns the arrangement [0, 1, ..., p-1].
func identityArrangement(p int) []int {
	arr := make([]int, p)
	for i := range arr {
		arr[i] = i
	}
	return arr
}
