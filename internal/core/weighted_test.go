package core

import (
	"fmt"
	"math"
	"testing"

	"stance/internal/comm"
	"stance/internal/mesh"
	"stance/internal/order"
	"stance/internal/partition"
	"stance/internal/redist"
)

func TestWeightedRuntimeBalancesVertexWeight(t *testing.T) {
	// A random geometric mesh has wildly varying degrees; with
	// degree-proportional vertex weights, each rank's block must carry
	// nearly equal total degree even though the vertex counts differ.
	g, err := mesh.RandomGeometric(600, 0.08, 21)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.N)
	total := 0.0
	maxW := 0.0
	for v := 0; v < g.N; v++ {
		weights[v] = float64(g.Degree(v)) + 1
		total += weights[v]
		if weights[v] > maxW {
			maxW = weights[v]
		}
	}
	const p = 4
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB, VertexWeights: weights})
		if err != nil {
			return err
		}
		// This rank's block weight must be within one max-weight item
		// of the fair share.
		iv := rt.GlobalInterval()
		blockW := 0.0
		perm := rt.Perm()
		inv := make([]int32, g.N)
		for orig, nw := range perm {
			inv[nw] = int32(orig)
		}
		for gid := iv.Lo; gid < iv.Hi; gid++ {
			blockW += weights[inv[gid]]
		}
		fair := total / p
		if math.Abs(blockW-fair) > maxW+1e-9 {
			return fmt.Errorf("rank %d block weight %.1f, fair share %.1f (max item %.1f)",
				c.Rank(), blockW, fair, maxW)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedRuntimeMatchesSequential(t *testing.T) {
	g, err := mesh.GridTriangulated(10, 12, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		weights[v] = float64(g.Degree(v))
	}
	const iters = 5
	want := seqReference(t, g, order.RCB, iters)
	got := runParallel(t, g, 3, iters, Config{Order: order.RCB, VertexWeights: weights})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("weighted runtime diverged at %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestWeightedRemapPreservesComputation(t *testing.T) {
	g, err := mesh.GridTriangulated(10, 12, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		weights[v] = float64(g.Degree(v))
	}
	const before, after = 3, 3
	want := seqReference(t, g, order.RCB, before+after)
	for _, policy := range []RemapPolicy{RemapMCRIterated, RemapMCR, RemapKeepArrangement} {
		ws, err := comm.NewWorld(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			rt, err := New(c, g, Config{Order: order.RCB, VertexWeights: weights, RemapPolicy: policy})
			if err != nil {
				return err
			}
			v := rt.NewVector()
			v.SetByGlobal(initValue)
			if err := parKernel(rt, v, before); err != nil {
				return err
			}
			if _, err := rt.Remap([]float64{2, 1, 1}); err != nil {
				return err
			}
			if err := parKernel(rt, v, after); err != nil {
				return err
			}
			full, err := rt.GatherGlobal(0, v)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				got = full
			}
			return nil
		})
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		comm.CloseWorld(ws)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("policy %d: diverged at %d after weighted remap", policy, i)
			}
		}
	}
}

func TestVertexWeightsValidation(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	if _, err := New(ws[0], g, Config{VertexWeights: []float64{1, 2}}); err == nil {
		t.Error("short vertex weights accepted")
	}
}

func TestWeightedMCRKeepsOverlapAdvantage(t *testing.T) {
	// Weighted MCR must still beat keep-arrangement on moved volume.
	items := make([]float64, 400)
	for i := range items {
		items[i] = 1 + float64(i%7)
	}
	old, err := partition.NewWeighted(items, []float64{0.27, 0.18, 0.34, 0.07, 0.14}, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	newW := []float64{0.10, 0.13, 0.29, 0.24, 0.24}
	mcr, err := redist.IteratedWeighted(old, items, newW, redist.OverlapCost, 0)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := partition.NewWeighted(items, newW, old.Arrangement())
	if err != nil {
		t.Fatal(err)
	}
	ovMCR, err := partition.Overlap(old, mcr)
	if err != nil {
		t.Fatal(err)
	}
	ovKeep, err := partition.Overlap(old, keep)
	if err != nil {
		t.Fatal(err)
	}
	if ovMCR < ovKeep {
		t.Errorf("weighted MCR overlap %d worse than keep-arrangement %d", ovMCR, ovKeep)
	}
}
