package core

import (
	"fmt"
	"testing"

	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/mesh"
	"stance/internal/order"
)

// refineMesh returns the grid mesh plus extra diagonal edges — a stand
// in for an application whose interaction structure adapts mid-run.
func refineMesh(t *testing.T) (*graph.Graph, *graph.Graph) {
	t.Helper()
	coarse, err := mesh.GridTriangulated(9, 9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	edges := coarse.Edges()
	id := func(x, y int) int32 { return int32(y*9 + x) }
	for y := 0; y+1 < 9; y++ {
		for x := 0; x+1 < 9; x++ {
			// Add the anti-diagonal where only the main one existed.
			u, v := id(x+1, y), id(x, y+1)
			present := false
			for _, w := range coarse.Neighbors(int(u)) {
				if w == v {
					present = true
					break
				}
			}
			if !present {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	fine, err := graph.FromEdges(coarse.N, edges, coarse.Coords)
	if err != nil {
		t.Fatal(err)
	}
	return coarse, fine
}

func TestSetGraphAdaptsTheInspector(t *testing.T) {
	coarse, fine := refineMesh(t)
	const itersBefore, itersAfter = 3, 3

	// Sequential reference: run on the coarse graph, then continue on
	// the refined one, under the same RCB order of the coarse graph.
	perm, err := order.RCB(coarse)
	if err != nil {
		t.Fatal(err)
	}
	tgCoarse, err := coarse.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	tgFine, err := fine.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, tgCoarse.N)
	for i := range want {
		want[i] = initValue(int64(i))
	}
	seqKernel(tgCoarse, want, itersBefore)
	seqKernel(tgFine, want, itersAfter)

	for _, strategy := range []Strategy{StrategySort2, StrategySimple} {
		ws, err := comm.NewWorld(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			rt, err := New(c, coarse, Config{Order: order.RCB, Strategy: strategy})
			if err != nil {
				return err
			}
			v := rt.NewVector()
			v.SetByGlobal(initValue)
			if err := parKernel(rt, v, itersBefore); err != nil {
				return err
			}
			oldGhosts := rt.Schedule().NGhosts()
			if err := rt.SetGraph(fine); err != nil {
				return err
			}
			if rt.Schedule().NGhosts() < oldGhosts {
				return fmt.Errorf("refinement should not shrink the ghost set (%d -> %d)",
					oldGhosts, rt.Schedule().NGhosts())
			}
			if len(v.Data) != rt.LocalN()+rt.Schedule().NGhosts() {
				return fmt.Errorf("vector not resized after SetGraph")
			}
			if err := parKernel(rt, v, itersAfter); err != nil {
				return err
			}
			full, err := rt.GatherGlobal(0, v)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				got = full
			}
			return nil
		})
		if err != nil {
			t.Fatalf("strategy %d: %v", strategy, err)
		}
		comm.CloseWorld(ws)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("strategy %d: diverged at %d after adaptation: %v != %v",
					strategy, i, got[i], want[i])
			}
		}
	}
}

func TestSetGraphValidation(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	rt, err := New(ws[0], g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetGraph(nil); err == nil {
		t.Error("nil graph accepted")
	}
	small, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetGraph(small); err == nil {
		t.Error("vertex-count change accepted")
	}
}

func TestExchangeAllMatchesSeparateExchanges(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		a := rt.NewVector()
		b := rt.NewVector()
		cv := rt.NewVector()
		a.SetByGlobal(func(gid int64) float64 { return float64(gid) })
		b.SetByGlobal(func(gid int64) float64 { return float64(-gid) })
		cv.SetByGlobal(func(gid int64) float64 { return float64(gid * gid) })
		// Reference: separate exchanges into copies.
		ra := rt.NewVector()
		rb := rt.NewVector()
		rc := rt.NewVector()
		copy(ra.Data, a.Data)
		copy(rb.Data, b.Data)
		copy(rc.Data, cv.Data)
		if err := rt.Exchange(ra); err != nil {
			return err
		}
		if err := rt.Exchange(rb); err != nil {
			return err
		}
		if err := rt.Exchange(rc); err != nil {
			return err
		}
		if err := rt.ExchangeAll(a, b, cv); err != nil {
			return err
		}
		for i := range a.Data {
			if a.Data[i] != ra.Data[i] || b.Data[i] != rb.Data[i] || cv.Data[i] != rc.Data[i] {
				return fmt.Errorf("coalesced exchange diverged at %d", i)
			}
		}
		// Message count: the coalesced round used one message per
		// peer, not one per vector per peer.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeAllEdgeCases(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	rt, err := New(ws[0], g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.ExchangeAll(); err != nil {
		t.Errorf("empty ExchangeAll: %v", err)
	}
	v := rt.NewVector()
	if err := rt.ExchangeAll(v); err != nil {
		t.Errorf("single-vector ExchangeAll: %v", err)
	}
	rt2, err := New(ws[0], g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	foreign := rt2.NewVector()
	if err := rt.ExchangeAll(v, foreign); err == nil {
		t.Error("foreign vector accepted")
	}
}

func TestCoalescingSavesMessages(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		a, b := rt.NewVector(), rt.NewVector()
		before, _ := c.Stats()
		if err := rt.ExchangeAll(a, b); err != nil {
			return err
		}
		afterCoalesced, _ := c.Stats()
		if err := rt.Exchange(a); err != nil {
			return err
		}
		if err := rt.Exchange(b); err != nil {
			return err
		}
		afterSeparate, _ := c.Stats()
		coalesced := afterCoalesced - before
		separate := afterSeparate - afterCoalesced
		if coalesced*2 != separate {
			return fmt.Errorf("coalesced round sent %d messages, separate rounds %d (want half)",
				coalesced, separate)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
