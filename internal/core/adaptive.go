package core

import (
	"fmt"

	"stance/internal/graph"
)

// The paper distinguishes adaptive *environments* (processor speeds
// change; handled by Remap) from adaptive *applications* whose
// "computational structure adapts after every few iterations"
// (footnote 1). For those, phase B — the inspector — re-executes
// whenever the structure changes. SetGraph is that entry point: the
// interaction structure is replaced, the layout and all vector data
// stay put, and the schedule and local subgraph are rebuilt.

// SetGraph replaces the computational graph with an adapted one (same
// vertex set, changed edges — e.g. after a refinement step changes
// which elements interact). The graph is given in the original vertex
// numbering, like New's; the runtime's locality transform is reapplied
// so existing data remains aligned. Collective when the inspector
// strategy is StrategySimple.
func (rt *Runtime) SetGraph(g *graph.Graph) error {
	if g == nil {
		return fmt.Errorf("core: nil graph")
	}
	if int64(g.N) != rt.n {
		return fmt.Errorf("core: adapted graph has %d vertices, runtime manages %d (vertex-set changes need a new runtime)",
			g.N, rt.n)
	}
	tg, err := g.Permute(rt.perm)
	if err != nil {
		return err
	}
	rt.tg = tg
	if err := rt.rebuild(); err != nil {
		return err
	}
	// Vectors keep their owned sections; ghost sections are resized
	// for the new schedule and refilled by the next Exchange.
	for _, v := range rt.vecs {
		local := v.Data[:rt.LocalN()]
		nd := make([]float64, rt.LocalN()+rt.sch.NGhosts())
		copy(nd, local)
		v.Data = nd
	}
	return nil
}
