package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"stance/internal/comm"
	"stance/internal/mesh"
	"stance/internal/order"
)

// splitScript drives one world through a fixed mix of executor
// operations with compute interleaved between the exchange halves,
// using either the split-phase ops (ExchangeStart/Finish and the
// ScatterAdd analogue) or the synchronous ones at the same program
// points. Snapshots of every rank's full vector data are taken after
// each step; the two modes must agree bit for bit, including across a
// Remap.
func splitScript(t *testing.T, p int, split bool) [][][]float64 {
	t.Helper()
	g := testMesh(t)
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)

	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	var snaps [][][]float64
	snapshot := func(rank, step int, vecs ...*Vector) {
		<-mu
		for len(snaps) <= step {
			snaps = append(snaps, make([][]float64, p))
		}
		var all []float64
		for _, v := range vecs {
			all = append(all, append([]float64(nil), v.Data...)...)
		}
		snaps[step][rank] = all
		mu <- struct{}{}
	}

	weights := make([]float64, p)
	for i := range weights {
		weights[i] = 1
	}
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB, Weights: weights})
		if err != nil {
			return err
		}
		v, w := rt.NewVector(), rt.NewVector()
		v.SetByGlobal(initValue)
		w.SetByGlobal(func(gid int64) float64 { return math.Sin(float64(gid)*0.7) + 2 })

		// interiorMix folds v's interior values into w — compute that
		// reads no ghost, legal while an Exchange is in flight.
		interiorMix := func() {
			for _, u := range rt.Plan().Interior() {
				w.Data[u] += v.Data[u] * 0.5
			}
		}
		// boundaryMix reads ghosts, so it must run after the exchange
		// completes in both modes.
		boundaryMix := func() {
			xadj, adj := rt.LocalAdj()
			for _, u := range rt.Plan().Boundary() {
				sum := 0.0
				for k := xadj[u]; k < xadj[u+1]; k++ {
					sum += v.Data[adj[k]]
				}
				w.Data[u] += sum * 0.125
			}
		}

		step := 0
		runOnce := func() error {
			// Exchange with interior compute between the halves.
			if split {
				h, err := rt.ExchangeStart(v)
				if err != nil {
					return err
				}
				interiorMix()
				if err := h.Wait(); err != nil {
					return err
				}
			} else {
				if err := rt.Exchange(v); err != nil {
					return err
				}
				interiorMix()
			}
			boundaryMix()
			snapshot(c.Rank(), step, v, w)
			step++

			// ScatterAdd: push ghost contributions home.
			xadj, adj := rt.LocalAdj()
			for u := 0; u < rt.LocalN(); u++ {
				for k := xadj[u]; k < xadj[u+1]; k++ {
					w.Data[adj[k]] += v.Data[u] * 0.25
				}
			}
			if split {
				h, err := rt.ScatterAddStart(w)
				if err != nil {
					return err
				}
				if err := h.Wait(); err != nil {
					return err
				}
			} else {
				if err := rt.ScatterAdd(w); err != nil {
					return err
				}
			}
			snapshot(c.Rank(), step, w)
			step++

			// Coalesced exchange, split vs sync.
			if split {
				h, err := rt.ExchangeAllStart(v, w)
				if err != nil {
					return err
				}
				interiorMix()
				if err := h.Wait(); err != nil {
					return err
				}
			} else {
				if err := rt.ExchangeAll(v, w); err != nil {
					return err
				}
				interiorMix()
			}
			snapshot(c.Rank(), step, v, w)
			step++

			// Mix ghosts into owned values so the next round depends on
			// the previous exchanges.
			for u := 0; u < rt.LocalN(); u++ {
				sum := 0.0
				for k := xadj[u]; k < xadj[u+1]; k++ {
					sum += v.Data[adj[k]]
				}
				if d := xadj[u+1] - xadj[u]; d > 0 {
					v.Data[u] = sum / float64(d)
				}
			}
			return nil
		}
		for round := 0; round < 2; round++ {
			if err := runOnce(); err != nil {
				return err
			}
		}
		newW := make([]float64, p)
		for i := range newW {
			newW[i] = 1
		}
		newW[p-1] = 0.3
		if _, err := rt.Remap(newW); err != nil {
			return err
		}
		return runOnce()
	})
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

// TestSplitPhaseMatchesSyncBitForBit pins the tentpole's acceptance
// criterion at the core level: the split-phase executor operations
// produce bit-identical vectors to the synchronous ones with compute
// interleaved between the halves, including across a Remap.
func TestSplitPhaseMatchesSyncBitForBit(t *testing.T) {
	for _, p := range []int{2, 4} {
		splitRun := splitScript(t, p, true)
		syncRun := splitScript(t, p, false)
		if len(splitRun) != len(syncRun) || len(splitRun) == 0 {
			t.Fatalf("p=%d: snapshot counts differ: %d vs %d", p, len(splitRun), len(syncRun))
		}
		for step := range splitRun {
			for rank := range splitRun[step] {
				a, b := splitRun[step][rank], syncRun[step][rank]
				if len(a) != len(b) {
					t.Fatalf("p=%d step %d rank %d: data lengths differ: %d vs %d",
						p, step, rank, len(a), len(b))
				}
				for i := range a {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
						t.Fatalf("p=%d step %d rank %d: element %d = %v (split) vs %v (sync); must be bit-exact",
							p, step, rank, i, a[i], b[i])
					}
				}
			}
		}
	}
}

// TestSplitPhaseGuards covers the misuse surface of the handle-based
// executor: conflicting Starts on a vector with a live op, synchronous
// and layout-changing operations that would race an in-flight handle,
// Wait on an already-completed handle, and split-phase calls on a
// parked runtime — all must fail loudly instead of corrupting state.
// Independent-vector ops, by contrast, must be allowed to coexist.
func TestSplitPhaseGuards(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		v, w := rt.NewVector(), rt.NewVector()
		v.SetByGlobal(initValue)
		w.SetByGlobal(func(gid int64) float64 { return float64(gid) * 0.5 })

		mustErr := func(what string, err error) {
			if err == nil {
				t.Errorf("rank %d: %s succeeded, want error", c.Rank(), what)
			}
		}

		h, err := rt.ExchangeStart(v)
		if err != nil {
			return err
		}
		if rt.LiveOps() != 1 {
			t.Errorf("rank %d: LiveOps=%d after one Start, want 1", c.Rank(), rt.LiveOps())
		}
		if _, err := rt.ExchangeStart(v); err == nil {
			t.Errorf("rank %d: second ExchangeStart on the same vector succeeded, want error", c.Rank())
		}
		if _, err := rt.ScatterAddStart(v); err == nil {
			t.Errorf("rank %d: ScatterAddStart on a vector with a live Exchange succeeded, want error", c.Rank())
		}
		mustErr("sync Exchange on a vector with a live op", rt.Exchange(v))
		mustErr("sync ScatterAdd on a vector with a live op", rt.ScatterAdd(v))
		mustErr("coalesced ExchangeAll overlapping a live op", rt.ExchangeAll(v, w))
		if _, err := rt.Remap([]float64{1, 2}); err == nil {
			t.Errorf("rank %d: Remap while in flight succeeded, want error", c.Rank())
		}
		// An op on an unrelated vector is independent and must be
		// admitted alongside the live one, and sync ops on unrelated
		// vectors stay legal too.
		hw, err := rt.ExchangeStart(w)
		if err != nil {
			t.Errorf("rank %d: independent ExchangeStart failed: %v", c.Rank(), err)
			return err
		}
		if rt.LiveOps() != 2 {
			t.Errorf("rank %d: LiveOps=%d with two live handles, want 2", c.Rank(), rt.LiveOps())
		}
		// Drain out of start order: handles carry their own tags, so
		// waiting on the younger one first must not steal messages.
		if err := hw.Wait(); err != nil {
			return err
		}
		mustErr("second Wait on a completed handle", hw.Wait())
		if err := h.Wait(); err != nil {
			return err
		}
		if !h.Done() || rt.LiveOps() != 0 {
			t.Errorf("rank %d: Done=%v LiveOps=%d after draining, want true/0", c.Rank(), h.Done(), rt.LiveOps())
		}
		mustErr("Wait on a nil handle", (*OpHandle)(nil).Wait())
		// The runtime must be fully usable again after a clean drain.
		if _, err := rt.Remap([]float64{1, 2}); err != nil {
			return err
		}
		return rt.Exchange(v)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Split-phase ops on a parked runtime fail like their sync
	// counterparts.
	parkedWs, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(parkedWs)
	rt, err := NewParked(parkedWs[0], g, Config{Order: order.RCB})
	if err != nil {
		t.Fatal(err)
	}
	v := rt.NewVector()
	if _, err := rt.ExchangeStart(v); err == nil || !strings.Contains(err.Error(), "parked") {
		t.Errorf("ExchangeStart on parked runtime: err=%v, want parked error", err)
	}
	if _, err := rt.ScatterAddStart(v); err == nil || !strings.Contains(err.Error(), "parked") {
		t.Errorf("ScatterAddStart on parked runtime: err=%v, want parked error", err)
	}
}

// TestOpTagWindowExhaustion pins the in-flight capacity contract: the
// rotating tag window admits up to tagOpWindow concurrent handles, and
// the next Start fails with an actionable error instead of silently
// reusing a live tag.
func TestOpTagWindowExhaustion(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	rt, err := New(ws[0], g, Config{Order: order.RCB})
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*OpHandle, 0, tagOpWindow)
	vecs := make([]*Vector, 0, tagOpWindow)
	for i := 0; i < tagOpWindow; i++ {
		v := rt.NewVector()
		v.SetByGlobal(initValue)
		h, err := rt.ExchangeStart(v)
		if err != nil {
			t.Fatalf("Start %d: %v", i, err)
		}
		handles = append(handles, h)
		vecs = append(vecs, v)
	}
	extra := rt.NewVector()
	if _, err := rt.ExchangeStart(extra); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("Start past the tag window: err=%v, want window-exhaustion error", err)
	}
	for _, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if rt.LiveOps() != 0 {
		t.Fatalf("LiveOps=%d after draining, want 0", rt.LiveOps())
	}
	// Slots recycle once their owners retire.
	h, err := rt.ExchangeStart(vecs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	_ = extra
}

// checkSplit asserts the classification invariant on one rank: the
// interior and boundary lists are ascending, disjoint, exactly cover
// [0, LocalN), and an element is boundary iff its localized adjacency
// references the ghost section.
func checkSplit(t *testing.T, rt *Runtime, label string) {
	t.Helper()
	p := rt.Plan()
	if !p.Classified() {
		t.Fatalf("%s: plan not classified", label)
	}
	nLocal := rt.LocalN()
	interior, boundary := p.Interior(), p.Boundary()
	if len(interior)+len(boundary) != nLocal {
		t.Fatalf("%s: |interior|=%d + |boundary|=%d != nLocal=%d",
			label, len(interior), len(boundary), nLocal)
	}
	seen := make([]int, nLocal)
	last := int32(-1)
	for _, u := range interior {
		if u <= last {
			t.Fatalf("%s: interior not strictly ascending at %d", label, u)
		}
		last = u
		seen[u]++
	}
	last = -1
	for _, u := range boundary {
		if u <= last {
			t.Fatalf("%s: boundary not strictly ascending at %d", label, u)
		}
		last = u
		seen[u]++
	}
	for u, n := range seen {
		if n != 1 {
			t.Fatalf("%s: local index %d appears %d times across interior+boundary, want exactly once", label, u, n)
		}
	}
	xadj, adj := rt.LocalAdj()
	for u := 0; u < nLocal; u++ {
		hasGhost := false
		for k := xadj[u]; k < xadj[u+1]; k++ {
			if int(adj[k]) >= nLocal {
				hasGhost = true
				break
			}
		}
		inBoundary := false
		for _, b := range boundary {
			if int(b) == u {
				inBoundary = true
				break
			}
		}
		if hasGhost != inBoundary {
			t.Fatalf("%s: local index %d hasGhost=%v but inBoundary=%v", label, u, hasGhost, inBoundary)
		}
	}
}

// TestClassificationPropertyRandomGraphs is the property test: for
// random geometric graphs, every rank's interior ∪ boundary is exactly
// its local index set — disjoint and complete — and stays so across
// remaps to random capability vectors.
func TestClassificationPropertyRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := mesh.RandomGeometric(300+rng.Intn(200), 0.12, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 3, 5} {
			ws, err := comm.NewWorld(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			weights := make([]float64, p)
			for i := range weights {
				weights[i] = 0.5 + rng.Float64()
			}
			remapW := make([]float64, p)
			for i := range remapW {
				remapW[i] = 0.5 + rng.Float64()
			}
			err = comm.SPMD(ws, func(c *comm.Comm) error {
				rt, err := New(c, g, Config{Order: order.Hilbert, Weights: weights})
				if err != nil {
					return err
				}
				checkSplit(t, rt, "fresh")
				if _, err := rt.Remap(remapW); err != nil {
					return err
				}
				checkSplit(t, rt, "remapped")
				return nil
			})
			comm.CloseWorld(ws)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}
