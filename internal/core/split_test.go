package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"stance/internal/comm"
	"stance/internal/mesh"
	"stance/internal/order"
)

// splitScript drives one world through a fixed mix of executor
// operations with compute interleaved between the exchange halves,
// using either the split-phase ops (ExchangeStart/Finish and the
// ScatterAdd analogue) or the synchronous ones at the same program
// points. Snapshots of every rank's full vector data are taken after
// each step; the two modes must agree bit for bit, including across a
// Remap.
func splitScript(t *testing.T, p int, split bool) [][][]float64 {
	t.Helper()
	g := testMesh(t)
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)

	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	var snaps [][][]float64
	snapshot := func(rank, step int, vecs ...*Vector) {
		<-mu
		for len(snaps) <= step {
			snaps = append(snaps, make([][]float64, p))
		}
		var all []float64
		for _, v := range vecs {
			all = append(all, append([]float64(nil), v.Data...)...)
		}
		snaps[step][rank] = all
		mu <- struct{}{}
	}

	weights := make([]float64, p)
	for i := range weights {
		weights[i] = 1
	}
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB, Weights: weights})
		if err != nil {
			return err
		}
		v, w := rt.NewVector(), rt.NewVector()
		v.SetByGlobal(initValue)
		w.SetByGlobal(func(gid int64) float64 { return math.Sin(float64(gid)*0.7) + 2 })

		// interiorMix folds v's interior values into w — compute that
		// reads no ghost, legal while an Exchange is in flight.
		interiorMix := func() {
			for _, u := range rt.Plan().Interior() {
				w.Data[u] += v.Data[u] * 0.5
			}
		}
		// boundaryMix reads ghosts, so it must run after the exchange
		// completes in both modes.
		boundaryMix := func() {
			xadj, adj := rt.LocalAdj()
			for _, u := range rt.Plan().Boundary() {
				sum := 0.0
				for k := xadj[u]; k < xadj[u+1]; k++ {
					sum += v.Data[adj[k]]
				}
				w.Data[u] += sum * 0.125
			}
		}

		step := 0
		runOnce := func() error {
			// Exchange with interior compute between the halves.
			if split {
				if err := rt.ExchangeStart(v); err != nil {
					return err
				}
				interiorMix()
				if err := rt.ExchangeFinish(); err != nil {
					return err
				}
			} else {
				if err := rt.Exchange(v); err != nil {
					return err
				}
				interiorMix()
			}
			boundaryMix()
			snapshot(c.Rank(), step, v, w)
			step++

			// ScatterAdd: push ghost contributions home.
			xadj, adj := rt.LocalAdj()
			for u := 0; u < rt.LocalN(); u++ {
				for k := xadj[u]; k < xadj[u+1]; k++ {
					w.Data[adj[k]] += v.Data[u] * 0.25
				}
			}
			if split {
				if err := rt.ScatterAddStart(w); err != nil {
					return err
				}
				if err := rt.ScatterAddFinish(); err != nil {
					return err
				}
			} else {
				if err := rt.ScatterAdd(w); err != nil {
					return err
				}
			}
			snapshot(c.Rank(), step, w)
			step++

			// Coalesced exchange, split vs sync.
			if split {
				if err := rt.ExchangeAllStart(v, w); err != nil {
					return err
				}
				interiorMix()
				if err := rt.ExchangeAllFinish(); err != nil {
					return err
				}
			} else {
				if err := rt.ExchangeAll(v, w); err != nil {
					return err
				}
				interiorMix()
			}
			snapshot(c.Rank(), step, v, w)
			step++

			// Mix ghosts into owned values so the next round depends on
			// the previous exchanges.
			for u := 0; u < rt.LocalN(); u++ {
				sum := 0.0
				for k := xadj[u]; k < xadj[u+1]; k++ {
					sum += v.Data[adj[k]]
				}
				if d := xadj[u+1] - xadj[u]; d > 0 {
					v.Data[u] = sum / float64(d)
				}
			}
			return nil
		}
		for round := 0; round < 2; round++ {
			if err := runOnce(); err != nil {
				return err
			}
		}
		newW := make([]float64, p)
		for i := range newW {
			newW[i] = 1
		}
		newW[p-1] = 0.3
		if _, err := rt.Remap(newW); err != nil {
			return err
		}
		return runOnce()
	})
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

// TestSplitPhaseMatchesSyncBitForBit pins the tentpole's acceptance
// criterion at the core level: the split-phase executor operations
// produce bit-identical vectors to the synchronous ones with compute
// interleaved between the halves, including across a Remap.
func TestSplitPhaseMatchesSyncBitForBit(t *testing.T) {
	for _, p := range []int{2, 4} {
		splitRun := splitScript(t, p, true)
		syncRun := splitScript(t, p, false)
		if len(splitRun) != len(syncRun) || len(splitRun) == 0 {
			t.Fatalf("p=%d: snapshot counts differ: %d vs %d", p, len(splitRun), len(syncRun))
		}
		for step := range splitRun {
			for rank := range splitRun[step] {
				a, b := splitRun[step][rank], syncRun[step][rank]
				if len(a) != len(b) {
					t.Fatalf("p=%d step %d rank %d: data lengths differ: %d vs %d",
						p, step, rank, len(a), len(b))
				}
				for i := range a {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
						t.Fatalf("p=%d step %d rank %d: element %d = %v (split) vs %v (sync); must be bit-exact",
							p, step, rank, i, a[i], b[i])
					}
				}
			}
		}
	}
}

// TestSplitPhaseGuards covers the misuse surface: a Finish without a
// Start, a second Start while one is in flight, synchronous and
// layout-changing operations during an open split-phase window, and
// split-phase calls on a parked runtime — all must fail loudly instead
// of corrupting the plan's scratch state.
func TestSplitPhaseGuards(t *testing.T) {
	g := testMesh(t)
	ws, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(ws)
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := New(c, g, Config{Order: order.RCB})
		if err != nil {
			return err
		}
		v := rt.NewVector()
		v.SetByGlobal(initValue)

		mustErr := func(what string, err error) error {
			if err == nil {
				t.Errorf("rank %d: %s succeeded, want error", c.Rank(), what)
			}
			return nil
		}
		mustErr("ExchangeFinish without Start", rt.ExchangeFinish())
		mustErr("ScatterAddFinish without Start", rt.ScatterAddFinish())

		if err := rt.ExchangeStart(v); err != nil {
			return err
		}
		mustErr("second ExchangeStart while in flight", rt.ExchangeStart(v))
		mustErr("sync Exchange while in flight", rt.Exchange(v))
		mustErr("sync ScatterAdd while in flight", rt.ScatterAdd(v))
		if _, err := rt.Remap([]float64{1, 2}); err == nil {
			t.Errorf("rank %d: Remap while in flight succeeded, want error", c.Rank())
		}
		mustErr("ScatterAddFinish against an in-flight Exchange", rt.ScatterAddFinish())
		if err := rt.ExchangeFinish(); err != nil {
			return err
		}
		// The runtime must be fully usable again after a clean Finish.
		return rt.Exchange(v)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Split-phase ops on a parked runtime fail like their sync
	// counterparts.
	parkedWs, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer comm.CloseWorld(parkedWs)
	rt, err := NewParked(parkedWs[0], g, Config{Order: order.RCB})
	if err != nil {
		t.Fatal(err)
	}
	v := rt.NewVector()
	if err := rt.ExchangeStart(v); err == nil || !strings.Contains(err.Error(), "parked") {
		t.Errorf("ExchangeStart on parked runtime: err=%v, want parked error", err)
	}
	if err := rt.ScatterAddStart(v); err == nil || !strings.Contains(err.Error(), "parked") {
		t.Errorf("ScatterAddStart on parked runtime: err=%v, want parked error", err)
	}
}

// checkSplit asserts the classification invariant on one rank: the
// interior and boundary lists are ascending, disjoint, exactly cover
// [0, LocalN), and an element is boundary iff its localized adjacency
// references the ghost section.
func checkSplit(t *testing.T, rt *Runtime, label string) {
	t.Helper()
	p := rt.Plan()
	if !p.Classified() {
		t.Fatalf("%s: plan not classified", label)
	}
	nLocal := rt.LocalN()
	interior, boundary := p.Interior(), p.Boundary()
	if len(interior)+len(boundary) != nLocal {
		t.Fatalf("%s: |interior|=%d + |boundary|=%d != nLocal=%d",
			label, len(interior), len(boundary), nLocal)
	}
	seen := make([]int, nLocal)
	last := int32(-1)
	for _, u := range interior {
		if u <= last {
			t.Fatalf("%s: interior not strictly ascending at %d", label, u)
		}
		last = u
		seen[u]++
	}
	last = -1
	for _, u := range boundary {
		if u <= last {
			t.Fatalf("%s: boundary not strictly ascending at %d", label, u)
		}
		last = u
		seen[u]++
	}
	for u, n := range seen {
		if n != 1 {
			t.Fatalf("%s: local index %d appears %d times across interior+boundary, want exactly once", label, u, n)
		}
	}
	xadj, adj := rt.LocalAdj()
	for u := 0; u < nLocal; u++ {
		hasGhost := false
		for k := xadj[u]; k < xadj[u+1]; k++ {
			if int(adj[k]) >= nLocal {
				hasGhost = true
				break
			}
		}
		inBoundary := false
		for _, b := range boundary {
			if int(b) == u {
				inBoundary = true
				break
			}
		}
		if hasGhost != inBoundary {
			t.Fatalf("%s: local index %d hasGhost=%v but inBoundary=%v", label, u, hasGhost, inBoundary)
		}
	}
}

// TestClassificationPropertyRandomGraphs is the property test: for
// random geometric graphs, every rank's interior ∪ boundary is exactly
// its local index set — disjoint and complete — and stays so across
// remaps to random capability vectors.
func TestClassificationPropertyRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := mesh.RandomGeometric(300+rng.Intn(200), 0.12, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 3, 5} {
			ws, err := comm.NewWorld(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			weights := make([]float64, p)
			for i := range weights {
				weights[i] = 0.5 + rng.Float64()
			}
			remapW := make([]float64, p)
			for i := range remapW {
				remapW[i] = 0.5 + rng.Float64()
			}
			err = comm.SPMD(ws, func(c *comm.Comm) error {
				rt, err := New(c, g, Config{Order: order.Hilbert, Weights: weights})
				if err != nil {
					return err
				}
				checkSplit(t, rt, "fresh")
				if _, err := rt.Remap(remapW); err != nil {
					return err
				}
				checkSplit(t, rt, "remapped")
				return nil
			})
			comm.CloseWorld(ws)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}
