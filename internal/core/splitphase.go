package core

import (
	"fmt"
	"time"
)

// Asynchronous dataflow executor operations (the overlapped Phase C′
// data path, generalized to many ops in flight): Start posts every
// send of a schedule replay and returns an OpHandle immediately, the
// caller computes over the plan's interior elements while the messages
// are in flight, and handle.Wait() drains the arrivals and completes
// that operation. Independent handles — ops touching disjoint vector
// sets — progress concurrently: each handle owns its arrival mask,
// its parked-payload slots and a private wire tag, so several replay
// ops pipeline through the mailbox without stealing each other's
// messages, and the opportunistic poll-drain between sends services
// every live handle fairly. Everything runs on the same compiled plan,
// persistent wire buffers and masked arrival-order receives as the
// synchronous path (the transport copies payloads at Send, so the
// plan's per-peer wire buffers are shared safely across live ops), so
// the steady state stays allocation-free and the results are
// bit-for-bit identical — Exchange unpacks into disjoint ghost slots
// in arrival order, ScatterAdd applies contributions in ascending peer
// order regardless of arrival order.
//
// Dependency rule: two ops conflict iff they share a vector, in any
// kind combination — Exchange writes the ghost section, ScatterAdd
// reads it and writes the owned section, so any overlap is
// order-sensitive. A conflicting Start errors loudly naming the live
// op; it never queues silently. Synchronous executor calls follow the
// same rule (they run on fixed tags and plan-owned scratch, so only a
// shared vector conflicts); Remap and Rebind require zero live
// handles.
//
// Wire tags rotate through a fixed window: the k-th Start since the
// last schedule rebuild uses tagOpBase + k mod tagOpWindow. Starts are
// collective in SPMD program order, so every rank assigns the same tag
// to the same logical op and the per-(source, tag) FIFO pairing lines
// up; rebuild (Bind, Remap, Rebind — all of which require zero live
// handles) resets the counter, so a freshly admitted rank agrees with
// the survivors. A Start whose tag is still owned by a live handle
// errors: at most tagOpWindow ops can be in flight.

const (
	// tagOpBase is the first of the tagOpWindow rotating wire tags
	// handle-based ops send on (distinct from every fixed tag range:
	// inspector 0x1xx, runtime 0x2xx, loadbal 0x4xx, session 0x5xx,
	// elastic 0x6xx).
	tagOpBase   = 0x1000
	tagOpWindow = 64
)

// opKind is the replay direction of a handle-based op.
type opKind uint8

const (
	opExchange opKind = iota + 1
	opScatter
)

func (k opKind) String() string {
	switch k {
	case opExchange:
		return "Exchange"
	case opScatter:
		return "ScatterAdd"
	}
	return "none"
}

// startName returns the user-facing Start entry point for error
// messages as a constant (the zero-alloc path must not build strings).
func (k opKind) startName() string {
	if k == opScatter {
		return "ScatterAddStart"
	}
	return "ExchangeStart"
}

// OpHandle is one in-flight executor operation: it owns the arrival
// mask, the parked out-of-order payloads and the wire tag of a posted
// Exchange or ScatterAdd until Wait drains it. Handles are pooled on
// the runtime — Wait recycles them — so the steady state allocates
// nothing; a handle is invalid after Wait returns.
type OpHandle struct {
	rt   *Runtime
	kind opKind
	tag  int
	// vset names the vectors for dependency tracking; vecs is the
	// retained data view the drain unpacks into. Both are reused
	// backing arrays.
	vset []*Vector
	vecs [][]float64
	// pending marks the peers whose payload has not arrived; held
	// parks ScatterAdd payloads that completed out of order until the
	// deterministic ascending-peer apply pass in Wait.
	pending  []bool
	held     [][]byte
	nPending int
	done     bool
	idle     time.Duration
}

// Done reports whether the handle has been completed by Wait.
func (h *OpHandle) Done() bool { return h == nil || h.done }

// Idle returns how long this op's Wait spent blocked on arrivals —
// the latency the compute issued between Start and Wait did not hide.
// Valid once Wait returns.
func (h *OpHandle) Idle() time.Duration { return h.idle }

// LiveOps returns the number of handle-based operations currently in
// flight on the runtime.
func (rt *Runtime) LiveOps() int { return len(rt.live) }

// ExchangeStart posts the sends of an Exchange and returns its handle
// without waiting for the ghosts to arrive. The caller may compute
// over the plan's Interior() elements (which read no ghost value),
// then must Wait on the handle before touching any ghost. Further
// Starts on other vectors may be issued while this one is in flight.
func (rt *Runtime) ExchangeStart(v *Vector) (*OpHandle, error) {
	if v.rt != rt {
		return nil, fmt.Errorf("core: vector belongs to a different runtime")
	}
	rt.vsetScratch = append(rt.vsetScratch[:0], v)
	return rt.startGather(rt.vsetScratch)
}

// ExchangeAllStart is the coalesced ExchangeStart: all vectors' values
// for a peer share one in-flight message and one handle.
func (rt *Runtime) ExchangeAllStart(vecs ...*Vector) (*OpHandle, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("core: ExchangeAllStart with no vectors")
	}
	return rt.startGather(vecs)
}

// ScatterAddStart posts the sends of a ScatterAdd (each ghost
// contribution travels home) and returns its handle. Until Wait runs,
// the caller must not modify the vector's owned elements or ghost
// section.
func (rt *Runtime) ScatterAddStart(v *Vector) (*OpHandle, error) {
	if v.rt != rt {
		return nil, fmt.Errorf("core: vector belongs to a different runtime")
	}
	rt.vsetScratch = append(rt.vsetScratch[:0], v)
	return rt.startScatter(rt.vsetScratch)
}

// ScatterAddAllStart is the coalesced ScatterAddStart.
func (rt *Runtime) ScatterAddAllStart(vecs ...*Vector) (*OpHandle, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("core: ScatterAddAllStart with no vectors")
	}
	return rt.startScatter(vecs)
}

// Wait completes the operation: remaining arrivals are received in
// arrival order (Exchange payloads unpack into their disjoint ghost
// slots; ScatterAdd payloads park per peer, then apply in ascending
// peer order — the same deterministic accumulation as the synchronous
// path). Time spent blocked accumulates into the handle's Idle and
// the runtime's ExecStats.Idle. The handle is recycled and invalid
// afterwards.
func (h *OpHandle) Wait() error {
	if h == nil || h.done || h.rt == nil {
		return fmt.Errorf("core: Wait on a completed or invalid op handle")
	}
	rt := h.rt
	defer rt.retire(h)
	// Service every live op's arrivals without blocking first, then
	// charge only the genuinely blocking remainder of this one to the
	// idle counters.
	if err := rt.pollLive(); err != nil {
		return err
	}
	if h.nPending > 0 {
		t0 := rt.clock.Now()
		var err error
		switch h.kind {
		case opExchange:
			h.nPending, err = rt.drainGather(h.tag, h.pending, h.nPending, h.vecs, true)
		case opScatter:
			h.nPending, err = rt.drainScatter(h.tag, h.pending, h.nPending, h.held, true)
		}
		d := rt.clock.Now().Sub(t0)
		h.idle += d
		rt.execIdle += d
		if err != nil {
			return err
		}
	}
	if h.kind == opScatter {
		p := rt.plan
		for _, q := range p.SendPeers() {
			data := h.held[q]
			if data == nil {
				continue
			}
			h.held[q] = nil
			err := p.AddLocal(q, data, h.vecs)
			rt.c.Release(data)
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
		}
	}
	return nil
}

// startGather posts the Exchange sends and registers the live handle.
func (rt *Runtime) startGather(vs []*Vector) (*OpHandle, error) {
	h, err := rt.beginOp(opExchange, vs)
	if err != nil {
		return nil, err
	}
	p := rt.plan
	for _, q := range p.RecvPeers() {
		h.pending[q] = true
		h.nPending++
	}
	for _, q := range p.SendPeers() {
		buf := p.PackLocal(q, h.vecs)
		if err := rt.c.Send(q, h.tag, buf); err != nil {
			rt.retire(h)
			return nil, err
		}
		rt.execMsgs++
		rt.execBytes += int64(len(buf))
		// Opportunistic: between sends, service this op's arrivals and
		// every other live op's, so no handle starves while another is
		// being posted.
		if err := h.poll(); err != nil {
			rt.retire(h)
			return nil, err
		}
		if err := rt.pollLive(); err != nil {
			rt.retire(h)
			return nil, err
		}
	}
	rt.live = append(rt.live, h)
	return h, nil
}

// startScatter posts the ScatterAdd sends and registers the live
// handle; arrivals that complete early are parked on the handle.
func (rt *Runtime) startScatter(vs []*Vector) (*OpHandle, error) {
	h, err := rt.beginOp(opScatter, vs)
	if err != nil {
		return nil, err
	}
	p := rt.plan
	for _, q := range p.SendPeers() {
		h.pending[q] = true
		h.nPending++
	}
	for _, q := range p.RecvPeers() {
		buf := p.PackGhost(q, h.vecs)
		if err := rt.c.Send(q, h.tag, buf); err != nil {
			rt.retire(h)
			return nil, err
		}
		rt.execMsgs++
		rt.execBytes += int64(len(buf))
		if err := h.poll(); err != nil {
			rt.retire(h)
			return nil, err
		}
		if err := rt.pollLive(); err != nil {
			rt.retire(h)
			return nil, err
		}
	}
	rt.live = append(rt.live, h)
	return h, nil
}

// beginOp validates the op against every live handle (dependency rule
// and tag-window capacity), assigns the next rotating wire tag and
// readies a pooled handle.
func (rt *Runtime) beginOp(kind opKind, vs []*Vector) (*OpHandle, error) {
	if rt.Parked() {
		return nil, fmt.Errorf("core: split-phase operation on a parked runtime")
	}
	for _, v := range vs {
		if v.rt != rt {
			return nil, fmt.Errorf("core: vector belongs to a different runtime")
		}
	}
	if err := rt.checkLiveConflict(kind.startName(), vs); err != nil {
		return nil, err
	}
	tag := tagOpBase + rt.opSeq%tagOpWindow
	for _, o := range rt.live {
		if o.tag == tag {
			return nil, fmt.Errorf("core: too many ops in flight (the %d-tag window is exhausted); Wait on an earlier handle first", tagOpWindow)
		}
	}
	rt.opSeq++

	var h *OpHandle
	if n := len(rt.opPool); n > 0 {
		h = rt.opPool[n-1]
		rt.opPool = rt.opPool[:n-1]
	} else {
		h = &OpHandle{}
	}
	np := rt.plan.NProcs()
	if cap(h.pending) < np {
		h.pending = make([]bool, np)
	} else {
		h.pending = h.pending[:np]
		for i := range h.pending {
			h.pending[i] = false
		}
	}
	if cap(h.held) < np {
		h.held = make([][]byte, np)
	} else {
		h.held = h.held[:np]
	}
	h.vset = h.vset[:0]
	h.vecs = h.vecs[:0]
	for _, v := range vs {
		h.vset = append(h.vset, v)
		h.vecs = append(h.vecs, v.Data)
	}
	h.rt = rt
	h.kind = kind
	h.tag = tag
	h.nPending = 0
	h.done = false
	h.idle = 0

	rt.execOps++
	rt.execOverlap++
	if len(rt.live) > 0 {
		// This op overlaps at least one other live op — the pipelined
		// regime the single-slot executor could not enter.
		rt.execPipelined++
	}
	return h, nil
}

// checkLiveConflict enforces the dependency rule for a new op (handle
// or synchronous) over the given vectors.
func (rt *Runtime) checkLiveConflict(opName string, vs []*Vector) error {
	for _, o := range rt.live {
		for _, ov := range o.vset {
			for _, v := range vs {
				if ov == v {
					return fmt.Errorf("core: %s conflicts with a live %s op on the same vector; Wait on its handle first", opName, o.kind)
				}
			}
		}
	}
	return nil
}

// poll takes this op's already-arrived payloads without blocking.
func (h *OpHandle) poll() error {
	if h.nPending == 0 {
		return nil
	}
	var err error
	switch h.kind {
	case opExchange:
		h.nPending, err = h.rt.drainGather(h.tag, h.pending, h.nPending, h.vecs, false)
	case opScatter:
		h.nPending, err = h.rt.drainScatter(h.tag, h.pending, h.nPending, h.held, false)
	}
	return err
}

// pollLive services every live handle's arrivals without blocking, in
// start order — the fair poll-drain shared across in-flight ops.
func (rt *Runtime) pollLive() error {
	for _, o := range rt.live {
		if err := o.poll(); err != nil {
			return err
		}
	}
	return nil
}

// retire closes a handle: removes it from the live set, releases any
// parked payloads (only present after an error cut the op short) and
// recycles it into the pool.
func (rt *Runtime) retire(h *OpHandle) {
	for i, o := range rt.live {
		if o == h {
			rt.live = append(rt.live[:i], rt.live[i+1:]...)
			break
		}
	}
	for q := range h.held {
		if h.held[q] != nil {
			rt.c.Release(h.held[q])
			h.held[q] = nil
		}
	}
	for i := range h.vset {
		h.vset[i] = nil
	}
	h.vset = h.vset[:0]
	for i := range h.vecs {
		h.vecs[i] = nil
	}
	h.vecs = h.vecs[:0]
	h.done = true
	h.nPending = 0
	rt.opPool = append(rt.opPool, h)
}
