package core

import (
	"fmt"
)

// Split-phase executor operations (the overlapped Phase C′ data path):
// Start posts every send of a schedule replay and returns immediately,
// the caller computes over the plan's interior elements while the
// messages are in flight, and Finish drains the arrivals and completes
// the operation. Everything runs on the same compiled plan, persistent
// wire buffers and masked arrival-order receives as the synchronous
// path, so the steady state stays allocation-free and the results are
// bit-for-bit identical — Exchange unpacks into disjoint ghost slots
// in arrival order, ScatterAdd applies contributions in ascending peer
// order regardless of arrival order.
//
// At most one split-phase operation may be in flight per runtime (it
// owns the plan's pending-mask scratch); synchronous executor calls,
// Remap and Rebind are rejected while one is open.

// splitOp is the state of the in-flight split-phase operation.
type splitOp struct {
	// tag is tagExchange or tagScatter; zero means none in flight.
	tag      int
	vecs     [][]float64
	pending  []bool
	nPending int
}

// active reports whether a split-phase operation is in flight.
func (op *splitOp) active() bool { return op.tag != 0 }

// ExchangeStart posts the sends of an Exchange and returns without
// waiting for the ghosts to arrive. The caller may compute over the
// plan's Interior() elements (which read no ghost value), then must
// call ExchangeFinish before touching any ghost or starting another
// executor operation.
func (rt *Runtime) ExchangeStart(v *Vector) error {
	if v.rt != rt {
		return fmt.Errorf("core: vector belongs to a different runtime")
	}
	rt.vecScratch = append(rt.vecScratch[:0], v.Data)
	return rt.startGather(rt.vecScratch)
}

// ExchangeAllStart is the coalesced ExchangeStart: all vectors' values
// for a peer share one in-flight message.
func (rt *Runtime) ExchangeAllStart(vecs ...*Vector) error {
	if len(vecs) == 0 {
		return fmt.Errorf("core: ExchangeAllStart with no vectors")
	}
	if err := rt.collect(vecs); err != nil {
		return err
	}
	return rt.startGather(rt.vecScratch)
}

// ExchangeFinish drains the in-flight Exchange: remaining ghosts are
// received in arrival order and unpacked into their (disjoint) slots.
// The time spent blocked here is the latency the interior compute did
// not hide; it accumulates into ExecStats.Idle.
func (rt *Runtime) ExchangeFinish() error {
	if rt.inflight.tag != tagExchange {
		return fmt.Errorf("core: ExchangeFinish without a matching ExchangeStart")
	}
	op := &rt.inflight
	defer rt.clearInflight()
	// Take what already arrived without blocking, then charge only the
	// genuinely blocking remainder to the idle counter.
	var err error
	op.nPending, err = rt.drainGather(op.pending, op.nPending, op.vecs, false)
	if err != nil {
		return err
	}
	if op.nPending == 0 {
		return nil
	}
	t0 := rt.clock.Now()
	_, err = rt.drainGather(op.pending, op.nPending, op.vecs, true)
	rt.execIdle += rt.clock.Now().Sub(t0)
	return err
}

// ExchangeAllFinish completes a coalesced ExchangeAllStart. Finishing
// does not depend on how many vectors are in flight, so this is
// ExchangeFinish under the coalesced name.
func (rt *Runtime) ExchangeAllFinish() error { return rt.ExchangeFinish() }

// ScatterAddStart posts the sends of a ScatterAdd (each ghost
// contribution travels home) and returns without waiting. Until
// ScatterAddFinish runs, the caller must not modify the vector's owned
// elements or ghost section.
func (rt *Runtime) ScatterAddStart(v *Vector) error {
	if v.rt != rt {
		return fmt.Errorf("core: vector belongs to a different runtime")
	}
	rt.vecScratch = append(rt.vecScratch[:0], v.Data)
	return rt.startScatter(rt.vecScratch)
}

// ScatterAddAllStart is the coalesced ScatterAddStart.
func (rt *Runtime) ScatterAddAllStart(vecs ...*Vector) error {
	if len(vecs) == 0 {
		return fmt.Errorf("core: ScatterAddAllStart with no vectors")
	}
	if err := rt.collect(vecs); err != nil {
		return err
	}
	return rt.startScatter(rt.vecScratch)
}

// ScatterAddFinish completes the in-flight ScatterAdd: remaining
// contributions are received in arrival order (parked per peer), then
// every peer's payload is added into the owned elements in ascending
// peer order — the same deterministic accumulation as the synchronous
// path. Blocking time accumulates into ExecStats.Idle.
func (rt *Runtime) ScatterAddFinish() error {
	if rt.inflight.tag != tagScatter {
		return fmt.Errorf("core: ScatterAddFinish without a matching ScatterAddStart")
	}
	op := &rt.inflight
	defer rt.clearInflight()
	defer rt.releaseHeld()
	var err error
	op.nPending, err = rt.drainScatter(op.pending, op.nPending, false)
	if err != nil {
		return err
	}
	if op.nPending > 0 {
		t0 := rt.clock.Now()
		_, err = rt.drainScatter(op.pending, op.nPending, true)
		rt.execIdle += rt.clock.Now().Sub(t0)
		if err != nil {
			return err
		}
	}
	p := rt.plan
	for _, q := range p.SendPeers() {
		data := p.TakeHeld(q)
		err := p.AddLocal(q, data, op.vecs)
		rt.c.Release(data)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// ScatterAddAllFinish completes a coalesced ScatterAddAllStart.
func (rt *Runtime) ScatterAddAllFinish() error { return rt.ScatterAddFinish() }

// startGather posts the Exchange sends and records the in-flight state.
func (rt *Runtime) startGather(vecs [][]float64) error {
	if err := rt.beginSplit(tagExchange, vecs); err != nil {
		return err
	}
	op := &rt.inflight
	p := rt.plan
	for _, q := range p.RecvPeers() {
		op.pending[q] = true
		op.nPending++
	}
	for _, q := range p.SendPeers() {
		buf := p.PackLocal(q, vecs)
		if err := rt.c.Send(q, tagExchange, buf); err != nil {
			rt.clearInflight()
			return err
		}
		rt.execMsgs++
		rt.execBytes += int64(len(buf))
		// Opportunistic: unpack whatever already arrived between sends,
		// exactly like the synchronous path.
		var err error
		op.nPending, err = rt.drainGather(op.pending, op.nPending, vecs, false)
		if err != nil {
			rt.clearInflight()
			return err
		}
	}
	return nil
}

// startScatter posts the ScatterAdd sends and records the in-flight
// state; arrivals that complete early are parked on the plan.
func (rt *Runtime) startScatter(vecs [][]float64) error {
	if err := rt.beginSplit(tagScatter, vecs); err != nil {
		return err
	}
	op := &rt.inflight
	p := rt.plan
	for _, q := range p.SendPeers() {
		op.pending[q] = true
		op.nPending++
	}
	for _, q := range p.RecvPeers() {
		buf := p.PackGhost(q, vecs)
		if err := rt.c.Send(q, tagScatter, buf); err != nil {
			rt.clearInflight()
			rt.releaseHeld()
			return err
		}
		rt.execMsgs++
		rt.execBytes += int64(len(buf))
		var err error
		op.nPending, err = rt.drainScatter(op.pending, op.nPending, false)
		if err != nil {
			rt.clearInflight()
			rt.releaseHeld()
			return err
		}
	}
	return nil
}

// beginSplit validates and opens the split-phase operation: the plan's
// pending scratch and a retained view of the vectors belong to it until
// Finish. The vector views are copied out of vecScratch (which the
// next synchronous call would clobber) into the operation's own reused
// backing array, so the steady state still allocates nothing.
func (rt *Runtime) beginSplit(tag int, vecs [][]float64) error {
	if rt.Parked() {
		return fmt.Errorf("core: split-phase operation on a parked runtime")
	}
	if rt.inflight.active() {
		return fmt.Errorf("core: split-phase operation already in flight (missing Finish)")
	}
	op := &rt.inflight
	op.tag = tag
	op.vecs = append(op.vecs[:0], vecs...)
	op.pending = rt.plan.Pending()
	op.nPending = 0
	rt.execOps++
	rt.execOverlap++
	return nil
}

// clearInflight closes the split-phase operation.
func (rt *Runtime) clearInflight() {
	rt.inflight.tag = 0
	rt.inflight.nPending = 0
	rt.inflight.pending = nil
}
