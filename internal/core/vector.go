package core

import (
	"fmt"

	"stance/internal/comm"
)

// Vector is a distributed array aligned with the runtime's layout:
// Data[0:LocalN()] are the locally owned elements (local index order),
// Data[LocalN():] is the ghost section filled by Exchange. Vectors are
// registered with their runtime and follow it through Remap.
type Vector struct {
	rt   *Runtime
	Data []float64
}

// NewVector allocates and registers a zero vector. All ranks must
// create their vectors in the same order (vector creation pairs them
// across ranks during redistribution). On a parked runtime the vector
// is empty until the rank is admitted.
func (rt *Runtime) NewVector() *Vector {
	v := &Vector{
		rt:   rt,
		Data: make([]float64, rt.LocalN()+rt.nGhosts()),
	}
	rt.vecs = append(rt.vecs, v)
	return v
}

// Local returns the owned section.
func (v *Vector) Local() []float64 { return v.Data[:v.rt.LocalN()] }

// Ghost returns the ghost section (valid after Exchange).
func (v *Vector) Ghost() []float64 { return v.Data[v.rt.LocalN():] }

// SetByGlobal initializes the owned section from a function of the
// transformed global index.
func (v *Vector) SetByGlobal(f func(global int64) float64) {
	iv := v.rt.GlobalInterval()
	for u := range v.Local() {
		v.Data[u] = f(iv.Lo + int64(u))
	}
}

// Exchange fills v's ghost section with the owning ranks' current
// values — the executor's gather primitive (paper Section 3.3),
// replaying the compiled plan: owned values are packed per peer
// straight into persistent wire buffers, sends overlap with draining
// whatever has already arrived, and the remaining receives complete in
// arrival order, so one slow peer no longer stalls the unpacking of
// the others.
func (rt *Runtime) Exchange(v *Vector) error {
	if v.rt != rt {
		return fmt.Errorf("core: vector belongs to a different runtime")
	}
	if rt.Parked() {
		return fmt.Errorf("core: Exchange on a parked runtime")
	}
	rt.vsetScratch = append(rt.vsetScratch[:0], v)
	if err := rt.checkLiveConflict("Exchange", rt.vsetScratch); err != nil {
		return err
	}
	rt.vecScratch = append(rt.vecScratch[:0], v.Data)
	return rt.gather(rt.vecScratch)
}

// ScatterAdd is the executor's scatter primitive: each ghost value is
// sent back to its owner and added into the owned element. Callers
// accumulate partial contributions into the ghost section, then
// scatter them home (the transpose of Exchange).
func (rt *Runtime) ScatterAdd(v *Vector) error {
	if v.rt != rt {
		return fmt.Errorf("core: vector belongs to a different runtime")
	}
	if rt.Parked() {
		return fmt.Errorf("core: ScatterAdd on a parked runtime")
	}
	rt.vsetScratch = append(rt.vsetScratch[:0], v)
	if err := rt.checkLiveConflict("ScatterAdd", rt.vsetScratch); err != nil {
		return err
	}
	rt.vecScratch = append(rt.vecScratch[:0], v.Data)
	return rt.scatter(rt.vecScratch)
}

// gather replays the Exchange direction of the plan for one or more
// vectors coalesced onto the same wire messages. Callers have already
// checked the vectors against the live handles; the fixed tag and the
// plan-owned pending scratch never collide with handle-based ops.
func (rt *Runtime) gather(vecs [][]float64) error {
	p := rt.plan
	rt.execOps++
	pending := p.Pending()
	nPending := 0
	for _, q := range p.RecvPeers() {
		pending[q] = true
		nPending++
	}
	for _, q := range p.SendPeers() {
		buf := p.PackLocal(q, vecs)
		if err := rt.c.Send(q, tagExchange, buf); err != nil {
			return err
		}
		rt.execMsgs++
		rt.execBytes += int64(len(buf))
		// Overlap: unpack whatever has already arrived before packing
		// the next message.
		var err error
		nPending, err = rt.drainGather(tagExchange, pending, nPending, vecs, false)
		if err != nil {
			return err
		}
	}
	_, err := rt.drainGather(tagExchange, pending, nPending, vecs, true)
	return err
}

// drainGather consumes Exchange payloads on the given tag in arrival
// order, unpacking each straight into the ghost sections (safe out of
// order: ghost slots are disjoint assignments). With block unset it
// only takes messages that are already in the mailbox.
func (rt *Runtime) drainGather(tag int, pending []bool, nPending int, vecs [][]float64, block bool) (int, error) {
	p := rt.plan
	for nPending > 0 {
		var src int
		var data []byte
		var err error
		if block {
			src, data, err = rt.c.RecvAnyOf(tag, pending)
			if err != nil {
				return nPending, err
			}
		} else {
			var ok bool
			src, data, ok, err = rt.c.PollAnyOf(tag, pending)
			if err != nil {
				return nPending, err
			}
			if !ok {
				return nPending, nil
			}
		}
		err = p.UnpackGhost(src, data, vecs)
		rt.c.Release(data)
		if err != nil {
			return nPending, fmt.Errorf("core: %w", err)
		}
		pending[src] = false
		nPending--
	}
	return nPending, nil
}

// scatter replays the ScatterAdd direction of the plan. Receives
// complete in arrival order (parked per peer), but the accumulation is
// applied in ascending peer order afterwards: several peers may
// contribute to the same owned element, and floating-point addition is
// not associative, so apply order must not depend on network timing.
func (rt *Runtime) scatter(vecs [][]float64) error {
	p := rt.plan
	rt.execOps++
	pending := p.Pending()
	nPending := 0
	for _, q := range p.SendPeers() {
		pending[q] = true
		nPending++
	}
	defer rt.releaseHeld()
	for _, q := range p.RecvPeers() {
		buf := p.PackGhost(q, vecs)
		if err := rt.c.Send(q, tagScatter, buf); err != nil {
			return err
		}
		rt.execMsgs++
		rt.execBytes += int64(len(buf))
		var err error
		nPending, err = rt.drainScatter(tagScatter, pending, nPending, p.Held(), false)
		if err != nil {
			return err
		}
	}
	if _, err := rt.drainScatter(tagScatter, pending, nPending, p.Held(), true); err != nil {
		return err
	}
	for _, q := range p.SendPeers() {
		data := p.TakeHeld(q)
		err := p.AddLocal(q, data, vecs)
		rt.c.Release(data)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// drainScatter completes ScatterAdd receives on the given tag in
// arrival order, parking each payload in held (indexed by source) until
// the deterministic apply pass.
func (rt *Runtime) drainScatter(tag int, pending []bool, nPending int, held [][]byte, block bool) (int, error) {
	for nPending > 0 {
		var src int
		var data []byte
		var err error
		if block {
			src, data, err = rt.c.RecvAnyOf(tag, pending)
			if err != nil {
				return nPending, err
			}
		} else {
			var ok bool
			src, data, ok, err = rt.c.PollAnyOf(tag, pending)
			if err != nil {
				return nPending, err
			}
			if !ok {
				return nPending, nil
			}
		}
		held[src] = data
		pending[src] = false
		nPending--
	}
	return nPending, nil
}

// releaseHeld returns any payloads still parked on the plan (after an
// error cut an operation short) to the transport.
func (rt *Runtime) releaseHeld() {
	p := rt.plan
	for _, q := range p.SendPeers() {
		if data := p.TakeHeld(q); data != nil {
			rt.c.Release(data)
		}
	}
}

// GatherGlobal assembles the full vector (transformed-global order) on
// root; other ranks return nil. Collective.
func (rt *Runtime) GatherGlobal(root int, v *Vector) ([]float64, error) {
	if v.rt != rt {
		return nil, fmt.Errorf("core: vector belongs to a different runtime")
	}
	if rt.Parked() {
		return nil, fmt.Errorf("core: GatherGlobal on a parked runtime")
	}
	parts, err := rt.c.Gather(root, tagGatherV, comm.F64sToBytes(v.Local()))
	if err != nil {
		return nil, err
	}
	if rt.c.Rank() != root {
		return nil, nil
	}
	out := make([]float64, rt.n)
	for q := 0; q < rt.c.Size(); q++ {
		vals, err := comm.BytesToF64s(parts[q])
		if err != nil {
			return nil, err
		}
		iv := rt.layout.Interval(q)
		if int64(len(vals)) != iv.Len() {
			return nil, fmt.Errorf("core: rank %d sent %d values for interval of %d", q, len(vals), iv.Len())
		}
		copy(out[iv.Lo:iv.Hi], vals)
	}
	return out, nil
}

// Unpermute maps a transformed-global vector back to original vertex
// numbering: out[original] = vals[perm[original]].
func (rt *Runtime) Unpermute(vals []float64) ([]float64, error) {
	if int64(len(vals)) != rt.n {
		return nil, fmt.Errorf("core: vector length %d, want %d", len(vals), rt.n)
	}
	out := make([]float64, rt.n)
	for orig, nw := range rt.perm {
		out[orig] = vals[nw]
	}
	return out, nil
}
