package core

import (
	"fmt"

	"stance/internal/comm"
)

// Vector is a distributed array aligned with the runtime's layout:
// Data[0:LocalN()] are the locally owned elements (local index order),
// Data[LocalN():] is the ghost section filled by Exchange. Vectors are
// registered with their runtime and follow it through Remap.
type Vector struct {
	rt   *Runtime
	Data []float64
}

// NewVector allocates and registers a zero vector. All ranks must
// create their vectors in the same order (vector creation pairs them
// across ranks during redistribution).
func (rt *Runtime) NewVector() *Vector {
	v := &Vector{
		rt:   rt,
		Data: make([]float64, rt.LocalN()+rt.sch.NGhosts()),
	}
	rt.vecs = append(rt.vecs, v)
	return v
}

// Local returns the owned section.
func (v *Vector) Local() []float64 { return v.Data[:v.rt.LocalN()] }

// Ghost returns the ghost section (valid after Exchange).
func (v *Vector) Ghost() []float64 { return v.Data[v.rt.LocalN():] }

// SetByGlobal initializes the owned section from a function of the
// transformed global index.
func (v *Vector) SetByGlobal(f func(global int64) float64) {
	iv := v.rt.GlobalInterval()
	for u := range v.Local() {
		v.Data[u] = f(iv.Lo + int64(u))
	}
}

// Exchange fills v's ghost section with the owning ranks' current
// values — the executor's gather primitive (paper Section 3.3),
// replaying the inspector's schedule.
func (rt *Runtime) Exchange(v *Vector) error {
	if v.rt != rt {
		return fmt.Errorf("core: vector belongs to a different runtime")
	}
	s := rt.sch
	for q := 0; q < s.NProcs; q++ {
		idx := s.SendIdx[q]
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, len(idx))
		for i, li := range idx {
			buf[i] = v.Data[li]
		}
		if err := rt.c.Send(q, tagExchange, comm.F64sToBytes(buf)); err != nil {
			return err
		}
	}
	nLocal := rt.LocalN()
	for q := 0; q < s.NProcs; q++ {
		slots := s.RecvSlot[q]
		if len(slots) == 0 {
			continue
		}
		data, err := rt.c.Recv(q, tagExchange)
		if err != nil {
			return err
		}
		vals, err := comm.BytesToF64s(data)
		if err != nil {
			return err
		}
		if len(vals) != len(slots) {
			return fmt.Errorf("core: peer %d sent %d values, schedule expects %d", q, len(vals), len(slots))
		}
		for i, slot := range slots {
			v.Data[nLocal+int(slot)] = vals[i]
		}
	}
	return nil
}

// ScatterAdd is the executor's scatter primitive: each ghost value is
// sent back to its owner and added into the owned element. Callers
// accumulate partial contributions into the ghost section, then
// scatter them home (the transpose of Exchange).
func (rt *Runtime) ScatterAdd(v *Vector) error {
	if v.rt != rt {
		return fmt.Errorf("core: vector belongs to a different runtime")
	}
	s := rt.sch
	nLocal := rt.LocalN()
	for q := 0; q < s.NProcs; q++ {
		slots := s.RecvSlot[q]
		if len(slots) == 0 {
			continue
		}
		buf := make([]float64, len(slots))
		for i, slot := range slots {
			buf[i] = v.Data[nLocal+int(slot)]
		}
		if err := rt.c.Send(q, tagScatter, comm.F64sToBytes(buf)); err != nil {
			return err
		}
	}
	for q := 0; q < s.NProcs; q++ {
		idx := s.SendIdx[q]
		if len(idx) == 0 {
			continue
		}
		data, err := rt.c.Recv(q, tagScatter)
		if err != nil {
			return err
		}
		vals, err := comm.BytesToF64s(data)
		if err != nil {
			return err
		}
		if len(vals) != len(idx) {
			return fmt.Errorf("core: peer %d scattered %d values, schedule expects %d", q, len(vals), len(idx))
		}
		for i, li := range idx {
			v.Data[li] += vals[i]
		}
	}
	return nil
}

// GatherGlobal assembles the full vector (transformed-global order) on
// root; other ranks return nil. Collective.
func (rt *Runtime) GatherGlobal(root int, v *Vector) ([]float64, error) {
	if v.rt != rt {
		return nil, fmt.Errorf("core: vector belongs to a different runtime")
	}
	parts, err := rt.c.Gather(root, tagGatherV, comm.F64sToBytes(v.Local()))
	if err != nil {
		return nil, err
	}
	if rt.c.Rank() != root {
		return nil, nil
	}
	out := make([]float64, rt.n)
	for q := 0; q < rt.c.Size(); q++ {
		vals, err := comm.BytesToF64s(parts[q])
		if err != nil {
			return nil, err
		}
		iv := rt.layout.Interval(q)
		if int64(len(vals)) != iv.Len() {
			return nil, fmt.Errorf("core: rank %d sent %d values for interval of %d", q, len(vals), iv.Len())
		}
		copy(out[iv.Lo:iv.Hi], vals)
	}
	return out, nil
}

// Unpermute maps a transformed-global vector back to original vertex
// numbering: out[original] = vals[perm[original]].
func (rt *Runtime) Unpermute(vals []float64) ([]float64, error) {
	if int64(len(vals)) != rt.n {
		return nil, fmt.Errorf("core: vector length %d, want %d", len(vals), rt.n)
	}
	out := make([]float64, rt.n)
	for orig, nw := range rt.perm {
		out[orig] = vals[nw]
	}
	return out, nil
}
