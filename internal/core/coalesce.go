package core

import (
	"fmt"

	"stance/internal/comm"
)

// ExchangeAll gathers the ghost sections of several vectors in one
// round, coalescing all vectors' values for a peer into a single
// message — the "message coalescing" optimization of paper Section 2.
// On a latency-dominated network this divides the per-iteration setup
// cost by the number of vectors (see BenchmarkCoalescing).
func (rt *Runtime) ExchangeAll(vecs ...*Vector) error {
	if len(vecs) == 0 {
		return nil
	}
	if len(vecs) == 1 {
		return rt.Exchange(vecs[0])
	}
	for _, v := range vecs {
		if v.rt != rt {
			return fmt.Errorf("core: vector belongs to a different runtime")
		}
	}
	s := rt.sch
	nLocal := rt.LocalN()
	for q := 0; q < s.NProcs; q++ {
		idx := s.SendIdx[q]
		if len(idx) == 0 {
			continue
		}
		// One frame carries every vector's segment, back to back.
		buf := make([]float64, 0, len(idx)*len(vecs))
		for _, v := range vecs {
			for _, li := range idx {
				buf = append(buf, v.Data[li])
			}
		}
		if err := rt.c.Send(q, tagExchange, comm.F64sToBytes(buf)); err != nil {
			return err
		}
	}
	for q := 0; q < s.NProcs; q++ {
		slots := s.RecvSlot[q]
		if len(slots) == 0 {
			continue
		}
		data, err := rt.c.Recv(q, tagExchange)
		if err != nil {
			return err
		}
		vals, err := comm.BytesToF64s(data)
		if err != nil {
			return err
		}
		if len(vals) != len(slots)*len(vecs) {
			return fmt.Errorf("core: peer %d sent %d values, coalesced schedule expects %d",
				q, len(vals), len(slots)*len(vecs))
		}
		for vi, v := range vecs {
			seg := vals[vi*len(slots) : (vi+1)*len(slots)]
			for i, slot := range slots {
				v.Data[nLocal+int(slot)] = seg[i]
			}
		}
	}
	return nil
}
