package core

import (
	"fmt"
)

// ExchangeAll gathers the ghost sections of several vectors in one
// round, coalescing all vectors' values for a peer into a single
// message — the "message coalescing" optimization of paper Section 2.
// On a latency-dominated network this divides the per-iteration setup
// cost by the number of vectors (see BenchmarkCoalescing). Each
// message carries the vectors' segments back to back, vector-major.
func (rt *Runtime) ExchangeAll(vecs ...*Vector) error {
	if len(vecs) == 0 {
		return nil
	}
	if err := rt.collect(vecs); err != nil {
		return err
	}
	return rt.gather(rt.vecScratch)
}

// ScatterAddAll is the coalesced transpose of ExchangeAll: every
// vector's ghost contributions travel home in one message per peer and
// are added into the owned elements, in the same deterministic peer
// order as repeated ScatterAdd calls.
func (rt *Runtime) ScatterAddAll(vecs ...*Vector) error {
	if len(vecs) == 0 {
		return nil
	}
	if err := rt.collect(vecs); err != nil {
		return err
	}
	return rt.scatter(rt.vecScratch)
}

// collect validates ownership, checks the vectors against the live op
// handles and refreshes the reused [][]float64 view of their data.
func (rt *Runtime) collect(vecs []*Vector) error {
	rt.vecScratch = rt.vecScratch[:0]
	for _, v := range vecs {
		if v.rt != rt {
			return fmt.Errorf("core: vector belongs to a different runtime")
		}
		rt.vecScratch = append(rt.vecScratch, v.Data)
	}
	return rt.checkLiveConflict("a coalesced synchronous op", vecs)
}
