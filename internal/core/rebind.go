package core

import (
	"fmt"
	"time"

	"stance/internal/comm"
	"stance/internal/partition"
	"stance/internal/redist"
)

// tagRebind carries cross-world migration data during membership
// transitions. It is distinct from tagRedist (in-world remaps) so the
// two kinds of data movement pair independently in the per-(source,
// tag) FIFO queues.
const tagRebind = 0x206

// Rebind describes one rank's side of a membership transition: data
// migrates from the Old layout (distributed over OldProcs) to the New
// layout (over NewProcs) across the Carrier world, and the runtime
// comes back bound to Sub — its endpoint in the incoming active
// sub-world — or parks when Sub is nil.
type Rebind struct {
	// Carrier is this rank's endpoint in the world the migration data
	// travels over (the full parent world: it is the only communicator
	// spanning both the outgoing and the incoming active sets).
	Carrier *comm.Comm
	// Sub is this rank's endpoint in the incoming active sub-world, or
	// nil when the rank is retiring: it then sends its interval away
	// and parks.
	Sub *comm.Comm
	// Old and New are the outgoing and incoming layouts. Old is passed
	// explicitly rather than read from the runtime because an admitted
	// rank was parked when Old was cut and only learns it from the
	// coordinator's proposal.
	Old, New *partition.Layout
	// OldProcs and NewProcs map layout processor indices to carrier
	// ranks.
	OldProcs, NewProcs []int
}

// RebindStats reports one rank's local share of a membership
// transition. JSON field names are stable API; durations marshal as
// integer nanoseconds.
type RebindStats struct {
	// MovedBytes and Msgs count the migration payload this rank sent.
	MovedBytes int64 `json:"moved_bytes"`
	Msgs       int   `json:"msgs"`
	// Total is the wall time of the whole rebind on this rank;
	// Inspector is the schedule-rebuild portion (zero when parking).
	Total     time.Duration `json:"total_ns"`
	Inspector time.Duration `json:"inspector_ns"`
}

// Rebind migrates the runtime across a membership transition: every
// registered vector's owned section moves to the incoming layout over
// the carrier world, then the runtime either rebuilds its schedule on
// the new sub-world or parks. All ranks of the union of the outgoing
// and incoming active sets must call Rebind with the same layouts and
// mappings; parked ranks that stay parked do not participate.
func (rt *Runtime) Rebind(rb Rebind) (RebindStats, error) {
	start := rt.clock.Now()
	stats := RebindStats{}
	if rb.Carrier == nil {
		return stats, fmt.Errorf("core: rebind without a carrier")
	}
	if n := len(rt.live); n > 0 {
		return stats, fmt.Errorf("core: rebind while %d split-phase op(s) are in flight; Wait on their handles first", n)
	}
	if rb.Old == nil || rb.New == nil {
		return stats, fmt.Errorf("core: rebind without layouts")
	}
	if rb.New.N() != rt.n {
		return stats, fmt.Errorf("core: rebind layout covers %d elements, want %d", rb.New.N(), rt.n)
	}
	if !rt.Parked() && !rt.layout.Equal(rb.Old) {
		return stats, fmt.Errorf("core: rebind old layout does not match the runtime's")
	}
	plan, err := redist.NewCrossPlan(rb.Old, rb.New, rb.OldProcs, rb.NewProcs, rb.Carrier.Rank())
	if err != nil {
		return stats, err
	}
	if rt.Parked() && plan.Old.Len() > 0 {
		return stats, fmt.Errorf("core: parked rank %d owns %d elements in the outgoing layout",
			rb.Carrier.Rank(), plan.Old.Len())
	}
	if rb.Sub == nil && plan.New.Len() > 0 {
		return stats, fmt.Errorf("core: retiring rank %d owns %d elements in the incoming layout",
			rb.Carrier.Rank(), plan.New.Len())
	}
	if err := rt.moveVectorsOn(rb.Carrier, tagRebind, plan); err != nil {
		return stats, err
	}
	stats.MovedBytes = plan.MovedBytes() * int64(len(rt.vecs))
	stats.Msgs = len(plan.Sends) * len(rt.vecs)

	if rb.Sub == nil {
		// Retire: the vectors were emptied by the move (New is empty);
		// drop the schedule and go dormant on the carrier until a
		// future Rebind re-admits the rank.
		rt.c = rb.Carrier
		rt.layout, rt.sch, rt.plan = nil, nil, nil
		rt.lxadj, rt.ladj = nil, nil
		stats.Total = rt.clock.Now().Sub(start)
		return stats, nil
	}
	rt.c = rb.Sub
	rt.layout = rb.New
	if err := rt.rebuild(); err != nil {
		return stats, err
	}
	// Re-extend the vectors' ghost sections for the new schedule.
	for _, v := range rt.vecs {
		local := v.Data[:plan.New.Len()]
		v.Data = make([]float64, int(plan.New.Len())+rt.sch.NGhosts())
		copy(v.Data, local)
	}
	stats.Inspector = rt.lastInspector
	stats.Total = rt.clock.Now().Sub(start)
	return stats, nil
}
