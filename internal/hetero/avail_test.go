package hetero

import (
	"strings"
	"testing"
)

func TestOutageAvailability(t *testing.T) {
	env := Uniform(4)
	env.Outages = []Outage{
		{Rank: 2, FromIter: 20, UntilIter: 60},
		{Rank: 3, FromIter: 50, UntilIter: 0}, // forever
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if !env.Elastic() {
		t.Error("environment with outages is not elastic")
	}
	cases := []struct {
		iter   int
		active []int
	}{
		{0, []int{0, 1, 2, 3}},
		{19, []int{0, 1, 2, 3}},
		{20, []int{0, 1, 3}},
		{49, []int{0, 1, 3}},
		{59, []int{0, 1}},    // both outages overlap
		{60, []int{0, 1, 2}}, // 2 back, 3 gone for good
		{1000, []int{0, 1, 2}},
	}
	for _, tc := range cases {
		got := env.ActiveSet(tc.iter)
		if len(got) != len(tc.active) {
			t.Errorf("ActiveSet(%d) = %v, want %v", tc.iter, got, tc.active)
			continue
		}
		for i := range got {
			if got[i] != tc.active[i] {
				t.Errorf("ActiveSet(%d) = %v, want %v", tc.iter, got, tc.active)
				break
			}
		}
	}
	if Uniform(2).Elastic() {
		t.Error("static environment reports itself elastic")
	}
}

func TestOutageValidation(t *testing.T) {
	cases := []struct {
		name string
		o    Outage
	}{
		{"coordinator outage", Outage{Rank: 0, FromIter: 5}},
		{"rank out of range", Outage{Rank: 9, FromIter: 5}},
		{"negative rank", Outage{Rank: -1, FromIter: 5}},
		{"empty span", Outage{Rank: 1, FromIter: 10, UntilIter: 10}},
		{"inverted span", Outage{Rank: 1, FromIter: 10, UntilIter: 5}},
	}
	for _, tc := range cases {
		env := Uniform(3)
		env.Outages = []Outage{tc.o}
		if err := env.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.o)
		}
	}
}

func TestEnvClone(t *testing.T) {
	env := PaperAdaptive(3, 3)
	env.Outages = []Outage{{Rank: 1, FromIter: 10, UntilIter: 20}}
	cl := env.Clone()
	cl.Speeds[0] = 99
	cl.Loads[0].Factor = 99
	cl.Outages[0].Rank = 2
	if env.Speeds[0] == 99 || env.Loads[0].Factor == 99 || env.Outages[0].Rank == 2 {
		t.Error("Clone shares state with the original")
	}
}

func TestFromJSON(t *testing.T) {
	env, err := FromJSON([]byte(`{
		"speeds": [1, 0.5, 1],
		"loads": [{"rank": 0, "factor": 3, "fromIter": 10, "untilIter": 40}],
		"outages": [{"rank": 2, "fromIter": 20, "untilIter": 60}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if env.P() != 3 || env.Speeds[1] != 0.5 {
		t.Errorf("speeds decoded as %v", env.Speeds)
	}
	if len(env.Loads) != 1 || env.Loads[0].Factor != 3 || env.Loads[0].UntilIter != 40 {
		t.Errorf("loads decoded as %+v", env.Loads)
	}
	if len(env.Outages) != 1 || env.Outages[0] != (Outage{Rank: 2, FromIter: 20, UntilIter: 60}) {
		t.Errorf("outages decoded as %+v", env.Outages)
	}

	// A typo must fail loudly, not silently run the wrong scenario.
	if _, err := FromJSON([]byte(`{"speeds": [1], "outagez": []}`)); err == nil ||
		!strings.Contains(err.Error(), "outagez") {
		t.Errorf("unknown field error = %v, want mention of the field", err)
	}
	// An invalid environment must fail validation after decoding.
	if _, err := FromJSON([]byte(`{"speeds": [1, 1], "outages": [{"rank": 0, "fromIter": 1}]}`)); err == nil {
		t.Error("coordinator outage accepted from JSON")
	}
	if _, err := FromJSON([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Trailing content after the environment object must be rejected,
	// not silently dropped.
	if _, err := FromJSON([]byte(`{"speeds": [1, 1]}, {"speeds": [1]}`)); err == nil {
		t.Error("trailing JSON content accepted")
	}
}
