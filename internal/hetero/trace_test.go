package hetero

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestTraceWorkFactorComposition: traces compose multiplicatively with
// base speeds and competing loads, and a capability change moves the
// work factor exactly as the piecewise schedule says.
func TestTraceWorkFactorComposition(t *testing.T) {
	env := &Env{
		Speeds: []float64{1, 0.5},
		Loads:  []Load{{Rank: 1, Factor: 2, FromIter: 10, UntilIter: 20}},
		Traces: []Trace{{Rank: 1, Steps: []TraceStep{
			{FromIter: 5, Capability: 0.25},
			{FromIter: 15, Capability: 2},
		}}},
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		iter int
		want float64
	}{
		{0, 2},    // base speed 0.5 only
		{4, 2},    // before the first trace step
		{5, 8},    // speed 0.5 × capability 0.25
		{9, 8},    //
		{10, 16},  // load factor 2 joins
		{14, 16},  //
		{15, 2},   // capability jumps to 2: 2 × 2 / 2
		{19, 2},   //
		{20, 1},   // load expires: 2 / 2
		{1000, 1}, // final segment holds forever
	}
	for _, c := range cases {
		if got := env.WorkFactor(1, c.iter); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WorkFactor(1, %d) = %g, want %g", c.iter, got, c.want)
		}
	}
	// Rank 0 is untouched by rank 1's schedule.
	for _, iter := range []int{0, 7, 12, 30} {
		if got := env.WorkFactor(0, iter); got != 1 {
			t.Errorf("WorkFactor(0, %d) = %g, want 1", iter, got)
		}
	}
	// Change points include every trace step boundary.
	cps := env.ChangePoints()
	want := []int{5, 10, 15, 20}
	if !reflect.DeepEqual(cps, want) {
		t.Errorf("ChangePoints = %v, want %v", cps, want)
	}
}

// TestTraceOutageComposition: zero-capability trace segments and
// explicit outage windows both take a workstation away, and their
// union drives Available/ActiveSet/Elastic.
func TestTraceOutageComposition(t *testing.T) {
	env := &Env{
		Speeds:  []float64{1, 1, 1},
		Outages: []Outage{{Rank: 1, FromIter: 10, UntilIter: 20}},
		Traces: []Trace{{Rank: 2, Steps: []TraceStep{
			{FromIter: 15, Capability: 0},
			{FromIter: 25, Capability: 1},
		}}},
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if !env.Elastic() {
		t.Fatal("zero-capability trace did not make the environment elastic")
	}
	cases := []struct {
		iter   int
		active []int
	}{
		{0, []int{0, 1, 2}},
		{10, []int{0, 2}},    // outage only
		{15, []int{0}},       // outage + zero-capability segment overlap
		{20, []int{0, 1}},    // outage over, trace still zero
		{25, []int{0, 1, 2}}, // both over
	}
	for _, c := range cases {
		if got := env.ActiveSet(c.iter); !reflect.DeepEqual(got, c.active) {
			t.Errorf("ActiveSet(%d) = %v, want %v", c.iter, got, c.active)
		}
	}
	// A zero-capability segment never reaches WorkFactor as a division
	// by zero: the machine is gone, not infinitely slow.
	if got := env.WorkFactor(2, 17); !(got > 0 && !math.IsInf(got, 1)) {
		t.Errorf("WorkFactor during a zero-capability segment = %v, want finite", got)
	}
	// Elastic without any Outage at all: the trace alone suffices.
	env2 := &Env{Speeds: []float64{1, 1}, Traces: []Trace{{Rank: 1, Steps: []TraceStep{{FromIter: 3, Capability: 0}}}}}
	if err := env2.Validate(); err != nil {
		t.Fatal(err)
	}
	if !env2.Elastic() {
		t.Error("trace-only outage not recognized as elastic")
	}
	if env2.Available(1, 5) {
		t.Error("rank 1 available inside a zero-capability segment")
	}
}

// TestTraceValidation: the loud-failure cases.
func TestTraceValidation(t *testing.T) {
	bad := []Env{
		{Speeds: []float64{1, 1}, Traces: []Trace{{Rank: 2, Steps: []TraceStep{{FromIter: 0, Capability: 1}}}}},  // rank out of range
		{Speeds: []float64{1, 1}, Traces: []Trace{{Rank: 1}}},                                                    // no steps
		{Speeds: []float64{1, 1}, Traces: []Trace{{Rank: 1, Steps: []TraceStep{{FromIter: 0, Capability: -1}}}}}, // negative capability
		{Speeds: []float64{1, 1}, Traces: []Trace{{Rank: 0, Steps: []TraceStep{{FromIter: 0, Capability: 0}}}}},  // coordinator taken away
		{Speeds: []float64{1, 1}, Traces: []Trace{{Rank: 1, Steps: []TraceStep{{FromIter: -1, Capability: 1}}}}}, // negative iteration
		{Speeds: []float64{1, 1}, Traces: []Trace{{Rank: 1, Steps: []TraceStep{
			{FromIter: 5, Capability: 1}, {FromIter: 5, Capability: 2},
		}}}}, // non-ascending steps
	}
	for i, env := range bad {
		if err := env.Validate(); err == nil {
			t.Errorf("case %d: invalid trace accepted: %+v", i, env.Traces)
		}
	}
}

// TestTraceJSONRoundTrip: a scenario file carrying traces decodes into
// the same environment it encodes to, and unknown fields anywhere —
// including inside trace steps — are rejected loudly.
func TestTraceJSONRoundTrip(t *testing.T) {
	env := &Env{
		Speeds: []float64{1, 0.5, 2},
		Loads:  []Load{{Rank: 1, Factor: 3, FromIter: 0, UntilIter: 40}},
		Outages: []Outage{
			{Rank: 2, FromIter: 20, UntilIter: 30},
		},
		Traces: []Trace{{Rank: 1, Steps: []TraceStep{
			{FromIter: 10, Capability: 0.5},
			{FromIter: 30, Capability: 1},
		}}},
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Errorf("round trip changed the environment:\n%+v\nvs\n%+v", got, env)
	}
	// Clone must deep-copy trace steps: mutating the clone leaves the
	// original untouched.
	cl := got.Clone()
	cl.Traces[0].Steps[0].Capability = 99
	if got.Traces[0].Steps[0].Capability == 99 {
		t.Error("Clone aliases trace steps")
	}

	for _, bad := range []string{
		`{"speeds":[1,1],"traces":[{"rank":1,"steps":[{"fromIter":0,"capability":1,"oops":2}]}]}`,
		`{"speeds":[1,1],"traces":[{"rank":1,"stepz":[]}]}`,
		`{"speeds":[1,1],"tracez":[]}`,
	} {
		if _, err := FromJSON([]byte(bad)); err == nil {
			t.Errorf("unknown field accepted: %s", bad)
		}
	}
	// And validation applies to decoded files too.
	if _, err := FromJSON([]byte(`{"speeds":[1,1],"traces":[{"rank":0,"steps":[{"fromIter":0,"capability":0}]}]}`)); err == nil {
		t.Error("decoded trace taking the coordinator away was accepted")
	}
}
