package hetero

import (
	"math"
	"testing"
)

func TestUniform(t *testing.T) {
	env := Uniform(4)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if env.P() != 4 {
		t.Fatalf("P = %d", env.P())
	}
	for r := 0; r < 4; r++ {
		if f := env.WorkFactor(r, 0); f != 1 {
			t.Errorf("WorkFactor(%d) = %v, want 1", r, f)
		}
	}
}

func TestPaperAdaptive(t *testing.T) {
	env := PaperAdaptive(5, 3)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if f := env.WorkFactor(0, 0); f != 3 {
		t.Errorf("loaded workstation factor = %v, want 3", f)
	}
	if f := env.WorkFactor(0, 499); f != 3 {
		t.Errorf("load should persist (factor = %v)", f)
	}
	for r := 1; r < 5; r++ {
		if f := env.WorkFactor(r, 0); f != 1 {
			t.Errorf("unloaded workstation %d factor = %v", r, f)
		}
	}
}

func TestLoadWindow(t *testing.T) {
	env := Uniform(2)
	env.Loads = []Load{{Rank: 1, Factor: 2, FromIter: 10, UntilIter: 20}}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		iter int
		want float64
	}{
		{0, 1}, {9, 1}, {10, 2}, {19, 2}, {20, 1}, {100, 1},
	}
	for _, c := range cases {
		if f := env.WorkFactor(1, c.iter); f != c.want {
			t.Errorf("iter %d: factor %v, want %v", c.iter, f, c.want)
		}
	}
}

func TestOverlappingLoadsMultiply(t *testing.T) {
	env := Uniform(1)
	env.Loads = []Load{
		{Rank: 0, Factor: 2, FromIter: 0, UntilIter: 0},
		{Rank: 0, Factor: 3, FromIter: 5, UntilIter: 10},
	}
	if f := env.WorkFactor(0, 7); f != 6 {
		t.Errorf("overlapping loads factor = %v, want 6", f)
	}
	if f := env.WorkFactor(0, 20); f != 2 {
		t.Errorf("after window factor = %v, want 2", f)
	}
}

func TestSpeedsAffectFactor(t *testing.T) {
	env := &Env{Speeds: []float64{1, 0.5, 2}}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if f := env.WorkFactor(1, 0); f != 2 {
		t.Errorf("half-speed factor = %v, want 2", f)
	}
	if f := env.WorkFactor(2, 0); f != 0.5 {
		t.Errorf("double-speed factor = %v, want 0.5", f)
	}
	speeds := env.EffectiveSpeeds(0)
	want := []float64{1, 0.5, 2}
	for i := range want {
		if math.Abs(speeds[i]-want[i]) > 1e-12 {
			t.Errorf("EffectiveSpeeds[%d] = %v, want %v", i, speeds[i], want[i])
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Env{
		{},
		{Speeds: []float64{1, 0}},
		{Speeds: []float64{1}, Loads: []Load{{Rank: 5, Factor: 2}}},
		{Speeds: []float64{1}, Loads: []Load{{Rank: 0, Factor: 0.5}}},
		{Speeds: []float64{1}, Loads: []Load{{Rank: 0, Factor: 2, FromIter: 10, UntilIter: 5}}},
	}
	for i, env := range cases {
		if err := env.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestChangePoints(t *testing.T) {
	env := Uniform(3)
	env.Loads = []Load{
		{Rank: 0, Factor: 2, FromIter: 10, UntilIter: 30},
		{Rank: 1, Factor: 2, FromIter: 20, UntilIter: 0},
		{Rank: 2, Factor: 2, FromIter: 10, UntilIter: 40},
	}
	got := env.ChangePoints()
	want := []int{10, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("ChangePoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChangePoints = %v, want %v", got, want)
		}
	}
	if pts := Uniform(2).ChangePoints(); len(pts) != 0 {
		t.Errorf("static env has change points %v", pts)
	}
}
