// Package hetero simulates the nonuniform and adaptive computational
// environments of paper Section 2. The paper ran on five SUN4
// workstations, one of which was given a constant competing load; here
// each "workstation" is a goroutine whose effective speed is shaped by
// a per-rank speed factor and a schedule of competing loads. The
// solver amplifies its per-element work by the active factor, so the
// load monitor observes exactly what the paper's monitor observed: a
// changed computation time per data item.
package hetero

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Load is a competing load occupying a workstation for a span of
// iterations: while active it multiplies the rank's work per element
// by Factor (Factor 2 halves the effective speed, like one competing
// CPU-bound process on a timeshared workstation).
type Load struct {
	Rank      int
	Factor    float64
	FromIter  int // first iteration the load is active (inclusive)
	UntilIter int // last iteration the load is active (exclusive); <=0 means forever
}

// Outage marks a workstation unavailable — taken away entirely, not
// merely slowed — for a span of iterations: the adaptive environment
// of an elastic run. The runtime retires the rank at the first
// membership boundary at or after FromIter and may re-admit it at the
// first boundary at or after UntilIter; availability is evaluated at
// boundary granularity, so a short outage between boundaries goes
// unnoticed.
type Outage struct {
	Rank      int
	FromIter  int // first iteration the workstation is gone (inclusive)
	UntilIter int // first iteration it is back (exclusive); <=0 means forever
}

// TraceStep is one segment of a capability trace: from FromIter on
// (until the next step), the workstation delivers Capability relative
// to its base speed. Capability 1 is the base, 0.5 is half speed (the
// workstation does twice the work per element), and 0 marks the
// workstation unavailable — an outage segment, making Trace the
// generalization of the Outage window.
type TraceStep struct {
	FromIter   int
	Capability float64
}

// Trace is a piecewise-constant schedule of one workstation's
// delivered capability over the run — the adaptive environment as a
// time series instead of individual load/outage events. Before the
// first step the capability is 1. Several traces may target the same
// rank; their capabilities multiply (and compose with Speeds and
// Loads).
type Trace struct {
	Rank  int
	Steps []TraceStep
}

// At returns the trace's capability at an iteration (1 before the
// first step). Steps are validated to be in ascending FromIter order.
func (tr *Trace) At(iter int) float64 {
	cap := 1.0
	for _, s := range tr.Steps {
		if iter < s.FromIter {
			break
		}
		cap = s.Capability
	}
	return cap
}

// Env describes the simulated cluster.
type Env struct {
	// Speeds[i] is workstation i's base speed relative to workstation
	// 0 (1 = same, 0.5 = half as fast). A slower machine does
	// proportionally more work per element.
	Speeds []float64
	// Loads are competing loads; several may overlap.
	Loads []Load
	// Outages are availability windows during which workstations leave
	// the computation entirely; several may overlap. Workstation 0
	// hosts the membership coordinator and may not have outages.
	Outages []Outage
	// Traces are piecewise-constant capability schedules, composing
	// multiplicatively with Speeds and Loads. A zero-capability segment
	// takes the workstation away entirely (like an Outage), so
	// workstation 0 may not have one.
	Traces []Trace
}

// Uniform returns an environment of p equally fast unloaded
// workstations — the paper's static experiment (Table 4).
func Uniform(p int) *Env {
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = 1
	}
	return &Env{Speeds: speeds}
}

// PaperAdaptive returns the paper's adaptive experiment (Table 5): p
// equally fast workstations with a constant competing load of the
// given factor on workstation 0 from iteration 0 onward. The paper's
// sequential timings (97.61 s unloaded vs 290.93 s loaded) imply a
// factor of about 3.
func PaperAdaptive(p int, factor float64) *Env {
	env := Uniform(p)
	env.Loads = append(env.Loads, Load{Rank: 0, Factor: factor, FromIter: 0, UntilIter: 0})
	return env
}

// Validate checks the environment description.
func (e *Env) Validate() error {
	if len(e.Speeds) == 0 {
		return fmt.Errorf("hetero: no workstations")
	}
	for i, s := range e.Speeds {
		if s <= 0 {
			return fmt.Errorf("hetero: workstation %d has speed %g, want > 0", i, s)
		}
	}
	for i, l := range e.Loads {
		if l.Rank < 0 || l.Rank >= len(e.Speeds) {
			return fmt.Errorf("hetero: load %d targets workstation %d of %d", i, l.Rank, len(e.Speeds))
		}
		if l.Factor < 1 {
			return fmt.Errorf("hetero: load %d has factor %g, want >= 1", i, l.Factor)
		}
		if l.UntilIter > 0 && l.UntilIter <= l.FromIter {
			return fmt.Errorf("hetero: load %d spans [%d,%d)", i, l.FromIter, l.UntilIter)
		}
	}
	for i, o := range e.Outages {
		if o.Rank < 0 || o.Rank >= len(e.Speeds) {
			return fmt.Errorf("hetero: outage %d targets workstation %d of %d", i, o.Rank, len(e.Speeds))
		}
		if o.Rank == 0 {
			return fmt.Errorf("hetero: outage %d targets workstation 0, which hosts the membership coordinator and cannot go away", i)
		}
		if o.UntilIter > 0 && o.UntilIter <= o.FromIter {
			return fmt.Errorf("hetero: outage %d spans [%d,%d)", i, o.FromIter, o.UntilIter)
		}
	}
	for i, tr := range e.Traces {
		if tr.Rank < 0 || tr.Rank >= len(e.Speeds) {
			return fmt.Errorf("hetero: trace %d targets workstation %d of %d", i, tr.Rank, len(e.Speeds))
		}
		if len(tr.Steps) == 0 {
			return fmt.Errorf("hetero: trace %d has no steps", i)
		}
		for j, st := range tr.Steps {
			if st.Capability < 0 {
				return fmt.Errorf("hetero: trace %d step %d has capability %g, want >= 0", i, j, st.Capability)
			}
			if st.Capability == 0 && tr.Rank == 0 {
				return fmt.Errorf("hetero: trace %d step %d takes workstation 0 away, which hosts the membership coordinator and cannot go", i, j)
			}
			if st.FromIter < 0 {
				return fmt.Errorf("hetero: trace %d step %d starts at iteration %d, want >= 0", i, j, st.FromIter)
			}
			if j > 0 && st.FromIter <= tr.Steps[j-1].FromIter {
				return fmt.Errorf("hetero: trace %d steps not in ascending iteration order at step %d", i, j)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the environment.
func (e *Env) Clone() *Env {
	c := &Env{
		Speeds:  append([]float64(nil), e.Speeds...),
		Loads:   append([]Load(nil), e.Loads...),
		Outages: append([]Outage(nil), e.Outages...),
	}
	for _, tr := range e.Traces {
		c.Traces = append(c.Traces, Trace{
			Rank:  tr.Rank,
			Steps: append([]TraceStep(nil), tr.Steps...),
		})
	}
	return c
}

// Elastic reports whether the environment takes workstations away at
// some point — an outage window or a zero-capability trace segment —
// and therefore whether a run over it needs the membership protocol.
func (e *Env) Elastic() bool {
	if len(e.Outages) > 0 {
		return true
	}
	for _, tr := range e.Traces {
		for _, st := range tr.Steps {
			if st.Capability == 0 {
				return true
			}
		}
	}
	return false
}

// Available reports whether a workstation is present at an iteration:
// not inside an outage window and not in a zero-capability trace
// segment.
func (e *Env) Available(rank, iter int) bool {
	for _, o := range e.Outages {
		if o.Rank != rank || iter < o.FromIter {
			continue
		}
		if o.UntilIter > 0 && iter >= o.UntilIter {
			continue
		}
		return false
	}
	for _, tr := range e.Traces {
		if tr.Rank == rank && tr.At(iter) == 0 {
			return false
		}
	}
	return true
}

// ActiveSet returns the ascending ranks available at an iteration —
// the membership the coordinator steers the active world toward.
func (e *Env) ActiveSet(iter int) []int {
	out := make([]int, 0, e.P())
	for r := 0; r < e.P(); r++ {
		if e.Available(r, iter) {
			out = append(out, r)
		}
	}
	return out
}

// FromJSON decodes a scenario file into a validated environment. The
// format mirrors Env: {"speeds": [...], "loads": [{"rank", "factor",
// "fromIter", "untilIter"}], "outages": [{"rank", "fromIter",
// "untilIter"}], "traces": [{"rank", "steps": [{"fromIter",
// "capability"}]}]}. Unknown fields are rejected so a typo fails
// loudly instead of silently running the wrong scenario.
func FromJSON(data []byte) (*Env, error) {
	var e Env
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("hetero: scenario: %w", err)
	}
	// Decode stops after the first JSON value; trailing content would
	// otherwise be dropped silently — the opposite of failing loudly.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("hetero: scenario: trailing content after the environment object")
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// P returns the number of workstations.
func (e *Env) P() int { return len(e.Speeds) }

// WorkFactor returns the work multiplier for rank at the given
// iteration: 1/speed times the product of active competing-load
// factors, divided by the active trace capabilities. The solver
// repeats its per-element kernel proportionally, so a factor of 3
// makes the workstation behave three times slower. A zero-capability
// trace segment means the workstation is gone, not slow — the
// membership protocol retires it at the next boundary — so until that
// boundary it contributes no extra work factor here (the segment is
// skipped rather than divided by zero).
func (e *Env) WorkFactor(rank, iter int) float64 {
	f := 1 / e.Speeds[rank]
	for _, l := range e.Loads {
		if l.Rank != rank {
			continue
		}
		if iter < l.FromIter {
			continue
		}
		if l.UntilIter > 0 && iter >= l.UntilIter {
			continue
		}
		f *= l.Factor
	}
	for _, tr := range e.Traces {
		if tr.Rank != rank {
			continue
		}
		if cap := tr.At(iter); cap > 0 {
			f /= cap
		}
	}
	return f
}

// EffectiveSpeed returns 1/WorkFactor: the rank's delivered speed at
// the given iteration, the quantity load balancing tries to match the
// partition sizes to.
func (e *Env) EffectiveSpeed(rank, iter int) float64 {
	return 1 / e.WorkFactor(rank, iter)
}

// EffectiveSpeeds returns every rank's delivered speed at an
// iteration.
func (e *Env) EffectiveSpeeds(iter int) []float64 {
	out := make([]float64, e.P())
	for r := range out {
		out[r] = e.EffectiveSpeed(r, iter)
	}
	return out
}

// ChangePoints returns the sorted iterations at which some rank's
// work factor changes — the adaptation instants of an adaptive
// environment.
func (e *Env) ChangePoints() []int {
	set := map[int]bool{}
	for _, l := range e.Loads {
		set[l.FromIter] = true
		if l.UntilIter > 0 {
			set[l.UntilIter] = true
		}
	}
	for _, tr := range e.Traces {
		for _, st := range tr.Steps {
			set[st.FromIter] = true
		}
	}
	out := make([]int, 0, len(set))
	for it := range set {
		out = append(out, it)
	}
	sort.Ints(out)
	return out
}
