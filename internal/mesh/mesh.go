// Package mesh generates the unstructured computational meshes that
// the STANCE experiments run on. The paper's evaluation uses a 30269
// vertex, 44929 edge unstructured mesh (Figure 9) that is not
// available; Paper() substitutes a honeycomb mesh with the same vertex
// count and edge density (|E|/|V| ~ 1.48, average degree ~ 3) so every
// code path — locality transform, inspector, executor, redistribution
// — is exercised at the paper's scale. Additional generators cover
// triangulated grids (degree ~ 6), annular meshes with a hole, and
// random geometric graphs.
package mesh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"stance/internal/geom"
	"stance/internal/graph"
)

// GridTriangulated builds a structured nx x ny grid of vertices,
// connected to 4-neighbors plus one diagonal per cell (triangulating
// each quad), with coordinates optionally jittered by perturb (a
// fraction of the cell size) using the given seed. The result looks
// and behaves like a 2-D finite-element triangulation.
func GridTriangulated(nx, ny int, perturb float64, seed int64) (*graph.Graph, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("mesh: grid needs nx, ny >= 2, got %dx%d", nx, ny)
	}
	n := nx * ny
	id := func(x, y int) int32 { return int32(y*nx + x) }
	var edges []graph.Edge
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y)})
			}
			if y+1 < ny {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x, y+1)})
			}
			if x+1 < nx && y+1 < ny {
				// Alternate diagonal direction for a less regular pattern.
				if (x+y)%2 == 0 {
					edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y+1)})
				} else {
					edges = append(edges, graph.Edge{U: id(x+1, y), V: id(x, y+1)})
				}
			}
		}
	}
	coords := make([]geom.Point, n)
	rng := rand.New(rand.NewSource(seed))
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			px := float64(x)
			py := float64(y)
			if perturb > 0 {
				px += (rng.Float64() - 0.5) * perturb
				py += (rng.Float64() - 0.5) * perturb
			}
			coords[id(x, y)] = geom.Point{X: px, Y: py}
		}
	}
	return graph.FromEdges(n, edges, coords)
}

// Honeycomb builds a rows x cols brick-wall (hexagonal-lattice) mesh:
// every vertex links to its left/right neighbors in the row, and to
// one vertical neighbor in alternating columns. Interior degree is 3,
// giving |E| ~ 1.5 |V|, the edge density of the paper's mesh.
func Honeycomb(rows, cols int) (*graph.Graph, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("mesh: honeycomb needs rows, cols >= 2, got %dx%d", rows, cols)
	}
	n := rows * cols
	id := func(r, c int) int32 { return int32(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			// Vertical bonds on alternating columns per row parity
			// (the brick-wall pattern).
			if r+1 < rows && (r+c)%2 == 0 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	coords := make([]geom.Point, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Offset alternate rows slightly so the lattice is honeycomb-like.
			off := 0.0
			if r%2 == 1 {
				off = 0.5
			}
			coords[id(r, c)] = geom.Point{X: float64(c) + off, Y: float64(r) * 0.866}
		}
	}
	return graph.FromEdges(n, edges, coords)
}

// PaperVertices and PaperEdges are the size of the mesh in the paper's
// evaluation (Section 5): 30269 vertices and 44929 edges.
const (
	PaperVertices = 30269
	PaperEdges    = 44929
)

// Paper returns the substitute for the paper's evaluation mesh: a
// honeycomb with exactly PaperVertices vertices and an edge count
// within ~1% of PaperEdges. See DESIGN.md for the substitution
// rationale.
func Paper() *graph.Graph {
	// 131 * 231 = 30261; add a final partial row to land exactly on
	// 30269 by attaching 8 extra vertices in a chain to the last row.
	const rows, cols = 131, 231
	g, err := Honeycomb(rows, cols)
	if err != nil {
		panic("mesh: internal honeycomb failure: " + err.Error())
	}
	extra := PaperVertices - rows*cols
	if extra < 0 {
		panic("mesh: paper mesh base too large")
	}
	edges := g.Edges()
	coords := append([]geom.Point(nil), g.Coords...)
	prev := int32(rows*cols - 1)
	for i := 0; i < extra; i++ {
		v := int32(rows*cols + i)
		edges = append(edges, graph.Edge{U: prev, V: v})
		coords = append(coords, geom.Point{X: float64(cols + i), Y: float64(rows-1) * 0.866})
		prev = v
	}
	pg, err := graph.FromEdges(PaperVertices, edges, coords)
	if err != nil {
		panic("mesh: paper mesh construction failed: " + err.Error())
	}
	return pg
}

// Annulus builds a mesh on a ring-shaped domain (a disk with a hole,
// the classic airfoil-like test geometry): rings concentric circles of
// segs vertices each, with circumferential and radial edges.
func Annulus(rings, segs int) (*graph.Graph, error) {
	if rings < 2 || segs < 3 {
		return nil, fmt.Errorf("mesh: annulus needs rings >= 2, segs >= 3, got %d, %d", rings, segs)
	}
	n := rings * segs
	id := func(r, s int) int32 { return int32(r*segs + s) }
	var edges []graph.Edge
	for r := 0; r < rings; r++ {
		for s := 0; s < segs; s++ {
			edges = append(edges, graph.Edge{U: id(r, s), V: id(r, (s+1)%segs)})
			if r+1 < rings {
				edges = append(edges, graph.Edge{U: id(r, s), V: id(r+1, s)})
				// Diagonal to triangulate the quad.
				edges = append(edges, graph.Edge{U: id(r, s), V: id(r+1, (s+1)%segs)})
			}
		}
	}
	coords := make([]geom.Point, n)
	for r := 0; r < rings; r++ {
		radius := 1 + float64(r)/float64(rings-1)
		for s := 0; s < segs; s++ {
			ang := 2 * math.Pi * float64(s) / float64(segs)
			coords[id(r, s)] = geom.Point{X: radius * math.Cos(ang), Y: radius * math.Sin(ang)}
		}
	}
	return graph.FromEdges(n, edges, coords)
}

// RandomGeometric builds a connected random geometric graph: n points
// uniform in the unit square, edges between pairs closer than radius.
// Connectivity is guaranteed by linking each point to its nearest
// already-placed neighbor. Useful as an adversarial irregular input.
func RandomGeometric(n int, radius float64, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("mesh: random geometric graph needs n >= 2, got %d", n)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("mesh: radius must be positive, got %v", radius)
	}
	rng := rand.New(rand.NewSource(seed))
	coords := make([]geom.Point, n)
	for i := range coords {
		coords[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	// Grid-bucket the points so neighbor search is near-linear.
	cell := radius
	if cell > 1 {
		cell = 1
	}
	nb := int(1/cell) + 1
	buckets := make(map[[2]int][]int32)
	key := func(p geom.Point) [2]int {
		kx := int(p.X / cell)
		ky := int(p.Y / cell)
		if kx >= nb {
			kx = nb - 1
		}
		if ky >= nb {
			ky = nb - 1
		}
		return [2]int{kx, ky}
	}
	type pair struct{ u, v int32 }
	seen := map[pair]bool{}
	var edges []graph.Edge
	addEdge := func(u, v int32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return
		}
		seen[pair{u, v}] = true
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	for i := int32(0); int(i) < n; i++ {
		k := key(coords[i])
		nearest := int32(-1)
		nearestDist := math.Inf(1)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{k[0] + dx, k[1] + dy}] {
					d := geom.Dist(coords[i], coords[j])
					if d <= radius {
						addEdge(i, j)
					}
					if d < nearestDist {
						nearest, nearestDist = j, d
					}
				}
			}
		}
		// Connectivity fallback: if nothing within the radius bucket
		// neighborhood, scan all placed points.
		if i > 0 && nearest == -1 {
			for j := int32(0); j < i; j++ {
				d := geom.Dist(coords[i], coords[j])
				if d < nearestDist {
					nearest, nearestDist = j, d
				}
			}
		}
		if i > 0 {
			addEdge(i, nearest)
		}
		buckets[k] = append(buckets[k], i)
	}
	return graph.FromEdges(n, edges, coords)
}

// Stats summarizes a mesh for reporting.
type Stats struct {
	Vertices  int
	Edges     int
	MinDegree int
	MaxDegree int
	AvgDegree float64
	Connected bool
}

// Describe computes summary statistics for g.
func Describe(g *graph.Graph) Stats {
	s := Stats{
		Vertices:  g.N,
		Edges:     g.NumEdges(),
		MaxDegree: g.MaxDegree(),
		Connected: g.Connected(),
	}
	if g.N > 0 {
		s.MinDegree = g.Degree(0)
		for v := 1; v < g.N; v++ {
			if d := g.Degree(v); d < s.MinDegree {
				s.MinDegree = d
			}
		}
		s.AvgDegree = float64(len(g.Adj)) / float64(g.N)
	}
	return s
}

// SortEdges orders an edge list lexicographically; handy for
// deterministic golden tests.
func SortEdges(edges []graph.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}
