package mesh

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGridTriangulated(t *testing.T) {
	g, err := GridTriangulated(4, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 12 {
		t.Fatalf("N = %d, want 12", g.N)
	}
	// Edges: horizontal 3*3=9, vertical 4*2=8, diagonal 3*2=6.
	if got := g.NumEdges(); got != 23 {
		t.Fatalf("E = %d, want 23", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("grid not connected")
	}
	if g.Coords == nil {
		t.Error("grid should have coordinates")
	}
}

func TestGridPerturbDeterministic(t *testing.T) {
	a, err := GridTriangulated(5, 5, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GridTriangulated(5, 5, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatal("same seed produced different coordinates")
		}
	}
	c, err := GridTriangulated(5, 5, 0.3, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Coords {
		if a.Coords[i] != c.Coords[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical coordinates")
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := GridTriangulated(1, 5, 0, 0); err == nil {
		t.Error("nx=1 accepted")
	}
	if _, err := GridTriangulated(5, 1, 0, 0); err == nil {
		t.Error("ny=1 accepted")
	}
}

func TestHoneycombDegreeProfile(t *testing.T) {
	g, err := Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("honeycomb not connected")
	}
	if max := g.MaxDegree(); max > 3 {
		t.Errorf("honeycomb MaxDegree = %d, want <= 3", max)
	}
	ratio := float64(g.NumEdges()) / float64(g.N)
	if ratio < 1.3 || ratio > 1.55 {
		t.Errorf("honeycomb |E|/|V| = %.3f, want ~1.5", ratio)
	}
}

func TestHoneycombErrors(t *testing.T) {
	if _, err := Honeycomb(1, 5); err == nil {
		t.Error("rows=1 accepted")
	}
	if _, err := Honeycomb(5, 1); err == nil {
		t.Error("cols=1 accepted")
	}
}

func TestPaperMeshMatchesPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale mesh in -short mode")
	}
	g := Paper()
	if g.N != PaperVertices {
		t.Fatalf("Paper mesh has %d vertices, want %d", g.N, PaperVertices)
	}
	e := g.NumEdges()
	// Within ~1.5% of the paper's 44929 edges.
	if math.Abs(float64(e-PaperEdges))/float64(PaperEdges) > 0.015 {
		t.Errorf("Paper mesh has %d edges, want within 1.5%% of %d", e, PaperEdges)
	}
	if !g.Connected() {
		t.Error("Paper mesh not connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnulus(t *testing.T) {
	g, err := Annulus(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 24 {
		t.Fatalf("N = %d, want 24", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("annulus not connected")
	}
	// circumferential 3*8, radial 2*8, diagonal 2*8
	if got := g.NumEdges(); got != 56 {
		t.Errorf("E = %d, want 56", got)
	}
}

func TestAnnulusErrors(t *testing.T) {
	if _, err := Annulus(1, 8); err == nil {
		t.Error("rings=1 accepted")
	}
	if _, err := Annulus(3, 2); err == nil {
		t.Error("segs=2 accepted")
	}
}

func TestRandomGeometricConnected(t *testing.T) {
	for _, n := range []int{10, 100, 500} {
		g, err := RandomGeometric(n, 0.08, 7)
		if err != nil {
			t.Fatal(err)
		}
		if g.N != n {
			t.Fatalf("N = %d, want %d", g.N, n)
		}
		if !g.Connected() {
			t.Errorf("random geometric graph n=%d not connected", n)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomGeometricErrors(t *testing.T) {
	if _, err := RandomGeometric(1, 0.1, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RandomGeometric(10, 0, 0); err == nil {
		t.Error("radius=0 accepted")
	}
}

func TestDescribe(t *testing.T) {
	g, err := Honeycomb(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := Describe(g)
	if s.Vertices != 16 || s.Edges != g.NumEdges() || !s.Connected {
		t.Errorf("Describe = %+v", s)
	}
	if s.MinDegree < 1 || s.MaxDegree > 3 {
		t.Errorf("degree range [%d,%d]", s.MinDegree, s.MaxDegree)
	}
	if s.AvgDegree <= 0 {
		t.Error("AvgDegree should be positive")
	}
}

func TestIORoundTrip(t *testing.T) {
	g, err := GridTriangulated(6, 5, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d -> %d/%d", g.N, g.NumEdges(), g2.N, g2.NumEdges())
	}
	for v := 0; v < g.N; v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
	for i := range g.Coords {
		if g.Coords[i] != g2.Coords[i] {
			t.Fatalf("coord mismatch at %d", i)
		}
	}
}

func TestIONoCoords(t *testing.T) {
	g, err := Honeycomb(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	g.Coords = nil
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Coords != nil {
		t.Error("expected nil coords")
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Error("edge count changed")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"not-a-mesh\n",
		"stance-mesh 2\n1 0 0\n",
		"stance-mesh 1\n-1 0 0\n",
		"stance-mesh 1\n2 1 0\n",        // missing edge line
		"stance-mesh 1\n2 1 1\n0 0 0\n", // missing second coord
		"stance-mesh 1\n2 0 9\n",        // bad hasCoords
		"stance-mesh 1\n2 1 0\n0 5\n",   // edge out of range
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
}

func TestSortEdges(t *testing.T) {
	g, _ := Honeycomb(3, 3)
	edges := g.Edges()
	// Shuffle-ish: reverse.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	SortEdges(edges)
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatal("edges not sorted")
		}
	}
}
