package mesh

import (
	"bufio"
	"fmt"
	"io"

	"stance/internal/geom"
	"stance/internal/graph"
)

// The text format is a minimal unstructured-mesh interchange format:
//
//	stance-mesh 1
//	<nVertices> <nEdges> <hasCoords:0|1>
//	x y z                (nVertices lines, if hasCoords)
//	u v                  (nEdges lines)
//
// It stands in for the mesh files a user of the original library would
// have read from disk on each workstation.

// Write serializes g in the stance-mesh text format.
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	hasCoords := 0
	if g.Coords != nil {
		hasCoords = 1
	}
	if _, err := fmt.Fprintf(bw, "stance-mesh 1\n%d %d %d\n", g.N, g.NumEdges(), hasCoords); err != nil {
		return err
	}
	if g.Coords != nil {
		for _, p := range g.Coords {
			if _, err := fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a mesh in the stance-mesh text format.
func Read(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	var version int
	if _, err := fmt.Fscanf(br, "stance-mesh %d\n", &version); err != nil {
		return nil, fmt.Errorf("mesh: bad header: %w", err)
	}
	if version != 1 {
		return nil, fmt.Errorf("mesh: unsupported version %d", version)
	}
	var n, e, hasCoords int
	if _, err := fmt.Fscanf(br, "%d %d %d\n", &n, &e, &hasCoords); err != nil {
		return nil, fmt.Errorf("mesh: bad size line: %w", err)
	}
	if n < 0 || e < 0 || hasCoords < 0 || hasCoords > 1 {
		return nil, fmt.Errorf("mesh: invalid sizes %d %d %d", n, e, hasCoords)
	}
	var coords []geom.Point
	if hasCoords == 1 {
		coords = make([]geom.Point, n)
		for i := range coords {
			if _, err := fmt.Fscanf(br, "%g %g %g\n", &coords[i].X, &coords[i].Y, &coords[i].Z); err != nil {
				return nil, fmt.Errorf("mesh: bad coord line %d: %w", i, err)
			}
		}
	}
	edges := make([]graph.Edge, e)
	for i := range edges {
		if _, err := fmt.Fscanf(br, "%d %d\n", &edges[i].U, &edges[i].V); err != nil {
			return nil, fmt.Errorf("mesh: bad edge line %d: %w", i, err)
		}
	}
	return graph.FromEdges(n, edges, coords)
}
