package sched

import (
	"fmt"
	"sort"

	"stance/internal/partition"
)

// Schedule is one processor's communication schedule: which of its
// local elements to send to each peer (the paper's "send list") and
// where each element received from a peer lands in the ghost buffer
// (the paper's "permutation list"). The executor replays it every
// iteration.
type Schedule struct {
	Rank   int
	NProcs int
	NLocal int // number of locally owned elements

	// Ghosts maps ghost slot -> global index, sorted ascending.
	// Because owners hold contiguous intervals, sorting by global
	// index groups ghosts by owner and orders each group by the
	// owner's local reference — the agreement Sort1/Sort2 rely on.
	Ghosts []int64

	// SendIdx[q] lists this rank's local indices to send to peer q, in
	// the order they travel on the wire.
	SendIdx [][]int32

	// RecvSlot[q] lists the ghost slots filled by peer q's message, in
	// arrival order.
	RecvSlot [][]int32
}

// NGhosts returns the ghost-buffer length.
func (s *Schedule) NGhosts() int { return len(s.Ghosts) }

// TotalSend returns the number of elements sent per iteration.
func (s *Schedule) TotalSend() int {
	n := 0
	for _, idx := range s.SendIdx {
		n += len(idx)
	}
	return n
}

// TotalRecv returns the number of elements received per iteration.
func (s *Schedule) TotalRecv() int {
	n := 0
	for _, slots := range s.RecvSlot {
		n += len(slots)
	}
	return n
}

// Peers returns the number of distinct peers this rank exchanges with.
func (s *Schedule) Peers() int {
	n := 0
	for q := range s.SendIdx {
		if len(s.SendIdx[q]) > 0 || len(s.RecvSlot[q]) > 0 {
			n++
		}
	}
	return n
}

// Equal reports whether two schedules are identical (used to verify
// that Sort1, Sort2 and Simple agree).
func (s *Schedule) Equal(o *Schedule) bool {
	if s.Rank != o.Rank || s.NProcs != o.NProcs || s.NLocal != o.NLocal {
		return false
	}
	if len(s.Ghosts) != len(o.Ghosts) {
		return false
	}
	for i := range s.Ghosts {
		if s.Ghosts[i] != o.Ghosts[i] {
			return false
		}
	}
	if len(s.SendIdx) != len(o.SendIdx) || len(s.RecvSlot) != len(o.RecvSlot) {
		return false
	}
	for q := range s.SendIdx {
		if len(s.SendIdx[q]) != len(o.SendIdx[q]) {
			return false
		}
		for i := range s.SendIdx[q] {
			if s.SendIdx[q][i] != o.SendIdx[q][i] {
				return false
			}
		}
	}
	for q := range s.RecvSlot {
		if len(s.RecvSlot[q]) != len(o.RecvSlot[q]) {
			return false
		}
		for i := range s.RecvSlot[q] {
			if s.RecvSlot[q][i] != o.RecvSlot[q][i] {
				return false
			}
		}
	}
	return true
}

// Validate checks the schedule's local invariants against a layout:
// send indices in local range, ghost slots a bijection, ghosts sorted,
// every ghost owned by the peer it is received from.
func (s *Schedule) Validate(layout *partition.Layout) error {
	iv := layout.Interval(s.Rank)
	if int64(s.NLocal) != iv.Len() {
		return fmt.Errorf("sched: NLocal %d != interval length %d", s.NLocal, iv.Len())
	}
	for q, idx := range s.SendIdx {
		if q == s.Rank && len(idx) > 0 {
			return fmt.Errorf("sched: schedule sends to itself")
		}
		for _, i := range idx {
			if i < 0 || int(i) >= s.NLocal {
				return fmt.Errorf("sched: send index %d out of local range [0,%d)", i, s.NLocal)
			}
		}
	}
	for i := 1; i < len(s.Ghosts); i++ {
		if s.Ghosts[i-1] >= s.Ghosts[i] {
			return fmt.Errorf("sched: ghosts not strictly sorted at %d", i)
		}
	}
	seen := make([]bool, len(s.Ghosts))
	for q, slots := range s.RecvSlot {
		if q == s.Rank && len(slots) > 0 {
			return fmt.Errorf("sched: schedule receives from itself")
		}
		for _, slot := range slots {
			if slot < 0 || int(slot) >= len(s.Ghosts) {
				return fmt.Errorf("sched: ghost slot %d out of range [0,%d)", slot, len(s.Ghosts))
			}
			if seen[slot] {
				return fmt.Errorf("sched: ghost slot %d filled twice", slot)
			}
			seen[slot] = true
			owner, err := layout.Owner(s.Ghosts[slot])
			if err != nil {
				return err
			}
			if owner != q {
				return fmt.Errorf("sched: ghost %d received from %d but owned by %d",
					s.Ghosts[slot], q, owner)
			}
		}
	}
	for slot, ok := range seen {
		if !ok {
			return fmt.Errorf("sched: ghost slot %d never filled", slot)
		}
	}
	return nil
}

// GhostSlot returns the ghost slot of a global index via binary
// search, or -1 if the index is not a ghost.
func (s *Schedule) GhostSlot(global int64) int {
	i := sort.Search(len(s.Ghosts), func(i int) bool { return s.Ghosts[i] >= global })
	if i < len(s.Ghosts) && s.Ghosts[i] == global {
		return i
	}
	return -1
}
