package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/mesh"
	"stance/internal/partition"
)

// refsFor extracts rank's access pattern from a (transformed) global
// graph under a layout: local element u reads all neighbors of global
// vertex Interval.Lo+u.
func refsFor(t testing.TB, g *graph.Graph, layout *partition.Layout, rank int) Refs {
	t.Helper()
	iv := layout.Interval(rank)
	r := Refs{Xadj: []int32{0}}
	for gg := iv.Lo; gg < iv.Hi; gg++ {
		for _, w := range g.Neighbors(int(gg)) {
			r.Adj = append(r.Adj, int64(w))
		}
		r.Xadj = append(r.Xadj, int32(len(r.Adj)))
	}
	return r
}

// grid3 builds the 3x3 4-neighbor grid used by the worked example, in
// the spirit of the paper's Figure 4 (9 nodes on 3 processors with
// symmetric accesses).
func grid3(t *testing.T) *graph.Graph {
	t.Helper()
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 6, V: 7}, {U: 7, V: 8},
		{U: 0, V: 3}, {U: 1, V: 4}, {U: 2, V: 5}, {U: 3, V: 6}, {U: 4, V: 7}, {U: 5, V: 8},
	}
	g, err := graph.FromEdges(9, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFigure4StyleWorkedExample(t *testing.T) {
	g := grid3(t)
	layout, err := partition.NewUniform(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Middle processor: owns globals {3,4,5}, bordered on both sides.
	s, err := BuildSort1(layout, 1, refsFor(t, g, layout, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(layout); err != nil {
		t.Fatal(err)
	}
	wantGhosts := []int64{0, 1, 2, 6, 7, 8}
	if len(s.Ghosts) != len(wantGhosts) {
		t.Fatalf("ghosts = %v", s.Ghosts)
	}
	for i := range wantGhosts {
		if s.Ghosts[i] != wantGhosts[i] {
			t.Fatalf("ghosts = %v, want %v", s.Ghosts, wantGhosts)
		}
	}
	wantSend := map[int][]int32{0: {0, 1, 2}, 2: {0, 1, 2}}
	for q, want := range wantSend {
		got := s.SendIdx[q]
		if len(got) != len(want) {
			t.Fatalf("SendIdx[%d] = %v, want %v", q, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("SendIdx[%d] = %v, want %v", q, got, want)
			}
		}
	}
	wantRecv := map[int][]int32{0: {0, 1, 2}, 2: {3, 4, 5}}
	for q, want := range wantRecv {
		got := s.RecvSlot[q]
		if len(got) != len(want) {
			t.Fatalf("RecvSlot[%d] = %v, want %v", q, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RecvSlot[%d] = %v, want %v", q, got, want)
			}
		}
	}
	if s.TotalSend() != 6 || s.TotalRecv() != 6 || s.Peers() != 2 || s.NGhosts() != 6 {
		t.Errorf("stats: send=%d recv=%d peers=%d ghosts=%d",
			s.TotalSend(), s.TotalRecv(), s.Peers(), s.NGhosts())
	}
	// Edge processor: owns {0,1,2}, one neighbor only.
	s0, err := BuildSort1(layout, 0, refsFor(t, g, layout, 0))
	if err != nil {
		t.Fatal(err)
	}
	if s0.Peers() != 1 || s0.NGhosts() != 3 {
		t.Errorf("rank 0: peers=%d ghosts=%d", s0.Peers(), s0.NGhosts())
	}
}

func TestSort1EqualsSort2(t *testing.T) {
	meshes := map[string]*graph.Graph{}
	var err error
	meshes["grid"], err = mesh.GridTriangulated(12, 9, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	meshes["honeycomb"], err = mesh.Honeycomb(8, 13)
	if err != nil {
		t.Fatal(err)
	}
	meshes["random"], err = mesh.RandomGeometric(150, 0.12, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for name, g := range meshes {
		for _, p := range []int{1, 2, 3, 5} {
			w := make([]float64, p)
			for i := range w {
				w[i] = rng.Float64() + 0.2
			}
			layout, err := partition.NewBlock(int64(g.N), w)
			if err != nil {
				t.Fatal(err)
			}
			for rank := 0; rank < p; rank++ {
				refs := refsFor(t, g, layout, rank)
				s1, err := BuildSort1(layout, rank, refs)
				if err != nil {
					t.Fatalf("%s p=%d rank=%d sort1: %v", name, p, rank, err)
				}
				s2, err := BuildSort2(layout, rank, refs)
				if err != nil {
					t.Fatalf("%s p=%d rank=%d sort2: %v", name, p, rank, err)
				}
				if !s1.Equal(s2) {
					t.Fatalf("%s p=%d rank=%d: sort1 != sort2", name, p, rank)
				}
				if err := s1.Validate(layout); err != nil {
					t.Fatalf("%s p=%d rank=%d: %v", name, p, rank, err)
				}
			}
		}
	}
}

func TestSimpleEqualsSort2(t *testing.T) {
	g, err := mesh.GridTriangulated(10, 10, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 5} {
		layout, err := partition.NewBlock(int64(g.N), weights(p))
		if err != nil {
			t.Fatal(err)
		}
		ws, err := comm.NewWorld(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		schedules := make([]*Schedule, p)
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			s, err := BuildSimple(c, layout, refsFor(t, g, layout, c.Rank()))
			if err != nil {
				return err
			}
			schedules[c.Rank()] = s
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		comm.CloseWorld(ws)
		for rank := 0; rank < p; rank++ {
			want, err := BuildSort2(layout, rank, refsFor(t, g, layout, rank))
			if err != nil {
				t.Fatal(err)
			}
			if !schedules[rank].Equal(want) {
				t.Fatalf("p=%d rank=%d: simple != sort2", p, rank)
			}
		}
	}
}

func weights(p int) []float64 {
	w := make([]float64, p)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Cross-rank pairing: rank a's send list to b must name exactly the
// elements rank b expects from a, in the same order.
func TestSchedulesPairUp(t *testing.T) {
	g, err := mesh.Honeycomb(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	p := 4
	layout, err := partition.NewBlock(int64(g.N), []float64{1, 2, 1.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	schedules := make([]*Schedule, p)
	for rank := 0; rank < p; rank++ {
		schedules[rank], err = BuildSort2(layout, rank, refsFor(t, g, layout, rank))
		if err != nil {
			t.Fatal(err)
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			if a == b {
				continue
			}
			send := schedules[a].SendIdx[b]
			recv := schedules[b].RecvSlot[a]
			if len(send) != len(recv) {
				t.Fatalf("send %d->%d has %d elements, recv expects %d", a, b, len(send), len(recv))
			}
			ivA := layout.Interval(a)
			for i := range send {
				sentGlobal := ivA.Lo + int64(send[i])
				wantGlobal := schedules[b].Ghosts[recv[i]]
				if sentGlobal != wantGlobal {
					t.Fatalf("transfer %d->%d element %d: sends global %d, receiver expects %d",
						a, b, i, sentGlobal, wantGlobal)
				}
			}
		}
	}
}

func TestValidateCatchesBadSchedules(t *testing.T) {
	g := grid3(t)
	layout, _ := partition.NewUniform(9, 3)
	base, err := BuildSort2(layout, 1, refsFor(t, g, layout, 1))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(f func(*Schedule)) *Schedule {
		s := *base
		s.SendIdx = append([][]int32(nil), base.SendIdx...)
		for q := range s.SendIdx {
			s.SendIdx[q] = append([]int32(nil), base.SendIdx[q]...)
		}
		s.RecvSlot = append([][]int32(nil), base.RecvSlot...)
		for q := range s.RecvSlot {
			s.RecvSlot[q] = append([]int32(nil), base.RecvSlot[q]...)
		}
		s.Ghosts = append([]int64(nil), base.Ghosts...)
		f(&s)
		return &s
	}
	cases := map[string]*Schedule{
		"send out of range": corrupt(func(s *Schedule) { s.SendIdx[0][0] = 99 }),
		"slot out of range": corrupt(func(s *Schedule) { s.RecvSlot[0][0] = 99 }),
		"slot duplicated":   corrupt(func(s *Schedule) { s.RecvSlot[0][1] = s.RecvSlot[0][0] }),
		"ghosts unsorted":   corrupt(func(s *Schedule) { s.Ghosts[0], s.Ghosts[1] = s.Ghosts[1], s.Ghosts[0] }),
		"wrong owner":       corrupt(func(s *Schedule) { s.RecvSlot[0], s.RecvSlot[2] = s.RecvSlot[2], s.RecvSlot[0] }),
		"self send":         corrupt(func(s *Schedule) { s.SendIdx[1] = []int32{0} }),
	}
	for name, s := range cases {
		if err := s.Validate(layout); err == nil {
			t.Errorf("%s: not caught", name)
		}
	}
	if err := base.Validate(layout); err != nil {
		t.Errorf("pristine schedule rejected: %v", err)
	}
}

func TestRefsValidate(t *testing.T) {
	layout, _ := partition.NewUniform(9, 3)
	bad := []Refs{
		{},                                     // empty
		{Xadj: []int32{0, 1}, Adj: []int64{1}}, // wrong local count
		{Xadj: []int32{0, 1, 2, 5}, Adj: []int64{1, 2}}, // xadj/adj mismatch
		{Xadj: []int32{0, 1, 1, 1}, Adj: []int64{99}},   // ref out of range
	}
	for i, r := range bad {
		if _, err := BuildSort2(layout, 0, r); err == nil {
			t.Errorf("bad refs %d accepted", i)
		}
	}
}

func TestGhostSlot(t *testing.T) {
	g := grid3(t)
	layout, _ := partition.NewUniform(9, 3)
	s, err := BuildSort2(layout, 1, refsFor(t, g, layout, 1))
	if err != nil {
		t.Fatal(err)
	}
	for slot, ghost := range s.Ghosts {
		if got := s.GhostSlot(ghost); got != slot {
			t.Errorf("GhostSlot(%d) = %d, want %d", ghost, got, slot)
		}
	}
	if s.GhostSlot(4) != -1 { // 4 is locally owned
		t.Error("locally owned index reported as ghost")
	}
}

func TestSingleProcessorNoGhosts(t *testing.T) {
	g := grid3(t)
	layout, _ := partition.NewUniform(9, 1)
	s, err := BuildSort2(layout, 0, refsFor(t, g, layout, 0))
	if err != nil {
		t.Fatal(err)
	}
	if s.NGhosts() != 0 || s.TotalSend() != 0 || s.Peers() != 0 {
		t.Errorf("single-processor schedule not empty: %+v", s)
	}
}

func TestDedupHashMatchesMap(t *testing.T) {
	f := func(refs []int64) bool {
		a := DedupHash(refs)
		b := DedupMap(refs)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDedupKeepsFirstSeenOrder(t *testing.T) {
	refs := []int64{5, 3, 5, 7, 3, 3, 1, 7}
	want := []int64{5, 3, 7, 1}
	got := DedupHash(refs)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestHashSetGrowth(t *testing.T) {
	h := newHashSet(2)
	const n = 10000
	for i := int64(0); i < n; i++ {
		if !h.Insert(i * 1000003) {
			t.Fatalf("fresh key %d reported duplicate", i)
		}
	}
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if !h.Contains(i * 1000003) {
			t.Fatalf("key %d lost after growth", i)
		}
		if h.Insert(i * 1000003) {
			t.Fatalf("duplicate key %d accepted", i)
		}
	}
	if h.Contains(999) {
		t.Error("absent key reported present")
	}
}

func TestHashSetNegativeKeys(t *testing.T) {
	h := newHashSet(4)
	keys := []int64{-1, -999999, 0, 42, -42}
	for _, k := range keys {
		if !h.Insert(k) {
			t.Errorf("Insert(%d) reported duplicate", k)
		}
	}
	for _, k := range keys {
		if !h.Contains(k) {
			t.Errorf("Contains(%d) = false", k)
		}
	}
}

// Sorting-based schedules with heavily skewed weights still pair up.
func TestSkewedWeights(t *testing.T) {
	g, err := mesh.Honeycomb(6, 20)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := partition.NewBlock(int64(g.N), []float64{0.01, 0.97, 0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		s, err := BuildSort2(layout, rank, refsFor(t, g, layout, rank))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(layout); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// Ghost ordering invariant: within each receive segment the globals
// are ascending, matching the sender's ascending local traversal.
func TestRecvSegmentsSortedByGlobal(t *testing.T) {
	g, err := mesh.GridTriangulated(9, 9, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := partition.NewBlock(int64(g.N), []float64{2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 3; rank++ {
		s, err := BuildSort1(layout, rank, refsFor(t, g, layout, rank))
		if err != nil {
			t.Fatal(err)
		}
		for q, slots := range s.RecvSlot {
			globals := make([]int64, len(slots))
			for i, slot := range slots {
				globals[i] = s.Ghosts[slot]
			}
			if !sort.SliceIsSorted(globals, func(i, j int) bool { return globals[i] < globals[j] }) {
				t.Fatalf("rank %d recv segment from %d not sorted: %v", rank, q, globals)
			}
		}
	}
}
