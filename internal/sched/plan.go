package sched

import (
	"fmt"

	"stance/internal/comm"
)

// Plan is a Schedule compiled for replay. The executor re-runs the
// inspector's schedule every iteration (Phase C), so its constant
// factors dominate end-to-end runtime; Compile flattens the schedule
// into per-peer pack/unpack index tables plus persistent wire buffers,
// so a steady-state Exchange or ScatterAdd allocates nothing: values
// are packed straight from the vector into the wire buffer and
// unpacked straight into the ghost section, with no intermediate
// []float64 and no per-call buffer churn.
//
// A Plan is bound to the Schedule it was compiled from. Whenever the
// layout or structure changes (Remap, SetGraph) the runtime discards
// it and compiles a fresh one from the rebuilt schedule.
type Plan struct {
	rank   int
	nprocs int
	nlocal int

	// sendPeers/recvPeers list the ranks with non-empty send lists and
	// ghost segments respectively, ascending.
	sendPeers []int
	recvPeers []int

	// local[q] lists the owned-element indices exchanged with peer q —
	// the pack source for Exchange, the accumulate target for
	// ScatterAdd. It aliases the schedule's send lists.
	local [][]int32
	// ghost[q] lists the absolute vector indices (NLocal + slot) of the
	// ghosts received from peer q — the unpack target for Exchange, the
	// pack source for ScatterAdd. Resolving NLocal+slot at compile time
	// removes the per-element offset add from the replay loop.
	ghost [][]int32

	// wire[q] is the persistent send-side wire buffer for messages to
	// peer q, sized at compile time for single-vector operations and
	// grown (then retained) by coalesced multi-vector ones. The receive
	// side needs no counterpart: payloads are unpacked straight from
	// the transport's pooled buffers and Released.
	wire [][]byte

	// pending is the scratch mask handed to comm.RecvAnyOf during the
	// arrival-order drain; held parks payloads that completed out of
	// order until they are applied in deterministic peer order.
	pending []bool
	held    [][]byte

	// interior/boundary split the local index set [0, NLocal) for the
	// overlapped executor: interior elements reference no ghost value,
	// so a kernel can compute them while Exchange messages are still in
	// flight; boundary elements read at least one ghost and must wait
	// for the exchange handle's Wait. Both are ascending; together they partition
	// the local index set exactly. Populated by Classify (core calls it
	// on every rebuild, so the split survives remaps and rebinds on the
	// recompiled plan).
	interior, boundary []int32
	classified         bool
}

// Compile builds the replay plan for a schedule.
func Compile(s *Schedule) *Plan {
	p := &Plan{
		rank:    s.Rank,
		nprocs:  s.NProcs,
		nlocal:  s.NLocal,
		local:   make([][]int32, s.NProcs),
		ghost:   make([][]int32, s.NProcs),
		wire:    make([][]byte, s.NProcs),
		pending: make([]bool, s.NProcs),
		held:    make([][]byte, s.NProcs),
	}
	for q := 0; q < s.NProcs; q++ {
		if idx := s.SendIdx[q]; len(idx) > 0 {
			p.local[q] = idx
			p.sendPeers = append(p.sendPeers, q)
		}
		if slots := s.RecvSlot[q]; len(slots) > 0 {
			g := make([]int32, len(slots))
			for i, slot := range slots {
				g[i] = int32(s.NLocal) + slot
			}
			p.ghost[q] = g
			p.recvPeers = append(p.recvPeers, q)
		}
		// Size the wire buffer once for single-vector replay; the max
		// covers both directions (Exchange packs local, ScatterAdd
		// packs ghost).
		if n := 8 * max(len(p.local[q]), len(p.ghost[q])); n > 0 {
			p.wire[q] = make([]byte, n)
		}
	}
	return p
}

// Classify splits the local index set into interior and boundary
// elements from the localized CSR (references >= NLocal index the
// ghost section): a local element is boundary iff any of its
// references is a ghost. The classification is what the split-phase
// executor computes against — interior work overlaps in-flight
// Exchange messages, boundary work runs after the handle's Wait.
func (p *Plan) Classify(xadj, adj []int32) error {
	if len(xadj) != p.nlocal+1 {
		return fmt.Errorf("sched: classify with %d-row CSR for %d local elements", len(xadj)-1, p.nlocal)
	}
	p.interior = p.interior[:0]
	p.boundary = p.boundary[:0]
	for u := 0; u < p.nlocal; u++ {
		isBoundary := false
		for k := xadj[u]; k < xadj[u+1]; k++ {
			if int(adj[k]) >= p.nlocal {
				isBoundary = true
				break
			}
		}
		if isBoundary {
			p.boundary = append(p.boundary, int32(u))
		} else {
			p.interior = append(p.interior, int32(u))
		}
	}
	p.classified = true
	return nil
}

// Classified reports whether Classify has populated the
// interior/boundary split.
func (p *Plan) Classified() bool { return p.classified }

// Interior returns the local indices that reference no ghost value,
// ascending. Not to be modified; empty until Classify runs.
func (p *Plan) Interior() []int32 { return p.interior }

// Boundary returns the local indices that reference at least one ghost
// value, ascending. Not to be modified; empty until Classify runs.
func (p *Plan) Boundary() []int32 { return p.boundary }

// Rank returns the rank the plan was compiled for.
func (p *Plan) Rank() int { return p.rank }

// NProcs returns the world size.
func (p *Plan) NProcs() int { return p.nprocs }

// NLocal returns the number of locally owned elements.
func (p *Plan) NLocal() int { return p.nlocal }

// SendPeers returns the ranks this plan sends owned values to (and
// receives scatter contributions from), ascending. Not to be modified.
func (p *Plan) SendPeers() []int { return p.sendPeers }

// RecvPeers returns the ranks this plan receives ghost values from
// (and sends scatter contributions to), ascending. Not to be modified.
func (p *Plan) RecvPeers() []int { return p.recvPeers }

// LocalIdx returns peer q's owned-element index table.
func (p *Plan) LocalIdx(q int) []int32 { return p.local[q] }

// GhostIdx returns peer q's absolute ghost index table.
func (p *Plan) GhostIdx(q int) []int32 { return p.ghost[q] }

// Pending resets and returns the plan's scratch peer mask for an
// arrival-order drain. The executor owns it until the operation ends.
func (p *Plan) Pending() []bool {
	for i := range p.pending {
		p.pending[i] = false
	}
	return p.pending
}

// Hold parks a payload that completed out of order until TakeHeld
// applies it in deterministic peer order. The plan takes ownership of
// data until it is taken back.
func (p *Plan) Hold(q int, data []byte) { p.held[q] = data }

// TakeHeld returns and clears peer q's parked payload (nil if none).
func (p *Plan) TakeHeld(q int) []byte {
	d := p.held[q]
	p.held[q] = nil
	return d
}

// Held exposes the plan's parked-payload slots (indexed by peer) for
// the synchronous executor's arrival-order drain. Handle-based ops own
// their per-handle counterpart instead, so several ScatterAdds can be
// in flight without sharing parking space.
func (p *Plan) Held() [][]byte { return p.held }

// wireFor returns peer q's send wire buffer resized to n bytes,
// growing (and retaining) it only when a coalesced operation needs
// more than the compiled single-vector size.
func (p *Plan) wireFor(q, n int) []byte {
	buf := p.wire[q]
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	p.wire[q] = buf
	return buf
}

// PackLocal packs the owned values bound for peer q — every vector's
// segment back to back, vector-major — into the persistent wire buffer
// and returns it (valid until the next pack for q). The Exchange send
// side.
func (p *Plan) PackLocal(q int, vecs [][]float64) []byte {
	return p.pack(q, p.local[q], vecs)
}

// PackGhost packs the ghost-section values bound for peer q (the
// ScatterAdd send side).
func (p *Plan) PackGhost(q int, vecs [][]float64) []byte {
	return p.pack(q, p.ghost[q], vecs)
}

func (p *Plan) pack(q int, idx []int32, vecs [][]float64) []byte {
	seg := 8 * len(idx)
	buf := p.wireFor(q, seg*len(vecs))
	off := 0
	for _, v := range vecs {
		comm.PackF64s(buf[off:off+seg], v, idx)
		off += seg
	}
	return buf
}

// UnpackGhost scatters peer q's Exchange payload into the vectors'
// ghost sections. Safe to apply in arrival order: ghost slots are
// disjoint assignments.
func (p *Plan) UnpackGhost(q int, data []byte, vecs [][]float64) error {
	return p.unpack(q, p.ghost[q], data, vecs, false)
}

// AddLocal accumulates peer q's ScatterAdd payload into the vectors'
// owned elements. Callers must apply peers in a deterministic order:
// several peers may contribute to the same element, and floating-point
// addition is not associative.
func (p *Plan) AddLocal(q int, data []byte, vecs [][]float64) error {
	return p.unpack(q, p.local[q], data, vecs, true)
}

func (p *Plan) unpack(q int, idx []int32, data []byte, vecs [][]float64, add bool) error {
	seg := 8 * len(idx)
	if len(data) != seg*len(vecs) {
		return fmt.Errorf("sched: peer %d sent %d values, plan expects %d",
			q, len(data)/8, len(idx)*len(vecs))
	}
	off := 0
	for _, v := range vecs {
		var err error
		if add {
			err = comm.AddF64s(v, idx, data[off:off+seg])
		} else {
			err = comm.UnpackF64s(v, idx, data[off:off+seg])
		}
		if err != nil {
			return err
		}
		off += seg
	}
	return nil
}
