// Package sched implements the inspector of paper Section 3.2: it
// removes duplicate off-processor references with a hash table and
// builds the communication schedules the executor replays every
// iteration. Three builders are provided, matching the paper's
// Table 3 comparison:
//
//   - Sort1 (schedule_sort1): exploits access symmetry to build the
//     schedule without any communication; send and receive segments
//     are collected in traversal order and then sorted.
//   - Sort2 (schedule_sort2): like Sort1, but local references are
//     traversed in increasing order so the segments are generated
//     pre-sorted and the sort is skipped.
//   - Simple: the baseline that dereferences through a distributed
//     translation table, costing two request/reply message rounds.
package sched

// hashSet is a purpose-built open-addressing hash set for int64 keys,
// the paper's "hash table" for duplicate removal. It exists alongside
// Go's built-in map as a measured ablation (see BenchmarkDedup): the
// inspector runs once per remap, and on meshes with hundreds of
// thousands of references the flat probe table is measurably cheaper.
type hashSet struct {
	slots []int64
	used  []bool
	n     int
	mask  uint64
}

// newHashSet sizes the table for an expected number of keys.
func newHashSet(expect int) *hashSet {
	size := 16
	for size < expect*2 {
		size *= 2
	}
	return &hashSet{
		slots: make([]int64, size),
		used:  make([]bool, size),
		mask:  uint64(size - 1),
	}
}

// fibonacci hashing spreads consecutive keys (common after a locality
// transform) across the table.
func hash64(k int64) uint64 {
	return uint64(k) * 0x9E3779B97F4A7C15
}

// Insert adds k and reports whether it was newly added.
func (h *hashSet) Insert(k int64) bool {
	if 2*(h.n+1) > len(h.slots) {
		h.grow()
	}
	i := hash64(k) & h.mask
	for h.used[i] {
		if h.slots[i] == k {
			return false
		}
		i = (i + 1) & h.mask
	}
	h.used[i] = true
	h.slots[i] = k
	h.n++
	return true
}

// Contains reports whether k is in the set.
func (h *hashSet) Contains(k int64) bool {
	i := hash64(k) & h.mask
	for h.used[i] {
		if h.slots[i] == k {
			return true
		}
		i = (i + 1) & h.mask
	}
	return false
}

// Len returns the number of distinct keys inserted.
func (h *hashSet) Len() int { return h.n }

func (h *hashSet) grow() {
	old := *h
	h.slots = make([]int64, 2*len(old.slots))
	h.used = make([]bool, 2*len(old.used))
	h.mask = uint64(len(h.slots) - 1)
	h.n = 0
	for i, u := range old.used {
		if u {
			h.Insert(old.slots[i])
		}
	}
}

// DedupHash returns the distinct values of refs in first-seen order,
// using the open-addressing hash set.
func DedupHash(refs []int64) []int64 {
	h := newHashSet(len(refs))
	out := make([]int64, 0, len(refs))
	for _, r := range refs {
		if h.Insert(r) {
			out = append(out, r)
		}
	}
	return out
}

// DedupMap is the built-in-map reference implementation of DedupHash.
func DedupMap(refs []int64) []int64 {
	seen := make(map[int64]struct{}, len(refs))
	out := make([]int64, 0, len(refs))
	for _, r := range refs {
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = struct{}{}
		out = append(out, r)
	}
	return out
}
