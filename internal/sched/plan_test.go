package sched

import (
	"math"
	"testing"
)

// planSchedule is a small hand-built schedule for rank 1 of 3:
// sends locals {0,2} to rank 0 and {1} to rank 2; receives 2 ghosts
// from rank 0 (slots 0,1) and 1 from rank 2 (slot 2).
func planSchedule() *Schedule {
	return &Schedule{
		Rank:     1,
		NProcs:   3,
		NLocal:   4,
		Ghosts:   []int64{0, 1, 9},
		SendIdx:  [][]int32{{0, 2}, nil, {1}},
		RecvSlot: [][]int32{{0, 1}, nil, {2}},
	}
}

func TestCompileTables(t *testing.T) {
	p := Compile(planSchedule())
	if got := p.SendPeers(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("SendPeers = %v", got)
	}
	if got := p.RecvPeers(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("RecvPeers = %v", got)
	}
	if got := p.LocalIdx(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("LocalIdx(0) = %v", got)
	}
	// Ghost indices are absolute: NLocal + slot.
	if got := p.GhostIdx(0); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("GhostIdx(0) = %v", got)
	}
	if got := p.GhostIdx(2); len(got) != 1 || got[0] != 6 {
		t.Fatalf("GhostIdx(2) = %v", got)
	}
	if p.Rank() != 1 || p.NProcs() != 3 || p.NLocal() != 4 {
		t.Fatalf("identity = %d/%d/%d", p.Rank(), p.NProcs(), p.NLocal())
	}
}

func TestPlanPackUnpackRoundTrip(t *testing.T) {
	p := Compile(planSchedule())
	// Vector layout: 4 owned + 3 ghosts.
	v := []float64{10, 11, 12, 13, 0, 0, 0}
	buf := p.PackLocal(0, [][]float64{v})
	if len(buf) != 16 {
		t.Fatalf("packed %d bytes, want 16", len(buf))
	}
	// Unpacking the same payload as if it were ghost data from peer 0
	// must land values 10, 12 in slots 0, 1.
	w := make([]float64, 7)
	if err := p.UnpackGhost(0, buf, [][]float64{w}); err != nil {
		t.Fatal(err)
	}
	if w[4] != 10 || w[5] != 12 {
		t.Fatalf("ghost section = %v", w[4:])
	}
	// AddLocal accumulates into the owned elements.
	if err := p.AddLocal(0, buf, [][]float64{w}); err != nil {
		t.Fatal(err)
	}
	if w[0] != 10 || w[2] != 12 {
		t.Fatalf("owned section after add = %v", w[:4])
	}
	// PackGhost reads the ghost section back out.
	g := p.PackGhost(2, [][]float64{w})
	if len(g) != 8 {
		t.Fatalf("ghost pack = %d bytes", len(g))
	}
}

func TestPlanCoalescedLayoutIsVectorMajor(t *testing.T) {
	p := Compile(planSchedule())
	a := []float64{1, 2, 3, 4, 0, 0, 0}
	b := []float64{5, 6, 7, 8, 0, 0, 0}
	buf := p.PackLocal(0, [][]float64{a, b})
	if len(buf) != 32 {
		t.Fatalf("coalesced pack = %d bytes, want 32", len(buf))
	}
	want := []float64{1, 3, 5, 7} // a's segment, then b's
	for i, x := range want {
		bits := uint64(0)
		for j := 0; j < 8; j++ {
			bits |= uint64(buf[8*i+j]) << (8 * j)
		}
		if math.Float64frombits(bits) != x {
			t.Fatalf("wire element %d = %v, want %v", i, math.Float64frombits(bits), x)
		}
	}
}

func TestPlanWireBufferReused(t *testing.T) {
	p := Compile(planSchedule())
	v := make([]float64, 7)
	b1 := p.PackLocal(0, [][]float64{v})
	b2 := p.PackLocal(0, [][]float64{v})
	if &b1[0] != &b2[0] {
		t.Error("single-vector pack did not reuse the wire buffer")
	}
	// A coalesced pack grows the buffer once, then reuses it.
	b3 := p.PackLocal(0, [][]float64{v, v, v})
	b4 := p.PackLocal(0, [][]float64{v, v, v})
	if &b3[0] != &b4[0] {
		t.Error("coalesced pack did not retain the grown buffer")
	}
}

func TestPlanUnpackLengthMismatch(t *testing.T) {
	p := Compile(planSchedule())
	v := make([]float64, 7)
	if err := p.UnpackGhost(0, make([]byte, 8), [][]float64{v}); err == nil {
		t.Error("short payload accepted by UnpackGhost")
	}
	if err := p.AddLocal(0, make([]byte, 24), [][]float64{v}); err == nil {
		t.Error("long payload accepted by AddLocal")
	}
}

func TestPlanPendingAndHold(t *testing.T) {
	p := Compile(planSchedule())
	mask := p.Pending()
	if len(mask) != 3 {
		t.Fatalf("mask length %d", len(mask))
	}
	mask[2] = true
	if got := p.Pending(); got[2] {
		t.Error("Pending did not reset the mask")
	}
	p.Hold(0, []byte{1})
	if d := p.TakeHeld(0); len(d) != 1 {
		t.Fatalf("TakeHeld = %v", d)
	}
	if d := p.TakeHeld(0); d != nil {
		t.Error("TakeHeld did not clear the slot")
	}
}
