package sched

import (
	"fmt"
	"sort"

	"stance/internal/comm"
	"stance/internal/partition"
	"stance/internal/translate"
)

// Message tags used by the Simple strategy's two request/reply rounds.
const (
	TagDerefReq = 0x101
	TagDerefRep = 0x102
	TagSchedReq = 0x103
)

// Refs is one processor's data-access pattern: for each local element
// u (0 <= u < len(Xadj)-1), Adj[Xadj[u]:Xadj[u+1]] are the global
// indices it reads — the indirection array of the paper's Figure 8
// loop, restricted to this processor's iterations.
type Refs struct {
	Xadj []int32
	Adj  []int64
}

// NLocal returns the number of local elements described.
func (r Refs) NLocal() int { return len(r.Xadj) - 1 }

// validate checks structural sanity against the layout.
func (r Refs) validate(layout *partition.Layout, rank int) error {
	if len(r.Xadj) == 0 {
		return fmt.Errorf("sched: empty Xadj")
	}
	if int64(r.NLocal()) != layout.Interval(rank).Len() {
		return fmt.Errorf("sched: refs describe %d elements, layout assigns %d",
			r.NLocal(), layout.Interval(rank).Len())
	}
	if int(r.Xadj[len(r.Xadj)-1]) != len(r.Adj) {
		return fmt.Errorf("sched: Xadj end %d != len(Adj) %d", r.Xadj[len(r.Xadj)-1], len(r.Adj))
	}
	n := layout.N()
	for _, g := range r.Adj {
		if g < 0 || g >= n {
			return fmt.Errorf("sched: global reference %d out of range [0,%d)", g, n)
		}
	}
	return nil
}

// BuildSort1 builds the communication schedule without communication
// (schedule_sort1, Section 3.2): duplicates are removed with a hash
// table, the symmetric-access property determines what each peer
// needs, and both the send list and the ghost (permutation) list are
// sorted afterwards so the two sides agree on message order.
//
// The symmetry assumption is the paper's: if this processor reads
// remote element v from a local element u, the owner of v will read u
// (true of any undirected computational graph, e.g. iterative FEM
// methods).
func BuildSort1(layout *partition.Layout, rank int, refs Refs) (*Schedule, error) {
	return buildSymmetric(layout, rank, refs, true)
}

// BuildSort2 is schedule_sort2: identical to BuildSort1 except local
// references are traversed in increasing order, so each send segment
// is generated already sorted and the send-list sort is skipped.
func BuildSort2(layout *partition.Layout, rank int, refs Refs) (*Schedule, error) {
	return buildSymmetric(layout, rank, refs, false)
}

func buildSymmetric(layout *partition.Layout, rank int, refs Refs, sortSends bool) (*Schedule, error) {
	if err := refs.validate(layout, rank); err != nil {
		return nil, err
	}
	p := layout.P()
	nLocal := refs.NLocal()
	iv := layout.Interval(rank)

	s := &Schedule{
		Rank:     rank,
		NProcs:   p,
		NLocal:   nLocal,
		SendIdx:  make([][]int32, p),
		RecvSlot: make([][]int32, p),
	}

	ghostSet := newHashSet(len(refs.Adj) / 4)
	var ghosts []int64
	// sendSeen[q] deduplicates (peer, local) pairs. For Sort2 the
	// traversal is in increasing local order, so a last-element check
	// replaces the hash probe on the send side.
	var sendSeen []*hashSet
	if sortSends {
		sendSeen = make([]*hashSet, p)
	}

	for u := 0; u < nLocal; u++ {
		for k := refs.Xadj[u]; k < refs.Xadj[u+1]; k++ {
			g := refs.Adj[k]
			if iv.Contains(g) {
				continue // local access, no communication
			}
			owner, _, err := layout.Locate(g)
			if err != nil {
				return nil, err
			}
			if ghostSet.Insert(g) {
				ghosts = append(ghosts, g)
			}
			// Symmetry: owner will need my element u.
			if sortSends {
				if sendSeen[owner] == nil {
					sendSeen[owner] = newHashSet(16)
				}
				if sendSeen[owner].Insert(int64(u)) {
					s.SendIdx[owner] = append(s.SendIdx[owner], int32(u))
				}
			} else {
				idx := s.SendIdx[owner]
				if len(idx) == 0 || idx[len(idx)-1] != int32(u) {
					s.SendIdx[owner] = append(s.SendIdx[owner], int32(u))
				}
			}
		}
	}

	// Sort the ghost list; owners are contiguous intervals, so this
	// groups by owner and orders by the owner's local reference.
	sort.Slice(ghosts, func(i, j int) bool { return ghosts[i] < ghosts[j] })
	s.Ghosts = ghosts

	if sortSends {
		// schedule_sort1's extra pass: sort each send segment.
		for q := range s.SendIdx {
			idx := s.SendIdx[q]
			sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
		}
	}

	if err := fillRecvSlots(s, layout); err != nil {
		return nil, err
	}
	return s, nil
}

// fillRecvSlots assigns each sorted ghost to its owner's receive
// segment, slots in increasing global order.
func fillRecvSlots(s *Schedule, layout *partition.Layout) error {
	for slot, g := range s.Ghosts {
		owner, err := layout.Owner(g)
		if err != nil {
			return err
		}
		if owner == s.Rank {
			return fmt.Errorf("sched: ghost %d is locally owned", g)
		}
		s.RecvSlot[owner] = append(s.RecvSlot[owner], int32(slot))
	}
	return nil
}

// BuildSimple is the baseline strategy of Table 3: address translation
// through a block-distributed translation table, requiring one
// request/reply round to dereference and a second round to tell each
// owner what to send. Unlike Sort1/Sort2 it does not assume symmetric
// accesses. It is a collective: every rank must call it.
//
// The resulting schedule is identical to the sorting-based ones (the
// requests are issued in sorted ghost order), which TestStrategiesAgree
// verifies.
func BuildSimple(c *comm.Comm, layout *partition.Layout, refs Refs) (*Schedule, error) {
	rank := c.Rank()
	if err := refs.validate(layout, rank); err != nil {
		return nil, err
	}
	p := layout.P()
	if c.Size() != p {
		return nil, fmt.Errorf("sched: world size %d != layout processors %d", c.Size(), p)
	}
	nLocal := refs.NLocal()
	iv := layout.Interval(rank)

	s := &Schedule{
		Rank:     rank,
		NProcs:   p,
		NLocal:   nLocal,
		SendIdx:  make([][]int32, p),
		RecvSlot: make([][]int32, p),
	}

	// Deduplicate off-processor references with the hash table.
	ghostSet := newHashSet(len(refs.Adj) / 4)
	var ghosts []int64
	for _, g := range refs.Adj {
		if iv.Contains(g) {
			continue
		}
		if ghostSet.Insert(g) {
			ghosts = append(ghosts, g)
		}
	}
	sort.Slice(ghosts, func(i, j int) bool { return ghosts[i] < ghosts[j] })
	s.Ghosts = ghosts

	// The distributed translation table: this rank's shard.
	dt, err := translate.NewDistributedTable(layout, p, rank)
	if err != nil {
		return nil, err
	}

	// Round 1: dereference every ghost through the owning table shard.
	byShard := make([][]int64, p)
	for _, g := range ghosts {
		shard, err := dt.ShardOf(g)
		if err != nil {
			return nil, err
		}
		byShard[shard] = append(byShard[shard], g)
	}
	for q := 0; q < p; q++ {
		if q == rank {
			continue
		}
		if err := c.Send(q, TagDerefReq, comm.I64sToBytes(byShard[q])); err != nil {
			return nil, err
		}
	}
	// Serve the other ranks' dereference requests from the local shard.
	for q := 0; q < p; q++ {
		if q == rank {
			continue
		}
		data, err := c.Recv(q, TagDerefReq)
		if err != nil {
			return nil, err
		}
		queries, err := comm.BytesToI64s(data)
		if err != nil {
			return nil, err
		}
		reply := make([]int32, 0, 2*len(queries))
		for _, g := range queries {
			e, err := dt.Lookup(g)
			if err != nil {
				return nil, err
			}
			reply = append(reply, e.Proc, e.Local)
		}
		if err := c.Send(q, TagDerefRep, comm.I32sToBytes(reply)); err != nil {
			return nil, err
		}
	}
	// Collect replies; also resolve the locally sharded queries.
	entries := make(map[int64]translate.Entry, len(ghosts))
	for _, g := range byShard[rank] {
		e, err := dt.Lookup(g)
		if err != nil {
			return nil, err
		}
		entries[g] = e
	}
	for q := 0; q < p; q++ {
		if q == rank {
			continue
		}
		data, err := c.Recv(q, TagDerefRep)
		if err != nil {
			return nil, err
		}
		pairs, err := comm.BytesToI32s(data)
		if err != nil {
			return nil, err
		}
		if len(pairs) != 2*len(byShard[q]) {
			return nil, fmt.Errorf("sched: shard %d answered %d entries for %d queries",
				q, len(pairs)/2, len(byShard[q]))
		}
		for i, g := range byShard[q] {
			entries[g] = translate.Entry{Proc: pairs[2*i], Local: pairs[2*i+1]}
		}
	}

	// Round 2: tell each owner which of its local elements we need, in
	// our (sorted) ghost order; what we receive back from each owner
	// fills our ghost segments in that same order.
	requests := make([][]int32, p)
	for slot, g := range ghosts {
		e := entries[g]
		if int(e.Proc) == rank {
			return nil, fmt.Errorf("sched: translation says ghost %d is local", g)
		}
		requests[e.Proc] = append(requests[e.Proc], e.Local)
		s.RecvSlot[e.Proc] = append(s.RecvSlot[e.Proc], int32(slot))
	}
	for q := 0; q < p; q++ {
		if q == rank {
			continue
		}
		if err := c.Send(q, TagSchedReq, comm.I32sToBytes(requests[q])); err != nil {
			return nil, err
		}
	}
	for q := 0; q < p; q++ {
		if q == rank {
			continue
		}
		data, err := c.Recv(q, TagSchedReq)
		if err != nil {
			return nil, err
		}
		wanted, err := comm.BytesToI32s(data)
		if err != nil {
			return nil, err
		}
		for _, local := range wanted {
			if local < 0 || int(local) >= nLocal {
				return nil, fmt.Errorf("sched: peer %d requested local index %d of %d", q, local, nLocal)
			}
		}
		s.SendIdx[q] = wanted
	}
	return s, nil
}
