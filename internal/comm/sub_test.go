package comm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSubCollectives: collectives over a sub-world must renumber and
// pair correctly while a non-member rank stays idle — on both built-in
// transports.
func TestSubCollectives(t *testing.T) {
	for _, transport := range []string{"inproc", "tcp"} {
		t.Run(transport, func(t *testing.T) { testSubCollectives(t, transport) })
	}
}

func testSubCollectives(t *testing.T, transport string) {
	world, err := Open(transport, 4, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	members := []int{0, 1, 3} // rank 2 parked
	err = world.SPMD(nil, func(c *Comm) error {
		if c.Rank() == 2 {
			return nil
		}
		sub, err := c.Sub(members)
		if err != nil {
			return err
		}
		if sub.Size() != 3 || sub.WorldSize() != 4 || sub.WorldRank() != c.Rank() {
			t.Errorf("rank %d: sub size %d, world size %d, world rank %d",
				c.Rank(), sub.Size(), sub.WorldSize(), sub.WorldRank())
		}
		if err := sub.Barrier(0x91); err != nil {
			return err
		}
		parts, err := sub.AllGather(0x92, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for i, m := range members {
			if len(parts[i]) != 1 || parts[i][0] != byte(m) {
				t.Errorf("rank %d: allgather[%d] = %v, want [%d]", c.Rank(), i, parts[i], m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSubMaskedRecv: masked receives through a sub-world must
// translate the mask and the returned source, and leave non-member
// traffic queued.
func TestSubMaskedRecv(t *testing.T) {
	world, err := Open("inproc", 4, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	const tag = 0x93
	members := []int{0, 2, 3}
	err = world.SPMD(nil, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			// Non-member noise on the same tag: must not be consumed by
			// the sub-world's receives.
			return c.Send(0, tag, []byte{0xee})
		case 2, 3:
			sub, err := c.Sub(members)
			if err != nil {
				return err
			}
			return sub.Send(0, tag, []byte{byte(c.Rank())})
		case 0:
			sub, err := c.Sub(members)
			if err != nil {
				return err
			}
			got := map[int]byte{}
			mask := []bool{false, true, true} // sub ranks 1 (world 2) and 2 (world 3)
			for i := 0; i < 2; i++ {
				src, data, err := sub.RecvAnyOf(tag, mask)
				if err != nil {
					return err
				}
				got[src] = data[0]
				sub.Release(data)
				mask[src] = false
			}
			if got[1] != 2 || got[2] != 3 {
				t.Errorf("masked receives got %v, want sub rank 1 -> 2, sub rank 2 -> 3", got)
			}
			// The non-member message is still queued on the world comm.
			data, err := c.Recv(1, tag)
			if err != nil {
				return err
			}
			if len(data) != 1 || data[0] != 0xee {
				t.Errorf("non-member payload %v, want [0xee]", data)
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSubContextCancellation: cancelling the context bound by
// World.SPMD must unblock receives issued through a sub-world created
// inside the section.
func TestSubContextCancellation(t *testing.T) {
	world, err := Open("inproc", 3, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	err = world.SPMD(ctx, func(c *Comm) error {
		if c.Rank() == 2 {
			return nil
		}
		sub, err := c.Sub([]int{0, 1})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			once.Do(func() {
				time.AfterFunc(10*time.Millisecond, cancel)
			})
		}
		// Nobody sends: only cancellation can unblock this.
		_, err = sub.Recv((sub.Rank()+1)%2, 0x94)
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SPMD over blocked sub-world receives returned %v, want context.Canceled", err)
	}
}

// TestSubValidation: malformed member lists must be rejected.
func TestSubValidation(t *testing.T) {
	world, err := Open("inproc", 3, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	c := world.Comm(0)
	for _, members := range [][]int{nil, {1, 2}, {0, 0}, {0, 5}} {
		if _, err := c.Sub(members); err == nil {
			t.Errorf("Sub(%v) on rank 0 succeeded, want error", members)
		}
	}
	if _, err := c.Sub([]int{0, 2}); err != nil {
		t.Errorf("Sub([0 2]) on rank 0: %v", err)
	}
}

// TestSubStatsCountOnWorld: traffic through a sub-world must count
// into the root world's statistics.
func TestSubStatsCountOnWorld(t *testing.T) {
	world, err := Open("inproc", 2, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	err = world.SPMD(nil, func(c *Comm) error {
		sub, err := c.Sub([]int{0, 1})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			return sub.Send(1, 0x95, make([]byte, 16))
		}
		data, err := sub.Recv(0, 0x95)
		if err == nil {
			sub.Release(data)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, bytes := world.Stats()
	if msgs != 1 || bytes != 16 {
		t.Errorf("world stats after sub-world send: %d msgs, %d bytes; want 1, 16", msgs, bytes)
	}
}
