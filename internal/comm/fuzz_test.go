package comm

import (
	"bytes"
	"testing"
)

// FuzzDecodeSections fuzzes the wire codec's multi-part payload
// decoder with the round-trip property: any input DecodeSections
// accepts must re-encode to exactly the original bytes (the format is
// canonical — a count, then length-prefixed sections, no slack), and
// no input may panic or make the decoder over-allocate its way to an
// OOM. Run under `go test -fuzz=FuzzDecodeSections ./internal/comm`;
// the seed corpus below and in testdata/fuzz keeps the interesting
// shapes (empty payload, truncated header, truncated section, trailing
// garbage, huge promised count) exercised on every ordinary `go test`
// run.
func FuzzDecodeSections(f *testing.F) {
	f.Add([]byte{})                            // too short for a header
	f.Add([]byte{0, 0, 0, 0})                  // zero sections, canonical
	f.Add([]byte{1, 0, 0, 0})                  // promises one section, has none
	f.Add([]byte{255, 255, 255, 255})          // absurd count, must not allocate it
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 'a'}) // truncated section body
	f.Add(EncodeSections(nil))
	f.Add(EncodeSections([][]byte{{}}))
	f.Add(EncodeSections([][]byte{[]byte("a"), []byte("bc"), {}}))
	f.Add(append(EncodeSections([][]byte{[]byte("x")}), 0)) // trailing byte
	f.Fuzz(func(t *testing.T, data []byte) {
		sections, err := DecodeSections(data)
		if err != nil {
			return
		}
		round := EncodeSections(sections)
		if !bytes.Equal(round, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, round)
		}
		// Decoded sections alias the input; none may reach past it.
		total := 4
		for _, s := range sections {
			total += 4 + len(s)
		}
		if total != len(data) {
			t.Fatalf("sections account for %d bytes of a %d-byte payload", total, len(data))
		}
	})
}
