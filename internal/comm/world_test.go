package comm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestWorldRegistry exercises transport lookup: the built-ins are
// registered, unknown names fail with the available names, and a
// custom factory plugs in by name.
func TestWorldRegistry(t *testing.T) {
	names := Transports()
	has := func(want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	if !has("inproc") || !has("tcp") {
		t.Fatalf("Transports() = %v, want inproc and tcp", names)
	}

	if _, err := Open("bogus", 2, TransportOptions{}); err == nil {
		t.Fatal("Open(bogus) succeeded")
	} else if !strings.Contains(err.Error(), "inproc") {
		t.Errorf("Open(bogus) error %q does not list registered transports", err)
	}

	RegisterTransport("test-custom", func(p int, opts TransportOptions) ([]*Comm, func() error, error) {
		comms, err := NewWorld(p, opts.Model)
		return comms, nil, err
	})
	w, err := Open("test-custom", 3, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Size() != 3 || w.Transport() != "test-custom" {
		t.Errorf("world = size %d transport %q", w.Size(), w.Transport())
	}
}

func TestRegisterTransportDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterTransport("inproc", func(p int, opts TransportOptions) ([]*Comm, func() error, error) {
		return nil, nil, nil
	})
}

// TestWorldSPMDRoundTrip checks the basic World lifecycle: open, run a
// ring exchange under SPMD, collect stats, close.
func TestWorldSPMDRoundTrip(t *testing.T) {
	for _, transport := range []string{"inproc", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			w, err := Open(transport, 3, TransportOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			err = w.SPMD(context.Background(), func(c *Comm) error {
				next := (c.Rank() + 1) % c.Size()
				prev := (c.Rank() + c.Size() - 1) % c.Size()
				if err := c.Send(next, 7, []byte{byte(c.Rank())}); err != nil {
					return err
				}
				data, err := c.Recv(prev, 7)
				if err != nil {
					return err
				}
				if len(data) != 1 || int(data[0]) != prev {
					return fmt.Errorf("rank %d received %v from %d", c.Rank(), data, prev)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			msgs, bytes := w.Stats()
			if msgs != 3 || bytes != 3 {
				t.Errorf("Stats() = %d msgs, %d bytes, want 3, 3", msgs, bytes)
			}
		})
	}
}

// TestWorldCancelUnblocksRecv is the acceptance test for context
// cancellation: a Recv with no matching sender must return
// context.Canceled once the SPMD context is cancelled, instead of
// deadlocking.
func TestWorldCancelUnblocksRecv(t *testing.T) {
	for _, transport := range []string{"inproc", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			w, err := Open(transport, 2, TransportOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			done := make(chan error, 1)
			go func() {
				done <- w.SPMD(ctx, func(c *Comm) error {
					if c.Rank() != 0 {
						return nil // rank 1 never sends
					}
					_, err := c.Recv(1, 42)
					return err
				})
			}()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("SPMD error = %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("cancelled Recv did not unblock")
			}
		})
	}
}

// TestWorldCancelUnblocksCollective checks that cancellation also tears
// down a collective mid-flight: rank 0 waits in a barrier no one else
// joins.
func TestWorldCancelUnblocksCollective(t *testing.T) {
	w, err := Open("inproc", 3, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err = w.SPMD(ctx, func(c *Comm) error {
		if c.Rank() == 2 {
			return nil // never enters the barrier
		}
		return c.Barrier(9)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SPMD error = %v, want context.Canceled", err)
	}
}

// TestWorldPreCancelledContext: SPMD under an already-cancelled context
// must refuse to run.
func TestWorldPreCancelledContext(t *testing.T) {
	w, err := Open("inproc", 2, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err = w.SPMD(ctx, func(c *Comm) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SPMD error = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("SPMD body ran under a cancelled context")
	}
}

// TestWorldDoubleClose: Close must be idempotent, and a closed world
// must fail SPMD and pending receives with ErrClosed.
func TestWorldDoubleClose(t *testing.T) {
	for _, transport := range []string{"inproc", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			w, err := Open(transport, 2, TransportOptions{})
			if err != nil {
				t.Fatal(err)
			}
			first := w.Close()
			second := w.Close()
			if first != nil {
				t.Errorf("first Close = %v", first)
			}
			if !errors.Is(second, first) && second != first {
				t.Errorf("second Close = %v, want first call's result %v", second, first)
			}
			if err := w.SPMD(context.Background(), func(c *Comm) error { return nil }); !errors.Is(err, ErrClosed) {
				t.Errorf("SPMD after Close = %v, want ErrClosed", err)
			}
			if _, err := w.Comm(0).Recv(1, 1); !errors.Is(err, ErrClosed) {
				t.Errorf("Recv after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestWorldRankFailureUnblocksPeers: when one rank's function fails,
// peers blocked waiting for its messages must unwind with an error
// instead of deadlocking the section.
func TestWorldRankFailureUnblocksPeers(t *testing.T) {
	w, err := Open("inproc", 3, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	bang := errors.New("rank 1 exploded")
	done := make(chan error, 1)
	go func() {
		done <- w.SPMD(context.Background(), func(c *Comm) error {
			if c.Rank() == 1 {
				return bang
			}
			_, err := c.Recv(1, 11) // rank 1 never sends
			return err
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, bang) {
			t.Fatalf("SPMD error %v does not include the failing rank's error", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("SPMD error %v: peers did not unwind with context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rank failure left peers deadlocked")
	}
	// The section's internal cancellation must not poison the world.
	if err := w.SPMD(context.Background(), func(c *Comm) error { return nil }); err != nil {
		t.Fatalf("SPMD after failed section: %v", err)
	}
}

// TestWorldConcurrentSPMDRejected: a second SPMD section on a busy
// world must fail instead of racing on the context binding.
func TestWorldConcurrentSPMDRejected(t *testing.T) {
	w, err := Open("inproc", 2, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- w.SPMD(context.Background(), func(c *Comm) error {
			if c.Rank() == 0 {
				close(entered)
				<-release
			}
			return nil
		})
	}()
	<-entered
	if err := w.SPMD(context.Background(), func(c *Comm) error { return nil }); err == nil {
		t.Error("concurrent SPMD section accepted")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The world is reusable once the first section has joined.
	if err := w.SPMD(context.Background(), func(c *Comm) error { return nil }); err != nil {
		t.Fatalf("SPMD after section finished: %v", err)
	}
}

// TestWorldCloseUnblocksRecv: closing the world must fail a pending
// receive rather than leaving it blocked forever.
func TestWorldCloseUnblocksRecv(t *testing.T) {
	w, err := Open("inproc", 2, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := w.Comm(0).Recv(1, 5)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the pending Recv")
	}
}
