package comm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// worlds returns both transports' worlds for transport-agnostic tests.
func worlds(t *testing.T, p int) map[string][]*Comm {
	t.Helper()
	in, err := NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcp, closer, err := NewTCPWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		CloseWorld(in)
		closer()
	})
	return map[string][]*Comm{"inproc": in, "tcp": tcp}
}

func TestSendRecvBothTransports(t *testing.T) {
	for name, ws := range worlds(t, 2) {
		t.Run(name, func(t *testing.T) {
			err := SPMD(ws, func(c *Comm) error {
				if c.Rank() == 0 {
					if err := c.Send(1, 7, []byte("hello")); err != nil {
						return err
					}
					got, err := c.Recv(1, 8)
					if err != nil {
						return err
					}
					if string(got) != "world" {
						return fmt.Errorf("got %q", got)
					}
					return nil
				}
				got, err := c.Recv(0, 7)
				if err != nil {
					return err
				}
				if string(got) != "hello" {
					return fmt.Errorf("got %q", got)
				}
				return c.Send(0, 8, []byte("world"))
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFIFOPerSourceTag(t *testing.T) {
	for name, ws := range worlds(t, 2) {
		t.Run(name, func(t *testing.T) {
			const n = 200
			err := SPMD(ws, func(c *Comm) error {
				if c.Rank() == 0 {
					for i := 0; i < n; i++ {
						if err := c.Send(1, 5, []byte{byte(i)}); err != nil {
							return err
						}
					}
					return nil
				}
				for i := 0; i < n; i++ {
					got, err := c.Recv(0, 5)
					if err != nil {
						return err
					}
					if got[0] != byte(i) {
						return fmt.Errorf("message %d arrived out of order (got %d)", i, got[0])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTagsDoNotInterfere(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	err = SPMD(ws, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("a")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("b"))
		}
		// Receive in reverse tag order.
		b, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		a, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(a) != "a" || string(b) != "b" {
			return fmt.Errorf("tag mixup: %q %q", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyPrefersLowestRank(t *testing.T) {
	ws, err := NewWorld(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	// Ranks 1 and 2 send; rank 0 waits until both arrived, then
	// receives twice: must get rank 1 first.
	var wg sync.WaitGroup
	wg.Add(2)
	for r := 1; r <= 2; r++ {
		go func(r int) {
			defer wg.Done()
			if err := ws[r].Send(0, 9, []byte{byte(r)}); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	// Both messages are now in the mailbox.
	src1, d1, err := ws[0].RecvAny(9)
	if err != nil {
		t.Fatal(err)
	}
	src2, d2, err := ws[0].RecvAny(9)
	if err != nil {
		t.Fatal(err)
	}
	if src1 != 1 || src2 != 2 || d1[0] != 1 || d2[0] != 2 {
		t.Fatalf("RecvAny order: %d %d", src1, src2)
	}
}

func TestSendBufferReuse(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	buf := []byte{1, 2, 3}
	if err := ws[0].Send(1, 1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate after send
	got, err := ws[1].Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("send did not copy the buffer")
	}
}

func TestSendRecvBounds(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	if err := ws[0].Send(2, 0, nil); err == nil {
		t.Error("send to rank 2 of 2 accepted")
	}
	if _, err := ws[0].Recv(-1, 0); err == nil {
		t.Error("recv from rank -1 accepted")
	}
	if err := ws[0].Multicast([]int{0, 5}, 0, nil); err == nil {
		t.Error("multicast to bad rank accepted")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ws[0].Recv(1, 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ws[0].Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	CloseWorld(ws)
}

func TestRecvTimeout(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	start := time.Now()
	_, err = ws[0].RecvTimeout(1, 1, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("timeout returned too early")
	}
	// A message that is already there is returned immediately.
	if err := ws[1].Send(0, 2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := ws[0].RecvTimeout(1, 2, time.Second)
	if err != nil || string(got) != "x" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestStatsCounting(t *testing.T) {
	ws, err := NewWorld(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	ws[0].Send(1, 1, make([]byte, 10))
	ws[0].Send(2, 1, make([]byte, 5))
	msgs, bytes := ws[0].Stats()
	if msgs != 2 || bytes != 15 {
		t.Errorf("stats = %d msgs %d bytes, want 2/15", msgs, bytes)
	}
	// Multicast on a multicast-capable transport counts once.
	ws[1].Multicast([]int{0, 2}, 1, make([]byte, 8))
	msgs, bytes = ws[1].Stats()
	if msgs != 1 || bytes != 8 {
		t.Errorf("multicast stats = %d msgs %d bytes, want 1/8", msgs, bytes)
	}
}

func TestModelCost(t *testing.T) {
	m := Ethernet(1)
	// 1 ms latency + 1250 bytes at 1.25 MB/s = 1 ms.
	d := m.cost(1250)
	if d < 1900*time.Microsecond || d > 2100*time.Microsecond {
		t.Errorf("Ethernet cost(1250B) = %v, want ~2ms", d)
	}
	var free *Model
	if free.cost(1e6) != 0 {
		t.Error("nil model should be free")
	}
	fast := Ethernet(0.1)
	if fast.cost(1250) >= d {
		t.Error("scaled-down model should be cheaper")
	}
}

// Ethernet used to silently default a non-positive scale to 1, so a
// miscomputed scale (0, a negated value, NaN from 0/0) produced a
// model the caller never asked for — or, for NaN and +Inf, a garbage
// bandwidth. An invalid scale is a configuration bug and must panic.
func TestEthernetInvalidScalePanics(t *testing.T) {
	for _, scale := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Ethernet(%g) did not panic", scale)
				}
			}()
			Ethernet(scale)
		}()
	}
	// -Inf is caught by the same non-positive check.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Ethernet(-Inf) did not panic")
			}
		}()
		Ethernet(math.Inf(-1))
	}()
}

// cost must saturate instead of wrapping: a huge byte count over a tiny
// bandwidth converts to a float beyond MaxInt64, and a raw
// time.Duration conversion would come out negative on most
// architectures — a negative sleep, i.e. a free message, exactly where
// the model should be at its most expensive.
func TestModelCostSaturates(t *testing.T) {
	slow := &Model{Bandwidth: 1e-12}
	if d := slow.cost(1 << 30); d != maxCost {
		t.Errorf("cost with overflowing transfer term = %v, want saturation at %v", d, maxCost)
	}
	// Saturation on the latency + transfer sum, not just the term.
	m := &Model{Latency: maxCost - time.Nanosecond, Bandwidth: 1}
	if d := m.cost(1); d != maxCost {
		t.Errorf("cost with overflowing sum = %v, want saturation at %v", d, maxCost)
	}
	if d := (&Model{Latency: -time.Second}).cost(0); d != 0 {
		t.Errorf("negative latency cost = %v, want clamp to 0", d)
	}
	if d := (&Model{Latency: time.Millisecond, Bandwidth: math.NaN()}).cost(100); d != time.Millisecond {
		t.Errorf("NaN bandwidth cost = %v, want latency-only pricing", d)
	}
}

func TestModelSlowsSends(t *testing.T) {
	model := &Model{Latency: 5 * time.Millisecond}
	ws, err := NewWorld(2, model)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := ws[0].Send(1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("4 sends took %v, want >= 20ms of modeled latency", elapsed)
	}
}

func TestSharedMediumSerializesSenders(t *testing.T) {
	// Two workstations transmitting concurrently on the modeled shared
	// Ethernet must take twice as long as one: the medium is a single
	// wire, not a switch.
	model := &Model{Latency: 20 * time.Millisecond}
	ws, err := NewWorld(3, model)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	start := time.Now()
	var wg sync.WaitGroup
	for _, sender := range []int{0, 1} {
		wg.Add(1)
		go func(sender int) {
			defer wg.Done()
			if err := ws[sender].Send(2, 1, nil); err != nil {
				t.Error(err)
			}
		}(sender)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 38*time.Millisecond {
		t.Errorf("two concurrent sends took %v, want >= 2 wire charges (40ms)", elapsed)
	}
}

func TestMulticastChargesOnce(t *testing.T) {
	model := &Model{Latency: 10 * time.Millisecond, Multicast: true}
	ws, err := NewWorld(4, model)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	start := time.Now()
	if err := ws[0].Multicast([]int{1, 2, 3}, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 25*time.Millisecond {
		t.Errorf("multicast took %v, want ~1 latency charge", elapsed)
	}
	for r := 1; r <= 3; r++ {
		got, err := ws[r].Recv(0, 1)
		if err != nil || string(got) != "x" {
			t.Fatalf("rank %d: %q, %v", r, got, err)
		}
	}
	// Without the capability, each destination pays.
	noMC := &Model{Latency: 10 * time.Millisecond, Multicast: false}
	ws2, err := NewWorld(4, noMC)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws2)
	start = time.Now()
	if err := ws2[0].Multicast([]int{1, 2, 3}, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 28*time.Millisecond {
		t.Errorf("non-multicast medium took %v, want >= 3 latency charges", elapsed)
	}
}

func TestBarrier(t *testing.T) {
	for name, ws := range worlds(t, 4) {
		t.Run(name, func(t *testing.T) {
			var counter sync.Map
			err := SPMD(ws, func(c *Comm) error {
				for round := 0; round < 3; round++ {
					counter.Store(fmt.Sprintf("%d-%d", round, c.Rank()), true)
					if err := c.Barrier(100); err != nil {
						return err
					}
					// After the barrier, every rank's mark for this
					// round must be visible.
					for r := 0; r < c.Size(); r++ {
						if _, ok := counter.Load(fmt.Sprintf("%d-%d", round, r)); !ok {
							return fmt.Errorf("rank %d passed barrier before rank %d arrived", c.Rank(), r)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for name, ws := range worlds(t, 4) {
		t.Run(name, func(t *testing.T) {
			err := SPMD(ws, func(c *Comm) error {
				var payload []byte
				if c.Rank() == 2 {
					payload = []byte("broadcast")
				}
				got, err := c.Bcast(2, 101, payload)
				if err != nil {
					return err
				}
				if string(got) != "broadcast" {
					return fmt.Errorf("rank %d got %q", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastBadRoot(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	if _, err := ws[0].Bcast(5, 1, nil); err == nil {
		t.Error("bad root accepted")
	}
	if _, err := ws[0].Gather(-1, 1, nil); err == nil {
		t.Error("bad gather root accepted")
	}
}

func TestGatherAllGather(t *testing.T) {
	for name, ws := range worlds(t, 3) {
		t.Run(name, func(t *testing.T) {
			err := SPMD(ws, func(c *Comm) error {
				mine := []byte(fmt.Sprintf("rank%d", c.Rank()))
				parts, err := c.Gather(0, 102, mine)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					for r := 0; r < c.Size(); r++ {
						if string(parts[r]) != fmt.Sprintf("rank%d", r) {
							return fmt.Errorf("gather[%d] = %q", r, parts[r])
						}
					}
				} else if parts != nil {
					return fmt.Errorf("non-root got gather data")
				}
				all, err := c.AllGather(103, mine)
				if err != nil {
					return err
				}
				for r := 0; r < c.Size(); r++ {
					if string(all[r]) != fmt.Sprintf("rank%d", r) {
						return fmt.Errorf("allgather[%d] = %q on rank %d", r, all[r], c.Rank())
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllReduce(t *testing.T) {
	ws, err := NewWorld(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	err = SPMD(ws, func(c *Comm) error {
		vals := []float64{float64(c.Rank()), 1}
		sum, err := c.AllReduceF64(104, vals, func(a, b float64) float64 { return a + b })
		if err != nil {
			return err
		}
		if sum[0] != 6 || sum[1] != 4 {
			return fmt.Errorf("allreduce = %v", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceLengthMismatch(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	err = SPMD(ws, func(c *Comm) error {
		vals := make([]float64, 1+c.Rank()) // deliberately unequal
		_, err := c.AllReduceF64(105, vals, func(a, b float64) float64 { return a + b })
		if err == nil {
			return errors.New("length mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSPMDJoinsErrors(t *testing.T) {
	ws, err := NewWorld(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	sentinel := errors.New("boom")
	err = SPMD(ws, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("SPMD error = %v", err)
	}
}

func TestSingleRankCollectives(t *testing.T) {
	ws, err := NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	c := ws[0]
	if err := c.Barrier(1); err != nil {
		t.Fatal(err)
	}
	got, err := c.Bcast(0, 2, []byte("solo"))
	if err != nil || string(got) != "solo" {
		t.Fatalf("solo bcast: %q, %v", got, err)
	}
	parts, err := c.Gather(0, 3, []byte("me"))
	if err != nil || len(parts) != 1 || string(parts[0]) != "me" {
		t.Fatalf("solo gather: %v, %v", parts, err)
	}
}

func TestNewWorldErrors(t *testing.T) {
	if _, err := NewWorld(0, nil); err == nil {
		t.Error("p=0 accepted")
	}
	if _, _, err := NewTCPWorld(0); err == nil {
		t.Error("tcp p=0 accepted")
	}
	if _, err := NewComm(3, 2, nil); err == nil {
		t.Error("bad rank accepted")
	}
}

func TestRandomTrafficProperty(t *testing.T) {
	// A storm of random messages: every (src, dst, tag) stream must
	// arrive complete and in order.
	const p = 4
	ws, err := NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	const perPeer = 50
	err = SPMD(ws, func(c *Comm) error {
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		// Send perPeer messages to every other rank on tags 0/1.
		type job struct{ dst, tag int }
		var jobs []job
		for dst := 0; dst < p; dst++ {
			if dst == c.Rank() {
				continue
			}
			for i := 0; i < perPeer; i++ {
				jobs = append(jobs, job{dst, i % 2})
			}
		}
		rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
		seq := make(map[job]byte)
		for _, j := range jobs {
			if err := c.Send(j.dst, j.tag, []byte{seq[j]}); err != nil {
				return err
			}
			seq[j]++
		}
		// Receive all streams and verify ordering.
		for src := 0; src < p; src++ {
			if src == c.Rank() {
				continue
			}
			for tag := 0; tag < 2; tag++ {
				for i := 0; i < perPeer/2; i++ {
					got, err := c.Recv(src, tag)
					if err != nil {
						return err
					}
					if got[0] != byte(i) {
						return fmt.Errorf("stream (%d,%d) out of order: got %d want %d", src, tag, got[0], i)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	ws, closer, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	err = SPMD(ws, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, payload)
		}
		got, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if len(got) != len(payload) {
			return fmt.Errorf("got %d bytes", len(got))
		}
		for i := range got {
			if got[i] != payload[i] {
				return fmt.Errorf("corruption at byte %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPSelfSend(t *testing.T) {
	ws, closer, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	if err := ws[0].Send(0, 1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	got, err := ws[0].Recv(0, 1)
	if err != nil || string(got) != "self" {
		t.Fatalf("self send: %q, %v", got, err)
	}
}
