// Package comm is the message-passing substrate of the STANCE
// reproduction, standing in for the P4 environment the paper ran on
// (Section 5). It provides tagged point-to-point send/receive with
// per-(source, tag) FIFO ordering, emulated multicast (Section 3.6),
// and the collectives the runtime needs, over two interchangeable
// transports: an in-process transport whose configurable cost model
// reproduces shared-Ethernet behaviour, and a TCP transport that runs
// the same runtime over real sockets.
package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"stance/internal/vtime"
)

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("comm: communicator closed")

// ErrKilled is returned by operations on an endpoint whose process was
// crash-injected with KillEndpoint: the rank is gone, its sends vanish
// and its receives can never complete. The session driver treats a
// rank failing with ErrKilled under checkpointing as a crash-stop
// death — the rank goes silent and the survivors recover.
var ErrKilled = errors.New("comm: endpoint killed")

// Transport moves raw tagged messages between ranks.
type Transport interface {
	// Send delivers data to dst with the given tag. Data is copied
	// before Send returns; the caller may reuse the buffer.
	Send(dst, tag int, data []byte) error
	// Recv blocks until a message with the given source and tag
	// arrives, and returns its payload. Messages from the same source
	// with the same tag arrive in send order.
	Recv(src, tag int) ([]byte, error)
	// RecvAny blocks until a message with the given tag arrives from
	// any source.
	RecvAny(tag int) (src int, data []byte, err error)
	// Close shuts the transport down; blocked receives fail.
	Close() error
}

// Multicaster is implemented by transports that can deliver one
// message to many destinations for (approximately) the cost of one
// send — the Ethernet/ATM multicast capability of paper Section 3.6.
type Multicaster interface {
	Multicast(dsts []int, tag int, data []byte) error
}

// ContextTransport is implemented by transports whose blocking receives
// can be cancelled through a context. Both built-in transports
// implement it; a transport that does not simply blocks until a message
// arrives or the endpoint closes.
type ContextTransport interface {
	RecvContext(ctx context.Context, src, tag int) ([]byte, error)
	RecvAnyContext(ctx context.Context, tag int) (src int, data []byte, err error)
}

// MaskedTransport is implemented by transports that can complete
// receives in arrival order among a restricted set of sources — the
// executor's drain primitive: mark the peers still missing and unpack
// whichever delivers first, while messages from already-served peers
// (which belong to a later collective operation) stay queued. Both
// built-in transports implement it.
type MaskedTransport interface {
	// RecvAnyOf blocks until a message with the tag arrives from a
	// source the mask admits (nil mask admits all).
	RecvAnyOf(ctx context.Context, tag int, mask []bool) (src int, data []byte, err error)
	// PollAnyOf is the non-blocking variant: ok=false when nothing
	// admissible has arrived yet.
	PollAnyOf(tag int, mask []bool) (src int, data []byte, ok bool, err error)
}

// ClockedTransport is implemented by transports that run their cost
// charges and delivery delays on an explicit clock (both built-in
// transports do). The runtime derives every timing — solver phases,
// balance checks, remap costs — from the transport's clock, so a world
// opened with a simulated clock (vtime.Sim) runs its entire adaptive
// protocol in deterministic virtual time.
type ClockedTransport interface {
	Clock() vtime.Clock
}

// Recycler is implemented by transports that reuse receive buffers.
// Release hands a payload returned by a receive back to the transport;
// the caller must not touch the buffer afterwards. Both built-in
// transports implement it, which is what makes the executor's
// steady-state data path allocation-free.
type Recycler interface {
	Release(buf []byte)
}

// Comm is one rank's endpoint in a world of size ranks.
type Comm struct {
	rank, size int
	tr         Transport

	// ctx governs blocking operations; World.SPMD binds the caller's
	// context here for the duration of the SPMD section, so cancelling
	// it tears the section down instead of deadlocking. nil means "not
	// bound": the endpoint falls back to the communicator it was
	// derived from (see boundCtx).
	ctx context.Context

	// root is the root world endpoint a sub-communicator was derived
	// from (nil for world endpoints); from is the communicator Sub was
	// called on — the immediate parent, which for a sub-of-sub differs
	// from root. Blocking operations observe the nearest bound context
	// up the from chain, so World.SPMD cancellation reaches operations
	// on sub-worlds created inside the section, and a sub-world wrapped
	// as its own World (WrapWorld) binds its own context without
	// touching the parent — which is what lets many sub-worlds of one
	// shared parent run concurrent SPMD sections with independent
	// cancellation (the stanced job service). worldRank is this
	// endpoint's rank in the root world.
	root      *Comm
	from      *Comm
	worldRank int

	// topo is the world's group topology (nil on flat worlds; set by
	// Open on world endpoints). Sub-communicators leave it nil and
	// resolve the root's through Topology().
	topo *Topology

	sentMsgs  atomic.Int64
	sentBytes atomic.Int64
	// interMsgs/interBytes count the sends whose destination lies in a
	// different group — the traffic on the slow inter-group link.
	interMsgs  atomic.Int64
	interBytes atomic.Int64
}

// NewComm wraps a transport endpoint. Most users obtain Comms from
// a World (see Open) or from the legacy NewWorld/NewTCPWorld helpers.
func NewComm(rank, size int, tr Transport) (*Comm, error) {
	if size <= 0 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("comm: invalid rank %d of %d", rank, size)
	}
	return &Comm{rank: rank, size: size, tr: tr}, nil
}

// setContext binds ctx to the endpoint's blocking operations (nil
// unbinds). It must only be called while no operation is in flight on
// this endpoint (World.SPMD calls it before spawning the rank
// goroutines and after joining them).
func (c *Comm) setContext(ctx context.Context) {
	c.ctx = ctx
}

// boundCtx resolves the context governing blocking operations: the
// endpoint's own binding when World.SPMD bound one, otherwise the
// nearest binding up the derivation chain — a sub-communicator created
// inside an SPMD section inherits that section's context, while a
// sub-world driven by its own World.SPMD (WrapWorld) observes its own.
func (c *Comm) boundCtx() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	if c.from != nil {
		return c.from.boundCtx()
	}
	return context.Background()
}

// Context returns the context governing the endpoint's blocking
// operations (context.Background unless bound by World.SPMD).
func (c *Comm) Context() context.Context { return c.boundCtx() }

// Clock returns the clock the endpoint's world runs on: the
// transport's clock when it has one, the real clock otherwise. All
// runtime timing (measurement, cost charging, timeouts) goes through
// it.
func (c *Comm) Clock() vtime.Clock {
	if ct, ok := c.tr.(ClockedTransport); ok {
		if clk := ct.Clock(); clk != nil {
			return clk
		}
	}
	return vtime.Real{}
}

// Rank returns this endpoint's rank in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.size }

// WorldRank returns this endpoint's rank in the root world it was
// derived from — the stable "workstation identity" that survives
// membership changes. For a world endpoint it equals Rank.
func (c *Comm) WorldRank() int {
	if c.root != nil {
		return c.worldRank
	}
	return c.rank
}

// WorldSize returns the size of the root world (Size for a world
// endpoint).
func (c *Comm) WorldSize() int {
	if c.root != nil {
		return c.root.size
	}
	return c.size
}

// Root returns the root world endpoint this sub-communicator was
// derived from, or the endpoint itself for world endpoints.
func (c *Comm) Root() *Comm {
	if c.root != nil {
		return c.root
	}
	return c
}

// Send delivers data to dst with the given tag. A cancelled bound
// context fails the send immediately, so send loops terminate promptly
// during teardown.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.size {
		return fmt.Errorf("comm: send to rank %d of %d", dst, c.size)
	}
	if err := c.boundCtx().Err(); err != nil {
		return err
	}
	if err := c.tr.Send(dst, tag, data); err != nil {
		return err
	}
	c.sentMsgs.Add(1)
	c.sentBytes.Add(int64(len(data)))
	if c.interCrossing(dst) {
		c.interMsgs.Add(1)
		c.interBytes.Add(int64(len(data)))
	}
	return nil
}

// interCrossing reports whether a send from this endpoint to dst (in
// c's own numbering) crosses a group boundary. Sub-communicator ranks
// translate to world numbering first — the numbering the topology
// speaks.
func (c *Comm) interCrossing(dst int) bool {
	t := c.Root().topo
	if t == nil {
		return false
	}
	return !t.SameGroup(c.worldRankOf(c.rank), c.worldRankOf(dst))
}

// Recv blocks until a message from src with the given tag arrives, the
// endpoint closes, or the bound context is cancelled.
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	return c.RecvContext(c.boundCtx(), src, tag)
}

// RecvContext is Recv under an explicit context: a cancelled ctx
// unblocks the receive with ctx.Err() on transports that support
// cancellation (both built-in transports do). On a transport without
// cancellation support, an already-cancelled context still fails fast;
// only mid-receive cancellation is unavailable.
func (c *Comm) RecvContext(ctx context.Context, src, tag int) ([]byte, error) {
	if src < 0 || src >= c.size {
		return nil, fmt.Errorf("comm: recv from rank %d of %d", src, c.size)
	}
	if ctx != nil && ctx.Done() != nil {
		if ct, ok := c.tr.(ContextTransport); ok {
			return ct.RecvContext(ctx, src, tag)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return c.tr.Recv(src, tag)
}

// RecvAny blocks until a message with the given tag arrives from any
// source, the endpoint closes, or the bound context is cancelled.
func (c *Comm) RecvAny(tag int) (int, []byte, error) {
	return c.RecvAnyContext(c.boundCtx(), tag)
}

// RecvAnyContext is RecvAny under an explicit context.
func (c *Comm) RecvAnyContext(ctx context.Context, tag int) (int, []byte, error) {
	if ctx != nil && ctx.Done() != nil {
		if ct, ok := c.tr.(ContextTransport); ok {
			return ct.RecvAnyContext(ctx, tag)
		}
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
	}
	return c.tr.RecvAny(tag)
}

// RecvAnyOf blocks until a message with the tag arrives from a source
// the mask admits (mask[src] true; nil admits every source) — the
// arrival-order receive the executor drains with. On a transport
// without masked-receive support it degrades to a blocking Recv from
// the lowest admitted rank, which is correct (collective operations
// deliver exactly one message per admitted peer) but loses the
// arrival-order overlap.
func (c *Comm) RecvAnyOf(tag int, mask []bool) (int, []byte, error) {
	if mt, ok := c.tr.(MaskedTransport); ok {
		return mt.RecvAnyOf(c.boundCtx(), tag, mask)
	}
	if mask == nil {
		return c.RecvAny(tag)
	}
	for src := 0; src < c.size && src < len(mask); src++ {
		if mask[src] {
			data, err := c.Recv(src, tag)
			return src, data, err
		}
	}
	return 0, nil, fmt.Errorf("comm: RecvAnyOf with no admitted source")
}

// PollAnyOf returns an already-arrived message from a source the mask
// admits without blocking; ok=false means nothing admissible has
// arrived yet (always the case on transports without masked-receive
// support).
func (c *Comm) PollAnyOf(tag int, mask []bool) (src int, data []byte, ok bool, err error) {
	if mt, k := c.tr.(MaskedTransport); k {
		return mt.PollAnyOf(tag, mask)
	}
	return 0, nil, false, nil
}

// Release hands a payload returned by a receive back to the transport
// for reuse. The buffer must not be used afterwards. It is a no-op on
// transports without buffer recycling, so callers can Release
// unconditionally.
func (c *Comm) Release(buf []byte) {
	if r, ok := c.tr.(Recycler); ok {
		r.Release(buf)
	}
}

// RecvInto receives from src into the caller's buffer, returning the
// payload length; it fails (consuming the message) if the payload does
// not fit. The transport's buffer is recycled, so a receive into a
// persistent buffer allocates nothing in the steady state.
func (c *Comm) RecvInto(src, tag int, buf []byte) (int, error) {
	data, err := c.Recv(src, tag)
	if err != nil {
		return 0, err
	}
	if len(data) > len(buf) {
		c.Release(data)
		return 0, fmt.Errorf("comm: %d-byte payload exceeds %d-byte receive buffer", len(data), len(buf))
	}
	n := copy(buf, data)
	c.Release(data)
	return n, nil
}

// Multicast sends data to every rank in dsts. If the transport
// supports hardware-style multicast the message is charged once;
// otherwise it falls back to point-to-point sends.
func (c *Comm) Multicast(dsts []int, tag int, data []byte) error {
	for _, d := range dsts {
		if d < 0 || d >= c.size {
			return fmt.Errorf("comm: multicast to rank %d of %d", d, c.size)
		}
	}
	if err := c.boundCtx().Err(); err != nil {
		return err
	}
	if m, ok := c.tr.(Multicaster); ok {
		if err := m.Multicast(dsts, tag, data); err != nil {
			return err
		}
		c.sentMsgs.Add(1)
		c.sentBytes.Add(int64(len(data)))
		if c.Root().topo != nil {
			// A multicast is one message on the medium, but each
			// cross-group destination is one crossing of the slow link.
			inter := int64(0)
			for _, d := range dsts {
				if c.interCrossing(d) {
					inter++
				}
			}
			if inter > 0 {
				c.interMsgs.Add(inter)
				c.interBytes.Add(inter * int64(len(data)))
			}
		}
		return nil
	}
	for _, d := range dsts {
		if err := c.Send(d, tag, data); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the number of messages and payload bytes this rank
// has sent.
func (c *Comm) Stats() (msgs, bytes int64) {
	return c.sentMsgs.Load(), c.sentBytes.Load()
}

// InterStats returns the messages and payload bytes this rank has sent
// across group boundaries — the slow-link traffic of a two-level
// world. Always zero on a flat world. Like Stats, a sub-communicator
// counts its own traffic (its delegated sends also count into the root
// endpoint, exactly as they do for Stats).
func (c *Comm) InterStats() (msgs, bytes int64) {
	return c.interMsgs.Load(), c.interBytes.Load()
}

// Topology returns the group topology of the world this endpoint
// belongs to (the root world for a sub-communicator), or nil on a flat
// world.
func (c *Comm) Topology() *Topology { return c.Root().topo }

// WorldRankOf translates one of c's ranks into a root-world rank — the
// numbering a Topology speaks. For a world endpoint it is the
// identity; for a (possibly nested) sub-communicator it resolves the
// member's stable workstation identity.
func (c *Comm) WorldRankOf(rank int) int {
	if rank < 0 || rank >= c.size {
		panic(fmt.Sprintf("comm: rank %d of %d", rank, c.size))
	}
	return c.worldRankOf(rank)
}

// Close shuts down the endpoint's transport.
func (c *Comm) Close() error { return c.tr.Close() }

// SPMD runs f once per communicator, each in its own goroutine — the
// Single Program Multiple Data execution model of paper Section 2 —
// and waits for all of them. The returned error joins every rank's
// error. On a world with a simulated clock, every rank goroutine is
// registered as a clock worker for the duration of the section (all of
// them before any starts, so an early blocker cannot trigger a
// premature advance): the clock then auto-advances whenever all ranks
// are blocked, which is what makes virtual-time runs self-driving.
func SPMD(comms []*Comm, f func(c *Comm) error) error {
	var sim *vtime.Sim
	if len(comms) > 0 {
		sim = vtime.AsSim(comms[0].Clock())
	}
	if sim != nil {
		sim.Add(len(comms))
	}
	var wg sync.WaitGroup
	errs := make([]error, len(comms))
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c *Comm) {
			defer wg.Done()
			if sim != nil {
				defer sim.Done()
			}
			if err := f(c); err != nil {
				errs[i] = fmt.Errorf("rank %d: %w", c.Rank(), err)
			}
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// CloseWorld closes every communicator, returning the first error.
func CloseWorld(comms []*Comm) error {
	var first error
	for _, c := range comms {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
