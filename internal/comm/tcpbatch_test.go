package comm

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"stance/internal/vtime"
)

// TestTCPBatchingCoalesces pins the tx batching loop: with a flush
// linger configured, a burst of small sends rides far fewer framed
// writes than messages (the gofast pattern), and every message still
// arrives in order.
func TestTCPBatchingCoalesces(t *testing.T) {
	w, err := Open("tcp", 2, TransportOptions{FlushPeriod: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := w.Comm(0).Send(1, 7, []byte{byte(i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		got, err := w.Comm(1).Recv(0, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("message %d: got %v", i, got)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st, ok := w.Comm(0).TransportStats()
	if !ok {
		t.Fatal("tcp endpoint reports no transport stats")
	}
	if st.NTx != n {
		t.Errorf("n_tx = %d, want %d", st.NTx, n)
	}
	if st.NFlushes >= n/2 {
		t.Errorf("n_flushes = %d for %d sends: the flush linger did not coalesce", st.NFlushes, n)
	}
	if st.NTxByte == 0 || st.NRxByte != 0 {
		t.Errorf("rank 0 wire bytes = %d tx / %d rx, want tx > 0, rx = 0 (it only sent)", st.NTxByte, st.NRxByte)
	}
}

// TestTCPBatchBytesOneIsUnbatched pins the benchmark baseline: a
// 1-byte batch cap degrades to one framed write per message, the
// behavior the batched benchmarks compare against.
func TestTCPBatchBytesOneIsUnbatched(t *testing.T) {
	w, err := Open("tcp", 2, TransportOptions{BatchBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 50
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := w.Comm(0).Send(1, 3, []byte("msg")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if _, err := w.Comm(1).Recv(0, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st, _ := w.Comm(0).TransportStats()
	if st.NFlushes != n {
		t.Errorf("n_flushes = %d, want %d (one write per message at BatchBytes 1)", st.NFlushes, n)
	}
}

// TestTCPCompression pins per-batch compression end to end: a
// compressible payload crosses the socket intact under each codec, and
// the sender's wire bytes come to less than the payload — proof the
// frame went out compressed, not just tagged.
func TestTCPCompression(t *testing.T) {
	for _, codec := range []string{"flate", "gzip"} {
		t.Run(codec, func(t *testing.T) {
			w, err := Open("tcp", 2, TransportOptions{Compression: codec})
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			payload := bytes.Repeat([]byte("highly compressible "), 512)
			if err := w.Comm(0).Send(1, 4, payload); err != nil {
				t.Fatal(err)
			}
			got, err := w.Comm(1).Recv(0, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("payload corrupted through %s: %d bytes, want %d", codec, len(got), len(payload))
			}
			st, _ := w.Comm(0).TransportStats()
			if st.NTxByte >= int64(len(payload)) {
				t.Errorf("%d wire bytes for a %d-byte compressible payload: codec %s did not compress",
					st.NTxByte, len(payload), codec)
			}
		})
	}
}

// TestTCPOutboxBackpressure pins the bounded outbox: a sender that
// outruns the wire blocks at the high-water mark, the stall is counted,
// and nothing is lost.
func TestTCPOutboxBackpressure(t *testing.T) {
	w, err := Open("tcp", 2, TransportOptions{
		OutboxHighWater: 2,
		FlushPeriod:     20 * time.Millisecond, // hold the writer so the queue fills
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 20
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := w.Comm(0).Send(1, 6, []byte{byte(i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		got, err := w.Comm(1).Recv(0, 6)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("message %d arrived as %d: backpressure broke FIFO", i, got[0])
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st, _ := w.Comm(0).TransportStats()
	if st.NTxBackpressure == 0 {
		t.Error("n_tx_backpressure = 0: a 2-deep outbox absorbed 20 sends without a stall")
	}
}

// TestTCPHeartbeatDetectsKilledPeer is the transport-level liveness
// contract: a killed endpoint keeps its sockets open (a crashed
// process does not FIN its peers), so survivors must detect the death
// by missed heartbeats — and blocked receives from the dead peer fail
// with ErrPeerDead, which unwraps to ErrTimeout for the checkpoint
// layer's failure detector.
func TestTCPHeartbeatDetectsKilledPeer(t *testing.T) {
	w, err := Open("tcp", 3, TransportOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMiss:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Traffic sent before the crash must stay receivable: the failure
	// model is crash-stop, not message revocation.
	if err := w.Comm(1).Send(0, 8, []byte("pre-crash")); err != nil {
		t.Fatal(err)
	}
	if got, err := w.Comm(0).Recv(1, 8); err != nil || string(got) != "pre-crash" {
		t.Fatalf("pre-crash message: %q, %v", got, err)
	}

	if err := KillEndpoint(w.Comm(1)); err != nil {
		t.Fatal(err)
	}
	// The killed endpoint itself fails fast on both sides of the API.
	if err := w.Comm(1).Send(0, 8, []byte("ghost")); !errors.Is(err, ErrKilled) {
		t.Errorf("send from killed endpoint: %v, want ErrKilled", err)
	}
	if _, err := w.Comm(1).Recv(0, 8); !errors.Is(err, ErrKilled) {
		t.Errorf("recv on killed endpoint: %v, want ErrKilled", err)
	}

	// Survivors detect the silence. 3 misses at 10ms should land well
	// inside a second even on a loaded runner.
	start := time.Now()
	_, err = w.Comm(0).Recv(1, 9)
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("recv from dead peer: %v, want ErrPeerDead", err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("ErrPeerDead does not unwrap to ErrTimeout; ckpt detection would not see it")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("death detected after %v", d)
	}
	st, _ := w.Comm(0).TransportStats()
	if st.NDroppedHB < 3 {
		t.Errorf("n_dropped_hb = %d, want >= 3 missed heartbeats behind the declaration", st.NDroppedHB)
	}
	// The two survivors keep talking.
	if err := w.Comm(2).Send(0, 11, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if got, err := w.Comm(0).Recv(2, 11); err != nil || string(got) != "alive" {
		t.Fatalf("survivor traffic after the death: %q, %v", got, err)
	}
}

// TestTCPHeartbeatQuietWorldStaysUp pins the other half of liveness:
// an idle world with heartbeats on must not false-positive — the
// heartbeat traffic itself keeps every read deadline fed.
func TestTCPHeartbeatQuietWorldStaysUp(t *testing.T) {
	w, err := Open("tcp", 2, TransportOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMiss:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Stay idle across many miss budgets' worth of intervals.
	time.Sleep(200 * time.Millisecond)
	if err := w.Comm(0).Send(1, 5, []byte("still here")); err != nil {
		t.Fatal(err)
	}
	if got, err := w.Comm(1).Recv(0, 5); err != nil || string(got) != "still here" {
		t.Fatalf("exchange after idle period: %q, %v", got, err)
	}
}

// TestTCPSendRejectsReservedTag keeps application traffic out of the
// heartbeat tag: the liveness protocol owns it.
func TestTCPSendRejectsReservedTag(t *testing.T) {
	ws, closer, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	if err := ws[0].Send(1, hbTag, []byte("impostor")); err == nil {
		t.Error("send on the reserved heartbeat tag succeeded")
	}
}

// TestTCPSubWorldSharesRootMesh pins the multiplexing design: a
// sub-world's traffic flows over its root world's socket pair (one
// mesh per world), so the sub-endpoint reports the root endpoint's
// wire counters.
func TestTCPSubWorldSharesRootMesh(t *testing.T) {
	w, err := Open("tcp", 4, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	subs := make([]*Comm, 2)
	for i, r := range []int{1, 3} {
		sc, err := w.Comm(r).Sub([]int{1, 3})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sc
	}
	if err := subs[0].Send(1, 12, []byte("via root mesh")); err != nil {
		t.Fatal(err)
	}
	if got, err := subs[1].Recv(0, 12); err != nil || string(got) != "via root mesh" {
		t.Fatalf("sub-world exchange: %q, %v", got, err)
	}
	rootStats, ok := w.Comm(1).TransportStats()
	if !ok || rootStats.NTx != 1 {
		t.Errorf("root endpoint n_tx = %d (ok=%v), want 1: sub-world send did not ride the root mesh", rootStats.NTx, ok)
	}
	subStats, ok := subs[0].TransportStats()
	if !ok || subStats != rootStats {
		t.Errorf("sub-endpoint stats %+v != root stats %+v", subStats, rootStats)
	}
}

// TestTransportConfigCompat keeps the deprecated flat configuration
// working: Options maps it onto the options it is a subset of, and
// OpenConfig opens an equivalent world.
func TestTransportConfigCompat(t *testing.T) {
	model := &Model{Latency: time.Millisecond}
	clk := vtime.NewSim()
	cfg := TransportConfig{Model: model, Clock: clk}
	opts := cfg.Options()
	if opts.Model != model || opts.Clock != clk {
		t.Errorf("Options() = %+v, want the model and clock carried over", opts)
	}
	if (opts == TransportOptions{Model: model, Clock: clk}) == false {
		t.Errorf("Options() carries more than the legacy fields: %+v", opts)
	}
	w, err := OpenConfig("inproc", 2, TransportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Comm(0).Send(1, 1, []byte("compat")); err != nil {
		t.Fatal(err)
	}
	if got, err := w.Comm(1).Recv(0, 1); err != nil || string(got) != "compat" {
		t.Fatalf("legacy-config world exchange: %q, %v", got, err)
	}
}
