package comm

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTCPMulticastFallsBackToUnicast(t *testing.T) {
	// The TCP transport has no hardware multicast; Multicast must
	// still deliver everywhere and count one message per destination.
	ws, closer, err := NewTCPWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	if err := ws[0].Multicast([]int{1, 2, 3}, 5, []byte("fan")); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 3; r++ {
		got, err := ws[r].Recv(0, 5)
		if err != nil || string(got) != "fan" {
			t.Fatalf("rank %d: %q, %v", r, got, err)
		}
	}
	msgs, bytes := ws[0].Stats()
	if msgs != 3 || bytes != 9 {
		t.Errorf("stats = %d msgs / %d bytes, want 3/9 (per-destination accounting)", msgs, bytes)
	}
}

func TestTCPFrameLimit(t *testing.T) {
	ws, closer, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	huge := make([]byte, maxFrame+1)
	if err := ws[0].Send(1, 1, huge); err == nil {
		t.Error("over-limit frame accepted")
	}
}

func TestTCPCloseFailsPendingRecv(t *testing.T) {
	ws, closer, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ws[0].Recv(1, 9)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	closer()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestTCPSendAfterCloseFails(t *testing.T) {
	ws, closer, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	closer()
	if err := ws[0].Send(1, 1, []byte("late")); err == nil {
		t.Error("send after close succeeded")
	}
}

func TestTCPCollectivesUnderConcurrentTraffic(t *testing.T) {
	// Collectives interleaved with point-to-point chatter on other
	// tags must not cross-talk.
	ws, closer, err := NewTCPWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	err = SPMD(ws, func(c *Comm) error {
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + 2) % c.Size()
		for round := 0; round < 20; round++ {
			if err := c.Send(next, 77, []byte{byte(round)}); err != nil {
				return err
			}
			sum, err := c.AllReduceF64(78, []float64{float64(c.Rank())}, func(a, b float64) float64 { return a + b })
			if err != nil {
				return err
			}
			if sum[0] != 3 {
				return fmt.Errorf("round %d: allreduce = %v", round, sum[0])
			}
			got, err := c.Recv(prev, 77)
			if err != nil {
				return err
			}
			if got[0] != byte(round) {
				return fmt.Errorf("round %d: ring got %d", round, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
