package comm

import (
	"bytes"
	"testing"
)

func TestRecvAnyOfRespectsMask(t *testing.T) {
	for name, ws := range worlds(t, 3) {
		t.Run(name, func(t *testing.T) {
			// Both peers send; the masked receive must return rank 2's
			// message even though rank 1's is (or may be) already
			// queued ahead of it.
			if err := ws[1].Send(0, 21, []byte{1}); err != nil {
				t.Fatal(err)
			}
			if err := ws[2].Send(0, 21, []byte{2}); err != nil {
				t.Fatal(err)
			}
			src, data, err := ws[0].RecvAnyOf(21, []bool{false, false, true})
			if err != nil {
				t.Fatal(err)
			}
			if src != 2 || data[0] != 2 {
				t.Fatalf("masked receive returned src %d payload %v", src, data)
			}
			// Rank 1's message is still queued for a later receive.
			src, data, err = ws[0].RecvAnyOf(21, []bool{false, true, false})
			if err != nil || src != 1 || data[0] != 1 {
				t.Fatalf("queued message lost: src %d payload %v err %v", src, data, err)
			}
		})
	}
}

func TestRecvAnyOfKeepsFutureMessagesQueued(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	// Rank 1 runs two "operations" ahead: both messages sit in rank
	// 0's mailbox. Masked receives must consume them strictly in FIFO
	// order, one per operation.
	for i := byte(0); i < 2; i++ {
		if err := ws[1].Send(0, 22, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	mask := []bool{false, true}
	for i := byte(0); i < 2; i++ {
		src, data, err := ws[0].RecvAnyOf(22, mask)
		if err != nil || src != 1 || data[0] != i {
			t.Fatalf("op %d: src %d payload %v err %v", i, src, data, err)
		}
	}
}

func TestPollAnyOf(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	if _, _, ok, err := ws[0].PollAnyOf(23, nil); ok || err != nil {
		t.Fatalf("empty poll: ok=%v err=%v", ok, err)
	}
	if err := ws[1].Send(0, 23, []byte("x")); err != nil {
		t.Fatal(err)
	}
	src, data, ok, err := ws[0].PollAnyOf(23, []bool{false, true})
	if err != nil || !ok || src != 1 || string(data) != "x" {
		t.Fatalf("poll after send: src=%d data=%q ok=%v err=%v", src, data, ok, err)
	}
	// The wrong mask leaves a queued message untouched.
	if err := ws[1].Send(0, 23, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := ws[0].PollAnyOf(23, []bool{true, false}); ok {
		t.Fatal("poll returned a message the mask excluded")
	}
}

func TestRecvInto(t *testing.T) {
	for name, ws := range worlds(t, 2) {
		t.Run(name, func(t *testing.T) {
			payload := []byte{1, 2, 3, 4, 5}
			if err := ws[0].Send(1, 24, payload); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			n, err := ws[1].RecvInto(0, 24, buf)
			if err != nil || n != 5 {
				t.Fatalf("RecvInto = %d, %v", n, err)
			}
			if !bytes.Equal(buf[:n], payload) {
				t.Fatalf("RecvInto copied %v", buf[:n])
			}
			// A payload that does not fit is an error.
			if err := ws[0].Send(1, 24, make([]byte, 16)); err != nil {
				t.Fatal(err)
			}
			if _, err := ws[1].RecvInto(0, 24, buf); err == nil {
				t.Fatal("oversized payload accepted")
			}
		})
	}
}

func TestReleaseRecyclesBuffers(t *testing.T) {
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	payload := make([]byte, 512)
	// After a Release, the next send into the same mailbox reuses the
	// returned buffer (same backing array).
	if err := ws[0].Send(1, 25, payload); err != nil {
		t.Fatal(err)
	}
	data, err := ws[1].Recv(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	first := &data[:1][0]
	ws[1].Release(data)
	if err := ws[0].Send(1, 25, payload); err != nil {
		t.Fatal(err)
	}
	data, err = ws[1].Recv(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if &data[:1][0] != first {
		t.Error("released buffer was not reused by the next send")
	}
}

func TestInprocSteadyStateAllocFree(t *testing.T) {
	// The executor acceptance criterion at the transport level: once
	// the pool is warm, a send/receive/Release round trip on the
	// inproc transport touches the allocator zero times.
	ws, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	payload := make([]byte, 1024)
	mask := []bool{true, true}
	op := func() {
		if err := ws[0].Send(1, 26, payload); err != nil {
			t.Fatal(err)
		}
		_, data, err := ws[1].RecvAnyOf(26, mask)
		if err != nil {
			t.Fatal(err)
		}
		ws[1].Release(data)
	}
	for i := 0; i < 8; i++ {
		op() // warm the pool and the per-(src,tag) queue
	}
	if n := testing.AllocsPerRun(200, op); n > 0 {
		t.Errorf("steady-state send/recv/release allocates %v times per op, want 0", n)
	}
}
