package comm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestF64RoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64}
	got, err := BytesToF64s(F64sToBytes(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("f64[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
	nan, err := BytesToF64s(F64sToBytes([]float64{math.NaN()}))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(nan[0]) {
		t.Error("NaN did not round-trip")
	}
}

func TestF64RoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		got, err := BytesToF64s(F64sToBytes(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestI64RoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		got, err := BytesToI64s(I64sToBytes(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestI32RoundTripProperty(t *testing.T) {
	f := func(vals []int32) bool {
		got, err := BytesToI32s(I32sToBytes(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeBadLengths(t *testing.T) {
	if _, err := BytesToF64s(make([]byte, 7)); err == nil {
		t.Error("7 bytes accepted as float64s")
	}
	if _, err := BytesToI64s(make([]byte, 9)); err == nil {
		t.Error("9 bytes accepted as int64s")
	}
	if _, err := BytesToI32s(make([]byte, 3)); err == nil {
		t.Error("3 bytes accepted as int32s")
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{},
		{[]byte("a")},
		{[]byte(""), []byte("bc"), nil, []byte("defg")},
	}
	for _, sections := range cases {
		got, err := DecodeSections(EncodeSections(sections))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(sections) {
			t.Fatalf("section count %d, want %d", len(got), len(sections))
		}
		for i := range sections {
			if string(got[i]) != string(sections[i]) {
				t.Errorf("section %d = %q, want %q", i, got[i], sections[i])
			}
		}
	}
}

func TestSectionsRoundTripProperty(t *testing.T) {
	f := func(sections [][]byte) bool {
		got, err := DecodeSections(EncodeSections(sections))
		if err != nil || len(got) != len(sections) {
			return false
		}
		for i := range sections {
			if string(got[i]) != string(sections[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeSectionsErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{1, 0, 0, 0},             // one section promised, no header
		{1, 0, 0, 0, 5, 0, 0, 0}, // 5 bytes promised, none present
		append(EncodeSections([][]byte{{1}}), 0xFF), // trailing garbage
	}
	for i, c := range cases {
		if _, err := DecodeSections(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecodeSectionsBoundsCount(t *testing.T) {
	// A corrupt header promising 4 billion sections must be rejected
	// before the preallocation, not by an out-of-memory crash: each
	// section costs at least 4 bytes, so the payload length bounds the
	// plausible count.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeSections(huge); err == nil {
		t.Fatal("4-billion-section header accepted")
	}
	// Still permissive where the count is physically possible.
	ok := EncodeSections([][]byte{nil, nil, nil})
	if _, err := DecodeSections(ok); err != nil {
		t.Fatalf("valid empty sections rejected: %v", err)
	}
}

func TestInPlaceF64Codecs(t *testing.T) {
	vals := []float64{1.5, -2.25, math.Pi, 0}
	buf := make([]byte, 8*len(vals))
	PutF64s(buf, vals)
	if string(buf) != string(F64sToBytes(vals)) {
		t.Fatal("PutF64s disagrees with F64sToBytes")
	}
	dst := make([]float64, len(vals))
	if err := GetF64s(dst, buf); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dst[i] != vals[i] {
			t.Fatalf("GetF64s[%d] = %v, want %v", i, dst[i], vals[i])
		}
	}
	if err := GetF64s(dst[:2], buf); err == nil {
		t.Error("length mismatch accepted by GetF64s")
	}
}

func TestIndexedF64Codecs(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50}
	idx := []int32{4, 0, 2}
	buf := make([]byte, 8*len(idx))
	PackF64s(buf, vals, idx)

	// Unpack scatters the gathered values into new positions.
	out := make([]float64, 5)
	if err := UnpackF64s(out, idx, buf); err != nil {
		t.Fatal(err)
	}
	if out[4] != 50 || out[0] != 10 || out[2] != 30 {
		t.Fatalf("UnpackF64s = %v", out)
	}
	// Add accumulates on top.
	if err := AddF64s(out, idx, buf); err != nil {
		t.Fatal(err)
	}
	if out[4] != 100 || out[0] != 20 || out[2] != 60 {
		t.Fatalf("AddF64s = %v", out)
	}
	// Length mismatches are rejected.
	if err := UnpackF64s(out, idx, buf[:8]); err == nil {
		t.Error("short payload accepted by UnpackF64s")
	}
	if err := AddF64s(out, idx[:1], buf); err == nil {
		t.Error("long payload accepted by AddF64s")
	}
}

func TestSectionsDoNotAlias(t *testing.T) {
	// Decoded sections must not allow appends to clobber siblings.
	enc := EncodeSections([][]byte{[]byte("ab"), []byte("cd")})
	got, err := DecodeSections(enc)
	if err != nil {
		t.Fatal(err)
	}
	_ = append(got[0], 'X')
	if string(got[1]) != "cd" {
		t.Error("append to one section clobbered the next")
	}
}
