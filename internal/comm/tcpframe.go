package comm

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// TCP wire format. Each framed write carries one batch:
//
//	[flags u8][bodyLen u32 LE][body]
//
// flags' low two bits tag the body's compression codec; all other bits
// are reserved and must be zero. The (decompressed) body is a sequence
// of sections, each one tagged message:
//
//	[tag i32 LE][payloadLen u32 LE][payload]
//
// Sections must tile the body exactly. The reserved tag hbTag marks a
// heartbeat section: pure liveness traffic that resets the receiver's
// read deadline and is never delivered to the mailbox.
const (
	codecNone  = 0
	codecGzip  = 1
	codecFlate = 2
	codecBits  = 0x03

	frameHdr   = 5
	sectionHdr = 8

	// hbTag is the reserved heartbeat section tag; Send rejects it.
	hbTag = math.MinInt32

	// maxBatch bounds a batch body (compressed or not): one oversized
	// message may exceed the configured batch cap, so the hard limit is
	// a single maximal section.
	maxBatch = maxFrame + sectionHdr

	// compressMin is the smallest body worth compressing; smaller
	// batches go out raw under whatever codec is configured.
	compressMin = 128
)

// maxDecodedBatch caps how far a compressed body may inflate — the
// zip-bomb guard. A variable only so the bound test can exercise the
// limit without actually inflating a gigabyte.
var maxDecodedBatch int64 = maxBatch

// codecOf maps a TransportOptions.Compression name to its wire tag.
func codecOf(name string) (uint8, error) {
	switch name {
	case "", "none":
		return codecNone, nil
	case "gzip":
		return codecGzip, nil
	case "flate":
		return codecFlate, nil
	default:
		return 0, fmt.Errorf("comm: unknown compression codec %q (want none, gzip or flate)", name)
	}
}

// appendTCPSection appends one tagged section to a batch body.
func appendTCPSection(dst []byte, tag int, payload []byte) []byte {
	var hdr [sectionHdr]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeTCPHeader parses a frame header.
func decodeTCPHeader(hdr []byte) (codec uint8, bodyLen int, err error) {
	if len(hdr) != frameHdr {
		return 0, 0, fmt.Errorf("comm: %d-byte frame header", len(hdr))
	}
	flags := hdr[0]
	if flags&^byte(codecBits) != 0 {
		return 0, 0, fmt.Errorf("comm: reserved frame flag bits %#02x set", flags)
	}
	codec = flags & codecBits
	if codec == codecBits {
		return 0, 0, fmt.Errorf("comm: unknown frame codec tag %d", codec)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxBatch {
		return 0, 0, fmt.Errorf("comm: %d-byte frame body exceeds the batch limit", n)
	}
	return codec, int(n), nil
}

// forEachTCPSection walks a decompressed batch body, calling fn for
// every section. It fails if the sections do not tile the body exactly.
func forEachTCPSection(body []byte, fn func(tag int, payload []byte) error) error {
	for len(body) > 0 {
		if len(body) < sectionHdr {
			return fmt.Errorf("comm: %d-byte section header remnant", len(body))
		}
		tag := int(int32(binary.LittleEndian.Uint32(body[:4])))
		n := binary.LittleEndian.Uint32(body[4:8])
		if n > maxFrame {
			return fmt.Errorf("comm: %d-byte section exceeds the frame limit", n)
		}
		if uint32(len(body)-sectionHdr) < n {
			return fmt.Errorf("comm: section of %d bytes in a %d-byte body remnant", n, len(body))
		}
		if err := fn(tag, body[sectionHdr:sectionHdr+int(n)]); err != nil {
			return err
		}
		body = body[sectionHdr+int(n):]
	}
	return nil
}

// tcpCompressor compresses batch bodies for one writer goroutine,
// reusing its codec state and scratch buffer across frames.
type tcpCompressor struct {
	codec uint8
	buf   bytes.Buffer
	gz    *gzip.Writer
	fl    *flate.Writer
}

func newTCPCompressor(codec uint8) *tcpCompressor { return &tcpCompressor{codec: codec} }

// frame appends a complete wire frame for body to dst: the header plus
// the body, compressed when the writer's codec is set and the body is
// big enough to be worth it. Each frame records its own codec, so raw
// and compressed frames interleave freely on one connection.
func (c *tcpCompressor) frame(dst, body []byte) ([]byte, error) {
	codec := c.codec
	out := body
	if codec != codecNone && len(body) >= compressMin {
		c.buf.Reset()
		var err error
		switch codec {
		case codecGzip:
			if c.gz == nil {
				c.gz = gzip.NewWriter(&c.buf)
			} else {
				c.gz.Reset(&c.buf)
			}
			_, err = c.gz.Write(body)
			if err == nil {
				err = c.gz.Close()
			}
		case codecFlate:
			if c.fl == nil {
				c.fl, err = flate.NewWriter(&c.buf, flate.DefaultCompression)
			} else {
				c.fl.Reset(&c.buf)
			}
			if err == nil {
				_, err = c.fl.Write(body)
			}
			if err == nil {
				err = c.fl.Close()
			}
		}
		if err != nil {
			return dst, fmt.Errorf("comm: compress batch: %w", err)
		}
		if c.buf.Len() < len(body) {
			out = c.buf.Bytes()
		} else {
			codec = codecNone // incompressible; send raw
		}
	} else {
		codec = codecNone
	}
	var hdr [frameHdr]byte
	hdr[0] = codec
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(out)))
	dst = append(dst, hdr[:]...)
	return append(dst, out...), nil
}

// decodeTCPBody returns the decompressed batch body, reusing *scratch
// for the decompressed bytes. The returned slice aliases body (codec
// none) or *scratch and is only valid until the next call.
func decodeTCPBody(codec uint8, body []byte, scratch *[]byte) ([]byte, error) {
	if codec == codecNone {
		return body, nil
	}
	var r io.Reader
	switch codec {
	case codecGzip:
		gz, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("comm: gzip batch: %w", err)
		}
		defer gz.Close()
		r = gz
	case codecFlate:
		fl := flate.NewReader(bytes.NewReader(body))
		defer fl.Close()
		r = fl
	default:
		return nil, fmt.Errorf("comm: unknown frame codec tag %d", codec)
	}
	// Bound the decompressed size so a hostile frame cannot balloon
	// memory: anything past the batch limit is a protocol violation.
	buf := bytes.NewBuffer((*scratch)[:0])
	n, err := io.Copy(buf, io.LimitReader(r, maxDecodedBatch+1))
	*scratch = buf.Bytes()
	if err != nil {
		return nil, fmt.Errorf("comm: decompress batch: %w", err)
	}
	if n > maxDecodedBatch {
		return nil, fmt.Errorf("comm: decompressed batch exceeds the %d-byte limit", maxDecodedBatch)
	}
	return *scratch, nil
}

// tcpSection is one decoded tagged message, for tests and fuzzing.
type tcpSection struct {
	tag     int
	payload []byte
}

// encodeTCPBatch builds a complete wire frame from sections — the
// inverse of decodeTCPFrame, used by tests and the fuzz seed corpus.
func encodeTCPBatch(sections []tcpSection, codec uint8) ([]byte, error) {
	var body []byte
	for _, s := range sections {
		body = appendTCPSection(body, s.tag, s.payload)
	}
	return newTCPCompressor(codec).frame(nil, body)
}

// decodeTCPFrame parses one complete wire frame (header, optional
// compression, section boundaries) into its sections. It is the
// single-buffer form of the reader goroutine's decode path and the
// fuzzing entry point.
func decodeTCPFrame(frame []byte) ([]tcpSection, error) {
	if len(frame) < frameHdr {
		return nil, fmt.Errorf("comm: %d-byte frame", len(frame))
	}
	codec, n, err := decodeTCPHeader(frame[:frameHdr])
	if err != nil {
		return nil, err
	}
	if len(frame)-frameHdr != n {
		return nil, fmt.Errorf("comm: frame header claims %d body bytes, frame carries %d", n, len(frame)-frameHdr)
	}
	var scratch []byte
	body, err := decodeTCPBody(codec, frame[frameHdr:], &scratch)
	if err != nil {
		return nil, err
	}
	var out []tcpSection
	err = forEachTCPSection(body, func(tag int, payload []byte) error {
		out = append(out, tcpSection{tag: tag, payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
