package comm

import (
	"fmt"
	"time"

	"stance/internal/vtime"
)

// TransportOptions is the composable transport configuration passed to
// Open. It replaces the old flat TransportConfig: the model and clock
// keep their meaning, and the remaining fields tune the socket
// transports (today: "tcp"). The zero value is valid and means "library
// defaults" everywhere; factories ignore fields that do not apply to
// them (the in-process transport has no sockets to batch or
// heartbeat). Open validates the options before building the world, so
// an inconsistent tuning fails loudly at one place.
type TransportOptions struct {
	// Model is the network cost model (nil means a free network). The
	// in-process transport applies the full model; the TCP transport
	// charges Latency/Bandwidth on the sender's clock before each
	// socket write and applies Delay on the receive side through a
	// courier, additive to the real wire time.
	Model *Model
	// Clock is the time source for charges, delays, timeouts and all
	// runtime measurement (nil means the real clock). A vtime.Sim runs
	// the world in deterministic virtual time; only the in-process
	// transport supports it — real sockets deliver on the wall clock,
	// which a virtual clock cannot see.
	Clock vtime.Clock

	// Topology assigns ranks to node groups, turning the flat world
	// into a two-level one (nil means flat). Its size must equal the
	// world size. With a topology set, every endpoint counts its
	// inter-group messages and bytes (Comm.InterStats,
	// World.InterGroupStats), the in-process and TCP transports price a
	// message by whether its endpoints share a group (see InterModel),
	// and the "hybrid" transport — which requires a topology — routes
	// intra-group traffic through shared memory and inter-group traffic
	// over sockets.
	Topology *Topology
	// InterModel prices messages whose endpoints lie in different
	// groups; Model keeps pricing intra-group (and flat-world) traffic.
	// nil means inter-group traffic costs the same as intra-group.
	// Requires Topology.
	InterModel *Model

	// FlushPeriod is how long a connection's writer waits after the
	// first queued message to coalesce more into the same framed write
	// (gofast-style tx batching). Zero keeps batching opportunistic:
	// the writer sends immediately, still draining everything already
	// queued into one write. Must stay below HeartbeatInterval when
	// both are set, or flush latency would masquerade as missed
	// heartbeats.
	FlushPeriod time.Duration
	// BatchBytes caps the payload bytes one framed write may carry
	// (default 64 KiB). A batch always carries at least one message, so
	// a single message larger than the cap still goes out alone;
	// setting BatchBytes to 1 therefore degrades to one write per
	// message — the unbatched baseline the benchmarks compare against.
	BatchBytes int
	// Compression selects a per-batch codec: "" or "none", "gzip", or
	// "flate". The codec is tagged in each frame header, so receivers
	// need no configuration agreement; tiny batches are sent raw even
	// when a codec is configured.
	Compression string
	// HeartbeatInterval enables connection liveness: every interval
	// each endpoint sends a heartbeat section to every peer, and
	// readers arm a read deadline of the same interval. Zero (the
	// default) disables heartbeats and read deadlines.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many consecutive read-deadline expiries
	// declare a peer dead (default 3). A dead peer's pending and future
	// receives fail with ErrPeerDead — which unwraps to ErrTimeout, so
	// checkpoint failure detection treats transport-level liveness
	// exactly like a missed protocol heartbeat, only sooner.
	HeartbeatMiss int
	// OutboxHighWater bounds each per-peer send queue in messages
	// (default 4096). A sender that runs ahead of the wire blocks at
	// the mark until the writer drains, and each stall increments the
	// n_tx_backpressure counter — a stalled receiver shows up in stats
	// instead of growing memory without limit.
	OutboxHighWater int
	// DialTimeout and AcceptTimeout bound the mesh construction:
	// how long one dial, and one accept, may take during Open
	// (default 10s each).
	DialTimeout   time.Duration
	AcceptTimeout time.Duration
}

// Transport tuning defaults, applied by withDefaults.
const (
	defaultBatchBytes      = 64 << 10
	defaultHeartbeatMiss   = 3
	defaultOutboxHighWater = 4096
	defaultMeshTimeout     = 10 * time.Second
)

// Validate checks the options for consistency. Open calls it before
// building a world; factories may assume validated options.
func (o TransportOptions) Validate() error {
	if o.FlushPeriod < 0 {
		return fmt.Errorf("comm: negative flush period %v", o.FlushPeriod)
	}
	if o.BatchBytes < 0 {
		return fmt.Errorf("comm: negative batch cap %d", o.BatchBytes)
	}
	if o.BatchBytes > maxFrame {
		return fmt.Errorf("comm: batch cap %d exceeds the %d-byte frame limit", o.BatchBytes, maxFrame)
	}
	if _, err := codecOf(o.Compression); err != nil {
		return err
	}
	if o.HeartbeatInterval < 0 {
		return fmt.Errorf("comm: negative heartbeat interval %v", o.HeartbeatInterval)
	}
	if o.HeartbeatMiss < 0 {
		return fmt.Errorf("comm: negative heartbeat miss budget %d", o.HeartbeatMiss)
	}
	if o.HeartbeatInterval > 0 && o.FlushPeriod >= o.HeartbeatInterval {
		return fmt.Errorf("comm: flush period %v must stay below the heartbeat interval %v (flush latency would read as missed heartbeats)",
			o.FlushPeriod, o.HeartbeatInterval)
	}
	if o.OutboxHighWater < 0 {
		return fmt.Errorf("comm: negative outbox high-water mark %d", o.OutboxHighWater)
	}
	if o.DialTimeout < 0 || o.AcceptTimeout < 0 {
		return fmt.Errorf("comm: negative mesh deadline (dial %v, accept %v)", o.DialTimeout, o.AcceptTimeout)
	}
	if o.InterModel != nil && o.Topology == nil {
		return fmt.Errorf("comm: InterModel requires a Topology (there is no inter-group traffic to price on a flat world)")
	}
	return nil
}

// pairModel returns the model pricing a message between two ranks
// under the options' topology: InterModel when one is set and the
// ranks lie in different groups, Model otherwise.
func (o TransportOptions) pairModel(src, dst int) *Model {
	if o.InterModel != nil && !o.Topology.SameGroup(src, dst) {
		return o.InterModel
	}
	return o.Model
}

// withDefaults resolves zero tuning fields to the library defaults.
// Model and Clock stay as given (nil is meaningful for both).
func (o TransportOptions) withDefaults() TransportOptions {
	if o.BatchBytes == 0 {
		o.BatchBytes = defaultBatchBytes
	}
	if o.HeartbeatMiss == 0 {
		o.HeartbeatMiss = defaultHeartbeatMiss
	}
	if o.OutboxHighWater == 0 {
		o.OutboxHighWater = defaultOutboxHighWater
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = defaultMeshTimeout
	}
	if o.AcceptTimeout == 0 {
		o.AcceptTimeout = defaultMeshTimeout
	}
	return o
}

// TransportStats are the per-connection wire counters a stat-reporting
// transport accumulates (gofast-style), summed over an endpoint's
// connections. NTx/NRx count tagged messages entering and leaving the
// wire, NFlushes counts framed writes (so NTx/NFlushes is the achieved
// batching factor), NTxByte/NRxByte count wire bytes including frame
// headers and after compression, NDroppedHB counts read-deadline
// expiries (missed heartbeats), and NTxBackpressure counts sends that
// stalled at an outbox high-water mark.
type TransportStats struct {
	NTx             int64 `json:"n_tx"`
	NRx             int64 `json:"n_rx"`
	NFlushes        int64 `json:"n_flushes"`
	NTxByte         int64 `json:"n_txbyte"`
	NRxByte         int64 `json:"n_rxbyte"`
	NDroppedHB      int64 `json:"n_dropped_hb"`
	NTxBackpressure int64 `json:"n_tx_backpressure"`
}

// Add accumulates o into s.
func (s *TransportStats) Add(o TransportStats) {
	s.NTx += o.NTx
	s.NRx += o.NRx
	s.NFlushes += o.NFlushes
	s.NTxByte += o.NTxByte
	s.NRxByte += o.NRxByte
	s.NDroppedHB += o.NDroppedHB
	s.NTxBackpressure += o.NTxBackpressure
}

// Sub returns s minus o, for before/after deltas.
func (s TransportStats) Sub(o TransportStats) TransportStats {
	return TransportStats{
		NTx:             s.NTx - o.NTx,
		NRx:             s.NRx - o.NRx,
		NFlushes:        s.NFlushes - o.NFlushes,
		NTxByte:         s.NTxByte - o.NTxByte,
		NRxByte:         s.NRxByte - o.NRxByte,
		NDroppedHB:      s.NDroppedHB - o.NDroppedHB,
		NTxBackpressure: s.NTxBackpressure - o.NTxBackpressure,
	}
}

// statReporter is implemented by transports that keep wire counters.
type statReporter interface {
	transportStats() (TransportStats, bool)
}

// TransportStats returns the endpoint's wire counters when its
// transport keeps them (the TCP transport does; in-process endpoints
// have no wire and report ok=false). Sub-world endpoints report their
// root endpoint's counters.
func (c *Comm) TransportStats() (TransportStats, bool) {
	if sr, ok := c.tr.(statReporter); ok {
		return sr.transportStats()
	}
	return TransportStats{}, false
}

// TransportStats sums the wire counters of every endpoint that reports
// them; ok=false means the world's transport keeps none.
func (w *World) TransportStats() (TransportStats, bool) {
	var sum TransportStats
	any := false
	for _, c := range w.comms {
		if s, ok := c.TransportStats(); ok {
			sum.Add(s)
			any = true
		}
	}
	return sum, any
}
