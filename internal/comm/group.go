package comm

import "fmt"

// Topology assigns every rank of a world to a node group — the
// two-level structure of a nonuniform computational environment: fast
// links inside a group (one department's switched LAN, one SMP node),
// a slow shared link between groups. The partitioner cuts across
// groups before cutting within them, the balancer aggregates load
// reports through group leaders, and a transport prices (or routes) a
// message by whether its endpoints share a group.
//
// A Topology is immutable after construction and safe for concurrent
// use.
type Topology struct {
	groupOf []int   // rank -> group id
	members [][]int // group id -> member ranks, ascending
}

// NewTopology builds a topology from a rank -> group assignment. Group
// ids must be a contiguous range 0..G-1 with every group non-empty, so
// that group ids index per-group state everywhere downstream.
func NewTopology(groupOf []int) (*Topology, error) {
	if len(groupOf) == 0 {
		return nil, fmt.Errorf("comm: topology over no ranks")
	}
	groups := 0
	for rank, g := range groupOf {
		if g < 0 || g >= len(groupOf) {
			return nil, fmt.Errorf("comm: rank %d assigned to group %d of at most %d", rank, g, len(groupOf))
		}
		if g+1 > groups {
			groups = g + 1
		}
	}
	members := make([][]int, groups)
	for rank, g := range groupOf {
		members[g] = append(members[g], rank)
	}
	for g, m := range members {
		if len(m) == 0 {
			return nil, fmt.Errorf("comm: group %d is empty (group ids must form a contiguous range)", g)
		}
	}
	return &Topology{groupOf: append([]int(nil), groupOf...), members: members}, nil
}

// ContiguousGroups builds the even block topology: p ranks split into
// groups contiguous blocks of near-equal size (the first p%groups
// groups get one extra rank) — the shape of a cluster of equal
// departments, and what the -groups CLI flags construct.
func ContiguousGroups(p, groups int) (*Topology, error) {
	if p <= 0 {
		return nil, fmt.Errorf("comm: topology over %d ranks", p)
	}
	if groups <= 0 || groups > p {
		return nil, fmt.Errorf("comm: %d groups over %d ranks", groups, p)
	}
	groupOf := make([]int, p)
	base, extra := p/groups, p%groups
	rank := 0
	for g := 0; g < groups; g++ {
		size := base
		if g < extra {
			size++
		}
		for k := 0; k < size; k++ {
			groupOf[rank] = g
			rank++
		}
	}
	return NewTopology(groupOf)
}

// P returns the number of ranks the topology covers.
func (t *Topology) P() int { return len(t.groupOf) }

// Groups returns the number of node groups.
func (t *Topology) Groups() int { return len(t.members) }

// GroupOf returns the group holding rank.
func (t *Topology) GroupOf(rank int) int { return t.groupOf[rank] }

// Members returns group g's ranks in ascending order. The slice is
// shared and must not be modified.
func (t *Topology) Members(g int) []int { return t.members[g] }

// Leader returns group g's leader: its lowest rank. Leadership must be
// a pure function of the topology so every rank derives the same
// leaders without communicating.
func (t *Topology) Leader(g int) int { return t.members[g][0] }

// SameGroup reports whether two ranks share a group — the predicate
// that prices a message as intra- or inter-group.
func (t *Topology) SameGroup(a, b int) bool { return t.groupOf[a] == t.groupOf[b] }

// GroupOfSlice returns a copy of the rank -> group assignment.
func (t *Topology) GroupOfSlice() []int { return append([]int(nil), t.groupOf...) }
