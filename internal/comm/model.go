package comm

import (
	"errors"
	"fmt"
	"math"
	"time"

	"stance/internal/vtime"
)

// ErrTimeout is returned by RecvTimeout when no message arrives in
// time.
var ErrTimeout = errors.New("comm: receive timed out")

// ErrPeerDead is returned by receives that would block on a peer the
// transport's liveness layer has declared dead (missed heartbeats on
// the TCP transport). It wraps ErrTimeout, so failure-detection code
// matching errors.Is(err, ErrTimeout) sees a transport-level death
// exactly like a protocol-level timeout — just without waiting the
// protocol deadline out.
var ErrPeerDead = fmt.Errorf("comm: peer declared dead by transport liveness: %w", ErrTimeout)

// Model emulates the cost of a shared-medium network for the
// in-process transport: each message pays a fixed latency plus its
// size over the bandwidth, and the whole world shares one wire, so
// concurrent transmissions from different workstations serialize —
// the defining behaviour of the paper's shared Ethernet. A nil *Model
// means a free (infinitely fast) network.
type Model struct {
	// Latency is the fixed per-message cost (setup + wire latency).
	// It blocks the sender while it occupies the shared wire.
	Latency time.Duration
	// Bandwidth is the transfer rate in bytes per second; zero means
	// infinite.
	Bandwidth float64
	// Multicast reports whether the medium delivers one message to
	// many receivers for a single charge (Ethernet/ATM multicast,
	// paper Section 3.6).
	Multicast bool
	// Delay is a one-way delivery delay: after the wire releases, the
	// message stays invisible to the receiver for this long, but the
	// sender does not wait for it. Unlike Latency (sender-side
	// occupancy), this is the network time a split-phase executor can
	// hide behind interior computation — the injected-delay knob the
	// overlap benchmarks turn. Per-(source, tag) FIFO ordering is
	// preserved.
	Delay time.Duration
}

// maxCost is the saturation bound for modeled costs: converting a
// float64 above MaxInt64 to time.Duration wraps to a negative value on
// most architectures, so an absurd byte count over a tiny bandwidth
// must clamp here instead of charging a negative (or wrapped) cost.
const maxCost = time.Duration(math.MaxInt64)

// cost returns the time one message of n payload bytes occupies the
// sender. The result is saturated: it is never negative, and a
// transfer term that overflows time.Duration clamps to maxCost. A
// Bandwidth that is zero, negative or NaN means "infinite" (no
// transfer term), so a misconfigured model degrades to latency-only
// pricing instead of producing garbage durations.
func (m *Model) cost(n int) time.Duration {
	if m == nil {
		return 0
	}
	d := m.Latency
	if d < 0 {
		d = 0
	}
	if m.Bandwidth > 0 && n > 0 {
		t := float64(n) / m.Bandwidth * float64(time.Second)
		if t >= float64(maxCost) {
			return maxCost
		}
		if td := time.Duration(t); td > maxCost-d {
			return maxCost
		} else {
			d += td
		}
	}
	return d
}

// charge blocks the sender for the message's cost on the given clock.
// On a simulated clock the charge is an exact virtual duration; on the
// real clock it is a time.Sleep like before.
func (m *Model) charge(clock vtime.Clock, n int) {
	if d := m.cost(n); d > 0 {
		clock.Sleep(d)
	}
}

// Ethernet returns a model of the paper's interconnect: 10 Mbit/s
// shared Ethernet with ~1 ms message setup and hardware multicast.
// Scale multiplies both latency and transfer time (scale < 1 speeds
// the network up, handy for quick benchmark runs). Scale must be a
// finite positive number: dividing by zero, a negative value, NaN or
// an infinity would silently produce a meaningless bandwidth, so an
// invalid scale panics — a configuration bug, caught loudly at the
// construction site like a bad regexp in MustCompile.
func Ethernet(scale float64) *Model {
	if !(scale > 0) || math.IsInf(scale, 1) {
		panic(fmt.Sprintf("comm: Ethernet scale must be a finite positive number, got %g", scale))
	}
	return &Model{
		Latency:   time.Duration(float64(time.Millisecond) * scale),
		Bandwidth: 1.25e6 / scale,
		Multicast: true,
	}
}

// RecvTimeout is Comm.Recv with a deadline, for failure detection and
// tests. It is only supported on transports backed by a mailbox (both
// built-in transports are).
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	type timeoutRecver interface {
		recvTimeout(src, tag int, d time.Duration) ([]byte, error)
	}
	if tr, ok := c.tr.(timeoutRecver); ok {
		return tr.recvTimeout(src, tag, d)
	}
	return nil, errors.New("comm: transport does not support timed receive")
}
