package comm

// The "hybrid" transport composes the two built-in transports along a
// group topology: ranks that share a group exchange messages through
// shared in-process mailboxes (one department's fast switched LAN —
// here, literally memory), while ranks in different groups ride the
// full TCP mesh (the slow link between departments). It is the runtime
// shape the paper's nonuniform environment calls for: the transport
// itself is two-level, not just the cost model.
//
// Each endpoint embeds a full tcpTransport, so the socket machinery —
// batching writers, readers, heartbeats, stats, kill injection — works
// unchanged for the inter-group traffic, and receives of both kinds
// drain from the one mailbox the socket readers already feed.
// Per-(src, tag) FIFO holds because any (src, dst) pair uses exactly
// one path.

import "fmt"

func init() {
	RegisterTransport("hybrid", func(p int, opts TransportOptions) ([]*Comm, func() error, error) {
		return newHybridWorld(p, opts)
	})
}

// hybridTransport overrides the TCP endpoint's Send to route
// intra-group messages through the destination's mailbox directly,
// skipping the sockets. Everything else — receives, stats, liveness,
// kill, close — is the embedded TCP endpoint's.
type hybridTransport struct {
	*tcpTransport
	peers []*tcpTransport // all endpoints, indexed by rank, for mailbox access
	topo  *Topology
}

// newHybridWorld builds the hybrid world: a TCP mesh for the
// inter-group traffic, with intra-group sends rerouted through shared
// memory. The topology is mandatory — without one there is no "intra"
// to route differently, and the caller wants plain "tcp".
func newHybridWorld(p int, opts TransportOptions) ([]*Comm, func() error, error) {
	if opts.Topology == nil {
		return nil, nil, fmt.Errorf("comm: the hybrid transport requires a Topology (without groups it degenerates to \"tcp\")")
	}
	transports, closer, err := newTCPTransports(p, opts)
	if err != nil {
		return nil, nil, err
	}
	comms := make([]*Comm, p)
	for i := range comms {
		c, err := NewComm(i, p, &hybridTransport{
			tcpTransport: transports[i],
			peers:        transports,
			topo:         opts.Topology,
		})
		if err != nil {
			closer()
			return nil, nil, err
		}
		comms[i] = c
	}
	return comms, closer, nil
}

func (t *hybridTransport) Send(dst, tag int, data []byte) error {
	if !t.topo.SameGroup(t.rank, dst) {
		return t.tcpTransport.Send(dst, tag, data)
	}
	if tag == hbTag {
		return fmt.Errorf("comm: tag %#x is reserved for transport heartbeats", tag)
	}
	t.mu.Lock()
	killed, closed := t.killed, t.closed
	t.mu.Unlock()
	if killed {
		return ErrKilled
	}
	if closed {
		return ErrClosed
	}
	// Intra-group messages still pay the (fast) model for their group's
	// medium, then land in the destination's mailbox without touching a
	// socket; the destination's dispatch applies any modeled delivery
	// delay through its couriers, exactly as for a socket arrival.
	if m := t.modelFor(dst); m != nil {
		m.charge(t.clock, len(data))
	}
	peer := t.peers[dst]
	buf := peer.box.getBuf(len(data))
	copy(buf, data)
	if err := peer.dispatch(t.rank, tag, buf); err != nil {
		peer.box.putBuf(buf)
		return err
	}
	return nil
}
