package comm

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"stance/internal/vtime"
)

// maxFrame bounds a single message payload on the TCP transport.
const maxFrame = 1 << 30

// tcpTransport runs the same tagged-message protocol over loopback TCP
// sockets: a full mesh of connections, one writer goroutine per peer
// (so sends never block the application), and reader goroutines
// feeding the shared mailbox implementation.
type tcpTransport struct {
	rank  int
	size  int
	box   *mailbox
	model *Model      // optional sender-side cost model (Latency/Bandwidth only)
	clock vtime.Clock // the clock charges run on (always real today; see newTCPWorld)

	mu     sync.Mutex
	outs   []*outbox // per-peer outgoing queues (nil for self)
	conns  []net.Conn
	closed bool
}

// outbox is an unbounded FIFO drained by one writer goroutine, so a
// slow receiver cannot deadlock a sender (the executor sends to all
// peers before receiving).
type outbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
}

func newOutbox() *outbox {
	o := &outbox{}
	o.cond = sync.NewCond(&o.mu)
	return o
}

func (o *outbox) push(frame []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return ErrClosed
	}
	o.queue = append(o.queue, frame)
	o.cond.Signal()
	return nil
}

func (o *outbox) pop() ([]byte, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.queue) == 0 && !o.closed {
		o.cond.Wait()
	}
	if len(o.queue) == 0 {
		return nil, false
	}
	frame := o.queue[0]
	o.queue = o.queue[1:]
	return frame, true
}

func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	o.cond.Broadcast()
	o.mu.Unlock()
}

// NewTCPWorld creates a world of p ranks connected by a full mesh of
// loopback TCP connections, demonstrating the runtime over real
// sockets. The returned closer shuts down all connections.
func NewTCPWorld(p int) ([]*Comm, func() error, error) {
	return newTCPWorld(p, nil, nil)
}

// newTCPWorld builds the TCP world with an optional cost model and
// clock. The model's Latency and Bandwidth charge the sender's clock
// before each socket write, so a zero-Delay model prices messages
// identically on inproc and tcp. Two things real sockets cannot do,
// and the constructor rejects loudly instead of approximating:
//
//   - Delay (one-way delivery delay without blocking the sender) would
//     need a courier between the wire and the receiver's mailbox;
//     kernel socket delivery happens when it happens.
//   - A simulated clock: socket reads complete on the wall clock,
//     invisible to a vtime.Sim, so the sim would advance past
//     in-flight messages (or declare a deadlock while bytes are on the
//     wire) and determinism is lost. Virtual time is an inproc-only
//     feature.
func newTCPWorld(p int, model *Model, clock vtime.Clock) ([]*Comm, func() error, error) {
	if p <= 0 {
		return nil, nil, fmt.Errorf("comm: world size must be positive, got %d", p)
	}
	if clock == nil {
		clock = vtime.Real{}
	}
	if vtime.AsSim(clock) != nil {
		return nil, nil, fmt.Errorf("comm: the tcp transport cannot run on a simulated clock (real sockets deliver on the wall clock); use the inproc transport for virtual-time runs")
	}
	if model != nil && model.Delay > 0 {
		return nil, nil, fmt.Errorf("comm: the tcp transport cannot simulate Model.Delay (kernel sockets deliver when they deliver); use the inproc transport for delay injection")
	}
	transports := make([]*tcpTransport, p)
	for i := range transports {
		transports[i] = &tcpTransport{
			rank:  i,
			size:  p,
			box:   newMailbox(clock),
			model: model,
			clock: clock,
			outs:  make([]*outbox, p),
			conns: make([]net.Conn, p),
		}
	}
	// Rank i listens; ranks j > i dial i. The dialer announces its
	// rank in the first 4 bytes.
	listeners := make([]net.Listener, p)
	for i := 0; i < p; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeListeners(listeners)
			return nil, nil, fmt.Errorf("comm: listen: %w", err)
		}
		listeners[i] = l
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 2*p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < p-1-i; n++ { // one connection from each higher-ranked dialer
				conn, err := listeners[i].Accept()
				if err != nil {
					errCh <- err
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					errCh <- err
					return
				}
				peer := int(binary.LittleEndian.Uint32(hdr[:]))
				if peer < 0 || peer >= p {
					errCh <- fmt.Errorf("comm: bad peer rank %d", peer)
					return
				}
				transports[i].attach(peer, conn)
			}
		}(i)
	}
	for j := 0; j < p; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for i := 0; i < j; i++ { // rank j dials every lower rank
				conn, err := net.Dial("tcp", listeners[i].Addr().String())
				if err != nil {
					errCh <- err
					return
				}
				var hdr [4]byte
				binary.LittleEndian.PutUint32(hdr[:], uint32(j))
				if _, err := conn.Write(hdr[:]); err != nil {
					errCh <- err
					return
				}
				transports[j].attach(i, conn)
			}
		}(j)
	}
	wg.Wait()
	close(errCh)
	closeListeners(listeners)
	if err := <-errCh; err != nil {
		for _, t := range transports {
			t.Close()
		}
		return nil, nil, fmt.Errorf("comm: tcp mesh setup: %w", err)
	}
	comms := make([]*Comm, p)
	for i := range comms {
		c, err := NewComm(i, p, transports[i])
		if err != nil {
			return nil, nil, err
		}
		comms[i] = c
	}
	closer := func() error {
		var first error
		for _, t := range transports {
			if err := t.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return comms, closer, nil
}

func closeListeners(ls []net.Listener) {
	for _, l := range ls {
		if l != nil {
			l.Close()
		}
	}
}

// attach wires a peer connection: an outbox+writer for sends and a
// reader pumping frames into the mailbox.
func (t *tcpTransport) attach(peer int, conn net.Conn) {
	out := newOutbox()
	t.mu.Lock()
	t.outs[peer] = out
	t.conns[peer] = conn
	t.mu.Unlock()
	go func() { // writer
		for {
			frame, ok := out.pop()
			if !ok {
				return
			}
			if _, err := conn.Write(frame); err != nil {
				return
			}
		}
	}()
	go func() { // reader
		for {
			var hdr [8]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				return
			}
			tag := int(int32(binary.LittleEndian.Uint32(hdr[:4])))
			n := binary.LittleEndian.Uint32(hdr[4:])
			if n > maxFrame {
				return
			}
			// Payloads come from the mailbox pool so released receive
			// buffers cycle back to the socket reader.
			payload := t.box.getBuf(int(n))
			if _, err := io.ReadFull(conn, payload); err != nil {
				t.box.putBuf(payload)
				return
			}
			if err := t.box.deliver(peer, tag, payload); err != nil {
				t.box.putBuf(payload)
				return
			}
		}
	}()
}

// Clock returns the clock the transport's charges run on.
func (t *tcpTransport) Clock() vtime.Clock { return t.clock }

func (t *tcpTransport) Send(dst, tag int, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("comm: message of %d bytes exceeds frame limit", len(data))
	}
	// Sender-side model charge, mirroring the inproc transport's cost
	// accounting so a latency-priced experiment reads the same on both
	// transports. Real sockets are point-to-point, so there is no
	// shared-wire serialization here — each sender charges its own
	// clock.
	if t.model != nil {
		t.model.charge(t.clock, len(data))
	}
	if dst == t.rank {
		buf := t.box.getBuf(len(data))
		copy(buf, data)
		if err := t.box.deliver(t.rank, tag, buf); err != nil {
			t.box.putBuf(buf)
			return err
		}
		return nil
	}
	t.mu.Lock()
	out := t.outs[dst]
	closed := t.closed
	t.mu.Unlock()
	if closed || out == nil {
		return ErrClosed
	}
	frame := make([]byte, 8+len(data))
	binary.LittleEndian.PutUint32(frame[:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(data)))
	copy(frame[8:], data)
	return out.push(frame)
}

func (t *tcpTransport) Recv(src, tag int) ([]byte, error) {
	return t.box.recv(nil, src, tag)
}

func (t *tcpTransport) RecvAny(tag int) (int, []byte, error) {
	return t.box.recvAny(nil, tag)
}

func (t *tcpTransport) RecvContext(ctx context.Context, src, tag int) ([]byte, error) {
	return t.box.recv(ctx, src, tag)
}

func (t *tcpTransport) RecvAnyContext(ctx context.Context, tag int) (int, []byte, error) {
	return t.box.recvAny(ctx, tag)
}

func (t *tcpTransport) RecvAnyOf(ctx context.Context, tag int, mask []bool) (int, []byte, error) {
	return t.box.recvAnyOf(ctx, tag, mask)
}

func (t *tcpTransport) PollAnyOf(tag int, mask []bool) (int, []byte, bool, error) {
	return t.box.pollAnyOf(tag, mask)
}

// Release returns a received payload buffer to the mailbox pool for
// reuse by the socket readers.
func (t *tcpTransport) Release(buf []byte) {
	t.box.putBuf(buf)
}

func (t *tcpTransport) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	return t.box.recvTimeout(src, tag, d)
}

func (t *tcpTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	outs := append([]*outbox(nil), t.outs...)
	conns := append([]net.Conn(nil), t.conns...)
	t.mu.Unlock()
	var errs []error
	for _, o := range outs {
		if o != nil {
			o.close()
		}
	}
	// Give writers a moment to flush queued frames before tearing the
	// connections down; readers end when peers close.
	time.Sleep(10 * time.Millisecond)
	for _, c := range conns {
		if c != nil {
			if err := c.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
				errs = append(errs, err)
			}
		}
	}
	t.box.close()
	return errors.Join(errs...)
}
