package comm

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stance/internal/vtime"
)

// maxFrame bounds a single message payload on the TCP transport.
const maxFrame = 1 << 30

// tcpTransport runs the tagged-message protocol over loopback TCP
// sockets, rebuilt on the gofast transport patterns: a full mesh of
// connections; per-peer bounded outboxes drained by writer goroutines
// that coalesce queued messages into single framed batch writes
// (optionally compressed per batch); reader goroutines that split
// batches back into sections and feed the shared mailbox; optional
// heartbeat traffic with read deadlines, so a silent peer is declared
// dead at the transport level and blocked receives fail with
// ErrPeerDead; and per-connection stat counters (n_tx, n_rx,
// n_flushes, ...) summed into TransportStats.
//
// Sub-worlds multiplex over the same mesh for free: a Comm.Sub
// endpoint translates onto its root endpoint, so every sub-world and
// jobsvc grant shares the root's socket pair per peer — there is one
// mesh per world, never one per sub-world.
type tcpTransport struct {
	rank  int
	size  int
	box   *mailbox
	model *Model      // optional sender-side cost model
	clock vtime.Clock // the clock charges run on (always real today; see newTCPWorld)
	opts  TransportOptions
	codec uint8

	stats tcpStats

	mu     sync.Mutex
	outs   []*outbox // per-peer outgoing queues (nil for self)
	conns  []net.Conn
	closed bool
	killed bool

	// Receive-side couriers apply Model.Delay on the real clock: one
	// courier per source preserves per-(src, tag) FIFO while messages
	// sit in modeled flight, additive to the real wire time. nil when
	// the model carries no delay.
	couriers    []chan delayedMsg
	courierStop chan struct{}
	courierOnce sync.Once

	hbStop chan struct{}
	hbOnce sync.Once
}

// tcpStats are one endpoint's wire counters, updated lock-free by the
// writer and reader goroutines.
type tcpStats struct {
	nTx, nRx, nFlushes, nTxByte, nRxByte, nDroppedHB, nTxBackpressure atomic.Int64
}

func (t *tcpTransport) transportStats() (TransportStats, bool) {
	return TransportStats{
		NTx:             t.stats.nTx.Load(),
		NRx:             t.stats.nRx.Load(),
		NFlushes:        t.stats.nFlushes.Load(),
		NTxByte:         t.stats.nTxByte.Load(),
		NRxByte:         t.stats.nRxByte.Load(),
		NDroppedHB:      t.stats.nDroppedHB.Load(),
		NTxBackpressure: t.stats.nTxBackpressure.Load(),
	}, true
}

// outbox accumulates one peer's outgoing sections directly into a
// pending batch buffer, double-buffered against the writer goroutine:
// senders append sections in place (no per-message allocation, no
// queue), the writer swaps the pending buffer out, frames it and hands
// the drained buffer back. Backpressure is two-fold, both counted: a
// high-water mark in messages, and the batch byte cap — a sender that
// outruns the wire blocks at either bound instead of growing memory
// without limit. Heartbeat pushes never block — under backpressure the
// data traffic itself proves liveness.
type outbox struct {
	mu    sync.Mutex
	ready *sync.Cond // signaled when a section or close arrives
	space *sync.Cond // signaled when the writer swaps the batch out

	buf      []byte        // pending batch: sections appended in place
	n        int           // sections in buf
	spare    []byte        // drained buffer returned by the writer
	hwm      int           // high-water mark in sections
	maxBytes int           // batch byte cap
	stall    *atomic.Int64 // the transport's backpressure counter

	closed bool
}

func newOutbox(hwm, maxBytes int, stall *atomic.Int64) *outbox {
	o := &outbox{hwm: hwm, maxBytes: maxBytes, stall: stall}
	o.ready = sync.NewCond(&o.mu)
	o.space = sync.NewCond(&o.mu)
	return o
}

// fullLocked reports whether a section of secLen more bytes must wait
// for the writer. A batch always carries at least one section, so an
// empty buffer admits any size.
func (o *outbox) fullLocked(secLen int) bool {
	if len(o.buf) == 0 {
		return false
	}
	return (o.hwm > 0 && o.n >= o.hwm) || len(o.buf)+secLen > o.maxBytes
}

// push appends one tagged section to the pending batch, blocking at
// the high-water mark or the batch byte cap until the writer drains.
func (o *outbox) push(tag int, data []byte) error {
	secLen := sectionHdr + len(data)
	o.mu.Lock()
	defer o.mu.Unlock()
	stalled := false
	for o.fullLocked(secLen) && !o.closed {
		if !stalled {
			stalled = true
			if o.stall != nil {
				o.stall.Add(1)
			}
		}
		o.space.Wait()
	}
	if o.closed {
		return ErrClosed
	}
	o.buf = appendTCPSection(o.buf, tag, data)
	o.n++
	o.ready.Signal()
	return nil
}

// tryPush appends a section only if there is room — the heartbeat
// path, which must never block behind backpressured data traffic.
func (o *outbox) tryPush(tag int, data []byte) {
	o.mu.Lock()
	if !o.closed && !o.fullLocked(sectionHdr+len(data)) {
		o.buf = appendTCPSection(o.buf, tag, data)
		o.n++
		o.ready.Signal()
	}
	o.mu.Unlock()
}

// popBatch blocks until sections are pending, optionally lingers one
// flush period to coalesce more, then swaps the whole pending batch
// out. The writer returns the buffer through recycle once framed.
// ok=false means the outbox is closed and fully drained.
func (o *outbox) popBatch(flush time.Duration, clock vtime.Clock) ([]byte, bool) {
	o.mu.Lock()
	for len(o.buf) == 0 && !o.closed {
		o.ready.Wait()
	}
	if len(o.buf) == 0 {
		o.mu.Unlock()
		return nil, false
	}
	if flush > 0 && !o.closed {
		// Linger: let the sender append more sections so they ride this
		// same framed write.
		o.mu.Unlock()
		clock.Sleep(flush)
		o.mu.Lock()
	}
	batch := o.buf
	o.buf = o.spare[:0]
	o.spare = nil
	o.n = 0
	o.space.Broadcast()
	o.mu.Unlock()
	return batch, true
}

// recycle hands a drained batch buffer back for the next swap.
func (o *outbox) recycle(batch []byte) {
	o.mu.Lock()
	if o.spare == nil || cap(batch) > cap(o.spare) {
		o.spare = batch[:0]
	}
	o.mu.Unlock()
}

// close marks the outbox closed; the writer drains what is already
// pending, then exits.
func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	o.ready.Broadcast()
	o.space.Broadcast()
	o.mu.Unlock()
}

// closeDiscard closes the outbox and drops everything pending — the
// crash path (killed endpoints flush nothing) and the dead-peer path
// (frames to a dead peer have nowhere to go).
func (o *outbox) closeDiscard() {
	o.mu.Lock()
	o.closed = true
	o.buf = o.buf[:0]
	o.n = 0
	o.ready.Broadcast()
	o.space.Broadcast()
	o.mu.Unlock()
}

// NewTCPWorld creates a world of p ranks connected by a full mesh of
// loopback TCP connections with default options, demonstrating the
// runtime over real sockets. The returned closer shuts down all
// connections.
func NewTCPWorld(p int) ([]*Comm, func() error, error) {
	return newTCPWorld(p, TransportOptions{})
}

// newTCPWorld builds the TCP world. The model's Latency and Bandwidth
// charge the sender's clock before each socket write, so a zero-Delay
// model prices messages identically on inproc and tcp; Model.Delay is
// applied on the receive side through per-source couriers, additive to
// the real wire time. One thing real sockets cannot do, and the
// constructor rejects loudly instead of approximating: a simulated
// clock. Socket reads complete on the wall clock, invisible to a
// vtime.Sim, so the sim would advance past in-flight messages (or
// declare a deadlock while bytes are on the wire) and determinism is
// lost. Virtual time is an inproc-only feature.
func newTCPWorld(p int, opts TransportOptions) ([]*Comm, func() error, error) {
	transports, closer, err := newTCPTransports(p, opts)
	if err != nil {
		return nil, nil, err
	}
	comms := make([]*Comm, p)
	for i := range comms {
		c, err := NewComm(i, p, transports[i])
		if err != nil {
			closer()
			return nil, nil, err
		}
		comms[i] = c
	}
	return comms, closer, nil
}

// newTCPTransports builds the endpoints and the socket mesh of a TCP
// world without wrapping them in Comms — the shared machinery of the
// "tcp" transport and the "hybrid" transport, which embeds these
// endpoints and reroutes intra-group traffic off their sockets.
func newTCPTransports(p int, opts TransportOptions) ([]*tcpTransport, func() error, error) {
	if p <= 0 {
		return nil, nil, fmt.Errorf("comm: world size must be positive, got %d", p)
	}
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	opts = opts.withDefaults()
	clock := opts.Clock
	if clock == nil {
		clock = vtime.Real{}
	}
	if vtime.AsSim(clock) != nil {
		return nil, nil, fmt.Errorf("comm: the tcp transport cannot run on a simulated clock (real sockets deliver on the wall clock); use the inproc transport for virtual-time runs")
	}
	codec, err := codecOf(opts.Compression)
	if err != nil {
		return nil, nil, err
	}
	model := opts.Model
	transports := make([]*tcpTransport, p)
	for i := range transports {
		t := &tcpTransport{
			rank:  i,
			size:  p,
			box:   newMailbox(clock),
			model: model,
			clock: clock,
			opts:  opts,
			codec: codec,
			outs:  make([]*outbox, p),
			conns: make([]net.Conn, p),
		}
		delayed := (model != nil && model.Delay > 0) ||
			(opts.InterModel != nil && opts.InterModel.Delay > 0)
		if delayed {
			t.couriers = make([]chan delayedMsg, p)
			t.courierStop = make(chan struct{})
			for s := range t.couriers {
				t.couriers[s] = make(chan delayedMsg, 1024)
				go courier(t.box, t.couriers[s], t.courierStop)
			}
		}
		transports[i] = t
	}
	// Rank i listens; ranks j > i dial i. The dialer announces its
	// rank in the first 4 bytes.
	listeners := make([]net.Listener, p)
	for i := 0; i < p; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeListeners(listeners)
			return nil, nil, fmt.Errorf("comm: listen: %w", err)
		}
		listeners[i] = l
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 2*p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < p-1-i; n++ { // one connection from each higher-ranked dialer
				if d, ok := listeners[i].(interface{ SetDeadline(time.Time) error }); ok {
					d.SetDeadline(time.Now().Add(opts.AcceptTimeout))
				}
				conn, err := listeners[i].Accept()
				if err != nil {
					errCh <- err
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					errCh <- err
					return
				}
				peer := int(binary.LittleEndian.Uint32(hdr[:]))
				if peer < 0 || peer >= p {
					errCh <- fmt.Errorf("comm: bad peer rank %d", peer)
					return
				}
				transports[i].attach(peer, conn)
			}
		}(i)
	}
	for j := 0; j < p; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for i := 0; i < j; i++ { // rank j dials every lower rank
				conn, err := net.DialTimeout("tcp", listeners[i].Addr().String(), opts.DialTimeout)
				if err != nil {
					errCh <- err
					return
				}
				var hdr [4]byte
				binary.LittleEndian.PutUint32(hdr[:], uint32(j))
				if _, err := conn.Write(hdr[:]); err != nil {
					errCh <- err
					return
				}
				transports[j].attach(i, conn)
			}
		}(j)
	}
	wg.Wait()
	close(errCh)
	closeListeners(listeners)
	if err := <-errCh; err != nil {
		for _, t := range transports {
			t.Close()
		}
		return nil, nil, fmt.Errorf("comm: tcp mesh setup: %w", err)
	}
	if opts.HeartbeatInterval > 0 {
		for _, t := range transports {
			t.hbStop = make(chan struct{})
			go t.heartbeater()
		}
	}
	closer := func() error {
		var first error
		for _, t := range transports {
			if err := t.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return transports, closer, nil
}

func closeListeners(ls []net.Listener) {
	for _, l := range ls {
		if l != nil {
			l.Close()
		}
	}
}

// attach wires a peer connection: a bounded outbox drained by a
// batching writer, and a reader splitting framed batches into the
// mailbox.
func (t *tcpTransport) attach(peer int, conn net.Conn) {
	out := newOutbox(t.opts.OutboxHighWater, t.opts.BatchBytes, &t.stats.nTxBackpressure)
	t.mu.Lock()
	t.outs[peer] = out
	t.conns[peer] = conn
	t.mu.Unlock()
	go t.writer(conn, out)
	go t.reader(peer, conn)
}

// writer drains one peer's outbox in batches: every pass coalesces the
// queued sections (up to the batch cap, lingering one flush period
// when configured) into a single framed — optionally compressed —
// write. One goroutine per connection, so sends never block the
// application on the socket.
func (t *tcpTransport) writer(conn net.Conn, out *outbox) {
	comp := newTCPCompressor(t.codec)
	var wire []byte
	for {
		batch, ok := out.popBatch(t.opts.FlushPeriod, t.clock)
		if !ok {
			return
		}
		var err error
		wire, err = comp.frame(wire[:0], batch)
		out.recycle(batch)
		if err != nil {
			return
		}
		if _, err := conn.Write(wire); err != nil {
			return
		}
		t.stats.nFlushes.Add(1)
		t.stats.nTxByte.Add(int64(len(wire)))
	}
}

// reader pumps one peer's framed batches into the mailbox. With
// heartbeats enabled it also runs the liveness protocol: every read
// arms a deadline of one heartbeat interval, an expiry with no bytes
// read counts as a missed heartbeat, and HeartbeatMiss consecutive
// misses — or an unexpected end of stream — declare the peer dead.
func (t *tcpTransport) reader(peer int, conn net.Conn) {
	hb := t.opts.HeartbeatInterval
	misses := 0
	var hdr [frameHdr]byte
	var body, scratch []byte
	// The buffered reader turns the header+body syscall pair into one
	// read for small frames, and drains back-to-back frames that arrived
	// together in a single syscall. Deadlines still arm on conn: a
	// timeout with nothing buffered surfaces as a zero-byte ReadFull,
	// exactly the heartbeat-miss signal below.
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		if t.isShutdown() {
			return
		}
		if hb > 0 {
			conn.SetReadDeadline(time.Now().Add(hb))
		}
		n, err := io.ReadFull(br, hdr[:])
		if err != nil {
			var ne net.Error
			if hb > 0 && n == 0 && errors.As(err, &ne) && ne.Timeout() {
				misses++
				t.stats.nDroppedHB.Add(1)
				if misses >= t.opts.HeartbeatMiss {
					t.declareDead(peer)
					return
				}
				continue
			}
			// EOF, reset, or a mid-header expiry: the stream is gone or
			// desynchronized. With liveness on, that is a death signal
			// too (unless this endpoint is the one shutting down).
			if hb > 0 && !t.isShutdown() {
				t.declareDead(peer)
			}
			return
		}
		misses = 0
		codec, blen, err := decodeTCPHeader(hdr[:])
		if err != nil {
			if hb > 0 && !t.isShutdown() {
				t.declareDead(peer)
			}
			return
		}
		if cap(body) < blen {
			body = make([]byte, blen)
		}
		body = body[:blen]
		if hb > 0 {
			conn.SetReadDeadline(time.Now().Add(hb))
		}
		if _, err := io.ReadFull(br, body); err != nil {
			if hb > 0 && !t.isShutdown() {
				t.declareDead(peer)
			}
			return
		}
		t.stats.nRxByte.Add(int64(frameHdr + blen))
		sections, err := decodeTCPBody(codec, body, &scratch)
		if err != nil {
			if hb > 0 && !t.isShutdown() {
				t.declareDead(peer)
			}
			return
		}
		err = forEachTCPSection(sections, func(tag int, payload []byte) error {
			if tag == hbTag {
				return nil // pure liveness traffic
			}
			// Payloads come from the mailbox pool so released receive
			// buffers cycle back to the socket reader.
			buf := t.box.getBuf(len(payload))
			copy(buf, payload)
			if err := t.dispatch(peer, tag, buf); err != nil {
				t.box.putBuf(buf)
				return err
			}
			t.stats.nRx.Add(1)
			return nil
		})
		if err != nil {
			return
		}
	}
}

// modelFor returns the model pricing a message between this rank and
// peer under the world's topology: the inter-group model when one is
// set and peer lies in another group, the base model otherwise.
func (t *tcpTransport) modelFor(peer int) *Model {
	return t.opts.pairModel(t.rank, peer)
}

// dispatch hands a mailbox-owned payload to this rank: directly, or
// through the source's courier when the model pricing that source
// carries a delivery delay.
func (t *tcpTransport) dispatch(src, tag int, buf []byte) error {
	if t.couriers != nil {
		if m := t.modelFor(src); m != nil && m.Delay > 0 {
			t.couriers[src] <- delayedMsg{src: src, tag: tag, buf: buf,
				readyAt: time.Now().Add(m.Delay)}
			return nil
		}
	}
	return t.box.deliver(src, tag, buf)
}

// heartbeater queues a heartbeat section to every peer each interval.
// Heartbeats ride the normal batching path (they are just sections),
// and never block behind backpressure — when an outbox is full, the
// data traffic draining it proves liveness by itself.
func (t *tcpTransport) heartbeater() {
	ticker := time.NewTicker(t.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.hbStop:
			return
		case <-ticker.C:
			for peer := 0; peer < t.size; peer++ {
				if peer == t.rank {
					continue
				}
				t.mu.Lock()
				out := t.outs[peer]
				t.mu.Unlock()
				if out != nil {
					out.tryPush(hbTag, nil)
				}
			}
		}
	}
}

// declareDead records a transport-level death of peer: pending and
// future receives from it fail with ErrPeerDead, its connection closes
// (unblocking a writer stuck on a full socket), and its outbox drops
// what it still holds.
func (t *tcpTransport) declareDead(peer int) {
	t.mu.Lock()
	conn := t.conns[peer]
	out := t.outs[peer]
	t.mu.Unlock()
	t.box.markPeerDead(peer)
	if out != nil {
		out.closeDiscard()
	}
	if conn != nil {
		conn.Close()
	}
}

func (t *tcpTransport) isShutdown() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed || t.killed
}

// stopHeartbeat stops the heartbeater, if one was started.
func (t *tcpTransport) stopHeartbeat() {
	if t.hbStop != nil {
		t.hbOnce.Do(func() { close(t.hbStop) })
	}
}

// stopCouriers stops the delay couriers, if any were started.
func (t *tcpTransport) stopCouriers() {
	if t.courierStop != nil {
		t.courierOnce.Do(func() { close(t.courierStop) })
	}
}

// Kill crash-injects this endpoint: the rank goes silent. Its queued
// and future sends vanish (no flush — a crashed process flushes
// nothing), its receives fail with ErrKilled, and its heartbeats stop
// — but its connections stay open, so peers cannot see a clean end of
// stream and must detect the death the way a real network partition is
// detected: by missed heartbeats. Close later reaps the connections.
func (t *tcpTransport) Kill() {
	t.mu.Lock()
	if t.closed || t.killed {
		t.mu.Unlock()
		return
	}
	t.killed = true
	outs := append([]*outbox(nil), t.outs...)
	t.mu.Unlock()
	t.stopHeartbeat()
	for _, o := range outs {
		if o != nil {
			o.closeDiscard()
		}
	}
	t.stopCouriers()
	t.box.closeWith(ErrKilled)
}

// KillEndpoint crash-injects the transport under c (the root endpoint,
// for sub-world communicators): the rank goes silent without closing
// its sockets, so peers running heartbeats detect the death by timeout
// — the crash-stop failure model over a real wire. It fails on
// transports without kill support (the in-process transport's injected
// kills live in the session layer instead).
func KillEndpoint(c *Comm) error {
	type killer interface{ Kill() }
	if k, ok := c.Root().tr.(killer); ok {
		k.Kill()
		return nil
	}
	return fmt.Errorf("comm: transport does not support kill injection")
}

// Clock returns the clock the transport's charges run on.
func (t *tcpTransport) Clock() vtime.Clock { return t.clock }

func (t *tcpTransport) Send(dst, tag int, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("comm: message of %d bytes exceeds frame limit", len(data))
	}
	if tag == hbTag {
		return fmt.Errorf("comm: tag %#x is reserved for transport heartbeats", tag)
	}
	t.mu.Lock()
	killed, closed := t.killed, t.closed
	var out *outbox
	if dst != t.rank {
		out = t.outs[dst]
	}
	t.mu.Unlock()
	if killed {
		return ErrKilled
	}
	if closed || (dst != t.rank && out == nil) {
		return ErrClosed
	}
	// Sender-side model charge, mirroring the inproc transport's cost
	// accounting so a latency-priced experiment reads the same on both
	// transports; a cross-group destination pays the inter-group model
	// instead. Real sockets are point-to-point, so there is no
	// shared-wire serialization here — each sender charges its own
	// clock.
	if m := t.modelFor(dst); m != nil {
		m.charge(t.clock, len(data))
	}
	if dst == t.rank {
		buf := t.box.getBuf(len(data))
		copy(buf, data)
		if err := t.dispatch(t.rank, tag, buf); err != nil {
			t.box.putBuf(buf)
			return err
		}
		return nil
	}
	if err := out.push(tag, data); err != nil {
		return err
	}
	t.stats.nTx.Add(1)
	return nil
}

func (t *tcpTransport) Recv(src, tag int) ([]byte, error) {
	return t.box.recv(nil, src, tag)
}

func (t *tcpTransport) RecvAny(tag int) (int, []byte, error) {
	return t.box.recvAny(nil, tag)
}

func (t *tcpTransport) RecvContext(ctx context.Context, src, tag int) ([]byte, error) {
	return t.box.recv(ctx, src, tag)
}

func (t *tcpTransport) RecvAnyContext(ctx context.Context, tag int) (int, []byte, error) {
	return t.box.recvAny(ctx, tag)
}

func (t *tcpTransport) RecvAnyOf(ctx context.Context, tag int, mask []bool) (int, []byte, error) {
	return t.box.recvAnyOf(ctx, tag, mask)
}

func (t *tcpTransport) PollAnyOf(tag int, mask []bool) (int, []byte, bool, error) {
	return t.box.pollAnyOf(tag, mask)
}

// Release returns a received payload buffer to the mailbox pool for
// reuse by the socket readers.
func (t *tcpTransport) Release(buf []byte) {
	t.box.putBuf(buf)
}

func (t *tcpTransport) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	return t.box.recvTimeout(src, tag, d)
}

func (t *tcpTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	outs := append([]*outbox(nil), t.outs...)
	conns := append([]net.Conn(nil), t.conns...)
	t.mu.Unlock()
	t.stopHeartbeat()
	var errs []error
	for _, o := range outs {
		if o != nil {
			o.close()
		}
	}
	// Give writers a moment to flush queued frames before tearing the
	// connections down; readers end when peers close.
	time.Sleep(10 * time.Millisecond)
	for _, c := range conns {
		if c != nil {
			if err := c.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
				errs = append(errs, err)
			}
		}
	}
	t.stopCouriers()
	t.box.close()
	return errors.Join(errs...)
}
